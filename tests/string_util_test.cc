#include "base/string_util.h"

#include <gtest/gtest.h>

namespace cqchase {
namespace {

TEST(StrCatTest, ConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("level ", 3, "/", 10), "level 3/10");
  EXPECT_EQ(StrCat(), "");
  EXPECT_EQ(StrCat(1.5), "1.5");
}

TEST(StrJoinTest, JoinsWithSeparator) {
  std::vector<std::string> v{"a", "b", "c"};
  EXPECT_EQ(StrJoin(v, ", "), "a, b, c");
  EXPECT_EQ(StrJoin(std::vector<int>{1, 2}, "-"), "1-2");
  EXPECT_EQ(StrJoin(std::vector<int>{}, "-"), "");
}

TEST(StrJoinTest, MappedJoin) {
  std::vector<int> v{1, 2, 3};
  EXPECT_EQ(StrJoinMapped(v, "+", [](int x) { return x * x; }), "1+4+9");
}

TEST(StrSplitTest, KeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a;b;;c", ';'),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ';'), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("abc", ';'), (std::vector<std::string>{"abc"}));
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace("\t\n"), "");
  EXPECT_EQ(StripWhitespace("z"), "z");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("chase", "ch"));
  EXPECT_FALSE(StartsWith("chase", "hase"));
  EXPECT_TRUE(EndsWith("chase", "se"));
  EXPECT_FALSE(EndsWith("chase", "cha"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

}  // namespace
}  // namespace cqchase
