// Executor: the engine's persistent work-stealing pool. Covers lazy start,
// completion of everything submitted, stealing under a skewed load,
// high-priority queue jumping, destructor drain, and the TaskGroup
// fork/join primitive the parallel chase core runs on (nested fork from a
// worker thread, barrier under steal, deadline shed mid-group). Runs under
// TSan in CI (ci.sh) — the pool is concurrency-bearing by definition.
#include "engine/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace cqchase {
namespace {

using std::chrono::milliseconds;

// Spin-waits (with a generous ceiling) until `pred` holds. The executor has
// no blocking join-all API by design — futures are the engine's join point —
// so tests poll.
template <typename Pred>
bool WaitUntil(Pred pred, milliseconds limit = milliseconds(10000)) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

TEST(ExecutorTest, LazyStartAndWorkerCount) {
  Executor executor(3);
  EXPECT_EQ(executor.num_workers(), 3u);
  EXPECT_FALSE(executor.stats().started);  // construction spawns no threads

  std::atomic<int> ran{0};
  executor.Submit([&] { ran.fetch_add(1); });
  EXPECT_TRUE(executor.stats().started);
  // Wait on the executed counter itself: it is bumped after the task body,
  // so waiting on `ran` alone could snapshot the stats one tick early.
  EXPECT_TRUE(WaitUntil([&] { return executor.stats().executed == 1; }));
  EXPECT_EQ(ran.load(), 1);

  const Executor::StatsSnapshot s = executor.stats();
  EXPECT_EQ(s.workers, 3u);
  EXPECT_EQ(s.submitted, 1u);
  EXPECT_EQ(s.executed, 1u);
}

TEST(ExecutorTest, ZeroWorkersClampsToOne) {
  Executor executor(0);
  EXPECT_EQ(executor.num_workers(), 1u);
  std::atomic<int> ran{0};
  executor.Submit([&] { ran.fetch_add(1); });
  EXPECT_TRUE(WaitUntil([&] { return ran.load() == 1; }));
}

TEST(ExecutorTest, ExecutesEverythingSubmittedFromManyThreads) {
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 250;
  Executor executor(4);
  std::atomic<int> ran{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        executor.Submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_TRUE(WaitUntil([&] {
    return executor.stats().executed ==
           static_cast<uint64_t>(kSubmitters * kPerSubmitter);
  }));
  EXPECT_EQ(ran.load(), kSubmitters * kPerSubmitter);
  const Executor::StatsSnapshot s = executor.stats();
  EXPECT_EQ(s.submitted, static_cast<uint64_t>(kSubmitters * kPerSubmitter));
  EXPECT_EQ(s.executed, static_cast<uint64_t>(kSubmitters * kPerSubmitter));
  EXPECT_EQ(s.queue_depth, 0u);
}

TEST(ExecutorTest, StealsUnderSkewedLoad) {
  // Submissions are dealt round-robin from a single thread, so task i lands
  // on deque i % 4. Every 4th task sleeps; the other deques drain instantly
  // and their workers must steal the sleepers' queued work for the whole
  // batch to finish promptly. (Executed-count completeness is the hard
  // assertion; a zero steal count with this skew would mean the sleepy
  // deque's worker ran its whole backlog alone.)
  Executor executor(4);
  std::atomic<int> ran{0};
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    if (i % 4 == 0) {
      executor.Submit([&] {
        std::this_thread::sleep_for(milliseconds(5));
        ran.fetch_add(1);
      });
    } else {
      executor.Submit([&] { ran.fetch_add(1); });
    }
  }
  EXPECT_TRUE(WaitUntil([&] { return ran.load() == kTasks; }));
  EXPECT_GT(executor.stats().steals, 0u);
}

TEST(ExecutorTest, HighPriorityJumpsItsQueue) {
  // One worker, one deque. The gate task occupies the worker while the rest
  // of the batch queues up behind it; the high-priority submission goes to
  // the deque front and must run before the earlier-submitted normal tasks.
  Executor executor(1);
  std::mutex mu;
  std::vector<int> order;
  std::atomic<bool> gate_open{false};
  executor.Submit([&] {
    while (!gate_open.load()) std::this_thread::yield();
  });
  for (int i = 0; i < 3; ++i) {
    executor.Submit([&, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    });
  }
  executor.Submit(
      [&] {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(99);
      },
      /*high_priority=*/true);
  gate_open.store(true);
  EXPECT_TRUE(WaitUntil([&] {
    std::lock_guard<std::mutex> lock(mu);
    return order.size() == 4;
  }));
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(order[0], 99);  // jumped ahead of 0, 1, 2
  EXPECT_EQ(order[1], 0);   // FIFO among normal-priority work
  EXPECT_EQ(order[2], 1);
  EXPECT_EQ(order[3], 2);
}

TEST(ExecutorTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  constexpr int kTasks = 32;
  {
    Executor executor(2);
    for (int i = 0; i < kTasks; ++i) {
      executor.Submit([&] {
        std::this_thread::sleep_for(milliseconds(1));
        ran.fetch_add(1);
      });
    }
    // Destroyed with most tasks still queued: every promised task must
    // still run before join.
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ExecutorTest, DestructionWithoutStartIsClean) {
  Executor executor(8);  // never submitted to; no threads to join
}

TEST(ExecutorTest, ShedsExpiredDeadlineTasksAtDequeue) {
  // One worker, occupied by a gate task while three deadline tasks expire in
  // the queue behind it. At dequeue each must be completed through its
  // on_expired handler — the body never runs, the worker slot is never
  // spent on a corpse — while a live-deadline task and a no-deadline task
  // run normally.
  Executor executor(1);
  std::atomic<bool> gate_open{false};
  std::atomic<int> bodies_ran{0};
  std::atomic<int> expired_ran{0};
  executor.Submit([&] {
    while (!gate_open.load()) std::this_thread::yield();
  });

  constexpr int kExpired = 3;
  for (int i = 0; i < kExpired; ++i) {
    Executor::TaskOptions options;
    options.deadline = std::chrono::steady_clock::now() - milliseconds(1);
    options.on_expired = [&] { expired_ran.fetch_add(1); };
    executor.Submit([&] { bodies_ran.fetch_add(1); }, std::move(options));
  }
  Executor::TaskOptions live;
  live.deadline = std::chrono::steady_clock::now() + milliseconds(60000);
  live.on_expired = [&] { expired_ran.fetch_add(1); };
  executor.Submit([&] { bodies_ran.fetch_add(1); }, std::move(live));
  executor.Submit([&] { bodies_ran.fetch_add(1); });  // no deadline at all

  gate_open.store(true);
  EXPECT_TRUE(WaitUntil([&] {
    return executor.stats().shed == kExpired && bodies_ran.load() == 2;
  }));
  EXPECT_EQ(expired_ran.load(), kExpired);
  const Executor::StatsSnapshot s = executor.stats();
  EXPECT_EQ(s.shed, static_cast<uint64_t>(kExpired));
  // Shed tasks are completed, not executed: the gate + 2 live bodies.
  EXPECT_EQ(s.executed, 3u);
  EXPECT_EQ(s.queue_depth, 0u);
}

TEST(ExecutorTest, ExpiredDeadlineWithoutHandlerStillRuns) {
  // Without an on_expired completion path the executor may not drop the
  // task — someone holds a future for it; the body itself owns noticing
  // the deadline (the engine's first control poll).
  Executor executor(1);
  std::atomic<int> ran{0};
  Executor::TaskOptions options;
  options.deadline = std::chrono::steady_clock::now() - milliseconds(1);
  executor.Submit([&] { ran.fetch_add(1); }, std::move(options));
  EXPECT_TRUE(WaitUntil([&] { return ran.load() == 1; }));
  EXPECT_EQ(executor.stats().shed, 0u);
}

// --- TaskGroup: the fork/join primitive of the parallel chase core ---------

TEST(ExecutorTest, TaskGroupRunsEveryTaskExactlyOnceAndJoins) {
  Executor executor(3);
  constexpr int kTasks = 24;
  std::vector<std::atomic<int>> runs(kTasks);
  for (auto& r : runs) r.store(0);
  {
    Executor::TaskGroup group(&executor);
    for (int i = 0; i < kTasks; ++i) {
      group.Spawn([&, i] { runs[i].fetch_add(1); });
    }
    group.Join();
    // Join is a barrier: every body completed before it returned.
    for (int i = 0; i < kTasks; ++i) EXPECT_EQ(runs[i].load(), 1) << i;
  }
}

TEST(ExecutorTest, TaskGroupNestedForkFromWorkerThread) {
  // The chase path: the group is forked from INSIDE a pool task, on a
  // single-worker pool. Without the helping join this deadlocks — the only
  // worker would sleep in Join waiting for tasks only it could run.
  Executor executor(1);
  std::atomic<int> inner_ran{0};
  std::atomic<bool> done{false};
  executor.Submit([&] {
    Executor::TaskGroup group(&executor);
    for (int i = 0; i < 8; ++i) {
      group.Spawn([&] { inner_ran.fetch_add(1); });
    }
    group.Join();
    EXPECT_EQ(inner_ran.load(), 8);  // barrier held inside the worker
    done.store(true);
  });
  EXPECT_TRUE(WaitUntil([&] { return done.load(); }));
  EXPECT_EQ(inner_ran.load(), 8);
}

TEST(ExecutorTest, TaskGroupBarrierHoldsUnderSteal) {
  // Uneven task durations force cross-deque steals while the owner joins;
  // the barrier must still only release after the slowest member.
  Executor executor(4);
  constexpr int kTasks = 32;
  std::atomic<int> started{0};
  std::atomic<int> finished{0};
  Executor::TaskGroup group(&executor);
  for (int i = 0; i < kTasks; ++i) {
    group.Spawn([&, i] {
      started.fetch_add(1);
      if (i % 4 == 0) std::this_thread::sleep_for(milliseconds(3));
      finished.fetch_add(1);
    });
  }
  group.Join();
  EXPECT_EQ(started.load(), kTasks);
  EXPECT_EQ(finished.load(), kTasks);
}

TEST(ExecutorTest, TaskGroupDeadlineShedStillRunsEveryBody) {
  // Group tasks spawned with an already-expired deadline behind a gate: the
  // pool slots are shed at dequeue (on_expired runs, not the group runner),
  // yet Join still runs every body inline — a group body is promised work,
  // a deadline only frees its worker slot.
  Executor executor(1);
  std::atomic<bool> gate_open{false};
  executor.Submit([&] {
    while (!gate_open.load()) std::this_thread::yield();
  });

  constexpr int kTasks = 3;
  std::atomic<int> bodies{0};
  std::atomic<int> expired{0};
  {
    Executor::TaskGroup group(&executor);
    for (int i = 0; i < kTasks; ++i) {
      Executor::TaskOptions options;
      options.high_priority = true;
      options.deadline = std::chrono::steady_clock::now() - milliseconds(1);
      options.on_expired = [&] { expired.fetch_add(1); };
      group.Spawn([&] { bodies.fetch_add(1); }, std::move(options));
    }
    group.Join();  // worker is gated: Join drains all bodies inline
    EXPECT_EQ(bodies.load(), kTasks);
  }
  gate_open.store(true);
  // The queued group runners surface eventually and are shed (deadline
  // passed); the bodies must not run a second time.
  EXPECT_TRUE(WaitUntil([&] {
    return executor.stats().shed == static_cast<uint64_t>(kTasks);
  }));
  EXPECT_EQ(expired.load(), kTasks);
  EXPECT_EQ(bodies.load(), kTasks);
}

TEST(ExecutorTest, TaskGroupDestructorJoins) {
  Executor executor(2);
  std::atomic<int> ran{0};
  {
    Executor::TaskGroup group(&executor);
    for (int i = 0; i < 16; ++i) {
      group.Spawn([&] {
        std::this_thread::sleep_for(milliseconds(1));
        ran.fetch_add(1);
      });
    }
    // No explicit Join: the destructor is the barrier.
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(ExecutorTest, ExecutorTaskRunnerRunAllInlineAndPooled) {
  // Null executor: inline degradation, still runs everything.
  {
    ExecutorTaskRunner runner(nullptr);
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 4; ++i) tasks.push_back([&] { ran.fetch_add(1); });
    runner.RunAll(std::move(tasks));
    EXPECT_EQ(ran.load(), 4);
  }
  // Pooled, called from inside a worker task — exactly how the parallel
  // chase core reaches it (chases run inside engine Submit tasks).
  {
    Executor executor(2);
    ExecutorTaskRunner runner(&executor);
    std::atomic<int> ran{0};
    std::atomic<bool> done{false};
    executor.Submit([&] {
      std::vector<std::function<void()>> tasks;
      for (int i = 0; i < 12; ++i) tasks.push_back([&] { ran.fetch_add(1); });
      runner.RunAll(std::move(tasks));
      EXPECT_EQ(ran.load(), 12);  // RunAll is a barrier
      done.store(true);
    });
    EXPECT_TRUE(WaitUntil([&] { return done.load(); }));
    EXPECT_EQ(ran.load(), 12);
  }
}

}  // namespace
}  // namespace cqchase
