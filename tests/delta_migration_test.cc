// Schema-delta migration end to end: v1 store files are readable (entries
// surface lineage-unknown, are treated as touched by any removal, and the
// files are rewritten at the current format on open), VerdictStore/LruTier/
// TierStack ApplyDelta re-key survivors per the rules in engine/lineage.h
// (add-then-remove restores the original keys, incumbents computed directly
// under the new Σ win rekey collisions, LRU recency survives migration),
// the remote protocol ships deltas to v3 peers and degrades to drop-only
// against older ones, a Σ edit clears the remote negative cache, and — the
// differential suite — every verdict a warm engine serves after EvolveSigma
// equals what a cold engine decides from scratch.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/delta.h"
#include "base/string_util.h"
#include "cq/cq_parser.h"
#include "engine/engine.h"
#include "engine/lineage.h"
#include "engine/remote_tier.h"
#include "engine/serialize.h"
#include "engine/store.h"
#include "engine/tier.h"

namespace cqchase {
namespace {

std::string ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[4096];
  size_t n = 0;
  while (f != nullptr && (n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  if (f != nullptr) std::fclose(f);
  return out;
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

std::string NewStoreDir(const std::string& name) {
  const std::string dir = StrCat(::testing::TempDir(), "/cqchase_", name);
  for (const char* file :
       {"/snapshot.cqvs", "/snapshot.cqvs.tmp", "/snapshot.cqvs.quarantine",
        "/log.cqvl", "/log.cqvl.quarantine", "/LOCK"}) {
    std::remove(StrCat(dir, file).c_str());
  }
  ::rmdir(dir.c_str());
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

// --- a tiny two-Σ world shared by the migration tests ------------------------

// base Σ = {R[0] ⊆ S[0], S[1] ⊆ R[1]}; edited Σ drops the second IND.
struct TwoSigma {
  Catalog catalog;
  DependencySet base;
  DependencySet edited;
  InclusionDependency kept;
  InclusionDependency dropped;
  LineageDelta removal;   // base -> edited
  LineageDelta addback;   // edited -> base

  TwoSigma() {
    EXPECT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
    EXPECT_TRUE(catalog.AddRelation("S", {"a", "b"}).ok());
    kept = InclusionDependency{0, {0}, 1, {0}};
    dropped = InclusionDependency{1, {1}, 0, {1}};
    EXPECT_TRUE(base.AddInd(catalog, kept).ok());
    EXPECT_TRUE(base.AddInd(catalog, dropped).ok());
    EXPECT_TRUE(edited.AddInd(catalog, kept).ok());
    removal = MakeLineageDelta(base, edited);
    addback = MakeLineageDelta(edited, base);
  }

  std::string BaseKey(int i) const {
    return StrCat("V1|", removal.old_sigma_key, "|Q{t", i, "}|=>|Q{u", i, "}");
  }
  std::string EditedKey(int i) const {
    return StrCat("V1|", removal.new_sigma_key, "|Q{t", i, "}|=>|Q{u", i, "}");
  }

  // An entry decided under `base` whose chase used exactly `used`.
  StoredVerdict Entry(bool contained, bool lineage_known,
                      std::vector<uint64_t> used = {}) const {
    StoredVerdict v;
    v.contained = contained;
    v.lineage_known = lineage_known;
    v.sigma_fp = SigmaFingerprint(base);
    v.used_fps = std::move(used);
    v.level_bound = 42;  // arbitrary metadata that must survive verbatim
    return v;
  }
};

// --- v1 on-disk format migration ---------------------------------------------

// The v1 entry layout, byte for byte (what a v1 build's EncodeVerdictEntry
// wrote): no confidence / lineage / used-set fields.
void EncodeV1Entry(const std::string& key, bool contained, std::string& out) {
  wire::PutString(out, key);
  wire::PutU8(out, contained ? 1 : 0);
  wire::PutU8(out, 0);  // chase_outcome
  wire::PutU8(out, 0);  // sigma_class
  wire::PutU8(out, 0);  // strategy
  wire::PutU32(out, 0);  // witness_max_level
  wire::PutU32(out, 3);  // chase_levels
  wire::PutU64(out, 7);  // level_bound
  wire::PutU64(out, 5);  // chase_conjuncts
  wire::PutU8(out, 0);   // certified
  wire::PutU32(out, 0);  // certificate_depth
}

std::string EncodeV1Snapshot(
    const std::vector<std::pair<std::string, bool>>& entries) {
  std::string payload;
  for (const auto& [key, contained] : entries) {
    EncodeV1Entry(key, contained, payload);
  }
  std::string file;
  wire::PutU32(file, kSnapshotMagic);
  wire::PutU32(file, 1);  // the legacy format version
  wire::PutU64(file, StoreSchemaFingerprintFor(1));
  wire::PutU64(file, entries.size());
  wire::PutU64(file, payload.size());
  wire::PutU64(file, wire::Fnv1a64(payload));
  return file + payload;
}

TEST(V1MigrationTest, V1SnapshotLoadsAsLineageUnknownAndIsRewrittenAtV2) {
  TwoSigma w;
  const std::string dir = NewStoreDir("v1_snapshot");
  WriteAll(StrCat(dir, "/snapshot.cqvs"),
           EncodeV1Snapshot({{w.BaseKey(0), true}, {w.BaseKey(1), false}}));

  Result<std::unique_ptr<VerdictStore>> store = VerdictStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->size(), 2u);
  EXPECT_EQ((*store)->stats().quarantined_files, 0u);

  // Entries decode with conservative lineage defaults.
  auto entry = (*store)->Lookup(w.BaseKey(0));
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->contained);
  EXPECT_EQ(entry->confidence, static_cast<uint8_t>(VerdictConfidence::kExact));
  EXPECT_FALSE(entry->lineage_known);
  EXPECT_TRUE(entry->used_fps.empty());
  EXPECT_EQ(entry->level_bound, 7u);  // v1 fields survive verbatim

  // Open already rewrote the file at the current version (a v2 frame
  // appended behind a v1 header would be shed as a torn tail next open).
  const std::string bytes = ReadAll((*store)->SnapshotPath());
  wire::ByteReader reader(bytes);
  uint32_t magic = 0, version = 0;
  ASSERT_TRUE(reader.ReadU32(&magic) && reader.ReadU32(&version));
  EXPECT_EQ(version, kStoreFormatVersion);
}

TEST(V1MigrationTest, V1LogReplaysAndCompactsToCurrentVersion) {
  TwoSigma w;
  const std::string dir = NewStoreDir("v1_log");
  std::string log;
  {
    std::string header;
    wire::PutU32(header, kLogMagic);
    wire::PutU32(header, 1);
    wire::PutU64(header, StoreSchemaFingerprintFor(1));
    wire::PutFramed(log, header);
    std::string entry;
    EncodeV1Entry(w.BaseKey(0), true, entry);
    wire::PutFramed(log, entry);
  }
  WriteAll(StrCat(dir, "/log.cqvl"), log);

  {
    Result<std::unique_ptr<VerdictStore>> store = VerdictStore::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_EQ((*store)->size(), 1u);
    EXPECT_EQ((*store)->stats().log_entries_replayed, 1u);
    // The open-time migration compacted: the entry now lives in a v2
    // snapshot and the v1-headed log is gone, so nothing this store appends
    // later can land behind an old header.
    const std::string bytes = ReadAll((*store)->SnapshotPath());
    wire::ByteReader reader(bytes);
    uint32_t magic = 0, version = 0;
    ASSERT_TRUE(reader.ReadU32(&magic) && reader.ReadU32(&version));
    EXPECT_EQ(version, kStoreFormatVersion);
  }
  // And a clean reopen restores it with no quarantine.
  Result<std::unique_ptr<VerdictStore>> reopened = VerdictStore::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), 1u);
  EXPECT_EQ((*reopened)->stats().quarantined_files, 0u);
}

TEST(V1MigrationTest, LegacyEntriesAreTouchedByRemovalNeverMisKept) {
  TwoSigma w;
  const std::string dir = NewStoreDir("v1_retag");
  WriteAll(StrCat(dir, "/snapshot.cqvs"),
           EncodeV1Snapshot({{w.BaseKey(0), true}, {w.BaseKey(1), false}}));
  Result<std::unique_ptr<VerdictStore>> store = VerdictStore::Open(dir);
  ASSERT_TRUE(store.ok());

  const DeltaReceipt receipt = (*store)->ApplyDelta(w.removal);
  EXPECT_EQ(receipt.examined, 2u);
  // The contained legacy entry may have relied on the removed IND — with no
  // lineage to prove otherwise it must drop. The not-contained one survives
  // monotonically (a counterexample satisfies every subset of Σ).
  EXPECT_EQ(receipt.dropped, 1u);
  EXPECT_EQ(receipt.kept_monotone, 1u);
  EXPECT_FALSE((*store)->Lookup(w.EditedKey(0)).has_value());
  auto survivor = (*store)->Lookup(w.EditedKey(1));
  ASSERT_TRUE(survivor.has_value());
  EXPECT_FALSE(survivor->contained);
  EXPECT_EQ(survivor->confidence,
            static_cast<uint8_t>(VerdictConfidence::kMonotoneBound));
}

// --- VerdictStore::ApplyDelta ------------------------------------------------

TEST(StoreDeltaTest, MigratesRekeysAndPersistsAcrossReopen) {
  TwoSigma w;
  const std::string dir = NewStoreDir("store_delta");
  {
    Result<std::unique_ptr<VerdictStore>> store = VerdictStore::Open(dir);
    ASSERT_TRUE(store.ok());
    // Exact survivor: contained, lineage proves only the kept IND fired.
    (*store)->Put(w.BaseKey(0),
                  w.Entry(true, true, {FingerprintInd(w.kept)}));
    // Dropped: contained, fired the removed IND.
    (*store)->Put(w.BaseKey(1),
                  w.Entry(true, true, {FingerprintInd(w.dropped)}));
    const DeltaReceipt receipt = (*store)->ApplyDelta(w.removal);
    EXPECT_EQ(receipt.kept_exact, 1u);
    EXPECT_EQ(receipt.dropped, 1u);

    auto survivor = (*store)->Lookup(w.EditedKey(0));
    ASSERT_TRUE(survivor.has_value());
    EXPECT_EQ(survivor->sigma_fp, SigmaFingerprint(w.edited));
    EXPECT_EQ(survivor->level_bound, 42u);
    EXPECT_FALSE((*store)->Lookup(w.BaseKey(0)).has_value());
    EXPECT_FALSE((*store)->Lookup(w.EditedKey(1)).has_value());
  }
  // ApplyDelta compacts: the migrated state is what a restart restores.
  Result<std::unique_ptr<VerdictStore>> reopened = VerdictStore::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), 1u);
  EXPECT_TRUE((*reopened)->Lookup(w.EditedKey(0)).has_value());
}

TEST(StoreDeltaTest, RemoveThenAddBackRestoresOriginalKeys) {
  TwoSigma w;
  const std::string dir = NewStoreDir("store_roundtrip");
  Result<std::unique_ptr<VerdictStore>> store = VerdictStore::Open(dir);
  ASSERT_TRUE(store.ok());
  // A not-contained entry with clean lineage survives the removal exactly
  // and the re-addition drops it... so use the *contained* exact survivor:
  // removal keeps it exact (removed IND never fired), re-addition keeps it
  // monotone. Its key must end up byte-identical to where it started.
  (*store)->Put(w.BaseKey(0), w.Entry(true, true, {FingerprintInd(w.kept)}));
  EXPECT_EQ((*store)->ApplyDelta(w.removal).kept_exact, 1u);
  EXPECT_EQ((*store)->ApplyDelta(w.addback).kept_monotone, 1u);

  auto entry = (*store)->Lookup(w.BaseKey(0));
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->contained);
  EXPECT_EQ(entry->sigma_fp, SigmaFingerprint(w.base));
  EXPECT_EQ(entry->confidence,
            static_cast<uint8_t>(VerdictConfidence::kMonotoneBound));
  EXPECT_EQ((*store)->size(), 1u);
}

TEST(StoreDeltaTest, DirectNewSigmaEntryWinsRekeyCollision) {
  TwoSigma w;
  const std::string dir = NewStoreDir("store_incumbent");
  Result<std::unique_ptr<VerdictStore>> store = VerdictStore::Open(dir);
  ASSERT_TRUE(store.ok());
  // An entry already computed directly under the edited Σ sits at the slot
  // the migrating survivor re-keys into. The incumbent is at least as
  // precise (it was *decided* there) and must win.
  StoredVerdict incumbent = w.Entry(true, true, {FingerprintInd(w.kept)});
  incumbent.sigma_fp = SigmaFingerprint(w.edited);
  incumbent.level_bound = 1000;  // distinguishable from the survivor's 42
  (*store)->Put(w.EditedKey(0), incumbent);
  (*store)->Put(w.BaseKey(0), w.Entry(true, true, {FingerprintInd(w.kept)}));

  (*store)->ApplyDelta(w.removal);
  auto kept = (*store)->Lookup(w.EditedKey(0));
  ASSERT_TRUE(kept.has_value());
  EXPECT_EQ(kept->level_bound, 1000u);
}

// --- LruTier / TierStack -----------------------------------------------------

TEST(LruTierDeltaTest, MigrationPreservesRecencyOrder) {
  TwoSigma w;
  LruTier tier(/*capacity=*/3);
  tier.Publish(w.BaseKey(0), w.Entry(true, true, {FingerprintInd(w.kept)}));
  tier.Publish(w.BaseKey(1), w.Entry(true, true, {FingerprintInd(w.kept)}));
  tier.Publish(w.BaseKey(2), w.Entry(true, true, {FingerprintInd(w.kept)}));

  const DeltaReceipt receipt = tier.ApplyDelta(w.removal);
  EXPECT_EQ(receipt.kept_exact, 3u);

  // At capacity, a new publish must evict the *oldest* survivor — key 0 —
  // proving the drain/re-insert reconstructed recency, not some arbitrary
  // order.
  StoredVerdict fresh = w.Entry(false, true);
  fresh.sigma_fp = SigmaFingerprint(w.edited);
  tier.Publish(w.EditedKey(9), fresh);
  EXPECT_FALSE(tier.Lookup(w.EditedKey(0)).has_value());
  EXPECT_TRUE(tier.Lookup(w.EditedKey(1)).has_value());
  EXPECT_TRUE(tier.Lookup(w.EditedKey(2)).has_value());
  EXPECT_TRUE(tier.Lookup(w.EditedKey(9)).has_value());
}

TEST(TierStackDeltaTest, DrivesEveryTierAndSumsReceipts) {
  TwoSigma w;
  const std::string dir = NewStoreDir("stack_delta");
  Result<std::unique_ptr<TierStack>> stack = TierStack::Assemble(
      {TierSpec::Lru(1 << 8), TierSpec::LocalStore(dir)});
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  (*stack)->Publish(w.BaseKey(0),
                    w.Entry(true, true, {FingerprintInd(w.kept)}));
  (*stack)->Publish(w.BaseKey(1),
                    w.Entry(true, true, {FingerprintInd(w.dropped)}));

  const DeltaReceipt receipt = (*stack)->ApplyDelta(w.removal);
  // Both tiers held both entries: receipts sum across the stack.
  EXPECT_EQ(receipt.examined, 4u);
  EXPECT_EQ(receipt.kept_exact, 2u);
  EXPECT_EQ(receipt.dropped, 2u);
  auto hit = (*stack)->Lookup(w.EditedKey(0));
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE((*stack)->Lookup(w.EditedKey(1)).has_value());
}

// --- the remote protocol -----------------------------------------------------

TEST(RemoteDeltaTest, ShipsToV3PeerAndMigratesItsMap) {
  TwoSigma w;
  auto authority = std::make_shared<VerdictAuthority>();
  authority->Put(w.BaseKey(0), w.Entry(true, true, {FingerprintInd(w.kept)}));
  authority->Put(w.BaseKey(1),
                 w.Entry(true, true, {FingerprintInd(w.dropped)}));

  Result<std::unique_ptr<RemoteTier>> tier =
      RemoteTier::Connect(std::make_shared<InProcessTransport>(authority));
  ASSERT_TRUE(tier.ok());
  EXPECT_EQ((*tier)->negotiated_version(), kTierProtocolVersion);

  const DeltaReceipt receipt = (*tier)->ApplyDelta(w.removal);
  // The receipt folds in the peer's pass over its map.
  EXPECT_EQ(receipt.kept_exact, 1u);
  EXPECT_EQ(receipt.dropped, 1u);
  EXPECT_TRUE(authority->Lookup(w.EditedKey(0)).has_value());
  EXPECT_FALSE(authority->Lookup(w.BaseKey(0)).has_value());
  EXPECT_FALSE(authority->Lookup(w.EditedKey(1)).has_value());
  EXPECT_EQ(authority->stats().apply_deltas, 1u);
  EXPECT_EQ(authority->stats().delta_retagged, 1u);
  EXPECT_EQ(authority->stats().delta_dropped, 1u);
}

TEST(RemoteDeltaTest, DegradesToDropOnlyAgainstV2Peer) {
  TwoSigma w;
  VerdictAuthority::Options old_peer;
  old_peer.protocol_version = 2;
  auto authority = std::make_shared<VerdictAuthority>(old_peer);
  authority->Put(w.BaseKey(0), w.Entry(true, true, {FingerprintInd(w.kept)}));

  Result<std::unique_ptr<RemoteTier>> tier =
      RemoteTier::Connect(std::make_shared<InProcessTransport>(authority));
  ASSERT_TRUE(tier.ok());
  EXPECT_EQ((*tier)->negotiated_version(), 2u);

  const DeltaReceipt receipt = (*tier)->ApplyDelta(w.removal);
  // Nothing shipped: the peer's entry stays under its old key — stale but
  // unreachable from new-Σ lookups, never wrong — and no transport error is
  // charged for a downgrade the session negotiated.
  EXPECT_EQ(authority->stats().apply_deltas, 0u);
  EXPECT_TRUE(authority->Lookup(w.BaseKey(0)).has_value());
  EXPECT_FALSE(authority->Lookup(w.EditedKey(0)).has_value());
  EXPECT_EQ((*tier)->Stats().transport_errors, 0u);
  EXPECT_EQ(receipt.retagged(), 0u);
}

TEST(RemoteDeltaTest, SigmaEditClearsTheNegativeCache) {
  TwoSigma w;
  auto authority = std::make_shared<VerdictAuthority>();
  RemoteTierOptions options;
  options.negative_ttl = std::chrono::minutes(5);  // would pin "miss" for ages
  Result<std::unique_ptr<RemoteTier>> tier = RemoteTier::Connect(
      std::make_shared<InProcessTransport>(authority), options);
  ASSERT_TRUE(tier.ok());
  RemoteTier& remote = **tier;

  // Miss under the edited Σ's key is negative-cached...
  EXPECT_FALSE(remote.Lookup(w.EditedKey(0)).has_value());
  // ...and the authority learning the verdict (here: another engine's
  // publish) does not help while the negative entry pins the miss.
  authority->Put(w.EditedKey(0), w.Entry(true, true));
  EXPECT_FALSE(remote.Lookup(w.EditedKey(0)).has_value());
  EXPECT_EQ(remote.Stats().negative_hits, 1u);

  // The Σ edit invalidates every pre-edit "authority does not know this"
  // observation; without this clear, an edit-and-revert would keep serving
  // the stale known-miss until the TTL.
  remote.ApplyDelta(w.removal);
  EXPECT_TRUE(remote.Lookup(w.EditedKey(0)).has_value());
}

// --- the differential suite: warm survivors vs a cold engine -----------------

// Three IND chains A_i[x] ⊆ B_i[x] ⊆ C_i[x] with one contained and one
// not-contained task each (the bench_schema_evolution workload, shrunk to
// test size).
struct ChainWorld {
  Catalog catalog;
  SymbolTable symbols;
  DependencySet full;
  DependencySet edited;  // chain 0 loses its B->C IND
  std::vector<ConjunctiveQuery> lhs;
  std::vector<ConjunctiveQuery> rhs;

  static constexpr size_t kChains = 3;

  ChainWorld() {
    std::vector<RelationId> a, b, c;
    for (size_t i = 0; i < kChains; ++i) {
      a.push_back(*catalog.AddRelation(StrCat("A", i), {"x", "y"}));
      b.push_back(*catalog.AddRelation(StrCat("B", i), {"x", "y"}));
      c.push_back(*catalog.AddRelation(StrCat("C", i), {"x", "y"}));
    }
    for (size_t i = 0; i < kChains; ++i) {
      InclusionDependency ab{a[i], {0}, b[i], {0}};
      InclusionDependency bc{b[i], {0}, c[i], {0}};
      EXPECT_TRUE(full.AddInd(catalog, ab).ok());
      EXPECT_TRUE(full.AddInd(catalog, bc).ok());
      EXPECT_TRUE(edited.AddInd(catalog, ab).ok());
      if (i != 0) EXPECT_TRUE(edited.AddInd(catalog, bc).ok());
    }
    for (size_t i = 0; i < kChains; ++i) {
      lhs.push_back(*ParseQuery(catalog, symbols,
                                StrCat("ans(x) :- A", i, "(x, y)")));
      rhs.push_back(*ParseQuery(catalog, symbols,
                                StrCat("ans(x) :- C", i, "(x, z)")));
      lhs.push_back(*ParseQuery(catalog, symbols,
                                StrCat("ans(x) :- C", i, "(x, y)")));
      rhs.push_back(*ParseQuery(catalog, symbols,
                                StrCat("ans(x) :- A", i, "(x, z)")));
    }
  }

  std::vector<ContainmentTask> Tasks(const DependencySet& deps) {
    std::vector<ContainmentTask> tasks;
    for (size_t i = 0; i < lhs.size(); ++i) {
      tasks.push_back(ContainmentTask{&lhs[i], &rhs[i], &deps});
    }
    return tasks;
  }
};

// Every verdict the warm engine serves after the edit must match a cold
// engine deciding from scratch — including answers served at monotone-bound
// confidence after the add-back.
TEST(EvolveSigmaDifferentialTest, RetaggedVerdictsMatchColdEngine) {
  ChainWorld w;
  EngineConfig config;
  config.route_streaming_single_conjunct = false;  // chase → lineage capture
  ContainmentEngine warm(&w.catalog, &w.symbols, config);

  std::vector<ContainmentTask> full_tasks = w.Tasks(w.full);
  std::vector<Result<EngineVerdict>> warmed = warm.CheckMany(full_tasks);
  for (const auto& r : warmed) ASSERT_TRUE(r.ok());
  const uint64_t chases_warm = warm.stats().chases_built;

  // Phase 1: remove chain 0's B->C IND. Exactly one warmed verdict (chain
  // 0's contained task) fired it; everything else survives exactly.
  const DeltaReceipt removal = warm.EvolveSigma(w.full, w.edited);
  EXPECT_GT(removal.retagged(), 0u);
  EXPECT_GT(removal.dropped, 0u);
  std::vector<ContainmentTask> edited_tasks = w.Tasks(w.edited);
  std::vector<Result<EngineVerdict>> after = warm.CheckMany(edited_tasks);
  {
    ContainmentEngine cold(&w.catalog, &w.symbols, EngineConfig{});
    std::vector<Result<EngineVerdict>> truth = cold.CheckMany(edited_tasks);
    for (size_t i = 0; i < edited_tasks.size(); ++i) {
      ASSERT_TRUE(after[i].ok() && truth[i].ok()) << "task " << i;
      EXPECT_EQ(after[i]->report.contained, truth[i]->report.contained)
          << "task " << i << " diverged after the removal";
    }
  }
  // Survival did its job: only the touched chain re-chased.
  EXPECT_EQ(warm.stats().chases_built - chases_warm, 1u);
  EXPECT_GT(warm.stats().entries_retagged, 0u);
  EXPECT_GT(warm.stats().entries_dropped, 0u);

  // Phase 2: add it back. Contained survivors are now monotone-bound; the
  // engine must both serve them (monotone_hits) and still agree with a cold
  // engine on every task.
  const DeltaReceipt addback = warm.EvolveSigma(w.edited, w.full);
  EXPECT_GT(addback.kept_monotone, 0u);
  std::vector<Result<EngineVerdict>> again = warm.CheckMany(full_tasks);
  {
    ContainmentEngine cold(&w.catalog, &w.symbols, EngineConfig{});
    std::vector<Result<EngineVerdict>> truth = cold.CheckMany(full_tasks);
    for (size_t i = 0; i < full_tasks.size(); ++i) {
      ASSERT_TRUE(again[i].ok() && truth[i].ok()) << "task " << i;
      EXPECT_EQ(again[i]->report.contained, truth[i]->report.contained)
          << "task " << i << " diverged after the add-back";
    }
  }
  EXPECT_GT(warm.stats().monotone_hits, 0u);
}

// An empty edit is the identity: nothing examined, nothing dropped, caches
// intact.
TEST(EvolveSigmaDifferentialTest, IdentityEditIsANoOp) {
  ChainWorld w;
  EngineConfig config;
  config.route_streaming_single_conjunct = false;
  ContainmentEngine engine(&w.catalog, &w.symbols, config);
  std::vector<ContainmentTask> tasks = w.Tasks(w.full);
  (void)engine.CheckMany(tasks);
  const uint64_t chases = engine.stats().chases_built;

  const DeltaReceipt receipt = engine.EvolveSigma(w.full, w.full);
  EXPECT_EQ(receipt.examined, 0u);
  (void)engine.CheckMany(tasks);
  EXPECT_EQ(engine.stats().chases_built, chases);  // all still cache hits
}

}  // namespace
}  // namespace cqchase
