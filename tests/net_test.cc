// The networked verdict authority (src/net/): socket framing over real TCP
// (round trips, torn reads, clean EOFs, oversized-frame rejection), hello
// enforcement and version refusal, the TcpTransport connection discipline
// (reconnect with backoff, identity pinning across reconnects), batched
// fetch-many echo verification against confused peers (via the FlakyTransport
// fault injector and a wrong-echo double), sharded routing with a dead shard
// degrading to local chase, concurrent clients against one server, and the
// store-backed daemon recipe persisting across a restart.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/string_util.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "engine/engine.h"
#include "engine/remote_tier.h"
#include "engine/serialize.h"
#include "flaky_transport.h"
#include "net/authority_server.h"
#include "net/sharded_transport.h"
#include "net/socket.h"
#include "net/tcp_transport.h"

namespace cqchase {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

StoredVerdict MakeVerdict(uint32_t seed) {
  StoredVerdict v;
  v.contained = (seed % 2) == 0;
  v.chase_outcome = static_cast<uint8_t>(seed % 3);
  v.sigma_class = static_cast<uint8_t>(seed % 6);
  v.strategy = static_cast<uint8_t>(seed % 5);
  v.witness_max_level = seed;
  v.chase_levels = seed + 1;
  v.level_bound = 100ULL * seed;
  v.chase_conjuncts = 7ULL * seed;
  return v;
}

// Polls `pred` until true or ~5s pass — for asserting on server-side state
// that a handler thread updates asynchronously.
template <typename Pred>
bool WaitFor(Pred pred, milliseconds timeout = milliseconds(5000)) {
  const auto deadline = steady_clock::now() + timeout;
  while (steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(10));
  }
  return pred();
}

// TCP options tuned for tests: fast dials, fast failures, tiny backoff.
net::TcpTransportOptions FastTcpOptions() {
  net::TcpTransportOptions options;
  options.connect_timeout = milliseconds(1000);
  options.rtt_timeout = milliseconds(2000);
  options.backoff_initial = milliseconds(10);
  options.backoff_max = milliseconds(50);
  return options;
}

// --- socket layer ------------------------------------------------------------

TEST(SocketTest, SplitHostPortParsesAndRefuses) {
  std::string host;
  uint16_t port = 0;
  ASSERT_TRUE(net::SplitHostPort("127.0.0.1:7450", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 7450);
  EXPECT_FALSE(net::SplitHostPort("no-port-here", &host, &port).ok());
  EXPECT_FALSE(net::SplitHostPort("host:", &host, &port).ok());
  EXPECT_FALSE(net::SplitHostPort("host:notanumber", &host, &port).ok());
  EXPECT_FALSE(net::SplitHostPort("host:70000", &host, &port).ok());
}

// A listener + one accepted connection, for driving the framing helpers
// against a real byte stream.
struct SocketPairFixture {
  net::UniqueFd listener;
  uint16_t port = 0;
  net::UniqueFd client;
  net::UniqueFd server;

  bool Init() {
    auto listen = net::ListenTcp("127.0.0.1", 0);
    if (!listen.ok()) return false;
    listener = std::move(listen->first);
    port = listen->second;
    auto dial = net::DialTcp("127.0.0.1", port, milliseconds(1000));
    if (!dial.ok()) return false;
    client = *std::move(dial);
    if (!net::WaitReadable(listener.get(), milliseconds(1000))) return false;
    int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd < 0) return false;
    server = net::UniqueFd(fd);
    return true;
  }
};

TEST(SocketTest, FrameRoundTripsOverRealSockets) {
  SocketPairFixture s;
  ASSERT_TRUE(s.Init());
  const auto deadline = net::DeadlineAfter(milliseconds(2000));

  const std::string request = FrameTierMessage("ping with some payload bytes");
  ASSERT_TRUE(net::SendAll(s.client.get(), request, deadline).ok());

  std::string received;
  ASSERT_TRUE(net::ReadFrame(s.server.get(), kTierMaxFrameBytes, &received,
                             deadline)
                  .ok());
  EXPECT_EQ(received, request);
  std::string payload;
  ASSERT_TRUE(UnframeTierMessage(received, &payload).ok());
  EXPECT_EQ(payload, "ping with some payload bytes");

  // And the other direction, back to back (message boundaries survive).
  ASSERT_TRUE(
      net::SendAll(s.server.get(), FrameTierMessage("pong"), deadline).ok());
  ASSERT_TRUE(
      net::SendAll(s.server.get(), FrameTierMessage("pong2"), deadline).ok());
  std::string first, second;
  ASSERT_TRUE(
      net::ReadFrame(s.client.get(), kTierMaxFrameBytes, &first, deadline)
          .ok());
  ASSERT_TRUE(
      net::ReadFrame(s.client.get(), kTierMaxFrameBytes, &second, deadline)
          .ok());
  ASSERT_TRUE(UnframeTierMessage(first, &payload).ok());
  EXPECT_EQ(payload, "pong");
  ASSERT_TRUE(UnframeTierMessage(second, &payload).ok());
  EXPECT_EQ(payload, "pong2");
}

TEST(SocketTest, TornReadIsInvalidArgumentCleanEofIsNotFound) {
  // Torn: the peer dies mid-message. The half-frame must surface as a
  // confused-peer error, never as a short "answer".
  {
    SocketPairFixture s;
    ASSERT_TRUE(s.Init());
    const std::string framed = FrameTierMessage("a payload long enough");
    const std::string torn = framed.substr(0, framed.size() - 5);
    ASSERT_TRUE(net::SendAll(s.server.get(), torn,
                             net::DeadlineAfter(milliseconds(1000)))
                    .ok());
    s.server.Reset();  // EOF mid-frame
    std::string out;
    Status read = net::ReadFrame(s.client.get(), kTierMaxFrameBytes, &out,
                                 net::DeadlineAfter(milliseconds(2000)));
    EXPECT_EQ(read.code(), StatusCode::kInvalidArgument);
  }
  // Clean: the peer hangs up between messages — reconnectable, distinct code.
  {
    SocketPairFixture s;
    ASSERT_TRUE(s.Init());
    s.server.Reset();
    std::string out;
    Status read = net::ReadFrame(s.client.get(), kTierMaxFrameBytes, &out,
                                 net::DeadlineAfter(milliseconds(2000)));
    EXPECT_EQ(read.code(), StatusCode::kNotFound);
  }
}

TEST(SocketTest, OversizedFramePrefixRejectedBeforePayload) {
  SocketPairFixture s;
  ASSERT_TRUE(s.Init());
  // A length prefix claiming 1 MiB against a 1 KiB bound: rejected from the
  // prefix alone — no payload needs to arrive (none is sent).
  std::string prefix;
  wire::PutU32(prefix, 1u << 20);
  ASSERT_TRUE(net::SendAll(s.server.get(), prefix,
                           net::DeadlineAfter(milliseconds(1000)))
                  .ok());
  std::string out;
  Status read = net::ReadFrame(s.client.get(), /*max_frame_bytes=*/1024, &out,
                               net::DeadlineAfter(milliseconds(2000)));
  EXPECT_EQ(read.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(read.message().find("frame"), std::string::npos);
}

// --- hello parsing and enforcement -------------------------------------------

TEST(HelloTest, VersionBelowMinimumRefused) {
  std::string payload;
  wire::PutU8(payload, kTierOpHello);
  wire::PutU32(payload, 0);  // below kTierMinProtocolVersion
  wire::PutU64(payload, StoreSchemaFingerprint());
  uint32_t version = 0;
  uint64_t fingerprint = 0;
  Status parsed = ParseTierHelloResponse(FrameTierMessage(payload), "peer",
                                         &version, &fingerprint);
  EXPECT_EQ(parsed.code(), StatusCode::kFailedPrecondition);

  // Malformed (truncated) hello is a different refusal.
  std::string truncated;
  wire::PutU8(truncated, kTierOpHello);
  Status bad = ParseTierHelloResponse(FrameTierMessage(truncated), "peer",
                                      &version, &fingerprint);
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

TEST(ServerTest, FirstFrameMustBeHello) {
  auto authority = std::make_shared<VerdictAuthority>();
  net::VerdictAuthorityServer server(authority);
  ASSERT_TRUE(server.Start().ok());

  // Lead with a fetch instead of a hello: the server must disconnect us
  // before any verdict flows, and count the offense.
  auto dial = net::DialTcp("127.0.0.1", server.port(), milliseconds(1000));
  ASSERT_TRUE(dial.ok());
  std::string fetch;
  wire::PutU8(fetch, kTierOpFetch);
  wire::PutString(fetch, "some-key");
  ASSERT_TRUE(net::SendAll(dial->get(), FrameTierMessage(fetch),
                           net::DeadlineAfter(milliseconds(1000)))
                  .ok());
  std::string out;
  Status read = net::ReadFrame(dial->get(), kTierMaxFrameBytes, &out,
                               net::DeadlineAfter(milliseconds(3000)));
  EXPECT_FALSE(read.ok());  // connection dropped, no response

  EXPECT_TRUE(WaitFor([&] { return server.stats().handshake_failures == 1; }));
  EXPECT_EQ(server.stats().requests_served, 0u);
  server.Stop();
}

TEST(ServerTest, StalledPeerMidFrameIsCutOffByIoTimeout) {
  auto authority = std::make_shared<VerdictAuthority>();
  net::AuthorityServerOptions options;
  options.io_timeout = milliseconds(200);
  net::VerdictAuthorityServer server(authority, options);
  ASSERT_TRUE(server.Start().ok());

  auto dial = net::DialTcp("127.0.0.1", server.port(), milliseconds(1000));
  ASSERT_TRUE(dial.ok());
  // Send only a length prefix promising payload that never follows. The
  // handler's io_timeout clock starts on those first bytes — and only fires
  // because accepted fds are non-blocking (a blocking fd would park recv
  // forever and pin the handler thread).
  std::string prefix;
  wire::PutU32(prefix, 64);
  ASSERT_TRUE(net::SendAll(dial->get(), prefix,
                           net::DeadlineAfter(milliseconds(1000)))
                  .ok());
  EXPECT_TRUE(WaitFor([&] { return server.stats().protocol_errors == 1; }));
  EXPECT_TRUE(WaitFor([&] { return server.stats().connections_open == 0; }));
  server.Stop();
}

TEST(ServerTest, StopWhileClientsMidRequestDoesNotDeadlock) {
  auto authority = std::make_shared<VerdictAuthority>();
  authority->Put("k", MakeVerdict(5));
  net::VerdictAuthorityServer server(authority);
  ASSERT_TRUE(server.Start().ok());

  // Clients hammer lookups so handlers are mid-request when the drain
  // begins — the state that used to deadlock Stop(), which joined handler
  // threads while holding the lock those handlers need to exit.
  std::atomic<bool> halt{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      Result<std::unique_ptr<RemoteTier>> tier =
          RemoteTier::Connect(std::make_shared<net::TcpTransport>(
              "127.0.0.1", server.port(), FastTcpOptions()));
      if (!tier.ok()) return;
      while (!halt.load()) (void)(*tier)->Lookup("k");
    });
  }
  EXPECT_TRUE(WaitFor([&] { return server.stats().requests_served > 10; }));

  std::atomic<bool> stopped{false};
  std::thread stopper([&] {
    server.Stop();
    stopped.store(true);
  });
  EXPECT_TRUE(WaitFor([&] { return stopped.load(); }));
  halt.store(true);
  stopper.join();
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(server.stats().connections_open, 0u);
}

TEST(ServerTest, ClosedConnectionRowsAreBounded) {
  auto authority = std::make_shared<VerdictAuthority>();
  net::AuthorityServerOptions options;
  options.max_closed_connection_rows = 2;
  net::VerdictAuthorityServer server(authority, options);
  ASSERT_TRUE(server.Start().ok());

  // Churn: connections come and go; the daemon must not retain a record per
  // connection forever.
  const size_t kChurn = 5;
  for (size_t i = 0; i < kChurn; ++i) {
    Result<std::unique_ptr<RemoteTier>> tier =
        RemoteTier::Connect(std::make_shared<net::TcpTransport>(
            "127.0.0.1", server.port(), FastTcpOptions()));
    ASSERT_TRUE(tier.ok()) << tier.status();
    (void)(*tier)->Lookup("k");
  }  // each scope exit closes the socket
  EXPECT_TRUE(WaitFor([&] { return server.stats().connections_open == 0; }));

  // The next accept reaps the churned records into the bounded history.
  Result<std::unique_ptr<RemoteTier>> live =
      RemoteTier::Connect(std::make_shared<net::TcpTransport>(
          "127.0.0.1", server.port(), FastTcpOptions()));
  ASSERT_TRUE(live.ok()) << live.status();
  EXPECT_TRUE(WaitFor([&] {
    return server.stats().connections_accepted == kChurn + 1;
  }));
  // At most the 2 retained closed rows plus the live connection; aggregate
  // counters still remember everything.
  EXPECT_LE(server.connections().size(), 3u);
  EXPECT_EQ(server.stats().connections_accepted, kChurn + 1);
  server.Stop();
}

// --- TcpTransport end to end -------------------------------------------------

TEST(TcpTransportTest, FetchPublishAndBatchedFetchOverRealTcp) {
  auto authority = std::make_shared<VerdictAuthority>();
  authority->Put("k1", MakeVerdict(3));
  net::VerdictAuthorityServer server(authority);
  ASSERT_TRUE(server.Start().ok());

  auto transport = std::make_shared<net::TcpTransport>(
      "127.0.0.1", server.port(), FastTcpOptions());
  Result<std::unique_ptr<RemoteTier>> tier = RemoteTier::Connect(transport);
  ASSERT_TRUE(tier.ok()) << tier.status();
  EXPECT_EQ((*tier)->negotiated_version(), kTierProtocolVersion);
  EXPECT_EQ(transport->pinned_fingerprint(), StoreSchemaFingerprint());

  // Single fetch: the seeded verdict arrives over the wire, byte-faithful.
  std::optional<StoredVerdict> hit = (*tier)->Lookup("k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->witness_max_level, 3u);

  // Write-behind publish lands on the authority after Flush.
  EXPECT_TRUE((*tier)->Publish("k2", MakeVerdict(9)));
  ASSERT_TRUE((*tier)->Flush().ok());
  EXPECT_TRUE(WaitFor([&] { return authority->size() == 2; }));

  // Batched fetch: one kTierOpFetchMany round trip answers a mixed burst.
  std::vector<std::optional<StoredVerdict>> got =
      (*tier)->LookupMany({"k2", "unknown-a", "unknown-b"});
  ASSERT_EQ(got.size(), 3u);
  ASSERT_TRUE(got[0].has_value());
  EXPECT_EQ(got[0]->witness_max_level, 9u);
  EXPECT_FALSE(got[1].has_value());
  EXPECT_FALSE(got[2].has_value());
  const VerdictAuthority::Stats astats = authority->stats();
  EXPECT_EQ(astats.fetch_many_requests, 1u);
  EXPECT_EQ(astats.fetch_many_keys, 3u);
  EXPECT_EQ(astats.fetch_many_hits, 1u);
  EXPECT_GE((*tier)->Stats().batched_fetches, 1u);
  server.Stop();
}

TEST(TcpTransportTest, V1PeerNegotiatesDownToPerKeyFetch) {
  VerdictAuthority::Options old_peer;
  old_peer.protocol_version = 1;  // predates kTierOpFetchMany
  auto authority = std::make_shared<VerdictAuthority>(old_peer);
  authority->Put("a", MakeVerdict(2));
  authority->Put("b", MakeVerdict(4));
  net::VerdictAuthorityServer server(authority);
  ASSERT_TRUE(server.Start().ok());

  Result<std::unique_ptr<RemoteTier>> tier =
      RemoteTier::Connect(std::make_shared<net::TcpTransport>(
          "127.0.0.1", server.port(), FastTcpOptions()));
  ASSERT_TRUE(tier.ok()) << tier.status();
  EXPECT_EQ((*tier)->negotiated_version(), 1u);

  // The burst still answers correctly — as per-key fetches, never the
  // batched opcode the peer does not speak.
  std::vector<std::optional<StoredVerdict>> got =
      (*tier)->LookupMany({"a", "b", "missing"});
  ASSERT_EQ(got.size(), 3u);
  EXPECT_TRUE(got[0].has_value());
  EXPECT_TRUE(got[1].has_value());
  EXPECT_FALSE(got[2].has_value());
  const VerdictAuthority::Stats astats = authority->stats();
  EXPECT_EQ(astats.fetch_many_requests, 0u);
  EXPECT_EQ(astats.fetches, 3u);
  EXPECT_EQ((*tier)->Stats().batched_fetches, 0u);
  server.Stop();
}

TEST(TcpTransportTest, ReconnectsAfterAuthorityRestart) {
  auto authority = std::make_shared<VerdictAuthority>();
  authority->Put("k", MakeVerdict(6));
  auto server = std::make_unique<net::VerdictAuthorityServer>(authority);
  ASSERT_TRUE(server->Start().ok());
  const uint16_t port = server->port();

  auto transport =
      std::make_shared<net::TcpTransport>("127.0.0.1", port, FastTcpOptions());
  RemoteTierOptions tier_options;
  tier_options.negative_ttl = milliseconds(0);  // retry the wire every probe
  Result<std::unique_ptr<RemoteTier>> tier =
      RemoteTier::Connect(transport, tier_options);
  ASSERT_TRUE(tier.ok()) << tier.status();
  ASSERT_TRUE((*tier)->Lookup("k").has_value());

  // The authority restarts (same map, same identity, same port). The link
  // drops; lookups degrade to misses during the outage, then the transport
  // reconnects through its backoff and the verdict flows again.
  server->Stop();
  server.reset();
  EXPECT_FALSE((*tier)->Lookup("k").has_value());

  server = std::make_unique<net::VerdictAuthorityServer>(authority, [&] {
    net::AuthorityServerOptions options;
    options.port = port;
    return options;
  }());
  ASSERT_TRUE(server->Start().ok());
  EXPECT_TRUE(WaitFor([&] { return (*tier)->Lookup("k").has_value(); }));
  EXPECT_GE(transport->TransportStats().reconnects, 1u);
  EXPECT_GE((*tier)->Stats().reconnects, 1u);  // surfaced through tier stats
  server->Stop();
}

TEST(TcpTransportTest, ReconnectToDifferentAuthorityRefused) {
  auto authority = std::make_shared<VerdictAuthority>();
  authority->Put("k", MakeVerdict(6));
  auto server = std::make_unique<net::VerdictAuthorityServer>(authority);
  ASSERT_TRUE(server->Start().ok());
  const uint16_t port = server->port();

  auto transport =
      std::make_shared<net::TcpTransport>("127.0.0.1", port, FastTcpOptions());
  RemoteTierOptions tier_options;
  tier_options.negative_ttl = milliseconds(0);
  Result<std::unique_ptr<RemoteTier>> tier =
      RemoteTier::Connect(transport, tier_options);
  ASSERT_TRUE(tier.ok()) << tier.status();
  ASSERT_TRUE((*tier)->Lookup("k").has_value());
  const uint64_t pinned = transport->pinned_fingerprint();

  // The address is reused by a *different* authority (fingerprint drift — a
  // peer upgrade, or another service entirely). Every reconnect must refuse:
  // misses forever, never a verdict from a map with a different key scheme.
  server->Stop();
  server.reset();
  VerdictAuthority::Options other;
  other.fingerprint = StoreSchemaFingerprint() ^ 0xBADF00D;
  auto impostor = std::make_shared<VerdictAuthority>(other);
  impostor->Put("k", MakeVerdict(99));  // the wrong "k"
  server = std::make_unique<net::VerdictAuthorityServer>(impostor, [&] {
    net::AuthorityServerOptions options;
    options.port = port;
    return options;
  }());
  ASSERT_TRUE(server->Start().ok());

  const auto deadline = steady_clock::now() + milliseconds(500);
  while (steady_clock::now() < deadline) {
    EXPECT_FALSE((*tier)->Lookup("k").has_value());
    std::this_thread::sleep_for(milliseconds(20));
  }
  EXPECT_EQ(transport->pinned_fingerprint(), pinned);  // identity stays pinned
  EXPECT_EQ(transport->TransportStats().reconnects, 0u);
  server->Stop();
}

// --- confused peers: garbled frames and broken echo --------------------------

TEST(FaultInjectionTest, GarbledResponsesDegradeToMissNeverWrong) {
  auto authority = std::make_shared<VerdictAuthority>();
  authority->Put("k", MakeVerdict(4));
  testing_support::FlakyTransportOptions flaky;
  flaky.garble_rate = 1.0;  // every data response corrupted (hello spared)
  auto transport = std::make_shared<testing_support::FlakyTransport>(
      std::make_shared<InProcessTransport>(authority), flaky);
  Result<std::unique_ptr<RemoteTier>> tier = RemoteTier::Connect(transport);
  ASSERT_TRUE(tier.ok()) << tier.status();

  // The checksum catches the corruption: miss, counted error, no garbage.
  EXPECT_FALSE((*tier)->Lookup("k").has_value());
  EXPECT_GE((*tier)->Stats().transport_errors, 1u);
  // Same discipline for a batched burst.
  (*tier)->Clear();
  std::vector<std::optional<StoredVerdict>> got =
      (*tier)->LookupMany({"k", "k2"});
  EXPECT_FALSE(got[0].has_value());
  EXPECT_FALSE(got[1].has_value());
  EXPECT_GE(transport->garbled(), 2u);
}

TEST(FaultInjectionTest, DroppedRoundTripsDegradeToMiss) {
  auto authority = std::make_shared<VerdictAuthority>();
  authority->Put("k", MakeVerdict(4));
  testing_support::FlakyTransportOptions flaky;
  flaky.drop_rate = 1.0;
  auto transport = std::make_shared<testing_support::FlakyTransport>(
      std::make_shared<InProcessTransport>(authority), flaky);
  RemoteTierOptions tier_options;
  tier_options.negative_ttl = std::chrono::minutes(5);  // cannot flake slow
  Result<std::unique_ptr<RemoteTier>> tier =
      RemoteTier::Connect(transport, tier_options);
  ASSERT_TRUE(tier.ok()) << tier.status();
  EXPECT_FALSE((*tier)->Lookup("k").has_value());
  EXPECT_GE(transport->dropped(), 1u);
  // The negative cache absorbs the retry storm while the link is down.
  EXPECT_FALSE((*tier)->Lookup("k").has_value());
  EXPECT_EQ(transport->dropped(), 1u);
}

// A peer that answers fetch-many with the right shape but the wrong key
// echoes — a confused authority whose answers must not be trusted.
class WrongEchoTransport final : public VerdictTransport {
 public:
  explicit WrongEchoTransport(std::shared_ptr<VerdictAuthority> authority)
      : authority_(std::move(authority)) {}

  Status RoundTrip(const std::string& request, std::string* response) override {
    std::string payload;
    CQCHASE_RETURN_IF_ERROR(UnframeTierMessage(request, &payload));
    if (static_cast<uint8_t>(payload[0]) != kTierOpFetchMany) {
      return authority_->Handle(request, response);
    }
    wire::ByteReader reader(payload);
    uint8_t op = 0;
    uint32_t count = 0;
    if (!reader.ReadU8(&op) || !reader.ReadU32(&count)) {
      return Status::InvalidArgument("malformed fetch-many");
    }
    std::string reply;
    wire::PutU8(reply, kTierOpFetchMany);
    wire::PutU32(reply, count);
    for (uint32_t i = 0; i < count; ++i) {
      wire::PutU8(reply, 0);
      wire::PutString(reply, "some-other-key");  // echo does not match
    }
    *response = FrameTierMessage(reply);
    return Status::OK();
  }
  std::string_view Peer() const override { return "wrong-echo"; }

 private:
  std::shared_ptr<VerdictAuthority> authority_;
};

TEST(FaultInjectionTest, FetchManyEchoMismatchRejectsWholeChunk) {
  auto authority = std::make_shared<VerdictAuthority>();
  auto transport = std::make_shared<WrongEchoTransport>(authority);
  Result<std::unique_ptr<RemoteTier>> tier = RemoteTier::Connect(transport);
  ASSERT_TRUE(tier.ok()) << tier.status();

  std::vector<std::optional<StoredVerdict>> got =
      (*tier)->LookupMany({"a", "b"});
  EXPECT_FALSE(got[0].has_value());
  EXPECT_FALSE(got[1].has_value());
  EXPECT_GE((*tier)->Stats().transport_errors, 1u);
}

// --- concurrent clients ------------------------------------------------------

TEST(ServerTest, ManyConcurrentClientsServedCorrectly) {
  auto authority = std::make_shared<VerdictAuthority>();
  const size_t kKeys = 16;
  for (size_t i = 0; i < kKeys; ++i) {
    authority->Put(StrCat("key", i), MakeVerdict(static_cast<uint32_t>(i)));
  }
  net::VerdictAuthorityServer server(authority);
  ASSERT_TRUE(server.Start().ok());

  const size_t kClients = 6;
  std::atomic<size_t> correct{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Result<std::unique_ptr<RemoteTier>> tier =
          RemoteTier::Connect(std::make_shared<net::TcpTransport>(
              "127.0.0.1", server.port(), FastTcpOptions()));
      if (!tier.ok()) return;
      // Half the clients burst (fetch-many), half probe key by key.
      if (c % 2 == 0) {
        std::vector<std::string> keys;
        for (size_t i = 0; i < kKeys; ++i) keys.push_back(StrCat("key", i));
        std::vector<std::optional<StoredVerdict>> got =
            (*tier)->LookupMany(keys);
        for (size_t i = 0; i < kKeys; ++i) {
          if (got[i].has_value() && got[i]->witness_max_level == i) ++correct;
        }
      } else {
        for (size_t i = 0; i < kKeys; ++i) {
          std::optional<StoredVerdict> got = (*tier)->Lookup(StrCat("key", i));
          if (got.has_value() && got->witness_max_level == i) ++correct;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(correct.load(), kClients * kKeys);
  const net::AuthorityServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, kClients);
  EXPECT_GT(stats.requests_served, 0u);
  EXPECT_GT(stats.bytes_out, 0u);
  server.Stop();
  EXPECT_EQ(server.stats().connections_open, 0u);
}

// --- sharded routing ---------------------------------------------------------

TEST(ShardedTransportTest, PublishesAndFetchesPartitionByKeyHash) {
  auto authority_a = std::make_shared<VerdictAuthority>();
  auto authority_b = std::make_shared<VerdictAuthority>();
  auto sharded = std::make_shared<net::ShardedTransport>(
      std::vector<std::shared_ptr<VerdictTransport>>{
          std::make_shared<InProcessTransport>(authority_a),
          std::make_shared<InProcessTransport>(authority_b)});
  Result<std::unique_ptr<RemoteTier>> tier = RemoteTier::Connect(sharded);
  ASSERT_TRUE(tier.ok()) << tier.status();

  const size_t kKeys = 32;
  for (size_t i = 0; i < kKeys; ++i) {
    EXPECT_TRUE(
        (*tier)->Publish(StrCat("key", i), MakeVerdict(uint32_t(i))));
  }
  ASSERT_TRUE((*tier)->Flush().ok());

  // Every key lives on exactly the shard FNV-1a64(key) % 2 says, and both
  // shards got a share (a degenerate hash would hide the routing entirely).
  EXPECT_EQ(authority_a->size() + authority_b->size(), kKeys);
  EXPECT_GT(authority_a->size(), 0u);
  EXPECT_GT(authority_b->size(), 0u);
  for (size_t i = 0; i < kKeys; ++i) {
    const std::string key = StrCat("key", i);
    const auto& home =
        sharded->ShardOf(key) == 0 ? authority_a : authority_b;
    const auto& away =
        sharded->ShardOf(key) == 0 ? authority_b : authority_a;
    EXPECT_TRUE(home->Lookup(key).has_value()) << key;
    EXPECT_FALSE(away->Lookup(key).has_value()) << key;
  }

  // A batched fetch fans out and merges back in request order.
  std::vector<std::string> all;
  for (size_t i = 0; i < kKeys; ++i) all.push_back(StrCat("key", i));
  std::vector<std::optional<StoredVerdict>> got = (*tier)->LookupMany(all);
  for (size_t i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(got[i].has_value()) << i;
    EXPECT_EQ(got[i]->witness_max_level, i);
  }
  const std::vector<net::ShardStats> sstats = sharded->shard_stats();
  ASSERT_EQ(sstats.size(), 2u);
  EXPECT_GT(sstats[0].keys_routed, 0u);
  EXPECT_GT(sstats[1].keys_routed, 0u);
}

// --- engine over TCP shards, one shard dead ----------------------------------

class NetEngineTest : public ::testing::Test {
 protected:
  static constexpr size_t kRelations = 8;

  void SetUp() override {
    // One chase-requiring containment question per relation pair: Ri(u,v) is
    // contained in Ri(u,v),Si(v,w) exactly because the IND Ri[2] <= Si[1]
    // makes the chase add the Si fact — so a cold engine MUST either chase
    // or be served the verdict, and each task has a distinct canonical key.
    std::string deps_text;
    for (size_t i = 0; i < kRelations; ++i) {
      ASSERT_TRUE(catalog_.AddRelation(StrCat("R", i), {"a", "b"}).ok());
      ASSERT_TRUE(catalog_.AddRelation(StrCat("S", i), {"x", "y"}).ok());
      deps_text += StrCat("R", i, "[2] <= S", i, "[1]; ");
    }
    Result<DependencySet> deps = ParseDependencies(catalog_, deps_text);
    ASSERT_TRUE(deps.ok()) << deps.status();
    deps_ = *std::move(deps);
    for (size_t i = 0; i < kRelations; ++i) {
      lhs_.push_back(Parse(StrCat("ans(u) :- R", i, "(u, v)")));
      rhs_.push_back(
          Parse(StrCat("ans(u) :- R", i, "(u, v), S", i, "(v, w)")));
    }
    for (size_t i = 0; i < kRelations; ++i) {
      tasks_.push_back(ContainmentTask{&lhs_[i], &rhs_[i], &deps_});
    }
  }

  ConjunctiveQuery Parse(const std::string& text) {
    Result<ConjunctiveQuery> q = ParseQuery(catalog_, symbols_, text);
    EXPECT_TRUE(q.ok()) << q.status();
    return *std::move(q);
  }

  EngineConfig ShardedTcpConfig(uint16_t port_a, uint16_t port_b) {
    EngineConfig config;
    config.tiers = {
        TierSpec::Lru(64),
        TierSpec::Remote(std::make_shared<net::ShardedTransport>(
            std::vector<std::shared_ptr<VerdictTransport>>{
                std::make_shared<net::TcpTransport>("127.0.0.1", port_a,
                                                    FastTcpOptions()),
                std::make_shared<net::TcpTransport>("127.0.0.1", port_b,
                                                    FastTcpOptions())}))};
    return config;
  }

  Catalog catalog_;
  SymbolTable symbols_;
  DependencySet deps_;
  std::vector<ConjunctiveQuery> lhs_;
  std::vector<ConjunctiveQuery> rhs_;
  std::vector<ContainmentTask> tasks_;
};

TEST_F(NetEngineTest, DeadShardDegradesToLocalChaseNeverErrors) {
  auto authority_a = std::make_shared<VerdictAuthority>();
  auto authority_b = std::make_shared<VerdictAuthority>();
  net::VerdictAuthorityServer server_a(authority_a);
  auto server_b =
      std::make_unique<net::VerdictAuthorityServer>(authority_b);
  ASSERT_TRUE(server_a.Start().ok());
  ASSERT_TRUE(server_b->Start().ok());
  const uint16_t port_a = server_a.port();
  const uint16_t port_b = server_b->port();

  // Engine 1 decides the workload and publishes across both shards.
  std::vector<bool> truth;
  {
    ContainmentEngine one(&catalog_, &symbols_,
                          ShardedTcpConfig(port_a, port_b));
    std::vector<Result<EngineVerdict>> got = one.CheckMany(tasks_);
    for (const Result<EngineVerdict>& v : got) {
      ASSERT_TRUE(v.ok()) << v.status();
      truth.push_back(v->report.contained);
    }
    // Guards the task design: these questions cannot be answered for free.
    EXPECT_EQ(one.stats().chases_built, kRelations);
    // Scope exit drains the write-behind publish across both sockets.
  }
  const size_t on_a = authority_a->size();
  const size_t on_b = authority_b->size();
  EXPECT_EQ(on_a + on_b, kRelations);  // distinct canonical key per relation
  EXPECT_GT(on_a, 0u);
  EXPECT_GT(on_b, 0u);

  // Shard B dies. A cold engine over the same two endpoints must still
  // answer everything: shard A's keys over the wire, shard B's by chasing
  // locally — degraded, never wrong, never an error.
  server_b->Stop();
  server_b.reset();

  ContainmentEngine two(&catalog_, &symbols_,
                        ShardedTcpConfig(port_a, port_b));
  std::vector<Result<EngineVerdict>> got = two.CheckMany(tasks_);
  ASSERT_EQ(got.size(), kRelations);
  for (size_t i = 0; i < kRelations; ++i) {
    ASSERT_TRUE(got[i].ok()) << got[i].status();
    EXPECT_EQ(got[i]->report.contained, truth[i]) << "task " << i;
  }
  const EngineStats stats = two.stats();
  EXPECT_EQ(stats.remote_hits, on_a);
  EXPECT_EQ(stats.chases_built, kRelations - on_a);
  server_a.Stop();
}

// --- store-backed daemon recipe ----------------------------------------------

TEST(StoreBackedAuthorityTest, PublishesSurviveRestart) {
  const std::string dir =
      StrCat(::testing::TempDir(), "/cqchase_net_store_restart");
  for (const char* file :
       {"/snapshot.cqvs", "/snapshot.cqvs.tmp", "/snapshot.cqvs.quarantine",
        "/log.cqvl", "/log.cqvl.quarantine", "/LOCK"}) {
    std::remove(StrCat(dir, file).c_str());
  }
  ::rmdir(dir.c_str());

  // First life: serve over TCP, take a publish, flush, shut down.
  {
    Result<net::StoreBackedAuthority> backed =
        net::MakeStoreBackedAuthority(dir);
    ASSERT_TRUE(backed.ok()) << backed.status();
    net::VerdictAuthorityServer server(backed->authority);
    ASSERT_TRUE(server.Start().ok());

    Result<std::unique_ptr<RemoteTier>> tier =
        RemoteTier::Connect(std::make_shared<net::TcpTransport>(
            "127.0.0.1", server.port(), FastTcpOptions()));
    ASSERT_TRUE(tier.ok()) << tier.status();
    EXPECT_TRUE((*tier)->Publish("persistent-key", MakeVerdict(12)));
    ASSERT_TRUE((*tier)->Flush().ok());
    EXPECT_TRUE(
        WaitFor([&] { return backed->authority->size() == 1; }));
    server.Stop();
    ASSERT_TRUE(backed->store->Flush().ok());
  }

  // Second life: the store seeds the authority; the verdict is served over
  // a brand-new socket without anyone re-publishing it.
  Result<net::StoreBackedAuthority> backed =
      net::MakeStoreBackedAuthority(dir);
  ASSERT_TRUE(backed.ok()) << backed.status();
  EXPECT_EQ(backed->authority->size(), 1u);
  net::VerdictAuthorityServer server(backed->authority);
  ASSERT_TRUE(server.Start().ok());
  Result<std::unique_ptr<RemoteTier>> tier =
      RemoteTier::Connect(std::make_shared<net::TcpTransport>(
          "127.0.0.1", server.port(), FastTcpOptions()));
  ASSERT_TRUE(tier.ok()) << tier.status();
  std::optional<StoredVerdict> got = (*tier)->Lookup("persistent-key");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->witness_max_level, 12u);
  server.Stop();
}

}  // namespace
}  // namespace cqchase
