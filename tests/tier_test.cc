// The pluggable verdict-tier hierarchy (engine/tier.h + remote_tier.h):
// stack assembly from specs and from the legacy store_path shim, probe
// order with hit promotion into cheaper tiers, per-tier read/write policy
// flags, the schema-fingerprint handshake (quarantine vs refuse — a
// mismatched peer is disabled with a loud reason, never silently served),
// TTL expiry of remote negative entries, transport-failure degradation, and
// the end-to-end loopback contract: a second engine with cold local caches
// answers a shared workload entirely over the RemoteTier, zero chases.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "base/string_util.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "engine/engine.h"
#include "engine/remote_tier.h"
#include "engine/serialize.h"
#include "engine/tier.h"

namespace cqchase {
namespace {

using std::chrono::milliseconds;

std::string NewStoreDir(const std::string& name) {
  const std::string dir = StrCat(::testing::TempDir(), "/cqchase_tier_", name);
  for (const char* file :
       {"/snapshot.cqvs", "/snapshot.cqvs.tmp", "/snapshot.cqvs.quarantine",
        "/log.cqvl", "/log.cqvl.quarantine", "/LOCK"}) {
    std::remove(StrCat(dir, file).c_str());
  }
  ::rmdir(dir.c_str());
  return dir;
}

StoredVerdict MakeVerdict(uint32_t seed) {
  StoredVerdict v;
  v.contained = (seed % 2) == 0;
  v.chase_outcome = static_cast<uint8_t>(seed % 3);
  v.sigma_class = static_cast<uint8_t>(seed % 6);
  v.strategy = static_cast<uint8_t>(seed % 5);
  v.witness_max_level = seed;
  v.chase_levels = seed + 1;
  v.level_bound = 100ULL * seed;
  v.chase_conjuncts = 7ULL * seed;
  return v;
}

// A transport that answers the hello (so Connect succeeds) and fails every
// later round trip — a peer that died right after the handshake.
class DeadAfterHelloTransport final : public VerdictTransport {
 public:
  explicit DeadAfterHelloTransport(std::shared_ptr<VerdictAuthority> authority)
      : authority_(std::move(authority)) {}

  Status RoundTrip(const std::string& request, std::string* response) override {
    if (hellos_served_ == 0) {
      ++hellos_served_;
      return authority_->Handle(request, response);
    }
    ++failures_;
    return Status::Internal("peer unreachable");
  }
  std::string_view Peer() const override { return "dead-after-hello"; }

  int failures() const { return failures_; }

 private:
  std::shared_ptr<VerdictAuthority> authority_;
  int hellos_served_ = 0;
  int failures_ = 0;
};

// --- stack assembly ----------------------------------------------------------

TEST(TierStackTest, AssemblesLruAndLocalStoreInOrder) {
  const std::string dir = NewStoreDir("assemble");
  Result<std::unique_ptr<TierStack>> stack = TierStack::Assemble(
      {TierSpec::Lru(64), TierSpec::LocalStore(dir)});
  ASSERT_TRUE(stack.ok()) << stack.status();
  const auto& descs = (*stack)->descriptors();
  ASSERT_EQ(descs.size(), 2u);
  EXPECT_EQ(descs[0].name, "lru");
  EXPECT_TRUE(descs[0].active);
  EXPECT_EQ(descs[1].kind, TierSpec::Kind::kLocalStore);
  EXPECT_TRUE(descs[1].active);
  EXPECT_NE((*stack)->local_store(), nullptr);
}

TEST(TierStackTest, HitPromotesIntoCheaperTiers) {
  const std::string dir = NewStoreDir("promote");
  Result<std::unique_ptr<TierStack>> stack = TierStack::Assemble(
      {TierSpec::Lru(64), TierSpec::LocalStore(dir)});
  ASSERT_TRUE(stack.ok());
  TierStack& s = **stack;

  const StoredVerdict v = MakeVerdict(7);
  TierStack::PublishReceipt receipt = s.Publish("k", v);
  EXPECT_EQ(receipt.accepted, 2u);
  EXPECT_TRUE(receipt.buffered_writes);  // the store buffered a log append

  // Served by the LRU while it holds the key.
  std::optional<TierStack::LookupResult> hit = s.Lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->kind, TierSpec::Kind::kLru);

  // Clear volatile state: the next lookup falls through to the store and
  // the hit is promoted back into the LRU.
  s.Clear();
  hit = s.Lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->kind, TierSpec::Kind::kLocalStore);
  hit = s.Lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->kind, TierSpec::Kind::kLru);
}

TEST(TierStackTest, PolicyFlagsGateReadsAndWrites) {
  auto authority = std::make_shared<VerdictAuthority>();
  TierSpec write_only = TierSpec::Remote(
      std::make_shared<InProcessTransport>(authority));
  write_only.read_through = false;

  Result<std::unique_ptr<TierStack>> stack =
      TierStack::Assemble({TierSpec::Lru(64), write_only});
  ASSERT_TRUE(stack.ok()) << stack.status();
  TierStack& s = **stack;

  // The authority knows the key, but the write-only tier is never probed.
  authority->Put("k", MakeVerdict(3));
  EXPECT_FALSE(s.Lookup("k").has_value());

  // Publishes do reach it (via Flush).
  s.Publish("k2", MakeVerdict(4));
  ASSERT_TRUE(s.Flush().ok());
  EXPECT_TRUE(authority->Lookup("k2").has_value());

  // And a read-only tier accepts no publishes.
  auto authority2 = std::make_shared<VerdictAuthority>();
  TierSpec read_only = TierSpec::Remote(
      std::make_shared<InProcessTransport>(authority2));
  read_only.write_through = false;
  Result<std::unique_ptr<TierStack>> stack2 =
      TierStack::Assemble({TierSpec::Lru(64), read_only});
  ASSERT_TRUE(stack2.ok());
  (*stack2)->Publish("k3", MakeVerdict(5));
  ASSERT_TRUE((*stack2)->Flush().ok());
  EXPECT_EQ(authority2->size(), 0u);
}

// --- fingerprint handshake ---------------------------------------------------

TEST(TierStackTest, FingerprintMismatchQuarantinesTierWithLoudReason) {
  VerdictAuthority::Options opts;
  opts.fingerprint = StoreSchemaFingerprint() + 1;  // an "older peer"
  auto authority = std::make_shared<VerdictAuthority>(opts);
  authority->Put("k", MakeVerdict(2));

  Result<std::unique_ptr<TierStack>> stack = TierStack::Assemble(
      {TierSpec::Lru(64),
       TierSpec::Remote(std::make_shared<InProcessTransport>(authority))});
  ASSERT_TRUE(stack.ok()) << stack.status();
  const auto& descs = (*stack)->descriptors();
  ASSERT_EQ(descs.size(), 2u);
  EXPECT_TRUE(descs[0].active);
  // Disabled with a store_status-style reason, never silently served.
  EXPECT_FALSE(descs[1].active);
  EXPECT_EQ(descs[1].status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(descs[1].status.message().find("fingerprint"), std::string::npos);
  // The peer's entry is unreachable through the stack: a mismatched key
  // scheme could alias different tasks, so the tier must not serve.
  EXPECT_FALSE((*stack)->Lookup("k").has_value());
  // The rest of the stack works.
  (*stack)->Publish("k2", MakeVerdict(9));
  EXPECT_TRUE((*stack)->Lookup("k2").has_value());
}

TEST(TierStackTest, FingerprintMismatchRefusedWhenPolicySaysSo) {
  VerdictAuthority::Options opts;
  opts.fingerprint = StoreSchemaFingerprint() ^ 0xDEAD;
  auto authority = std::make_shared<VerdictAuthority>(opts);
  TierSpec remote =
      TierSpec::Remote(std::make_shared<InProcessTransport>(authority));
  remote.on_mismatch = TierSpec::MismatchPolicy::kRefuse;

  Result<std::unique_ptr<TierStack>> stack =
      TierStack::Assemble({TierSpec::Lru(64), remote});
  ASSERT_FALSE(stack.ok());
  EXPECT_EQ(stack.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(stack.status().message().find("refused"), std::string::npos);
}

// --- remote tier: negative entries + degradation -----------------------------

TEST(RemoteTierTest, NegativeEntryPinsMissWithinTtl) {
  // A TTL far beyond test runtime, so the within-TTL assertions cannot
  // flake on a loaded (or TSan-slowed) host.
  auto authority = std::make_shared<VerdictAuthority>();
  RemoteTierOptions options;
  options.negative_ttl = std::chrono::minutes(5);
  Result<std::unique_ptr<RemoteTier>> tier = RemoteTier::Connect(
      std::make_shared<InProcessTransport>(authority), options);
  ASSERT_TRUE(tier.ok()) << tier.status();
  RemoteTier& remote = **tier;

  // First miss fetches; the second is served by the negative cache.
  EXPECT_FALSE(remote.Lookup("k").has_value());
  EXPECT_EQ(authority->stats().fetches, 1u);
  EXPECT_FALSE(remote.Lookup("k").has_value());
  EXPECT_EQ(authority->stats().fetches, 1u);
  EXPECT_EQ(remote.Stats().negative_hits, 1u);

  // The authority learns the verdict. Within the TTL the peer still says
  // miss — that is the contract: bounded staleness, zero extra round trips.
  authority->Put("k", MakeVerdict(8));
  EXPECT_FALSE(remote.Lookup("k").has_value());
  EXPECT_EQ(authority->stats().fetches, 1u);
}

TEST(RemoteTierTest, NegativeEntryExpiresAfterTtl) {
  // The inverse bound only needs sleep > TTL, which cannot flake slow.
  auto authority = std::make_shared<VerdictAuthority>();
  RemoteTierOptions options;
  options.negative_ttl = milliseconds(20);
  Result<std::unique_ptr<RemoteTier>> tier = RemoteTier::Connect(
      std::make_shared<InProcessTransport>(authority), options);
  ASSERT_TRUE(tier.ok()) << tier.status();
  RemoteTier& remote = **tier;

  EXPECT_FALSE(remote.Lookup("k").has_value());  // negative-cached
  authority->Put("k", MakeVerdict(8));

  // After the TTL the negative entry expires: "unknown" was never pinned,
  // the peer re-fetches and gets the verdict.
  std::this_thread::sleep_for(milliseconds(60));
  std::optional<StoredVerdict> hit = remote.Lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->witness_max_level, 8u);
  EXPECT_EQ(remote.Stats().negatives_expired, 1u);
  EXPECT_EQ(authority->stats().fetches, 2u);
}

TEST(RemoteTierTest, PublishIsWriteBehindThroughFlush) {
  auto authority = std::make_shared<VerdictAuthority>();
  Result<std::unique_ptr<RemoteTier>> tier =
      RemoteTier::Connect(std::make_shared<InProcessTransport>(authority));
  ASSERT_TRUE(tier.ok());

  EXPECT_TRUE((*tier)->Publish("k", MakeVerdict(5)));
  EXPECT_FALSE((*tier)->Publish("k", MakeVerdict(5)));  // dedup by key
  EXPECT_TRUE((*tier)->HasPendingWrites());
  EXPECT_EQ(authority->size(), 0u);  // nothing moved yet: write-behind

  ASSERT_TRUE((*tier)->Flush().ok());
  EXPECT_FALSE((*tier)->HasPendingWrites());
  EXPECT_EQ(authority->size(), 1u);
  EXPECT_EQ(authority->stats().publishes_accepted, 1u);
}

TEST(RemoteTierTest, TransportFailureDegradesToMissNeverWrong) {
  auto authority = std::make_shared<VerdictAuthority>();
  authority->Put("k", MakeVerdict(4));
  auto transport = std::make_shared<DeadAfterHelloTransport>(authority);
  Result<std::unique_ptr<RemoteTier>> tier = RemoteTier::Connect(transport);
  ASSERT_TRUE(tier.ok()) << tier.status();

  // The peer died: lookups degrade to misses (the engine recomputes), the
  // error is counted, and the negative cache keeps the tier from hammering
  // the dead link on every probe.
  EXPECT_FALSE((*tier)->Lookup("k").has_value());
  EXPECT_EQ((*tier)->Stats().transport_errors, 1u);
  EXPECT_FALSE((*tier)->Lookup("k").has_value());
  EXPECT_EQ((*tier)->Stats().transport_errors, 1u);  // negative-cache hit

  // A failed flush requeues the batch for a later retry — and a buffered
  // verdict is served from pending_ without a round trip: this tier
  // already knows the answer even while the peer is down.
  EXPECT_TRUE((*tier)->Publish("k2", MakeVerdict(6)));
  EXPECT_FALSE((*tier)->Flush().ok());
  EXPECT_TRUE((*tier)->HasPendingWrites());
  EXPECT_GE((*tier)->Stats().flush_failures, 1u);
  const int failures_before = transport->failures();
  std::optional<StoredVerdict> buffered = (*tier)->Lookup("k2");
  ASSERT_TRUE(buffered.has_value());
  EXPECT_EQ(buffered->witness_max_level, 6u);
  EXPECT_EQ(transport->failures(), failures_before);  // no round trip
}

TEST(RemoteTierTest, BatchedFetchPopulatesNegativeCacheForMisses) {
  // A batched miss must enter the negative cache exactly like a single-key
  // miss — otherwise a hot burst of unknown keys re-asks the authority on
  // every probe (the stampede the negative cache exists to absorb).
  auto authority = std::make_shared<VerdictAuthority>();
  authority->Put("known", MakeVerdict(3));
  RemoteTierOptions options;
  options.negative_ttl = std::chrono::minutes(5);
  Result<std::unique_ptr<RemoteTier>> tier = RemoteTier::Connect(
      std::make_shared<InProcessTransport>(authority), options);
  ASSERT_TRUE(tier.ok()) << tier.status();

  std::vector<std::optional<StoredVerdict>> got =
      (*tier)->LookupMany({"known", "miss-a", "miss-b"});
  ASSERT_EQ(got.size(), 3u);
  EXPECT_TRUE(got[0].has_value());
  EXPECT_FALSE(got[1].has_value());
  EXPECT_FALSE(got[2].has_value());
  const uint64_t wire_fetches = authority->stats().fetch_many_requests +
                                authority->stats().fetches;

  // Re-probing the missed keys — singly or batched — is served from the
  // negative cache: zero further round trips within the TTL.
  EXPECT_FALSE((*tier)->Lookup("miss-a").has_value());
  std::vector<std::optional<StoredVerdict>> again =
      (*tier)->LookupMany({"miss-a", "miss-b"});
  EXPECT_FALSE(again[0].has_value());
  EXPECT_FALSE(again[1].has_value());
  EXPECT_EQ(authority->stats().fetch_many_requests + authority->stats().fetches,
            wire_fetches);
  EXPECT_GE((*tier)->Stats().negative_hits, 3u);
}

TEST(RemoteTierTest, BatchedFetchSkipsNegativeCachedKeys) {
  // The inverse direction: keys already negative-cached by earlier lookups
  // must not ride a later batch — the chunk carries only genuinely unknown
  // keys (and an all-cached burst touches the wire not at all).
  auto authority = std::make_shared<VerdictAuthority>();
  authority->Put("fresh", MakeVerdict(7));
  RemoteTierOptions options;
  options.negative_ttl = std::chrono::minutes(5);
  Result<std::unique_ptr<RemoteTier>> tier = RemoteTier::Connect(
      std::make_shared<InProcessTransport>(authority), options);
  ASSERT_TRUE(tier.ok()) << tier.status();

  EXPECT_FALSE((*tier)->Lookup("cold-a").has_value());  // negative-cached
  EXPECT_FALSE((*tier)->Lookup("cold-b").has_value());  // negative-cached

  std::vector<std::optional<StoredVerdict>> got =
      (*tier)->LookupMany({"cold-a", "fresh", "cold-b"});
  ASSERT_EQ(got.size(), 3u);
  EXPECT_FALSE(got[0].has_value());
  ASSERT_TRUE(got[1].has_value());
  EXPECT_EQ(got[1]->witness_max_level, 7u);
  EXPECT_FALSE(got[2].has_value());
  // The batch asked the authority for exactly one key: "fresh".
  EXPECT_EQ(authority->stats().fetch_many_keys, 1u);

  // Entirely negative-cached burst: no round trip at all.
  const VerdictAuthority::Stats before = authority->stats();
  std::vector<std::optional<StoredVerdict>> cached =
      (*tier)->LookupMany({"cold-a", "cold-b"});
  EXPECT_FALSE(cached[0].has_value());
  EXPECT_FALSE(cached[1].has_value());
  EXPECT_EQ(authority->stats().fetch_many_requests, before.fetch_many_requests);
  EXPECT_EQ(authority->stats().fetches, before.fetches);
}

// --- engine integration ------------------------------------------------------

class TierEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddRelation("R", {"a", "b"}).ok());
    ASSERT_TRUE(catalog_.AddRelation("S", {"x", "y"}).ok());
    deps_ = *ParseDependencies(catalog_, "R[2] <= S[1]");
  }

  ConjunctiveQuery Parse(const std::string& text) {
    Result<ConjunctiveQuery> q = ParseQuery(catalog_, symbols_, text);
    EXPECT_TRUE(q.ok()) << q.status();
    return *std::move(q);
  }

  Catalog catalog_;
  SymbolTable symbols_;
  DependencySet deps_;
};

TEST_F(TierEngineTest, StorePathShimExpandsToLruPlusLocalStore) {
  EngineConfig config;
  config.store_path = NewStoreDir("shim");
  ContainmentEngine engine(&catalog_, &symbols_, config);
  const auto descs = engine.tier_descriptors();
  ASSERT_EQ(descs.size(), 2u);
  EXPECT_EQ(descs[0].kind, TierSpec::Kind::kLru);
  EXPECT_EQ(descs[1].kind, TierSpec::Kind::kLocalStore);
  EXPECT_TRUE(descs[0].active);
  EXPECT_TRUE(descs[1].active);
  EXPECT_NE(engine.store(), nullptr);
  EXPECT_TRUE(engine.store_status().ok());
}

TEST_F(TierEngineTest, DefaultConfigIsSingleLruTier) {
  ContainmentEngine engine(&catalog_, &symbols_);
  const auto descs = engine.tier_descriptors();
  ASSERT_EQ(descs.size(), 1u);
  EXPECT_EQ(descs[0].kind, TierSpec::Kind::kLru);
  EXPECT_EQ(engine.store(), nullptr);

  // Per-tier counters line up with the engine-level cache counters.
  Result<EngineVerdict> v = engine.Check(
      Parse("ans(u) :- R(u, v)"), Parse("ans(u) :- R(u, v), S(v, w)"), deps_);
  ASSERT_TRUE(v.ok());
  Result<EngineVerdict> again = engine.Check(
      Parse("ans(u) :- R(u, v)"), Parse("ans(u) :- R(u, v), S(v, w)"), deps_);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->cache_hit);
  const auto tiers = engine.tier_stats();
  ASSERT_EQ(tiers.size(), 1u);
  EXPECT_EQ(tiers[0].hits, engine.stats().cache_hits);
  EXPECT_EQ(tiers[0].publishes, 1u);
}

TEST_F(TierEngineTest, SecondEngineServedEntirelyOverLoopbackRemote) {
  auto authority = std::make_shared<VerdictAuthority>();

  ConjunctiveQuery q = Parse("ans(u) :- R(u, v)");
  ConjunctiveQuery qp = Parse("ans(u) :- R(u, v), S(v, w)");
  ConjunctiveQuery q2 = Parse("ans(u) :- R(u, v)");
  ConjunctiveQuery qp2 = Parse("ans(u) :- S(u, w)");

  bool contained_1 = false;
  bool contained_2 = false;
  {
    // Engine A decides and publishes to the shared authority; its teardown
    // drains the write-behind flush, like a process shutting down.
    EngineConfig config;
    config.tiers = {TierSpec::Lru(1 << 10),
                    TierSpec::Remote(
                        std::make_shared<InProcessTransport>(authority))};
    ContainmentEngine a(&catalog_, &symbols_, config);
    Result<EngineVerdict> v1 = a.Check(q, qp, deps_);
    Result<EngineVerdict> v2 = a.Check(q2, qp2, deps_);
    ASSERT_TRUE(v1.ok());
    ASSERT_TRUE(v2.ok());
    contained_1 = v1->report.contained;
    contained_2 = v2->report.contained;
    EXPECT_GT(a.stats().chases_built, 0u);
  }
  EXPECT_EQ(authority->size(), 2u);

  // Engine B: cold local caches, same authority. Every verdict arrives over
  // the loopback RemoteTier — zero chases built.
  EngineConfig config;
  config.tiers = {TierSpec::Lru(1 << 10),
                  TierSpec::Remote(
                      std::make_shared<InProcessTransport>(authority))};
  ContainmentEngine b(&catalog_, &symbols_, config);
  Result<EngineVerdict> v1 = b.Check(q, qp, deps_);
  Result<EngineVerdict> v2 = b.Check(q2, qp2, deps_);
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v1->report.contained, contained_1);
  EXPECT_EQ(v2->report.contained, contained_2);
  EXPECT_TRUE(v1->remote_hit);
  EXPECT_TRUE(v1->cache_hit);
  EXPECT_FALSE(v1->store_hit);
  EXPECT_EQ(b.stats().chases_built, 0u);
  EXPECT_EQ(b.stats().remote_hits, 2u);

  // A re-ask was promoted into B's LRU: no further transport traffic.
  const uint64_t fetches_before = authority->stats().fetches;
  Result<EngineVerdict> again = b.Check(q, qp, deps_);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->cache_hit);
  EXPECT_FALSE(again->remote_hit);
  EXPECT_EQ(authority->stats().fetches, fetches_before);
}

TEST_F(TierEngineTest, ThreeTierStackPromotesRemoteHitIntoStoreAndLru) {
  auto authority = std::make_shared<VerdictAuthority>();
  const std::string dir_a = NewStoreDir("three_a");
  const std::string dir_b = NewStoreDir("three_b");

  ConjunctiveQuery q = Parse("ans(u) :- R(u, v)");
  ConjunctiveQuery qp = Parse("ans(u) :- R(u, v), S(v, w)");
  {
    EngineConfig config;
    config.tiers = {TierSpec::Lru(1 << 10), TierSpec::LocalStore(dir_a),
                    TierSpec::Remote(
                        std::make_shared<InProcessTransport>(authority))};
    ContainmentEngine a(&catalog_, &symbols_, config);
    ASSERT_TRUE(a.Check(q, qp, deps_).ok());
  }
  ASSERT_EQ(authority->size(), 1u);

  // B has its own (empty) store: the verdict arrives from the remote tier
  // and is promoted through the whole local hierarchy.
  EngineConfig config;
  config.tiers = {TierSpec::Lru(1 << 10), TierSpec::LocalStore(dir_b),
                  TierSpec::Remote(
                      std::make_shared<InProcessTransport>(authority))};
  ContainmentEngine b(&catalog_, &symbols_, config);
  Result<EngineVerdict> v = b.Check(q, qp, deps_);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->remote_hit);
  EXPECT_EQ(b.stats().chases_built, 0u);
  ASSERT_NE(b.store(), nullptr);
  EXPECT_EQ(b.store()->size(), 1u);  // the promotion reached the store map
  EXPECT_GT(b.stats().store_writes, 0u);
}

TEST_F(TierEngineTest, QuarantinedRemoteEngineStillServes) {
  VerdictAuthority::Options opts;
  opts.fingerprint = StoreSchemaFingerprint() + 99;
  auto authority = std::make_shared<VerdictAuthority>(opts);

  EngineConfig config;
  config.tiers = {TierSpec::Lru(1 << 10),
                  TierSpec::Remote(
                      std::make_shared<InProcessTransport>(authority))};
  ContainmentEngine engine(&catalog_, &symbols_, config);
  const auto descs = engine.tier_descriptors();
  ASSERT_EQ(descs.size(), 2u);
  EXPECT_FALSE(descs[1].active);
  EXPECT_EQ(descs[1].status.code(), StatusCode::kFailedPrecondition);

  Result<EngineVerdict> v = engine.Check(
      Parse("ans(u) :- R(u, v)"), Parse("ans(u) :- R(u, v), S(v, w)"), deps_);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->report.contained);
  EXPECT_EQ(authority->stats().fetches, 0u);  // never consulted
}

TEST_F(TierEngineTest, TiersRequireEnableCache) {
  EngineConfig config;
  config.enable_cache = false;
  config.tiers = {TierSpec::Lru(1 << 10)};
  ContainmentEngine engine(&catalog_, &symbols_, config);
  EXPECT_EQ(engine.store_status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(engine.tier_descriptors().empty());
  // The engine itself still serves.
  Result<EngineVerdict> v = engine.Check(
      Parse("ans(u) :- R(u, v)"), Parse("ans(u) :- R(u, v), S(v, w)"), deps_);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->report.contained);
}

}  // namespace
}  // namespace cqchase
