#include "core/minimize.h"

#include <gtest/gtest.h>

#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "gen/scenarios.h"

namespace cqchase {
namespace {

TEST(MinimizeTest, IntroExampleDropsDepConjunctUnderInd) {
  Scenario s = EmpDepScenario();
  // Q1 = EMP ∧ DEP is non-minimal under the IND: DEP is redundant.
  Result<bool> nm = IsNonMinimal(s.queries[0], s.deps, *s.symbols);
  ASSERT_TRUE(nm.ok()) << nm.status();
  EXPECT_TRUE(*nm);
  Result<MinimizeReport> m = MinimizeQuery(s.queries[0], s.deps, *s.symbols);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->removed_conjuncts, 1u);
  EXPECT_EQ(m->query.conjuncts().size(), 1u);
  EXPECT_EQ(m->query.conjuncts()[0].relation, 0u);  // the EMP conjunct
}

TEST(MinimizeTest, IntroExampleMinimalWithoutInd) {
  Scenario s = EmpDepScenario();
  DependencySet none;
  Result<bool> nm = IsNonMinimal(s.queries[0], none, *s.symbols);
  ASSERT_TRUE(nm.ok());
  EXPECT_FALSE(*nm);
  Result<MinimizeReport> m = MinimizeQuery(s.queries[0], none, *s.symbols);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->removed_conjuncts, 0u);
  EXPECT_EQ(m->query.conjuncts().size(), 2u);
}

TEST(MinimizeTest, ClassicalRedundancyWithoutDependencies) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("E", {"s", "d"}).ok());
  SymbolTable symbols;
  DependencySet none;
  // E(x,y) ∧ E(x,y2): the second conjunct folds onto the first.
  ConjunctiveQuery q =
      *ParseQuery(catalog, symbols, "ans(x) :- E(x, y), E(x, y2)");
  Result<MinimizeReport> m = MinimizeQuery(q, none, symbols);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->removed_conjuncts, 1u);
  EXPECT_EQ(m->query.conjuncts().size(), 1u);
}

TEST(MinimizeTest, CoreOfFoldablePath) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("E", {"s", "d"}).ok());
  SymbolTable symbols;
  DependencySet none;
  // Boolean query: 3-path folds onto a single edge? No — but a path with a
  // doubling fold does: E(x,y), E(x,y'), E(y',z) folds to E(x,y), E(y,z)?
  // Use the classical example: E(a,b), E(c,b), E(c,d) has core of size...
  // all three are needed (zigzag); contrast with a foldable triangle copy.
  ConjunctiveQuery zigzag = *ParseQuery(
      catalog, symbols, "ans() :- E(a, b), E(cc, b), E(cc, d)");
  Result<MinimizeReport> m1 = MinimizeQuery(zigzag, none, symbols);
  ASSERT_TRUE(m1.ok());
  EXPECT_EQ(m1->removed_conjuncts, 2u)
      << "Boolean zigzag folds onto a single edge (b<-c->d collapses)";
  // With distinguished endpoints the zigzag is rigid.
  ConjunctiveQuery rigid = *ParseQuery(
      catalog, symbols, "ans(a, d) :- E(a, b), E(cc, b), E(cc, d)");
  Result<MinimizeReport> m2 = MinimizeQuery(rigid, none, symbols);
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m2->removed_conjuncts, 0u);
}

TEST(MinimizeTest, FdEnablesRemoval) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  SymbolTable symbols;
  DependencySet fd = *ParseDependencies(catalog, "R: 1 -> 2");
  // R(x,u), R(x,v) force u=v under the FD, so chasing Q−R(v,u) produces the
  // loop R(u,u) that both R(u,v) and R(v,u) fold onto — but without the FD
  // the 2-cycle through u,v is rigid and nothing can be removed. (A plain
  // "shadow conjunct" like R(x,y),R(x,z) would fold via y→z even without
  // the FD, which is why this test needs the cycle.)
  ConjunctiveQuery q = *ParseQuery(
      catalog, symbols, "ans(x) :- R(x, u), R(x, v), R(u, v), R(v, u)");
  Result<MinimizeReport> with_fd = MinimizeQuery(q, fd, symbols);
  ASSERT_TRUE(with_fd.ok());
  EXPECT_EQ(with_fd->removed_conjuncts, 1u);
  DependencySet none;
  Result<MinimizeReport> without = MinimizeQuery(q, none, symbols);
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(without->removed_conjuncts, 0u);
}

TEST(MinimizeTest, SafetyPreventsRemovingLastBinding) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("E", {"s", "d"}).ok());
  SymbolTable symbols;
  DependencySet none;
  ConjunctiveQuery q = *ParseQuery(catalog, symbols, "ans(x) :- E(x, y)");
  Result<MinimizeReport> m = MinimizeQuery(q, none, symbols);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->query.conjuncts().size(), 1u);
  Result<bool> nm = IsNonMinimal(q, none, symbols);
  ASSERT_TRUE(nm.ok());
  EXPECT_FALSE(*nm);
}

TEST(MinimizeTest, MinimizedQueryIsEquivalentToOriginal) {
  Scenario s = EmpDepScenario();
  Result<MinimizeReport> m = MinimizeQuery(s.queries[0], s.deps, *s.symbols);
  ASSERT_TRUE(m.ok());
  Result<bool> eq =
      CheckEquivalence(m->query, s.queries[0], s.deps, *s.symbols);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

}  // namespace
}  // namespace cqchase
