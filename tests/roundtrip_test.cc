// Round-trip properties: rendered queries and dependencies re-parse to equal
// objects, and rendering is deterministic. These pin down the text formats
// the examples and the chase explorer rely on.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/string_util.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "gen/generators.h"
#include "gen/scenarios.h"

namespace cqchase {
namespace {

class QueryRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryRoundTrip, ToStringReparsesToIsomorphicQuery) {
  Rng rng(GetParam());
  RandomCatalogParams cp;
  cp.num_relations = 3;
  cp.min_arity = 1;
  cp.max_arity = 4;
  Catalog catalog = RandomCatalog(rng, cp);
  SymbolTable symbols;
  RandomQueryParams qp;
  qp.num_conjuncts = 1 + GetParam() % 5;
  qp.num_dist_vars = 1 + GetParam() % 3;
  qp.constant_prob = (GetParam() % 2) ? 0.3 : 0.0;
  qp.name_prefix = StrCat("rt", GetParam());
  ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);
  ASSERT_TRUE(q.Validate().ok());

  std::string text = q.ToString();
  Result<ConjunctiveQuery> reparsed = ParseQuery(catalog, symbols, text);
  ASSERT_TRUE(reparsed.ok()) << text << "\n" << reparsed.status();
  // Variables re-parse to the same interned Terms, so the round trip is
  // exact equality, not just isomorphism.
  EXPECT_EQ(q, *reparsed) << text;
  // Rendering is stable.
  EXPECT_EQ(text, reparsed->ToString());
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryRoundTrip,
                         ::testing::Range<uint64_t>(1, 26));

class DepsRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DepsRoundTrip, RenderedDependenciesReparse) {
  Rng rng(GetParam());
  RandomCatalogParams cp;
  cp.num_relations = 3;
  cp.min_arity = 2;
  cp.max_arity = 4;
  Catalog catalog = RandomCatalog(rng, cp);
  DependencySet deps = (GetParam() % 2 == 0)
                           ? RandomKeyBasedDeps(rng, catalog, {})
                           : RandomIndOnlyDeps(rng, catalog, {});
  if (deps.empty()) GTEST_SKIP() << "empty random Sigma";
  std::string text = deps.ToString(catalog);
  Result<DependencySet> reparsed = ParseDependencies(catalog, text);
  ASSERT_TRUE(reparsed.ok()) << text << "\n" << reparsed.status();
  EXPECT_EQ(deps.fds(), reparsed->fds()) << text;
  EXPECT_EQ(deps.inds(), reparsed->inds()) << text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DepsRoundTrip,
                         ::testing::Range<uint64_t>(1, 21));

TEST(RoundTripEdgeCases, ScenarioQueriesReparse) {
  Scenario scenarios[] = {EmpDepScenario(), Fig1Scenario(),
                          Section4Scenario(), KeyBasedEmpDepScenario()};
  for (Scenario& s : scenarios) {
    for (const ConjunctiveQuery& q : s.queries) {
      Result<ConjunctiveQuery> reparsed =
          ParseQuery(*s.catalog, *s.symbols, q.ToString());
      ASSERT_TRUE(reparsed.ok()) << q.ToString();
      EXPECT_EQ(q, *reparsed);
    }
    Result<DependencySet> redeps =
        ParseDependencies(*s.catalog, s.deps.ToString(*s.catalog));
    ASSERT_TRUE(redeps.ok()) << s.deps.ToString(*s.catalog);
    EXPECT_EQ(s.deps.fds(), redeps->fds());
    EXPECT_EQ(s.deps.inds(), redeps->inds());
  }
}

TEST(RoundTripEdgeCases, ConstantsAndBooleanHeads) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  SymbolTable symbols;
  for (const char* text :
       {"ans() :- R(x, y)", "ans(x) :- R(x, '7')",
        "ans(x, 'acme') :- R(x, y)", "ans(x) :- R(x, x)"}) {
    Result<ConjunctiveQuery> q = ParseQuery(catalog, symbols, text);
    ASSERT_TRUE(q.ok()) << text;
    Result<ConjunctiveQuery> round =
        ParseQuery(catalog, symbols, q->ToString());
    ASSERT_TRUE(round.ok()) << q->ToString();
    EXPECT_EQ(*q, *round) << text;
  }
}

}  // namespace
}  // namespace cqchase
