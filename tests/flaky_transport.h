// FlakyTransport: a fault-injecting VerdictTransport decorator for tests.
// Wraps any inner transport (loopback, TCP, sharded) and, driven by a
// deterministic seed, drops round trips, delays them, or garbles response
// bytes — the three failure shapes a networked tier must degrade through
// (miss, slow, confused peer) without ever serving a wrong verdict.
//
// Determinism: all decisions come from Rng(seed), so a failing seed is a
// reproduction recipe, not a flake. The hello handshake is spared by
// default (spare_hello) so RemoteTier::Connect succeeds and the faults land
// on live traffic, where the degradation contracts actually bite.
#ifndef CQCHASE_TESTS_FLAKY_TRANSPORT_H_
#define CQCHASE_TESTS_FLAKY_TRANSPORT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

#include "base/rng.h"
#include "base/status.h"
#include "engine/remote_tier.h"

namespace cqchase {
namespace testing_support {

struct FlakyTransportOptions {
  // Probability each round trip is dropped (fails with kInternal before
  // reaching the inner transport — an unreachable peer).
  double drop_rate = 0.0;
  // Probability a *successful* inner response gets one byte flipped — a
  // confused peer whose frames no longer decode (the checksum catches it).
  double garble_rate = 0.0;
  // Fixed extra latency per round trip (applied before the inner call).
  std::chrono::milliseconds delay{0};
  uint64_t seed = 1;
  // Let hello frames through un-faulted so connection setup succeeds.
  bool spare_hello = true;
};

class FlakyTransport final : public VerdictTransport {
 public:
  FlakyTransport(std::shared_ptr<VerdictTransport> inner,
                 FlakyTransportOptions options)
      : inner_(std::move(inner)),
        options_(options),
        rng_(options.seed),
        peer_(std::string("flaky:") + std::string(inner_->Peer())) {}

  Status RoundTrip(const std::string& request, std::string* response) override {
    bool drop = false;
    bool garble = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const bool spared = options_.spare_hello && IsHello(request);
      if (!spared) {
        drop = rng_.Bernoulli(options_.drop_rate);
        garble = !drop && rng_.Bernoulli(options_.garble_rate);
      }
    }
    if (options_.delay.count() > 0) std::this_thread::sleep_for(options_.delay);
    if (drop) {
      std::lock_guard<std::mutex> lock(mu_);
      ++dropped_;
      return Status::Internal("flaky transport dropped the round trip");
    }
    Status inner = inner_->RoundTrip(request, response);
    if (!inner.ok()) return inner;
    if (garble && response->size() > 4) {
      std::lock_guard<std::mutex> lock(mu_);
      ++garbled_;
      // Flip a bit in the payload region (past the u32 length prefix, so the
      // frame still reassembles and the checksum must do the catching).
      const size_t pos = 4 + rng_.Index(response->size() - 4);
      (*response)[pos] = static_cast<char>((*response)[pos] ^ 0x40);
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++delivered_;
    return Status::OK();
  }

  std::string_view Peer() const override { return peer_; }
  VerdictTransportStats TransportStats() const override {
    return inner_->TransportStats();
  }

  uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }
  uint64_t garbled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return garbled_;
  }
  uint64_t delivered() const {
    std::lock_guard<std::mutex> lock(mu_);
    return delivered_;
  }

 private:
  static bool IsHello(const std::string& framed) {
    std::string payload;
    return UnframeTierMessage(framed, &payload).ok() && !payload.empty() &&
           static_cast<uint8_t>(payload[0]) == kTierOpHello;
  }

  const std::shared_ptr<VerdictTransport> inner_;
  const FlakyTransportOptions options_;

  mutable std::mutex mu_;
  Rng rng_;
  uint64_t dropped_ = 0;
  uint64_t garbled_ = 0;
  uint64_t delivered_ = 0;
  const std::string peer_;
};

}  // namespace testing_support
}  // namespace cqchase

#endif  // CQCHASE_TESTS_FLAKY_TRANSPORT_H_
