#include "cq/cq_parser.h"

#include <gtest/gtest.h>

#include "cq/query.h"

namespace cqchase {
namespace {

Catalog EmpDepCatalog() {
  Catalog c;
  EXPECT_TRUE(c.AddRelation("EMP", {"eno", "sal", "dept"}).ok());
  EXPECT_TRUE(c.AddRelation("DEP", {"dept", "loc"}).ok());
  return c;
}

TEST(CqParserTest, ParsesIntroExampleQ1) {
  Catalog c = EmpDepCatalog();
  SymbolTable symbols;
  Result<ConjunctiveQuery> q =
      ParseQuery(c, symbols, "ans(e) :- EMP(e, s, d), DEP(d, l)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->conjuncts().size(), 2u);
  EXPECT_EQ(q->summary().size(), 1u);
  EXPECT_TRUE(q->summary()[0].is_dist_var());
  // s, d, l are NDVs.
  EXPECT_EQ(q->Variables().size(), 4u);
  EXPECT_EQ(q->ToString(), "ans(e) :- EMP(e, s, d), DEP(d, l)");
}

TEST(CqParserTest, HeadVariablesAreDistinguishedEverywhere) {
  Catalog c = EmpDepCatalog();
  SymbolTable symbols;
  ConjunctiveQuery q = *ParseQuery(c, symbols, "ans(d) :- DEP(d, l)");
  EXPECT_TRUE(q.conjuncts()[0].terms[0].is_dist_var());
  EXPECT_TRUE(q.conjuncts()[0].terms[1].is_nondist_var());
}

TEST(CqParserTest, ParsesConstants) {
  Catalog c = EmpDepCatalog();
  SymbolTable symbols;
  ConjunctiveQuery q =
      *ParseQuery(c, symbols, "ans(e) :- EMP(e, 42, 'toys'), DEP('toys', l)");
  EXPECT_TRUE(q.conjuncts()[0].terms[1].is_constant());
  EXPECT_TRUE(q.conjuncts()[0].terms[2].is_constant());
  EXPECT_EQ(q.conjuncts()[0].terms[2], q.conjuncts()[1].terms[0]);
  EXPECT_EQ(symbols.Name(q.conjuncts()[0].terms[1]), "42");
  EXPECT_EQ(symbols.Name(q.conjuncts()[0].terms[2]), "toys");
}

TEST(CqParserTest, ConstantsAllowedInHead) {
  Catalog c = EmpDepCatalog();
  SymbolTable symbols;
  Result<ConjunctiveQuery> q =
      ParseQuery(c, symbols, "ans(e, 'hq') :- EMP(e, s, d)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->summary()[1].is_constant());
}

TEST(CqParserTest, BooleanQueryHasEmptySummary) {
  Catalog c = EmpDepCatalog();
  SymbolTable symbols;
  Result<ConjunctiveQuery> q = ParseQuery(c, symbols, "ans() :- DEP(d, l)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->summary().empty());
}

TEST(CqParserTest, SharedSymbolTableUnifiesVariablesAcrossQueries) {
  Catalog c = EmpDepCatalog();
  SymbolTable symbols;
  ConjunctiveQuery q1 = *ParseQuery(c, symbols, "ans(e) :- EMP(e, s, d)");
  ConjunctiveQuery q2 =
      *ParseQuery(c, symbols, "ans(e) :- EMP(e, s2, d2), DEP(d2, l)");
  EXPECT_EQ(q1.summary()[0], q2.summary()[0]);
}

TEST(CqParserTest, RejectsUnknownRelation) {
  Catalog c = EmpDepCatalog();
  SymbolTable symbols;
  EXPECT_FALSE(ParseQuery(c, symbols, "ans(x) :- NOPE(x)").ok());
}

TEST(CqParserTest, RejectsArityMismatch) {
  Catalog c = EmpDepCatalog();
  SymbolTable symbols;
  Result<ConjunctiveQuery> q = ParseQuery(c, symbols, "ans(x) :- DEP(x)");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(CqParserTest, RejectsUnsafeQuery) {
  Catalog c = EmpDepCatalog();
  SymbolTable symbols;
  // Head variable x never occurs in the body.
  EXPECT_FALSE(ParseQuery(c, symbols, "ans(x) :- DEP(d, l)").ok());
}

TEST(CqParserTest, RejectsSyntaxErrors) {
  Catalog c = EmpDepCatalog();
  SymbolTable symbols;
  EXPECT_FALSE(ParseQuery(c, symbols, "ans(x :- DEP(x, l)").ok());
  EXPECT_FALSE(ParseQuery(c, symbols, "ans(x) :- DEP(x, l) trailing").ok());
  EXPECT_FALSE(ParseQuery(c, symbols, "ans(x) :- DEP(x, 'l").ok());
  EXPECT_FALSE(ParseQuery(c, symbols, ":- DEP(x, l)").ok());
}

TEST(QueryTest, ValidateRejectsDuplicateConjuncts) {
  Catalog c = EmpDepCatalog();
  SymbolTable symbols;
  ConjunctiveQuery q(&c, &symbols);
  Term d = symbols.InternDistVar("d");
  Term l = symbols.InternNondistVar("l");
  q.AddConjunct(Fact{1, {d, l}});
  q.AddConjunct(Fact{1, {d, l}});
  q.SetSummary({d});
  EXPECT_FALSE(q.Validate().ok());
}

TEST(QueryTest, ValidateRejectsNdvInSummary) {
  Catalog c = EmpDepCatalog();
  SymbolTable symbols;
  ConjunctiveQuery q(&c, &symbols);
  Term d = symbols.InternNondistVar("d");
  Term l = symbols.InternNondistVar("l");
  q.AddConjunct(Fact{1, {d, l}});
  q.SetSummary({d});
  EXPECT_FALSE(q.Validate().ok());
}

TEST(QueryTest, EmptyQueryRendersFalse) {
  Catalog c = EmpDepCatalog();
  SymbolTable symbols;
  ConjunctiveQuery q(&c, &symbols);
  Term x = symbols.InternDistVar("x");
  q.SetSummary({x});
  q.MarkEmptyQuery();
  EXPECT_TRUE(q.is_empty_query());
  EXPECT_EQ(q.ToString(), "ans(x) :- false");
}

TEST(QueryTest, AllTermsFirstOccurrenceOrder) {
  Catalog c = EmpDepCatalog();
  SymbolTable symbols;
  ConjunctiveQuery q =
      *ParseQuery(c, symbols, "ans(e) :- EMP(e, s, d), DEP(d, l)");
  std::vector<Term> terms = q.AllTerms();
  ASSERT_EQ(terms.size(), 4u);
  EXPECT_EQ(symbols.Name(terms[0]), "e");
  EXPECT_EQ(symbols.Name(terms[1]), "s");
  EXPECT_EQ(symbols.Name(terms[2]), "d");
  EXPECT_EQ(symbols.Name(terms[3]), "l");
}

}  // namespace
}  // namespace cqchase
