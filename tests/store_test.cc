// The persistent verdict store: round-trip fidelity through snapshot and
// log, the quarantine-never-trust policy for version-mismatched / corrupt /
// truncated files, torn-tail salvage, concurrent readers during a
// write-behind flush (this binary runs in the TSan CI stage), and the
// end-to-end restart contract — an engine opened on a populated store
// answers the repeated workload with zero chases built.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "base/string_util.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "engine/engine.h"
#include "engine/serialize.h"
#include "engine/store.h"

namespace cqchase {
namespace {

// --- raw file helpers (tests corrupt files on purpose) -----------------------

std::string ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[4096];
  size_t n = 0;
  while (f != nullptr && (n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  if (f != nullptr) std::fclose(f);
  return out;
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

void AppendRaw(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

// A fresh (cleaned) store directory under the test temp root.
std::string NewStoreDir(const std::string& name) {
  const std::string dir = StrCat(::testing::TempDir(), "/cqchase_", name);
  for (const char* file :
       {"/snapshot.cqvs", "/snapshot.cqvs.tmp", "/snapshot.cqvs.quarantine",
        "/log.cqvl", "/log.cqvl.quarantine", "/LOCK"}) {
    std::remove(StrCat(dir, file).c_str());
  }
  ::rmdir(dir.c_str());
  return dir;
}

StoredVerdict MakeVerdict(uint32_t seed) {
  StoredVerdict v;
  v.contained = (seed % 2) == 0;
  v.chase_outcome = static_cast<uint8_t>(seed % 3);
  v.sigma_class = static_cast<uint8_t>(seed % 6);
  v.strategy = static_cast<uint8_t>(seed % 5);
  v.witness_max_level = seed;
  v.chase_levels = seed + 1;
  v.level_bound = 100ULL * seed;
  v.chase_conjuncts = 7ULL * seed;
  v.certified = (seed % 3) == 0;
  v.certificate_depth = v.certified ? seed : 0;
  return v;
}

void ExpectVerdictEq(const StoredVerdict& a, const StoredVerdict& b) {
  EXPECT_EQ(a.contained, b.contained);
  EXPECT_EQ(a.chase_outcome, b.chase_outcome);
  EXPECT_EQ(a.sigma_class, b.sigma_class);
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.witness_max_level, b.witness_max_level);
  EXPECT_EQ(a.chase_levels, b.chase_levels);
  EXPECT_EQ(a.level_bound, b.level_bound);
  EXPECT_EQ(a.chase_conjuncts, b.chase_conjuncts);
  EXPECT_EQ(a.certified, b.certified);
  EXPECT_EQ(a.certificate_depth, b.certificate_depth);
}

std::unique_ptr<VerdictStore> MustOpen(const std::string& dir,
                                       VerdictStoreOptions options = {}) {
  Result<std::unique_ptr<VerdictStore>> store =
      VerdictStore::Open(dir, options);
  EXPECT_TRUE(store.ok()) << store.status();
  return *std::move(store);
}

// --- round trips -------------------------------------------------------------

TEST(StoreTest, RoundTripThroughSnapshot) {
  const std::string dir = NewStoreDir("roundtrip");
  constexpr size_t kEntries = 50;
  {
    std::unique_ptr<VerdictStore> store = MustOpen(dir);
    for (size_t i = 0; i < kEntries; ++i) {
      store->Put(StrCat("key-", i), MakeVerdict(static_cast<uint32_t>(i)));
    }
    EXPECT_EQ(store->size(), kEntries);
    // Close: flush + compact → everything lands in the snapshot.
  }
  EXPECT_TRUE(FileExists(StrCat(dir, "/snapshot.cqvs")));
  EXPECT_FALSE(FileExists(StrCat(dir, "/log.cqvl")));  // truncated away

  std::unique_ptr<VerdictStore> reopened = MustOpen(dir);
  EXPECT_EQ(reopened->size(), kEntries);
  EXPECT_EQ(reopened->stats().snapshot_entries_loaded, kEntries);
  for (size_t i = 0; i < kEntries; ++i) {
    auto hit = reopened->Lookup(StrCat("key-", i));
    ASSERT_TRUE(hit.has_value()) << i;
    ExpectVerdictEq(*hit, MakeVerdict(static_cast<uint32_t>(i)));
  }
  EXPECT_FALSE(reopened->Lookup("missing").has_value());
}

TEST(StoreTest, RoundTripThroughLogWithoutCompaction) {
  const std::string dir = NewStoreDir("logreplay");
  VerdictStoreOptions no_compact;
  no_compact.compact_on_close = false;
  {
    std::unique_ptr<VerdictStore> store = MustOpen(dir, no_compact);
    store->Put("a", MakeVerdict(1));
    store->Put("b", MakeVerdict(2));
    store->Put("a", MakeVerdict(3));  // overwrite: last write wins on replay
    // Close flushes the pending appends to the log but leaves no snapshot.
  }
  EXPECT_FALSE(FileExists(StrCat(dir, "/snapshot.cqvs")));
  EXPECT_TRUE(FileExists(StrCat(dir, "/log.cqvl")));

  std::unique_ptr<VerdictStore> reopened = MustOpen(dir);
  EXPECT_EQ(reopened->size(), 2u);
  EXPECT_EQ(reopened->stats().log_entries_replayed, 3u);
  ASSERT_TRUE(reopened->Lookup("a").has_value());
  ExpectVerdictEq(*reopened->Lookup("a"), MakeVerdict(3));
  ExpectVerdictEq(*reopened->Lookup("b"), MakeVerdict(2));
}

TEST(StoreTest, LogWinsOverSnapshotOnDuplicateKeys) {
  const std::string dir = NewStoreDir("logwins");
  {
    std::unique_ptr<VerdictStore> store = MustOpen(dir);
    store->Put("k", MakeVerdict(1));
  }  // snapshot holds verdict 1
  VerdictStoreOptions no_compact;
  no_compact.compact_on_close = false;
  {
    std::unique_ptr<VerdictStore> store = MustOpen(dir, no_compact);
    store->Put("k", MakeVerdict(9));
  }  // log holds the newer verdict 9
  std::unique_ptr<VerdictStore> reopened = MustOpen(dir);
  ASSERT_TRUE(reopened->Lookup("k").has_value());
  ExpectVerdictEq(*reopened->Lookup("k"), MakeVerdict(9));
}

TEST(StoreTest, ExplicitFlushMakesEntriesDurableWithoutCompaction) {
  const std::string dir = NewStoreDir("flushdurable");
  VerdictStoreOptions no_compact;
  no_compact.compact_on_close = false;
  {
    std::unique_ptr<VerdictStore> store = MustOpen(dir, no_compact);
    store->Put("k", MakeVerdict(4));
    EXPECT_TRUE(store->has_pending());
    ASSERT_TRUE(store->Flush().ok());
    EXPECT_FALSE(store->has_pending());
    EXPECT_EQ(store->stats().records_flushed, 1u);
    // Nothing is pending at close, so the reopen below reads what the
    // explicit mid-life Flush wrote, not a close-time flush.
  }
  std::unique_ptr<VerdictStore> reopened = MustOpen(dir, no_compact);
  ASSERT_TRUE(reopened->Lookup("k").has_value());
}

TEST(StoreTest, FailedOpenLeavesDurableStateUntouched) {
  const std::string dir = NewStoreDir("failedopen");
  VerdictStoreOptions no_compact;
  no_compact.compact_on_close = false;
  {
    std::unique_ptr<VerdictStore> store = MustOpen(dir, no_compact);
    store->Put("survivor-1", MakeVerdict(1));
    store->Put("survivor-2", MakeVerdict(2));
  }  // durable state: log.cqvl with two entries, no snapshot

  // A snapshot that is present but unreadable (here: a directory at its
  // path — fopen succeeds, fread fails) must fail the Open *without* the
  // teardown compacting an empty map over the durable files.
  const std::string snapshot = StrCat(dir, "/snapshot.cqvs");
  ASSERT_EQ(::mkdir(snapshot.c_str(), 0755), 0);
  Result<std::unique_ptr<VerdictStore>> failed = VerdictStore::Open(dir);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(FileExists(StrCat(dir, "/log.cqvl")));  // log untouched

  // Clear the obstruction: everything is still there.
  ASSERT_EQ(::rmdir(snapshot.c_str()), 0);
  std::unique_ptr<VerdictStore> recovered = MustOpen(dir);
  EXPECT_EQ(recovered->size(), 2u);
  ASSERT_TRUE(recovered->Lookup("survivor-1").has_value());
  ASSERT_TRUE(recovered->Lookup("survivor-2").has_value());
}

TEST(StoreTest, LogFrameWithTrailingGarbageTruncatedAsTorn) {
  const std::string dir = NewStoreDir("frametrailing");
  VerdictStoreOptions no_compact;
  no_compact.compact_on_close = false;
  {
    std::unique_ptr<VerdictStore> store = MustOpen(dir, no_compact);
    store->Put("good", MakeVerdict(1));
  }
  // Append a checksummed frame whose payload is a valid entry plus extra
  // bytes — the shape an unversioned future format change would take. It
  // must not replay; it marks the start of the dropped tail.
  std::string payload;
  EncodeVerdictEntry("evil", MakeVerdict(2), payload);
  payload += "\x01\x02trailing";
  std::string frame;
  wire::PutFramed(frame, payload);
  AppendRaw(StrCat(dir, "/log.cqvl"), frame);

  std::unique_ptr<VerdictStore> store = MustOpen(dir, no_compact);
  EXPECT_EQ(store->size(), 1u);
  EXPECT_FALSE(store->Lookup("evil").has_value());
  EXPECT_EQ(store->stats().torn_tail_bytes_dropped, frame.size());
}

TEST(StoreTest, SecondOpenerRejectedWhileLocked) {
  const std::string dir = NewStoreDir("locked");
  std::unique_ptr<VerdictStore> owner = MustOpen(dir);
  // Same process or another: a store directory has exactly one owner, so a
  // second Open must fail cleanly instead of interleaving log writes.
  Result<std::unique_ptr<VerdictStore>> second = VerdictStore::Open(dir);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  owner.reset();  // releases the flock
  EXPECT_NE(MustOpen(dir), nullptr);
}

TEST(StoreTest, PutIfAbsentInsertsOnceOnly) {
  const std::string dir = NewStoreDir("putifabsent");
  std::unique_ptr<VerdictStore> store = MustOpen(dir);
  EXPECT_TRUE(store->PutIfAbsent("k", MakeVerdict(1)));
  EXPECT_FALSE(store->PutIfAbsent("k", MakeVerdict(2)));  // first wins
  ASSERT_TRUE(store->Lookup("k").has_value());
  ExpectVerdictEq(*store->Lookup("k"), MakeVerdict(1));
  EXPECT_EQ(store->stats().appends, 1u);  // one durable record, not two
}

TEST(StoreTest, PendingBufferShedsOldestBeyondCap) {
  const std::string dir = NewStoreDir("backpressure");
  VerdictStoreOptions no_compact;
  no_compact.compact_on_close = false;
  std::unique_ptr<VerdictStore> store = MustOpen(dir, no_compact);
  // Simulate a stuck flusher: Put past the pending cap without flushing.
  constexpr size_t kOverCap = (1 << 16) + 10;
  for (size_t i = 0; i < kOverCap; ++i) {
    store->Put(StrCat("k", i), MakeVerdict(static_cast<uint32_t>(i)));
  }
  EXPECT_EQ(store->stats().records_dropped, 10u);
  // Shed entries are still served from memory — only durability was lost.
  EXPECT_TRUE(store->Lookup("k0").has_value());
  EXPECT_EQ(store->size(), kOverCap);
}

// --- quarantine: version / fingerprint / corruption --------------------------

// A syntactically valid snapshot whose header fields are caller-chosen.
std::string CraftSnapshot(uint32_t magic, uint32_t version,
                          uint64_t fingerprint) {
  std::string payload;  // zero entries
  std::string file;
  wire::PutU32(file, magic);
  wire::PutU32(file, version);
  wire::PutU64(file, fingerprint);
  wire::PutU64(file, 0);  // count
  wire::PutU64(file, payload.size());
  wire::PutU64(file, wire::Fnv1a64(payload));
  return file + payload;
}

TEST(StoreTest, VersionMismatchQuarantinesSnapshot) {
  const std::string dir = NewStoreDir("version");
  ASSERT_TRUE(VerdictStore::Open(dir).ok());  // creates the directory
  const std::string snapshot = StrCat(dir, "/snapshot.cqvs");
  WriteAll(snapshot, CraftSnapshot(kSnapshotMagic, kStoreFormatVersion + 1,
                                   StoreSchemaFingerprint()));

  std::unique_ptr<VerdictStore> store = MustOpen(dir);
  EXPECT_EQ(store->size(), 0u);
  EXPECT_EQ(store->stats().quarantined_files, 1u);
  EXPECT_FALSE(FileExists(snapshot));
  EXPECT_TRUE(FileExists(snapshot + ".quarantine"));
  // The rebuilt store is fully usable.
  store->Put("fresh", MakeVerdict(1));
  EXPECT_TRUE(store->Flush().ok());
}

TEST(StoreTest, SchemaFingerprintMismatchQuarantinesSnapshot) {
  const std::string dir = NewStoreDir("fingerprint");
  ASSERT_TRUE(VerdictStore::Open(dir).ok());
  const std::string snapshot = StrCat(dir, "/snapshot.cqvs");
  WriteAll(snapshot, CraftSnapshot(kSnapshotMagic, kStoreFormatVersion,
                                   StoreSchemaFingerprint() ^ 1));
  std::unique_ptr<VerdictStore> store = MustOpen(dir);
  EXPECT_EQ(store->size(), 0u);
  EXPECT_EQ(store->stats().quarantined_files, 1u);
  EXPECT_TRUE(FileExists(snapshot + ".quarantine"));
}

TEST(StoreTest, CorruptSnapshotPayloadQuarantined) {
  const std::string dir = NewStoreDir("corrupt");
  {
    std::unique_ptr<VerdictStore> store = MustOpen(dir);
    for (int i = 0; i < 10; ++i) {
      store->Put(StrCat("k", i), MakeVerdict(i));
    }
  }
  const std::string snapshot = StrCat(dir, "/snapshot.cqvs");
  std::string bytes = ReadAll(snapshot);
  bytes[bytes.size() - 3] ^= 0x40;  // bit-flip inside the payload
  WriteAll(snapshot, bytes);

  std::unique_ptr<VerdictStore> store = MustOpen(dir);
  EXPECT_EQ(store->size(), 0u);  // rebuilt, not half-trusted
  EXPECT_EQ(store->stats().quarantined_files, 1u);
  EXPECT_TRUE(FileExists(snapshot + ".quarantine"));
}

TEST(StoreTest, HostileEntryCountQuarantinedInsteadOfAllocating) {
  const std::string dir = NewStoreDir("badcount");
  { MustOpen(dir); }  // creates the directory (and an empty snapshot)
  const std::string snapshot = StrCat(dir, "/snapshot.cqvs");
  // A header whose count the payload cannot possibly hold: the payload
  // checksum does not cover the count field, so without its own bound this
  // would reach unordered_map::reserve(2^60) and terminate the process.
  std::string file;
  wire::PutU32(file, kSnapshotMagic);
  wire::PutU32(file, kStoreFormatVersion);
  wire::PutU64(file, StoreSchemaFingerprint());
  wire::PutU64(file, uint64_t{1} << 60);  // count
  wire::PutU64(file, 0);                  // payload size (empty payload)
  wire::PutU64(file, wire::Fnv1a64(""));
  WriteAll(snapshot, file);

  std::unique_ptr<VerdictStore> store = MustOpen(dir);
  EXPECT_EQ(store->size(), 0u);
  EXPECT_EQ(store->stats().quarantined_files, 1u);
  EXPECT_TRUE(FileExists(snapshot + ".quarantine"));
}

TEST(StoreTest, CountPayloadDisagreementQuarantined) {
  const std::string dir = NewStoreDir("countdisagree");
  { MustOpen(dir); }
  const std::string snapshot = StrCat(dir, "/snapshot.cqvs");
  // Payload holds two valid entries but the header claims one: the file is
  // internally inconsistent and must not be half-believed.
  std::string payload;
  EncodeVerdictEntry("k1", MakeVerdict(1), payload);
  EncodeVerdictEntry("k2", MakeVerdict(2), payload);
  std::string file;
  wire::PutU32(file, kSnapshotMagic);
  wire::PutU32(file, kStoreFormatVersion);
  wire::PutU64(file, StoreSchemaFingerprint());
  wire::PutU64(file, 1);  // count: lies
  wire::PutU64(file, payload.size());
  wire::PutU64(file, wire::Fnv1a64(payload));
  WriteAll(snapshot, file + payload);

  std::unique_ptr<VerdictStore> store = MustOpen(dir);
  EXPECT_EQ(store->size(), 0u);
  EXPECT_EQ(store->stats().quarantined_files, 1u);
}

TEST(StoreTest, TruncatedSnapshotQuarantined) {
  const std::string dir = NewStoreDir("truncated");
  {
    std::unique_ptr<VerdictStore> store = MustOpen(dir);
    for (int i = 0; i < 10; ++i) {
      store->Put(StrCat("k", i), MakeVerdict(i));
    }
  }
  const std::string snapshot = StrCat(dir, "/snapshot.cqvs");
  std::string bytes = ReadAll(snapshot);
  bytes.resize(bytes.size() / 2);
  WriteAll(snapshot, bytes);

  std::unique_ptr<VerdictStore> store = MustOpen(dir);
  EXPECT_EQ(store->size(), 0u);
  EXPECT_EQ(store->stats().quarantined_files, 1u);
}

TEST(StoreTest, ForeignLogHeaderQuarantinesLog) {
  const std::string dir = NewStoreDir("badlog");
  ASSERT_TRUE(VerdictStore::Open(dir).ok());
  const std::string log = StrCat(dir, "/log.cqvl");
  WriteAll(log, "this is not a verdict log at all, not even close");

  std::unique_ptr<VerdictStore> store = MustOpen(dir);
  EXPECT_EQ(store->size(), 0u);
  EXPECT_EQ(store->stats().quarantined_files, 1u);
  EXPECT_FALSE(FileExists(log));
  EXPECT_TRUE(FileExists(log + ".quarantine"));
}

TEST(StoreTest, TornLogTailSalvagesPrefix) {
  const std::string dir = NewStoreDir("torntail");
  VerdictStoreOptions no_compact;
  no_compact.compact_on_close = false;
  {
    std::unique_ptr<VerdictStore> store = MustOpen(dir, no_compact);
    for (int i = 0; i < 3; ++i) {
      store->Put(StrCat("k", i), MakeVerdict(i));
    }
  }
  const std::string log = StrCat(dir, "/log.cqvl");
  const std::string garbage = "\x13\x37torn-mid-append";
  AppendRaw(log, garbage);  // a crash mid-append leaves exactly this shape

  {
    std::unique_ptr<VerdictStore> store = MustOpen(dir, no_compact);
    EXPECT_EQ(store->size(), 3u);  // prefix salvaged
    EXPECT_EQ(store->stats().torn_tail_bytes_dropped, garbage.size());
    EXPECT_EQ(store->stats().quarantined_files, 0u);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(store->Lookup(StrCat("k", i)).has_value()) << i;
    }
    // The tail was truncated away, so appending works from a clean boundary.
    store->Put("after-salvage", MakeVerdict(42));
  }
  std::unique_ptr<VerdictStore> reopened = MustOpen(dir);
  EXPECT_EQ(reopened->size(), 4u);
  EXPECT_EQ(reopened->stats().torn_tail_bytes_dropped, 0u);
  ASSERT_TRUE(reopened->Lookup("after-salvage").has_value());
}

// --- capacity bound ----------------------------------------------------------

TEST(StoreTest, MaxEntriesRefusesNewKeysPastTheCap) {
  const std::string dir = NewStoreDir("capped");
  VerdictStoreOptions options;
  options.max_entries = 3;
  std::unique_ptr<VerdictStore> store = MustOpen(dir, options);
  for (uint32_t i = 0; i < 3; ++i) {
    store->Put(StrCat("k", i), MakeVerdict(i));
  }
  EXPECT_EQ(store->size(), 3u);

  // At the bound: new keys are refused and counted; the cache stays
  // bounded, the asker just recomputes.
  store->Put("k3", MakeVerdict(3));
  EXPECT_FALSE(store->PutIfAbsent("k4", MakeVerdict(4)));
  EXPECT_EQ(store->size(), 3u);
  EXPECT_FALSE(store->Lookup("k3").has_value());
  VerdictStoreStats stats = store->stats();
  EXPECT_EQ(stats.records_capped, 2u);
  EXPECT_EQ(stats.max_entries, 3u);
  EXPECT_EQ(stats.appends, 3u);  // refused Puts never reach the log

  // Overwrites of resident keys still land (they grow nothing).
  store->Put("k1", MakeVerdict(42));
  ASSERT_TRUE(store->Lookup("k1").has_value());
  EXPECT_EQ(store->Lookup("k1")->witness_max_level, 42u);
  EXPECT_EQ(store->size(), 3u);
}

TEST(StoreTest, MaxEntriesExemptsOpenTimeRestore) {
  const std::string dir = NewStoreDir("capped_restore");
  {
    std::unique_ptr<VerdictStore> store = MustOpen(dir);
    for (uint32_t i = 0; i < 5; ++i) {
      store->Put(StrCat("k", i), MakeVerdict(i));
    }
  }
  // A cap smaller than the durable population must not drop entries that
  // are already paid for — it only gates growth.
  VerdictStoreOptions options;
  options.max_entries = 2;
  std::unique_ptr<VerdictStore> store = MustOpen(dir, options);
  EXPECT_EQ(store->size(), 5u);
  store->Put("k9", MakeVerdict(9));
  EXPECT_EQ(store->size(), 5u);
  EXPECT_EQ(store->stats().records_capped, 1u);
}

// --- concurrency (TSan CI stage) ---------------------------------------------

TEST(StoreTest, ConcurrentReadersDuringWriteBehindFlush) {
  const std::string dir = NewStoreDir("concurrent");
  std::unique_ptr<VerdictStore> store = MustOpen(dir);
  constexpr int kWrites = 400;
  std::atomic<bool> done{false};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&store, &done, t] {
      uint64_t hits = 0;
      int i = 0;
      while (!done.load(std::memory_order_acquire)) {
        if (store->Lookup(StrCat("k", (i + t) % kWrites)).has_value()) ++hits;
        ++i;
      }
      (void)hits;
    });
  }
  // The writer interleaves Puts with the flushes the engine would normally
  // run on its executor; readers must never block on, or race with, the
  // file I/O.
  for (int i = 0; i < kWrites; ++i) {
    store->Put(StrCat("k", i), MakeVerdict(i));
    if (i % 16 == 0) {
      ASSERT_TRUE(store->Flush().ok());
    }
  }
  ASSERT_TRUE(store->Flush().ok());
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(store->size(), static_cast<size_t>(kWrites));
  EXPECT_EQ(store->stats().records_flushed, static_cast<uint64_t>(kWrites));
}

// --- engine integration: the restart contract --------------------------------

class StoreEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddRelation("R", {"a", "b"}).ok());
    ASSERT_TRUE(catalog_.AddRelation("S", {"x", "y"}).ok());
    deps_ = *ParseDependencies(catalog_, "R[2] <= S[1]");
  }

  ConjunctiveQuery Parse(const std::string& text) {
    Result<ConjunctiveQuery> q = ParseQuery(catalog_, symbols_, text);
    EXPECT_TRUE(q.ok()) << q.status();
    return *std::move(q);
  }

  Catalog catalog_;
  SymbolTable symbols_;
  DependencySet deps_;
};

TEST_F(StoreEngineTest, StorePathRequiresEnableCache) {
  // Without the canonicalization layer there are no keys to probe the
  // store with; an opened-but-dead tier would look healthy forever, so the
  // engine refuses it loudly instead.
  EngineConfig config;
  config.store_path = NewStoreDir("engine_nocache");
  config.enable_cache = false;
  ContainmentEngine engine(&catalog_, &symbols_, config);
  EXPECT_EQ(engine.store(), nullptr);
  EXPECT_EQ(engine.store_status().code(), StatusCode::kFailedPrecondition);
  // The engine itself still serves.
  Result<EngineVerdict> v = engine.Check(
      Parse("ans(u) :- R(u, v)"), Parse("ans(u) :- R(u, v), S(v, w)"), deps_);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->report.contained);
}

TEST_F(StoreEngineTest, StoreDisabledByDefault) {
  ContainmentEngine engine(&catalog_, &symbols_);
  EXPECT_EQ(engine.store(), nullptr);
  EXPECT_TRUE(engine.store_status().ok());
  ConjunctiveQuery q = Parse("ans(u) :- R(u, v)");
  ConjunctiveQuery qp = Parse("ans(u) :- R(u, v), S(v, w)");
  Result<EngineVerdict> v = engine.Check(q, qp, deps_);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->store_hit);
  EXPECT_EQ(engine.stats().store_hits, 0u);
  EXPECT_EQ(engine.stats().store_writes, 0u);
}

TEST_F(StoreEngineTest, RestartAnswersFromStoreWithZeroChases) {
  const std::string dir = NewStoreDir("engine_restart");
  ConjunctiveQuery q = Parse("ans(u) :- R(u, v)");
  ConjunctiveQuery qp = Parse("ans(u) :- R(u, v), S(v, w)");
  ConjunctiveQuery q2 = Parse("ans(u) :- R(u, v)");
  ConjunctiveQuery qp2 = Parse("ans(u) :- S(u, w)");

  EngineConfig config;
  config.store_path = dir;

  bool contained_1 = false;
  bool contained_2 = false;
  {
    // "Process A": decides, persists, shuts down cleanly.
    ContainmentEngine a(&catalog_, &symbols_, config);
    ASSERT_NE(a.store(), nullptr) << a.store_status();
    Result<EngineVerdict> v1 = a.Check(q, qp, deps_);
    Result<EngineVerdict> v2 = a.Check(q2, qp2, deps_);
    ASSERT_TRUE(v1.ok());
    ASSERT_TRUE(v2.ok());
    contained_1 = v1->report.contained;
    contained_2 = v2->report.contained;
    EXPECT_TRUE(contained_1);    // the IND supplies the S conjunct
    EXPECT_FALSE(contained_2);   // wrong column: no S(u, _) arises
    EXPECT_GT(a.stats().chases_built, 0u);
    EXPECT_EQ(a.stats().store_writes, 2u);
  }

  // "Process B": same store path, cold in-memory caches.
  ContainmentEngine b(&catalog_, &symbols_, config);
  ASSERT_NE(b.store(), nullptr) << b.store_status();
  EXPECT_EQ(b.store()->size(), 2u);
  Result<EngineVerdict> v1 = b.Check(q, qp, deps_);
  Result<EngineVerdict> v2 = b.Check(q2, qp2, deps_);
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v1->report.contained, contained_1);
  EXPECT_EQ(v2->report.contained, contained_2);
  EXPECT_TRUE(v1->store_hit);
  EXPECT_TRUE(v1->cache_hit);
  EXPECT_TRUE(v2->store_hit);
  // The whole point: the store bypassed the chase entirely.
  EXPECT_EQ(b.stats().chases_built, 0u);
  EXPECT_EQ(b.stats().store_hits, 2u);

  // A re-ask was promoted into the in-memory LRU: it hits there, not the
  // store.
  Result<EngineVerdict> again = b.Check(q, qp, deps_);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->cache_hit);
  EXPECT_FALSE(again->store_hit);
  EXPECT_EQ(b.stats().store_hits, 2u);
}

TEST_F(StoreEngineTest, IsomorphicReAskHitsStoreAcrossRestart) {
  const std::string dir = NewStoreDir("engine_iso");
  EngineConfig config;
  config.store_path = dir;
  {
    ContainmentEngine a(&catalog_, &symbols_, config);
    ASSERT_TRUE(a.Check(Parse("ans(u) :- R(u, v)"),
                        Parse("ans(u) :- R(u, v), S(v, w)"), deps_)
                    .ok());
  }
  // Renamed variables + permuted conjuncts: same canonical key, so the
  // durable entry answers it.
  ContainmentEngine b(&catalog_, &symbols_, config);
  Result<EngineVerdict> v = b.Check(
      Parse("ans(e) :- R(e, f)"), Parse("ans(e) :- S(f, g), R(e, f)"), deps_);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->store_hit);
  EXPECT_EQ(b.stats().chases_built, 0u);
}

TEST_F(StoreEngineTest, CertificateRequestBypassesStoreAndStillProves) {
  const std::string dir = NewStoreDir("engine_cert");
  EngineConfig config;
  config.store_path = dir;
  ConjunctiveQuery q = Parse("ans(u) :- R(u, v)");
  ConjunctiveQuery qp = Parse("ans(u) :- R(u, v), S(v, w)");
  {
    ContainmentEngine a(&catalog_, &symbols_, config);
    ASSERT_TRUE(a.Check(q, qp, deps_).ok());
  }
  ContainmentEngine b(&catalog_, &symbols_, config);
  // A stored verdict has no derivation to extract a proof from, so Certify
  // must chase even on a warm store — and must still succeed.
  Result<std::optional<ContainmentCertificate>> cert = b.Certify(q, qp, deps_);
  ASSERT_TRUE(cert.ok()) << cert.status();
  ASSERT_TRUE(cert->has_value());
  EXPECT_GT(b.stats().chases_built, 0u);
  EXPECT_EQ(b.stats().store_hits, 0u);
}

TEST_F(StoreEngineTest, EngineRebuildsQuarantinedStore) {
  const std::string dir = NewStoreDir("engine_quarantine");
  EngineConfig config;
  config.store_path = dir;
  {
    ContainmentEngine a(&catalog_, &symbols_, config);
    ASSERT_TRUE(a.Check(Parse("ans(u) :- R(u, v)"),
                        Parse("ans(u) :- R(u, v), S(v, w)"), deps_)
                    .ok());
  }
  // Rot the snapshot. The next engine must detect, quarantine, and serve
  // cold — wrong answers are not an option for a cache.
  const std::string snapshot = StrCat(dir, "/snapshot.cqvs");
  std::string bytes = ReadAll(snapshot);
  bytes[bytes.size() - 1] ^= 0xFF;
  WriteAll(snapshot, bytes);

  ContainmentEngine b(&catalog_, &symbols_, config);
  ASSERT_NE(b.store(), nullptr);
  EXPECT_EQ(b.store()->stats().quarantined_files, 1u);
  EXPECT_EQ(b.store()->size(), 0u);
  Result<EngineVerdict> v = b.Check(Parse("ans(u) :- R(u, v)"),
                                    Parse("ans(u) :- R(u, v), S(v, w)"), deps_);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->report.contained);
  EXPECT_FALSE(v->store_hit);           // recomputed, not trusted
  EXPECT_GT(b.stats().chases_built, 0u);
}

}  // namespace
}  // namespace cqchase
