#include "core/homomorphism.h"

#include <gtest/gtest.h>

#include "cq/cq_parser.h"

namespace cqchase {
namespace {

class HomomorphismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddRelation("E", {"src", "dst"}).ok());
  }

  ConjunctiveQuery Q(std::string_view text) {
    Result<ConjunctiveQuery> q = ParseQuery(catalog_, symbols_, text);
    EXPECT_TRUE(q.ok()) << q.status();
    return std::move(q).value();
  }

  Catalog catalog_;
  SymbolTable symbols_;
};

TEST_F(HomomorphismTest, IdentityAlwaysExists) {
  ConjunctiveQuery q = Q("ans(x) :- E(x, y), E(y, z)");
  EXPECT_TRUE(FindQueryHomomorphism(q, q).has_value());
}

TEST_F(HomomorphismTest, PathMapsIntoTriangleClassic) {
  // Chandra–Merlin folklore: a path of any length maps into a cycle; the
  // Boolean 2-path maps into the triangle.
  ConjunctiveQuery path = Q("ans() :- E(x, y), E(y, z)");
  ConjunctiveQuery triangle = Q("ans() :- E(a, b), E(b, cc), E(cc, a)");
  EXPECT_TRUE(FindQueryHomomorphism(path, triangle).has_value());
  // But a triangle does not map into a 2-path.
  EXPECT_FALSE(FindQueryHomomorphism(triangle, path).has_value());
}

TEST_F(HomomorphismTest, SummaryRowPinsDistinguishedVariables) {
  ConjunctiveQuery source = Q("ans(x) :- E(x, y)");
  // Target whose summary row is a *different* variable than its edge start.
  ConjunctiveQuery target = Q("ans(u) :- E(u, v), E(w, u)");
  std::optional<Homomorphism> h = FindQueryHomomorphism(source, target);
  ASSERT_TRUE(h.has_value());
  // x must map to u (the target summary), never to w.
  Term x = *symbols_.Find(TermKind::kDistVar, "x");
  Term u = *symbols_.Find(TermKind::kDistVar, "u");
  EXPECT_EQ(h->Apply(x), u);
}

TEST_F(HomomorphismTest, ConstantsMustMatchThemselves) {
  ConjunctiveQuery with_const = Q("ans() :- E(x, '7')");
  ConjunctiveQuery other_const = Q("ans() :- E(a, '8')");
  ConjunctiveQuery same_const = Q("ans() :- E(a, '7'), E(a, '8')");
  EXPECT_FALSE(FindQueryHomomorphism(with_const, other_const).has_value());
  EXPECT_TRUE(FindQueryHomomorphism(with_const, same_const).has_value());
}

TEST_F(HomomorphismTest, RepeatedVariablesConstrainImages) {
  ConjunctiveQuery self_loop = Q("ans() :- E(x, x)");
  ConjunctiveQuery plain_edge = Q("ans() :- E(a, b)");
  ConjunctiveQuery with_loop = Q("ans() :- E(a, b), E(b, b)");
  EXPECT_FALSE(FindQueryHomomorphism(self_loop, plain_edge).has_value());
  EXPECT_TRUE(FindQueryHomomorphism(self_loop, with_loop).has_value());
}

TEST_F(HomomorphismTest, SummaryConstantMismatchFails) {
  ConjunctiveQuery src = Q("ans('1') :- E(x, y)");
  ConjunctiveQuery dst = Q("ans('2') :- E(a, b)");
  EXPECT_FALSE(FindQueryHomomorphism(src, dst).has_value());
}

TEST_F(HomomorphismTest, ArityMismatchedSummariesFail) {
  ConjunctiveQuery src = Q("ans(x) :- E(x, y)");
  ConjunctiveQuery dst = Q("ans() :- E(a, b)");
  EXPECT_FALSE(FindQueryHomomorphism(src, dst).has_value());
}

TEST_F(HomomorphismTest, ConjunctImagesAreRecorded) {
  ConjunctiveQuery src = Q("ans() :- E(x, y)");
  ConjunctiveQuery dst = Q("ans() :- E(a, b), E(b, cc)");
  std::optional<Homomorphism> h = FindQueryHomomorphism(src, dst);
  ASSERT_TRUE(h.has_value());
  ASSERT_EQ(h->conjunct_images.size(), 1u);
  EXPECT_LT(h->conjunct_images[0], 2u);
}

TEST_F(HomomorphismTest, EmptyQuerySourceHasNoHomomorphism) {
  ConjunctiveQuery src = Q("ans(x) :- E(x, y)");
  src.MarkEmptyQuery();
  ConjunctiveQuery dst = Q("ans(a) :- E(a, b)");
  EXPECT_FALSE(FindQueryHomomorphism(src, dst).has_value());
}

TEST_F(HomomorphismTest, InjectiveModeRejectsCollapse) {
  // The 2-path maps onto a single edge only by collapsing y; injectively it
  // cannot.
  ConjunctiveQuery path2 = Q("ans() :- E(x, y), E(y, z)");
  ConjunctiveQuery loop = Q("ans() :- E(a, a)");
  EXPECT_TRUE(FindQueryHomomorphism(path2, loop).has_value());
  HomomorphismOptions inj;
  inj.injective = true;
  EXPECT_FALSE(FindQueryHomomorphism(path2, loop, inj).has_value());
}

TEST_F(HomomorphismTest, IsomorphismIsRenamingOnly) {
  ConjunctiveQuery a = Q("ans(x) :- E(x, y), E(y, x)");
  ConjunctiveQuery b = Q("ans(u) :- E(u, v), E(v, u)");
  ConjunctiveQuery c = Q("ans(u) :- E(u, u)");
  EXPECT_TRUE(QueriesIsomorphic(a, b));
  EXPECT_FALSE(QueriesIsomorphic(a, c));  // different conjunct counts
  // Same size but different shape.
  ConjunctiveQuery d = Q("ans(u) :- E(u, v), E(u, w)");
  EXPECT_FALSE(QueriesIsomorphic(a, d));
}

TEST_F(HomomorphismTest, InjectiveModeRespectsSourceConstants) {
  // A variable must not map onto a constant the source also uses.
  ConjunctiveQuery src = Q("ans() :- E(x, '7'), E('7', y)");
  ConjunctiveQuery dst = Q("ans() :- E('7', '7')");
  EXPECT_TRUE(FindQueryHomomorphism(src, dst).has_value());
  HomomorphismOptions inj;
  inj.injective = true;
  EXPECT_FALSE(FindQueryHomomorphism(src, dst, inj).has_value());
}

TEST_F(HomomorphismTest, LargerTargetSearch) {
  // A 3-path into a 6-cycle exists; a 3-cycle into a 6-cycle does not
  // (no odd cycle maps into an even cycle).
  ConjunctiveQuery path = Q("ans() :- E(p1, p2), E(p2, p3), E(p3, p4)");
  ConjunctiveQuery c6 = Q(
      "ans() :- E(c1, c2), E(c2, c3), E(c3, c4), E(c4, c5), E(c5, c6), "
      "E(c6, c1)");
  ConjunctiveQuery c3 = Q("ans() :- E(t1, t2), E(t2, t3), E(t3, t1)");
  EXPECT_TRUE(FindQueryHomomorphism(path, c6).has_value());
  EXPECT_FALSE(FindQueryHomomorphism(c3, c6).has_value());
  EXPECT_TRUE(FindQueryHomomorphism(c6, c3).has_value());
}

}  // namespace
}  // namespace cqchase
