#include "chase/chase.h"

#include <gtest/gtest.h>

#include "chase/chase_graph.h"
#include "core/homomorphism.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "gen/scenarios.h"

namespace cqchase {
namespace {

// --- FD chase rule --------------------------------------------------------

class FdChaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddRelation("R", {"a", "b"}).ok());
  }
  Catalog catalog_;
  SymbolTable symbols_;
};

TEST_F(FdChaseTest, MergesVariablesLexicographicallyFirstSurvives) {
  // R(x,y), R(x,z) under R:1->2 merges y and z; y was interned first, so y
  // survives.
  ConjunctiveQuery q =
      *ParseQuery(catalog_, symbols_, "ans(x) :- R(x, y), R(x, z)");
  DependencySet deps = *ParseDependencies(catalog_, "R: 1 -> 2");
  Result<Chase> chase =
      BuildChase(q, deps, symbols_, ChaseVariant::kRequired, ChaseLimits{});
  ASSERT_TRUE(chase.ok()) << chase.status();
  EXPECT_EQ(chase->outcome(), ChaseOutcome::kSaturated);
  std::vector<Fact> facts = chase->AliveFacts();
  ASSERT_EQ(facts.size(), 1u);
  EXPECT_EQ(symbols_.Name(facts[0].terms[1]), "y");
}

TEST_F(FdChaseTest, ConstantBeatsVariable) {
  ConjunctiveQuery q =
      *ParseQuery(catalog_, symbols_, "ans(x) :- R(x, y), R(x, 'k')");
  DependencySet deps = *ParseDependencies(catalog_, "R: 1 -> 2");
  Chase chase = *BuildChase(q, deps, symbols_, ChaseVariant::kRequired,
                            ChaseLimits{});
  std::vector<Fact> facts = chase.AliveFacts();
  ASSERT_EQ(facts.size(), 1u);
  EXPECT_TRUE(facts[0].terms[1].is_constant());
  EXPECT_EQ(symbols_.Name(facts[0].terms[1]), "k");
}

TEST_F(FdChaseTest, DistinguishedVariableBeatsNdv) {
  // "DVs are assumed always to precede NDVs in lexicographic order."
  // Intern the NDV before the DV to show kind, not age, decides.
  ConjunctiveQuery q =
      *ParseQuery(catalog_, symbols_, "ans(x, w) :- R(x, y), R(x, w)");
  DependencySet deps = *ParseDependencies(catalog_, "R: 1 -> 2");
  Chase chase = *BuildChase(q, deps, symbols_, ChaseVariant::kRequired,
                            ChaseLimits{});
  std::vector<Fact> facts = chase.AliveFacts();
  ASSERT_EQ(facts.size(), 1u);
  EXPECT_TRUE(facts[0].terms[1].is_dist_var());
  EXPECT_EQ(symbols_.Name(facts[0].terms[1]), "w");
  // The merge is reflected in the summary row too.
  ASSERT_EQ(chase.summary().size(), 2u);
  EXPECT_EQ(symbols_.Name(chase.summary()[1]), "w");
}

TEST_F(FdChaseTest, ConstantClashYieldsEmptyQuery) {
  ConjunctiveQuery q =
      *ParseQuery(catalog_, symbols_, "ans(x) :- R(x, 'k1'), R(x, 'k2')");
  DependencySet deps = *ParseDependencies(catalog_, "R: 1 -> 2");
  Chase chase = *BuildChase(q, deps, symbols_, ChaseVariant::kRequired,
                            ChaseLimits{});
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kEmptyQuery);
  EXPECT_TRUE(chase.is_empty_query());
  EXPECT_TRUE(chase.AliveFacts().empty());
  EXPECT_TRUE(chase.AsQuery().is_empty_query());
}

TEST_F(FdChaseTest, CascadingMergesReachFixpoint) {
  // Two FDs interact: R:1->2 merges, which then enables a merge through a
  // second pair of conjuncts.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b", "c"}).ok());
  SymbolTable symbols;
  ConjunctiveQuery q = *ParseQuery(
      catalog, symbols, "ans(x) :- R(x, y, u), R(x, z, v), R(y, q, w)");
  DependencySet deps =
      *ParseDependencies(catalog, "R: 1 -> 2; R: 1 -> 3");
  Chase chase =
      *BuildChase(q, deps, symbols, ChaseVariant::kRequired, ChaseLimits{});
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kSaturated);
  // R(x,y,u) and R(x,z,v) collapse; nothing else shares a first column.
  EXPECT_EQ(chase.AliveFacts().size(), 2u);
  ConjunctiveQuery result = chase.AsQuery();
  EXPECT_TRUE(result.Validate().ok());
}

TEST_F(FdChaseTest, ResolveTermFollowsMergeChain) {
  ConjunctiveQuery q = *ParseQuery(
      catalog_, symbols_, "ans(x) :- R(x, y), R(x, z), R(x, w)");
  Term y = *symbols_.Find(TermKind::kNondistVar, "y");
  Term z = *symbols_.Find(TermKind::kNondistVar, "z");
  Term w = *symbols_.Find(TermKind::kNondistVar, "w");
  DependencySet deps = *ParseDependencies(catalog_, "R: 1 -> 2");
  Chase chase = *BuildChase(q, deps, symbols_, ChaseVariant::kRequired,
                            ChaseLimits{});
  EXPECT_EQ(chase.ResolveTerm(z), y);
  EXPECT_EQ(chase.ResolveTerm(w), y);
  EXPECT_EQ(chase.ResolveTerm(y), y);
}

// --- IND chase rule -------------------------------------------------------

TEST(IndChaseTest, CreatesWitnessConjunctWithFreshNdvs) {
  Scenario s = EmpDepScenario();
  // Chase Q2 = {(e): EMP(e,s,d)} with EMP[dept] ⊆ DEP[dept].
  Chase chase = *BuildChase(s.queries[1], s.deps, *s.symbols,
                            ChaseVariant::kRequired, ChaseLimits{});
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kSaturated);
  std::vector<Fact> facts = chase.AliveFacts();
  ASSERT_EQ(facts.size(), 2u);
  // The created DEP conjunct carries d in the dept column and a fresh NDV
  // in loc, at level 1.
  const ChaseConjunct* dep = nullptr;
  for (const ChaseConjunct* c : chase.AliveConjuncts()) {
    if (c->fact.relation == 1) dep = c;
  }
  ASSERT_NE(dep, nullptr);
  EXPECT_EQ(dep->level, 1u);
  EXPECT_EQ(dep->fact.terms[0],
            *s.symbols->Find(TermKind::kNondistVar, "d"));
  EXPECT_TRUE(dep->fact.terms[1].is_nondist_var());
  ASSERT_TRUE(s.symbols->Provenance(dep->fact.terms[1]).has_value());
  EXPECT_EQ(s.symbols->Provenance(dep->fact.terms[1])->level, 1u);
}

TEST(IndChaseTest, RequiredRuleSkipsWhenWitnessExists) {
  Scenario s = EmpDepScenario();
  // Q1 already contains the DEP conjunct: nothing to do.
  Chase chase = *BuildChase(s.queries[0], s.deps, *s.symbols,
                            ChaseVariant::kRequired, ChaseLimits{});
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kSaturated);
  EXPECT_EQ(chase.AliveFacts().size(), 2u);
  // The redundancy is recorded as a cross arc.
  ASSERT_EQ(chase.arcs().size(), 1u);
  EXPECT_TRUE(chase.arcs()[0].cross);
}

TEST(IndChaseTest, ObliviousRuleAppliesAnyway) {
  Scenario s = EmpDepScenario();
  Chase chase = *BuildChase(s.queries[0], s.deps, *s.symbols,
                            ChaseVariant::kOblivious, ChaseLimits{});
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kSaturated);
  // O-chase creates a second DEP conjunct with a fresh loc NDV.
  EXPECT_EQ(chase.AliveFacts().size(), 3u);
}

// --- Figure 1 -------------------------------------------------------------

TEST(Fig1Test, RChaseLevelProfile) {
  Scenario s = Fig1Scenario();
  ChaseLimits limits;
  limits.max_level = 6;
  Chase chase(s.catalog.get(), s.symbols.get(), &s.deps,
              ChaseVariant::kRequired, limits);
  ASSERT_TRUE(chase.Init(s.queries[0]).ok());
  Result<ChaseOutcome> outcome = chase.ExpandToLevel(6);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(*outcome, ChaseOutcome::kTruncated);  // infinite chase
  // Level 0: R(a,b,c). Level 1: T(a,_) and S(a,c,_). Level 2+: alternating
  // single conjuncts R, S, R, ... (T hits a cross arc each time).
  EXPECT_EQ(chase.CountAtLevel(0), 1u);
  EXPECT_EQ(chase.CountAtLevel(1), 2u);
  EXPECT_EQ(chase.CountAtLevel(2), 1u);
  EXPECT_EQ(chase.CountAtLevel(3), 1u);
  EXPECT_EQ(chase.CountAtLevel(4), 1u);
  // Cross arcs exist (deep R-conjuncts find the old T witness).
  bool has_cross = false;
  for (const ChaseArc& arc : chase.arcs()) has_cross |= arc.cross;
  EXPECT_TRUE(has_cross);
}

TEST(Fig1Test, OChaseGrowsFasterThanRChase) {
  Scenario so = Fig1Scenario();
  ChaseLimits limits;
  limits.max_level = 5;
  Chase ochase(so.catalog.get(), so.symbols.get(), &so.deps,
               ChaseVariant::kOblivious, limits);
  ASSERT_TRUE(ochase.Init(so.queries[0]).ok());
  ASSERT_TRUE(ochase.ExpandToLevel(5).ok());

  Scenario sr = Fig1Scenario();
  Chase rchase(sr.catalog.get(), sr.symbols.get(), &sr.deps,
               ChaseVariant::kRequired, limits);
  ASSERT_TRUE(rchase.Init(sr.queries[0]).ok());
  ASSERT_TRUE(rchase.ExpandToLevel(5).ok());

  // The O-chase re-creates T conjuncts the R-chase short-circuits with cross
  // arcs, so its prefix is strictly larger.
  EXPECT_GT(ochase.AliveFacts().size(), rchase.AliveFacts().size());
  // No cross arcs in the oblivious graph here (every application is fresh).
  for (const ChaseArc& arc : ochase.arcs()) EXPECT_FALSE(arc.cross);
}

TEST(Fig1Test, BothChasesAreInfinite) {
  for (ChaseVariant variant :
       {ChaseVariant::kRequired, ChaseVariant::kOblivious}) {
    Scenario s = Fig1Scenario();
    ChaseLimits limits;
    limits.max_level = 12;
    Chase chase(s.catalog.get(), s.symbols.get(), &s.deps, variant, limits);
    ASSERT_TRUE(chase.Init(s.queries[0]).ok());
    Result<ChaseOutcome> outcome = chase.ExpandToLevel(12);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(*outcome, ChaseOutcome::kTruncated);
    EXPECT_GE(chase.MaxAliveLevel(), 12u);
  }
}

TEST(Fig1Test, DotAndTextRenderings) {
  Scenario s = Fig1Scenario();
  ChaseLimits limits;
  limits.max_level = 3;
  Chase chase(s.catalog.get(), s.symbols.get(), &s.deps,
              ChaseVariant::kRequired, limits);
  ASSERT_TRUE(chase.Init(s.queries[0]).ok());
  ASSERT_TRUE(chase.ExpandToLevel(3).ok());
  std::string dot = ChaseGraphToDot(chase);
  EXPECT_NE(dot.find("digraph chase"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // cross arc
  std::string text = ChaseGraphToText(chase);
  EXPECT_NE(text.find("level 0:"), std::string::npos);
  EXPECT_NE(text.find("R(a, b, c)"), std::string::npos);
}

// --- Engine mechanics -----------------------------------------------------

TEST(ChaseEngineTest, ExpandIsResumable) {
  Scenario a = Fig1Scenario();
  ChaseLimits limits;
  limits.max_level = 8;
  Chase stepwise(a.catalog.get(), a.symbols.get(), &a.deps,
                 ChaseVariant::kRequired, limits);
  ASSERT_TRUE(stepwise.Init(a.queries[0]).ok());
  ASSERT_TRUE(stepwise.ExpandToLevel(2).ok());
  ASSERT_TRUE(stepwise.ExpandToLevel(5).ok());

  Scenario b = Fig1Scenario();
  Chase direct(b.catalog.get(), b.symbols.get(), &b.deps,
               ChaseVariant::kRequired, limits);
  ASSERT_TRUE(direct.Init(b.queries[0]).ok());
  ASSERT_TRUE(direct.ExpandToLevel(5).ok());

  EXPECT_EQ(stepwise.ToString(), direct.ToString());
}

TEST(ChaseEngineTest, DeterministicAcrossIdenticalRuns) {
  Scenario a = Fig1Scenario();
  Scenario b = Fig1Scenario();
  ChaseLimits limits;
  limits.max_level = 4;
  Chase ca(a.catalog.get(), a.symbols.get(), &a.deps,
           ChaseVariant::kOblivious, limits);
  Chase cb(b.catalog.get(), b.symbols.get(), &b.deps,
           ChaseVariant::kOblivious, limits);
  ASSERT_TRUE(ca.Init(a.queries[0]).ok());
  ASSERT_TRUE(cb.Init(b.queries[0]).ok());
  ASSERT_TRUE(ca.ExpandToLevel(4).ok());
  ASSERT_TRUE(cb.ExpandToLevel(4).ok());
  EXPECT_EQ(ca.ToString(), cb.ToString());
}

TEST(ChaseEngineTest, ConjunctCapReportsResourceExhausted) {
  Scenario s = Fig1Scenario();
  ChaseLimits limits;
  limits.max_level = 1000;
  limits.max_conjuncts = 5;
  Chase chase(s.catalog.get(), s.symbols.get(), &s.deps,
              ChaseVariant::kRequired, limits);
  ASSERT_TRUE(chase.Init(s.queries[0]).ok());
  Result<ChaseOutcome> outcome = chase.ExpandToLevel(1000);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kResourceExhausted);
}

TEST(ChaseEngineTest, InitTwiceFails) {
  Scenario s = EmpDepScenario();
  Chase chase(s.catalog.get(), s.symbols.get(), &s.deps,
              ChaseVariant::kRequired, ChaseLimits{});
  ASSERT_TRUE(chase.Init(s.queries[0]).ok());
  EXPECT_EQ(chase.Init(s.queries[0]).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ChaseEngineTest, AsInstanceViewsChaseAsDatabase) {
  Scenario s = EmpDepScenario();
  Chase chase = *BuildChase(s.queries[1], s.deps, *s.symbols,
                            ChaseVariant::kRequired, ChaseLimits{});
  Instance db = chase.AsInstance();
  EXPECT_EQ(db.TotalTuples(), chase.AliveFacts().size());
  // Theorem 1's device: the chase, read as a database, satisfies Σ.
  EXPECT_TRUE(db.Satisfies(s.deps));
}

TEST(ChaseEngineTest, SaturatedChaseSatisfiesDependencies) {
  // Key-based scenario: chase of Q2 saturates and satisfies all of Σ.
  Scenario s = KeyBasedEmpDepScenario();
  Chase chase = *BuildChase(s.queries[1], s.deps, *s.symbols,
                            ChaseVariant::kRequired, ChaseLimits{});
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kSaturated);
  EXPECT_TRUE(chase.AsInstance().Satisfies(s.deps));
}

// --- Lemma 2 and Lemma 6 --------------------------------------------------

TEST(Lemma2Test, KeyBasedRChaseFactorizes) {
  Scenario s = KeyBasedEmpDepScenario();
  for (const ConjunctiveQuery& q : s.queries) {
    Chase direct = *BuildChase(q, s.deps, *s.symbols,
                               ChaseVariant::kRequired, ChaseLimits{});
    Result<Chase> factored =
        FactorizedRChase(q, s.deps, *s.symbols, ChaseLimits{});
    ASSERT_TRUE(factored.ok()) << factored.status();
    EXPECT_TRUE(QueriesIsomorphic(direct.AsQuery(), factored->AsQuery()))
        << "direct:\n"
        << direct.ToString() << "factored:\n"
        << factored->ToString();
  }
}

TEST(Lemma6Test, KeyBasedSymbolsSpanAtMostOneLevel) {
  Scenario s = KeyBasedEmpDepScenario();
  ChaseLimits limits;
  limits.max_level = 8;
  for (const ConjunctiveQuery& q : s.queries) {
    Chase chase =
        *BuildChase(q, s.deps, *s.symbols, ChaseVariant::kRequired, limits);
    EXPECT_LE(MaxSymbolLevelSpan(chase), 1u);
  }
}

TEST(Lemma6Test, IndOnlyChaseCanSpanMoreThanOneLevel) {
  // Contrast: in the Fig. 1 IND-only chase the root symbol 'a' is copied
  // into every level, so the span grows with depth.
  Scenario s = Fig1Scenario();
  ChaseLimits limits;
  limits.max_level = 5;
  Chase chase(s.catalog.get(), s.symbols.get(), &s.deps,
              ChaseVariant::kRequired, limits);
  ASSERT_TRUE(chase.Init(s.queries[0]).ok());
  ASSERT_TRUE(chase.ExpandToLevel(5).ok());
  EXPECT_GT(MaxSymbolLevelSpan(chase), 1u);
}

}  // namespace
}  // namespace cqchase
