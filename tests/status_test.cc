#include "base/status.h"

#include <gtest/gtest.h>

namespace cqchase {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arity");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad arity");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseMacros(int x, int* out) {
  CQCHASE_ASSIGN_OR_RETURN(int h, Half(x));
  CQCHASE_RETURN_IF_ERROR(Status::OK());
  *out = h;
  return Status::OK();
}

TEST(ResultTest, MacrosPropagateErrors) {
  int out = 0;
  EXPECT_TRUE(UseMacros(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status err = UseMacros(3, &out);
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cqchase
