// Chase-engine internals: the index structures (pending-step set, witness
// index) must stay consistent with the paper's selection discipline across
// FD/IND interleavings, merges, dedupes and resource limits.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/string_util.h"
#include "chase/chase.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "gen/generators.h"
#include "gen/scenarios.h"

namespace cqchase {
namespace {

// A general (non-key-based) Σ where an IND-created conjunct triggers an FD:
// R(a,b): b is copied into S's key column, S: 1 -> 2 then merges the fresh
// NDV with an existing constant.
TEST(EngineInterleavingTest, FdFiresOnIndCreatedConjunct) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  ASSERT_TRUE(catalog.AddRelation("S", {"x", "y"}).ok());
  SymbolTable symbols;
  DependencySet deps =
      *ParseDependencies(catalog, "R[2] <= S[1]\nS: 1 -> 2");
  ConjunctiveQuery q = *ParseQuery(
      catalog, symbols, "ans(v) :- R(u, v), S(v, '9')");
  Chase chase(&catalog, &symbols, &deps, ChaseVariant::kRequired, {});
  ASSERT_TRUE(chase.Init(q).ok());
  Result<ChaseOutcome> outcome = chase.Run();
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  // The R-chase finds S(v, '9') as a witness for R[2] <= S[1]: nothing new
  // is required and the chase saturates with the original two conjuncts.
  EXPECT_EQ(*outcome, ChaseOutcome::kSaturated);
  EXPECT_EQ(chase.AliveFacts().size(), 2u);
}

TEST(EngineInterleavingTest, ObliviousVariantMergesDuplicateViaFd) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  ASSERT_TRUE(catalog.AddRelation("S", {"x", "y"}).ok());
  SymbolTable symbols;
  DependencySet deps =
      *ParseDependencies(catalog, "R[2] <= S[1]\nS: 1 -> 2");
  ConjunctiveQuery q = *ParseQuery(
      catalog, symbols, "ans(v) :- R(u, v), S(v, '9')");
  // The O-chase applies the IND anyway, creating S(v, n) with a fresh n;
  // the FD S:1->2 must then merge n with the constant '9' and the dedupe
  // must collapse the copy — ending at the same two facts.
  Chase chase(&catalog, &symbols, &deps, ChaseVariant::kOblivious, {});
  ASSERT_TRUE(chase.Init(q).ok());
  Result<ChaseOutcome> outcome = chase.Run();
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(*outcome, ChaseOutcome::kSaturated);
  EXPECT_EQ(chase.AliveFacts().size(), 2u);
  // The merged symbol resolves to the constant.
  Term nine = symbols.InternConstant("9");
  for (const Fact& f : chase.AliveFacts()) {
    if (f.relation == 1) {
      EXPECT_EQ(f.terms[1], nine);
    }
  }
}

TEST(EngineInterleavingTest, ConstantClashDuringIndPhaseEmptiesQuery) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  ASSERT_TRUE(catalog.AddRelation("S", {"x", "y"}).ok());
  SymbolTable symbols;
  // Chasing R(u,'1') adds S('1', n); S('1','2') and S('1','3') both present
  // clash under S: 1 -> 2 already at init.
  DependencySet deps =
      *ParseDependencies(catalog, "R[1] <= S[1]\nS: 1 -> 2");
  ConjunctiveQuery q = *ParseQuery(
      catalog, symbols, "ans(u) :- R(u, w), S('5', '2'), S('5', '3')");
  Chase chase(&catalog, &symbols, &deps, ChaseVariant::kRequired, {});
  ASSERT_TRUE(chase.Init(q).ok());
  EXPECT_TRUE(chase.is_empty_query());
  EXPECT_TRUE(chase.AliveFacts().empty());
}

// --- Resource-limit injection ----------------------------------------------

TEST(EngineLimitsTest, MaxConjunctsSurfacesAsResourceExhausted) {
  Scenario s = Fig1Scenario();  // infinite chase
  ChaseLimits limits;
  limits.max_level = 1000;
  limits.max_conjuncts = 10;
  Chase chase(s.catalog.get(), s.symbols.get(), &s.deps,
              ChaseVariant::kRequired, limits);
  ASSERT_TRUE(chase.Init(s.queries[0]).ok());
  Result<ChaseOutcome> outcome = chase.ExpandToLevel(1000);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kResourceExhausted);
}

TEST(EngineLimitsTest, MaxStepsSurfacesAsResourceExhausted) {
  Scenario s = Fig1Scenario();
  ChaseLimits limits;
  limits.max_level = 1000;
  limits.max_steps = 5;
  Chase chase(s.catalog.get(), s.symbols.get(), &s.deps,
              ChaseVariant::kRequired, limits);
  ASSERT_TRUE(chase.Init(s.queries[0]).ok());
  Result<ChaseOutcome> outcome = chase.ExpandToLevel(1000);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kResourceExhausted);
}

TEST(EngineLimitsTest, MaxLevelTruncatesWithoutError) {
  Scenario s = Fig1Scenario();
  ChaseLimits limits;
  limits.max_level = 2;
  Chase chase(s.catalog.get(), s.symbols.get(), &s.deps,
              ChaseVariant::kRequired, limits);
  ASSERT_TRUE(chase.Init(s.queries[0]).ok());
  Result<ChaseOutcome> outcome = chase.Run();
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(*outcome, ChaseOutcome::kTruncated);
  EXPECT_LE(chase.MaxAliveLevel(), 3u);  // level-2 conjuncts spawn level 3
}

// --- Determinism across runs and disciplines --------------------------------

class EngineDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineDeterminism, IdenticalRunsRenderIdentically) {
  auto run_once = [&]() -> std::string {
    Rng rng(GetParam());
    RandomCatalogParams cp;
    cp.num_relations = 3;
    cp.min_arity = 2;
    cp.max_arity = 3;
    Catalog catalog = RandomCatalog(rng, cp);
    RandomIndParams ip;
    ip.count = 3;
    ip.width = 1;
    DependencySet deps = RandomIndOnlyDeps(rng, catalog, ip);
    SymbolTable symbols;
    RandomQueryParams qp;
    qp.num_conjuncts = 3;
    qp.name_prefix = StrCat("d", GetParam());
    ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);
    ChaseLimits limits;
    limits.max_level = 4;
    limits.max_conjuncts = 20000;
    Result<Chase> chase =
        BuildChase(q, deps, symbols, ChaseVariant::kRequired, limits);
    if (!chase.ok()) return chase.status().ToString();
    return chase->ToString();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_P(EngineDeterminism, StrideDoesNotChangeTheChasePrefix) {
  // Expanding to level 4 in one call or in four single-level calls must
  // yield the same prefix (ExpandToLevel is monotone and resumable).
  Rng rng(GetParam() + 77);
  RandomCatalogParams cp;
  cp.num_relations = 3;
  cp.min_arity = 2;
  cp.max_arity = 3;
  Catalog catalog = RandomCatalog(rng, cp);
  RandomIndParams ip;
  ip.count = 2;
  ip.width = 1;
  DependencySet deps = RandomIndOnlyDeps(rng, catalog, ip);
  SymbolTable symbols_a;
  SymbolTable symbols_b;
  RandomQueryParams qp;
  qp.num_conjuncts = 2;
  qp.name_prefix = StrCat("s", GetParam());
  // Build the same query against two separate symbol tables by re-seeding.
  Rng rng_a(GetParam() + 1), rng_b(GetParam() + 1);
  ConjunctiveQuery qa = RandomQuery(rng_a, catalog, symbols_a, qp);
  ConjunctiveQuery qb = RandomQuery(rng_b, catalog, symbols_b, qp);

  ChaseLimits limits;
  limits.max_level = 4;
  Chase one_shot(&catalog, &symbols_a, &deps, ChaseVariant::kRequired,
                 limits);
  ASSERT_TRUE(one_shot.Init(qa).ok());
  ASSERT_TRUE(one_shot.ExpandToLevel(4).ok());

  Chase stepped(&catalog, &symbols_b, &deps, ChaseVariant::kRequired, limits);
  ASSERT_TRUE(stepped.Init(qb).ok());
  for (uint32_t level = 1; level <= 4; ++level) {
    ASSERT_TRUE(stepped.ExpandToLevel(level).ok());
  }
  EXPECT_EQ(one_shot.ToString(), stepped.ToString());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDeterminism,
                         ::testing::Range<uint64_t>(1, 16));

// --- Witness-index correctness ----------------------------------------------

TEST(WitnessIndexTest, RChaseReusesMergedWitnesses) {
  // After an FD merge makes an existing conjunct match a pending IND
  // application, the R-chase must record a cross arc instead of creating a
  // fresh conjunct (the witness index must see post-merge facts).
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  ASSERT_TRUE(catalog.AddRelation("S", {"x"}).ok());
  SymbolTable symbols;
  DependencySet deps =
      *ParseDependencies(catalog, "R: 1 -> 2\nR[2] <= S[1]");
  // The FD merges y and z first; then R[2] <= S[1] needs S(y) only once.
  ConjunctiveQuery q = *ParseQuery(
      catalog, symbols, "ans(x) :- R(x, y), R(x, z), S(y)");
  Chase chase(&catalog, &symbols, &deps, ChaseVariant::kRequired, {});
  ASSERT_TRUE(chase.Init(q).ok());
  Result<ChaseOutcome> outcome = chase.Run();
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(*outcome, ChaseOutcome::kSaturated);
  // R(x,y) [merged], S(y): nothing new created.
  EXPECT_EQ(chase.AliveFacts().size(), 2u);
  size_t cross = 0;
  for (const ChaseArc& a : chase.arcs()) cross += a.cross ? 1 : 0;
  EXPECT_EQ(cross, 1u);
}

}  // namespace
}  // namespace cqchase
