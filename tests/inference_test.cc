#include "inference/ind_inference.h"

#include <gtest/gtest.h>

#include "base/rng.h"
#include "deps/deps_parser.h"
#include "gen/generators.h"
#include "inference/fd_inference.h"

namespace cqchase {
namespace {

// --- FD inference -----------------------------------------------------------

TEST(FdInferenceTest, ClosureAndImplication) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b", "c", "d"}).ok());
  DependencySet deps =
      *ParseDependencies(catalog, "R: 1 -> 2; R: 2 -> 3");
  EXPECT_EQ(AttributeClosure(deps, 0, {0}),
            (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_TRUE(FdImplied(deps, *ParseFd(catalog, "R: 1 -> 3")));
  EXPECT_FALSE(FdImplied(deps, *ParseFd(catalog, "R: 1 -> 4")));
  EXPECT_TRUE(FdImplied(deps, *ParseFd(catalog, "R: 1 3 -> 2")));  // augment
  EXPECT_TRUE(FdImplied(deps, *ParseFd(catalog, "R: 2 -> 2")));    // reflex
  EXPECT_FALSE(IsSuperkey(deps, catalog, 0, {0}));
  EXPECT_TRUE(IsSuperkey(deps, catalog, 0, {0, 3}));
}

TEST(FdInferenceTest, ClosureScopedToRelation) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  ASSERT_TRUE(catalog.AddRelation("S", {"a", "b"}).ok());
  DependencySet deps = *ParseDependencies(catalog, "R: 1 -> 2");
  EXPECT_FALSE(FdImplied(deps, *ParseFd(catalog, "S: 1 -> 2")));
}

// --- IND inference ----------------------------------------------------------

class IndInferenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddRelation("R", {"a", "b", "c"}).ok());
    ASSERT_TRUE(catalog_.AddRelation("S", {"a", "b", "c"}).ok());
    ASSERT_TRUE(catalog_.AddRelation("T", {"a", "b", "c"}).ok());
  }

  bool Axiomatic(const DependencySet& deps, std::string_view ind) {
    Result<bool> r =
        IndImpliedAxiomatic(deps, catalog_, *ParseInd(catalog_, ind));
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() && *r;
  }

  bool ViaContainment(const DependencySet& deps, std::string_view ind) {
    Result<bool> r =
        IndImpliedViaContainment(deps, catalog_, *ParseInd(catalog_, ind));
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() && *r;
  }

  Catalog catalog_;
};

TEST_F(IndInferenceTest, Reflexivity) {
  DependencySet none;
  EXPECT_TRUE(Axiomatic(none, "R[1,2] <= R[1,2]"));
  EXPECT_TRUE(ViaContainment(none, "R[1,2] <= R[1,2]"));
  EXPECT_FALSE(Axiomatic(none, "R[1,2] <= R[2,1]"));
  EXPECT_FALSE(ViaContainment(none, "R[1,2] <= R[2,1]"));
}

TEST_F(IndInferenceTest, ProjectionAndPermutation) {
  DependencySet deps =
      *ParseDependencies(catalog_, "R[1,2,3] <= S[1,2,3]");
  for (auto* target :
       {"R[1] <= S[1]", "R[2] <= S[2]", "R[1,3] <= S[1,3]",
        "R[3,1] <= S[3,1]", "R[2,1,3] <= S[2,1,3]"}) {
    EXPECT_TRUE(Axiomatic(deps, target)) << target;
    EXPECT_TRUE(ViaContainment(deps, target)) << target;
  }
  for (auto* target : {"R[1] <= S[2]", "R[1,2] <= S[2,1]"}) {
    EXPECT_FALSE(Axiomatic(deps, target)) << target;
    EXPECT_FALSE(ViaContainment(deps, target)) << target;
  }
}

TEST_F(IndInferenceTest, Transitivity) {
  DependencySet deps = *ParseDependencies(
      catalog_, "R[1,2] <= S[2,3]; S[2,3] <= T[3,1]");
  EXPECT_TRUE(Axiomatic(deps, "R[1,2] <= T[3,1]"));
  EXPECT_TRUE(ViaContainment(deps, "R[1,2] <= T[3,1]"));
  EXPECT_TRUE(Axiomatic(deps, "R[1] <= T[3]"));
  EXPECT_FALSE(Axiomatic(deps, "T[3,1] <= R[1,2]"));  // wrong direction
}

TEST_F(IndInferenceTest, PermutationComposesThroughChains) {
  // R[1,2] <= S[2,1] twisted twice straightens out.
  DependencySet deps = *ParseDependencies(
      catalog_, "R[1,2] <= S[2,1]; S[1,2] <= T[2,1]");
  // R[1,2] <= S[2,1] means R.1 ⊑ S.2, R.2 ⊑ S.1. Then S.2 ⊑ T.1, S.1 ⊑ T.2:
  // so R[1,2] <= T[1,2].
  EXPECT_TRUE(Axiomatic(deps, "R[1,2] <= T[1,2]"));
  EXPECT_TRUE(ViaContainment(deps, "R[1,2] <= T[1,2]"));
  EXPECT_FALSE(Axiomatic(deps, "R[1,2] <= T[2,1]"));
  EXPECT_FALSE(ViaContainment(deps, "R[1,2] <= T[2,1]"));
}

TEST_F(IndInferenceTest, CyclesDoNotDiverge) {
  DependencySet deps = *ParseDependencies(
      catalog_, "R[1,2] <= S[1,2]; S[1,2] <= R[2,3]");
  EXPECT_TRUE(Axiomatic(deps, "R[1,2] <= R[2,3]"));
  // Derived by another loop: R[2,3] <= S[2,3] <= ... exercise a negative.
  EXPECT_FALSE(Axiomatic(deps, "R[1,2] <= T[1,2]"));
}

TEST_F(IndInferenceTest, RequiresIndOnlySets) {
  DependencySet deps = *ParseDependencies(catalog_, "R: 1 -> 2");
  Result<bool> r =
      IndImpliedAxiomatic(deps, catalog_, *ParseInd(catalog_, "R[1] <= S[1]"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(IndInferenceTest, AxiomaticMatchesReductionOnRandomSets) {
  // Cross-validation: the two deciders agree on random width-1 IND sets
  // (Corollary 2.3's reduction is exact). |Sigma| = 2 keeps the Theorem-2
  // level bound at 2*2*2 = 8, so the reduction's R-chase prefix stays small
  // even on negative instances, which must be expanded to the full bound.
  Rng rng(7);
  for (size_t trial = 0; trial < 60; ++trial) {
    RandomIndParams params;
    params.count = 2;
    params.width = 1;
    DependencySet deps = RandomIndOnlyDeps(rng, catalog_, params);
    InclusionDependency target;
    target.lhs_relation = static_cast<RelationId>(rng.Index(3));
    target.rhs_relation = static_cast<RelationId>(rng.Index(3));
    target.lhs_columns = {static_cast<uint32_t>(rng.Index(3))};
    target.rhs_columns = {static_cast<uint32_t>(rng.Index(3))};
    Result<bool> ax = IndImpliedAxiomatic(deps, catalog_, target);
    Result<bool> cont = IndImpliedViaContainment(deps, catalog_, target);
    ASSERT_TRUE(ax.ok()) << ax.status();
    ASSERT_TRUE(cont.ok()) << cont.status();
    EXPECT_EQ(*ax, *cont) << target.ToString(catalog_) << " under "
                          << deps.ToString(catalog_);
  }
  // Larger Sigma: the negative chase prefix can exceed any fixed budget
  // (the procedure is exponential in the level bound), so undecided results
  // are tolerated but disagreements never are.
  size_t decided = 0;
  for (size_t trial = 0; trial < 20; ++trial) {
    RandomIndParams params;
    params.count = 4;
    params.width = 1;
    DependencySet deps = RandomIndOnlyDeps(rng, catalog_, params);
    InclusionDependency target;
    target.lhs_relation = static_cast<RelationId>(rng.Index(3));
    target.rhs_relation = static_cast<RelationId>(rng.Index(3));
    target.lhs_columns = {static_cast<uint32_t>(rng.Index(3))};
    target.rhs_columns = {static_cast<uint32_t>(rng.Index(3))};
    Result<bool> ax = IndImpliedAxiomatic(deps, catalog_, target);
    ASSERT_TRUE(ax.ok()) << ax.status();
    ContainmentOptions options;
    options.limits.max_conjuncts = 20000;
    Result<bool> cont =
        IndImpliedViaContainment(deps, catalog_, target, options);
    if (!cont.ok()) {
      EXPECT_EQ(cont.status().code(), StatusCode::kResourceExhausted)
          << cont.status();
      continue;
    }
    ++decided;
    EXPECT_EQ(*ax, *cont) << target.ToString(catalog_) << " under "
                          << deps.ToString(catalog_);
  }
  EXPECT_GE(decided, 5u);
}

}  // namespace
}  // namespace cqchase
