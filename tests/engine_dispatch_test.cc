// ContainmentEngine dispatch: every Σ class must route to the expected
// decision strategy, the routed strategies must agree with the legacy
// single-shot decision procedure, and undecidable shapes must surface the
// same kUnimplemented the free function always returned.
#include <gtest/gtest.h>

#include "core/containment.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "engine/engine.h"
#include "gen/scenarios.h"

namespace cqchase {
namespace {

// --- AnalyzeSigma classification ---------------------------------------------

TEST(SigmaClassTest, EmptySet) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  SigmaAnalysis a = AnalyzeSigma(DependencySet(), catalog);
  EXPECT_EQ(a.sigma_class, SigmaClass::kEmpty);
  EXPECT_TRUE(a.decidable);
  EXPECT_TRUE(a.finitely_controllable);
}

TEST(SigmaClassTest, FdOnly) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  DependencySet deps = *ParseDependencies(catalog, "R: 1 -> 2");
  SigmaAnalysis a = AnalyzeSigma(deps, catalog);
  EXPECT_EQ(a.sigma_class, SigmaClass::kFdOnly);
  EXPECT_TRUE(a.decidable);
  EXPECT_TRUE(a.finitely_controllable);
}

TEST(SigmaClassTest, IndOnlyWidthOneVsWider) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  ASSERT_TRUE(catalog.AddRelation("S", {"x", "y"}).ok());
  DependencySet w1 = *ParseDependencies(catalog, "R[1] <= S[1]");
  SigmaAnalysis a1 = AnalyzeSigma(w1, catalog);
  EXPECT_EQ(a1.sigma_class, SigmaClass::kIndOnlyW1);
  EXPECT_TRUE(a1.finitely_controllable);
  ASSERT_TRUE(a1.k_sigma.has_value());

  DependencySet w2 = *ParseDependencies(catalog, "R[1,2] <= S[1,2]");
  SigmaAnalysis a2 = AnalyzeSigma(w2, catalog);
  EXPECT_EQ(a2.sigma_class, SigmaClass::kIndOnly);
  EXPECT_EQ(a2.max_ind_width, 2u);
  EXPECT_TRUE(a2.decidable);
  EXPECT_FALSE(a2.finitely_controllable);
}

TEST(SigmaClassTest, KeyBasedAndGeneral) {
  Scenario key_based = KeyBasedEmpDepScenario();
  SigmaAnalysis a = AnalyzeSigma(key_based.deps, *key_based.catalog);
  EXPECT_EQ(a.sigma_class, SigmaClass::kKeyBased);
  EXPECT_TRUE(a.decidable);
  EXPECT_TRUE(a.finitely_controllable);
  EXPECT_EQ(a.k_sigma, std::optional<uint32_t>(1));  // Lemma 6

  Scenario general = Section4Scenario();  // FD + IND, not key-based
  SigmaAnalysis g = AnalyzeSigma(general.deps, *general.catalog);
  EXPECT_EQ(g.sigma_class, SigmaClass::kGeneral);
  EXPECT_FALSE(g.decidable);
  EXPECT_FALSE(g.finitely_controllable);
}

// --- Strategy routing --------------------------------------------------------

class DispatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddRelation("R", {"a", "b"}).ok());
    ASSERT_TRUE(catalog_.AddRelation("S", {"x", "y"}).ok());
    q_ = *ParseQuery(catalog_, symbols_, "ans(u) :- R(u, v)");
    one_ = *ParseQuery(catalog_, symbols_, "ans(p) :- S(p, w)");
    two_ = *ParseQuery(catalog_, symbols_, "ans(p) :- S(p, w), R(p, w)");
  }

  Catalog catalog_;
  SymbolTable symbols_;
  ConjunctiveQuery q_{nullptr, nullptr};
  ConjunctiveQuery one_{nullptr, nullptr};
  ConjunctiveQuery two_{nullptr, nullptr};
};

TEST_F(DispatchTest, EmptySigmaRoutesToHomomorphism) {
  ContainmentEngine engine(&catalog_, &symbols_);
  DependencySet empty;
  EXPECT_EQ(engine.RouteOf(one_, empty),
            std::optional<DecisionStrategy>(DecisionStrategy::kHomomorphism));
  Result<EngineVerdict> v = engine.Check(q_, one_, empty);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->strategy, DecisionStrategy::kHomomorphism);
  EXPECT_EQ(v->sigma_class, SigmaClass::kEmpty);
  EXPECT_FALSE(v->report.contained);
}

TEST_F(DispatchTest, FdOnlyRoutesToFdChase) {
  ContainmentEngine engine(&catalog_, &symbols_);
  DependencySet fds = *ParseDependencies(catalog_, "R: 1 -> 2");
  Result<EngineVerdict> v = engine.Check(q_, q_, fds);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->strategy, DecisionStrategy::kFdChase);
  EXPECT_TRUE(v->report.contained);  // Q subseteq Q always
}

TEST_F(DispatchTest, IndOnlySingleConjunctRoutesToStreaming) {
  ContainmentEngine engine(&catalog_, &symbols_);
  DependencySet inds = *ParseDependencies(catalog_, "R[1,2] <= S[1,2]");
  EXPECT_EQ(engine.RouteOf(one_, inds),
            std::optional<DecisionStrategy>(
                DecisionStrategy::kStreamingFrontier));
  Result<EngineVerdict> v = engine.Check(q_, one_, inds);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->strategy, DecisionStrategy::kStreamingFrontier);
  EXPECT_TRUE(v->report.contained);
}

TEST_F(DispatchTest, IndOnlyMultiConjunctRoutesToIterativeDeepening) {
  ContainmentEngine engine(&catalog_, &symbols_);
  DependencySet inds = *ParseDependencies(catalog_, "R[1,2] <= S[1,2]");
  Result<EngineVerdict> v = engine.Check(q_, two_, inds);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->strategy, DecisionStrategy::kIterativeDeepening);
}

TEST_F(DispatchTest, StreamingCanBeDisabledAndVerdictAgrees) {
  DependencySet inds = *ParseDependencies(catalog_, "R[1,2] <= S[1,2]");
  ContainmentEngine streaming(&catalog_, &symbols_);
  EngineConfig no_streaming_config;
  no_streaming_config.route_streaming_single_conjunct = false;
  ContainmentEngine no_streaming(&catalog_, &symbols_, no_streaming_config);

  Result<EngineVerdict> a = streaming.Check(q_, one_, inds);
  Result<EngineVerdict> b = no_streaming.Check(q_, one_, inds);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->strategy, DecisionStrategy::kStreamingFrontier);
  EXPECT_EQ(b->strategy, DecisionStrategy::kIterativeDeepening);
  EXPECT_EQ(a->report.contained, b->report.contained);
  // The chase route carries a witness homomorphism; streaming does not.
  EXPECT_TRUE(b->report.witness.has_value());
  EXPECT_FALSE(a->report.witness.has_value());
}

TEST_F(DispatchTest, StreamingFallsBackToChaseWhenFrontierExplodes) {
  // Dense self/cross INDs whose witnesses already sit in Q: the R-chase
  // saturates at level 0, but the undeduplicated streaming frontier grows
  // geometrically and exhausts its budget — the engine must fall back to
  // the chase route instead of surfacing ResourceExhausted.
  DependencySet dense = *ParseDependencies(
      catalog_,
      "R[1] <= R[2]\nR[2] <= R[1]\nR[1] <= S[1]\nS[1] <= R[1]\n"
      "S[1] <= S[2]\nS[2] <= S[1]\nR[2] <= S[2]");
  ConjunctiveQuery q = *ParseQuery(catalog_, symbols_,
                                   "ans(u) :- R(u, u), S(u, u)");
  ConjunctiveQuery qp = *ParseQuery(catalog_, symbols_,
                                    "ans(u2) :- S(u2, '9')");
  EngineConfig config;
  config.containment.limits.max_conjuncts = 5000;  // streaming budget
  ContainmentEngine engine(&catalog_, &symbols_, config);
  EXPECT_EQ(engine.RouteOf(qp, dense),
            std::optional<DecisionStrategy>(
                DecisionStrategy::kStreamingFrontier));
  Result<EngineVerdict> v = engine.Check(q, qp, dense);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->strategy, DecisionStrategy::kIterativeDeepening);
  EXPECT_FALSE(v->report.contained);
}

TEST_F(DispatchTest, KeyBasedRoutesToIterativeDeepening) {
  Scenario s = KeyBasedEmpDepScenario();
  ContainmentEngine engine(s.catalog.get(), s.symbols.get());
  Result<EngineVerdict> v =
      engine.Check(s.queries[0], s.queries[1], s.deps);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->sigma_class, SigmaClass::kKeyBased);
  EXPECT_EQ(v->strategy, DecisionStrategy::kIterativeDeepening);
  EXPECT_TRUE(v->report.contained);
}

TEST_F(DispatchTest, GeneralSigmaIsUnimplementedWithoutSemidecision) {
  Scenario s = Section4Scenario();
  ContainmentEngine engine(s.catalog.get(), s.symbols.get());
  EXPECT_EQ(engine.RouteOf(s.queries[1], s.deps), std::nullopt);
  Result<EngineVerdict> v =
      engine.Check(s.queries[0], s.queries[1], s.deps);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kUnimplemented);
}

TEST_F(DispatchTest, GeneralSigmaSemidecisionRoutesWhenAllowed) {
  Scenario s = Section4Scenario();
  EngineConfig config;
  config.containment.allow_semidecision = true;
  config.containment.limits.max_level = 6;
  config.containment.limits.max_conjuncts = 2000;
  ContainmentEngine engine(s.catalog.get(), s.symbols.get(), config);
  EXPECT_EQ(engine.RouteOf(s.queries[1], s.deps),
            std::optional<DecisionStrategy>(DecisionStrategy::kSemiDecision));
  // Section 4's pair is the undecided-by-construction case: the chase never
  // saturates and no witness exists, so the budget runs out.
  Result<EngineVerdict> v =
      engine.Check(s.queries[0], s.queries[1], s.deps);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kResourceExhausted);
}

// --- Parity with the legacy single-shot surface ------------------------------

TEST(DispatchParityTest, EngineAgreesWithCheckContainmentOnScenarios) {
  for (Scenario (*make)() : {EmpDepScenario, KeyBasedEmpDepScenario}) {
    Scenario s = make();
    ContainmentEngine engine(s.catalog.get(), s.symbols.get());
    for (size_t i = 0; i < s.queries.size(); ++i) {
      for (size_t j = 0; j < s.queries.size(); ++j) {
        Result<EngineVerdict> via_engine =
            engine.Check(s.queries[i], s.queries[j], s.deps);
        Result<ContainmentReport> legacy = CheckContainment(
            s.queries[i], s.queries[j], s.deps, *s.symbols);
        ASSERT_TRUE(via_engine.ok());
        ASSERT_TRUE(legacy.ok());
        EXPECT_EQ(via_engine->report.contained, legacy->contained)
            << "pair (" << i << "," << j << ")";
      }
    }
  }
}

TEST(DispatchParityTest, EmptyMarkedQueryIsContainedInEverything) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  SymbolTable symbols;
  ConjunctiveQuery q = *ParseQuery(catalog, symbols, "ans(u) :- R(u, v)");
  ConjunctiveQuery empty(&catalog, &symbols);
  empty.SetSummary(q.summary());
  empty.MarkEmptyQuery();
  ContainmentEngine engine(&catalog, &symbols);
  // Even for the streaming-eligible shape (IND-only, single-conjunct Q').
  DependencySet inds = *ParseDependencies(catalog, "R[1] <= R[2]");
  Result<EngineVerdict> v = engine.Check(empty, q, inds);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_TRUE(v->report.contained);
}

}  // namespace
}  // namespace cqchase
