// Differential proof of the chase-core equivalence contract: the bulk
// (set-at-a-time, ChaseCoreMode::kBulk) and parallel (concurrent
// witness-class sweeps, ChaseCoreMode::kParallel) cores must produce a
// final prefix IDENTICAL to the scalar oracle — same conjunct ids, facts,
// levels, alive flags, parents, arcs, step counts, and outcome — on
// randomized Σ + query families and on the paper's scenarios, including
// runs that hit resource limits, and identical engine verdicts +
// certificates end to end. The parallel runs force parallel_min_pairs = 1
// so even tiny frontiers take the concurrent path, and alternate between a
// real work-stealing pool and the inline (null-runner) degradation.
//
// Twin-universe technique: every comparison generates its workload TWICE
// from the same seed into two independent SymbolTables, so the two cores
// mint NDVs from identical id sequences and Term-level equality (kind, id)
// is meaningful across the pair.
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "chase/chase.h"
#include "core/certificate.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "engine/engine.h"
#include "engine/executor.h"
#include "gen/generators.h"
#include "gen/scenarios.h"

namespace cqchase {
namespace {

// Shared 4-worker pool for the kParallel runs. A single static pool keeps
// the test suite honest under TSan: every parallel case races its
// witness-class tasks on the same threads.
ChaseTaskRunner* SharedRunner() {
  static Executor* executor = new Executor(4);
  static ExecutorTaskRunner* runner = new ExecutorTaskRunner(executor);
  return runner;
}

// Parallel-core limits for a parity run: take the concurrent path on every
// frontier, and alternate real-pool vs inline coverage by seed.
ChaseLimits ParallelLimits(ChaseLimits limits, uint64_t seed) {
  limits.parallel_min_pairs = 1;
  if (seed % 3 != 0) limits.runner = SharedRunner();
  return limits;
}

// One self-owning chase run: universe + chase + the ExpandToLevel status.
struct ChaseRun {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<SymbolTable> symbols;
  std::unique_ptr<DependencySet> deps;
  std::vector<ConjunctiveQuery> queries;
  std::unique_ptr<Chase> chase;
  Status expand_status = Status::OK();
};

using UniverseBuilder = std::function<void(Rng&, ChaseRun&)>;

ChaseRun RunOne(uint64_t seed, const UniverseBuilder& build,
                ChaseCoreMode mode, ChaseVariant variant, ChaseLimits limits,
                uint32_t level) {
  ChaseRun run;
  run.catalog = std::make_unique<Catalog>();
  run.symbols = std::make_unique<SymbolTable>();
  run.deps = std::make_unique<DependencySet>();
  Rng rng(seed);
  build(rng, run);
  limits.core = mode;
  run.chase = std::make_unique<Chase>(run.catalog.get(), run.symbols.get(),
                                      run.deps.get(), variant, limits);
  Status init = run.chase->Init(run.queries.at(0));
  EXPECT_TRUE(init.ok()) << init.ToString();
  Result<ChaseOutcome> outcome = run.chase->ExpandToLevel(level);
  run.expand_status = outcome.status();
  return run;
}

void ExpectIdenticalPrefixes(const Chase& scalar, const Chase& bulk,
                             const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(scalar.outcome(), bulk.outcome());
  EXPECT_EQ(scalar.steps(), bulk.steps());
  EXPECT_EQ(scalar.summary(), bulk.summary());
  ASSERT_EQ(scalar.conjuncts().size(), bulk.conjuncts().size());
  for (size_t i = 0; i < scalar.conjuncts().size(); ++i) {
    const ChaseConjunct& s = scalar.conjuncts()[i];
    const ChaseConjunct& b = bulk.conjuncts()[i];
    ASSERT_EQ(s.id, b.id) << "conjunct " << i;
    EXPECT_EQ(s.level, b.level) << "conjunct " << i;
    EXPECT_EQ(s.alive, b.alive) << "conjunct " << i;
    EXPECT_EQ(s.fact, b.fact) << "conjunct " << i;
    EXPECT_EQ(s.parent, b.parent) << "conjunct " << i;
    EXPECT_EQ(s.parent_ind, b.parent_ind) << "conjunct " << i;
  }
  ASSERT_EQ(scalar.arcs().size(), bulk.arcs().size());
  for (size_t i = 0; i < scalar.arcs().size(); ++i) {
    const ChaseArc& s = scalar.arcs()[i];
    const ChaseArc& b = bulk.arcs()[i];
    EXPECT_EQ(s.from, b.from) << "arc " << i;
    EXPECT_EQ(s.to, b.to) << "arc " << i;
    EXPECT_EQ(s.ind_index, b.ind_index) << "arc " << i;
    EXPECT_EQ(s.cross, b.cross) << "arc " << i;
  }
  // Catch-all (and checks NDV *names* match across the twin tables).
  EXPECT_EQ(scalar.ToString(), bulk.ToString());
}

void ExpectSameStatus(const Status& scalar, const Status& bulk,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(scalar.code(), bulk.code())
      << "scalar: " << scalar.ToString() << " bulk: " << bulk.ToString();
}

// All three cores on twin universes; compares statuses and final prefixes
// of bulk and parallel against the scalar oracle.
void RunParityCase(uint64_t seed, const UniverseBuilder& build,
                   ChaseVariant variant, ChaseLimits limits, uint32_t level,
                   const std::string& label) {
  ChaseRun scalar = RunOne(seed, build, ChaseCoreMode::kScalar, variant,
                           limits, level);
  ChaseRun bulk =
      RunOne(seed, build, ChaseCoreMode::kBulk, variant, limits, level);
  ExpectSameStatus(scalar.expand_status, bulk.expand_status, label);
  ExpectIdenticalPrefixes(*scalar.chase, *bulk.chase, label);
  ChaseRun parallel = RunOne(seed, build, ChaseCoreMode::kParallel, variant,
                             ParallelLimits(limits, seed), level);
  ExpectSameStatus(scalar.expand_status, parallel.expand_status,
                   label + " [parallel]");
  ExpectIdenticalPrefixes(*scalar.chase, *parallel.chase,
                          label + " [parallel]");
}

UniverseBuilder IndOnlyUniverse(size_t num_relations, size_t num_inds,
                                size_t ind_width, size_t num_conjuncts) {
  return [=](Rng& rng, ChaseRun& run) {
    RandomCatalogParams cp;
    cp.num_relations = num_relations;
    cp.min_arity = 2;
    cp.max_arity = 4;
    *run.catalog = RandomCatalog(rng, cp);
    RandomIndParams ip;
    ip.count = num_inds;
    ip.width = ind_width;
    *run.deps = RandomIndOnlyDeps(rng, *run.catalog, ip);
    RandomQueryParams qp;
    qp.num_conjuncts = num_conjuncts;
    qp.num_vars = 6;
    qp.num_dist_vars = 2;
    run.queries.push_back(RandomQuery(rng, *run.catalog, *run.symbols, qp));
  };
}

UniverseBuilder KeyBasedUniverse(size_t key_size, size_t num_inds,
                                 double constant_prob) {
  return [=](Rng& rng, ChaseRun& run) {
    RandomCatalogParams cp;
    cp.num_relations = 4;
    cp.min_arity = key_size + 1;
    cp.max_arity = key_size + 3;
    *run.catalog = RandomCatalog(rng, cp);
    RandomKeyBasedParams kp;
    kp.key_size = key_size;
    kp.num_inds = num_inds;
    *run.deps = RandomKeyBasedDeps(rng, *run.catalog, kp);
    RandomQueryParams qp;
    qp.num_conjuncts = 5;
    qp.num_vars = 5;
    qp.num_dist_vars = 1;
    qp.constant_prob = constant_prob;
    run.queries.push_back(RandomQuery(rng, *run.catalog, *run.symbols, qp));
  };
}

TEST(ChaseCoreParity, RandomIndOnlyFamilies) {
  ChaseLimits limits;
  limits.max_conjuncts = 4000;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const size_t num_inds = 2 + seed * 9;  // 11 .. 92 INDs
    UniverseBuilder build = IndOnlyUniverse(3 + seed % 4, num_inds,
                                            /*ind_width=*/1,
                                            /*num_conjuncts=*/5);
    for (ChaseVariant variant :
         {ChaseVariant::kRequired, ChaseVariant::kOblivious}) {
      RunParityCase(seed, build, variant, limits, /*level=*/3,
                    "ind-only seed=" + std::to_string(seed) + " variant=" +
                        (variant == ChaseVariant::kRequired ? "R" : "O"));
    }
  }
}

TEST(ChaseCoreParity, RandomWideIndFamilies) {
  // Width-2 INDs: fewer fresh columns, more witness short-circuits.
  ChaseLimits limits;
  limits.max_conjuncts = 4000;
  for (uint64_t seed = 21; seed <= 26; ++seed) {
    RunParityCase(seed, IndOnlyUniverse(5, 25, /*ind_width=*/2, 6),
                  ChaseVariant::kRequired, limits, /*level=*/3,
                  "wide-ind seed=" + std::to_string(seed));
  }
}

TEST(ChaseCoreParity, RandomKeyBasedFamilies) {
  // FDs fire mid-chase: exercises the merge -> sweep-abort -> rebuild path
  // against the scalar escalation discipline.
  ChaseLimits limits;
  limits.max_conjuncts = 4000;
  for (uint64_t seed = 41; seed <= 50; ++seed) {
    for (ChaseVariant variant :
         {ChaseVariant::kRequired, ChaseVariant::kOblivious}) {
      RunParityCase(seed, KeyBasedUniverse(1 + seed % 2, 6, 0.0), variant,
                    limits, /*level=*/4,
                    "key-based seed=" + std::to_string(seed));
    }
  }
}

TEST(ChaseCoreParity, RandomKeyBasedWithConstants) {
  // Constants make FD clashes (empty query) reachable.
  ChaseLimits limits;
  limits.max_conjuncts = 4000;
  for (uint64_t seed = 61; seed <= 70; ++seed) {
    RunParityCase(seed, KeyBasedUniverse(1, 5, /*constant_prob=*/0.5),
                  ChaseVariant::kRequired, limits, /*level=*/4,
                  "key-based-constants seed=" + std::to_string(seed));
  }
}

TEST(ChaseCoreParity, FdOnlyFamilies) {
  ChaseLimits limits;
  for (uint64_t seed = 81; seed <= 85; ++seed) {
    UniverseBuilder build = [](Rng& rng, ChaseRun& run) {
      RandomCatalogParams cp;
      cp.num_relations = 3;
      *run.catalog = RandomCatalog(rng, cp);
      RandomKeyBasedParams kp;
      kp.key_size = 1;
      kp.num_inds = 0;
      *run.deps = RandomKeyBasedDeps(rng, *run.catalog, kp);
      RandomQueryParams qp;
      qp.num_conjuncts = 6;
      qp.num_vars = 4;
      qp.constant_prob = 0.4;
      run.queries.push_back(RandomQuery(rng, *run.catalog, *run.symbols, qp));
    };
    RunParityCase(seed, build, ChaseVariant::kRequired, limits, /*level=*/4,
                  "fd-only seed=" + std::to_string(seed));
  }
}

// Paper scenarios, including the Figure 1 infinite chase truncated at
// several depths.
TEST(ChaseCoreParity, PaperScenarios) {
  struct Case {
    Scenario (*make)();
    const char* name;
  };
  const Case cases[] = {{&EmpDepScenario, "emp-dep"},
                        {&Fig1Scenario, "fig1"},
                        {&Section4Scenario, "section4"},
                        {&KeyBasedEmpDepScenario, "key-based-emp-dep"}};
  for (const Case& c : cases) {
    Scenario probe = c.make();
    for (size_t qi = 0; qi < probe.queries.size(); ++qi) {
      for (ChaseVariant variant :
           {ChaseVariant::kRequired, ChaseVariant::kOblivious}) {
        for (uint32_t level : {1u, 3u, 6u}) {
          ChaseLimits limits;
          limits.max_conjuncts = 100000;
          Scenario a = c.make();
          Scenario b = c.make();
          Scenario p = c.make();
          limits.core = ChaseCoreMode::kScalar;
          Chase scalar(a.catalog.get(), a.symbols.get(), &a.deps, variant,
                       limits);
          ASSERT_TRUE(scalar.Init(a.queries[qi]).ok());
          Status s_status = scalar.ExpandToLevel(level).status();
          limits.core = ChaseCoreMode::kBulk;
          Chase bulk(b.catalog.get(), b.symbols.get(), &b.deps, variant,
                     limits);
          ASSERT_TRUE(bulk.Init(b.queries[qi]).ok());
          Status b_status = bulk.ExpandToLevel(level).status();
          ChaseLimits plimits = ParallelLimits(limits, level);
          plimits.core = ChaseCoreMode::kParallel;
          Chase parallel(p.catalog.get(), p.symbols.get(), &p.deps, variant,
                         plimits);
          ASSERT_TRUE(parallel.Init(p.queries[qi]).ok());
          Status p_status = parallel.ExpandToLevel(level).status();
          const std::string label = std::string(c.name) + " q" +
                                    std::to_string(qi) + " level " +
                                    std::to_string(level);
          ExpectSameStatus(s_status, b_status, label);
          ExpectIdenticalPrefixes(scalar, bulk, label);
          ExpectSameStatus(s_status, p_status, label + " [parallel]");
          ExpectIdenticalPrefixes(scalar, parallel, label + " [parallel]");
        }
      }
    }
  }
}

// Limit hits must leave identical partial prefixes and identical errors.
TEST(ChaseCoreParity, ResourceLimitParity) {
  for (size_t max_conjuncts : {2u, 5u, 9u}) {
    ChaseLimits limits;
    limits.max_conjuncts = max_conjuncts;
    Scenario a = Fig1Scenario();
    Scenario b = Fig1Scenario();
    Scenario p = Fig1Scenario();
    limits.core = ChaseCoreMode::kScalar;
    Chase scalar(a.catalog.get(), a.symbols.get(), &a.deps,
                 ChaseVariant::kRequired, limits);
    ASSERT_TRUE(scalar.Init(a.queries[0]).ok());
    Status s_status = scalar.ExpandToLevel(30).status();
    limits.core = ChaseCoreMode::kBulk;
    Chase bulk(b.catalog.get(), b.symbols.get(), &b.deps,
               ChaseVariant::kRequired, limits);
    ASSERT_TRUE(bulk.Init(b.queries[0]).ok());
    Status b_status = bulk.ExpandToLevel(30).status();
    ChaseLimits plimits = ParallelLimits(limits, max_conjuncts);
    plimits.core = ChaseCoreMode::kParallel;
    Chase parallel(p.catalog.get(), p.symbols.get(), &p.deps,
                   ChaseVariant::kRequired, plimits);
    ASSERT_TRUE(parallel.Init(p.queries[0]).ok());
    Status p_status = parallel.ExpandToLevel(30).status();
    const std::string label =
        "fig1 max_conjuncts=" + std::to_string(max_conjuncts);
    EXPECT_EQ(s_status.code(), StatusCode::kResourceExhausted) << label;
    ExpectSameStatus(s_status, b_status, label);
    ExpectIdenticalPrefixes(scalar, bulk, label);
    ExpectSameStatus(s_status, p_status, label + " [parallel]");
    ExpectIdenticalPrefixes(scalar, parallel, label + " [parallel]");
  }
  for (size_t max_steps : {1u, 4u, 11u}) {
    ChaseLimits limits;
    limits.max_steps = max_steps;
    Scenario a = Fig1Scenario();
    Scenario b = Fig1Scenario();
    Scenario p = Fig1Scenario();
    limits.core = ChaseCoreMode::kScalar;
    Chase scalar(a.catalog.get(), a.symbols.get(), &a.deps,
                 ChaseVariant::kRequired, limits);
    ASSERT_TRUE(scalar.Init(a.queries[0]).ok());
    Status s_status = scalar.ExpandToLevel(30).status();
    limits.core = ChaseCoreMode::kBulk;
    Chase bulk(b.catalog.get(), b.symbols.get(), &b.deps,
               ChaseVariant::kRequired, limits);
    ASSERT_TRUE(bulk.Init(b.queries[0]).ok());
    Status b_status = bulk.ExpandToLevel(30).status();
    ChaseLimits plimits = ParallelLimits(limits, max_steps);
    plimits.core = ChaseCoreMode::kParallel;
    Chase parallel(p.catalog.get(), p.symbols.get(), &p.deps,
                   ChaseVariant::kRequired, plimits);
    ASSERT_TRUE(parallel.Init(p.queries[0]).ok());
    Status p_status = parallel.ExpandToLevel(30).status();
    const std::string label = "fig1 max_steps=" + std::to_string(max_steps);
    ExpectSameStatus(s_status, b_status, label);
    ExpectIdenticalPrefixes(scalar, bulk, label);
    ExpectSameStatus(s_status, p_status, label + " [parallel]");
    ExpectIdenticalPrefixes(scalar, parallel, label + " [parallel]");
  }
}

// Incremental deepening through the bulk core must land on the same prefix
// as one deep scalar expansion (ExpandToLevel is resumable in both cores).
TEST(ChaseCoreParity, ResumabilityParity) {
  ChaseLimits limits;
  limits.max_conjuncts = 100000;
  Scenario a = Fig1Scenario();
  Scenario b = Fig1Scenario();
  limits.core = ChaseCoreMode::kScalar;
  Chase scalar(a.catalog.get(), a.symbols.get(), &a.deps,
               ChaseVariant::kRequired, limits);
  ASSERT_TRUE(scalar.Init(a.queries[0]).ok());
  ASSERT_TRUE(scalar.ExpandToLevel(5).ok());
  limits.core = ChaseCoreMode::kBulk;
  Chase bulk(b.catalog.get(), b.symbols.get(), &b.deps,
             ChaseVariant::kRequired, limits);
  ASSERT_TRUE(bulk.Init(b.queries[0]).ok());
  for (uint32_t level = 1; level <= 5; ++level) {
    ASSERT_TRUE(bulk.ExpandToLevel(level).ok());
  }
  ExpectIdenticalPrefixes(scalar, bulk, "fig1 resumed vs direct");
  Scenario p = Fig1Scenario();
  ChaseLimits plimits = ParallelLimits(limits, /*seed=*/1);
  plimits.core = ChaseCoreMode::kParallel;
  Chase parallel(p.catalog.get(), p.symbols.get(), &p.deps,
                 ChaseVariant::kRequired, plimits);
  ASSERT_TRUE(parallel.Init(p.queries[0]).ok());
  for (uint32_t level = 1; level <= 5; ++level) {
    ASSERT_TRUE(parallel.ExpandToLevel(level).ok());
  }
  ExpectIdenticalPrefixes(scalar, parallel, "fig1 resumed parallel vs direct");
}

// The bulk core must actually run set-at-a-time: segments built, batches
// swept, and segment provenance agreeing with the per-conjunct records.
TEST(ChaseCoreParity, BulkStatsAndSegmentProvenance) {
  Scenario s = Fig1Scenario();
  ChaseLimits limits;
  limits.core = ChaseCoreMode::kBulk;
  Chase bulk(s.catalog.get(), s.symbols.get(), &s.deps,
             ChaseVariant::kRequired, limits);
  ASSERT_TRUE(bulk.Init(s.queries[0]).ok());
  ASSERT_TRUE(bulk.ExpandToLevel(4).ok());
  const ChaseStats& stats = bulk.chase_stats();
  EXPECT_GT(stats.bulk_batches, 0u);
  EXPECT_GT(stats.bulk_ind_applications, 0u);
  EXPECT_GT(stats.segments_built, 0u);
  EXPECT_GE(stats.max_batch_rows, 1u);
  EXPECT_EQ(stats.segments_built, bulk.segments().segments().size());
  size_t minted_via_segments = 0;
  for (const ColumnSegment& seg : bulk.segments().segments()) {
    ASSERT_GT(seg.rows(), 0u);
    minted_via_segments += seg.rows();
    for (size_t r = 0; r < seg.rows(); ++r) {
      const ChaseConjunct* c = bulk.ConjunctById(seg.minted_ids[r]);
      ASSERT_NE(c, nullptr);
      EXPECT_EQ(c->level, seg.level);
      // Mint-time provenance: parent_ind always survives merges; the
      // mint-time fact is reconstructable column-wise.
      std::optional<SegmentEdge> edge = bulk.segments().EdgeOf(c->id);
      ASSERT_TRUE(edge.has_value());
      EXPECT_EQ(edge->ind_index, seg.ind_index);
      EXPECT_EQ(edge->source_id, seg.source_ids[r]);
      EXPECT_EQ(seg.RowFact(r).relation, seg.relation);
    }
  }
  // Every non-root conjunct was minted through a segment.
  size_t non_roots = 0;
  for (const ChaseConjunct& c : bulk.conjuncts()) {
    if (c.parent.has_value()) ++non_roots;
  }
  EXPECT_EQ(minted_via_segments, non_roots);

  // Scalar core: no segments.
  Scenario s2 = Fig1Scenario();
  limits.core = ChaseCoreMode::kScalar;
  Chase scalar(s2.catalog.get(), s2.symbols.get(), &s2.deps,
               ChaseVariant::kRequired, limits);
  ASSERT_TRUE(scalar.Init(s2.queries[0]).ok());
  ASSERT_TRUE(scalar.ExpandToLevel(4).ok());
  EXPECT_TRUE(scalar.segments().empty());
  EXPECT_EQ(scalar.chase_stats().segments_built, 0u);
  EXPECT_EQ(scalar.chase_stats().bulk_batches, 0u);
}

// The parallel core must actually sweep concurrently on IND-only Σ (Fig1
// has no FDs), fall back honestly below the frontier-size floor, and
// serialize a level whose FD simulation predicts a merge — all while
// staying byte-identical to the scalar oracle.
TEST(ChaseCoreParity, ParallelStatsAndFallbacks) {
  // Committed parallel sweeps on Fig1.
  {
    Scenario s = Fig1Scenario();
    ChaseLimits limits;
    limits.core = ChaseCoreMode::kParallel;
    limits.parallel_min_pairs = 1;
    limits.runner = SharedRunner();
    Chase parallel(s.catalog.get(), s.symbols.get(), &s.deps,
                   ChaseVariant::kRequired, limits);
    ASSERT_TRUE(parallel.Init(s.queries[0]).ok());
    ASSERT_TRUE(parallel.ExpandToLevel(4).ok());
    const ChaseStats& stats = parallel.chase_stats();
    EXPECT_GT(stats.parallel_sweeps, 0u);
    EXPECT_GT(stats.parallel_batches, 0u);
    EXPECT_GT(stats.parallel_depth_layers, 0u);
    EXPECT_GE(stats.parallel_max_depth_width, 1u);
    EXPECT_EQ(stats.parallel_serialized_levels, 0u);  // Fig1 is IND-only
    EXPECT_EQ(stats.parallel_small_levels, 0u);       // floor is 1
    EXPECT_GT(stats.segments_built, 0u);  // shares the columnar sweep path

    Scenario s2 = Fig1Scenario();
    ChaseLimits slimits;
    slimits.core = ChaseCoreMode::kScalar;
    Chase scalar(s2.catalog.get(), s2.symbols.get(), &s2.deps,
                 ChaseVariant::kRequired, slimits);
    ASSERT_TRUE(scalar.Init(s2.queries[0]).ok());
    ASSERT_TRUE(scalar.ExpandToLevel(4).ok());
    ExpectIdenticalPrefixes(scalar, parallel, "fig1 committed sweeps");
    EXPECT_EQ(scalar.chase_stats().parallel_sweeps, 0u);
    EXPECT_EQ(scalar.chase_stats().parallel_batches, 0u);
  }
  // Below the frontier floor every level routes through the serial bulk
  // path and says so.
  {
    Scenario s = Fig1Scenario();
    ChaseLimits limits;
    limits.core = ChaseCoreMode::kParallel;
    limits.parallel_min_pairs = 1000000;
    limits.runner = SharedRunner();
    Chase parallel(s.catalog.get(), s.symbols.get(), &s.deps,
                   ChaseVariant::kRequired, limits);
    ASSERT_TRUE(parallel.Init(s.queries[0]).ok());
    ASSERT_TRUE(parallel.ExpandToLevel(4).ok());
    EXPECT_EQ(parallel.chase_stats().parallel_sweeps, 0u);
    EXPECT_GT(parallel.chase_stats().parallel_small_levels, 0u);

    Scenario s2 = Fig1Scenario();
    ChaseLimits slimits;
    slimits.core = ChaseCoreMode::kScalar;
    Chase scalar(s2.catalog.get(), s2.symbols.get(), &s2.deps,
                 ChaseVariant::kRequired, slimits);
    ASSERT_TRUE(scalar.Init(s2.queries[0]).ok());
    ASSERT_TRUE(scalar.ExpandToLevel(4).ok());
    ExpectIdenticalPrefixes(scalar, parallel, "fig1 small-level fallback");
  }
  // Two O-chase mints into the same FD key in one level: the plan's FD
  // simulation must predict the merge and serialize that level.
  auto merge_universe = []() {
    Scenario s;
    s.catalog = std::make_unique<Catalog>();
    s.symbols = std::make_unique<SymbolTable>();
    EXPECT_TRUE(s.catalog->AddRelation("R", {"r1", "r2"}).ok());
    EXPECT_TRUE(s.catalog->AddRelation("S", {"s1", "s2"}).ok());
    Result<DependencySet> deps =
        ParseDependencies(*s.catalog, "S: 1 -> 2; R[1] <= S[1]");
    EXPECT_TRUE(deps.ok()) << deps.status().ToString();
    s.deps = std::move(*deps);
    Result<ConjunctiveQuery> q =
        ParseQuery(*s.catalog, *s.symbols, "ans(x) :- R(x, y), R(x, z)");
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    s.queries.push_back(std::move(*q));
    return s;
  };
  {
    Scenario s = merge_universe();
    ChaseLimits limits;
    limits.core = ChaseCoreMode::kParallel;
    limits.parallel_min_pairs = 1;
    limits.runner = SharedRunner();
    Chase parallel(s.catalog.get(), s.symbols.get(), &s.deps,
                   ChaseVariant::kOblivious, limits);
    ASSERT_TRUE(parallel.Init(s.queries[0]).ok());
    ASSERT_TRUE(parallel.ExpandToLevel(1).ok());
    EXPECT_GT(parallel.chase_stats().parallel_serialized_levels, 0u);

    Scenario s2 = merge_universe();
    ChaseLimits slimits;
    slimits.core = ChaseCoreMode::kScalar;
    Chase scalar(s2.catalog.get(), s2.symbols.get(), &s2.deps,
                 ChaseVariant::kOblivious, slimits);
    ASSERT_TRUE(scalar.Init(s2.queries[0]).ok());
    ASSERT_TRUE(scalar.ExpandToLevel(1).ok());
    ExpectIdenticalPrefixes(scalar, parallel, "fd-merge serialization");
  }
}

// --- Engine-level parity: verdicts and certificates ------------------------

struct EngineUniverse {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<SymbolTable> symbols;
  std::unique_ptr<DependencySet> deps;
  std::vector<ConjunctiveQuery> queries;
  std::unique_ptr<ContainmentEngine> engine;
};

EngineUniverse MakeEngineUniverse(uint64_t seed, ChaseCoreMode mode,
                                  bool key_based) {
  EngineUniverse u;
  u.catalog = std::make_unique<Catalog>();
  u.symbols = std::make_unique<SymbolTable>();
  u.deps = std::make_unique<DependencySet>();
  Rng rng(seed);
  RandomCatalogParams cp;
  cp.num_relations = 4;
  cp.min_arity = 2;
  cp.max_arity = 3;
  *u.catalog = RandomCatalog(rng, cp);
  if (key_based) {
    RandomKeyBasedParams kp;
    kp.key_size = 1;
    kp.num_inds = 4;
    *u.deps = RandomKeyBasedDeps(rng, *u.catalog, kp);
  } else {
    RandomIndParams ip;
    ip.count = 6;
    ip.width = 1;
    *u.deps = RandomIndOnlyDeps(rng, *u.catalog, ip);
  }
  RandomQueryParams qp;
  qp.num_conjuncts = 4;
  qp.num_vars = 5;
  qp.num_dist_vars = 1;
  qp.name_prefix = "q";
  u.queries.push_back(RandomQuery(rng, *u.catalog, *u.symbols, qp));
  // A positive instance by construction (Σ ⊨ Q ⊆∞ planted) and an unrelated
  // random query (usually negative).
  Result<ConjunctiveQuery> planted = PlantedSuperQuery(
      rng, u.queries[0], *u.deps, *u.symbols, /*extra_conjuncts=*/2,
      /*chase_depth=*/2);
  EXPECT_TRUE(planted.ok()) << planted.status().ToString();
  u.queries.push_back(std::move(*planted));
  qp.name_prefix = "r";
  qp.num_conjuncts = 3;
  u.queries.push_back(RandomQuery(rng, *u.catalog, *u.symbols, qp));

  EngineConfig config;
  config.containment.limits.core = mode;
  config.containment.limits.max_conjuncts = 20000;
  if (mode == ChaseCoreMode::kParallel) {
    // Force the concurrent path on these tiny universes; the engine wires
    // its own pool-backed runner in DecideByChase.
    config.containment.limits.parallel_min_pairs = 1;
  }
  u.engine = std::make_unique<ContainmentEngine>(u.catalog.get(),
                                                 u.symbols.get(), config);
  return u;
}

TEST(ChaseCoreParity, EngineVerdictsAndCertificates) {
  for (uint64_t seed = 101; seed <= 106; ++seed) {
    for (bool key_based : {false, true}) {
      EngineUniverse scalar =
          MakeEngineUniverse(seed, ChaseCoreMode::kScalar, key_based);
      EngineUniverse bulk =
          MakeEngineUniverse(seed, ChaseCoreMode::kBulk, key_based);
      EngineUniverse parallel =
          MakeEngineUniverse(seed, ChaseCoreMode::kParallel, key_based);
      const std::pair<size_t, size_t> asks[] = {
          {0, 1}, {0, 2}, {1, 0}, {2, 0}, {1, 2}};
      for (const auto& [qi, pi] : asks) {
        const std::string label = "seed=" + std::to_string(seed) +
                                  (key_based ? " key-based" : " ind-only") +
                                  " ask=" + std::to_string(qi) + "⊆" +
                                  std::to_string(pi);
        SCOPED_TRACE(label);
        Result<EngineVerdict> vs = scalar.engine->Check(
            scalar.queries[qi], scalar.queries[pi], *scalar.deps);
        Result<EngineVerdict> vb = bulk.engine->Check(
            bulk.queries[qi], bulk.queries[pi], *bulk.deps);
        Result<EngineVerdict> vp = parallel.engine->Check(
            parallel.queries[qi], parallel.queries[pi], *parallel.deps);
        ASSERT_EQ(vs.ok(), vb.ok());
        ASSERT_EQ(vs.ok(), vp.ok());
        if (!vs.ok()) {
          EXPECT_EQ(vs.status().code(), vb.status().code());
          EXPECT_EQ(vs.status().code(), vp.status().code());
          continue;
        }
        EXPECT_EQ(vs->report.contained, vb->report.contained);
        EXPECT_EQ(vs->report.chase_outcome, vb->report.chase_outcome);
        EXPECT_EQ(vs->report.chase_conjuncts, vb->report.chase_conjuncts);
        EXPECT_EQ(vs->report.chase_levels, vb->report.chase_levels);
        EXPECT_EQ(vs->report.witness_max_level, vb->report.witness_max_level);
        EXPECT_EQ(vs->report.level_bound, vb->report.level_bound);
        EXPECT_EQ(vs->strategy, vb->strategy);
        EXPECT_EQ(vs->report.contained, vp->report.contained);
        EXPECT_EQ(vs->report.chase_outcome, vp->report.chase_outcome);
        EXPECT_EQ(vs->report.chase_conjuncts, vp->report.chase_conjuncts);
        EXPECT_EQ(vs->report.chase_levels, vp->report.chase_levels);
        EXPECT_EQ(vs->report.witness_max_level, vp->report.witness_max_level);
        EXPECT_EQ(vs->report.level_bound, vp->report.level_bound);
        EXPECT_EQ(vs->strategy, vp->strategy);

        Result<std::optional<ContainmentCertificate>> cs =
            scalar.engine->Certify(scalar.queries[qi], scalar.queries[pi],
                                   *scalar.deps);
        Result<std::optional<ContainmentCertificate>> cb = bulk.engine->Certify(
            bulk.queries[qi], bulk.queries[pi], *bulk.deps);
        Result<std::optional<ContainmentCertificate>> cp =
            parallel.engine->Certify(parallel.queries[qi],
                                     parallel.queries[pi], *parallel.deps);
        ASSERT_EQ(cs.ok(), cb.ok());
        ASSERT_EQ(cs.ok(), cp.ok());
        if (!cs.ok()) {
          EXPECT_EQ(cs.status().code(), cb.status().code());
          EXPECT_EQ(cs.status().code(), cp.status().code());
          continue;
        }
        ASSERT_EQ(cs->has_value(), cb->has_value());
        ASSERT_EQ(cs->has_value(), cp->has_value());
        if (cs->has_value()) {
          // Twin universes name symbols identically, so the rendered proofs
          // must match byte for byte — and each must verify in its own
          // universe.
          EXPECT_EQ(
              (*cs)->ToString(*scalar.catalog, *scalar.symbols),
              (*cb)->ToString(*bulk.catalog, *bulk.symbols));
          EXPECT_EQ(
              (*cs)->ToString(*scalar.catalog, *scalar.symbols),
              (*cp)->ToString(*parallel.catalog, *parallel.symbols));
          EXPECT_TRUE(VerifyCertificate(**cb, bulk.queries[qi],
                                        bulk.queries[pi], *bulk.deps,
                                        *bulk.symbols)
                          .ok());
          EXPECT_TRUE(VerifyCertificate(**cp, parallel.queries[qi],
                                        parallel.queries[pi], *parallel.deps,
                                        *parallel.symbols)
                          .ok());
        }
      }
      // The work the engines did must agree step for step; only the bulk
      // and parallel engines build segments, and only the parallel engine
      // commits parallel batches.
      const EngineStats ss = scalar.engine->stats();
      const EngineStats sb = bulk.engine->stats();
      const EngineStats sp = parallel.engine->stats();
      EXPECT_EQ(ss.chase_steps, sb.chase_steps);
      EXPECT_EQ(ss.chase_steps, sp.chase_steps);
      EXPECT_EQ(ss.segments_built, 0u);
      EXPECT_EQ(ss.bulk_ind_applications, 0u);
      EXPECT_EQ(ss.parallel_batches, 0u);
      EXPECT_EQ(sb.parallel_batches, 0u);
      if (sb.chase_steps > 0 && !key_based) {
        EXPECT_GT(sb.bulk_ind_applications, 0u);
        // IND-only Σ has no FD merges, so every non-trivial frontier must
        // have committed as a parallel sweep.
        EXPECT_GT(sp.parallel_batches, 0u);
        EXPECT_EQ(sp.parallel_serialized_levels, 0u);
      }
    }
  }
}

}  // namespace
}  // namespace cqchase
