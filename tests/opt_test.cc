#include "opt/optimizer.h"

#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/string_util.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "gen/generators.h"
#include "gen/scenarios.h"
#include "opt/cost.h"

namespace cqchase {
namespace {

// --- Cost model --------------------------------------------------------------

TEST(CostModelTest, UniformStatsAndConstantSelectivity) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  TableStats stats = TableStats::Uniform(catalog, 1000, 10);
  SymbolTable symbols;
  ConjunctiveQuery scan = *ParseQuery(catalog, symbols, "ans(x) :- R(x, y)");
  ConjunctiveQuery pinned =
      *ParseQuery(catalog, symbols, "ans(x) :- R(x, '7')");
  // A constant divides the estimate by the distinct count.
  EXPECT_GT(EstimatePlanCost(stats, scan), EstimatePlanCost(stats, pinned));
}

TEST(CostModelTest, FromInstanceCountsDistinctValues) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  SymbolTable symbols;
  Instance db(&catalog);
  ASSERT_TRUE(db.AddTuple(0, {symbols.InternConstant("u"),
                              symbols.InternConstant("v")}).ok());
  ASSERT_TRUE(db.AddTuple(0, {symbols.InternConstant("u"),
                              symbols.InternConstant("w")}).ok());
  TableStats stats = TableStats::FromInstance(db);
  EXPECT_EQ(stats.relation(0).cardinality, 2u);
  EXPECT_EQ(stats.relation(0).distinct[0], 1u);
  EXPECT_EQ(stats.relation(0).distinct[1], 2u);
}

TEST(CostModelTest, BoundVariablesReduceCardinality) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  TableStats stats = TableStats::Uniform(catalog, 100, 10);
  SymbolTable symbols;
  Fact f;
  f.relation = 0;
  f.terms = {symbols.InternNondistVar("x"), symbols.InternNondistVar("y")};
  EXPECT_DOUBLE_EQ(
      EstimateConjunctCardinality(stats, f, {false, false}), 100.0);
  EXPECT_DOUBLE_EQ(
      EstimateConjunctCardinality(stats, f, {true, false}), 10.0);
  EXPECT_DOUBLE_EQ(EstimateConjunctCardinality(stats, f, {true, true}), 1.0);
}

TEST(CostModelTest, RepeatedVariableActsAsSelection) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  TableStats stats = TableStats::Uniform(catalog, 100, 10);
  SymbolTable symbols;
  Fact loop;
  loop.relation = 0;
  Term x = symbols.InternNondistVar("x");
  loop.terms = {x, x};
  EXPECT_DOUBLE_EQ(
      EstimateConjunctCardinality(stats, loop, {false, false}), 10.0);
}

TEST(CostModelTest, GreedyOrderStartsWithMostSelective) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("BIG", {"a", "b"}).ok());
  ASSERT_TRUE(catalog.AddRelation("TINY", {"a"}).ok());
  TableStats stats(&catalog);
  stats.mutable_relation(0) = {10000, {100, 100}};
  stats.mutable_relation(1) = {5, {5}};
  SymbolTable symbols;
  ConjunctiveQuery q =
      *ParseQuery(catalog, symbols, "ans(x) :- BIG(x, y), TINY(x)");
  std::vector<size_t> order = GreedyJoinOrder(stats, q);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);  // TINY first
  EXPECT_EQ(order[1], 0u);
}

// --- Optimizer passes --------------------------------------------------------

TEST(OptimizerTest, IntroExampleDropsTheDepJoin) {
  Scenario s = EmpDepScenario();
  Result<OptimizeReport> r = OptimizeQuery(s.queries[0], s.deps, *s.symbols);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->conjuncts_removed, 1u);
  EXPECT_EQ(r->query.size(), 1u);
  // The result must still be Σ-equivalent to the input.
  Result<bool> eq =
      CheckEquivalence(s.queries[0], r->query, s.deps, *s.symbols);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST(OptimizerTest, FdUnificationMergesVariables) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  SymbolTable symbols;
  DependencySet fd = *ParseDependencies(catalog, "R: 1 -> 2");
  ConjunctiveQuery q =
      *ParseQuery(catalog, symbols, "ans(x) :- R(x, y), R(x, z)");
  Result<OptimizeReport> r = OptimizeQuery(q, fd, symbols);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->variables_unified, 1u);  // z merged into y
  EXPECT_EQ(r->query.size(), 1u);       // duplicate conjunct collapsed
}

TEST(OptimizerTest, DetectsEmptyQueryViaConstantClash) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  SymbolTable symbols;
  DependencySet fd = *ParseDependencies(catalog, "R: 1 -> 2");
  ConjunctiveQuery q =
      *ParseQuery(catalog, symbols, "ans(x) :- R(x, '1'), R(x, '2')");
  Result<OptimizeReport> r = OptimizeQuery(q, fd, symbols);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->proved_empty);
  EXPECT_TRUE(r->query.is_empty_query());
}

TEST(OptimizerTest, ReorderingNeverChangesAnswers) {
  Rng rng(11);
  Scenario s = EmpDepScenario();
  // A database satisfying the IND.
  Instance db(s.catalog.get());
  auto c = [&](const char* n) { return s.symbols->InternConstant(n); };
  ASSERT_TRUE(db.AddTuple(0, {c("e1"), c("50"), c("d1")}).ok());
  ASSERT_TRUE(db.AddTuple(0, {c("e2"), c("60"), c("d2")}).ok());
  ASSERT_TRUE(db.AddTuple(1, {c("d1"), c("l1")}).ok());
  ASSERT_TRUE(db.AddTuple(1, {c("d2"), c("l2")}).ok());
  ASSERT_TRUE(db.Satisfies(s.deps));

  ConjunctiveQuery q = *ParseQuery(
      *s.catalog, *s.symbols, "ans(e, l) :- EMP(e, sal, d), DEP(d, l)");
  OptimizerOptions options;
  options.stats = TableStats::FromInstance(db);
  Result<OptimizeReport> r = OptimizeQuery(q, s.deps, *s.symbols, options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(db.Eval(q), db.Eval(r->query));
  EXPECT_LE(r->cost_after_reorder, r->cost_before_reorder);
}

TEST(OptimizerTest, PassesCanBeDisabled) {
  Scenario s = EmpDepScenario();
  OptimizerOptions options;
  options.minimize = false;
  options.fd_unification = false;
  options.reorder_joins = false;
  Result<OptimizeReport> r =
      OptimizeQuery(s.queries[0], s.deps, *s.symbols, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->query.size(), s.queries[0].size());
  EXPECT_TRUE(r->trace.empty());
}

TEST(OptimizerTest, GeneralMixedSigmaRequiresSemidecisionOptIn) {
  Scenario s = Section4Scenario();  // FD+IND, not key-based
  ConjunctiveQuery q = s.queries[1];
  Result<OptimizeReport> strict = OptimizeQuery(q, s.deps, *s.symbols);
  ASSERT_FALSE(strict.ok());
  OptimizerOptions options;
  options.containment.allow_semidecision = true;
  options.containment.limits.max_level = 10;
  Result<OptimizeReport> relaxed =
      OptimizeQuery(q, s.deps, *s.symbols, options);
  EXPECT_TRUE(relaxed.ok()) << relaxed.status();
}

class OptimizerProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimizerProperty, OutputIsAlwaysSigmaEquivalent) {
  Rng rng(GetParam());
  RandomCatalogParams cp;
  cp.num_relations = 2;
  cp.min_arity = 2;
  cp.max_arity = 3;
  Catalog catalog = RandomCatalog(rng, cp);
  RandomIndParams ip;
  ip.count = 2;
  ip.width = 1;
  DependencySet deps = RandomIndOnlyDeps(rng, catalog, ip);
  SymbolTable symbols;
  RandomQueryParams qp;
  qp.num_conjuncts = 3;
  qp.name_prefix = StrCat("op", GetParam());
  ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);
  Result<OptimizeReport> r = OptimizeQuery(q, deps, symbols);
  ASSERT_TRUE(r.ok()) << r.status();
  Result<bool> eq = CheckEquivalence(q, r->query, deps, symbols);
  ASSERT_TRUE(eq.ok()) << eq.status();
  EXPECT_TRUE(*eq) << "input:  " << q.ToString()
                   << "\noutput: " << r->query.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerProperty,
                         ::testing::Range<uint64_t>(1, 16));

}  // namespace
}  // namespace cqchase
