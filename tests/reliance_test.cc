// Σ reliance analysis (analysis/reliance.h): hand-built graphs with known
// edges, condensation/frontier structure, agreement with the relation-level
// IND-graph analysis, the kAcyclicInd decision procedure checked
// differentially against the semi-decision oracle on randomized acyclic
// families, and the bulk core's reliance pruning proved byte-identical to
// the unpruned scalar oracle.
#include <gtest/gtest.h>

#include "analysis/reliance.h"
#include "base/rng.h"
#include "base/string_util.h"
#include "chase/chase.h"
#include "core/homomorphism.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "engine/engine.h"
#include "gen/generators.h"
#include "gen/scenarios.h"

namespace cqchase {
namespace {

// --- Hand-built edge structure -----------------------------------------------

// A ⊆ B ⊆ C with an FD on C: the canonical acyclic FD+IND mix.
class ChainWithFdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddRelation("A", {"a1", "a2"}).ok());
    ASSERT_TRUE(catalog_.AddRelation("B", {"b1", "b2"}).ok());
    ASSERT_TRUE(catalog_.AddRelation("C", {"c1", "c2"}).ok());
    // ind0: A[1] <= B[1], ind1: B[1] <= C[2], fd0: C: 1 -> 2. The IND into
    // C's non-key column makes Σ not key-based, so only the reliance
    // analysis rescues it from kGeneral.
    deps_ = *ParseDependencies(catalog_,
                               "A[1] <= B[1]\nB[1] <= C[2]\nC: 1 -> 2");
  }
  Catalog catalog_;
  DependencySet deps_;
  SymbolTable symbols_;
};

TEST_F(ChainWithFdTest, KnownRelianceEdges) {
  SigmaGraph g(deps_, catalog_);
  ASSERT_EQ(g.num_inds(), 2u);
  ASSERT_EQ(g.num_fds(), 1u);
  const uint32_t ind0 = 0;
  const uint32_t ind1 = 1;
  const uint32_t fd0 = 2;
  // Positive: ind0 mints B facts (ind1's input); ind1 mints C facts (fd0's
  // relation).
  EXPECT_TRUE(g.HasEdge(ind0, ind1, RelianceKind::kPositive));
  EXPECT_TRUE(g.HasEdge(ind1, fd0, RelianceKind::kPositive));
  // Interference: a merge on C rewrites ind1's witness pool and fd0's own
  // relation.
  EXPECT_TRUE(g.HasEdge(fd0, ind1, RelianceKind::kInterference));
  EXPECT_TRUE(g.HasEdge(fd0, fd0, RelianceKind::kInterference));
  // No reliance the other way down the chain, and the FD cannot disturb an
  // IND that touches neither side of C.
  EXPECT_FALSE(g.HasEdge(ind1, ind0, RelianceKind::kPositive));
  EXPECT_FALSE(g.HasEdge(ind0, fd0, RelianceKind::kPositive));
  EXPECT_FALSE(g.HasEdge(fd0, ind0, RelianceKind::kInterference));
  EXPECT_EQ(g.edges().size(), 4u);
}

TEST_F(ChainWithFdTest, CondensationAndFrontiers) {
  SigmaGraph g(deps_, catalog_);
  // ind1 <-> fd0 form one cyclic component (positive ind1->fd0, interference
  // fd0->ind1); ind0 sits alone above it.
  ASSERT_EQ(g.components().size(), 2u);
  const uint32_t c0 = g.ComponentOf(0);
  const uint32_t c1 = g.ComponentOf(1);
  EXPECT_EQ(g.ComponentOf(2), c1);
  EXPECT_NE(c0, c1);
  EXPECT_LT(c0, c1);  // topological order: producer first
  EXPECT_FALSE(g.components()[c0].cyclic);
  EXPECT_TRUE(g.components()[c1].cyclic);
  EXPECT_EQ(g.components()[c0].depth, 0u);
  EXPECT_EQ(g.components()[c1].depth, 1u);
  ASSERT_EQ(g.frontiers().size(), 2u);
  EXPECT_EQ(g.frontiers()[0], std::vector<uint32_t>{c0});
  EXPECT_EQ(g.frontiers()[1], std::vector<uint32_t>{c1});
  // The FD entanglement does not disturb the IND-only subgraph: still
  // acyclic, critical path = the two-IND chain.
  ASSERT_TRUE(g.IndSubgraphAcyclic());
  EXPECT_EQ(*g.IndCriticalPath(), 2u);
}

TEST_F(ChainWithFdTest, ClassifiesAsAcyclicIndAndDecides) {
  SigmaAnalysis a = AnalyzeSigma(deps_, catalog_);
  EXPECT_EQ(a.sigma_class, SigmaClass::kAcyclicInd);
  EXPECT_TRUE(a.decidable);
  EXPECT_TRUE(a.finitely_controllable);
  ASSERT_TRUE(a.graph != nullptr);
  EXPECT_EQ(a.acyclic_ind_depth, std::optional<uint32_t>(2));

  // The engine decides with semi-decision OFF — before the reliance
  // analysis this Σ fell to kGeneral and Check returned kUnimplemented.
  ContainmentEngine engine(&catalog_, &symbols_);
  ConjunctiveQuery q = *ParseQuery(catalog_, symbols_, "ans(u) :- A(u, v)");
  ConjunctiveQuery in = *ParseQuery(catalog_, symbols_, "ans(p) :- B(p, w)");
  ConjunctiveQuery out = *ParseQuery(catalog_, symbols_, "ans(p) :- A(p, p)");
  EXPECT_EQ(engine.RouteOf(in, deps_),
            std::optional<DecisionStrategy>(
                DecisionStrategy::kIterativeDeepening));

  Result<EngineVerdict> contained = engine.Check(q, in, deps_);
  ASSERT_TRUE(contained.ok()) << contained.status();
  EXPECT_EQ(contained->sigma_class, SigmaClass::kAcyclicInd);
  EXPECT_TRUE(contained->report.contained);

  Result<EngineVerdict> not_contained = engine.Check(q, out, deps_);
  ASSERT_TRUE(not_contained.ok()) << not_contained.status();
  EXPECT_FALSE(not_contained->report.contained);
  // The reported bound is the reliance critical path, not Lemma 5's
  // |Q'|·|Σ|·(W+1)^W.
  EXPECT_EQ(not_contained->report.level_bound, 2u);
}

TEST(RelianceGraphTest, SelfLoopIndIsCyclic) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  DependencySet deps = *ParseDependencies(catalog, "R[2] <= R[1]");
  SigmaGraph g(deps, catalog);
  EXPECT_TRUE(g.HasEdge(0, 0, RelianceKind::kPositive));
  EXPECT_FALSE(g.IndSubgraphAcyclic());
  ASSERT_EQ(g.components().size(), 1u);
  EXPECT_TRUE(g.components()[0].cyclic);
}

TEST(RelianceGraphTest, TwoIndCycleIsCyclic) {
  Scenario s = Fig1Scenario();  // R -> S -> R at the relation level
  SigmaGraph g(s.deps, *s.catalog);
  EXPECT_FALSE(g.IndSubgraphAcyclic());
  EXPECT_EQ(g.IndCriticalPath(), std::nullopt);
  // Section 4's Σ (self-loop IND + FD on one relation) stays kGeneral: the
  // reliance analysis must not over-claim the fragment.
  Scenario general = Section4Scenario();
  SigmaAnalysis a = AnalyzeSigma(general.deps, *general.catalog);
  EXPECT_EQ(a.sigma_class, SigmaClass::kGeneral);
  EXPECT_FALSE(a.decidable);
}

TEST(RelianceGraphTest, FdOnlyAndEmptySigma) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  SigmaGraph empty(DependencySet(), catalog);
  EXPECT_TRUE(empty.IndSubgraphAcyclic());
  EXPECT_EQ(*empty.IndCriticalPath(), 0u);
  EXPECT_TRUE(empty.edges().empty());
  EXPECT_TRUE(empty.components().empty());
  EXPECT_TRUE(empty.frontiers().empty());

  DependencySet fd = *ParseDependencies(catalog, "R: 1 -> 2");
  SigmaGraph g(fd, catalog);
  EXPECT_EQ(*g.IndCriticalPath(), 0u);
  // The FD self-loop (merges can re-enable the same FD) is the only edge.
  ASSERT_EQ(g.edges().size(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 0, RelianceKind::kInterference));
  EXPECT_TRUE(g.components()[0].cyclic);
}

// --- Agreement with the relation-level IND graph -----------------------------

class RelianceVsIndGraph : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RelianceVsIndGraph, AcyclicityAndDepthMatchMaxIndPathLength) {
  // The dependency-level reliance subgraph and the relation-level IND graph
  // must agree exactly: a relation path of L arcs is a reliance chain of L
  // INDs and vice versa.
  Rng rng(GetParam());
  RandomCatalogParams cp;
  cp.num_relations = 5;
  cp.min_arity = 2;
  cp.max_arity = 3;
  Catalog catalog = RandomCatalog(rng, cp);
  RandomIndParams ip;
  ip.count = 5;
  ip.width = 1;
  DependencySet deps = RandomIndOnlyDeps(rng, catalog, ip);
  SigmaGraph g(deps, catalog);
  std::optional<uint32_t> relation_path = deps.MaxIndPathLength(catalog);
  EXPECT_EQ(g.IndSubgraphAcyclic(), relation_path.has_value());
  if (relation_path.has_value() && !deps.inds().empty()) {
    EXPECT_EQ(*g.IndCriticalPath(), *relation_path);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelianceVsIndGraph,
                         ::testing::Range<uint64_t>(1, 26));

// --- Differential: kAcyclicInd verdict vs the semi-decision oracle -----------

class AcyclicFamilyDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AcyclicFamilyDifferential, MatchesScalarSemiDecisionOracle) {
  // Randomized acyclic FD+IND mixes: the kAcyclicInd decision (bulk core,
  // reliance bound, no semi-decision permission) must return exactly what
  // the scalar-core semi-decision oracle concludes when its chase happens
  // to saturate — which, on an acyclic Σ, it always does.
  Rng rng(GetParam());
  RandomCatalogParams cp;
  cp.num_relations = 5;
  cp.min_arity = 2;
  cp.max_arity = 3;
  Catalog catalog = RandomCatalog(rng, cp);
  // Acyclic by construction: every IND points from a lower-indexed relation
  // to a higher-indexed one, so the relation order is a topological order of
  // the IND graph and no rejection sampling is needed.
  DependencySet deps;
  for (int i = 0; i < 5; ++i) {
    InclusionDependency ind;
    ind.lhs_relation =
        static_cast<RelationId>(rng.Index(catalog.num_relations() - 1));
    ind.rhs_relation = static_cast<RelationId>(
        rng.Uniform(ind.lhs_relation + 1, catalog.num_relations() - 1));
    ind.lhs_columns = {
        static_cast<uint32_t>(rng.Index(catalog.arity(ind.lhs_relation)))};
    ind.rhs_columns = {
        static_cast<uint32_t>(rng.Index(catalog.arity(ind.rhs_relation)))};
    ASSERT_TRUE(deps.AddInd(catalog, ind).ok());
  }
  ASSERT_TRUE(deps.IndGraphAcyclic(catalog));
  // Entangle an FD on the last relation; skip the draws where the mix
  // happens to land back in a paper class.
  FunctionalDependency fd;
  fd.relation = static_cast<RelationId>(catalog.num_relations() - 1);
  fd.lhs = {0};
  fd.rhs = 1;
  ASSERT_TRUE(deps.AddFd(catalog, fd).ok());
  SigmaAnalysis a = AnalyzeSigma(deps, catalog);
  if (a.sigma_class != SigmaClass::kAcyclicInd) {
    GTEST_SKIP() << "draw fell into " << ToString(a.sigma_class);
  }

  SymbolTable symbols;
  RandomQueryParams qp;
  qp.num_conjuncts = 3;
  qp.num_vars = 5;
  qp.name_prefix = StrCat("q", GetParam(), "_");
  ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);
  qp.num_conjuncts = 2;
  qp.num_vars = 4;
  qp.name_prefix = StrCat("p", GetParam(), "_");
  ConjunctiveQuery q_prime = RandomQuery(rng, catalog, symbols, qp);

  ContainmentEngine decided(&catalog, &symbols);  // semi-decision OFF
  Result<EngineVerdict> verdict = decided.Check(q, q_prime, deps);
  ASSERT_TRUE(verdict.ok()) << verdict.status();
  EXPECT_EQ(verdict->sigma_class, SigmaClass::kAcyclicInd);

  // Independent Theorem 1 oracle, bypassing the engine's classification
  // entirely: run the scalar chase to saturation (guaranteed finite on an
  // acyclic Σ — that is the claim under test) and search the homomorphism
  // directly. This is the semi-decision procedure in its raw form, minus
  // the budget caveat the saturation guarantee removes.
  ChaseLimits scalar_limits;
  scalar_limits.core = ChaseCoreMode::kScalar;
  Result<Chase> chase =
      BuildChase(q, deps, symbols, ChaseVariant::kRequired, scalar_limits);
  ASSERT_TRUE(chase.ok()) << chase.status();
  bool reference = false;
  if (chase->is_empty_query()) {
    reference = true;  // Q unsatisfiable under Σ: contained in anything
  } else {
    ASSERT_EQ(chase->outcome(), ChaseOutcome::kSaturated);
    reference = FindHomomorphism(q_prime, chase->AliveFacts(),
                                 chase->summary())
                    .has_value();
  }
  EXPECT_EQ(verdict->report.contained, reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcyclicFamilyDifferential,
                         ::testing::Range<uint64_t>(1, 31));

// --- Pruning: unreachable INDs, byte-identical chases ------------------------

TEST(ReliancePruningTest, ReachableIndsClosure) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("A", {"x"}).ok());
  ASSERT_TRUE(catalog.AddRelation("B", {"x"}).ok());
  ASSERT_TRUE(catalog.AddRelation("C", {"x"}).ok());
  ASSERT_TRUE(catalog.AddRelation("D", {"x"}).ok());
  // ind0: A -> B, ind1: B -> C (reachable transitively), ind2: D -> C
  // (dead: D never acquires a fact).
  DependencySet deps = *ParseDependencies(
      catalog, "A[1] <= B[1]\nB[1] <= C[1]\nD[1] <= C[1]");
  SigmaGraph g(deps, catalog);
  std::vector<bool> present(catalog.num_relations(), false);
  present[0] = true;  // only A present initially
  std::vector<bool> reachable = g.ReachableInds(present);
  ASSERT_EQ(reachable.size(), 3u);
  EXPECT_TRUE(reachable[0]);
  EXPECT_TRUE(reachable[1]);  // via the closure: ind0 makes B present
  EXPECT_FALSE(reachable[2]);
}

TEST(ReliancePruningTest, PrunedBulkChaseIsByteIdenticalToScalar) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("A", {"a1", "a2"}).ok());
  ASSERT_TRUE(catalog.AddRelation("B", {"b1", "b2"}).ok());
  ASSERT_TRUE(catalog.AddRelation("D", {"d1", "d2"}).ok());
  ASSERT_TRUE(catalog.AddRelation("E", {"e1", "e2"}).ok());
  // Two INDs live (A -> B), two dead (a D <-> E cycle the query never
  // reaches) — each dead IND carries its own rhs projection, so their
  // witness-group indexes disappear along with them.
  DependencySet deps = *ParseDependencies(
      catalog, "A[1] <= B[1]\nA[2] <= B[2]\nD[1] <= E[1]\nE[1] <= D[1]");
  // Pruning must also keep an FD-bearing chase identical.
  DependencySet with_fd = deps;
  ASSERT_TRUE(
      with_fd.AddFd(catalog, FunctionalDependency{0, {0}, 1}).ok());

  for (const DependencySet* sigma : {&deps, &with_fd}) {
    SymbolTable symbols;
    ConjunctiveQuery q = *ParseQuery(
        catalog, symbols, "ans(u) :- A(u, v), A(u, w)");
    ChaseLimits scalar_limits;
    scalar_limits.core = ChaseCoreMode::kScalar;
    Result<Chase> scalar =
        BuildChase(q, *sigma, symbols, ChaseVariant::kRequired, scalar_limits);
    ASSERT_TRUE(scalar.ok()) << scalar.status();

    SymbolTable symbols_bulk;
    ConjunctiveQuery q_bulk = *ParseQuery(
        catalog, symbols_bulk, "ans(u) :- A(u, v), A(u, w)");
    ChaseLimits bulk_limits;
    bulk_limits.core = ChaseCoreMode::kBulk;
    Result<Chase> bulk = BuildChase(q_bulk, *sigma, symbols_bulk,
                                    ChaseVariant::kRequired, bulk_limits);
    ASSERT_TRUE(bulk.ok()) << bulk.status();

    // Byte-identical prefixes: same rendering, same outcome, same step
    // count — pruning removed only work that never happens in either core.
    EXPECT_EQ(scalar->ToString(), bulk->ToString());
    EXPECT_EQ(scalar->outcome(), bulk->outcome());
    EXPECT_EQ(scalar->steps(), bulk->steps());
    // And the pruning actually fired: the D/E INDs and their witness
    // group(s) were never materialized.
    EXPECT_EQ(bulk->chase_stats().inds_pruned, 2u);
    EXPECT_GE(bulk->chase_stats().witness_groups_pruned, 1u);
    EXPECT_EQ(scalar->chase_stats().inds_pruned, 0u);
  }
}

// --- Fingerprint -------------------------------------------------------------

TEST(RelianceGraphTest, FingerprintStableAndStructureSensitive) {
  // The fingerprint covers the graph structure (node counts, edges, the
  // critical path), so rebuilding from the same Σ is stable and any change
  // to the interaction structure shows up.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("A", {"x"}).ok());
  ASSERT_TRUE(catalog.AddRelation("B", {"x"}).ok());
  DependencySet one = *ParseDependencies(catalog, "A[1] <= B[1]");
  DependencySet chain = *ParseDependencies(catalog, "A[1] <= B[1]\nB[1] <= A[1]");
  EXPECT_EQ(SigmaGraph(one, catalog).Fingerprint(),
            SigmaGraph(one, catalog).Fingerprint());
  EXPECT_NE(SigmaGraph(one, catalog).Fingerprint(),
            SigmaGraph(chain, catalog).Fingerprint());
  EXPECT_NE(SigmaGraph(one, catalog).Fingerprint(),
            SigmaGraph(DependencySet(), catalog).Fingerprint());
}

}  // namespace
}  // namespace cqchase
