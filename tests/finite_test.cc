#include "finite/finite_containment.h"

#include <gtest/gtest.h>

#include "core/containment.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "gen/scenarios.h"

namespace cqchase {
namespace {

// --- The Section 4 example -------------------------------------------------

TEST(Section4Test, InfiniteContainmentFailsForwardHoldsBackward) {
  Scenario s = Section4Scenario();
  // Q1 ⊆∞ Q2 FAILS (the chase of Q1 is an infinite backward chain that
  // never closes a cycle). Decide via semi-decision is impossible; instead
  // verify via Theorem 1 on a prefix: no homomorphism exists at any level we
  // explore AND the chase never saturates. The library's CheckContainment
  // rejects this Σ shape as Unimplemented (general FD+IND); assert that.
  Result<ContainmentReport> r =
      CheckContainment(s.queries[0], s.queries[1], s.deps, *s.symbols);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
  // Q2 ⊆∞ Q1 holds trivially (drop a conjunct) — visible even to the
  // semi-decision.
  ContainmentOptions semi;
  semi.allow_semidecision = true;
  Result<ContainmentReport> back = CheckContainment(
      s.queries[1], s.queries[0], s.deps, *s.symbols, semi);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(back->contained);
}

TEST(Section4Test, NoHomomorphismIntoDeepChasePrefix) {
  // The substance of "Q1 ⊄∞ Q2": chase_Σ(Q1) is R(x,y), R(y,n1), R(n1,n2),
  // ... — a backward-infinite chain with no R(?, x) fact, so Q2 never maps.
  Scenario s = Section4Scenario();
  ChaseLimits limits;
  limits.max_level = 20;
  Chase chase(s.catalog.get(), s.symbols.get(), &s.deps,
              ChaseVariant::kRequired, limits);
  ASSERT_TRUE(chase.Init(s.queries[0]).ok());
  Result<ChaseOutcome> outcome = chase.ExpandToLevel(20);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, ChaseOutcome::kTruncated);  // infinite
  std::vector<Fact> facts = chase.AliveFacts();
  std::optional<Homomorphism> hom =
      FindHomomorphism(s.queries[1], facts, chase.summary());
  EXPECT_FALSE(hom.has_value());
}

TEST(Section4Test, FinitelyEquivalentByExhaustiveSearch) {
  // On every finite Σ-database with up to 2 constants (all 2^4 R-subsets),
  // Q1(D) == Q2(D): the FD+IND force every finite chain to close a cycle.
  Scenario s = Section4Scenario();
  ExhaustiveSearchParams params;
  params.domain_size = 2;
  params.max_candidate_tuples = 16;
  Result<std::optional<Instance>> cex = ExhaustiveFiniteCounterexample(
      s.queries[0], s.queries[1], s.deps, *s.symbols, params);
  ASSERT_TRUE(cex.ok()) << cex.status();
  EXPECT_FALSE(cex->has_value())
      << "counterexample:\n" << (*cex)->ToString(*s.symbols);
}

TEST(Section4Test, ExhaustiveSearchThreeConstants) {
  // Domain size 3: 2^9 = 512 candidate databases. Still no counterexample.
  Scenario s = Section4Scenario();
  ExhaustiveSearchParams params;
  params.domain_size = 3;
  params.max_candidate_tuples = 16;
  // 3^2 = 9 tuples < 16: fits.
  Result<std::optional<Instance>> cex = ExhaustiveFiniteCounterexample(
      s.queries[0], s.queries[1], s.deps, *s.symbols, params);
  ASSERT_TRUE(cex.ok()) << cex.status();
  EXPECT_FALSE(cex->has_value());
}

TEST(Section4Test, WithoutFdFiniteCounterexampleExists) {
  // Dropping the FD breaks the finite equivalence: a finite chain that obeys
  // only R[2] ⊆ R[1] can avoid R(?, x). E.g. {(a,b),(b,b)}: Q1 ∋ a but Q2
  // requires some R(?, a).
  Scenario s = Section4Scenario();
  DependencySet ind_only = s.deps.IndsOnly();
  ExhaustiveSearchParams params;
  params.domain_size = 2;
  params.max_candidate_tuples = 16;
  Result<std::optional<Instance>> cex = ExhaustiveFiniteCounterexample(
      s.queries[0], s.queries[1], ind_only, *s.symbols, params);
  ASSERT_TRUE(cex.ok()) << cex.status();
  EXPECT_TRUE(cex->has_value());
  EXPECT_TRUE((*cex)->Satisfies(ind_only));
  EXPECT_FALSE((*cex)->EvalContained(s.queries[0], s.queries[1]));
}

TEST(Section4Test, RandomSamplingAgreesWithExhaustive) {
  Scenario s = Section4Scenario();
  RandomSearchParams params;
  params.samples = 100;
  params.domain_size = 4;
  params.tuples_per_relation = 4;
  Result<std::optional<Instance>> cex = RandomFiniteCounterexample(
      s.queries[0], s.queries[1], s.deps, *s.symbols, params);
  ASSERT_TRUE(cex.ok()) << cex.status();
  EXPECT_FALSE(cex->has_value());
}

// --- k_Σ, diameters, cutoffs ----------------------------------------------

TEST(KSigmaTest, KeyBasedIsOne) {
  Scenario s = KeyBasedEmpDepScenario();
  EXPECT_EQ(KSigma(s.deps, *s.catalog), 1u);
}

TEST(KSigmaTest, WidthOneIndsSumRhsArities) {
  Scenario s = EmpDepScenario();  // EMP[dept] ⊆ DEP[dept], DEP arity 2
  EXPECT_EQ(KSigma(s.deps, *s.catalog), 2u);
}

TEST(KSigmaTest, UndefinedOtherwise) {
  Scenario s = Fig1Scenario();  // width-2 INDs, no FDs
  EXPECT_EQ(KSigma(s.deps, *s.catalog), std::nullopt);
  Scenario sec4 = Section4Scenario();  // FD+IND, not key-based
  EXPECT_EQ(KSigma(sec4.deps, *sec4.catalog), std::nullopt);
}

TEST(DiameterTest, SharedSymbolGraph) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("E", {"s", "d"}).ok());
  SymbolTable symbols;
  ConjunctiveQuery path = *ParseQuery(
      catalog, symbols, "ans(x) :- E(x, y), E(y, z), E(z, w)");
  // Vertices: 3 conjuncts + summary. Summary shares x with conjunct 0.
  // Distances: summary—c0—c1—c2 → diameter 3.
  EXPECT_EQ(QueryGraphDiameter(path), 3u);
  // Every conjunct of a star shares the hub symbol, so the shared-symbol
  // graph is complete: diameter 1.
  ConjunctiveQuery star =
      *ParseQuery(catalog, symbols, "ans(h) :- E(h, a), E(h, b), E(h, cc)");
  EXPECT_EQ(QueryGraphDiameter(star), 1u);
  // Two hops: summary {x} - E(x,y) - E(y,z).
  ConjunctiveQuery two_hops =
      *ParseQuery(catalog, symbols, "ans(x) :- E(x, y), E(y, z)");
  EXPECT_EQ(QueryGraphDiameter(two_hops), 2u);
}

TEST(DiameterTest, SuggestCutoffCombinesDiameterAndKSigma) {
  Scenario s = EmpDepScenario();
  // Q1: conjuncts EMP, DEP + summary; diameter 2 (DEP—EMP—summary). k=2.
  EXPECT_EQ(SuggestCutoff(s.queries[0], s.deps), (2u + 1u) * 2u);
}

// --- Theorem 3: the Q* witness ---------------------------------------------

TEST(FiniteWitnessTest, WitnessIsFiniteAndSatisfiesSigma) {
  Scenario s = EmpDepScenario();
  FiniteWitnessParams params;
  params.cutoff_level = 4;
  Result<FiniteWitness> w =
      BuildFiniteWitness(s.queries[1], s.deps, *s.symbols, params);
  ASSERT_TRUE(w.ok()) << w.status();
  EXPECT_GT(w->instance.TotalTuples(), 0u);
  EXPECT_TRUE(w->instance.Satisfies(s.deps));
}

TEST(FiniteWitnessTest, ClosesOffInfiniteWidthOneChase) {
  // Width-1 infinite chase: R[2] ⊆ R[1] alone. The witness must terminate
  // by recycling the special symbols and satisfy the IND.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  SymbolTable symbols;
  DependencySet deps = *ParseDependencies(catalog, "R[2] <= R[1]");
  ConjunctiveQuery q = *ParseQuery(catalog, symbols, "ans(x) :- R(x, y)");
  FiniteWitnessParams params;
  params.cutoff_level = 3;
  Result<FiniteWitness> w = BuildFiniteWitness(q, deps, symbols, params);
  ASSERT_TRUE(w.ok()) << w.status();
  EXPECT_TRUE(w->instance.Satisfies(deps));
  // The plain chase is infinite, the witness is small.
  EXPECT_LT(w->instance.TotalTuples(), 20u);
}

TEST(FiniteWitnessTest, KeyBasedWitness) {
  Scenario s = KeyBasedEmpDepScenario();
  Result<FiniteWitness> w =
      BuildFiniteWitness(s.queries[1], s.deps, *s.symbols,
                         FiniteWitnessParams{});
  ASSERT_TRUE(w.ok()) << w.status();
  EXPECT_TRUE(w->instance.Satisfies(s.deps));
}

TEST(FiniteWitnessTest, RejectsUncoveredShapes) {
  Scenario s = Section4Scenario();  // FD+IND, not key-based
  Result<FiniteWitness> w = BuildFiniteWitness(
      s.queries[0], s.deps, *s.symbols, FiniteWitnessParams{});
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FiniteWitnessTest, WitnessSeparatesNonContainedQueries) {
  // Width-1 Σ where ⊆∞ fails: the Q* witness is a *finite* counterexample,
  // which is exactly the content of Theorem 3.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  SymbolTable symbols;
  DependencySet deps = *ParseDependencies(catalog, "R[2] <= R[1]");
  ConjunctiveQuery q1 = *ParseQuery(catalog, symbols, "ans(x) :- R(x, y)");
  ConjunctiveQuery q2 =
      *ParseQuery(catalog, symbols, "ans(x) :- R(x, y), R(yp, x)");
  // Not contained for all databases:
  Result<ContainmentReport> inf = CheckContainment(q1, q2, deps, symbols);
  ASSERT_TRUE(inf.ok()) << inf.status();
  EXPECT_FALSE(inf->contained);
  // Theorem 3 (width-1): therefore not finitely contained either — and the
  // witness exhibits it.
  FiniteWitnessParams params;
  params.cutoff_level = *SuggestCutoff(q2, deps);
  Result<std::optional<Instance>> cex =
      FiniteCounterexampleFromWitness(q1, q2, deps, symbols, params);
  ASSERT_TRUE(cex.ok()) << cex.status();
  ASSERT_TRUE(cex->has_value());
  EXPECT_TRUE((*cex)->Satisfies(deps));
  EXPECT_FALSE((*cex)->EvalContained(q1, q2));
}

TEST(FiniteWitnessTest, WitnessDoesNotSeparateContainedQueries) {
  Scenario s = EmpDepScenario();
  FiniteWitnessParams params;
  params.cutoff_level = *SuggestCutoff(s.queries[0], s.deps);
  Result<std::optional<Instance>> cex = FiniteCounterexampleFromWitness(
      s.queries[1], s.queries[0], s.deps, *s.symbols, params);
  ASSERT_TRUE(cex.ok()) << cex.status();
  EXPECT_FALSE(cex->has_value());
}

}  // namespace
}  // namespace cqchase
