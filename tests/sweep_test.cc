// Cross-module property sweeps tying the extensions back to the core
// invariants: saturated chases satisfy their dependencies, certificates
// round-trip on every decidable class, and containment is reflexive no
// matter what Σ is in force.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/string_util.h"
#include "core/certificate.h"
#include "core/containment.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "emvd/emvd_chase.h"
#include "gen/generators.h"

namespace cqchase {
namespace {

// --- EMVD chases -------------------------------------------------------------

class EmvdSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EmvdSweep, SaturatedFullMvdChaseSatisfiesItsEmvd) {
  Rng rng(GetParam());
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b", "c"}).ok());
  SymbolTable symbols;
  std::vector<EmbeddedMvd> emvds = {*ParseEmvd(catalog, "R: a ->> b | c")};
  DependencySet no_fds;
  RandomQueryParams qp;
  qp.num_conjuncts = 2 + GetParam() % 3;
  qp.num_vars = 3 + GetParam() % 3;
  qp.name_prefix = StrCat("es", GetParam());
  ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);
  ChaseLimits limits;
  limits.max_conjuncts = 5000;
  EmvdChase chase(&catalog, &symbols, &no_fds, &emvds, limits);
  ASSERT_TRUE(chase.Init(q).ok());
  Result<ChaseOutcome> outcome = chase.Run();
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_EQ(*outcome, ChaseOutcome::kSaturated)
      << "single full MVDs always saturate";
  EXPECT_TRUE(SatisfiesEmvd(chase.AsInstance(), emvds[0]))
      << chase.ToString();
}

TEST_P(EmvdSweep, EmvdContainmentIsReflexive) {
  Rng rng(GetParam() + 500);
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b", "c"}).ok());
  SymbolTable symbols;
  std::vector<EmbeddedMvd> emvds = {*ParseEmvd(catalog, "R: a ->> b | c")};
  DependencySet no_fds;
  RandomQueryParams qp;
  qp.num_conjuncts = 2;
  qp.name_prefix = StrCat("er", GetParam());
  ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);
  Result<ContainmentReport> r =
      CheckContainmentEmvd(q, q, no_fds, emvds, symbols);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->contained);
  EXPECT_EQ(r->witness_max_level, 0u) << "identity needs no chase";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmvdSweep, ::testing::Range<uint64_t>(1, 13));

// --- Certificates across decidable classes -----------------------------------

class CertificateSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CertificateSweep, KeyBasedPlantedCasesRoundTrip) {
  Rng rng(GetParam());
  RandomCatalogParams cp;
  cp.num_relations = 3;
  cp.min_arity = 2;
  cp.max_arity = 3;
  auto catalog = RandomCatalog(rng, cp);
  RandomKeyBasedParams kp;
  kp.num_inds = 2;
  DependencySet deps = RandomKeyBasedDeps(rng, catalog, kp);
  if (!deps.IsKeyBased(catalog) || deps.inds().empty()) {
    GTEST_SKIP() << "degenerate draw";
  }
  SymbolTable symbols;
  RandomQueryParams qp;
  qp.num_conjuncts = 2;
  qp.name_prefix = StrCat("ck", GetParam());
  ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);
  Result<ConjunctiveQuery> q_prime =
      PlantedSuperQuery(rng, q, deps, symbols, /*extra_conjuncts=*/1,
                        /*chase_depth=*/2);
  ASSERT_TRUE(q_prime.ok()) << q_prime.status();
  Result<std::optional<ContainmentCertificate>> cert =
      BuildCertificate(q, *q_prime, deps, symbols);
  ASSERT_TRUE(cert.ok()) << cert.status();
  ASSERT_TRUE(cert->has_value()) << "planted containment must certify";
  Status verified =
      VerifyCertificate(**cert, q, *q_prime, deps, symbols);
  EXPECT_TRUE(verified.ok()) << verified;
}

TEST_P(CertificateSweep, FdOnlyPlantedCasesRoundTrip) {
  Rng rng(GetParam() + 900);
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  SymbolTable symbols;
  DependencySet fds = *ParseDependencies(catalog, "R: 1 -> 2");
  RandomQueryParams qp;
  qp.num_conjuncts = 3;
  qp.num_vars = 3;
  qp.name_prefix = StrCat("cf", GetParam());
  ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);
  Result<ConjunctiveQuery> q_prime =
      PlantedSuperQuery(rng, q, fds, symbols, 1, 0);
  ASSERT_TRUE(q_prime.ok());
  Result<std::optional<ContainmentCertificate>> cert =
      BuildCertificate(q, *q_prime, fds, symbols);
  ASSERT_TRUE(cert.ok()) << cert.status();
  ASSERT_TRUE(cert->has_value());
  EXPECT_TRUE((*cert)->steps.empty()) << "FD-only certificates need no INDs";
  EXPECT_TRUE(VerifyCertificate(**cert, q, *q_prime, fds, symbols).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CertificateSweep,
                         ::testing::Range<uint64_t>(1, 13));

// --- Containment reflexivity under every Σ shape -----------------------------

class ReflexivitySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReflexivitySweep, QAlwaysContainsItself) {
  Rng rng(GetParam());
  RandomCatalogParams cp;
  cp.num_relations = 3;
  cp.min_arity = 2;
  cp.max_arity = 3;
  auto catalog = RandomCatalog(rng, cp);
  DependencySet deps;
  switch (GetParam() % 3) {
    case 0:
      break;  // empty Σ
    case 1: {
      RandomIndParams ip;
      ip.count = 2;
      ip.width = 1;
      deps = RandomIndOnlyDeps(rng, catalog, ip);
      break;
    }
    default:
      deps = RandomKeyBasedDeps(rng, catalog, {});
      if (!deps.IsKeyBased(catalog)) GTEST_SKIP() << "degenerate draw";
      break;
  }
  SymbolTable symbols;
  RandomQueryParams qp;
  qp.num_conjuncts = 3;
  qp.name_prefix = StrCat("rf", GetParam());
  ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);
  Result<ContainmentReport> r = CheckContainment(q, q, deps, symbols);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->contained);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReflexivitySweep,
                         ::testing::Range<uint64_t>(1, 19));

}  // namespace
}  // namespace cqchase
