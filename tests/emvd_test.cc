#include "emvd/emvd.h"

#include <gtest/gtest.h>

#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "emvd/emvd_chase.h"

namespace cqchase {
namespace {

class EmvdTest : public ::testing::Test {
 protected:
  EmvdTest() {
    EXPECT_TRUE(catalog_.AddRelation("R", {"a", "b", "c"}).ok());
    EXPECT_TRUE(catalog_.AddRelation("W", {"p", "q", "r", "s"}).ok());
  }
  Term C(const char* name) { return symbols_.InternConstant(name); }

  Catalog catalog_;
  SymbolTable symbols_;
};

// --- Parsing & validation ----------------------------------------------------

TEST_F(EmvdTest, ParsesNamesAndPositions) {
  Result<EmbeddedMvd> byname = ParseEmvd(catalog_, "R: a ->> b | c");
  ASSERT_TRUE(byname.ok()) << byname.status();
  EXPECT_EQ(byname->x_columns, (std::vector<uint32_t>{0}));
  EXPECT_EQ(byname->y_columns, (std::vector<uint32_t>{1}));
  EXPECT_EQ(byname->z_columns, (std::vector<uint32_t>{2}));
  Result<EmbeddedMvd> bypos = ParseEmvd(catalog_, "R: 1 ->> 2 | 3");
  ASSERT_TRUE(bypos.ok());
  EXPECT_EQ(*byname, *bypos);
  EXPECT_TRUE(byname->IsFullMvd(catalog_));
  EXPECT_EQ(byname->ToString(catalog_), "R: a ->> b | c");
}

TEST_F(EmvdTest, EmbeddedLeavesColumnsUncovered) {
  Result<EmbeddedMvd> emvd = ParseEmvd(catalog_, "W: p ->> q | r");
  ASSERT_TRUE(emvd.ok());
  EXPECT_FALSE(emvd->IsFullMvd(catalog_));  // column s uncovered
}

TEST_F(EmvdTest, RejectsOverlapsAndBadColumns) {
  EXPECT_FALSE(ParseEmvd(catalog_, "R: a ->> a | c").ok());
  EXPECT_FALSE(ParseEmvd(catalog_, "R: a ->> b | nope").ok());
  EXPECT_FALSE(ParseEmvd(catalog_, "R: a ->> b").ok());  // missing | Z
  EXPECT_FALSE(ParseEmvd(catalog_, "X: a ->> b | c").ok());
}

// --- Satisfaction -------------------------------------------------------------

TEST_F(EmvdTest, SatisfactionMatchesDefinition) {
  EmbeddedMvd emvd = *ParseEmvd(catalog_, "R: a ->> b | c");
  Instance db(&catalog_);
  ASSERT_TRUE(db.AddTuple(0, {C("x"), C("b1"), C("c1")}).ok());
  ASSERT_TRUE(db.AddTuple(0, {C("x"), C("b2"), C("c2")}).ok());
  // Missing the (b1, c2) and (b2, c1) combinations.
  EXPECT_FALSE(SatisfiesEmvd(db, emvd));
  ASSERT_TRUE(db.AddTuple(0, {C("x"), C("b1"), C("c2")}).ok());
  ASSERT_TRUE(db.AddTuple(0, {C("x"), C("b2"), C("c1")}).ok());
  EXPECT_TRUE(SatisfiesEmvd(db, emvd));
}

TEST_F(EmvdTest, EmbeddedSatisfactionIgnoresUncoveredColumns) {
  EmbeddedMvd emvd = *ParseEmvd(catalog_, "W: p ->> q | r");
  Instance db(&catalog_);
  ASSERT_TRUE(db.AddTuple(1, {C("x"), C("q1"), C("r1"), C("s1")}).ok());
  ASSERT_TRUE(db.AddTuple(1, {C("x"), C("q2"), C("r2"), C("s2")}).ok());
  EXPECT_FALSE(SatisfiesEmvd(db, emvd));
  // The cross tuples may carry arbitrary s-values.
  ASSERT_TRUE(db.AddTuple(1, {C("x"), C("q1"), C("r2"), C("s9")}).ok());
  ASSERT_TRUE(db.AddTuple(1, {C("x"), C("q2"), C("r1"), C("s8")}).ok());
  EXPECT_TRUE(SatisfiesEmvd(db, emvd));
}

// --- Chase ---------------------------------------------------------------

TEST_F(EmvdTest, FullMvdChaseSaturatesWithCrossTuples) {
  std::vector<EmbeddedMvd> emvds = {*ParseEmvd(catalog_, "R: a ->> b | c")};
  DependencySet no_fds;
  ConjunctiveQuery q = *ParseQuery(
      catalog_, symbols_, "ans(x) :- R(x, b1, c1), R(x, b2, c2)");
  EmvdChase chase(&catalog_, &symbols_, &no_fds, &emvds, ChaseLimits{});
  ASSERT_TRUE(chase.Init(q).ok());
  Result<ChaseOutcome> outcome = chase.Run();
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  // A full MVD adds no fresh symbols: the chase closes after adding the two
  // cross tuples (b1,c2) and (b2,c1).
  EXPECT_EQ(*outcome, ChaseOutcome::kSaturated);
  EXPECT_EQ(chase.AliveFacts().size(), 4u);
  EXPECT_TRUE(SatisfiesEmvd(chase.AsInstance(), emvds[0]));
}

TEST_F(EmvdTest, ChaseRespectsLimits) {
  // An embedded MVD keeps inventing fresh s-column symbols; pairs of fresh
  // rows keep matching on p, so the chase does not saturate quickly — the
  // limits must surface instead of looping.
  std::vector<EmbeddedMvd> emvds = {*ParseEmvd(catalog_, "W: p ->> q | r")};
  DependencySet no_fds;
  ConjunctiveQuery q = *ParseQuery(
      catalog_, symbols_,
      "ans(x) :- W(x, q1, r1, s1), W(x, q2, r2, s2)");
  ChaseLimits limits;
  limits.max_level = 2;
  limits.max_conjuncts = 50;
  EmvdChase chase(&catalog_, &symbols_, &no_fds, &emvds, limits);
  ASSERT_TRUE(chase.Init(q).ok());
  Result<ChaseOutcome> outcome = chase.ExpandToLevel(2);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  // Complete to level 2; the witness discipline may or may not close it —
  // either way every created fact satisfies the rule's shape.
  for (const Fact& f : chase.AliveFacts()) {
    EXPECT_EQ(f.terms.size(), 4u);
  }
}

TEST_F(EmvdTest, FdAndEmvdInterleave) {
  std::vector<EmbeddedMvd> emvds = {*ParseEmvd(catalog_, "R: a ->> b | c")};
  DependencySet fds = *ParseDependencies(catalog_, "R: 1 2 -> 3");
  // After the MVD adds cross tuples, the FD {a,b} -> c merges the copies:
  // R(x,b,c) and R(x,b,c') force c = c'.
  ConjunctiveQuery q = *ParseQuery(
      catalog_, symbols_, "ans(x) :- R(x, b, c1), R(x, b, c2)");
  EmvdChase chase(&catalog_, &symbols_, &fds, &emvds, ChaseLimits{});
  ASSERT_TRUE(chase.Init(q).ok());
  Result<ChaseOutcome> outcome = chase.Run();
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(*outcome, ChaseOutcome::kSaturated);
  // The FD alone collapses the two conjuncts to one.
  EXPECT_EQ(chase.AliveFacts().size(), 1u);
}

// --- Containment (semi-decision) ---------------------------------------------

TEST_F(EmvdTest, LosslessJoinContainmentHolds) {
  // Fagin's theorem shape: under R: a ->> b | c, joining the two
  // projections recovers only real rows, i.e. Q_join ⊆ Q_id.
  std::vector<EmbeddedMvd> emvds = {*ParseEmvd(catalog_, "R: a ->> b | c")};
  DependencySet no_fds;
  ConjunctiveQuery q_join = *ParseQuery(
      catalog_, symbols_, "ans(x, y, z) :- R(x, y, c1), R(x, b1, z)");
  ConjunctiveQuery q_id =
      *ParseQuery(catalog_, symbols_, "ans(x, y, z) :- R(x, y, z)");
  Result<ContainmentReport> fwd =
      CheckContainmentEmvd(q_join, q_id, no_fds, emvds, symbols_);
  ASSERT_TRUE(fwd.ok()) << fwd.status();
  EXPECT_TRUE(fwd->contained);
  // Without the MVD, the join can invent rows: not contained. The chase
  // saturates immediately (no dependencies), so this is exact.
  Result<ContainmentReport> without =
      CheckContainmentEmvd(q_join, q_id, no_fds, {}, symbols_);
  ASSERT_TRUE(without.ok());
  EXPECT_FALSE(without->contained);
  // The reverse direction holds unconditionally.
  Result<ContainmentReport> rev =
      CheckContainmentEmvd(q_id, q_join, no_fds, {}, symbols_);
  ASSERT_TRUE(rev.ok());
  EXPECT_TRUE(rev->contained);
}

TEST_F(EmvdTest, UndecidedSurfacesAsResourceExhausted) {
  std::vector<EmbeddedMvd> emvds = {*ParseEmvd(catalog_, "W: p ->> q | r")};
  DependencySet no_fds;
  ConjunctiveQuery q = *ParseQuery(
      catalog_, symbols_,
      "ans(x) :- W(x, q1, r1, s1), W(x, q2, r2, s2)");
  // Something the chase will never produce: a W row whose q and s coincide
  // with x. (Possibly non-terminating: cap tightly.)
  ConjunctiveQuery q_prime =
      *ParseQuery(catalog_, symbols_, "ans(x) :- W(x, x, r, x)");
  ContainmentOptions options;
  options.limits.max_level = 3;
  options.limits.max_conjuncts = 200;
  Result<ContainmentReport> r =
      CheckContainmentEmvd(q, q_prime, no_fds, emvds, symbols_, options);
  if (r.ok()) {
    EXPECT_FALSE(r->contained);  // saturated without a witness
  } else {
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST_F(EmvdTest, ChaseResultSatisfiesItsEmvds) {
  std::vector<EmbeddedMvd> emvds = {*ParseEmvd(catalog_, "R: a ->> b | c")};
  DependencySet no_fds;
  ConjunctiveQuery q = *ParseQuery(
      catalog_, symbols_,
      "ans(x) :- R(x, b1, c1), R(x, b2, c2), R(x, b3, c3)");
  EmvdChase chase(&catalog_, &symbols_, &no_fds, &emvds, ChaseLimits{});
  ASSERT_TRUE(chase.Init(q).ok());
  Result<ChaseOutcome> outcome = chase.Run();
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(*outcome, ChaseOutcome::kSaturated);
  EXPECT_TRUE(SatisfiesEmvd(chase.AsInstance(), emvds[0]));
  // 3 b-values x 3 c-values.
  EXPECT_EQ(chase.AliveFacts().size(), 9u);
}

}  // namespace
}  // namespace cqchase
