// Concurrency stress for the sharded symbol arena and the engine's shared
// chase-prefix cache. Every test here is also a ThreadSanitizer target:
// ci.sh builds this binary (plus the other engine/chase tests) under
// -fsanitize=thread and fails CI on any reported race. The assertions cover
// correctness (distinct ids, verdict parity with a sequential oracle,
// single shared chase per exact key); TSan covers the memory model.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "base/string_util.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "engine/engine.h"
#include "gen/generators.h"
#include "symbols/symbol_table.h"

namespace cqchase {
namespace {

TEST(ShardConcurrencyTest, ParallelShardsMintDistinctReadableNdvs) {
  SymbolTable table;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  std::vector<std::vector<Term>> minted(kThreads);
  {
    std::vector<std::thread> pool;
    for (int w = 0; w < kThreads; ++w) {
      pool.emplace_back([&table, &minted, w] {
        SymbolTable::NdvShard shard = table.CreateShard();
        minted[w].reserve(kPerThread);
        for (int i = 0; i < kPerThread; ++i) {
          minted[w].push_back(shard.MakeChaseNdv(NdvProvenance{
              /*attribute_index=*/static_cast<uint32_t>(w),
              /*source_conjunct=*/static_cast<uint64_t>(i),
              /*ind_index=*/0, /*level=*/1}));
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  std::set<uint32_t> ids;
  for (int w = 0; w < kThreads; ++w) {
    uint32_t prev = 0;
    for (size_t i = 0; i < minted[w].size(); ++i) {
      Term t = minted[w][i];
      EXPECT_TRUE(ids.insert(t.id()).second) << "duplicate id " << t.id();
      if (i > 0) {
        EXPECT_GT(t.id(), prev) << "shard ids must increase";
      }
      prev = t.id();
    }
    // Spot-check a cross-thread read of an entry written lock-free.
    ASSERT_TRUE(table.Provenance(minted[w][7]).has_value());
    EXPECT_EQ(table.Provenance(minted[w][7])->attribute_index,
              static_cast<uint32_t>(w));
    EXPECT_EQ(table.Provenance(minted[w][7])->source_conjunct, 7u);
  }
  EXPECT_EQ(table.num_nondist_vars(),
            static_cast<size_t>(kThreads) * kPerThread);
}

TEST(ShardConcurrencyTest, ShardMintingInterleavedWithLockedInterning) {
  // Shard mints race the locked intern/fresh paths for the same id space;
  // ids must stay disjoint and the index must only see the interned names.
  SymbolTable table;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<Term>> minted(kThreads);
  std::vector<Term> interned;
  {
    std::vector<std::thread> pool;
    for (int w = 0; w < kThreads; ++w) {
      pool.emplace_back([&table, &minted, w] {
        SymbolTable::NdvShard shard = table.CreateShard();
        for (int i = 0; i < kPerThread; ++i) {
          minted[w].push_back(shard.MakeChaseNdv(NdvProvenance{}));
        }
      });
    }
    interned.reserve(kPerThread);
    for (int i = 0; i < kPerThread; ++i) {
      interned.push_back(table.MakeFreshNondistVar("it"));
    }
    for (std::thread& t : pool) t.join();
  }
  std::set<uint32_t> ids;
  for (const auto& v : minted) {
    for (Term t : v) EXPECT_TRUE(ids.insert(t.id()).second);
  }
  for (Term t : interned) {
    EXPECT_TRUE(ids.insert(t.id()).second);
    EXPECT_EQ(table.Find(TermKind::kNondistVar, table.Name(t)), t);
  }
  EXPECT_EQ(ids.size(), static_cast<size_t>(kThreads + 1) * kPerThread);
}

// A CheckMany workload mixing distinct canonical keys, exact repeats (shared
// verdict keys), and one fixed Q probed against many Q' (shared chase key).
// unique_ptrs keep the catalog / symbol-table addresses stable across moves
// of the workload itself — the queries hold pointers into them.
struct StressWorkload {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<SymbolTable> symbols;
  DependencySet deps;
  std::vector<ConjunctiveQuery> queries;  // stable storage for task pointers
  std::vector<ContainmentTask> tasks;
};

StressWorkload BuildStressWorkload() {
  StressWorkload w;
  Rng rng(33);
  RandomCatalogParams cp;
  cp.num_relations = 3;
  cp.min_arity = 2;
  cp.max_arity = 3;
  w.catalog = std::make_unique<Catalog>(RandomCatalog(rng, cp));
  w.symbols = std::make_unique<SymbolTable>();
  RandomIndParams ip;
  ip.count = 4;
  ip.width = 1;
  w.deps = RandomIndOnlyDeps(rng, *w.catalog, ip);

  // Distinct pairs.
  w.queries.reserve(64);
  for (int i = 0; i < 10; ++i) {
    RandomQueryParams qp;
    qp.num_conjuncts = 4;
    qp.name_prefix = StrCat("dl", i);
    w.queries.push_back(RandomQuery(rng, *w.catalog, *w.symbols, qp));
    qp.num_conjuncts = 2;
    qp.name_prefix = StrCat("dr", i);
    w.queries.push_back(RandomQuery(rng, *w.catalog, *w.symbols, qp));
  }
  // One fixed Q against several Q' (same exact chase key, distinct verdicts).
  RandomQueryParams fixed;
  fixed.num_conjuncts = 4;
  fixed.name_prefix = "fx";
  w.queries.push_back(RandomQuery(rng, *w.catalog, *w.symbols, fixed));
  const size_t fixed_idx = w.queries.size() - 1;
  for (int i = 0; i < 6; ++i) {
    RandomQueryParams qp;
    qp.num_conjuncts = 2;
    qp.name_prefix = StrCat("fr", i);
    w.queries.push_back(RandomQuery(rng, *w.catalog, *w.symbols, qp));
  }

  for (int i = 0; i < 10; ++i) {
    w.tasks.push_back(
        ContainmentTask{&w.queries[2 * i], &w.queries[2 * i + 1], &w.deps});
  }
  for (int i = 0; i < 6; ++i) {
    w.tasks.push_back(ContainmentTask{&w.queries[fixed_idx],
                                      &w.queries[fixed_idx + 1 + i], &w.deps});
  }
  // Exact repeats of everything so far: same pointers, same canonical keys.
  const size_t unique_tasks = w.tasks.size();
  for (size_t i = 0; i < unique_tasks; ++i) w.tasks.push_back(w.tasks[i]);
  return w;
}

TEST(CheckManyConcurrencyTest, EightWorkerFanOutMatchesSequentialOracle) {
  StressWorkload w = BuildStressWorkload();

  EngineConfig oracle_config;
  oracle_config.enable_cache = false;
  ContainmentEngine oracle(w.catalog.get(), w.symbols.get(), oracle_config);
  std::vector<Result<EngineVerdict>> expected = oracle.CheckMany(w.tasks);

  EngineConfig threaded_config;
  threaded_config.num_threads = 8;
  // A tiny chase cache forces eviction while entries are in use; the
  // reference-counted entries must keep in-flight chases alive.
  threaded_config.chase_cache_capacity = 2;
  ContainmentEngine threaded(w.catalog.get(), w.symbols.get(), threaded_config);

  // Two passes through the same engine: cold caches, then warm.
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<Result<EngineVerdict>> got = threaded.CheckMany(w.tasks);
    ASSERT_EQ(expected.size(), got.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(expected[i].ok(), got[i].ok())
          << "pass " << pass << " task " << i << ": "
          << (expected[i].ok() ? got[i].status().ToString()
                               : expected[i].status().ToString());
      if (!expected[i].ok()) continue;
      EXPECT_EQ(expected[i]->report.contained, got[i]->report.contained)
          << "pass " << pass << " task " << i;
    }
  }
}

TEST(CheckManyConcurrencyTest, ConcurrentAskersOfOneExactKeyShareOneChase) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  ASSERT_TRUE(catalog.AddRelation("S", {"x", "y"}).ok());
  SymbolTable symbols;
  DependencySet deps = *ParseDependencies(catalog, "R[2] <= S[1]\nS[2] <= R[1]");
  Result<ConjunctiveQuery> q =
      ParseQuery(catalog, symbols, "ans(u) :- R(u, v), S(v, w)");
  ASSERT_TRUE(q.ok());

  // Distinct Q' per task => distinct verdict keys, but one exact chase key:
  // all 16 workers must extend the single shared prefix, not re-chase.
  std::vector<ConjunctiveQuery> rhs;
  for (int i = 0; i < 16; ++i) {
    Result<ConjunctiveQuery> qp = ParseQuery(
        catalog, symbols,
        StrCat("ans(p", i, ") :- R(p", i, ", q", i, "), S(q", i, ", 'z", i,
               "')"));
    ASSERT_TRUE(qp.ok());
    rhs.push_back(*std::move(qp));
  }
  std::vector<ContainmentTask> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back(ContainmentTask{&*q, &rhs[i], &deps});
  }

  EngineConfig config;
  config.num_threads = 8;
  config.route_streaming_single_conjunct = false;
  ContainmentEngine engine(&catalog, &symbols, config);
  std::vector<Result<EngineVerdict>> results = engine.CheckMany(tasks);
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << "task " << i << ": "
                                 << results[i].status().ToString();
  }
  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.chases_built, 1u);
  EXPECT_EQ(stats.chase_prefix_reuses, 15u);
}

}  // namespace
}  // namespace cqchase
