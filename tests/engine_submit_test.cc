// The async request/future engine API: Submit/EngineFuture semantics,
// request-owned input lifetimes, per-request deadlines on a deliberately
// divergent semi-decision (must resolve kDeadlineExceeded, not hang),
// cooperative cancellation (must release the shared chase-prefix refcount
// and entry lock), certificate-carrying outcomes extracted from the
// decision's own chase (chases_built advances by at most one per request),
// and the CheckMany/Certify compatibility shims. Runs under TSan in CI.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/certificate.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "engine/engine.h"

namespace cqchase {
namespace {

using std::chrono::milliseconds;

// --- IND-only reporting-chain fixture (certifiable, decidable) ---------------

class SubmitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddRelation("EMP", {"eno", "mgr"}).ok());
    ASSERT_TRUE(catalog_.AddRelation("MGR", {"mno", "dir"}).ok());
    ASSERT_TRUE(catalog_.AddRelation("DIR", {"dno"}).ok());
    deps_ = *ParseDependencies(catalog_,
                               "EMP[mgr] <= MGR[mno]\n"
                               "MGR[dir] <= DIR[dno]");
    q_ = *ParseQuery(catalog_, symbols_, "ans(e) :- EMP(e, m)");
    q_prime_ = *ParseQuery(catalog_, symbols_,
                           "ans(e) :- EMP(e, m), MGR(m, d), DIR(d)");
    not_contained_ = *ParseQuery(catalog_, symbols_,
                                 "ans(e) :- EMP(e, m), EMP(m, e)");
  }

  Catalog catalog_;
  SymbolTable symbols_;
  DependencySet deps_;
  ConjunctiveQuery q_{nullptr, nullptr};
  ConjunctiveQuery q_prime_{nullptr, nullptr};
  ConjunctiveQuery not_contained_{nullptr, nullptr};
};

TEST_F(SubmitTest, SubmitMatchesSynchronousCheck) {
  ContainmentEngine engine(&catalog_, &symbols_);
  Result<EngineVerdict> sync = engine.Check(q_, q_prime_, deps_);
  ASSERT_TRUE(sync.ok());

  EngineFuture<EngineOutcome> future =
      engine.Submit(ContainmentRequest::Borrow(q_, q_prime_, deps_));
  ASSERT_TRUE(future.valid());
  Result<EngineOutcome> outcome = future.Get();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->verdict.report.contained, sync->report.contained);
  EXPECT_TRUE(outcome->verdict.report.contained);
  EXPECT_FALSE(outcome->certificate.has_value());  // not requested
  EXPECT_EQ(engine.stats().submits, 1u);
}

TEST_F(SubmitTest, FutureContractsHold) {
  ContainmentEngine engine(&catalog_, &symbols_);
  EngineFuture<EngineOutcome> invalid;
  EXPECT_FALSE(invalid.valid());
  Result<EngineOutcome> from_invalid = invalid.Get();
  EXPECT_EQ(from_invalid.status().code(), StatusCode::kFailedPrecondition);

  EngineFuture<EngineOutcome> future =
      engine.Submit(ContainmentRequest::Borrow(q_, q_prime_, deps_));
  EXPECT_TRUE(future.WaitFor(milliseconds(10000)));
  EXPECT_TRUE(future.done());
  ASSERT_TRUE(future.Get().ok());
  // Second Get on the same (consumed) state: an error, not a hang.
  Result<EngineOutcome> again = future.Get();
  EXPECT_EQ(again.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SubmitTest, NullRequestResolvesInvalidArgument) {
  ContainmentEngine engine(&catalog_, &symbols_);
  ContainmentRequest empty;
  Result<EngineOutcome> r = engine.Submit(std::move(empty)).Get();
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SubmitTest, OwnedRequestSurvivesCallerScope) {
  ContainmentEngine engine(&catalog_, &symbols_);
  EngineFuture<EngineOutcome> future;
  {
    // Locals die before the future is waited on; the request owns copies,
    // so nothing dangles (the old ContainmentTask trap).
    ConjunctiveQuery q = *ParseQuery(catalog_, symbols_, "ans(e) :- EMP(e, m)");
    ConjunctiveQuery qp = *ParseQuery(
        catalog_, symbols_, "ans(e) :- EMP(e, m), MGR(m, d), DIR(d)");
    DependencySet deps = deps_;
    future = engine.Submit(ContainmentRequest::Own(std::move(q), std::move(qp),
                                                   std::move(deps)));
  }
  Result<EngineOutcome> outcome = future.Get();
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->verdict.report.contained);
}

TEST_F(SubmitTest, SubmitAllMatchesSequentialVerdicts) {
  EngineConfig config;
  config.executor_threads = 4;
  ContainmentEngine engine(&catalog_, &symbols_, config);
  ContainmentEngine oracle(&catalog_, &symbols_);

  std::vector<ContainmentRequest> requests;
  for (int i = 0; i < 16; ++i) {
    const ConjunctiveQuery& rhs = (i % 2 == 0) ? q_prime_ : not_contained_;
    RequestOptions options;
    options.priority = (i % 3 == 0) ? 1 : 0;  // mix queue-jumpers in
    requests.push_back(ContainmentRequest::Borrow(q_, rhs, deps_, options));
  }
  std::vector<EngineFuture<EngineOutcome>> futures =
      engine.SubmitAll(std::move(requests));
  ASSERT_EQ(futures.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    const ConjunctiveQuery& rhs = (i % 2 == 0) ? q_prime_ : not_contained_;
    Result<EngineVerdict> expected = oracle.Check(q_, rhs, deps_);
    Result<EngineOutcome> got = futures[i].Get();
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->verdict.report.contained, expected->report.contained);
  }
  // The executed counter is bumped after a task's future resolves, so poll
  // briefly for the tail instead of asserting an instant snapshot.
  const auto deadline = std::chrono::steady_clock::now() + milliseconds(5000);
  while (engine.stats().executor_tasks < 16u &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(engine.stats().executor_tasks, 16u);
  EXPECT_EQ(engine.stats().executor_workers, 4u);
}

// --- Certificates from the decision's own chase ------------------------------

TEST_F(SubmitTest, WantCertificateReturnsVerifiedProofWithoutRechase) {
  ContainmentEngine engine(&catalog_, &symbols_);
  RequestOptions options;
  options.want_certificate = true;

  const uint64_t chases_before = engine.stats().chases_built;
  Result<EngineOutcome> outcome =
      engine.Submit(ContainmentRequest::Borrow(q_, q_prime_, deps_, options))
          .Get();
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->verdict.report.contained);
  ASSERT_TRUE(outcome->certificate.has_value());
  // The acceptance bar: one Submit yields verdict + proof from at most ONE
  // new chase (the same chase decided and certified).
  EXPECT_LE(engine.stats().chases_built - chases_before, 1u);
  EXPECT_EQ(engine.stats().certificates_built, 1u);
  EXPECT_TRUE(VerifyCertificate(*outcome->certificate, q_, q_prime_, deps_,
                                symbols_)
                  .ok());

  // A re-ask resumes the cached chase prefix: zero additional chases, and
  // the certificate still verifies against the (possibly deeper) prefix.
  const uint64_t chases_mid = engine.stats().chases_built;
  Result<EngineOutcome> again =
      engine.Submit(ContainmentRequest::Borrow(q_, q_prime_, deps_, options))
          .Get();
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(again->certificate.has_value());
  EXPECT_EQ(engine.stats().chases_built, chases_mid);
  EXPECT_TRUE(VerifyCertificate(*again->certificate, q_, q_prime_, deps_,
                                symbols_)
                  .ok());
}

TEST_F(SubmitTest, WantCertificateNotContainedCarriesNone) {
  ContainmentEngine engine(&catalog_, &symbols_);
  RequestOptions options;
  options.want_certificate = true;
  Result<EngineOutcome> outcome =
      engine
          .Submit(ContainmentRequest::Borrow(q_, not_contained_, deps_,
                                             options))
          .Get();
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->verdict.report.contained);
  EXPECT_FALSE(outcome->certificate.has_value());
}

TEST_F(SubmitTest, CertifyShimMatchesLegacyBuildCertificate) {
  ContainmentEngine engine(&catalog_, &symbols_);
  Result<std::optional<ContainmentCertificate>> via_engine =
      engine.Certify(q_, q_prime_, deps_);
  Result<std::optional<ContainmentCertificate>> legacy =
      BuildCertificate(q_, q_prime_, deps_, symbols_);
  ASSERT_TRUE(via_engine.ok());
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(via_engine->has_value());
  ASSERT_TRUE(legacy->has_value());
  // The two proofs come from distinct chases whose fresh NDVs carry
  // different ids, so compare shape, not terms: same roots (Q's own
  // conjuncts) and the same derivation length.
  EXPECT_EQ((*via_engine)->roots, (*legacy)->roots);
  EXPECT_EQ((*via_engine)->steps.size(), (*legacy)->steps.size());
  EXPECT_TRUE(
      VerifyCertificate(**via_engine, q_, q_prime_, deps_, symbols_).ok());

  Result<std::optional<ContainmentCertificate>> none =
      engine.Certify(q_, not_contained_, deps_);
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());
}

// --- Divergent general FD+IND semi-decision: deadlines + cancellation --------

// R(a, b, c) with FD a -> b and IND R[c] <= R[a]: the FD does not cover c,
// so Σ is general (kGeneral); the IND spins an infinite chain
// R(x,y,z) -> R(z,·,·) -> ..., so the semi-decision on a never-mapping Q'
// diverges until a limit. Limits are set astronomically high: only the
// deadline / cancellation can stop these requests in test time.
class DivergentSubmitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddRelation("R", {"a", "b", "c"}).ok());
    deps_ = *ParseDependencies(catalog_,
                               "R: 1 -> 2\n"
                               "R[3] <= R[1]");
    q_ = *ParseQuery(catalog_, symbols_, "ans(x) :- R(x, y, z)");
    q_prime_ = *ParseQuery(catalog_, symbols_, "ans(u) :- R(u, u, u)");

    config_.containment.allow_semidecision = true;
    config_.containment.limits.max_level = 50'000'000;
    config_.containment.limits.max_conjuncts = 500'000'000;
    config_.containment.limits.max_steps = 1'000'000'000;
  }

  ContainmentRequest Request(RequestOptions options = {}) const {
    return ContainmentRequest::Borrow(q_, q_prime_, deps_, options);
  }

  Catalog catalog_;
  SymbolTable symbols_;
  DependencySet deps_;
  EngineConfig config_;
  ConjunctiveQuery q_{nullptr, nullptr};
  ConjunctiveQuery q_prime_{nullptr, nullptr};
};

TEST_F(DivergentSubmitTest, SigmaIsGeneral) {
  ContainmentEngine engine(&catalog_, &symbols_, config_);
  EXPECT_EQ(engine.Analyze(deps_).sigma_class, SigmaClass::kGeneral);
}

TEST_F(DivergentSubmitTest, DeadlineExceededInsteadOfHanging) {
  ContainmentEngine engine(&catalog_, &symbols_, config_);
  RequestOptions options;
  options.timeout = milliseconds(100);
  Result<EngineOutcome> outcome = engine.Submit(Request(options)).Get();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine.stats().deadline_expirations, 1u);
  EXPECT_EQ(engine.stats().cancellations, 0u);
}

TEST_F(DivergentSubmitTest, AbsoluteDeadlineFormWorksToo) {
  ContainmentEngine engine(&catalog_, &symbols_, config_);
  RequestOptions options;
  options.deadline = std::chrono::steady_clock::now() + milliseconds(100);
  Result<EngineOutcome> outcome = engine.Submit(Request(options)).Get();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(DivergentSubmitTest, CancelReleasesChasePrefixAndEntryLock) {
  ContainmentEngine engine(&catalog_, &symbols_, config_);
  EngineFuture<EngineOutcome> future = engine.Submit(Request());
  // Let the request actually start chasing before cancelling it.
  const auto spin_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (engine.stats().chases_built == 0 &&
         std::chrono::steady_clock::now() < spin_deadline) {
    std::this_thread::yield();
  }
  ASSERT_GT(engine.stats().chases_built, 0u);
  future.Cancel();
  Result<EngineOutcome> outcome = future.Get();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(engine.stats().cancellations, 1u);

  // The cancelled task must have dropped its shared-chase reference AND the
  // entry's extension lock: a fresh asker of the same exact key must be able
  // to check the entry out (it resumes the prefix, then trips its own
  // deadline — promptly, which it could not do against a leaked lock).
  EXPECT_EQ(engine.cache_sizes().chase_entries, 1u);
  RequestOptions options;
  options.timeout = milliseconds(100);
  Result<EngineOutcome> second = engine.Submit(Request(options)).Get();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GT(engine.stats().chase_prefix_reuses, 0u);

  // The cache's reference is the last one standing; clearing it destroys
  // the chase (returning its NDV shard) without touching live askers.
  engine.ClearCaches();
  EXPECT_EQ(engine.cache_sizes().chase_entries, 0u);
}

TEST_F(DivergentSubmitTest, DestructionCancelsAbandonedRequests) {
  // A divergent no-deadline request whose future is dropped: without the
  // destructor's cancel-all over the in-flight registry, the drain would
  // wait on it forever and this test would time out.
  {
    ContainmentEngine engine(&catalog_, &symbols_, config_);
    {
      EngineFuture<EngineOutcome> dropped = engine.Submit(Request());
      const auto spin_deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (engine.stats().chases_built == 0 &&
             std::chrono::steady_clock::now() < spin_deadline) {
        std::this_thread::yield();
      }
      ASSERT_GT(engine.stats().chases_built, 0u);
    }
    // Future gone; only the engine can stop the request now.
  }
  SUCCEED();  // reaching here at all is the assertion
}

TEST_F(DivergentSubmitTest, PerRequestSemiDecisionOverride) {
  // Engine default: semi-decision OFF — the general mix is kUnimplemented.
  config_.containment.allow_semidecision = false;
  ContainmentEngine engine(&catalog_, &symbols_, config_);
  Result<EngineVerdict> sync = engine.Check(q_, q_prime_, deps_);
  EXPECT_EQ(sync.status().code(), StatusCode::kUnimplemented);

  // Per-request override turns it on; Q ⊆ Q finds its witness at level 0,
  // so the semi-decision returns immediately despite the divergent Σ.
  RequestOptions options;
  options.allow_semidecision = true;
  Result<EngineOutcome> outcome =
      engine.Submit(ContainmentRequest::Borrow(q_, q_, deps_, options)).Get();
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->verdict.report.contained);
  EXPECT_EQ(outcome->verdict.strategy, DecisionStrategy::kSemiDecision);
}

// --- Legacy batch shim -------------------------------------------------------

TEST_F(SubmitTest, CheckManyShimMatchesSequentialAndFlagsNulls) {
  EngineConfig threaded_config;
  threaded_config.num_threads = 4;
  ContainmentEngine threaded(&catalog_, &symbols_, threaded_config);
  ContainmentEngine sequential(&catalog_, &symbols_);

  std::vector<ContainmentTask> tasks;
  for (int i = 0; i < 12; ++i) {
    tasks.push_back(ContainmentTask{
        &q_, (i % 2 == 0) ? &q_prime_ : &not_contained_, &deps_});
  }
  tasks.push_back(ContainmentTask{&q_, nullptr, &deps_});

  std::vector<Result<EngineVerdict>> expected = sequential.CheckMany(tasks);
  std::vector<Result<EngineVerdict>> got = threaded.CheckMany(tasks);
  ASSERT_EQ(expected.size(), got.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i].ok(), got[i].ok()) << "task " << i;
    if (expected[i].ok()) {
      EXPECT_EQ(expected[i]->report.contained, got[i]->report.contained);
    } else {
      EXPECT_EQ(expected[i].status().code(), got[i].status().code());
    }
  }
  // The threaded shim rode the executor; the sequential fast path did not.
  EXPECT_GT(threaded.stats().submits, 0u);
  EXPECT_EQ(sequential.stats().submits, 0u);
  EXPECT_EQ(sequential.stats().executor_tasks, 0u);
}

}  // namespace
}  // namespace cqchase
