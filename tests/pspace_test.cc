#include "core/pspace.h"

#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/string_util.h"
#include "core/containment.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "gen/generators.h"
#include "gen/scenarios.h"

namespace cqchase {
namespace {

// --- StreamingVerifyCertificate --------------------------------------------

TEST(StreamingVerifyTest, AcceptsKeyBasedCertificate) {
  Scenario s = KeyBasedEmpDepScenario();
  Result<std::optional<ContainmentCertificate>> cert =
      BuildCertificate(s.queries[1], s.queries[0], s.deps, *s.symbols);
  ASSERT_TRUE(cert.ok() && cert->has_value());
  Result<StreamingVerifyReport> report = StreamingVerifyCertificate(
      **cert, s.queries[1], s.queries[0], s.deps, *s.symbols, /*window=*/2);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->valid) << report->rejection;
}

TEST(StreamingVerifyTest, RejectsTamperedStep) {
  Scenario s = KeyBasedEmpDepScenario();
  Result<std::optional<ContainmentCertificate>> cert =
      BuildCertificate(s.queries[1], s.queries[0], s.deps, *s.symbols);
  ASSERT_TRUE(cert.ok() && cert->has_value());
  ContainmentCertificate bad = **cert;
  ASSERT_FALSE(bad.steps.empty());
  bad.steps[0].fact.terms[0] = bad.roots[0].terms[0];
  Result<StreamingVerifyReport> report = StreamingVerifyCertificate(
      bad, s.queries[1], s.queries[0], s.deps, *s.symbols);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->valid);
  EXPECT_FALSE(report->rejection.empty());
}

TEST(StreamingVerifyTest, WindowOfOneIsRejected) {
  Scenario s = KeyBasedEmpDepScenario();
  Result<std::optional<ContainmentCertificate>> cert =
      BuildCertificate(s.queries[1], s.queries[0], s.deps, *s.symbols);
  ASSERT_TRUE(cert.ok() && cert->has_value());
  Result<StreamingVerifyReport> report = StreamingVerifyCertificate(
      **cert, s.queries[1], s.queries[0], s.deps, *s.symbols, /*window=*/1);
  EXPECT_FALSE(report.ok());
}

TEST(StreamingVerifyTest, AgreesWithFullVerifierOnPlantedCases) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Scenario s = Fig1Scenario();
    Rng rng(seed);
    Result<ConjunctiveQuery> q_prime =
        PlantedSuperQuery(rng, s.queries[0], s.deps, *s.symbols, 1, 2);
    ASSERT_TRUE(q_prime.ok());
    Result<std::optional<ContainmentCertificate>> cert =
        BuildCertificate(s.queries[0], *q_prime, s.deps, *s.symbols);
    ASSERT_TRUE(cert.ok() && cert->has_value());
    Status full =
        VerifyCertificate(**cert, s.queries[0], *q_prime, s.deps, *s.symbols);
    // Width-2 INDs here: symbols can propagate along chains, so give the
    // stream a window generous enough for this Σ.
    Result<StreamingVerifyReport> stream = StreamingVerifyCertificate(
        **cert, s.queries[0], *q_prime, s.deps, *s.symbols, /*window=*/8);
    ASSERT_TRUE(stream.ok()) << stream.status();
    EXPECT_EQ(full.ok(), stream->valid) << stream->rejection;
  }
}

TEST(StreamingVerifyTest, PeakWindowIsSmallerThanTotalOnDeepChains) {
  // Σ = {R[2] ⊆ R[1]} chases a single R-conjunct into a long chain; a
  // planted Q' deep in the chain forces a long derivation whose windowed
  // verification should retain far fewer symbols than the whole thing.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  SymbolTable symbols;
  DependencySet deps = *ParseDependencies(catalog, "R[2] <= R[1]");
  ConjunctiveQuery q = *ParseQuery(catalog, symbols, "ans(x) :- R(x, y)");
  // Q' is an 8-hop chain hanging off the summary DV: every homomorphism
  // into the chase must walk 8 levels deep, so the certificate carries a
  // long derivation.
  ConjunctiveQuery q_prime = *ParseQuery(
      catalog, symbols,
      "ans(x) :- R(x, a1), R(a1, a2), R(a2, a3), R(a3, a4), R(a4, a5), "
      "R(a5, a6), R(a6, a7), R(a7, a8)");
  Result<std::optional<ContainmentCertificate>> cert =
      BuildCertificate(q, q_prime, deps, symbols);
  ASSERT_TRUE(cert.ok()) << cert.status();
  ASSERT_TRUE(cert->has_value());
  ASSERT_GE((*cert)->steps.size(), 6u);
  const ContainmentCertificate& chosen = **cert;
  Result<StreamingVerifyReport> report = StreamingVerifyCertificate(
      chosen, q, q_prime, deps, symbols, /*window=*/3);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->valid) << report->rejection;
  EXPECT_LT(report->peak_window_symbols, report->total_symbols);
}

// --- StreamingSingleConjunctContainment -------------------------------------

TEST(StreamingContainmentTest, IntroExampleSingleConjunctDirections) {
  Scenario s = EmpDepScenario();
  // Q1 ⊆ Q2 (drop DEP): Q2 has one conjunct — streamable.
  Result<StreamingContainmentReport> r = StreamingSingleConjunctContainment(
      s.queries[0], s.queries[1], s.deps, *s.symbols);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->contained);
  EXPECT_EQ(r->decided_at_level, 0u);
}

TEST(StreamingContainmentTest, RequiresSingleConjunctAndIndOnly) {
  Scenario s = EmpDepScenario();
  // Q2 ⊆ Q1: Q1 has two conjuncts — rejected.
  Result<StreamingContainmentReport> r = StreamingSingleConjunctContainment(
      s.queries[1], s.queries[0], s.deps, *s.symbols);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);

  Scenario sec4 = Section4Scenario();  // has an FD
  Result<StreamingContainmentReport> r2 = StreamingSingleConjunctContainment(
      sec4.queries[0], sec4.queries[0], sec4.deps, *sec4.symbols);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kFailedPrecondition);
}

TEST(StreamingContainmentTest, FindsDeepWitnessAcrossRelations) {
  // R[1] ⊆ S[1]: any R row implies an S row with the same first column.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  ASSERT_TRUE(catalog.AddRelation("S", {"a", "b"}).ok());
  SymbolTable symbols;
  DependencySet deps = *ParseDependencies(catalog, "R[1] <= S[1]");
  ConjunctiveQuery q = *ParseQuery(catalog, symbols, "ans(x) :- R(x, y)");
  ConjunctiveQuery q_prime =
      *ParseQuery(catalog, symbols, "ans(x) :- S(x, z)");
  Result<StreamingContainmentReport> r =
      StreamingSingleConjunctContainment(q, q_prime, deps, symbols);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->contained);
  EXPECT_EQ(r->decided_at_level, 1u);
}

TEST(StreamingContainmentTest, NegativeIsCertifiedByTheLevelBound) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  ASSERT_TRUE(catalog.AddRelation("S", {"a", "b"}).ok());
  SymbolTable symbols;
  // The IND copies column 1, but Q' wants x in S's *second* column.
  DependencySet deps = *ParseDependencies(catalog, "R[1] <= S[1]");
  ConjunctiveQuery q = *ParseQuery(catalog, symbols, "ans(x) :- R(x, y)");
  ConjunctiveQuery q_prime =
      *ParseQuery(catalog, symbols, "ans(x) :- S(z, x)");
  Result<StreamingContainmentReport> r =
      StreamingSingleConjunctContainment(q, q_prime, deps, symbols);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->contained);
}

class StreamingAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamingAgreement, MatchesGeneralCheckerOnRandomSingleConjunctCases) {
  Rng rng(GetParam());
  RandomCatalogParams cp;
  cp.num_relations = 3;
  cp.min_arity = 2;
  cp.max_arity = 3;
  Catalog catalog = RandomCatalog(rng, cp);
  RandomIndParams ip;
  ip.count = 2;
  ip.width = 1;
  DependencySet deps = RandomIndOnlyDeps(rng, catalog, ip);
  SymbolTable symbols;
  RandomQueryParams qp;
  qp.num_conjuncts = 2;
  qp.name_prefix = StrCat("sa", GetParam());
  ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);
  qp.num_conjuncts = 1;
  qp.name_prefix = StrCat("sb", GetParam());
  ConjunctiveQuery q_prime = RandomQuery(rng, catalog, symbols, qp);
  if (q_prime.size() != 1) GTEST_SKIP() << "safety patching grew Q'";

  Result<StreamingContainmentReport> stream =
      StreamingSingleConjunctContainment(q, q_prime, deps, symbols);
  Result<ContainmentReport> general =
      CheckContainment(q, q_prime, deps, symbols);
  ASSERT_TRUE(stream.ok()) << stream.status();
  ASSERT_TRUE(general.ok()) << general.status();
  EXPECT_EQ(stream->contained, general->contained);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingAgreement,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace cqchase
