#include "core/certificate.h"

#include <gtest/gtest.h>

#include "base/rng.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "gen/generators.h"
#include "gen/scenarios.h"

namespace cqchase {
namespace {

// Builds and fully verifies a certificate, returning it for tamper tests.
ContainmentCertificate BuildVerified(const ConjunctiveQuery& q,
                                     const ConjunctiveQuery& q_prime,
                                     const DependencySet& deps,
                                     SymbolTable& symbols) {
  Result<std::optional<ContainmentCertificate>> cert =
      BuildCertificate(q, q_prime, deps, symbols);
  EXPECT_TRUE(cert.ok()) << cert.status();
  EXPECT_TRUE(cert->has_value());
  Status verified = VerifyCertificate(**cert, q, q_prime, deps, symbols);
  EXPECT_TRUE(verified.ok()) << verified;
  return **cert;
}

TEST(CertificateTest, IntroExampleProducesVerifiableCertificate) {
  Scenario s = EmpDepScenario();
  // Q2 ⊆ Q1 needs the IND: the certificate must contain one derivation step
  // (the DEP conjunct the chase adds).
  ContainmentCertificate cert =
      BuildVerified(s.queries[1], s.queries[0], s.deps, *s.symbols);
  EXPECT_EQ(cert.roots.size(), 1u);
  EXPECT_EQ(cert.steps.size(), 1u);
  EXPECT_FALSE(cert.q_is_empty);
}

TEST(CertificateTest, NoDependencyDirectionNeedsNoSteps) {
  Scenario s = EmpDepScenario();
  DependencySet empty;
  // Q1 ⊆ Q2 holds without dependencies: certificate is pure homomorphism.
  ContainmentCertificate cert =
      BuildVerified(s.queries[0], s.queries[1], empty, *s.symbols);
  EXPECT_TRUE(cert.steps.empty());
}

TEST(CertificateTest, NonContainmentYieldsNoCertificate) {
  Scenario s = EmpDepScenario();
  DependencySet empty;
  // Q2 ⊆ Q1 fails without the IND.
  Result<std::optional<ContainmentCertificate>> cert =
      BuildCertificate(s.queries[1], s.queries[0], empty, *s.symbols);
  ASSERT_TRUE(cert.ok());
  EXPECT_FALSE(cert->has_value());
}

TEST(CertificateTest, KeyBasedScenarioCertifies) {
  Scenario s = KeyBasedEmpDepScenario();
  ContainmentCertificate cert =
      BuildVerified(s.queries[1], s.queries[0], s.deps, *s.symbols);
  EXPECT_GE(cert.steps.size(), 1u);
}

TEST(CertificateTest, EmptyQueryCertificate) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  SymbolTable symbols;
  DependencySet fd = *ParseDependencies(catalog, "R: 1 -> 2");
  ConjunctiveQuery clash =
      *ParseQuery(catalog, symbols, "ans(x) :- R(x, '1'), R(x, '2')");
  ConjunctiveQuery other = *ParseQuery(catalog, symbols, "ans(u) :- R(u, u)");
  Result<std::optional<ContainmentCertificate>> cert =
      BuildCertificate(clash, other, fd, symbols);
  ASSERT_TRUE(cert.ok()) << cert.status();
  ASSERT_TRUE(cert->has_value());
  EXPECT_TRUE((*cert)->q_is_empty);
  EXPECT_TRUE(VerifyCertificate(**cert, clash, other, fd, symbols).ok());
}

TEST(CertificateTest, GeneralMixedSetsAreRejected) {
  Scenario s = Section4Scenario();  // FD + IND, not key-based
  Result<std::optional<ContainmentCertificate>> cert =
      BuildCertificate(s.queries[0], s.queries[1], s.deps, *s.symbols);
  ASSERT_FALSE(cert.ok());
  EXPECT_EQ(cert.status().code(), StatusCode::kUnimplemented);
}

// --- Tamper tests: the verifier must reject every corruption. --------------

class TamperTest : public ::testing::Test {
 protected:
  TamperTest() : scenario_(EmpDepScenario()) {
    cert_ = BuildVerified(scenario_.queries[1], scenario_.queries[0],
                          scenario_.deps, *scenario_.symbols);
  }

  Status Verify(const ContainmentCertificate& cert) {
    return VerifyCertificate(cert, scenario_.queries[1], scenario_.queries[0],
                             scenario_.deps, *scenario_.symbols);
  }

  Scenario scenario_;
  ContainmentCertificate cert_;
};

TEST_F(TamperTest, RejectsForgedRoot) {
  ContainmentCertificate bad = cert_;
  // Claim an extra root the FD chase never produced.
  bad.roots.push_back(bad.roots[0]);
  bad.roots.back().terms[0] = bad.roots[0].terms[1];
  EXPECT_FALSE(Verify(bad).ok());
}

TEST_F(TamperTest, RejectsWrongIndLabel) {
  ASSERT_FALSE(cert_.steps.empty());
  ContainmentCertificate bad = cert_;
  bad.steps[0].ind_index = 999;
  EXPECT_FALSE(Verify(bad).ok());
}

TEST_F(TamperTest, RejectsBrokenCopyColumns) {
  ASSERT_FALSE(cert_.steps.empty());
  ContainmentCertificate bad = cert_;
  // DEP(dept, loc): column 0 is copied from EMP's dept; corrupt it.
  bad.steps[0].fact.terms[0] = bad.steps[0].fact.terms[1];
  EXPECT_FALSE(Verify(bad).ok());
}

TEST_F(TamperTest, RejectsStaleNdv) {
  ASSERT_FALSE(cert_.steps.empty());
  ContainmentCertificate bad = cert_;
  // Replace the fresh NDV by a symbol that already occurs in the roots.
  bad.steps[0].fact.terms[1] = bad.roots[0].terms[0];
  EXPECT_FALSE(Verify(bad).ok());
}

TEST_F(TamperTest, RejectsBrokenHomomorphism) {
  ContainmentCertificate bad = cert_;
  for (auto& [from, to] : bad.mapping) {
    to = bad.roots[0].terms[1];  // send everything to one symbol
  }
  EXPECT_FALSE(Verify(bad).ok());
}

TEST_F(TamperTest, RejectsOutOfRangeImage) {
  ContainmentCertificate bad = cert_;
  ASSERT_FALSE(bad.conjunct_images.empty());
  bad.conjunct_images[0] = 12345;
  EXPECT_FALSE(Verify(bad).ok());
}

TEST_F(TamperTest, RejectsParentCycle) {
  ASSERT_FALSE(cert_.steps.empty());
  ContainmentCertificate bad = cert_;
  bad.steps[0].parent = bad.roots.size();  // step claims itself as parent
  EXPECT_FALSE(Verify(bad).ok());
}

// --- Randomized round-trips -------------------------------------------------

class CertificateProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CertificateProperty, PlantedContainmentsRoundTrip) {
  Scenario s = Fig1Scenario();
  Rng rng(GetParam());
  Result<ConjunctiveQuery> q_prime =
      PlantedSuperQuery(rng, s.queries[0], s.deps, *s.symbols,
                        /*extra_conjuncts=*/2, /*chase_depth=*/3);
  ASSERT_TRUE(q_prime.ok()) << q_prime.status();
  Result<std::optional<ContainmentCertificate>> cert =
      BuildCertificate(s.queries[0], *q_prime, s.deps, *s.symbols);
  ASSERT_TRUE(cert.ok()) << cert.status();
  ASSERT_TRUE(cert->has_value());
  Status verified =
      VerifyCertificate(**cert, s.queries[0], *q_prime, s.deps, *s.symbols);
  EXPECT_TRUE(verified.ok()) << verified;
  // Theorem 2's point: the certificate is small — polynomial in the input.
  EXPECT_LE((*cert)->SizeInSymbols(),
            1000 * (s.queries[0].size() + q_prime->size() + s.deps.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CertificateProperty,
                         ::testing::Range<uint64_t>(1, 16));

}  // namespace
}  // namespace cqchase
