#include "deps/dependency.h"

#include <gtest/gtest.h>

#include "deps/dependency_set.h"
#include "deps/deps_parser.h"

namespace cqchase {
namespace {

Catalog EmpDepCatalog() {
  Catalog c;
  EXPECT_TRUE(c.AddRelation("EMP", {"eno", "sal", "dept"}).ok());
  EXPECT_TRUE(c.AddRelation("DEP", {"dept", "loc"}).ok());
  return c;
}

TEST(FdTest, NormalizeSortsAndDedupes) {
  FunctionalDependency fd;
  fd.relation = 0;
  fd.lhs = {2, 0, 2};
  fd.rhs = 1;
  fd.Normalize();
  EXPECT_EQ(fd.lhs, (std::vector<uint32_t>{0, 2}));
}

TEST(FdTest, ValidationCatchesOutOfRange) {
  Catalog c = EmpDepCatalog();
  FunctionalDependency fd;
  fd.relation = 0;
  fd.lhs = {0};
  fd.rhs = 7;
  EXPECT_EQ(ValidateFd(fd, c).code(), StatusCode::kInvalidArgument);
  fd.rhs = 1;
  EXPECT_TRUE(ValidateFd(fd, c).ok());
  fd.lhs = {};
  EXPECT_FALSE(ValidateFd(fd, c).ok());
}

TEST(IndTest, ValidationChecksWidthsAndDuplicates) {
  Catalog c = EmpDepCatalog();
  InclusionDependency ind;
  ind.lhs_relation = 0;
  ind.lhs_columns = {2};
  ind.rhs_relation = 1;
  ind.rhs_columns = {0};
  EXPECT_TRUE(ValidateInd(ind, c).ok());
  EXPECT_EQ(ind.width(), 1u);

  ind.rhs_columns = {0, 1};
  EXPECT_FALSE(ValidateInd(ind, c).ok());  // width mismatch
  ind.lhs_columns = {2, 2};
  ind.rhs_columns = {0, 1};
  EXPECT_FALSE(ValidateInd(ind, c).ok());  // repeated column
  ind.lhs_columns = {};
  ind.rhs_columns = {};
  EXPECT_FALSE(ValidateInd(ind, c).ok());  // empty side
}

TEST(DepsParserTest, ParsesFdByNameAndPosition) {
  Catalog c = EmpDepCatalog();
  Result<FunctionalDependency> byname = ParseFd(c, "EMP: eno -> sal");
  ASSERT_TRUE(byname.ok());
  EXPECT_EQ(byname->relation, 0u);
  EXPECT_EQ(byname->lhs, (std::vector<uint32_t>{0}));
  EXPECT_EQ(byname->rhs, 1u);

  Result<FunctionalDependency> bypos = ParseFd(c, "EMP: 1 -> 2");
  ASSERT_TRUE(bypos.ok());
  EXPECT_EQ(*byname, *bypos);

  Result<FunctionalDependency> multi = ParseFd(c, "EMP: eno dept -> sal");
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(multi->lhs, (std::vector<uint32_t>{0, 2}));
}

TEST(DepsParserTest, ParsesIndBothNotations) {
  Catalog c = EmpDepCatalog();
  Result<InclusionDependency> byname = ParseInd(c, "EMP[dept] <= DEP[dept]");
  ASSERT_TRUE(byname.ok());
  EXPECT_EQ(byname->lhs_relation, 0u);
  EXPECT_EQ(byname->lhs_columns, (std::vector<uint32_t>{2}));
  EXPECT_EQ(byname->rhs_relation, 1u);
  EXPECT_EQ(byname->rhs_columns, (std::vector<uint32_t>{0}));

  Result<InclusionDependency> bypos = ParseInd(c, "EMP[3] <= DEP[1]");
  ASSERT_TRUE(bypos.ok());
  EXPECT_EQ(*byname, *bypos);

  Result<InclusionDependency> subset = ParseInd(c, "EMP[dept] ⊆ DEP[dept]");
  ASSERT_TRUE(subset.ok());
  EXPECT_EQ(*byname, *subset);
}

TEST(DepsParserTest, ParserRejectsGarbage) {
  Catalog c = EmpDepCatalog();
  EXPECT_FALSE(ParseFd(c, "EMP eno -> sal").ok());
  EXPECT_FALSE(ParseFd(c, "NOPE: eno -> sal").ok());
  EXPECT_FALSE(ParseFd(c, "EMP: eno -> sal loc").ok());
  EXPECT_FALSE(ParseInd(c, "EMP[dept] DEP[dept]").ok());
  EXPECT_FALSE(ParseInd(c, "EMP[zz] <= DEP[dept]").ok());
  EXPECT_FALSE(ParseInd(c, "EMP[9] <= DEP[1]").ok());
}

TEST(DepsParserTest, ParsesMixedListWithCommentsAndNewlines) {
  Catalog c = EmpDepCatalog();
  Result<DependencySet> deps = ParseDependencies(c,
                                                 "# keys\n"
                                                 "EMP: eno -> sal\n"
                                                 "EMP: eno -> dept\n"
                                                 "DEP: dept -> loc;\n"
                                                 "EMP[dept] <= DEP[dept]\n");
  ASSERT_TRUE(deps.ok()) << deps.status();
  EXPECT_EQ(deps->fds().size(), 3u);
  EXPECT_EQ(deps->inds().size(), 1u);
}

TEST(DependencySetTest, DeduplicatesOnAdd) {
  Catalog c = EmpDepCatalog();
  DependencySet deps;
  FunctionalDependency fd = *ParseFd(c, "EMP: eno -> sal");
  EXPECT_TRUE(deps.AddFd(c, fd).ok());
  EXPECT_TRUE(deps.AddFd(c, fd).ok());
  EXPECT_EQ(deps.fds().size(), 1u);
}

TEST(DependencySetTest, WidthAndShapeQueries) {
  Catalog c = EmpDepCatalog();
  DependencySet deps = *ParseDependencies(
      c, "EMP[dept] <= DEP[dept]; EMP[sal,dept] <= DEP[loc,dept]");
  EXPECT_TRUE(deps.ContainsOnlyInds());
  EXPECT_EQ(deps.MaxIndWidth(), 2u);
  EXPECT_FALSE(deps.AllIndsWidthOne());

  DependencySet empty;
  EXPECT_TRUE(empty.ContainsOnlyInds());
  EXPECT_TRUE(empty.ContainsOnlyFds());
  EXPECT_EQ(empty.MaxIndWidth(), 0u);
  EXPECT_TRUE(empty.AllIndsWidthOne());
}

TEST(DependencySetTest, KeyBasedAcceptsPaperStyleSet) {
  Catalog c = EmpDepCatalog();
  DependencySet deps = *ParseDependencies(c,
                                          "EMP: eno -> sal\n"
                                          "EMP: eno -> dept\n"
                                          "DEP: dept -> loc\n"
                                          "EMP[dept] <= DEP[dept]");
  std::string why;
  EXPECT_TRUE(deps.IsKeyBased(c, &why)) << why;
  EXPECT_EQ(deps.KeyOf(0), (std::vector<uint32_t>{0}));
  EXPECT_EQ(deps.KeyOf(1), (std::vector<uint32_t>{0}));
}

TEST(DependencySetTest, KeyBasedRejectsDifferentLhs) {
  Catalog c = EmpDepCatalog();
  // Two FDs on EMP with different left-hand sides violate condition (a).
  DependencySet deps = *ParseDependencies(c,
                                          "EMP: eno -> sal\n"
                                          "EMP: dept -> sal\n"
                                          "EMP: eno -> dept");
  std::string why;
  EXPECT_FALSE(deps.IsKeyBased(c, &why));
  EXPECT_NE(why.find("different left-hand sides"), std::string::npos);
}

TEST(DependencySetTest, KeyBasedRequiresCoverage) {
  Catalog c = EmpDepCatalog();
  // 'dept' of EMP is neither key nor FD rhs: condition (a) fails.
  DependencySet deps = *ParseDependencies(c, "EMP: eno -> sal");
  std::string why;
  EXPECT_FALSE(deps.IsKeyBased(c, &why));
}

TEST(DependencySetTest, KeyBasedRejectsIndIntoNonKey) {
  Catalog c = EmpDepCatalog();
  // IND rhs 'loc' is not in DEP's key {dept}: condition (b) fails.
  DependencySet deps = *ParseDependencies(c,
                                          "EMP: eno -> sal\n"
                                          "EMP: eno -> dept\n"
                                          "DEP: dept -> loc\n"
                                          "EMP[sal] <= DEP[loc]");
  std::string why;
  EXPECT_FALSE(deps.IsKeyBased(c, &why));
}

TEST(DependencySetTest, KeyBasedRejectsIndFromKey) {
  Catalog c = EmpDepCatalog();
  // IND lhs 'eno' intersects EMP's key: condition (b) fails.
  DependencySet deps = *ParseDependencies(c,
                                          "EMP: eno -> sal\n"
                                          "EMP: eno -> dept\n"
                                          "DEP: dept -> loc\n"
                                          "EMP[eno] <= DEP[dept]");
  std::string why;
  EXPECT_FALSE(deps.IsKeyBased(c, &why));
}

TEST(DependencySetTest, IndOnlySetIsNotKeyBasedWithoutRhsKeys) {
  Catalog c = EmpDepCatalog();
  DependencySet deps = *ParseDependencies(c, "EMP[dept] <= DEP[dept]");
  std::string why;
  EXPECT_FALSE(deps.IsKeyBased(c, &why));
  EXPECT_NE(why.find("no FDs"), std::string::npos);
}

TEST(DependencySetTest, FdsOnlyIndsOnlySplit) {
  Catalog c = EmpDepCatalog();
  DependencySet deps = *ParseDependencies(c,
                                          "EMP: eno -> sal\n"
                                          "EMP[dept] <= DEP[dept]");
  EXPECT_EQ(deps.FdsOnly().size(), 1u);
  EXPECT_TRUE(deps.FdsOnly().ContainsOnlyFds());
  EXPECT_EQ(deps.IndsOnly().size(), 1u);
  EXPECT_TRUE(deps.IndsOnly().ContainsOnlyInds());
}

TEST(DependencyToStringTest, RendersReadably) {
  Catalog c = EmpDepCatalog();
  FunctionalDependency fd = *ParseFd(c, "EMP: eno -> sal");
  EXPECT_EQ(fd.ToString(c), "EMP: eno -> sal");
  InclusionDependency ind = *ParseInd(c, "EMP[dept] <= DEP[dept]");
  EXPECT_EQ(ind.ToString(c), "EMP[dept] <= DEP[dept]");
}

}  // namespace
}  // namespace cqchase
