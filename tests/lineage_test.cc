// Σ-lineage unit coverage: per-dependency fingerprint properties (order
// independence, FD/IND domain separation), the SigmaDelta partition, the
// survival rule table (engine/lineage.h) case by case — including the
// soundness-critical ones: lineage-unknown entries are treated as touched by
// any removal, monotone survivors lose their lineage so a later delta cannot
// exact-keep on a stale used-set — canonical-key Σ-section surgery, and the
// hostile-input hardening of the LineageDelta wire codec.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/delta.h"
#include "base/string_util.h"
#include "engine/lineage.h"
#include "engine/serialize.h"
#include "schema/catalog.h"

namespace cqchase {
namespace {

// Two relations R(a,b,c), S(a,b,c) shared by every fingerprint test.
Catalog MakeCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog.AddRelation("R", {"a", "b", "c"}).ok());
  EXPECT_TRUE(catalog.AddRelation("S", {"a", "b", "c"}).ok());
  return catalog;
}

InclusionDependency Ind(RelationId lhs, std::vector<uint32_t> x,
                        RelationId rhs, std::vector<uint32_t> y) {
  InclusionDependency ind;
  ind.lhs_relation = lhs;
  ind.lhs_columns = std::move(x);
  ind.rhs_relation = rhs;
  ind.rhs_columns = std::move(y);
  return ind;
}

FunctionalDependency Fd(RelationId relation, std::vector<uint32_t> lhs,
                        uint32_t rhs) {
  FunctionalDependency fd;
  fd.relation = relation;
  fd.lhs = std::move(lhs);
  fd.rhs = rhs;
  fd.Normalize();
  return fd;
}

// --- fingerprints ------------------------------------------------------------

TEST(FingerprintTest, DistinctDependenciesDistinctFingerprints) {
  const auto a = Ind(0, {0}, 1, {0});
  const auto b = Ind(0, {0}, 1, {1});  // different rhs column
  const auto c = Ind(0, {1}, 1, {0});  // different lhs column
  const auto d = Ind(1, {0}, 0, {0});  // reversed relations
  EXPECT_NE(FingerprintInd(a), FingerprintInd(b));
  EXPECT_NE(FingerprintInd(a), FingerprintInd(c));
  EXPECT_NE(FingerprintInd(a), FingerprintInd(d));
  EXPECT_EQ(FingerprintInd(a), FingerprintInd(Ind(0, {0}, 1, {0})));
}

TEST(FingerprintTest, IndColumnOrderIsSemantics) {
  // R[0,1] ⊆ S[0,1] maps 0->0, 1->1; R[1,0] ⊆ S[0,1] maps 1->0, 0->1 — a
  // different dependency, so a different fingerprint.
  EXPECT_NE(FingerprintInd(Ind(0, {0, 1}, 1, {0, 1})),
            FingerprintInd(Ind(0, {1, 0}, 1, {0, 1})));
}

TEST(FingerprintTest, FdAndIndDomainsNeverCollide) {
  // An FD and an IND with coincidentally equal numeric fields must not
  // fingerprint equal — the leading domain tag separates them.
  const auto fd = Fd(0, {1}, 2);
  const auto ind = Ind(0, {1}, 2, {1});
  EXPECT_NE(FingerprintFd(fd), FingerprintInd(ind));
}

TEST(FingerprintTest, SigmaFingerprintIsInsertionOrderInvariant) {
  const Catalog catalog = MakeCatalog();
  const auto i1 = Ind(0, {0}, 1, {0});
  const auto i2 = Ind(1, {1}, 0, {1});
  const auto fd = Fd(0, {0}, 1);
  DependencySet forward;
  ASSERT_TRUE(forward.AddInd(catalog, i1).ok());
  ASSERT_TRUE(forward.AddInd(catalog, i2).ok());
  ASSERT_TRUE(forward.AddFd(catalog, fd).ok());
  DependencySet backward;
  ASSERT_TRUE(backward.AddInd(catalog, i2).ok());
  ASSERT_TRUE(backward.AddInd(catalog, i1).ok());
  ASSERT_TRUE(backward.AddFd(catalog, fd).ok());
  EXPECT_EQ(SigmaFingerprint(forward), SigmaFingerprint(backward));

  DependencySet smaller;
  ASSERT_TRUE(smaller.AddInd(catalog, i1).ok());
  EXPECT_NE(SigmaFingerprint(forward), SigmaFingerprint(smaller));
}

TEST(FingerprintTest, UsedDependencyFingerprintsFollowBitmaps) {
  const Catalog catalog = MakeCatalog();
  const auto i1 = Ind(0, {0}, 1, {0});
  const auto i2 = Ind(1, {1}, 0, {1});
  const auto fd = Fd(0, {0}, 1);
  DependencySet deps;
  ASSERT_TRUE(deps.AddInd(catalog, i1).ok());
  ASSERT_TRUE(deps.AddInd(catalog, i2).ok());
  ASSERT_TRUE(deps.AddFd(catalog, fd).ok());

  const auto used =
      UsedDependencyFingerprints(deps, {false, true}, {true});
  std::vector<uint64_t> want = {FingerprintInd(i2), FingerprintFd(fd)};
  std::sort(want.begin(), want.end());
  EXPECT_EQ(used, want);

  // Bitmaps shorter than Σ (a capture from a pruned core) read as unused
  // for the trailing dependencies — never out-of-bounds.
  EXPECT_TRUE(UsedDependencyFingerprints(deps, {}, {}).empty());
  EXPECT_EQ(UsedDependencyFingerprints(deps, {true}, {}),
            std::vector<uint64_t>{FingerprintInd(i1)});
}

TEST(SigmaDeltaTest, PartitionsTheUnion) {
  const Catalog catalog = MakeCatalog();
  const auto kept = Ind(0, {0}, 1, {0});
  const auto dropped = Ind(1, {1}, 0, {1});
  const auto gained = Ind(0, {2}, 1, {2});
  DependencySet before;
  ASSERT_TRUE(before.AddInd(catalog, kept).ok());
  ASSERT_TRUE(before.AddInd(catalog, dropped).ok());
  DependencySet after;
  ASSERT_TRUE(after.AddInd(catalog, kept).ok());
  ASSERT_TRUE(after.AddInd(catalog, gained).ok());

  const SigmaDelta delta = ComputeSigmaDelta(before, after);
  EXPECT_EQ(delta.added, std::vector<uint64_t>{FingerprintInd(gained)});
  EXPECT_EQ(delta.removed, std::vector<uint64_t>{FingerprintInd(dropped)});
  EXPECT_EQ(delta.unchanged, std::vector<uint64_t>{FingerprintInd(kept)});
  EXPECT_TRUE(delta.Removed(FingerprintInd(dropped)));
  EXPECT_FALSE(delta.Removed(FingerprintInd(kept)));
  EXPECT_FALSE(delta.empty());

  EXPECT_TRUE(ComputeSigmaDelta(before, before).empty());
}

// --- key surgery -------------------------------------------------------------

TEST(TaskKeyTest, SigmaSectionAndRekey) {
  const std::string key = "V1|S{I0[0,]<=1[0,];}|Q{(d0):R(d0);}|=>|Q{(d0):S(d0);}";
  EXPECT_EQ(TaskKeySigmaSection(key), "S{I0[0,]<=1[0,];}");
  EXPECT_EQ(RekeyTask(key, "S{}"),
            "V1|S{}|Q{(d0):R(d0);}|=>|Q{(d0):S(d0);}");
  // Malformed keys (no Σ section to find) answer empty, never crash.
  EXPECT_EQ(TaskKeySigmaSection(""), "");
  EXPECT_EQ(TaskKeySigmaSection("V1"), "");
  EXPECT_EQ(TaskKeySigmaSection("V1|S{x}"), "");  // no closing separator
}

// --- the survival rule table -------------------------------------------------

struct RuleFixture {
  Catalog catalog = MakeCatalog();
  InclusionDependency kept = Ind(0, {0}, 1, {0});
  InclusionDependency volatile_ind = Ind(1, {1}, 0, {1});
  InclusionDependency extra = Ind(0, {2}, 1, {2});
  DependencySet base;       // kept + volatile
  DependencySet removed;    // kept only
  DependencySet added;      // kept + volatile + extra
  LineageDelta removal;     // base -> removed
  LineageDelta addition;    // base -> added
  LineageDelta add_remove;  // base -> (kept + extra)

  RuleFixture() {
    EXPECT_TRUE(base.AddInd(catalog, kept).ok());
    EXPECT_TRUE(base.AddInd(catalog, volatile_ind).ok());
    EXPECT_TRUE(removed.AddInd(catalog, kept).ok());
    EXPECT_TRUE(added.AddInd(catalog, kept).ok());
    EXPECT_TRUE(added.AddInd(catalog, volatile_ind).ok());
    EXPECT_TRUE(added.AddInd(catalog, extra).ok());
    DependencySet swapped;
    EXPECT_TRUE(swapped.AddInd(catalog, kept).ok());
    EXPECT_TRUE(swapped.AddInd(catalog, extra).ok());
    removal = MakeLineageDelta(base, removed);
    addition = MakeLineageDelta(base, added);
    add_remove = MakeLineageDelta(base, swapped);
  }

  // An entry decided under `base` whose chase used exactly `used`.
  StoredVerdict Entry(bool contained, bool lineage_known,
                      std::vector<uint64_t> used = {}) const {
    StoredVerdict v;
    v.contained = contained;
    v.confidence = static_cast<uint8_t>(VerdictConfidence::kExact);
    v.lineage_known = lineage_known;
    v.sigma_fp = SigmaFingerprint(base);
    v.used_fps = std::move(used);
    std::sort(v.used_fps.begin(), v.used_fps.end());
    return v;
  }
};

TEST(RetagRuleTest, EmptyDeltaIsUntouched) {
  RuleFixture f;
  const LineageDelta identity = MakeLineageDelta(f.base, f.base);
  StoredVerdict v = f.Entry(true, true);
  EXPECT_EQ(RetagVerdictForDelta(identity, v), RetagDecision::kUntouched);
}

TEST(RetagRuleTest, ContainedDropsWhenARemovedDependencyFired) {
  RuleFixture f;
  StoredVerdict v =
      f.Entry(true, true, {FingerprintInd(f.volatile_ind)});
  EXPECT_EQ(RetagVerdictForDelta(f.removal, v), RetagDecision::kDrop);
}

TEST(RetagRuleTest, ContainedKeepsExactWhenRemovalNeverFired) {
  RuleFixture f;
  StoredVerdict v = f.Entry(true, true, {FingerprintInd(f.kept)});
  EXPECT_EQ(RetagVerdictForDelta(f.removal, v), RetagDecision::kKeepExact);
  EXPECT_EQ(v.confidence, static_cast<uint8_t>(VerdictConfidence::kExact));
  EXPECT_TRUE(v.lineage_known);  // exact survival carries lineage forward
  EXPECT_EQ(v.sigma_fp, SigmaFingerprint(f.removed));
}

TEST(RetagRuleTest, ContainedSurvivesAdditionsMonotonically) {
  RuleFixture f;
  StoredVerdict v = f.Entry(true, true, {FingerprintInd(f.kept)});
  EXPECT_EQ(RetagVerdictForDelta(f.addition, v),
            RetagDecision::kKeepMonotone);
  EXPECT_EQ(v.confidence,
            static_cast<uint8_t>(VerdictConfidence::kMonotoneBound));
  // The used-set described the pre-edit chase; a monotone survivor must not
  // let a later delta exact-keep on its strength.
  EXPECT_FALSE(v.lineage_known);
  EXPECT_TRUE(v.used_fps.empty());
  EXPECT_EQ(v.sigma_fp, SigmaFingerprint(f.added));
}

TEST(RetagRuleTest, LineageUnknownIsTouchedByAnyRemoval) {
  RuleFixture f;
  // contained + removal + unknown lineage: the removed dependency may have
  // fired — dropping is the only sound answer (a v1 legacy entry takes
  // exactly this path; see delta_migration_test for the on-disk half).
  StoredVerdict contained_entry = f.Entry(true, false);
  EXPECT_EQ(RetagVerdictForDelta(f.removal, contained_entry),
            RetagDecision::kDrop);
  // not-contained + removal survives monotonically with no lineage at all:
  // the counterexample satisfies every subset of Σ.
  StoredVerdict not_contained = f.Entry(false, false);
  EXPECT_EQ(RetagVerdictForDelta(f.removal, not_contained),
            RetagDecision::kKeepMonotone);
}

TEST(RetagRuleTest, NotContainedDropsOnAdditionKeepsExactOnUnusedRemoval) {
  RuleFixture f;
  StoredVerdict on_add = f.Entry(false, true);
  EXPECT_EQ(RetagVerdictForDelta(f.addition, on_add), RetagDecision::kDrop);

  StoredVerdict on_remove = f.Entry(false, true, {FingerprintInd(f.kept)});
  EXPECT_EQ(RetagVerdictForDelta(f.removal, on_remove),
            RetagDecision::kKeepExact);
}

TEST(RetagRuleTest, MixedEditKeepsMonotoneOnlyWhenRemovalNeverFired) {
  RuleFixture f;
  StoredVerdict clean = f.Entry(true, true, {FingerprintInd(f.kept)});
  EXPECT_EQ(RetagVerdictForDelta(f.add_remove, clean),
            RetagDecision::kKeepMonotone);
  StoredVerdict dirty =
      f.Entry(true, true, {FingerprintInd(f.volatile_ind)});
  EXPECT_EQ(RetagVerdictForDelta(f.add_remove, dirty), RetagDecision::kDrop);
}

TEST(RetagRuleTest, ConfidenceNeverUpgradesBackToExact) {
  RuleFixture f;
  StoredVerdict v = f.Entry(false, false);
  v.confidence = static_cast<uint8_t>(VerdictConfidence::kMonotoneBound);
  // A not-contained monotone survivor surviving another removal stays
  // monotone even though the decision is "keep": kKeepMonotone re-tags, and
  // an exact keep would need lineage the entry no longer has.
  EXPECT_EQ(RetagVerdictForDelta(f.removal, v), RetagDecision::kKeepMonotone);
  EXPECT_EQ(v.confidence,
            static_cast<uint8_t>(VerdictConfidence::kMonotoneBound));
}

TEST(ApplyVerdictDeltaTest, ForeignSigmaIsUntouched) {
  RuleFixture f;
  const std::string foreign = "V1|S{I9[9,]<=9[9,];}|Q{a}|=>|Q{b}";
  StoredVerdict v = f.Entry(true, true);
  std::string rekeyed;
  EXPECT_EQ(ApplyVerdictDelta(f.removal, foreign, v, &rekeyed),
            RetagDecision::kUntouched);
}

TEST(ApplyVerdictDeltaTest, MatchingSigmaIsRekeyedToTheNewSection) {
  RuleFixture f;
  const std::string key =
      StrCat("V1|", f.removal.old_sigma_key, "|Q{a}|=>|Q{b}");
  StoredVerdict v = f.Entry(false, true);
  std::string rekeyed;
  EXPECT_EQ(ApplyVerdictDelta(f.removal, key, v, &rekeyed),
            RetagDecision::kKeepExact);
  EXPECT_EQ(rekeyed, StrCat("V1|", f.removal.new_sigma_key, "|Q{a}|=>|Q{b}"));
}

// --- receipts ----------------------------------------------------------------

TEST(DeltaReceiptTest, CountAndAdd) {
  DeltaReceipt r;
  r.Count(RetagDecision::kUntouched);  // foreign entries are not examined
  r.Count(RetagDecision::kKeepExact);
  r.Count(RetagDecision::kKeepMonotone);
  r.Count(RetagDecision::kDrop);
  EXPECT_EQ(r.examined, 3u);
  EXPECT_EQ(r.retagged(), 2u);
  DeltaReceipt sum;
  sum.Add(r);
  sum.Add(r);
  EXPECT_EQ(sum.examined, 6u);
  EXPECT_EQ(sum.dropped, 2u);
}

// --- wire codec --------------------------------------------------------------

TEST(LineageDeltaCodecTest, RoundTrips) {
  RuleFixture f;
  std::string bytes;
  EncodeLineageDelta(f.add_remove, bytes);
  wire::ByteReader reader(bytes);
  LineageDelta decoded;
  ASSERT_TRUE(DecodeLineageDelta(reader, &decoded).ok());
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_EQ(decoded.delta.added, f.add_remove.delta.added);
  EXPECT_EQ(decoded.delta.removed, f.add_remove.delta.removed);
  EXPECT_EQ(decoded.delta.unchanged, f.add_remove.delta.unchanged);
  EXPECT_EQ(decoded.old_sigma_key, f.add_remove.old_sigma_key);
  EXPECT_EQ(decoded.new_sigma_key, f.add_remove.new_sigma_key);
  EXPECT_EQ(decoded.old_sigma_fp, f.add_remove.old_sigma_fp);
  EXPECT_EQ(decoded.new_sigma_fp, f.add_remove.new_sigma_fp);
}

TEST(LineageDeltaCodecTest, EveryTruncationIsRejected) {
  RuleFixture f;
  std::string bytes;
  EncodeLineageDelta(f.add_remove, bytes);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    wire::ByteReader reader(std::string_view(bytes.data(), cut));
    LineageDelta decoded;
    EXPECT_FALSE(DecodeLineageDelta(reader, &decoded).ok())
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(LineageDeltaCodecTest, HostileCountCannotForceAllocation) {
  // A fingerprint count far beyond the remaining bytes must be rejected
  // before any resize — the count-bound check, same as the store codec's.
  std::string bytes;
  wire::PutString(bytes, "S{old}");
  wire::PutString(bytes, "S{new}");
  wire::PutU64(bytes, 1);
  wire::PutU64(bytes, 2);
  wire::PutU32(bytes, 0xFFFFFFFFu);  // "4 billion added fingerprints"
  wire::ByteReader reader(bytes);
  LineageDelta decoded;
  EXPECT_FALSE(DecodeLineageDelta(reader, &decoded).ok());
}

TEST(LineageDeltaCodecTest, UnsortedHostileFingerprintsAreSortedOnDecode) {
  // Removed() binary-searches; a peer that framed unsorted vectors must not
  // break membership probes.
  LineageDelta hostile;
  hostile.old_sigma_key = "S{a}";
  hostile.new_sigma_key = "S{b}";
  hostile.delta.removed = {30, 10, 20};  // deliberately unsorted
  std::string bytes;
  EncodeLineageDelta(hostile, bytes);
  wire::ByteReader reader(bytes);
  LineageDelta decoded;
  ASSERT_TRUE(DecodeLineageDelta(reader, &decoded).ok());
  EXPECT_TRUE(decoded.delta.Removed(10));
  EXPECT_TRUE(decoded.delta.Removed(20));
  EXPECT_TRUE(decoded.delta.Removed(30));
  EXPECT_FALSE(decoded.delta.Removed(15));
}

}  // namespace
}  // namespace cqchase
