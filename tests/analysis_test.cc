// Dependency-set analysis: IND-graph acyclicity (a chase-termination
// guarantee the paper's Figure 1 example violates) and CFP derivations — the
// "short proofs" an NP/PSPACE membership result promises.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/string_util.h"
#include "chase/chase.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "gen/generators.h"
#include "gen/scenarios.h"
#include "inference/ind_inference.h"

namespace cqchase {
namespace {

// --- IND-graph acyclicity ----------------------------------------------------

TEST(IndGraphTest, AcyclicChainHasPathLength) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("A", {"x"}).ok());
  ASSERT_TRUE(catalog.AddRelation("B", {"x"}).ok());
  ASSERT_TRUE(catalog.AddRelation("C", {"x"}).ok());
  DependencySet deps =
      *ParseDependencies(catalog, "A[1] <= B[1]\nB[1] <= C[1]");
  ASSERT_TRUE(deps.IndGraphAcyclic(catalog));
  EXPECT_EQ(*deps.MaxIndPathLength(catalog), 2u);
}

TEST(IndGraphTest, SelfLoopIsCyclic) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  DependencySet deps = *ParseDependencies(catalog, "R[2] <= R[1]");
  EXPECT_FALSE(deps.IndGraphAcyclic(catalog));
  EXPECT_EQ(deps.MaxIndPathLength(catalog), std::nullopt);
}

TEST(IndGraphTest, Figure1SigmaIsCyclic) {
  Scenario s = Fig1Scenario();  // R -> S -> R cycle
  EXPECT_FALSE(s.deps.IndGraphAcyclic(*s.catalog));
}

TEST(IndGraphTest, EmptyAndFdOnlySetsAreAcyclic) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  DependencySet empty;
  EXPECT_TRUE(empty.IndGraphAcyclic(catalog));
  EXPECT_EQ(*empty.MaxIndPathLength(catalog), 0u);
  DependencySet fd = *ParseDependencies(catalog, "R: 1 -> 2");
  EXPECT_TRUE(fd.IndGraphAcyclic(catalog));
}

TEST(IndGraphTest, AcyclicSigmaGuaranteesChaseTermination) {
  // Both chase disciplines saturate within MaxIndPathLength levels.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("A", {"x", "y"}).ok());
  ASSERT_TRUE(catalog.AddRelation("B", {"x", "y"}).ok());
  ASSERT_TRUE(catalog.AddRelation("C", {"x", "y"}).ok());
  SymbolTable symbols;
  DependencySet deps = *ParseDependencies(
      catalog, "A[1] <= B[1]\nA[2] <= B[2]\nB[1] <= C[2]");
  ASSERT_TRUE(deps.IndGraphAcyclic(catalog));
  const uint32_t path = *deps.MaxIndPathLength(catalog);
  ConjunctiveQuery q = *ParseQuery(catalog, symbols, "ans(u) :- A(u, v)");
  for (ChaseVariant variant :
       {ChaseVariant::kRequired, ChaseVariant::kOblivious}) {
    Result<Chase> chase =
        BuildChase(q, deps, symbols, variant, ChaseLimits{});
    ASSERT_TRUE(chase.ok()) << chase.status();
    EXPECT_EQ(chase->outcome(), ChaseOutcome::kSaturated);
    EXPECT_LE(chase->MaxAliveLevel(), path);
  }
}

class AcyclicProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AcyclicProperty, AcyclicRandomSigmaChasesSaturate) {
  Rng rng(GetParam());
  RandomCatalogParams cp;
  cp.num_relations = 4;
  cp.min_arity = 2;
  cp.max_arity = 3;
  Catalog catalog = RandomCatalog(rng, cp);
  RandomIndParams ip;
  ip.count = 3;
  ip.width = 1;
  DependencySet deps = RandomIndOnlyDeps(rng, catalog, ip);
  if (!deps.IndGraphAcyclic(catalog)) GTEST_SKIP() << "cyclic draw";
  SymbolTable symbols;
  RandomQueryParams qp;
  qp.num_conjuncts = 3;
  qp.name_prefix = StrCat("ac", GetParam());
  ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);
  Result<Chase> chase = BuildChase(q, deps, symbols,
                                   ChaseVariant::kRequired, ChaseLimits{});
  ASSERT_TRUE(chase.ok()) << chase.status();
  EXPECT_EQ(chase->outcome(), ChaseOutcome::kSaturated);
  EXPECT_LE(chase->MaxAliveLevel(), *deps.MaxIndPathLength(catalog));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcyclicProperty,
                         ::testing::Range<uint64_t>(1, 21));

// --- CFP derivations ---------------------------------------------------------

class DerivationTest : public ::testing::Test {
 protected:
  DerivationTest() {
    EXPECT_TRUE(catalog_.AddRelation("R", {"a", "b", "c"}).ok());
    EXPECT_TRUE(catalog_.AddRelation("S", {"x", "y", "z"}).ok());
    EXPECT_TRUE(catalog_.AddRelation("T", {"u", "v"}).ok());
    deps_ = *ParseDependencies(catalog_,
                               "R[a,b] <= S[x,y]\n"
                               "S[x,y] <= R[b,c]\n"
                               "S[x] <= T[u]");
  }
  Catalog catalog_;
  DependencySet deps_;
};

TEST_F(DerivationTest, ReflexivityIsTheEmptyChain) {
  InclusionDependency target = *ParseInd(catalog_, "R[a,b] <= R[a,b]");
  Result<std::optional<IndDerivation>> d = DeriveInd(deps_, catalog_, target);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(d->has_value());
  EXPECT_TRUE((*d)->ind_chain.empty());
}

TEST_F(DerivationTest, TransitivityChainIsRecovered) {
  InclusionDependency target = *ParseInd(catalog_, "R[a,b] <= R[b,c]");
  Result<std::optional<IndDerivation>> d = DeriveInd(deps_, catalog_, target);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(d->has_value());
  EXPECT_EQ((*d)->ind_chain, (std::vector<uint32_t>{0, 1}));
  std::string proof = (*d)->ToString(deps_, catalog_, target);
  EXPECT_NE(proof.find("transitivity"), std::string::npos);
  EXPECT_NE(proof.find("reflexivity"), std::string::npos);
}

TEST_F(DerivationTest, ProjectionAndPermutationAreOneStep) {
  // R[b,a] <= S[y,x] is the first given IND with both sides permuted.
  InclusionDependency target = *ParseInd(catalog_, "R[b,a] <= S[y,x]");
  Result<std::optional<IndDerivation>> d = DeriveInd(deps_, catalog_, target);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(d->has_value());
  EXPECT_EQ((*d)->ind_chain.size(), 1u);
}

TEST_F(DerivationTest, NonImpliedHasNoDerivation) {
  InclusionDependency target = *ParseInd(catalog_, "T[u] <= R[a]");
  Result<std::optional<IndDerivation>> d = DeriveInd(deps_, catalog_, target);
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d->has_value());
}

TEST_F(DerivationTest, DerivationsMatchTheBooleanDecider) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    RelationId r = static_cast<RelationId>(rng.Index(3));
    RelationId t = static_cast<RelationId>(rng.Index(3));
    size_t width = 1 + rng.Index(2);
    if (catalog_.arity(r) < width || catalog_.arity(t) < width) continue;
    InclusionDependency target;
    target.lhs_relation = r;
    target.rhs_relation = t;
    for (size_t i = 0; i < width; ++i) {
      target.lhs_columns.push_back(static_cast<uint32_t>(i));
      target.rhs_columns.push_back(
          static_cast<uint32_t>((i + rng.Index(2)) % catalog_.arity(t)));
    }
    if (!ValidateInd(target, catalog_).ok()) continue;
    Result<bool> implied = IndImpliedAxiomatic(deps_, catalog_, target);
    Result<std::optional<IndDerivation>> d =
        DeriveInd(deps_, catalog_, target);
    ASSERT_TRUE(implied.ok() && d.ok());
    EXPECT_EQ(*implied, d->has_value());
  }
}

}  // namespace
}  // namespace cqchase
