#include "gen/generators.h"

#include <gtest/gtest.h>

#include "base/string_util.h"
#include "core/homomorphism.h"
#include "gen/scenarios.h"

namespace cqchase {
namespace {

TEST(ScenarioTest, EmpDepMatchesPaperIntro) {
  Scenario s = EmpDepScenario();
  EXPECT_EQ(s.catalog->num_relations(), 2u);
  EXPECT_TRUE(s.deps.ContainsOnlyInds());
  EXPECT_EQ(s.deps.MaxIndWidth(), 1u);
  ASSERT_EQ(s.queries.size(), 2u);
  EXPECT_EQ(s.queries[0].conjuncts().size(), 2u);
  EXPECT_EQ(s.queries[1].conjuncts().size(), 1u);
  EXPECT_TRUE(s.queries[0].Validate().ok());
  EXPECT_TRUE(s.queries[1].Validate().ok());
}

TEST(ScenarioTest, Fig1MatchesPaperFigure) {
  Scenario s = Fig1Scenario();
  EXPECT_EQ(s.catalog->num_relations(), 3u);
  EXPECT_EQ(s.deps.inds().size(), 3u);
  EXPECT_EQ(s.deps.MaxIndWidth(), 2u);
  EXPECT_EQ(s.queries[0].ToString(), "ans(c) :- R(a, b, c)");
}

TEST(ScenarioTest, Section4MatchesPaperExample) {
  Scenario s = Section4Scenario();
  EXPECT_EQ(s.deps.fds().size(), 1u);
  EXPECT_EQ(s.deps.inds().size(), 1u);
  EXPECT_FALSE(s.deps.IsKeyBased(*s.catalog));
  EXPECT_EQ(s.queries[0].ToString(), "ans(x) :- R(x, y)");
  EXPECT_EQ(s.queries[1].ToString(), "ans(x) :- R(x, y), R(yp, x)");
}

TEST(ScenarioTest, KeyBasedVariantIsKeyBased) {
  Scenario s = KeyBasedEmpDepScenario();
  std::string why;
  EXPECT_TRUE(s.deps.IsKeyBased(*s.catalog, &why)) << why;
}

TEST(RandomCatalogTest, RespectsParams) {
  Rng rng(1);
  RandomCatalogParams params;
  params.num_relations = 5;
  params.min_arity = 2;
  params.max_arity = 3;
  Catalog c = RandomCatalog(rng, params);
  EXPECT_EQ(c.num_relations(), 5u);
  for (RelationId r = 0; r < c.num_relations(); ++r) {
    EXPECT_GE(c.arity(r), 2u);
    EXPECT_LE(c.arity(r), 3u);
  }
}

TEST(RandomQueryTest, GeneratedQueriesAreValid) {
  Rng rng(2);
  Catalog c = RandomCatalog(rng);
  SymbolTable symbols;
  for (int i = 0; i < 20; ++i) {
    RandomQueryParams params;
    params.num_conjuncts = 1 + i % 5;
    params.num_dist_vars = 1 + i % 2;
    params.constant_prob = (i % 4) * 0.1;
    params.name_prefix = StrCat("g", i);
    ConjunctiveQuery q = RandomQuery(rng, c, symbols, params);
    EXPECT_TRUE(q.Validate().ok()) << q.ToString();
    EXPECT_EQ(q.conjuncts().size(), params.num_conjuncts);
    EXPECT_EQ(q.summary().size(), params.num_dist_vars);
  }
}

TEST(RandomQueryTest, DeterministicForFixedSeed) {
  Catalog c;
  {
    Rng rng(3);
    c = RandomCatalog(rng);
  }
  SymbolTable sym1, sym2;
  Rng rng1(17), rng2(17);
  ConjunctiveQuery q1 = RandomQuery(rng1, c, sym1, {});
  ConjunctiveQuery q2 = RandomQuery(rng2, c, sym2, {});
  EXPECT_EQ(q1.ToString(), q2.ToString());
}

TEST(RandomIndDepsTest, WidthAndCountRespected) {
  Rng rng(4);
  Catalog c = RandomCatalog(rng);
  RandomIndParams params;
  params.count = 5;
  params.width = 2;
  DependencySet deps = RandomIndOnlyDeps(rng, c, params);
  EXPECT_TRUE(deps.ContainsOnlyInds());
  EXPECT_LE(deps.inds().size(), 5u);
  EXPECT_GE(deps.inds().size(), 1u);
  for (const InclusionDependency& ind : deps.inds()) {
    EXPECT_EQ(ind.width(), 2u);
  }
}

TEST(RandomKeyBasedDepsTest, ProducesKeyBasedSets) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    RandomCatalogParams cp;
    cp.num_relations = 4;
    cp.min_arity = 2;
    cp.max_arity = 4;
    Catalog c = RandomCatalog(rng, cp);
    RandomKeyBasedParams params;
    params.key_size = 1;
    params.num_inds = 4;
    DependencySet deps = RandomKeyBasedDeps(rng, c, params);
    std::string why;
    EXPECT_TRUE(deps.IsKeyBased(c, &why))
        << why << "\n" << deps.ToString(c);
  }
}

TEST(RandomInstanceTest, SizeAndArity) {
  Rng rng(5);
  Catalog c = RandomCatalog(rng);
  SymbolTable symbols;
  RandomInstanceParams params;
  params.tuples_per_relation = 7;
  Instance db = RandomInstance(rng, c, symbols, params);
  for (RelationId r = 0; r < c.num_relations(); ++r) {
    EXPECT_LE(db.tuples(r).size(), 7u);  // duplicates collapse
    EXPECT_GE(db.tuples(r).size(), 1u);
  }
}

TEST(PlantedSuperQueryTest, PlantedPairsAreContainedByConstruction) {
  Rng rng(6);
  Scenario s = EmpDepScenario();
  Result<ConjunctiveQuery> q_prime =
      PlantedSuperQuery(rng, s.queries[0], s.deps, *s.symbols,
                        /*extra_conjuncts=*/3, /*chase_depth=*/2);
  ASSERT_TRUE(q_prime.ok()) << q_prime.status();
  EXPECT_TRUE(q_prime->Validate().ok());
  // The planted renaming is itself a homomorphism into the chase; verify
  // through the public containment API in integration_test. Here: shape.
  EXPECT_GE(q_prime->conjuncts().size(), 1u);
}

}  // namespace
}  // namespace cqchase
