// Cross-module integration tests: the containment decision (Theorem 1/2
// machinery) validated against independent oracles — planted homomorphisms,
// finite-database evaluation, and the finite-witness construction.
#include <algorithm>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/string_util.h"
#include "core/containment.h"
#include "core/minimize.h"
#include "cq/cq_parser.h"
#include "data/instance.h"
#include "deps/deps_parser.h"
#include "finite/finite_containment.h"
#include "gen/generators.h"
#include "gen/scenarios.h"

namespace cqchase {
namespace {

// Oracle 1 (soundness): if the checker says Σ ⊨ Q ⊆∞ Q', then on every
// sampled finite Σ-database, Q(D) ⊆ Q'(D). (⊆∞ implies ⊆f.)
void ExpectNoFiniteCounterexample(const ConjunctiveQuery& q,
                                  const ConjunctiveQuery& q_prime,
                                  const DependencySet& deps,
                                  SymbolTable& symbols, uint64_t seed) {
  RandomSearchParams params;
  params.samples = 60;
  params.domain_size = 5;
  params.tuples_per_relation = 4;
  params.seed = seed;
  Result<std::optional<Instance>> cex =
      RandomFiniteCounterexample(q, q_prime, deps, symbols, params);
  ASSERT_TRUE(cex.ok()) << cex.status();
  EXPECT_FALSE(cex->has_value())
      << "checker said contained, but finite counterexample exists:\n"
      << (*cex)->ToString(symbols);
}

TEST(IntegrationTest, PlantedContainmentsAreConfirmed) {
  // Planted super-queries are contained by construction; the checker must
  // agree, across both paper scenarios and several seeds.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    Scenario s = EmpDepScenario();
    Result<ConjunctiveQuery> q_prime = PlantedSuperQuery(
        rng, s.queries[0], s.deps, *s.symbols, 2 + seed % 3, 2);
    ASSERT_TRUE(q_prime.ok()) << q_prime.status();
    Result<ContainmentReport> r = CheckContainment(
        s.queries[0], *q_prime, s.deps, *s.symbols);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_TRUE(r->contained) << "seed " << seed << "\nQ' = "
                              << q_prime->ToString();
  }
}

TEST(IntegrationTest, PlantedContainmentsOnInfiniteChase) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    Scenario s = Fig1Scenario();
    Result<ConjunctiveQuery> q_prime = PlantedSuperQuery(
        rng, s.queries[0], s.deps, *s.symbols, 3, /*chase_depth=*/4);
    ASSERT_TRUE(q_prime.ok()) << q_prime.status();
    Result<ContainmentReport> r = CheckContainment(
        s.queries[0], *q_prime, s.deps, *s.symbols);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_TRUE(r->contained) << "seed " << seed << "\nQ' = "
                              << q_prime->ToString();
  }
}

TEST(IntegrationTest, ContainmentSoundnessAgainstFiniteSampling) {
  Scenario s = EmpDepScenario();
  // Checker verdicts on the intro pair, cross-checked by evaluation.
  Result<ContainmentReport> fwd =
      CheckContainment(s.queries[1], s.queries[0], s.deps, *s.symbols);
  ASSERT_TRUE(fwd.ok());
  ASSERT_TRUE(fwd->contained);
  ExpectNoFiniteCounterexample(s.queries[1], s.queries[0], s.deps,
                               *s.symbols, 11);
}

TEST(IntegrationTest, NonContainmentHasFiniteWitnessForWidthOne) {
  // Completeness spot-check via Theorem 3: for width-1 IND sets, a negative
  // checker verdict must come with a finite counterexample (from Q*).
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  ASSERT_TRUE(catalog.AddRelation("S", {"a", "b"}).ok());
  SymbolTable symbols;
  DependencySet deps =
      *ParseDependencies(catalog, "R[2] <= S[1]; S[2] <= R[1]");
  ConjunctiveQuery q = *ParseQuery(catalog, symbols, "ans(x) :- R(x, y)");
  ConjunctiveQuery q_prime =
      *ParseQuery(catalog, symbols, "ans(x) :- R(x, y), S(y, z), R(z, w)");
  Result<ContainmentReport> r =
      CheckContainment(q, q_prime, deps, symbols);
  ASSERT_TRUE(r.ok()) << r.status();
  if (!r->contained) {
    FiniteWitnessParams params;
    params.cutoff_level = *SuggestCutoff(q_prime, deps) + 2;
    Result<std::optional<Instance>> cex =
        FiniteCounterexampleFromWitness(q, q_prime, deps, symbols, params);
    ASSERT_TRUE(cex.ok()) << cex.status();
    EXPECT_TRUE(cex->has_value());
  } else {
    // If contained, sampling must not contradict it.
    ExpectNoFiniteCounterexample(q, q_prime, deps, symbols, 13);
  }
}

TEST(IntegrationTest, RandomKeyBasedPipelines) {
  // End-to-end over random key-based scenarios: chase → containment →
  // minimization, with evaluation-based soundness checks.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 101);
    RandomCatalogParams cp;
    cp.num_relations = 3;
    cp.min_arity = 2;
    cp.max_arity = 3;
    Catalog catalog = RandomCatalog(rng, cp);
    DependencySet deps = RandomKeyBasedDeps(rng, catalog, {});
    SymbolTable symbols;
    RandomQueryParams qp;
    qp.num_conjuncts = 3;
    qp.name_prefix = StrCat("s", seed);
    ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);

    Result<ConjunctiveQuery> q_prime =
        PlantedSuperQuery(rng, q, deps, symbols, 2, 2);
    ASSERT_TRUE(q_prime.ok()) << q_prime.status();
    Result<ContainmentReport> r =
        CheckContainment(q, *q_prime, deps, symbols);
    ASSERT_TRUE(r.ok()) << r.status() << "\nseed " << seed;
    EXPECT_TRUE(r->contained) << "seed " << seed;

    Result<MinimizeReport> m = MinimizeQuery(q, deps, symbols);
    ASSERT_TRUE(m.ok()) << m.status();
    Result<bool> eq = CheckEquivalence(m->query, q, deps, symbols);
    ASSERT_TRUE(eq.ok());
    EXPECT_TRUE(*eq) << "seed " << seed;
  }
}

TEST(IntegrationTest, ChaseAsDatabaseWitnessesItsOwnQuery) {
  // Theorem 1's second half, concretely: the summary row of chaseΣ(Q) is in
  // Q(chaseΣ(Q)) — the identity is a homomorphism.
  Scenario s = KeyBasedEmpDepScenario();
  for (const ConjunctiveQuery& q : s.queries) {
    Chase chase = *BuildChase(q, s.deps, *s.symbols,
                              ChaseVariant::kRequired, ChaseLimits{});
    Instance db = chase.AsInstance();
    std::vector<std::vector<Term>> result = db.Eval(q);
    EXPECT_NE(std::find(result.begin(), result.end(), chase.summary()),
              result.end());
  }
}

TEST(IntegrationTest, EquivalenceIsSymmetricAndReflexive) {
  Scenario s = EmpDepScenario();
  for (const ConjunctiveQuery& q : s.queries) {
    Result<bool> self = CheckEquivalence(q, q, s.deps, *s.symbols);
    ASSERT_TRUE(self.ok());
    EXPECT_TRUE(*self);
  }
  Result<bool> ab =
      CheckEquivalence(s.queries[0], s.queries[1], s.deps, *s.symbols);
  Result<bool> ba =
      CheckEquivalence(s.queries[1], s.queries[0], s.deps, *s.symbols);
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ba.ok());
  EXPECT_EQ(*ab, *ba);
}

}  // namespace
}  // namespace cqchase
