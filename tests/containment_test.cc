#include "core/containment.h"

#include <gtest/gtest.h>

#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "gen/scenarios.h"

namespace cqchase {
namespace {

bool Contained(const ConjunctiveQuery& q, const ConjunctiveQuery& q2,
               const DependencySet& deps, SymbolTable& symbols,
               ContainmentOptions options = {}) {
  Result<ContainmentReport> r =
      CheckContainment(q, q2, deps, symbols, options);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() && r->contained;
}

// --- No dependencies: classical Chandra–Merlin ----------------------------

TEST(ContainmentNoDepsTest, MoreConjunctsAreMoreRestrictive) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("E", {"s", "d"}).ok());
  SymbolTable symbols;
  DependencySet none;
  ConjunctiveQuery p1 = *ParseQuery(catalog, symbols, "ans(x) :- E(x, y)");
  ConjunctiveQuery p2 =
      *ParseQuery(catalog, symbols, "ans(x) :- E(x, y), E(y, z)");
  EXPECT_TRUE(Contained(p2, p1, none, symbols));
  EXPECT_FALSE(Contained(p1, p2, none, symbols));
}

TEST(ContainmentNoDepsTest, EquivalentUpToRedundancy) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("E", {"s", "d"}).ok());
  SymbolTable symbols;
  DependencySet none;
  // E(x,y) with an extra "shadow" conjunct E(x,y2) is equivalent to E(x,y).
  ConjunctiveQuery q = *ParseQuery(catalog, symbols, "ans(x) :- E(x, y)");
  ConjunctiveQuery redundant =
      *ParseQuery(catalog, symbols, "ans(x) :- E(x, y), E(x, y2)");
  Result<bool> eq = CheckEquivalence(q, redundant, none, symbols);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST(ContainmentNoDepsTest, ConstantsBlockContainment) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("E", {"s", "d"}).ok());
  SymbolTable symbols;
  DependencySet none;
  ConjunctiveQuery any = *ParseQuery(catalog, symbols, "ans(x) :- E(x, y)");
  ConjunctiveQuery pinned =
      *ParseQuery(catalog, symbols, "ans(x) :- E(x, '7')");
  EXPECT_TRUE(Contained(pinned, any, none, symbols));
  EXPECT_FALSE(Contained(any, pinned, none, symbols));
}

TEST(ContainmentNoDepsTest, OutputArityMismatchIsInvalid) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("E", {"s", "d"}).ok());
  SymbolTable symbols;
  DependencySet none;
  ConjunctiveQuery a = *ParseQuery(catalog, symbols, "ans(x) :- E(x, y)");
  ConjunctiveQuery b = *ParseQuery(catalog, symbols, "ans() :- E(x, y)");
  Result<ContainmentReport> r = CheckContainment(a, b, none, symbols);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// --- FDs only --------------------------------------------------------------

TEST(ContainmentFdTest, FdMakesQueriesEquivalent) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  SymbolTable symbols;
  DependencySet fd = *ParseDependencies(catalog, "R: 1 -> 2");
  // Under R:1->2, R(x,y),R(x,z) collapses to R(x,y).
  ConjunctiveQuery two =
      *ParseQuery(catalog, symbols, "ans(x) :- R(x, y), R(x, z)");
  ConjunctiveQuery one = *ParseQuery(catalog, symbols, "ans(x) :- R(x, w)");
  Result<bool> eq = CheckEquivalence(two, one, fd, symbols);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
  // Without the FD, equivalence still holds here (y,z independent) — use a
  // case where the FD matters: expose both joined variables in the summary,
  // so only the FD-forced merge makes the repeated-variable head reachable.
  ConjunctiveQuery joined =
      *ParseQuery(catalog, symbols, "ans(x, y, z) :- R(x, y), R(x, z)");
  ConjunctiveQuery collapsed =
      *ParseQuery(catalog, symbols, "ans(x, w, w) :- R(x, w)");
  DependencySet none;
  EXPECT_TRUE(Contained(joined, collapsed, fd, symbols));
  EXPECT_FALSE(Contained(joined, collapsed, none, symbols));
  // The reverse direction never needs the FD: identifying variables of
  // `joined` is itself a homomorphism joined -> collapsed.
  EXPECT_TRUE(Contained(collapsed, joined, none, symbols));
}

TEST(ContainmentFdTest, ConstantClashMeansContainedInEverything) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  SymbolTable symbols;
  DependencySet fd = *ParseDependencies(catalog, "R: 1 -> 2");
  ConjunctiveQuery clash =
      *ParseQuery(catalog, symbols, "ans(x) :- R(x, '1'), R(x, '2')");
  ConjunctiveQuery other = *ParseQuery(catalog, symbols, "ans(u) :- R(u, u)");
  EXPECT_TRUE(Contained(clash, other, fd, symbols));
  EXPECT_FALSE(Contained(other, clash, fd, symbols));
}

// --- INDs: the paper's introduction example --------------------------------

TEST(ContainmentIndTest, IntroExampleEquivalentUnderInd) {
  Scenario s = EmpDepScenario();
  // Q1 ⊆ Q2 always (drop the DEP conjunct).
  EXPECT_TRUE(Contained(s.queries[0], s.queries[1], s.deps, *s.symbols));
  // Q2 ⊆ Q1 only because of the IND.
  EXPECT_TRUE(Contained(s.queries[1], s.queries[0], s.deps, *s.symbols));
  DependencySet none;
  EXPECT_FALSE(Contained(s.queries[1], s.queries[0], none, *s.symbols));
}

TEST(ContainmentIndTest, IntroExampleKeyBasedVariant) {
  Scenario s = KeyBasedEmpDepScenario();
  Result<bool> eq = CheckEquivalence(s.queries[0], s.queries[1], s.deps,
                                     *s.symbols);
  ASSERT_TRUE(eq.ok()) << eq.status();
  EXPECT_TRUE(*eq);
}

TEST(ContainmentIndTest, Fig1InfiniteChaseStillDecidable) {
  // Containment against a query requiring the deep part of the chase.
  Scenario s = Fig1Scenario();
  // Q' asks for an S-fact reachable from the R-fact: holds via level 1.
  ConjunctiveQuery q_prime = *ParseQuery(
      *s.catalog, *s.symbols, "ans(c) :- R(a, b, c), S(a, c, w)");
  EXPECT_TRUE(Contained(s.queries[0], q_prime, s.deps, *s.symbols));
  // Q'' asks for a T-fact with the same first column: level 1 again.
  ConjunctiveQuery q_t =
      *ParseQuery(*s.catalog, *s.symbols, "ans(c) :- R(a, b, c), T(a, t)");
  EXPECT_TRUE(Contained(s.queries[0], q_t, s.deps, *s.symbols));
  // A two-step pattern: R at the root and another R two levels down sharing
  // the first column.
  ConjunctiveQuery q_deep = *ParseQuery(
      *s.catalog, *s.symbols,
      "ans(c) :- R(a, b, c), S(a, c, u), R(a, u, v)");
  EXPECT_TRUE(Contained(s.queries[0], q_deep, s.deps, *s.symbols));
  // Something the chase never produces: an S-fact looping back to b.
  ConjunctiveQuery q_bad = *ParseQuery(
      *s.catalog, *s.symbols, "ans(c) :- R(a, b, c), S(a, b, w)");
  EXPECT_FALSE(Contained(s.queries[0], q_bad, s.deps, *s.symbols));
}

TEST(ContainmentIndTest, WitnessLevelWithinTheorem2Bound) {
  Scenario s = Fig1Scenario();
  ConjunctiveQuery q_deep = *ParseQuery(
      *s.catalog, *s.symbols,
      "ans(c) :- R(a, b, c), S(a, c, u), R(a, u, v)");
  Result<ContainmentReport> r =
      CheckContainment(s.queries[0], q_deep, s.deps, *s.symbols);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->contained);
  EXPECT_GT(r->level_bound, 0u);
  EXPECT_LE(r->witness_max_level, r->level_bound);
  EXPECT_EQ(r->level_bound,
            Theorem2LevelBound(q_deep.conjuncts().size(), s.deps.size(),
                               s.deps.MaxIndWidth()));
}

TEST(ContainmentIndTest, BothChaseVariantsAgree) {
  Scenario s = Fig1Scenario();
  ConjunctiveQuery q_deep = *ParseQuery(
      *s.catalog, *s.symbols,
      "ans(c) :- R(a, b, c), S(a, c, u), R(a, u, v)");
  ConjunctiveQuery q_bad = *ParseQuery(
      *s.catalog, *s.symbols, "ans(c) :- R(a, b, c), S(a, b, w)");
  for (const ConjunctiveQuery* q_prime : {&q_deep, &q_bad}) {
    ContainmentOptions with_o;
    with_o.variant = ChaseVariant::kOblivious;
    ContainmentOptions with_r;
    with_r.variant = ChaseVariant::kRequired;
    EXPECT_EQ(
        Contained(s.queries[0], *q_prime, s.deps, *s.symbols, with_o),
        Contained(s.queries[0], *q_prime, s.deps, *s.symbols, with_r));
  }
}

TEST(ContainmentIndTest, GeneralMixedSetsAreUnimplementedByDefault) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  SymbolTable symbols;
  // FD+IND but not key-based (IND lhs overlaps the key).
  DependencySet deps =
      *ParseDependencies(catalog, "R: 1 -> 2; R[1] <= R[2]");
  ConjunctiveQuery q = *ParseQuery(catalog, symbols, "ans(x) :- R(x, y)");
  ConjunctiveQuery q2 = *ParseQuery(catalog, symbols, "ans(x) :- R(x, z)");
  Result<ContainmentReport> r = CheckContainment(q, q2, deps, symbols);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
  // Semi-decision mode can still confirm this (trivially true) containment.
  ContainmentOptions semi;
  semi.allow_semidecision = true;
  EXPECT_TRUE(Contained(q, q2, deps, symbols, semi));
}

TEST(ContainmentIndTest, SemidecisionReportsExhaustionWhenUndecidable) {
  // Section 4 Σ (FD+IND, not key-based): Q1 ⊆∞ Q2 is FALSE, and the R-chase
  // is infinite, so the sound semi-decision must give up rather than answer.
  Scenario s = Section4Scenario();
  ContainmentOptions semi;
  semi.allow_semidecision = true;
  semi.limits.max_level = 12;
  Result<ContainmentReport> r = CheckContainment(
      s.queries[0], s.queries[1], s.deps, *s.symbols, semi);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(Theorem2BoundTest, FormulaAndSaturation) {
  EXPECT_EQ(Theorem2LevelBound(3, 3, 2), 3u * 3u * 9u);
  EXPECT_EQ(Theorem2LevelBound(1, 1, 1), 2u);
  EXPECT_EQ(Theorem2LevelBound(5, 4, 0), 20u);  // FD-only sets: (0+1)^0 = 1
  EXPECT_EQ(Theorem2LevelBound(0, 3, 1), 0u);
  EXPECT_EQ(Theorem2LevelBound(2, 0, 0), 0u);   // empty Σ
  // Saturation instead of overflow.
  EXPECT_EQ(Theorem2LevelBound(1u << 20, 1u << 20, 60),
            std::numeric_limits<uint64_t>::max());
}

}  // namespace
}  // namespace cqchase
