#include "data/instance.h"

#include <gtest/gtest.h>

#include "cq/cq_parser.h"
#include "deps/deps_parser.h"

namespace cqchase {
namespace {

class InstanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddRelation("EMP", {"eno", "sal", "dept"}).ok());
    ASSERT_TRUE(catalog_.AddRelation("DEP", {"dept", "loc"}).ok());
  }

  Term C(std::string_view name) { return symbols_.InternConstant(name); }

  Catalog catalog_;
  SymbolTable symbols_;
};

TEST_F(InstanceTest, AddRemoveContains) {
  Instance db(&catalog_);
  ASSERT_TRUE(db.AddTuple(0, {C("e1"), C("10"), C("toys")}).ok());
  ASSERT_TRUE(db.AddTuple(0, {C("e1"), C("10"), C("toys")}).ok());  // dup
  EXPECT_EQ(db.TotalTuples(), 1u);
  EXPECT_TRUE(db.Contains(0, {C("e1"), C("10"), C("toys")}));
  EXPECT_TRUE(db.RemoveTuple(0, {C("e1"), C("10"), C("toys")}));
  EXPECT_FALSE(db.RemoveTuple(0, {C("e1"), C("10"), C("toys")}));
  EXPECT_TRUE(db.empty());
}

TEST_F(InstanceTest, ArityMismatchRejected) {
  Instance db(&catalog_);
  EXPECT_EQ(db.AddTuple(0, {C("e1")}).code(), StatusCode::kInvalidArgument);
}

TEST_F(InstanceTest, FdSatisfaction) {
  Instance db(&catalog_);
  ASSERT_TRUE(db.AddTuple(0, {C("e1"), C("10"), C("toys")}).ok());
  ASSERT_TRUE(db.AddTuple(0, {C("e2"), C("20"), C("toys")}).ok());
  FunctionalDependency fd = *ParseFd(catalog_, "EMP: eno -> sal");
  EXPECT_TRUE(db.Satisfies(fd));
  ASSERT_TRUE(db.AddTuple(0, {C("e1"), C("30"), C("toys")}).ok());
  EXPECT_FALSE(db.Satisfies(fd));
}

TEST_F(InstanceTest, IndSatisfaction) {
  Instance db(&catalog_);
  InclusionDependency ind = *ParseInd(catalog_, "EMP[dept] <= DEP[dept]");
  EXPECT_TRUE(db.Satisfies(ind));  // vacuous
  ASSERT_TRUE(db.AddTuple(0, {C("e1"), C("10"), C("toys")}).ok());
  EXPECT_FALSE(db.Satisfies(ind));
  ASSERT_TRUE(db.AddTuple(1, {C("toys"), C("nyc")}).ok());
  EXPECT_TRUE(db.Satisfies(ind));
}

TEST_F(InstanceTest, ViolationsListsOffenders) {
  Instance db(&catalog_);
  ASSERT_TRUE(db.AddTuple(0, {C("e1"), C("10"), C("toys")}).ok());
  DependencySet deps = *ParseDependencies(
      catalog_, "EMP: eno -> sal; EMP[dept] <= DEP[dept]");
  std::vector<std::string> v = db.Violations(deps, symbols_);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], "EMP[dept] <= DEP[dept]");
}

TEST_F(InstanceTest, EvalIntroExample) {
  Instance db(&catalog_);
  ASSERT_TRUE(db.AddTuple(0, {C("e1"), C("10"), C("toys")}).ok());
  ASSERT_TRUE(db.AddTuple(0, {C("e2"), C("20"), C("food")}).ok());
  ASSERT_TRUE(db.AddTuple(1, {C("toys"), C("nyc")}).ok());

  ConjunctiveQuery q1 =
      *ParseQuery(catalog_, symbols_, "ans(e) :- EMP(e, s, d), DEP(d, l)");
  ConjunctiveQuery q2 =
      *ParseQuery(catalog_, symbols_, "ans(e) :- EMP(e, s, d)");

  // food has no DEP row: Q1 returns only e1; Q2 returns both.
  EXPECT_EQ(db.Eval(q1), (std::vector<std::vector<Term>>{{C("e1")}}));
  EXPECT_EQ(db.Eval(q2),
            (std::vector<std::vector<Term>>{{C("e1")}, {C("e2")}}));
  EXPECT_TRUE(db.EvalContained(q1, q2));
  EXPECT_FALSE(db.EvalContained(q2, q1));
}

TEST_F(InstanceTest, EvalRespectsConstantsAndRepeatedVars) {
  Instance db(&catalog_);
  ASSERT_TRUE(db.AddTuple(1, {C("toys"), C("toys")}).ok());
  ASSERT_TRUE(db.AddTuple(1, {C("toys"), C("nyc")}).ok());

  ConjunctiveQuery with_const =
      *ParseQuery(catalog_, symbols_, "ans(d) :- DEP(d, 'nyc')");
  EXPECT_EQ(db.Eval(with_const),
            (std::vector<std::vector<Term>>{{C("toys")}}));

  ConjunctiveQuery repeated =
      *ParseQuery(catalog_, symbols_, "ans(d) :- DEP(d, d)");
  EXPECT_EQ(db.Eval(repeated),
            (std::vector<std::vector<Term>>{{C("toys")}}));
}

TEST_F(InstanceTest, EvalBooleanQuery) {
  Instance db(&catalog_);
  ConjunctiveQuery boolean =
      *ParseQuery(catalog_, symbols_, "ans() :- DEP(d, l)");
  EXPECT_TRUE(db.Eval(boolean).empty());
  ASSERT_TRUE(db.AddTuple(1, {C("toys"), C("nyc")}).ok());
  // Non-empty result is the single empty tuple.
  EXPECT_EQ(db.Eval(boolean).size(), 1u);
}

TEST_F(InstanceTest, EvalEmptyQueryIsEmpty) {
  Instance db(&catalog_);
  ASSERT_TRUE(db.AddTuple(1, {C("toys"), C("nyc")}).ok());
  ConjunctiveQuery q(&catalog_, &symbols_);
  q.SetSummary({symbols_.InternDistVar("x")});
  q.MarkEmptyQuery();
  EXPECT_TRUE(db.Eval(q).empty());
}

TEST_F(InstanceTest, RepairAddsIndWitnesses) {
  Instance db(&catalog_);
  ASSERT_TRUE(db.AddTuple(0, {C("e1"), C("10"), C("toys")}).ok());
  DependencySet deps =
      *ParseDependencies(catalog_, "EMP[dept] <= DEP[dept]");
  ASSERT_TRUE(RepairToSatisfy(deps, symbols_, 10, db).ok());
  EXPECT_TRUE(db.Satisfies(deps));
  EXPECT_EQ(db.tuples(1).size(), 1u);
  EXPECT_EQ(db.tuples(1)[0][0], C("toys"));
}

TEST_F(InstanceTest, RepairDeletesFdViolations) {
  Instance db(&catalog_);
  ASSERT_TRUE(db.AddTuple(0, {C("e1"), C("10"), C("toys")}).ok());
  ASSERT_TRUE(db.AddTuple(0, {C("e1"), C("20"), C("toys")}).ok());
  DependencySet deps = *ParseDependencies(catalog_, "EMP: eno -> sal");
  ASSERT_TRUE(RepairToSatisfy(deps, symbols_, 10, db).ok());
  EXPECT_TRUE(db.Satisfies(deps));
  EXPECT_EQ(db.tuples(0).size(), 1u);
}

TEST_F(InstanceTest, RepairDivergenceIsReported) {
  // R: 2 -> 1 with R[2] ⊆ R[1] diverges on a seed tuple when every repair
  // introduces a fresh first-column value (Section 4's engine of infinity).
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  Instance db(&catalog);
  ASSERT_TRUE(db.AddTuple(0, {C("c1"), C("c2")}).ok());
  DependencySet deps = *ParseDependencies(catalog, "R[2] <= R[1]");
  Status s = RepairToSatisfy(deps, symbols_, 5, db);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST_F(InstanceTest, ToStringIsSortedAndStable) {
  Instance db(&catalog_);
  ASSERT_TRUE(db.AddTuple(1, {C("b"), C("x")}).ok());
  ASSERT_TRUE(db.AddTuple(1, {C("a"), C("y")}).ok());
  std::string text = db.ToString(symbols_);
  EXPECT_NE(text.find("DEP"), std::string::npos);
  EXPECT_LT(text.find("(a, y)"), text.find("(b, x)"));
}

}  // namespace
}  // namespace cqchase
