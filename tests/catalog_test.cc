#include "schema/catalog.h"

#include <gtest/gtest.h>

namespace cqchase {
namespace {

TEST(CatalogTest, AddAndLookupRelations) {
  Catalog c;
  Result<RelationId> emp = c.AddRelation("EMP", {"eno", "sal", "dept"});
  ASSERT_TRUE(emp.ok());
  Result<RelationId> dep = c.AddRelation("DEP", {"dept", "loc"});
  ASSERT_TRUE(dep.ok());
  EXPECT_EQ(c.num_relations(), 2u);
  EXPECT_EQ(c.FindRelation("EMP"), *emp);
  EXPECT_EQ(c.FindRelation("DEP"), *dep);
  EXPECT_EQ(c.FindRelation("NOPE"), std::nullopt);
  EXPECT_EQ(c.arity(*emp), 3u);
  EXPECT_EQ(c.relation(*dep).name(), "DEP");
}

TEST(CatalogTest, AttributeIndexLookup) {
  Catalog c;
  RelationId r = *c.AddRelation("R", {"a", "b", "c"});
  EXPECT_EQ(c.relation(r).AttributeIndex("a"), 0u);
  EXPECT_EQ(c.relation(r).AttributeIndex("c"), 2u);
  EXPECT_EQ(c.relation(r).AttributeIndex("z"), std::nullopt);
}

TEST(CatalogTest, RejectsDuplicateRelation) {
  Catalog c;
  ASSERT_TRUE(c.AddRelation("R", {"a"}).ok());
  Result<RelationId> dup = c.AddRelation("R", {"b"});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);
}

TEST(CatalogTest, RejectsDuplicateAttribute) {
  Catalog c;
  Result<RelationId> r = c.AddRelation("R", {"a", "a"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CatalogTest, RejectsZeroArity) {
  Catalog c;
  EXPECT_FALSE(c.AddRelation("R", {}).ok());
}

TEST(CatalogTest, ToStringRendersScheme) {
  Catalog c;
  ASSERT_TRUE(c.AddRelation("EMP", {"eno", "sal"}).ok());
  ASSERT_TRUE(c.AddRelation("DEP", {"dept"}).ok());
  EXPECT_EQ(c.ToString(), "EMP(eno, sal); DEP(dept)");
}

}  // namespace
}  // namespace cqchase
