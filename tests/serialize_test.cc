// The verdict store's wire format: primitive round-trips, bounds-checked
// reads on truncated input, checksummed framing, and the verdict-entry
// codec's refusal to cast unvalidated bytes into enums. Everything here is
// the "hostile input" half of the store's trust model — a byte that cannot
// be verified must fail decode, never become a verdict.
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "engine/serialize.h"
#include "engine/sigma_class.h"

namespace cqchase {
namespace {

StoredVerdict SampleVerdict() {
  StoredVerdict v;
  v.contained = true;
  v.chase_outcome = 1;  // kTruncated
  v.sigma_class = 3;    // kIndOnly
  v.strategy = 3;       // kIterativeDeepening
  v.witness_max_level = 7;
  v.chase_levels = 9;
  v.level_bound = 123456789ULL;
  v.chase_conjuncts = 424242ULL;
  v.certified = true;
  v.certificate_depth = 5;
  return v;
}

void ExpectEqualVerdicts(const StoredVerdict& a, const StoredVerdict& b) {
  EXPECT_EQ(a.contained, b.contained);
  EXPECT_EQ(a.chase_outcome, b.chase_outcome);
  EXPECT_EQ(a.sigma_class, b.sigma_class);
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.witness_max_level, b.witness_max_level);
  EXPECT_EQ(a.chase_levels, b.chase_levels);
  EXPECT_EQ(a.level_bound, b.level_bound);
  EXPECT_EQ(a.chase_conjuncts, b.chase_conjuncts);
  EXPECT_EQ(a.certified, b.certified);
  EXPECT_EQ(a.certificate_depth, b.certificate_depth);
}

// --- primitives --------------------------------------------------------------

TEST(WireTest, PrimitiveRoundTrip) {
  std::string buf;
  wire::PutU8(buf, 0xAB);
  wire::PutU32(buf, 0xDEADBEEFu);
  wire::PutU64(buf, std::numeric_limits<uint64_t>::max() - 1);
  wire::PutString(buf, "canonical|key|bytes");
  wire::PutString(buf, "");  // empty strings are legal

  wire::ByteReader r(buf);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  std::string s, empty;
  ASSERT_TRUE(r.ReadU8(&u8));
  ASSERT_TRUE(r.ReadU32(&u32));
  ASSERT_TRUE(r.ReadU64(&u64));
  ASSERT_TRUE(r.ReadString(&s));
  ASSERT_TRUE(r.ReadString(&empty));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, std::numeric_limits<uint64_t>::max() - 1);
  EXPECT_EQ(s, "canonical|key|bytes");
  EXPECT_EQ(empty, "");
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.ok());
}

TEST(WireTest, TruncatedReadsFailAndStick) {
  std::string buf;
  wire::PutU32(buf, 42);
  buf.pop_back();  // 3 of 4 bytes

  wire::ByteReader r(buf);
  uint32_t v = 7;
  EXPECT_FALSE(r.ReadU32(&v));
  EXPECT_FALSE(r.ok());
  // Once bad, always bad: no read after a failure may "succeed".
  uint8_t b = 0;
  EXPECT_FALSE(r.ReadU8(&b));
}

TEST(WireTest, StringLengthPrefixBeyondBufferFails) {
  std::string buf;
  wire::PutU32(buf, 1000);  // claims 1000 bytes follow
  buf += "short";
  wire::ByteReader r(buf);
  std::string s;
  EXPECT_FALSE(r.ReadString(&s));
  EXPECT_FALSE(r.ok());
}

TEST(WireTest, Fnv1a64MatchesKnownVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(wire::Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(wire::Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(wire::Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

// --- framing -----------------------------------------------------------------

TEST(WireTest, FramedRoundTrip) {
  std::string buf;
  wire::PutFramed(buf, "payload one");
  wire::PutFramed(buf, "");
  wire::PutFramed(buf, std::string(1000, 'x'));

  wire::ByteReader r(buf);
  std::string p;
  ASSERT_TRUE(wire::ReadFramed(r, &p).ok());
  EXPECT_EQ(p, "payload one");
  ASSERT_TRUE(wire::ReadFramed(r, &p).ok());
  EXPECT_EQ(p, "");
  ASSERT_TRUE(wire::ReadFramed(r, &p).ok());
  EXPECT_EQ(p, std::string(1000, 'x'));
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireTest, FrameChecksumMismatchDetected) {
  std::string buf;
  wire::PutFramed(buf, "some payload bytes");
  buf.back() ^= 0x01;  // flip one payload bit

  wire::ByteReader r(buf);
  std::string p;
  Status s = wire::ReadFramed(r, &p);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, TruncatedFrameDetected) {
  std::string buf;
  wire::PutFramed(buf, "some payload bytes");
  buf.resize(buf.size() - 5);  // torn mid-payload

  wire::ByteReader r(buf);
  std::string p;
  EXPECT_FALSE(wire::ReadFramed(r, &p).ok());
}

// --- verdict entries ---------------------------------------------------------

TEST(VerdictEntryTest, RoundTripAllFields) {
  const std::string key = "V1|sigma-key|task-key";
  std::string buf;
  EncodeVerdictEntry(key, SampleVerdict(), buf);

  wire::ByteReader r(buf);
  std::string decoded_key;
  StoredVerdict decoded;
  ASSERT_TRUE(DecodeVerdictEntry(r, &decoded_key, &decoded).ok());
  EXPECT_EQ(decoded_key, key);
  ExpectEqualVerdicts(decoded, SampleVerdict());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(VerdictEntryTest, TruncatedEntryRejected) {
  std::string buf;
  EncodeVerdictEntry("key", SampleVerdict(), buf);
  for (size_t cut = 1; cut < buf.size(); cut += 7) {
    wire::ByteReader r(std::string_view(buf.data(), buf.size() - cut));
    std::string key;
    StoredVerdict v;
    EXPECT_FALSE(DecodeVerdictEntry(r, &key, &v).ok())
        << "cut " << cut << " bytes";
  }
}

TEST(VerdictEntryTest, OutOfRangeEnumsRejected) {
  auto encode_with = [](uint8_t outcome, uint8_t sigma, uint8_t strategy) {
    StoredVerdict v = SampleVerdict();
    v.chase_outcome = outcome;
    v.sigma_class = sigma;
    v.strategy = strategy;
    std::string buf;
    EncodeVerdictEntry("k", v, buf);
    return buf;
  };
  auto decodes = [](const std::string& buf) {
    wire::ByteReader r(buf);
    std::string key;
    StoredVerdict v;
    return DecodeVerdictEntry(r, &key, &v).ok();
  };
  // The SigmaClass boundary tracks the kMaxSigmaClass sentinel: adding an
  // enumerator moves both sides of this check automatically instead of
  // silently widening (or failing to widen) what the decoder accepts.
  const uint8_t max_sigma = static_cast<uint8_t>(kMaxSigmaClass);
  EXPECT_TRUE(decodes(encode_with(2, max_sigma, 4)));  // maxima of each enum
  EXPECT_FALSE(decodes(encode_with(3, 0, 0)));  // ChaseOutcome past end
  EXPECT_FALSE(decodes(encode_with(0, max_sigma + 1, 0)));  // SigmaClass past
  EXPECT_FALSE(decodes(encode_with(0, 0, 5)));  // DecisionStrategy past end
  EXPECT_FALSE(decodes(encode_with(255, 255, 255)));
}

TEST(VerdictEntryTest, NonBooleanFlagRejected) {
  std::string buf;
  EncodeVerdictEntry("k", SampleVerdict(), buf);
  // The `contained` flag is the byte right after the 4-byte key length and
  // 1-byte key "k".
  ASSERT_GT(buf.size(), 5u);
  buf[5] = 2;
  wire::ByteReader r(buf);
  std::string key;
  StoredVerdict v;
  EXPECT_FALSE(DecodeVerdictEntry(r, &key, &v).ok());
}

TEST(SchemaTest, FingerprintIsStableWithinABuild) {
  // Two calls agree (it is a pure function); the exact value is
  // deliberately unasserted — it *should* change when the layout or the
  // canonical-key scheme does.
  EXPECT_EQ(StoreSchemaFingerprint(), StoreSchemaFingerprint());
  EXPECT_NE(StoreSchemaFingerprint(), 0u);
}

}  // namespace
}  // namespace cqchase
