// Parameterized property tests: invariants of the chase and the containment
// decision swept over seeds, chase variants and dependency shapes.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/string_util.h"
#include "chase/chase.h"
#include "chase/chase_graph.h"
#include "core/containment.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "finite/finite_containment.h"
#include "gen/generators.h"
#include "gen/scenarios.h"

namespace cqchase {
namespace {

// --- Chase invariants over random key-based scenarios ----------------------

class KeyBasedChaseProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KeyBasedChaseProperty, SaturatedOrTruncatedChaseSatisfiesSigma) {
  Rng rng(GetParam());
  RandomCatalogParams cp;
  cp.num_relations = 3;
  cp.min_arity = 2;
  cp.max_arity = 4;
  Catalog catalog = RandomCatalog(rng, cp);
  DependencySet deps = RandomKeyBasedDeps(rng, catalog, {});
  SymbolTable symbols;
  RandomQueryParams qp;
  qp.num_conjuncts = 3;
  qp.name_prefix = StrCat("p", GetParam());
  ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);

  // Bounded: key-based R-chases can be infinite with exponential level
  // growth; the properties under test are prefix properties.
  ChaseLimits limits;
  limits.max_level = 6;
  limits.max_conjuncts = 20000;
  Result<Chase> chase =
      BuildChase(q, deps, symbols, ChaseVariant::kRequired, limits);
  ASSERT_TRUE(chase.ok()) << chase.status();
  if (chase->outcome() == ChaseOutcome::kSaturated) {
    // A completed chase, read as a database, satisfies Σ — the property
    // Theorem 1 rests on.
    EXPECT_TRUE(chase->AsInstance().Satisfies(deps))
        << chase->ToString() << deps.ToString(catalog);
  }
  // Key-based R-chases: Lemma 6's symbol-span bound holds regardless of
  // saturation.
  EXPECT_LE(MaxSymbolLevelSpan(*chase), 1u);
}

TEST_P(KeyBasedChaseProperty, Lemma2FactorizationHolds) {
  Rng rng(GetParam() + 1000);
  RandomCatalogParams cp;
  cp.num_relations = 3;
  cp.min_arity = 2;
  cp.max_arity = 3;
  Catalog catalog = RandomCatalog(rng, cp);
  DependencySet deps = RandomKeyBasedDeps(rng, catalog, {});
  SymbolTable symbols;
  RandomQueryParams qp;
  qp.num_conjuncts = 3;
  qp.name_prefix = StrCat("f", GetParam());
  ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);

  ChaseLimits limits;
  limits.max_level = 4;
  limits.max_conjuncts = 20000;
  Result<Chase> direct =
      BuildChase(q, deps, symbols, ChaseVariant::kRequired, limits);
  ASSERT_TRUE(direct.ok()) << direct.status();
  Result<Chase> factored = FactorizedRChase(q, deps, symbols, limits);
  ASSERT_TRUE(factored.ok()) << factored.status();
  EXPECT_TRUE(QueriesIsomorphic(direct->AsQuery(), factored->AsQuery()))
      << "direct:\n" << direct->ToString()
      << "factored:\n" << factored->ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyBasedChaseProperty,
                         ::testing::Range<uint64_t>(1, 13));

// --- Chase determinism and stability over IND-only sets --------------------

class IndChaseProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndChaseProperty, VariantsDecideContainmentIdentically) {
  Rng rng(GetParam());
  RandomCatalogParams cp;
  cp.num_relations = 2;
  cp.min_arity = 2;
  cp.max_arity = 3;
  Catalog catalog = RandomCatalog(rng, cp);
  RandomIndParams ip;
  ip.count = 3;
  ip.width = 1;
  DependencySet deps = RandomIndOnlyDeps(rng, catalog, ip);
  SymbolTable symbols;
  RandomQueryParams qp;
  qp.num_conjuncts = 2;
  qp.name_prefix = StrCat("va", GetParam());
  ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);
  qp.name_prefix = StrCat("vb", GetParam());
  qp.num_conjuncts = 2;
  ConjunctiveQuery q_prime = RandomQuery(rng, catalog, symbols, qp);

  ContainmentOptions with_r;
  with_r.variant = ChaseVariant::kRequired;
  ContainmentOptions with_o;
  with_o.variant = ChaseVariant::kOblivious;
  with_o.limits.max_conjuncts = 500000;
  Result<ContainmentReport> r =
      CheckContainment(q, q_prime, deps, symbols, with_r);
  Result<ContainmentReport> o =
      CheckContainment(q, q_prime, deps, symbols, with_o);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(o.ok()) << o.status();
  EXPECT_EQ(r->contained, o->contained)
      << q.ToString() << "  vs  " << q_prime.ToString() << "\nunder "
      << deps.ToString(catalog);
}

TEST_P(IndChaseProperty, ContainmentIsReflexiveAndMonotone) {
  Rng rng(GetParam() + 500);
  RandomCatalogParams cp;
  cp.num_relations = 2;
  cp.min_arity = 2;
  cp.max_arity = 3;
  Catalog catalog = RandomCatalog(rng, cp);
  RandomIndParams ip;
  ip.count = 2;
  ip.width = 1;
  DependencySet deps = RandomIndOnlyDeps(rng, catalog, ip);
  SymbolTable symbols;
  RandomQueryParams qp;
  qp.num_conjuncts = 3;
  qp.name_prefix = StrCat("m", GetParam());
  ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);

  // Q ⊆ Q.
  Result<ContainmentReport> self = CheckContainment(q, q, deps, symbols);
  ASSERT_TRUE(self.ok()) << self.status();
  EXPECT_TRUE(self->contained);

  // Dropping a conjunct of Q weakens it: Q ⊆ Q-minus-one.
  if (q.conjuncts().size() > 1) {
    ConjunctiveQuery weaker(&catalog, &symbols);
    bool safe = true;
    for (size_t i = 1; i < q.conjuncts().size(); ++i) {
      weaker.AddConjunct(q.conjuncts()[i]);
    }
    weaker.SetSummary(q.summary());
    safe = weaker.Validate().ok();
    if (safe) {
      Result<ContainmentReport> mono =
          CheckContainment(q, weaker, deps, symbols);
      ASSERT_TRUE(mono.ok()) << mono.status();
      EXPECT_TRUE(mono->contained);
    }
  }
}

TEST_P(IndChaseProperty, MoreDependenciesNeverBreakContainment) {
  // Monotonicity in Σ: if Q ⊆ Q' under Σ' ⊆ Σ, then also under Σ.
  Rng rng(GetParam() + 900);
  RandomCatalogParams cp;
  cp.num_relations = 2;
  cp.min_arity = 2;
  cp.max_arity = 3;
  Catalog catalog = RandomCatalog(rng, cp);
  RandomIndParams ip;
  ip.count = 3;
  ip.width = 1;
  DependencySet deps = RandomIndOnlyDeps(rng, catalog, ip);
  SymbolTable symbols;
  RandomQueryParams qp;
  qp.num_conjuncts = 2;
  qp.name_prefix = StrCat("w", GetParam());
  ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);
  qp.name_prefix = StrCat("w2_", GetParam());
  ConjunctiveQuery q_prime = RandomQuery(rng, catalog, symbols, qp);

  DependencySet empty;
  Result<ContainmentReport> without =
      CheckContainment(q, q_prime, empty, symbols);
  ASSERT_TRUE(without.ok());
  if (without->contained) {
    Result<ContainmentReport> with_deps =
        CheckContainment(q, q_prime, deps, symbols);
    ASSERT_TRUE(with_deps.ok()) << with_deps.status();
    EXPECT_TRUE(with_deps->contained);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndChaseProperty,
                         ::testing::Range<uint64_t>(1, 13));

// --- Theorem 2 bound sweep --------------------------------------------------

struct BoundCase {
  size_t q_prime_size;
  size_t sigma_size;
  size_t width;
};

class BoundProperty : public ::testing::TestWithParam<BoundCase> {};

TEST_P(BoundProperty, BoundIsMonotoneInEachParameter) {
  const BoundCase& c = GetParam();
  uint64_t base = Theorem2LevelBound(c.q_prime_size, c.sigma_size, c.width);
  EXPECT_GE(Theorem2LevelBound(c.q_prime_size + 1, c.sigma_size, c.width),
            base);
  EXPECT_GE(Theorem2LevelBound(c.q_prime_size, c.sigma_size + 1, c.width),
            base);
  EXPECT_GE(Theorem2LevelBound(c.q_prime_size, c.sigma_size, c.width + 1),
            base);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BoundProperty,
    ::testing::Values(BoundCase{1, 1, 0}, BoundCase{2, 3, 1},
                      BoundCase{3, 3, 2}, BoundCase{4, 2, 3},
                      BoundCase{8, 8, 4}, BoundCase{16, 1, 5}));

// --- Exhaustive finite-vs-infinite agreement on tiny width-1 systems -------

class FiniteAgreementProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FiniteAgreementProperty, InfiniteContainmentImpliesFiniteOnSamples) {
  Rng rng(GetParam() * 31);
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  ASSERT_TRUE(catalog.AddRelation("S", {"a", "b"}).ok());
  RandomIndParams ip;
  ip.count = 2;
  ip.width = 1;
  DependencySet deps = RandomIndOnlyDeps(rng, catalog, ip);
  SymbolTable symbols;
  RandomQueryParams qp;
  qp.num_conjuncts = 2;
  qp.name_prefix = StrCat("fa", GetParam());
  ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);
  qp.name_prefix = StrCat("fb", GetParam());
  ConjunctiveQuery q_prime = RandomQuery(rng, catalog, symbols, qp);

  Result<ContainmentReport> verdict =
      CheckContainment(q, q_prime, deps, symbols);
  ASSERT_TRUE(verdict.ok()) << verdict.status();
  if (verdict->contained) {
    // ⊆∞ implies ⊆f: no sampled finite Σ-database may separate them.
    RandomSearchParams sp;
    sp.samples = 40;
    sp.domain_size = 4;
    sp.tuples_per_relation = 3;
    sp.seed = GetParam();
    Result<std::optional<Instance>> cex =
        RandomFiniteCounterexample(q, q_prime, deps, symbols, sp);
    ASSERT_TRUE(cex.ok()) << cex.status();
    EXPECT_FALSE(cex->has_value())
        << (*cex)->ToString(symbols) << "\n"
        << q.ToString() << " vs " << q_prime.ToString() << " under "
        << deps.ToString(catalog);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FiniteAgreementProperty,
                         ::testing::Range<uint64_t>(1, 17));

}  // namespace
}  // namespace cqchase
