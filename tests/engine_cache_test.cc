// The ContainmentEngine's memoization layer: canonical keys are invariant
// under variable renaming and conjunct permutation (and only then), verdict
// caching hits on isomorphic re-asks and misses on Σ changes, chase prefixes
// are resumed across Q' variations, and — the soundness contract — verdicts
// with the cache on are identical to verdicts with it off, sequentially and
// under CheckMany thread fan-out.
#include <gtest/gtest.h>

#include <vector>

#include "base/rng.h"
#include "base/string_util.h"
#include "core/containment.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "engine/canonical.h"
#include "engine/engine.h"
#include "gen/generators.h"
#include "gen/scenarios.h"

namespace cqchase {
namespace {

class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddRelation("R", {"a", "b"}).ok());
    ASSERT_TRUE(catalog_.AddRelation("S", {"x", "y"}).ok());
    deps_ = *ParseDependencies(catalog_, "R[2] <= S[1]");
  }

  ConjunctiveQuery Parse(const std::string& text) {
    Result<ConjunctiveQuery> q = ParseQuery(catalog_, symbols_, text);
    EXPECT_TRUE(q.ok()) << q.status();
    return *std::move(q);
  }

  Catalog catalog_;
  SymbolTable symbols_;
  DependencySet deps_;
};

// --- Canonical keys ----------------------------------------------------------

TEST_F(CacheTest, CanonicalKeyInvariantUnderRenamingAndPermutation) {
  ConjunctiveQuery a = Parse("ans(u) :- R(u, v), S(v, w)");
  ConjunctiveQuery renamed = Parse("ans(p) :- R(p, q), S(q, t)");
  ConjunctiveQuery permuted = Parse("ans(m) :- S(k, t2), R(m, k)");
  EXPECT_EQ(CanonicalQueryKey(a), CanonicalQueryKey(renamed));
  EXPECT_EQ(CanonicalQueryKey(a), CanonicalQueryKey(permuted));
}

TEST_F(CacheTest, CanonicalKeySeparatesStructurallyDifferentQueries) {
  ConjunctiveQuery joined = Parse("ans(u) :- R(u, v), S(v, w)");
  ConjunctiveQuery forked = Parse("ans(u2) :- R(u2, v2), S(w2, v2)");
  ConjunctiveQuery self = Parse("ans(u3) :- R(u3, u3), S(u3, w3)");
  ConjunctiveQuery constant = Parse("ans(u4) :- R(u4, '1'), S('1', w4)");
  EXPECT_NE(CanonicalQueryKey(joined), CanonicalQueryKey(forked));
  EXPECT_NE(CanonicalQueryKey(joined), CanonicalQueryKey(self));
  EXPECT_NE(CanonicalQueryKey(joined), CanonicalQueryKey(constant));
}

TEST_F(CacheTest, CanonicalKeySeparatesSplicedConstantNames) {
  // Constant names containing quote/comma sequences must not splice into
  // the key syntax: R("x','y", "z") and R("x", "y','z") are different
  // queries and need different keys.
  ConjunctiveQuery a(&catalog_, &symbols_);
  ConjunctiveQuery b(&catalog_, &symbols_);
  a.AddConjunct(Fact{0, {symbols_.InternConstant("x','y"),
                         symbols_.InternConstant("z")}});
  b.AddConjunct(Fact{0, {symbols_.InternConstant("x"),
                         symbols_.InternConstant("y','z")}});
  EXPECT_NE(CanonicalQueryKey(a), CanonicalQueryKey(b));
}

TEST_F(CacheTest, CanonicalSigmaKeyIsOrderInvariantAndContentSensitive) {
  DependencySet ab = *ParseDependencies(catalog_, "R[1] <= S[1]\nS: 1 -> 2");
  DependencySet ba = *ParseDependencies(catalog_, "S: 1 -> 2\nR[1] <= S[1]");
  DependencySet other = *ParseDependencies(catalog_, "R[2] <= S[1]\nS: 1 -> 2");
  EXPECT_EQ(CanonicalSigmaKey(ab), CanonicalSigmaKey(ba));
  EXPECT_NE(CanonicalSigmaKey(ab), CanonicalSigmaKey(other));
}

// --- Verdict-cache behavior --------------------------------------------------

TEST_F(CacheTest, HitOnIsomorphicReAsk) {
  ContainmentEngine engine(&catalog_, &symbols_);
  ConjunctiveQuery q = Parse("ans(u) :- R(u, v)");
  ConjunctiveQuery qp = Parse("ans(u) :- R(u, v), S(v, w)");
  ConjunctiveQuery q_iso = Parse("ans(e) :- R(e, f)");
  ConjunctiveQuery qp_iso = Parse("ans(e) :- S(f, g), R(e, f)");

  Result<EngineVerdict> first = engine.Check(q, qp, deps_);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  Result<EngineVerdict> second = engine.Check(q_iso, qp_iso, deps_);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(first->report.contained, second->report.contained);
  EXPECT_TRUE(first->report.contained);  // the IND supplies the S conjunct

  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
}

TEST_F(CacheTest, MissOnSigmaChange) {
  ContainmentEngine engine(&catalog_, &symbols_);
  ConjunctiveQuery q = Parse("ans(u) :- R(u, v)");
  ConjunctiveQuery qp = Parse("ans(u) :- R(u, v), S(v, w)");
  DependencySet other = *ParseDependencies(catalog_, "R[1] <= S[1]");

  Result<EngineVerdict> first = engine.Check(q, qp, deps_);
  Result<EngineVerdict> second = engine.Check(q, qp, other);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->cache_hit);
  EXPECT_TRUE(first->report.contained);
  EXPECT_FALSE(second->report.contained);  // wrong column: no S(v, _) arises
  EXPECT_EQ(engine.stats().cache_hits, 0u);
}

TEST_F(CacheTest, ChasePrefixReusedAcrossDifferentQPrimes) {
  EngineConfig config;
  config.route_streaming_single_conjunct = false;  // force the chase route
  ContainmentEngine engine(&catalog_, &symbols_, config);
  ConjunctiveQuery q = Parse("ans(u) :- R(u, v)");
  ConjunctiveQuery qp1 = Parse("ans(f) :- S(f, g)");
  ConjunctiveQuery qp2 = Parse("ans(e2) :- R(e2, f2), S(f2, g2)");

  ASSERT_TRUE(engine.Check(q, qp1, deps_).ok());
  ASSERT_TRUE(engine.Check(q, qp2, deps_).ok());
  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.chases_built, 1u);
  EXPECT_GE(stats.chase_prefix_reuses, 1u);
}

TEST_F(CacheTest, ExhaustedCachedChaseStillYieldsContainedVerdict) {
  // A chase that tripped max_conjuncts gets re-cached; a later trivially-
  // contained ask that resumes it re-trips the sticky limit before its
  // first per-level search. The final-search-on-exhaustion path must still
  // find the witness, keeping cache-on verdicts identical to cache-off.
  DependencySet cyclic = *ParseDependencies(
      catalog_, "R[2] <= R[1]\nR[2] <= S[1]\nS[2] <= R[1]");
  ConjunctiveQuery q = Parse("ans(u) :- R(u, v), S(v, w)");
  ConjunctiveQuery absent = Parse("ans(e) :- R(e, '9')");
  ConjunctiveQuery trivial = Parse("ans(m) :- R(m, k)");

  EngineConfig config;
  config.containment.limits.max_conjuncts = 6;
  config.route_streaming_single_conjunct = false;  // force the chase route
  ContainmentEngine engine(&catalog_, &symbols_, config);

  Result<EngineVerdict> first = engine.Check(q, absent, cyclic);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kResourceExhausted);

  Result<EngineVerdict> second = engine.Check(q, trivial, cyclic);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->report.contained);
  EXPECT_GE(engine.stats().chase_prefix_reuses, 1u);
}

TEST_F(CacheTest, ClearCachesForgetsVerdicts) {
  ContainmentEngine engine(&catalog_, &symbols_);
  ConjunctiveQuery q = Parse("ans(u) :- R(u, v)");
  ConjunctiveQuery qp = Parse("ans(u) :- R(u, v), S(v, w)");
  ASSERT_TRUE(engine.Check(q, qp, deps_).ok());
  engine.ClearCaches();
  Result<EngineVerdict> again = engine.Check(q, qp, deps_);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->cache_hit);
}

// --- Cache on/off verdict identity across scenario bundles -------------------

TEST(CacheParityTest, IdenticalVerdictsWithCacheOnAndOffAcrossScenarios) {
  for (Scenario (*make)() : {EmpDepScenario, KeyBasedEmpDepScenario,
                             Fig1Scenario}) {
    Scenario s = make();
    EngineConfig off_config;
    off_config.enable_cache = false;
    ContainmentEngine on(s.catalog.get(), s.symbols.get());
    ContainmentEngine off(s.catalog.get(), s.symbols.get(), off_config);
    for (size_t i = 0; i < s.queries.size(); ++i) {
      for (size_t j = 0; j < s.queries.size(); ++j) {
        Result<EngineVerdict> a = on.Check(s.queries[i], s.queries[j], s.deps);
        Result<EngineVerdict> b = off.Check(s.queries[i], s.queries[j], s.deps);
        ASSERT_EQ(a.ok(), b.ok()) << "pair (" << i << "," << j << ")";
        if (!a.ok()) continue;
        EXPECT_EQ(a->report.contained, b->report.contained)
            << "pair (" << i << "," << j << ")";
        // Re-ask through the warmed cache: same verdict, now a hit.
        Result<EngineVerdict> again =
            on.Check(s.queries[i], s.queries[j], s.deps);
        ASSERT_TRUE(again.ok());
        EXPECT_TRUE(again->cache_hit);
        EXPECT_EQ(again->report.contained, a->report.contained);
      }
    }
  }
}

// --- LRU eviction and per-cache capacity knobs -------------------------------

TEST_F(CacheTest, VerdictCacheEvictsLeastRecentlyUsedNotOldest) {
  EngineConfig config;
  config.verdict_cache_capacity = 2;
  ContainmentEngine engine(&catalog_, &symbols_, config);
  ConjunctiveQuery qp = Parse("ans(p) :- R(p, p0)");

  // A enters first; under FIFO it would be the first casualty.
  ConjunctiveQuery a = Parse("ans(u) :- R(u, v), S(v, w)");
  ASSERT_TRUE(engine.Check(a, qp, deps_).ok());
  for (int i = 0; i < 6; ++i) {
    // Touch A, then insert a fresh key (distinct constant => distinct
    // canonical key). The insertion evicts the *previous* filler, never the
    // just-touched A.
    Result<EngineVerdict> again = engine.Check(a, qp, deps_);
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again->cache_hit) << "round " << i;
    ConjunctiveQuery filler =
        Parse(StrCat("ans(u", i, ") :- R(u", i, ", 'k", i, "')"));
    ASSERT_TRUE(engine.Check(filler, qp, deps_).ok());
    EXPECT_LE(engine.cache_sizes().verdict_entries, 2u);
  }
}

TEST_F(CacheTest, ChaseCacheEvictsLeastRecentlyUsedNotOldest) {
  EngineConfig config;
  config.verdict_cache_capacity = 0;  // force every check down to the chase
  config.chase_cache_capacity = 2;
  config.route_streaming_single_conjunct = false;
  ContainmentEngine engine(&catalog_, &symbols_, config);
  ConjunctiveQuery qp = Parse("ans(p) :- R(p, p0)");

  ConjunctiveQuery a = Parse("ans(u) :- R(u, v), S(v, w)");
  ASSERT_TRUE(engine.Check(a, qp, deps_).ok());
  const int kRounds = 5;
  for (int i = 0; i < kRounds; ++i) {
    ASSERT_TRUE(engine.Check(a, qp, deps_).ok());  // touches A's prefix
    ConjunctiveQuery filler =
        Parse(StrCat("ans(f", i, ") :- R(f", i, ", 'c", i, "'), S(f", i,
                     ", g", i, ")"));
    ASSERT_TRUE(engine.Check(filler, qp, deps_).ok());
    EXPECT_LE(engine.cache_sizes().chase_entries, 2u);
  }
  EngineStats stats = engine.stats();
  // A's chase was built once and resumed every round; FIFO eviction would
  // have rebuilt it each time the fillers cycled the cache.
  EXPECT_EQ(stats.chases_built, 1u + kRounds);
  EXPECT_EQ(stats.chase_prefix_reuses, static_cast<uint64_t>(kRounds));
}

TEST_F(CacheTest, ChaseCacheHammeredAtCapacityStaysBoundedAndConsistent) {
  // Regression for the old exclusive-checkout bookkeeping (O(n) fifo scan,
  // entries erased while in use): hammer acquire/release through a tiny
  // cache and require bounded size plus stable verdicts throughout.
  EngineConfig config;
  config.verdict_cache_capacity = 0;
  config.chase_cache_capacity = 4;
  config.route_streaming_single_conjunct = false;
  ContainmentEngine engine(&catalog_, &symbols_, config);
  ConjunctiveQuery qp = Parse("ans(p) :- R(p, p0), S(p0, p1)");

  std::vector<ConjunctiveQuery> qs;
  for (int i = 0; i < 12; ++i) {
    qs.push_back(Parse(StrCat("ans(h", i, ") :- R(h", i, ", 'v", i, "')")));
  }
  std::vector<bool> first_verdicts;
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < qs.size(); ++i) {
      Result<EngineVerdict> v = engine.Check(qs[i], qp, deps_);
      ASSERT_TRUE(v.ok()) << "round " << round << " q " << i;
      if (round == 0) {
        first_verdicts.push_back(v->report.contained);
      } else {
        EXPECT_EQ(v->report.contained, first_verdicts[i])
            << "round " << round << " q " << i;
      }
      EXPECT_LE(engine.cache_sizes().chase_entries, 4u);
    }
  }
}

TEST_F(CacheTest, SigmaCacheSizesIndependentlyOfVerdictCache) {
  EngineConfig config;
  config.sigma_cache_capacity = 2;
  config.verdict_cache_capacity = 64;
  ContainmentEngine engine(&catalog_, &symbols_, config);
  std::vector<DependencySet> sigmas;
  sigmas.push_back(*ParseDependencies(catalog_, "R[1] <= S[1]"));
  sigmas.push_back(*ParseDependencies(catalog_, "R[2] <= S[1]"));
  sigmas.push_back(*ParseDependencies(catalog_, "R[2] <= S[2]"));
  sigmas.push_back(*ParseDependencies(catalog_, "S[1] <= R[1]"));
  for (const DependencySet& s : sigmas) engine.Analyze(s);
  EXPECT_EQ(engine.cache_sizes().sigma_entries, 2u);

  // The converse: a starved verdict cache must not constrain Σ analyses
  // (the old code evicted the sigma cache against verdict_cache_capacity).
  EngineConfig tight;
  tight.verdict_cache_capacity = 1;
  tight.sigma_cache_capacity = 64;
  ContainmentEngine tight_engine(&catalog_, &symbols_, tight);
  ConjunctiveQuery q = Parse("ans(u) :- R(u, v)");
  ConjunctiveQuery qp = Parse("ans(u) :- R(u, v), S(v, w)");
  for (const DependencySet& s : sigmas) {
    ASSERT_TRUE(tight_engine.Check(q, qp, s).ok());
  }
  EXPECT_EQ(tight_engine.cache_sizes().sigma_entries, sigmas.size());
  EXPECT_EQ(tight_engine.cache_sizes().verdict_entries, 1u);
}

// --- Minimization probes must not pollute the chase-prefix cache -------------

TEST(CacheProbeTest, MinimizeLeavesChaseCacheEmpty) {
  // Each candidate probe chases a one-shot query whose exact key never
  // repeats; caching those prefixes would pin up to chase_cache_capacity
  // dead chases. Tagged non-cacheable, minimization must leave the chase
  // cache empty while still warming the verdict cache.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a", "b"}).ok());
  ASSERT_TRUE(catalog.AddRelation("S", {"x", "y"}).ok());
  SymbolTable symbols;
  DependencySet deps = *ParseDependencies(catalog, "R[2] <= S[1]");
  Result<ConjunctiveQuery> q = ParseQuery(
      catalog, symbols,
      "ans(u) :- R(u, v), S(v, w), S(v, w2), R(u, v2), S(v2, w3)");
  ASSERT_TRUE(q.ok());

  ContainmentEngine engine(&catalog, &symbols);
  Result<MinimizeReport> report = engine.Minimize(*q, deps);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->containment_checks, 0u);
  EXPECT_EQ(engine.cache_sizes().chase_entries, 0u);
  EXPECT_GT(engine.cache_sizes().verdict_entries, 0u);
}

// --- Batch API ---------------------------------------------------------------

TEST(CheckManyTest, ThreadedFanOutMatchesSequentialVerdicts) {
  Rng rng(21);
  RandomCatalogParams cp;
  cp.num_relations = 3;
  cp.min_arity = 2;
  cp.max_arity = 3;
  Catalog catalog = RandomCatalog(rng, cp);
  RandomIndParams ip;
  ip.count = 3;
  ip.width = 1;
  DependencySet deps = RandomIndOnlyDeps(rng, catalog, ip);
  SymbolTable symbols;

  std::vector<ConjunctiveQuery> lhs;
  std::vector<ConjunctiveQuery> rhs;
  for (size_t i = 0; i < 12; ++i) {
    RandomQueryParams qp;
    qp.num_conjuncts = 4;
    qp.name_prefix = StrCat("l", i);
    lhs.push_back(RandomQuery(rng, catalog, symbols, qp));
    qp.num_conjuncts = 2;
    qp.name_prefix = StrCat("r", i);
    rhs.push_back(RandomQuery(rng, catalog, symbols, qp));
  }
  std::vector<ContainmentTask> tasks;
  for (size_t i = 0; i < lhs.size(); ++i) {
    tasks.push_back(ContainmentTask{&lhs[i], &rhs[i], &deps});
  }

  EngineConfig sequential_config;
  sequential_config.enable_cache = false;
  ContainmentEngine sequential(&catalog, &symbols, sequential_config);
  std::vector<Result<EngineVerdict>> expected = sequential.CheckMany(tasks);

  EngineConfig threaded_config;
  threaded_config.num_threads = 4;
  ContainmentEngine threaded(&catalog, &symbols, threaded_config);
  std::vector<Result<EngineVerdict>> got = threaded.CheckMany(tasks);

  ASSERT_EQ(expected.size(), got.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    ASSERT_EQ(expected[i].ok(), got[i].ok()) << "task " << i;
    if (!expected[i].ok()) continue;
    EXPECT_EQ(expected[i]->report.contained, got[i]->report.contained)
        << "task " << i;
  }
}

TEST(CheckManyTest, NullTaskPointerYieldsInvalidArgument) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"a"}).ok());
  SymbolTable symbols;
  ContainmentEngine engine(&catalog, &symbols);
  std::vector<ContainmentTask> tasks(1);  // all pointers null
  std::vector<Result<EngineVerdict>> out = engine.CheckMany(tasks);
  ASSERT_EQ(out.size(), 1u);
  ASSERT_FALSE(out[0].ok());
  EXPECT_EQ(out[0].status().code(), StatusCode::kInvalidArgument);
}

// --- The optimizer's minimization through the warm engine --------------------

TEST(CacheMinimizeTest, MinimizeVerdictsUnchangedByCaching) {
  Scenario s = EmpDepScenario();
  EngineConfig off_config;
  off_config.enable_cache = false;
  ContainmentEngine on(s.catalog.get(), s.symbols.get());
  ContainmentEngine off(s.catalog.get(), s.symbols.get(), off_config);
  Result<MinimizeReport> a = on.Minimize(s.queries[0], s.deps);
  Result<MinimizeReport> b = off.Minimize(s.queries[0], s.deps);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->removed_conjuncts, b->removed_conjuncts);
  EXPECT_EQ(a->containment_checks, b->containment_checks);
  EXPECT_EQ(a->query.ToString(), b->query.ToString());
  EXPECT_EQ(a->removed_conjuncts, 1u);  // the DEP join goes
}

}  // namespace
}  // namespace cqchase
