#include "symbols/symbol_table.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "symbols/term.h"

namespace cqchase {
namespace {

TEST(TermTest, KindsAndPredicates) {
  Term c(TermKind::kConstant, 0);
  Term x(TermKind::kDistVar, 0);
  Term y(TermKind::kNondistVar, 0);
  EXPECT_TRUE(c.is_constant());
  EXPECT_FALSE(c.is_variable());
  EXPECT_TRUE(x.is_dist_var());
  EXPECT_TRUE(x.is_variable());
  EXPECT_TRUE(y.is_nondist_var());
  EXPECT_FALSE(Term::Invalid().is_valid());
}

TEST(TermTest, LexicographicOrderConstantsDvsNdvs) {
  // The FD chase rule's representative choice relies on this order:
  // constants first, then DVs, then NDVs; earlier-created first within kind.
  Term c0(TermKind::kConstant, 0), c1(TermKind::kConstant, 1);
  Term x0(TermKind::kDistVar, 0), x9(TermKind::kDistVar, 9);
  Term n0(TermKind::kNondistVar, 0);
  EXPECT_LT(c0, c1);
  EXPECT_LT(c1, x0);
  EXPECT_LT(x0, x9);
  EXPECT_LT(x9, n0);
  EXPECT_EQ(std::min(n0, c0), c0);
}

TEST(TermTest, EqualityAndHash) {
  Term a(TermKind::kDistVar, 3);
  Term b(TermKind::kDistVar, 3);
  Term c(TermKind::kNondistVar, 3);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(std::hash<Term>{}(a), std::hash<Term>{}(b));
}

TEST(SymbolTableTest, InterningIsIdempotent) {
  SymbolTable t;
  Term a = t.InternConstant("acme");
  Term b = t.InternConstant("acme");
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.Name(a), "acme");
  EXPECT_EQ(t.num_constants(), 1u);
}

TEST(SymbolTableTest, KindsHaveSeparateNamespaces) {
  SymbolTable t;
  Term c = t.InternConstant("x");
  Term d = t.InternDistVar("x");
  Term n = t.InternNondistVar("x");
  EXPECT_NE(c, d);
  EXPECT_NE(d, n);
  EXPECT_EQ(t.Name(c), "x");
  EXPECT_EQ(t.Name(d), "x");
  EXPECT_EQ(t.Name(n), "x");
}

TEST(SymbolTableTest, FindLocatesInternedSymbols) {
  SymbolTable t;
  Term v = t.InternDistVar("e");
  EXPECT_EQ(t.Find(TermKind::kDistVar, "e"), v);
  EXPECT_EQ(t.Find(TermKind::kConstant, "e"), std::nullopt);
  EXPECT_EQ(t.Find(TermKind::kDistVar, "zz"), std::nullopt);
}

TEST(SymbolTableTest, ChaseNdvCarriesProvenance) {
  SymbolTable t;
  NdvProvenance p{/*attribute_index=*/2, /*source_conjunct=*/5,
                  /*ind_index=*/1, /*level=*/3};
  Term n = t.MakeChaseNdv(p);
  ASSERT_TRUE(t.Provenance(n).has_value());
  EXPECT_EQ(t.Provenance(n)->attribute_index, 2u);
  EXPECT_EQ(t.Provenance(n)->source_conjunct, 5u);
  EXPECT_EQ(t.Provenance(n)->ind_index, 1u);
  EXPECT_EQ(t.Provenance(n)->level, 3u);
  // Name encodes the provenance per the paper's naming scheme.
  EXPECT_NE(t.Name(n).find("A2"), std::string::npos);
  EXPECT_NE(t.Name(n).find("L3"), std::string::npos);
}

TEST(SymbolTableTest, ChaseNdvsFollowAllEarlierSymbols) {
  // "this name will lexicographically follow all earlier-generated names"
  SymbolTable t;
  Term early = t.InternNondistVar("s");
  Term n1 = t.MakeChaseNdv(NdvProvenance{});
  Term n2 = t.MakeChaseNdv(NdvProvenance{});
  EXPECT_LT(early, n1);
  EXPECT_LT(n1, n2);
}

TEST(SymbolTableTest, FreshSymbolsAreDistinct) {
  SymbolTable t;
  Term a = t.MakeFreshNondistVar("y");
  Term b = t.MakeFreshNondistVar("y");
  EXPECT_NE(a, b);
  Term c = t.MakeFreshConstant("null");
  Term d = t.MakeFreshConstant("null");
  EXPECT_NE(c, d);
  EXPECT_TRUE(c.is_constant());
}

TEST(SymbolTableTest, ProvenanceAbsentForPlainSymbols) {
  SymbolTable t;
  EXPECT_FALSE(t.Provenance(t.InternConstant("k")).has_value());
  EXPECT_FALSE(t.Provenance(t.InternDistVar("x")).has_value());
}

// --- Sharded NDV arena -------------------------------------------------------

TEST(NdvShardTest, ShardMintsProvenancedNdvsReadableFromTheTable) {
  SymbolTable t;
  SymbolTable::NdvShard shard = t.CreateShard();
  NdvProvenance p{/*attribute_index=*/1, /*source_conjunct=*/7,
                  /*ind_index=*/2, /*level=*/4};
  Term n = shard.MakeChaseNdv(p);
  EXPECT_TRUE(n.is_nondist_var());
  ASSERT_TRUE(t.Provenance(n).has_value());
  EXPECT_EQ(t.Provenance(n)->source_conjunct, 7u);
  EXPECT_NE(t.Name(n).find("A1"), std::string::npos);
  EXPECT_NE(t.Name(n).find("L4"), std::string::npos);
  EXPECT_EQ(t.num_nondist_vars(), 1u);
}

TEST(NdvShardTest, IdsStrictlyIncreaseAcrossBlockRefills) {
  // One shard minting past several block boundaries: the handoff protocol
  // must keep this shard's ids monotone (the paper's "NDVs follow all
  // earlier symbols" invariant, scoped to the minting chase).
  SymbolTable t;
  SymbolTable::NdvShard shard = t.CreateShard();
  Term prev = shard.MakeChaseNdv(NdvProvenance{});
  for (uint32_t i = 0; i < 3 * SymbolTable::kNdvBlockSize; ++i) {
    Term next = shard.MakeChaseNdv(NdvProvenance{});
    EXPECT_LT(prev, next);
    prev = next;
  }
}

TEST(NdvShardTest, DestroyedShardRollsBackTheHighWaterMark) {
  SymbolTable t;
  uint32_t first_id;
  {
    SymbolTable::NdvShard shard = t.CreateShard();
    first_id = shard.MakeChaseNdv(NdvProvenance{}).id();
  }
  // The shard consumed one id of its block and its tail still topped the id
  // space, so the high-water mark rolled back: no kNdvBlockSize hole per
  // sequential chase.
  Term next = t.MakeChaseNdv(NdvProvenance{});
  EXPECT_EQ(next.id(), first_id + 1);
}

TEST(NdvShardTest, AbandonedLowTailIsNeverReused) {
  // A freed range buried under a younger block must become a hole, not be
  // recycled: recycling would hand later mints ids *below* existing symbols
  // and break the lexicographic-follow invariant the FD merge rule keys on.
  SymbolTable t;
  SymbolTable::NdvShard low = t.CreateShard();
  low.MakeChaseNdv(NdvProvenance{});
  SymbolTable::NdvShard high = t.CreateShard();
  Term top = high.MakeChaseNdv(NdvProvenance{});
  { SymbolTable::NdvShard dying = std::move(low); }  // tail is not the top
  Term next = t.MakeChaseNdv(NdvProvenance{});
  EXPECT_GT(next.id(), top.id());
}

TEST(NdvShardTest, BlockHandoffsAreAmortized) {
  SymbolTable t;
  SymbolTable::NdvShard shard = t.CreateShard();
  const uint32_t kMints = 4 * SymbolTable::kNdvBlockSize;
  for (uint32_t i = 0; i < kMints; ++i) shard.MakeChaseNdv(NdvProvenance{});
  // One lock acquisition per block, not per mint.
  EXPECT_EQ(t.ndv_blocks_handed_out(), kMints / SymbolTable::kNdvBlockSize);
  EXPECT_EQ(t.num_nondist_vars(), kMints);
}

TEST(NdvShardTest, ShardIsMovableAndMovedFromShardIsInert) {
  SymbolTable t;
  SymbolTable::NdvShard a = t.CreateShard();
  Term first = a.MakeChaseNdv(NdvProvenance{});
  SymbolTable::NdvShard b = std::move(a);
  EXPECT_FALSE(a.attached());
  Term second = b.MakeChaseNdv(NdvProvenance{});
  EXPECT_LT(first, second);
  EXPECT_EQ(t.num_nondist_vars(), 2u);
}

TEST(NdvShardTest, ShardMintsCoexistWithInterning) {
  // Interned NDVs and shard-minted NDVs share one id space and never
  // collide; interned ones stay findable by name, shard-minted ones are
  // deliberately unindexed (indexing would need the lock on the hot path).
  SymbolTable t;
  Term interned = t.InternNondistVar("y");
  SymbolTable::NdvShard shard = t.CreateShard();
  Term minted = shard.MakeChaseNdv(NdvProvenance{});
  Term interned2 = t.InternNondistVar("z");
  EXPECT_NE(interned.id(), minted.id());
  EXPECT_NE(interned2.id(), minted.id());
  EXPECT_EQ(t.Find(TermKind::kNondistVar, "y"), interned);
  EXPECT_EQ(t.Find(TermKind::kNondistVar, "z"), interned2);
  EXPECT_EQ(t.Find(TermKind::kNondistVar, t.Name(minted)), std::nullopt);
}

}  // namespace
}  // namespace cqchase
