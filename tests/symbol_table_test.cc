#include "symbols/symbol_table.h"

#include <gtest/gtest.h>

#include "symbols/term.h"

namespace cqchase {
namespace {

TEST(TermTest, KindsAndPredicates) {
  Term c(TermKind::kConstant, 0);
  Term x(TermKind::kDistVar, 0);
  Term y(TermKind::kNondistVar, 0);
  EXPECT_TRUE(c.is_constant());
  EXPECT_FALSE(c.is_variable());
  EXPECT_TRUE(x.is_dist_var());
  EXPECT_TRUE(x.is_variable());
  EXPECT_TRUE(y.is_nondist_var());
  EXPECT_FALSE(Term::Invalid().is_valid());
}

TEST(TermTest, LexicographicOrderConstantsDvsNdvs) {
  // The FD chase rule's representative choice relies on this order:
  // constants first, then DVs, then NDVs; earlier-created first within kind.
  Term c0(TermKind::kConstant, 0), c1(TermKind::kConstant, 1);
  Term x0(TermKind::kDistVar, 0), x9(TermKind::kDistVar, 9);
  Term n0(TermKind::kNondistVar, 0);
  EXPECT_LT(c0, c1);
  EXPECT_LT(c1, x0);
  EXPECT_LT(x0, x9);
  EXPECT_LT(x9, n0);
  EXPECT_EQ(std::min(n0, c0), c0);
}

TEST(TermTest, EqualityAndHash) {
  Term a(TermKind::kDistVar, 3);
  Term b(TermKind::kDistVar, 3);
  Term c(TermKind::kNondistVar, 3);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(std::hash<Term>{}(a), std::hash<Term>{}(b));
}

TEST(SymbolTableTest, InterningIsIdempotent) {
  SymbolTable t;
  Term a = t.InternConstant("acme");
  Term b = t.InternConstant("acme");
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.Name(a), "acme");
  EXPECT_EQ(t.num_constants(), 1u);
}

TEST(SymbolTableTest, KindsHaveSeparateNamespaces) {
  SymbolTable t;
  Term c = t.InternConstant("x");
  Term d = t.InternDistVar("x");
  Term n = t.InternNondistVar("x");
  EXPECT_NE(c, d);
  EXPECT_NE(d, n);
  EXPECT_EQ(t.Name(c), "x");
  EXPECT_EQ(t.Name(d), "x");
  EXPECT_EQ(t.Name(n), "x");
}

TEST(SymbolTableTest, FindLocatesInternedSymbols) {
  SymbolTable t;
  Term v = t.InternDistVar("e");
  EXPECT_EQ(t.Find(TermKind::kDistVar, "e"), v);
  EXPECT_EQ(t.Find(TermKind::kConstant, "e"), std::nullopt);
  EXPECT_EQ(t.Find(TermKind::kDistVar, "zz"), std::nullopt);
}

TEST(SymbolTableTest, ChaseNdvCarriesProvenance) {
  SymbolTable t;
  NdvProvenance p{/*attribute_index=*/2, /*source_conjunct=*/5,
                  /*ind_index=*/1, /*level=*/3};
  Term n = t.MakeChaseNdv(p);
  ASSERT_TRUE(t.Provenance(n).has_value());
  EXPECT_EQ(t.Provenance(n)->attribute_index, 2u);
  EXPECT_EQ(t.Provenance(n)->source_conjunct, 5u);
  EXPECT_EQ(t.Provenance(n)->ind_index, 1u);
  EXPECT_EQ(t.Provenance(n)->level, 3u);
  // Name encodes the provenance per the paper's naming scheme.
  EXPECT_NE(t.Name(n).find("A2"), std::string::npos);
  EXPECT_NE(t.Name(n).find("L3"), std::string::npos);
}

TEST(SymbolTableTest, ChaseNdvsFollowAllEarlierSymbols) {
  // "this name will lexicographically follow all earlier-generated names"
  SymbolTable t;
  Term early = t.InternNondistVar("s");
  Term n1 = t.MakeChaseNdv(NdvProvenance{});
  Term n2 = t.MakeChaseNdv(NdvProvenance{});
  EXPECT_LT(early, n1);
  EXPECT_LT(n1, n2);
}

TEST(SymbolTableTest, FreshSymbolsAreDistinct) {
  SymbolTable t;
  Term a = t.MakeFreshNondistVar("y");
  Term b = t.MakeFreshNondistVar("y");
  EXPECT_NE(a, b);
  Term c = t.MakeFreshConstant("null");
  Term d = t.MakeFreshConstant("null");
  EXPECT_NE(c, d);
  EXPECT_TRUE(c.is_constant());
}

TEST(SymbolTableTest, ProvenanceAbsentForPlainSymbols) {
  SymbolTable t;
  EXPECT_FALSE(t.Provenance(t.InternConstant("k")).has_value());
  EXPECT_FALSE(t.Provenance(t.InternDistVar("x")).has_value());
}

}  // namespace
}  // namespace cqchase
