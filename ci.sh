#!/usr/bin/env bash
# Canonical CI entry point, three stages:
#
#  1. Release build + ctest. Built -O3 explicitly (not the cmake default
#     RelWithDebInfo fallback) because stage 2's perf gates measure this
#     tree; gating an unoptimized build would enforce the claim on a
#     configuration nobody ships.
#  2. Enforced perf smokes. bench_engine_cache exits non-zero if cached and
#     uncached verdicts diverge or the >= 2x cache speedup is missed;
#     bench_checkmany_scaling exits non-zero if worker fan-out verdicts
#     diverge or 8-worker throughput misses the target for the host's core
#     count (>= 2x on >= 4 cores); bench_submit_throughput exits non-zero
#     if pooled async submission loses to the legacy per-call thread
#     fan-out (>= 1.0x at 8 workers on >= 4 cores) or verdicts diverge
#     between the two modes.
#  3. ThreadSanitizer pass over the concurrency-bearing binaries (sharded
#     symbol arena, shared chase prefixes, CheckMany fan-out): any data race
#     TSan reports fails CI via the non-zero exit code.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

./build/bench_engine_cache
./build/bench_checkmany_scaling
./build/bench_submit_throughput

TSAN_TESTS=(symbol_table_test chase_test engine_test engine_cache_test
            engine_dispatch_test engine_concurrency_test executor_test
            engine_submit_test)
# Debug, not RelWithDebInfo: per-config flags append *after* CMAKE_CXX_FLAGS,
# and RelWithDebInfo's "-O2 -DNDEBUG" would override -O1 and compile out the
# asserts guarding the arena — the exact checks this stage exists to keep hot.
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -O1 -g" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j "${JOBS}" --target "${TSAN_TESTS[@]}"
for t in "${TSAN_TESTS[@]}"; do
  echo "=== tsan: ${t} ==="
  ./build-tsan/"${t}"
done
