#!/usr/bin/env bash
# Canonical CI entry point, nine stages (each timed; the wall-clock table
# at the end makes slow stages visible in logs):
#
#  1. release-build: Release configure + build. Built -O3 explicitly (not the
#     cmake default RelWithDebInfo fallback) because stage 3's perf gates
#     measure this tree; gating an unoptimized build would enforce the claim
#     on a configuration nobody ships.
#  2. ctest: the full suite. Tests carry LABELS (unit / engine / concurrency
#     / store / chase / net) and per-test TIMEOUT properties, so a hang is a
#     named per-test failure, not a stuck job.
#  3. perf-gates: enforced perf smokes. bench_engine_cache exits non-zero if
#     cached and uncached verdicts diverge or the >= 2x cache speedup is
#     missed; bench_checkmany_scaling if worker fan-out verdicts diverge or
#     8-worker throughput misses the target for the host's core count;
#     bench_submit_throughput if pooled async submission loses to the legacy
#     per-call thread fan-out or verdicts diverge between the two modes;
#     bench_chase_bulk if the set-at-a-time chase core diverges from the
#     scalar oracle (prefix, steps, or terminal status) or misses the >= 2x
#     speedup bound on the wide-Σ workload; bench_chase_parallel if the
#     parallel chase core diverges from the scalar oracle or the bulk core
#     on the same wide-Σ workload, or (on hosts with >= 4 hardware threads)
#     misses the >= 1.5x single-request speedup over the bulk core — on
#     narrower hosts the speedup is report-only, parity stays enforced;
#     bench_reliance if any acyclic
#     FD+IND task fails to decide with allow_semidecision=false (the
#     reliance analyzer's kAcyclicInd fragment must stay a real decision
#     procedure, not a semi-decision in disguise).
#  4. warmstart-gate: the persistent-tier restart contract. Runs
#     bench_store_warmstart twice against the same fresh store directory; the
#     cold run populates the store and checks verdict parity against a
#     store-less engine, the warm run additionally exits non-zero unless it
#     answered the whole repeated workload with zero chases built.
#  5. tier-gate: the distributed-tier contract in-process. bench_tier_stack
#     runs engine A cold (publishing over the loopback RemoteTier to a shared
#     verdict authority) and then engine B with cold local caches, which must
#     answer the whole workload over the remote tier: exit non-zero unless
#     chases_built == 0, remote_hits > 0, and verdicts match the oracle.
#  6. tcp-gate: the distributed-tier contract over real sockets. Starts the
#     standalone verdict_authorityd (store-backed, ephemeral port scraped
#     from its "listening HOST:PORT" line) and runs bench_remote_tcp against
#     it: engine A publishes over TCP, engine B with cold caches must answer
#     the whole workload over the wire — exit non-zero unless chases_built
#     == 0, remote_hits > 0, verdicts match a tier-less oracle, AND the
#     64-task burst took strictly fewer round trips than tasks (the batched
#     kTierOpFetchMany opcode, not 64 per-key fetches). Then SIGTERMs the
#     daemon (graceful drain must exit 0 with a shutdown summary) and
#     restarts it on the same store to prove the published verdicts
#     survived. The daemon is always torn down via trap, pass or fail.
#  7. asan-ubsan: AddressSanitizer + UndefinedBehaviorSanitizer over the
#     store/serialize/engine/tier/net binaries. The store and the tier wire
#     protocol parse attacker-shaped bytes (and their tests feed them
#     corrupted input), so the parsing code runs under ASan+UBSan from day
#     one; -fno-sanitize-recover turns any UB into a non-zero exit.
#  8. tsan: ThreadSanitizer over the concurrency-bearing binaries (sharded
#     symbol arena, shared chase prefixes, parallel witness-class sweeps on
#     the work-stealing pool, CheckMany fan-out, executor fork/join,
#     write-behind store/tier flush, thread-per-connection authority
#     server): any data race fails CI.
#  9. static-analysis: clang-tidy (profile in .clang-tidy: bugprone-*,
#     performance-*, concurrency-*, plus two zero-cost style checks) over
#     every translation unit in compile_commands.json, warnings-as-errors.
#     Hosts without clang-tidy fall back to a strict-warning syntax-only
#     sweep (g++ -fsyntax-only -Wall -Wextra -Werror) over the same
#     compilation database, so the stage never silently no-ops: either the
#     full profile runs or the warning floor does.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

# Peak-RSS per stage: /usr/bin/time is not guaranteed on the CI hosts, so a
# tiny wait4-based wrapper (tools/rsswrap.c) measures each stage's subtree.
# Stages run through `$0 --run-stage <fn>` so the wrapper has a real process
# to exec (bash functions aren't execvp-able); if the wrapper fails to
# compile the stage runs unwrapped and the table prints n/a.
RSSWRAP="build/rsswrap"
mkdir -p build
cc -O2 -o "${RSSWRAP}" tools/rsswrap.c 2>/dev/null || true

STAGE_NAMES=()
STAGE_SECS=()
STAGE_RSS_KB=()
stage() {
  local name="$1"
  shift
  echo ""
  echo "=== stage: ${name} ==="
  local t0=${SECONDS}
  local rss="n/a"
  if [[ -x "${RSSWRAP}" ]]; then
    local rss_file="build/.rsswrap.${name}.kb"
    rm -f "${rss_file}"
    "${RSSWRAP}" "${rss_file}" "$0" --run-stage "$@"
    rss="$(tail -n 1 "${rss_file}" 2>/dev/null || echo n/a)"
    rm -f "${rss_file}"
  else
    "$@"
  fi
  local dt=$(( SECONDS - t0 ))
  STAGE_NAMES+=("${name}")
  STAGE_SECS+=("${dt}")
  STAGE_RSS_KB+=("${rss}")
  echo "=== stage: ${name} ok (${dt}s) ==="
}

release_build() {
  # Compile commands exported for stage 8: the static analysis must see the
  # exact flags the shipped configuration compiles with.
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  cmake --build build -j "${JOBS}"
}

run_ctest() {
  (cd build && ctest --output-on-failure -j "${JOBS}")
}

perf_gates() {
  ./build/bench_engine_cache
  ./build/bench_checkmany_scaling
  ./build/bench_submit_throughput
  ./build/bench_chase_bulk
  ./build/bench_chase_parallel
  ./build/bench_reliance
  # Σ-lineage survival: a 1-IND edit on a warm wide-Σ store must invalidate
  # O(touched) verdicts and every survivor must match a fresh-engine oracle.
  rm -rf build/schema-evolution-store
  ./build/bench_schema_evolution build/schema-evolution-store
}

warmstart_gate() {
  local dir="build/warmstart-store"
  rm -rf "${dir}"
  ./build/bench_store_warmstart "${dir}"          # cold: populate + parity
  ./build/bench_store_warmstart "${dir}" --warm   # warm: zero chases or fail
}

tier_gate() {
  ./build/bench_tier_stack   # engine B over loopback: zero chases or fail
}

tcp_gate() {
  local store="build/tcp-gate-store"
  local log="build/tcp-gate-daemon.log"
  local daemon_pid=""
  rm -rf "${store}"
  # Pass or fail, the daemon never outlives the stage.
  trap '[[ -n "${daemon_pid}" ]] && kill "${daemon_pid}" 2>/dev/null;
        [[ -n "${daemon_pid}" ]] && wait "${daemon_pid}" 2>/dev/null;
        true' RETURN

  ./build/verdict_authorityd --listen 127.0.0.1:0 \
    --store-path "${store}" > "${log}" &
  daemon_pid=$!
  local addr=""
  for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening //p' "${log}" | head -n 1)"
    [[ -n "${addr}" ]] && break
    sleep 0.1
  done
  if [[ -z "${addr}" ]]; then
    echo "FATAL: verdict_authorityd never reported its address" >&2
    cat "${log}" >&2
    return 1
  fi
  echo "daemon up at ${addr} (pid ${daemon_pid})"

  # The enforced gate: cold engine over real TCP, zero chases, batched RTTs.
  ./build/bench_remote_tcp --connect "${addr}"

  # Graceful shutdown: SIGTERM must drain, print the summary, and exit 0.
  kill -TERM "${daemon_pid}"
  wait "${daemon_pid}"
  daemon_pid=""
  grep -q '^shutdown:' "${log}" || {
    echo "FATAL: daemon exited without its shutdown summary" >&2
    cat "${log}" >&2
    return 1
  }

  # Restart on the same store: engine A's published verdicts must survive.
  ./build/verdict_authorityd --listen 127.0.0.1:0 \
    --store-path "${store}" > "${log}.restart" &
  daemon_pid=$!
  local seeded=""
  for _ in $(seq 1 100); do
    seeded="$(grep -Eo 'seeded [0-9]+ entries' "${log}.restart" || true)"
    [[ -n "${seeded}" ]] && break
    sleep 0.1
  done
  kill -TERM "${daemon_pid}"
  wait "${daemon_pid}"
  daemon_pid=""
  if ! [[ "${seeded}" =~ seeded\ [1-9][0-9]*\ entries ]]; then
    echo "FATAL: restarted daemon seeded nothing (got: '${seeded}')" >&2
    cat "${log}.restart" >&2
    return 1
  fi
  echo "restart ${seeded} from the store"
}

# Per-config-flags pattern shared by both sanitizer stages: Debug, not
# RelWithDebInfo, because per-config flags append *after* CMAKE_CXX_FLAGS and
# RelWithDebInfo's "-O2 -DNDEBUG" would override -O1 and compile out the
# asserts guarding the arena — the exact checks these stages exist to keep
# hot.
ASAN_TESTS=(serialize_test store_test tier_test net_test engine_test
            engine_cache_test engine_dispatch_test chase_core_parity_test
            reliance_test executor_test lineage_test delta_migration_test)
asan_ubsan() {
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -O1 -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
  cmake --build build-asan -j "${JOBS}" --target "${ASAN_TESTS[@]}"
  for t in "${ASAN_TESTS[@]}"; do
    echo "=== asan+ubsan: ${t} ==="
    ./build-asan/"${t}"
  done
}

TSAN_TESTS=(symbol_table_test chase_test chase_core_parity_test reliance_test
            engine_test engine_cache_test engine_dispatch_test
            engine_concurrency_test executor_test engine_submit_test
            store_test tier_test net_test lineage_test delta_migration_test)
tsan() {
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -O1 -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build build-tsan -j "${JOBS}" --target "${TSAN_TESTS[@]}"
  for t in "${TSAN_TESTS[@]}"; do
    echo "=== tsan: ${t} ==="
    ./build-tsan/"${t}"
  done
}

# clang-tidy over the exact flags of the shipped build (stage 1 exports
# compile_commands.json for this). On hosts without clang-tidy the stage
# degrades to a strict-warning syntax-only sweep with the same compilation
# database: weaker than the .clang-tidy profile, but it keeps a warning
# floor (-Wall -Wextra -Werror) enforced everywhere the stage runs, and the
# log says loudly which mode ran. The sed extraction relies on CMake's
# stable one-key-per-line JSON layout — jq is not guaranteed on CI hosts.
static_analysis() {
  local db="build/compile_commands.json"
  if [[ ! -f "${db}" ]]; then
    echo "FATAL: ${db} missing (release-build must run first)" >&2
    return 1
  fi
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "mode: clang-tidy ($(clang-tidy --version | head -n 1))"
    local files
    mapfile -t files < <(sed -n 's/^ *"file": "\(.*\)",*$/\1/p' "${db}")
    clang-tidy -p build --quiet "${files[@]}"
  else
    echo "mode: fallback strict-warning sweep (clang-tidy not on this host)"
    local cmd n=0
    while IFS= read -r cmd; do
      # shellcheck disable=SC2086  # the recorded command is word-splittable
      ${cmd} -fsyntax-only -Wall -Wextra -Werror
      n=$(( n + 1 ))
    done < <(sed -n 's/^ *"command": "\(.*\)",*$/\1/p' "${db}")
    echo "swept ${n} translation units clean"
  fi
}

# Re-entrant stage dispatch for the rsswrap wrapper (see above). Must sit
# after every stage function is defined and before any stage runs.
if [[ "${1:-}" == "--run-stage" ]]; then
  shift
  "$@"
  exit $?
fi

stage release-build   release_build
stage ctest           run_ctest
stage perf-gates      perf_gates
stage warmstart-gate  warmstart_gate
stage tier-gate       tier_gate
stage tcp-gate        tcp_gate
stage asan-ubsan      asan_ubsan
stage tsan            tsan
stage static-analysis static_analysis

echo ""
echo "=== stage timings ==="
for i in "${!STAGE_NAMES[@]}"; do
  rss="${STAGE_RSS_KB[$i]}"
  if [[ "${rss}" =~ ^[0-9]+$ ]]; then
    printf '  %-16s %4ss  peak-rss %5d MB\n' \
      "${STAGE_NAMES[$i]}" "${STAGE_SECS[$i]}" $(( rss / 1024 ))
  else
    printf '  %-16s %4ss  peak-rss    n/a\n' \
      "${STAGE_NAMES[$i]}" "${STAGE_SECS[$i]}"
  fi
done
echo "CI OK"
