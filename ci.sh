#!/usr/bin/env bash
# Canonical CI entry point: the tier-1 verify (configure + build + ctest)
# plus one smoke bench. bench_engine_cache exits non-zero if the engine's
# cached and uncached verdicts diverge or the >= 2x cache speedup target is
# missed, so the perf claim is enforced, not just printed.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

cmake -B build -S .
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

./build/bench_engine_cache
