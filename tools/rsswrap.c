/* Peak-RSS wrapper for CI stages on hosts without /usr/bin/time.
 *
 * Usage: rsswrap <outfile> <cmd> [args...]
 *
 * Runs <cmd>, appends the subtree's peak resident set size in KB (wait4's
 * ru_maxrss: the max over the child and every descendant it reaped) to
 * <outfile>, and propagates the child's exit status — so wrapping a stage
 * never changes CI semantics, only adds the measurement.
 */
#include <stdio.h>
#include <string.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

int main(int argc, char** argv) {
  if (argc < 3) {
    fprintf(stderr, "usage: rsswrap <outfile> <cmd> [args...]\n");
    return 2;
  }
  pid_t pid = fork();
  if (pid < 0) {
    perror("rsswrap: fork");
    return 2;
  }
  if (pid == 0) {
    execvp(argv[2], argv + 2);
    perror("rsswrap: execvp");
    _exit(127);
  }
  int status = 0;
  struct rusage ru;
  memset(&ru, 0, sizeof(ru));
  if (wait4(pid, &status, 0, &ru) < 0) {
    perror("rsswrap: wait4");
    return 2;
  }
  FILE* f = fopen(argv[1], "a");
  if (f != NULL) {
    fprintf(f, "%ld\n", (long)ru.ru_maxrss);
    fclose(f);
  }
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return 2;
}
