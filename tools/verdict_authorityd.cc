// verdict_authorityd: the verdict authority as a standalone daemon.
//
//   verdict_authorityd --listen 127.0.0.1:7450 --store-path /var/cq/verdicts
//
// Serves the tier fetch/publish protocol (engine/remote_tier.h) over TCP to
// any number of engine clients. With --store-path the serving map is seeded
// from a VerdictStore at startup and every accepted publish is written
// through to it (flushed periodically and on shutdown), so the authority's
// knowledge survives restarts; without it the map is memory-only.
//
// Prints "listening HOST:PORT" on stdout once the socket is bound (the CI
// gate scrapes this to find an ephemeral port). SIGINT/SIGTERM drain
// gracefully: stop accepting, finish in-flight requests, flush the store,
// print a stats summary, exit 0.
#include <signal.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "engine/remote_tier.h"
#include "net/authority_server.h"
#include "net/socket.h"

namespace {

volatile sig_atomic_t g_stop = 0;

void HandleSignal(int /*sig*/) { g_stop = 1; }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--listen HOST:PORT] [--store-path DIR]\n"
               "  --listen      address to serve on (default 127.0.0.1:0 = "
               "ephemeral port)\n"
               "  --store-path  back the authority with a VerdictStore at "
               "DIR (persistent)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using cqchase::Status;
  using cqchase::VerdictAuthority;

  std::string listen = "127.0.0.1:0";
  std::string store_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--listen" && i + 1 < argc) {
      listen = argv[++i];
    } else if (arg == "--store-path" && i + 1 < argc) {
      store_path = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }

  std::string host;
  uint16_t port = 0;
  Status split = cqchase::net::SplitHostPort(listen, &host, &port);
  if (!split.ok()) {
    std::fprintf(stderr, "bad --listen: %s\n",
                 std::string(split.message()).c_str());
    return 2;
  }

  // Build the authority: store-backed when asked, memory-only otherwise.
  cqchase::net::StoreBackedAuthority backed;
  std::shared_ptr<VerdictAuthority> authority;
  if (!store_path.empty()) {
    auto made = cqchase::net::MakeStoreBackedAuthority(store_path);
    if (!made.ok()) {
      std::fprintf(stderr, "store open failed: %s\n",
                   std::string(made.status().message()).c_str());
      return 1;
    }
    backed = *std::move(made);
    authority = backed.authority;
    std::printf("store %s seeded %zu entries\n", store_path.c_str(),
                authority->size());
  } else {
    authority = std::make_shared<VerdictAuthority>();
  }

  cqchase::net::AuthorityServerOptions server_options;
  server_options.host = host;
  server_options.port = port;
  cqchase::net::VerdictAuthorityServer server(authority, server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "listen failed: %s\n",
                 std::string(started.message()).c_str());
    return 1;
  }
  std::printf("listening %s:%u\n", host.c_str(), unsigned{server.port()});
  std::fflush(stdout);

  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  // Main loop: nothing to do but keep the store durable on a cadence; the
  // server's own threads do the serving.
  auto last_flush = std::chrono::steady_clock::now();
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (backed.store != nullptr) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_flush >= std::chrono::seconds(1)) {
        (void)backed.store->Flush();  // failures retry next cadence
        last_flush = now;
      }
    }
  }

  // Graceful drain: stop the server (joins every handler — no Handle call
  // can touch the publish sink after this), then make the store durable.
  server.Stop();
  if (backed.store != nullptr) {
    Status flushed = backed.store->Flush();
    if (!flushed.ok()) {
      std::fprintf(stderr, "final flush failed: %s\n",
                   std::string(flushed.message()).c_str());
    }
  }
  const cqchase::net::AuthorityServerStats stats = server.stats();
  const VerdictAuthority::Stats astats = authority->stats();
  std::printf(
      "shutdown: connections=%llu requests=%llu hellos=%llu fetches=%llu "
      "fetch_many=%llu publishes_accepted=%llu entries=%zu "
      "handshake_failures=%llu protocol_errors=%llu\n",
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.requests_served),
      static_cast<unsigned long long>(astats.hellos),
      static_cast<unsigned long long>(astats.fetches),
      static_cast<unsigned long long>(astats.fetch_many_requests),
      static_cast<unsigned long long>(astats.publishes_accepted),
      authority->size(),
      static_cast<unsigned long long>(stats.handshake_failures),
      static_cast<unsigned long long>(stats.protocol_errors));
  return 0;
}
