// verdict_storectl: read-only inspection of a VerdictStore directory.
//
//   verdict_storectl dump    --dir /var/cq/verdicts [--limit N]
//   verdict_storectl verify  --dir /var/cq/verdicts
//   verdict_storectl lineage --dir /var/cq/verdicts
//
//   dump     every resident entry (snapshot ∪ log, log wins), one line each
//   verify   walk both files and report every integrity guard the store's
//            own Open() would apply — header magic/version/fingerprint,
//            payload checksum, per-entry decode, torn log tail — without
//            quarantining, truncating, or compacting anything
//   lineage  Σ-lineage summary: entries by confidence and lineage_known,
//            per-Σ-fingerprint population, used-dependency set sizes
//
// The tool is strictly read-only: it parses snapshot.cqvs and log.cqvl with
// the same decoders the store uses (engine/serialize.h) but never writes a
// byte — no quarantine renames, no torn-tail truncation, no legacy-format
// compaction. It respects the store's single-owner flock: if a live
// VerdictStore holds <dir>/LOCK the tool refuses to read (the owner may be
// mid-append), and while the tool itself reads it holds the lock so no store
// can open the directory under it. Exit codes: 0 ok, 1 cannot read (locked,
// missing dir), 2 integrity problems found (verify).
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/string_util.h"
#include "engine/serialize.h"

namespace {

using cqchase::Status;
using cqchase::StoredVerdict;
using cqchase::StrCat;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <dump|verify|lineage> --dir DIR [--limit N]\n"
               "  dump     print every entry (one line each)\n"
               "  verify   check file headers, checksums, and entry decoding\n"
               "  lineage  summarize Sigma-lineage metadata\n"
               "  --dir    verdict store directory (required)\n"
               "  --limit  dump at most N entries (0 = all)\n",
               argv0);
  return 1;
}

// Takes the store's single-owner flock non-blocking. Returns the held fd
// (>= 0), -1 when a live owner holds it, -2 when the lock file does not
// exist (no store ever owned the directory — nothing to exclude against).
int AcquireLock(const std::string& dir) {
  const std::string lock_path = dir + "/LOCK";
  // No O_CREAT: a read-only tool must not add files to the directory.
  const int fd = ::open(lock_path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) return errno == ENOENT ? -2 : -1;
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool ReadFile(const std::string& path, std::string* out, bool* missing) {
  *missing = false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *missing = errno == ENOENT;
    return false;
  }
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  return !read_error;
}

// One parsed store file plus everything verify wants to say about it.
struct FileReport {
  bool present = false;
  bool header_ok = false;    // magic + known version + matching fingerprint
  bool payload_ok = false;   // checksum (snapshot) / all frames whole (log)
  uint32_t version = 0;
  uint64_t entries_decoded = 0;
  uint64_t torn_tail_bytes = 0;  // log only
  std::vector<std::string> problems;
};

// Mirrors VerdictStore::LoadSnapshot's read path without its side effects.
FileReport ParseSnapshot(
    const std::string& path,
    std::vector<std::pair<std::string, StoredVerdict>>* out) {
  FileReport report;
  std::string bytes;
  bool missing = false;
  if (!ReadFile(path, &bytes, &missing)) {
    if (!missing) report.problems.push_back("unreadable");
    return report;
  }
  report.present = true;
  cqchase::wire::ByteReader reader(bytes);
  uint32_t magic = 0;
  uint64_t fingerprint = 0, count = 0, payload_size = 0, checksum = 0;
  if (!reader.ReadU32(&magic) || !reader.ReadU32(&report.version) ||
      !reader.ReadU64(&fingerprint) || !reader.ReadU64(&count) ||
      !reader.ReadU64(&payload_size) || !reader.ReadU64(&checksum)) {
    report.problems.push_back("truncated header");
    return report;
  }
  if (magic != cqchase::kSnapshotMagic) {
    report.problems.push_back("bad magic");
    return report;
  }
  if (cqchase::StoreSchemaFingerprintFor(report.version) == 0) {
    report.problems.push_back(StrCat("unsupported version ", report.version));
    return report;
  }
  if (fingerprint != cqchase::StoreSchemaFingerprintFor(report.version)) {
    report.problems.push_back("schema fingerprint mismatch");
    return report;
  }
  if (payload_size != reader.remaining()) {
    report.problems.push_back("payload size disagrees with file size");
    return report;
  }
  report.header_ok = true;
  std::string_view payload;
  if (!reader.ReadBytes(payload_size, &payload) ||
      cqchase::wire::Fnv1a64(payload) != checksum) {
    report.problems.push_back("payload checksum mismatch");
    return report;
  }
  cqchase::wire::ByteReader entries(payload);
  for (uint64_t i = 0; i < count; ++i) {
    std::string key;
    StoredVerdict verdict;
    Status decoded =
        cqchase::DecodeVerdictEntry(entries, &key, &verdict, report.version);
    if (!decoded.ok()) {
      report.problems.push_back(
          StrCat("entry ", i, " undecodable: ", decoded.message()));
      return report;
    }
    out->emplace_back(std::move(key), std::move(verdict));
    ++report.entries_decoded;
  }
  if (entries.remaining() != 0) {
    report.problems.push_back("payload bytes left after declared entry count");
    return report;
  }
  report.payload_ok = true;
  return report;
}

// Mirrors VerdictStore::ReplayLog's read path; a torn tail is reported, not
// truncated.
FileReport ParseLog(const std::string& path,
                    std::vector<std::pair<std::string, StoredVerdict>>* out) {
  FileReport report;
  std::string bytes;
  bool missing = false;
  if (!ReadFile(path, &bytes, &missing)) {
    if (!missing) report.problems.push_back("unreadable");
    return report;
  }
  report.present = true;
  cqchase::wire::ByteReader reader(bytes);
  std::string header;
  uint32_t magic = 0;
  uint64_t fingerprint = 0;
  if (!cqchase::wire::ReadFramed(reader, &header).ok()) {
    report.problems.push_back("unreadable header frame");
    return report;
  }
  cqchase::wire::ByteReader hr(header);
  if (!hr.ReadU32(&magic) || !hr.ReadU32(&report.version) ||
      !hr.ReadU64(&fingerprint) || magic != cqchase::kLogMagic) {
    report.problems.push_back("bad header frame");
    return report;
  }
  if (cqchase::StoreSchemaFingerprintFor(report.version) == 0) {
    report.problems.push_back(StrCat("unsupported version ", report.version));
    return report;
  }
  if (fingerprint != cqchase::StoreSchemaFingerprintFor(report.version)) {
    report.problems.push_back("schema fingerprint mismatch");
    return report;
  }
  report.header_ok = true;
  size_t good_end = reader.position();
  while (reader.remaining() > 0) {
    std::string payload;
    std::string key;
    StoredVerdict verdict;
    if (!cqchase::wire::ReadFramed(reader, &payload).ok()) break;
    cqchase::wire::ByteReader entry(payload);
    if (!cqchase::DecodeVerdictEntry(entry, &key, &verdict, report.version)
             .ok() ||
        entry.remaining() != 0) {
      break;
    }
    out->emplace_back(std::move(key), std::move(verdict));
    ++report.entries_decoded;
    good_end = reader.position();
  }
  report.torn_tail_bytes = bytes.size() - good_end;
  report.payload_ok = true;  // a torn tail is crash damage, not corruption
  return report;
}

// snapshot ∪ log with the log winning duplicates — the map Open() restores.
std::vector<std::pair<std::string, StoredVerdict>> MergedEntries(
    std::vector<std::pair<std::string, StoredVerdict>> snapshot,
    std::vector<std::pair<std::string, StoredVerdict>> log) {
  std::unordered_map<std::string, size_t> index;
  std::vector<std::pair<std::string, StoredVerdict>> merged;
  merged.reserve(snapshot.size() + log.size());
  for (auto& entry : snapshot) {
    index.emplace(entry.first, merged.size());
    merged.push_back(std::move(entry));
  }
  for (auto& entry : log) {
    auto [it, inserted] = index.emplace(entry.first, merged.size());
    if (inserted) {
      merged.push_back(std::move(entry));
    } else {
      merged[it->second].second = std::move(entry.second);
    }
  }
  return merged;
}

const char* ConfidenceName(uint8_t confidence) {
  switch (static_cast<cqchase::VerdictConfidence>(confidence)) {
    case cqchase::VerdictConfidence::kExact:
      return "exact";
    case cqchase::VerdictConfidence::kMonotoneBound:
      return "monotone-bound";
  }
  return "?";
}

int RunDump(const std::vector<std::pair<std::string, StoredVerdict>>& entries,
            uint64_t limit) {
  uint64_t printed = 0;
  for (const auto& [key, v] : entries) {
    if (limit > 0 && printed >= limit) {
      std::printf("... %zu more entries (raise --limit)\n",
                  entries.size() - printed);
      break;
    }
    std::printf(
        "%s contained=%d confidence=%s lineage=%s sigma_fp=%016llx "
        "used_deps=%zu levels=%u\n",
        key.c_str(), v.contained ? 1 : 0, ConfidenceName(v.confidence),
        v.lineage_known ? "known" : "unknown",
        static_cast<unsigned long long>(v.sigma_fp), v.used_fps.size(),
        unsigned{v.chase_levels});
    ++printed;
  }
  std::printf("total %zu entries\n", entries.size());
  return 0;
}

void PrintFileReport(const char* name, const FileReport& report) {
  if (!report.present) {
    std::printf("%s: absent\n", name);
    return;
  }
  std::printf("%s: version=%u header=%s entries=%llu", name, report.version,
              report.header_ok ? "ok" : "BAD",
              static_cast<unsigned long long>(report.entries_decoded));
  if (report.torn_tail_bytes > 0) {
    std::printf(" torn_tail_bytes=%llu",
                static_cast<unsigned long long>(report.torn_tail_bytes));
  }
  std::printf("\n");
  for (const std::string& problem : report.problems) {
    std::printf("%s: PROBLEM: %s\n", name, problem.c_str());
  }
}

int RunVerify(const FileReport& snapshot, const FileReport& log,
              size_t merged_entries) {
  PrintFileReport("snapshot.cqvs", snapshot);
  PrintFileReport("log.cqvl", log);
  std::printf("merged %zu entries\n", merged_entries);
  const bool corrupt = !snapshot.problems.empty() || !log.problems.empty();
  if (corrupt) {
    std::printf("verify: FAIL (the store would quarantine and rebuild)\n");
    return 2;
  }
  if (log.torn_tail_bytes > 0) {
    // Open() salvages up to the tear and truncates the rest — expected
    // crash damage, not corruption, so it does not fail the verify.
    std::printf("verify: OK (torn log tail; next open salvages and trims)\n");
    return 0;
  }
  if (snapshot.present &&
      snapshot.version != cqchase::kStoreFormatVersion) {
    std::printf("verify: OK (legacy v%u files; next open rewrites at v%u)\n",
                snapshot.version, cqchase::kStoreFormatVersion);
    return 0;
  }
  std::printf("verify: OK\n");
  return 0;
}

int RunLineage(
    const std::vector<std::pair<std::string, StoredVerdict>>& entries) {
  uint64_t exact = 0, monotone = 0, known = 0, unknown = 0, contained = 0;
  uint64_t used_total = 0, used_max = 0;
  std::map<uint64_t, uint64_t> by_sigma;  // ordered for stable output
  for (const auto& [key, v] : entries) {
    (void)key;
    if (static_cast<cqchase::VerdictConfidence>(v.confidence) ==
        cqchase::VerdictConfidence::kMonotoneBound) {
      ++monotone;
    } else {
      ++exact;
    }
    if (v.lineage_known) {
      ++known;
      used_total += v.used_fps.size();
      if (v.used_fps.size() > used_max) used_max = v.used_fps.size();
    } else {
      ++unknown;
    }
    if (v.contained) ++contained;
    ++by_sigma[v.sigma_fp];
  }
  std::printf("entries=%zu contained=%llu\n", entries.size(),
              static_cast<unsigned long long>(contained));
  std::printf("confidence: exact=%llu monotone-bound=%llu\n",
              static_cast<unsigned long long>(exact),
              static_cast<unsigned long long>(monotone));
  std::printf("lineage: known=%llu unknown=%llu\n",
              static_cast<unsigned long long>(known),
              static_cast<unsigned long long>(unknown));
  if (known > 0) {
    std::printf("used-dependency sets: avg=%.1f max=%llu\n",
                static_cast<double>(used_total) / static_cast<double>(known),
                static_cast<unsigned long long>(used_max));
  }
  std::printf("sigma fingerprints: %zu distinct\n", by_sigma.size());
  for (const auto& [fp, n] : by_sigma) {
    std::printf("  sigma_fp=%016llx entries=%llu\n",
                static_cast<unsigned long long>(fp),
                static_cast<unsigned long long>(n));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string command = argv[1];
  if (command != "dump" && command != "verify" && command != "lineage") {
    return Usage(argv[0]);
  }
  std::string dir;
  uint64_t limit = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "--limit" && i + 1 < argc) {
      limit = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return Usage(argv[0]);
    }
  }
  if (dir.empty()) return Usage(argv[0]);

  struct stat st;
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    std::fprintf(stderr, "%s: not a directory\n", dir.c_str());
    return 1;
  }

  const int lock_fd = AcquireLock(dir);
  if (lock_fd == -1) {
    std::fprintf(stderr,
                 "%s: a live VerdictStore owns this directory (flock on "
                 "%s/LOCK); refusing to read a store mid-append\n",
                 dir.c_str(), dir.c_str());
    return 1;
  }

  std::vector<std::pair<std::string, StoredVerdict>> snapshot_entries;
  std::vector<std::pair<std::string, StoredVerdict>> log_entries;
  const FileReport snapshot =
      ParseSnapshot(dir + "/snapshot.cqvs", &snapshot_entries);
  const FileReport log = ParseLog(dir + "/log.cqvl", &log_entries);
  const auto merged =
      MergedEntries(std::move(snapshot_entries), std::move(log_entries));

  int rc = 0;
  if (command == "dump") {
    rc = RunDump(merged, limit);
  } else if (command == "verify") {
    rc = RunVerify(snapshot, log, merged.size());
  } else {
    rc = RunLineage(merged);
  }
  if (lock_fd >= 0) ::close(lock_fd);  // releases the flock
  return rc;
}
