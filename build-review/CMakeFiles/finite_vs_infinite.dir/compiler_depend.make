# Empty compiler generated dependencies file for finite_vs_infinite.
# This may be replaced when dependencies are built.
