file(REMOVE_RECURSE
  "CMakeFiles/finite_vs_infinite.dir/examples/finite_vs_infinite.cc.o"
  "CMakeFiles/finite_vs_infinite.dir/examples/finite_vs_infinite.cc.o.d"
  "finite_vs_infinite"
  "finite_vs_infinite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finite_vs_infinite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
