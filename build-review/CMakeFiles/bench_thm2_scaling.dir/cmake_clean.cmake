file(REMOVE_RECURSE
  "CMakeFiles/bench_thm2_scaling.dir/bench/bench_thm2_scaling.cc.o"
  "CMakeFiles/bench_thm2_scaling.dir/bench/bench_thm2_scaling.cc.o.d"
  "bench_thm2_scaling"
  "bench_thm2_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm2_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
