# Empty dependencies file for bench_thm2_scaling.
# This may be replaced when dependencies are built.
