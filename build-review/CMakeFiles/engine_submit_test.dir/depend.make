# Empty dependencies file for engine_submit_test.
# This may be replaced when dependencies are built.
