file(REMOVE_RECURSE
  "CMakeFiles/engine_submit_test.dir/tests/engine_submit_test.cc.o"
  "CMakeFiles/engine_submit_test.dir/tests/engine_submit_test.cc.o.d"
  "engine_submit_test"
  "engine_submit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_submit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
