# Empty dependencies file for engine_dispatch_test.
# This may be replaced when dependencies are built.
