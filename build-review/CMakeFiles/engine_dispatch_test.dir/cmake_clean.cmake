file(REMOVE_RECURSE
  "CMakeFiles/engine_dispatch_test.dir/tests/engine_dispatch_test.cc.o"
  "CMakeFiles/engine_dispatch_test.dir/tests/engine_dispatch_test.cc.o.d"
  "engine_dispatch_test"
  "engine_dispatch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_dispatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
