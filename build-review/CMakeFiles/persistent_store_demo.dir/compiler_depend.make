# Empty compiler generated dependencies file for persistent_store_demo.
# This may be replaced when dependencies are built.
