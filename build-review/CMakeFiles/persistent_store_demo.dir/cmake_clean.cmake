file(REMOVE_RECURSE
  "CMakeFiles/persistent_store_demo.dir/examples/persistent_store_demo.cc.o"
  "CMakeFiles/persistent_store_demo.dir/examples/persistent_store_demo.cc.o.d"
  "persistent_store_demo"
  "persistent_store_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_store_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
