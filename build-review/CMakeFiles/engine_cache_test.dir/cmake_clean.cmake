file(REMOVE_RECURSE
  "CMakeFiles/engine_cache_test.dir/tests/engine_cache_test.cc.o"
  "CMakeFiles/engine_cache_test.dir/tests/engine_cache_test.cc.o.d"
  "engine_cache_test"
  "engine_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
