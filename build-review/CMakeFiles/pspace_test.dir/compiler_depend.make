# Empty compiler generated dependencies file for pspace_test.
# This may be replaced when dependencies are built.
