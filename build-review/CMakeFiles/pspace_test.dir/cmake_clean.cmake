file(REMOVE_RECURSE
  "CMakeFiles/pspace_test.dir/tests/pspace_test.cc.o"
  "CMakeFiles/pspace_test.dir/tests/pspace_test.cc.o.d"
  "pspace_test"
  "pspace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
