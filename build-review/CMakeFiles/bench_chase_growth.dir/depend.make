# Empty dependencies file for bench_chase_growth.
# This may be replaced when dependencies are built.
