file(REMOVE_RECURSE
  "CMakeFiles/bench_chase_growth.dir/bench/bench_chase_growth.cc.o"
  "CMakeFiles/bench_chase_growth.dir/bench/bench_chase_growth.cc.o.d"
  "bench_chase_growth"
  "bench_chase_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chase_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
