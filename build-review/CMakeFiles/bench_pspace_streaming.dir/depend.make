# Empty dependencies file for bench_pspace_streaming.
# This may be replaced when dependencies are built.
