file(REMOVE_RECURSE
  "CMakeFiles/bench_pspace_streaming.dir/bench/bench_pspace_streaming.cc.o"
  "CMakeFiles/bench_pspace_streaming.dir/bench/bench_pspace_streaming.cc.o.d"
  "bench_pspace_streaming"
  "bench_pspace_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pspace_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
