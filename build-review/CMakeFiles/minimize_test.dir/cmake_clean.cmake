file(REMOVE_RECURSE
  "CMakeFiles/minimize_test.dir/tests/minimize_test.cc.o"
  "CMakeFiles/minimize_test.dir/tests/minimize_test.cc.o.d"
  "minimize_test"
  "minimize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
