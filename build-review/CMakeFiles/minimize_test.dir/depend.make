# Empty dependencies file for minimize_test.
# This may be replaced when dependencies are built.
