file(REMOVE_RECURSE
  "CMakeFiles/chase_explorer.dir/examples/chase_explorer.cc.o"
  "CMakeFiles/chase_explorer.dir/examples/chase_explorer.cc.o.d"
  "chase_explorer"
  "chase_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chase_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
