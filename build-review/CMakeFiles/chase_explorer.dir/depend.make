# Empty dependencies file for chase_explorer.
# This may be replaced when dependencies are built.
