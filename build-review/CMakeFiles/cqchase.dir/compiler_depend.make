# Empty compiler generated dependencies file for cqchase.
# This may be replaced when dependencies are built.
