file(REMOVE_RECURSE
  "libcqchase.a"
)
