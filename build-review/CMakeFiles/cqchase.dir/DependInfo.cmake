
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/status.cc" "CMakeFiles/cqchase.dir/src/base/status.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/base/status.cc.o.d"
  "/root/repo/src/base/string_util.cc" "CMakeFiles/cqchase.dir/src/base/string_util.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/base/string_util.cc.o.d"
  "/root/repo/src/chase/chase.cc" "CMakeFiles/cqchase.dir/src/chase/chase.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/chase/chase.cc.o.d"
  "/root/repo/src/chase/chase_graph.cc" "CMakeFiles/cqchase.dir/src/chase/chase_graph.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/chase/chase_graph.cc.o.d"
  "/root/repo/src/core/certificate.cc" "CMakeFiles/cqchase.dir/src/core/certificate.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/core/certificate.cc.o.d"
  "/root/repo/src/core/containment.cc" "CMakeFiles/cqchase.dir/src/core/containment.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/core/containment.cc.o.d"
  "/root/repo/src/core/homomorphism.cc" "CMakeFiles/cqchase.dir/src/core/homomorphism.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/core/homomorphism.cc.o.d"
  "/root/repo/src/core/minimize.cc" "CMakeFiles/cqchase.dir/src/core/minimize.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/core/minimize.cc.o.d"
  "/root/repo/src/core/pspace.cc" "CMakeFiles/cqchase.dir/src/core/pspace.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/core/pspace.cc.o.d"
  "/root/repo/src/cq/cq_parser.cc" "CMakeFiles/cqchase.dir/src/cq/cq_parser.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/cq/cq_parser.cc.o.d"
  "/root/repo/src/cq/fact.cc" "CMakeFiles/cqchase.dir/src/cq/fact.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/cq/fact.cc.o.d"
  "/root/repo/src/cq/query.cc" "CMakeFiles/cqchase.dir/src/cq/query.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/cq/query.cc.o.d"
  "/root/repo/src/data/instance.cc" "CMakeFiles/cqchase.dir/src/data/instance.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/data/instance.cc.o.d"
  "/root/repo/src/deps/dependency.cc" "CMakeFiles/cqchase.dir/src/deps/dependency.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/deps/dependency.cc.o.d"
  "/root/repo/src/deps/dependency_set.cc" "CMakeFiles/cqchase.dir/src/deps/dependency_set.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/deps/dependency_set.cc.o.d"
  "/root/repo/src/deps/deps_parser.cc" "CMakeFiles/cqchase.dir/src/deps/deps_parser.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/deps/deps_parser.cc.o.d"
  "/root/repo/src/emvd/emvd.cc" "CMakeFiles/cqchase.dir/src/emvd/emvd.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/emvd/emvd.cc.o.d"
  "/root/repo/src/emvd/emvd_chase.cc" "CMakeFiles/cqchase.dir/src/emvd/emvd_chase.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/emvd/emvd_chase.cc.o.d"
  "/root/repo/src/engine/canonical.cc" "CMakeFiles/cqchase.dir/src/engine/canonical.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/engine/canonical.cc.o.d"
  "/root/repo/src/engine/engine.cc" "CMakeFiles/cqchase.dir/src/engine/engine.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/engine/engine.cc.o.d"
  "/root/repo/src/engine/executor.cc" "CMakeFiles/cqchase.dir/src/engine/executor.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/engine/executor.cc.o.d"
  "/root/repo/src/engine/remote_tier.cc" "CMakeFiles/cqchase.dir/src/engine/remote_tier.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/engine/remote_tier.cc.o.d"
  "/root/repo/src/engine/serialize.cc" "CMakeFiles/cqchase.dir/src/engine/serialize.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/engine/serialize.cc.o.d"
  "/root/repo/src/engine/sigma_class.cc" "CMakeFiles/cqchase.dir/src/engine/sigma_class.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/engine/sigma_class.cc.o.d"
  "/root/repo/src/engine/store.cc" "CMakeFiles/cqchase.dir/src/engine/store.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/engine/store.cc.o.d"
  "/root/repo/src/engine/tier.cc" "CMakeFiles/cqchase.dir/src/engine/tier.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/engine/tier.cc.o.d"
  "/root/repo/src/finite/finite_containment.cc" "CMakeFiles/cqchase.dir/src/finite/finite_containment.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/finite/finite_containment.cc.o.d"
  "/root/repo/src/gen/generators.cc" "CMakeFiles/cqchase.dir/src/gen/generators.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/gen/generators.cc.o.d"
  "/root/repo/src/gen/scenarios.cc" "CMakeFiles/cqchase.dir/src/gen/scenarios.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/gen/scenarios.cc.o.d"
  "/root/repo/src/inference/fd_inference.cc" "CMakeFiles/cqchase.dir/src/inference/fd_inference.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/inference/fd_inference.cc.o.d"
  "/root/repo/src/inference/ind_inference.cc" "CMakeFiles/cqchase.dir/src/inference/ind_inference.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/inference/ind_inference.cc.o.d"
  "/root/repo/src/opt/cost.cc" "CMakeFiles/cqchase.dir/src/opt/cost.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/opt/cost.cc.o.d"
  "/root/repo/src/opt/optimizer.cc" "CMakeFiles/cqchase.dir/src/opt/optimizer.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/opt/optimizer.cc.o.d"
  "/root/repo/src/schema/catalog.cc" "CMakeFiles/cqchase.dir/src/schema/catalog.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/schema/catalog.cc.o.d"
  "/root/repo/src/symbols/symbol_table.cc" "CMakeFiles/cqchase.dir/src/symbols/symbol_table.cc.o" "gcc" "CMakeFiles/cqchase.dir/src/symbols/symbol_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
