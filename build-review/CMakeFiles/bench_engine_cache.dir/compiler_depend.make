# Empty compiler generated dependencies file for bench_engine_cache.
# This may be replaced when dependencies are built.
