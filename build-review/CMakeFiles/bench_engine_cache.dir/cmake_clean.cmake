file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_cache.dir/bench/bench_engine_cache.cc.o"
  "CMakeFiles/bench_engine_cache.dir/bench/bench_engine_cache.cc.o.d"
  "bench_engine_cache"
  "bench_engine_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
