# Empty dependencies file for bench_thm3_controllability.
# This may be replaced when dependencies are built.
