file(REMOVE_RECURSE
  "CMakeFiles/bench_thm3_controllability.dir/bench/bench_thm3_controllability.cc.o"
  "CMakeFiles/bench_thm3_controllability.dir/bench/bench_thm3_controllability.cc.o.d"
  "bench_thm3_controllability"
  "bench_thm3_controllability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm3_controllability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
