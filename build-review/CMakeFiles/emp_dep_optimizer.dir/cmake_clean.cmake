file(REMOVE_RECURSE
  "CMakeFiles/emp_dep_optimizer.dir/examples/emp_dep_optimizer.cc.o"
  "CMakeFiles/emp_dep_optimizer.dir/examples/emp_dep_optimizer.cc.o.d"
  "emp_dep_optimizer"
  "emp_dep_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emp_dep_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
