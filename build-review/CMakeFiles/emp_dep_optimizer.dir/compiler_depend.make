# Empty compiler generated dependencies file for emp_dep_optimizer.
# This may be replaced when dependencies are built.
