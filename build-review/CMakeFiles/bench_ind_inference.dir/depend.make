# Empty dependencies file for bench_ind_inference.
# This may be replaced when dependencies are built.
