file(REMOVE_RECURSE
  "CMakeFiles/bench_ind_inference.dir/bench/bench_ind_inference.cc.o"
  "CMakeFiles/bench_ind_inference.dir/bench/bench_ind_inference.cc.o.d"
  "bench_ind_inference"
  "bench_ind_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ind_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
