file(REMOVE_RECURSE
  "CMakeFiles/tier_stack_demo.dir/examples/tier_stack_demo.cc.o"
  "CMakeFiles/tier_stack_demo.dir/examples/tier_stack_demo.cc.o.d"
  "tier_stack_demo"
  "tier_stack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tier_stack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
