# Empty compiler generated dependencies file for tier_stack_demo.
# This may be replaced when dependencies are built.
