# Empty dependencies file for bench_tier_stack.
# This may be replaced when dependencies are built.
