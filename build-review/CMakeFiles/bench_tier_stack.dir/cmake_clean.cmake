file(REMOVE_RECURSE
  "CMakeFiles/bench_tier_stack.dir/bench/bench_tier_stack.cc.o"
  "CMakeFiles/bench_tier_stack.dir/bench/bench_tier_stack.cc.o.d"
  "bench_tier_stack"
  "bench_tier_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tier_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
