file(REMOVE_RECURSE
  "CMakeFiles/bench_thm1_validation.dir/bench/bench_thm1_validation.cc.o"
  "CMakeFiles/bench_thm1_validation.dir/bench/bench_thm1_validation.cc.o.d"
  "bench_thm1_validation"
  "bench_thm1_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm1_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
