# Empty compiler generated dependencies file for bench_thm1_validation.
# This may be replaced when dependencies are built.
