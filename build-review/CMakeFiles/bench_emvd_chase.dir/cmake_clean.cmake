file(REMOVE_RECURSE
  "CMakeFiles/bench_emvd_chase.dir/bench/bench_emvd_chase.cc.o"
  "CMakeFiles/bench_emvd_chase.dir/bench/bench_emvd_chase.cc.o.d"
  "bench_emvd_chase"
  "bench_emvd_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_emvd_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
