# Empty compiler generated dependencies file for bench_emvd_chase.
# This may be replaced when dependencies are built.
