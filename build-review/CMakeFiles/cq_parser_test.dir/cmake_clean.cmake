file(REMOVE_RECURSE
  "CMakeFiles/cq_parser_test.dir/tests/cq_parser_test.cc.o"
  "CMakeFiles/cq_parser_test.dir/tests/cq_parser_test.cc.o.d"
  "cq_parser_test"
  "cq_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
