# Empty compiler generated dependencies file for cq_parser_test.
# This may be replaced when dependencies are built.
