# Empty dependencies file for bench_submit_throughput.
# This may be replaced when dependencies are built.
