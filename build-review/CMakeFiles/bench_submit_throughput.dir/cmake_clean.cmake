file(REMOVE_RECURSE
  "CMakeFiles/bench_submit_throughput.dir/bench/bench_submit_throughput.cc.o"
  "CMakeFiles/bench_submit_throughput.dir/bench/bench_submit_throughput.cc.o.d"
  "bench_submit_throughput"
  "bench_submit_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_submit_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
