# Empty compiler generated dependencies file for bench_intro_example.
# This may be replaced when dependencies are built.
