file(REMOVE_RECURSE
  "CMakeFiles/bench_intro_example.dir/bench/bench_intro_example.cc.o"
  "CMakeFiles/bench_intro_example.dir/bench/bench_intro_example.cc.o.d"
  "bench_intro_example"
  "bench_intro_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intro_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
