# Empty compiler generated dependencies file for ind_inference_demo.
# This may be replaced when dependencies are built.
