file(REMOVE_RECURSE
  "CMakeFiles/ind_inference_demo.dir/examples/ind_inference_demo.cc.o"
  "CMakeFiles/ind_inference_demo.dir/examples/ind_inference_demo.cc.o.d"
  "ind_inference_demo"
  "ind_inference_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ind_inference_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
