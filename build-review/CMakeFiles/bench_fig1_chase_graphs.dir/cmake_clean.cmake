file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_chase_graphs.dir/bench/bench_fig1_chase_graphs.cc.o"
  "CMakeFiles/bench_fig1_chase_graphs.dir/bench/bench_fig1_chase_graphs.cc.o.d"
  "bench_fig1_chase_graphs"
  "bench_fig1_chase_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_chase_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
