file(REMOVE_RECURSE
  "CMakeFiles/bench_checkmany_scaling.dir/bench/bench_checkmany_scaling.cc.o"
  "CMakeFiles/bench_checkmany_scaling.dir/bench/bench_checkmany_scaling.cc.o.d"
  "bench_checkmany_scaling"
  "bench_checkmany_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checkmany_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
