# Empty compiler generated dependencies file for bench_checkmany_scaling.
# This may be replaced when dependencies are built.
