file(REMOVE_RECURSE
  "CMakeFiles/bench_certificates.dir/bench/bench_certificates.cc.o"
  "CMakeFiles/bench_certificates.dir/bench/bench_certificates.cc.o.d"
  "bench_certificates"
  "bench_certificates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_certificates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
