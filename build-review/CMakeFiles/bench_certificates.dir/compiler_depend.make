# Empty compiler generated dependencies file for bench_certificates.
# This may be replaced when dependencies are built.
