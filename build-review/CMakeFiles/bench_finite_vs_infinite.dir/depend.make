# Empty dependencies file for bench_finite_vs_infinite.
# This may be replaced when dependencies are built.
