file(REMOVE_RECURSE
  "CMakeFiles/bench_finite_vs_infinite.dir/bench/bench_finite_vs_infinite.cc.o"
  "CMakeFiles/bench_finite_vs_infinite.dir/bench/bench_finite_vs_infinite.cc.o.d"
  "bench_finite_vs_infinite"
  "bench_finite_vs_infinite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_finite_vs_infinite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
