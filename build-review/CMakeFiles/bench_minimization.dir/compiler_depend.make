# Empty compiler generated dependencies file for bench_minimization.
# This may be replaced when dependencies are built.
