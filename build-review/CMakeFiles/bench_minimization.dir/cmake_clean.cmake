file(REMOVE_RECURSE
  "CMakeFiles/bench_minimization.dir/bench/bench_minimization.cc.o"
  "CMakeFiles/bench_minimization.dir/bench/bench_minimization.cc.o.d"
  "bench_minimization"
  "bench_minimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
