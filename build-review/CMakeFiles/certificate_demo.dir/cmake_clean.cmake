file(REMOVE_RECURSE
  "CMakeFiles/certificate_demo.dir/examples/certificate_demo.cc.o"
  "CMakeFiles/certificate_demo.dir/examples/certificate_demo.cc.o.d"
  "certificate_demo"
  "certificate_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certificate_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
