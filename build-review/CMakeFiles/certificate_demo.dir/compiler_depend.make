# Empty compiler generated dependencies file for certificate_demo.
# This may be replaced when dependencies are built.
