file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma6_span.dir/bench/bench_lemma6_span.cc.o"
  "CMakeFiles/bench_lemma6_span.dir/bench/bench_lemma6_span.cc.o.d"
  "bench_lemma6_span"
  "bench_lemma6_span.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma6_span.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
