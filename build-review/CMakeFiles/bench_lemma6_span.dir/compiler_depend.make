# Empty compiler generated dependencies file for bench_lemma6_span.
# This may be replaced when dependencies are built.
