# Empty compiler generated dependencies file for emvd_test.
# This may be replaced when dependencies are built.
