file(REMOVE_RECURSE
  "CMakeFiles/emvd_test.dir/tests/emvd_test.cc.o"
  "CMakeFiles/emvd_test.dir/tests/emvd_test.cc.o.d"
  "emvd_test"
  "emvd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emvd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
