file(REMOVE_RECURSE
  "CMakeFiles/instance_test.dir/tests/instance_test.cc.o"
  "CMakeFiles/instance_test.dir/tests/instance_test.cc.o.d"
  "instance_test"
  "instance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
