# Empty compiler generated dependencies file for bench_lemma2_factorization.
# This may be replaced when dependencies are built.
