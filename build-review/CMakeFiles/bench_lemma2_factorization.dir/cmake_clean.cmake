file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma2_factorization.dir/bench/bench_lemma2_factorization.cc.o"
  "CMakeFiles/bench_lemma2_factorization.dir/bench/bench_lemma2_factorization.cc.o.d"
  "bench_lemma2_factorization"
  "bench_lemma2_factorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma2_factorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
