file(REMOVE_RECURSE
  "CMakeFiles/finite_test.dir/tests/finite_test.cc.o"
  "CMakeFiles/finite_test.dir/tests/finite_test.cc.o.d"
  "finite_test"
  "finite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
