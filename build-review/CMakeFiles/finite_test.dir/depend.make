# Empty dependencies file for finite_test.
# This may be replaced when dependencies are built.
