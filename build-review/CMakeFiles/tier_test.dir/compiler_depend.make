# Empty compiler generated dependencies file for tier_test.
# This may be replaced when dependencies are built.
