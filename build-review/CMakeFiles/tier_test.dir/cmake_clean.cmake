file(REMOVE_RECURSE
  "CMakeFiles/tier_test.dir/tests/tier_test.cc.o"
  "CMakeFiles/tier_test.dir/tests/tier_test.cc.o.d"
  "tier_test"
  "tier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
