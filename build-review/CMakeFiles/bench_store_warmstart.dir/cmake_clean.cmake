file(REMOVE_RECURSE
  "CMakeFiles/bench_store_warmstart.dir/bench/bench_store_warmstart.cc.o"
  "CMakeFiles/bench_store_warmstart.dir/bench/bench_store_warmstart.cc.o.d"
  "bench_store_warmstart"
  "bench_store_warmstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_store_warmstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
