# Empty dependencies file for bench_store_warmstart.
# This may be replaced when dependencies are built.
