# Empty dependencies file for bench_lemma5_levels.
# This may be replaced when dependencies are built.
