file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma5_levels.dir/bench/bench_lemma5_levels.cc.o"
  "CMakeFiles/bench_lemma5_levels.dir/bench/bench_lemma5_levels.cc.o.d"
  "bench_lemma5_levels"
  "bench_lemma5_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma5_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
