file(REMOVE_RECURSE
  "CMakeFiles/symbol_table_test.dir/tests/symbol_table_test.cc.o"
  "CMakeFiles/symbol_table_test.dir/tests/symbol_table_test.cc.o.d"
  "symbol_table_test"
  "symbol_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbol_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
