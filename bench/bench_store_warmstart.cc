// E-STORE-WARMSTART — the persistent verdict tier across process restarts:
// a fleet that restarts should not re-pay the chase cost for containment
// decisions it has already made. This bench runs one deterministic repeated
// workload through a store-backed engine and checks, task by task, that the
// verdicts match a fresh store-less engine (the oracle).
//
// CI runs the binary twice against the same store directory:
//   1. cold  (`bench_store_warmstart <dir>`)        — populates the store;
//      only verdict parity is enforced.
//   2. warm  (`bench_store_warmstart <dir> --warm`) — a "restarted process":
//      every canonical key must now be answered from the store, so the run
//      exits non-zero unless chases_built == 0 and store_hits > 0, on top
//      of verdict parity.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "base/string_util.h"
#include "bench/bench_util.h"
#include "engine/engine.h"
#include "gen/generators.h"

namespace cqchase {
namespace {
// Workload: bench::BuildContainmentWorkload with this bench's historical
// seeds. Deterministic, so both CI invocations regenerate byte-identical
// queries and the warm run's canonical keys equal the cold run's — the
// whole point of the gate.
}  // namespace
}  // namespace cqchase

int main(int argc, char** argv) {
  using namespace cqchase;
  const std::string store_dir = argc > 1 ? argv[1] : "warmstart-store";
  const bool expect_warm =
      argc > 2 && std::strcmp(argv[2], "--warm") == 0;

  bench::PrintHeader(
      "E-STORE-WARMSTART / persistent verdict tier across restarts",
      "a second engine process opened on the same store answers a repeated "
      "canonical workload with zero chases built, with verdicts identical "
      "to a fresh engine");

  const size_t kClasses = 10;
  const size_t kCopies = 3;
  bench::ContainmentWorkload w =
      bench::BuildContainmentWorkload(kClasses, kCopies, /*catalog_seed=*/11,
                                      /*class_seed_base=*/4000);
  std::vector<ContainmentTask> tasks;
  tasks.reserve(w.lhs.size());
  for (size_t i = 0; i < w.lhs.size(); ++i) {
    tasks.push_back(ContainmentTask{&w.lhs[i], &w.rhs[i], &w.deps});
  }

  // Oracle: no store, fresh caches — ground truth for this process.
  EngineConfig oracle_config;
  ContainmentEngine oracle(w.catalog.get(), w.symbols.get(), oracle_config);
  std::vector<Result<EngineVerdict>> oracle_results = oracle.CheckMany(tasks);

  // The engine under test, backed by the (possibly pre-populated) store.
  EngineConfig store_config;
  store_config.store_path = store_dir;
  EngineStats stats;
  VerdictStoreStats store_stats;
  std::vector<Result<EngineVerdict>> store_results;
  double store_ms = 0;
  bool store_opened = false;
  {
    ContainmentEngine engine(w.catalog.get(), w.symbols.get(), store_config);
    store_opened = engine.store() != nullptr;
    if (!store_opened) {
      std::fprintf(stderr, "FAIL: store did not open: %s\n",
                   engine.store_status().ToString().c_str());
      return 1;
    }
    bench::WallTimer timer;
    store_results = engine.CheckMany(tasks);
    store_ms = timer.ElapsedMs();
    stats = engine.stats();
    store_stats = engine.store()->stats();
    // Scope exit: the executor drains the write-behind flush, the store
    // compacts — exactly the shutdown path a restarting process takes.
  }

  size_t contained = 0;
  size_t mismatches = 0;
  size_t errors = 0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (!oracle_results[i].ok() || !store_results[i].ok()) {
      ++errors;
      continue;
    }
    if (oracle_results[i]->report.contained !=
        store_results[i]->report.contained) {
      ++mismatches;
    }
    if (store_results[i]->report.contained) ++contained;
  }

  std::printf("%zu tasks (%zu classes x %zu copies), store: %s (%s)\n",
              tasks.size(), kClasses, kCopies, store_dir.c_str(),
              expect_warm ? "warm run" : "cold run");
  std::printf("  store-backed: %8.3f ms\n", store_ms);
  std::printf(
      "  chases built: %llu   store hits: %llu   store writes: %llu\n",
      static_cast<unsigned long long>(stats.chases_built),
      static_cast<unsigned long long>(stats.store_hits),
      static_cast<unsigned long long>(stats.store_writes));
  std::printf(
      "  store       : %llu entries (%llu from snapshot, %llu from log)\n",
      static_cast<unsigned long long>(store_stats.entries),
      static_cast<unsigned long long>(store_stats.snapshot_entries_loaded),
      static_cast<unsigned long long>(store_stats.log_entries_replayed));
  std::printf("  verdicts    : %zu contained, %zu mismatches, %zu errors\n\n",
              contained, mismatches, errors);

  std::vector<std::pair<std::string, double>> counters = {
      {"tasks", static_cast<double>(tasks.size())},
      {"warm", expect_warm ? 1.0 : 0.0},
      {"chases_built", static_cast<double>(stats.chases_built)},
      {"cache_hits", static_cast<double>(stats.cache_hits)},
      {"store_entries", static_cast<double>(store_stats.entries)},
      {"store_snapshot_loaded",
       static_cast<double>(store_stats.snapshot_entries_loaded)},
      {"store_log_replayed",
       static_cast<double>(store_stats.log_entries_replayed)},
      {"store_quarantined",
       static_cast<double>(store_stats.quarantined_files)},
      {"mismatches", static_cast<double>(mismatches)},
      {"errors", static_cast<double>(errors)}};
  bench::AppendEngineCounters(stats, counters);
  bench::AppendEngineConfig(store_config, counters);
  bench::PrintJsonRecord("store_warmstart", store_ms, counters);

  if (mismatches > 0 || errors > 0) {
    std::fprintf(stderr,
                 "FAIL: store-backed verdicts diverge from a fresh engine\n");
    return 1;
  }
  if (expect_warm) {
    if (stats.chases_built != 0) {
      std::fprintf(stderr,
                   "FAIL: warm run built %llu chases (want 0: every verdict "
                   "should come from the store)\n",
                   static_cast<unsigned long long>(stats.chases_built));
      return 1;
    }
    if (stats.store_hits == 0) {
      std::fprintf(stderr, "FAIL: warm run served no store hits\n");
      return 1;
    }
  }
  std::printf("PASS\n");
  return 0;
}
