// E8 — Corollary 2.3 and the remark after it: IND implication is a special
// case of CQ containment (the paper's two-query reduction), and for any
// fixed width W it is decidable in polynomial time. This bench
// (a) cross-validates the axiomatic CFP-proof-search decider against the
//     containment-reduction decider on random implication instances, and
// (b) reports time vs width for both, which should stay polynomial per
//     fixed W while the state space grows with W.
#include <cstdio>

#include "base/rng.h"
#include "bench/bench_util.h"
#include "gen/generators.h"
#include "inference/ind_inference.h"

namespace cqchase {
namespace {

// A random implication target R[X] <= S[Y]: half the time a projection or
// transitive consequence of the given INDs (likely implied), half the time
// fully random columns (likely not implied).
InclusionDependency RandomTarget(Rng& rng, const Catalog& catalog,
                                 const DependencySet& deps, size_t width) {
  InclusionDependency target;
  if (!deps.inds().empty() && rng.Bernoulli(0.5)) {
    const InclusionDependency& base =
        deps.inds()[rng.Index(deps.inds().size())];
    size_t take = width < base.width() ? width : base.width();
    target.lhs_relation = base.lhs_relation;
    target.rhs_relation = base.rhs_relation;
    for (size_t i = 0; i < take; ++i) {
      target.lhs_columns.push_back(base.lhs_columns[i]);
      target.rhs_columns.push_back(base.rhs_columns[i]);
    }
    if (!target.lhs_columns.empty()) return target;
  }
  // Fully random width-`width` target between two relations wide enough.
  for (int attempt = 0; attempt < 64; ++attempt) {
    RelationId r = static_cast<RelationId>(rng.Index(catalog.num_relations()));
    RelationId s = static_cast<RelationId>(rng.Index(catalog.num_relations()));
    if (catalog.arity(r) < width || catalog.arity(s) < width) continue;
    target = InclusionDependency{};
    target.lhs_relation = r;
    target.rhs_relation = s;
    // Distinct columns per side.
    for (size_t i = 0; i < width; ++i) {
      target.lhs_columns.push_back(static_cast<uint32_t>(i));
      target.rhs_columns.push_back(static_cast<uint32_t>(i));
    }
    return target;
  }
  return target;
}

void RunWidth(size_t width) {
  size_t total = 0, implied = 0, agreements = 0, disagreements = 0;
  double axiomatic_ms = 0, reduction_ms = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed * 31 + width);
    RandomCatalogParams cp;
    cp.num_relations = 3;
    cp.min_arity = width + 1;
    cp.max_arity = width + 2;
    Catalog catalog = RandomCatalog(rng, cp);
    RandomIndParams ip;
    ip.count = 4;
    ip.width = width;
    DependencySet deps = RandomIndOnlyDeps(rng, catalog, ip);
    InclusionDependency target = RandomTarget(rng, catalog, deps, width);
    if (target.lhs_columns.empty()) continue;
    if (!ValidateInd(target, catalog).ok()) continue;

    bench::WallTimer t1;
    Result<bool> ax = IndImpliedAxiomatic(deps, catalog, target);
    axiomatic_ms += t1.ElapsedMs();
    ContainmentOptions options;
    options.limits.max_level = 16;
    options.limits.max_conjuncts = 20000;
    bench::WallTimer t2;
    Result<bool> red = IndImpliedViaContainment(deps, catalog, target, options);
    reduction_ms += t2.ElapsedMs();
    if (!ax.ok() || !red.ok()) continue;
    ++total;
    if (*ax) ++implied;
    if (*ax == *red) {
      ++agreements;
    } else {
      ++disagreements;
    }
  }
  std::printf("%6zu %8zu %9zu %12zu %14zu %14.3f %14.3f\n", width, total,
              implied, agreements, disagreements, axiomatic_ms, reduction_ms);
}

}  // namespace
}  // namespace cqchase

int main() {
  cqchase::bench::WallTimer bench_total_timer;
  cqchase::bench::PrintHeader(
      "E8 / Corollary 2.3: IND inference, axiomatic vs containment reduction",
      "the two independent deciders agree everywhere; both are polynomial "
      "for each fixed width");
  std::printf("%6s %8s %9s %12s %14s %14s %14s\n", "W", "cases", "implied",
              "agreements", "disagreements", "axiomatic ms", "reduction ms");
  for (size_t w : {1, 2, 3}) cqchase::RunWidth(w);
  cqchase::bench::PrintJsonRecord("ind_inference", bench_total_timer.ElapsedMs());
  return 0;
}
