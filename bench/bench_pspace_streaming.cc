// E14 — Corollary 2.3's space bound, measured. The PSPACE argument checks
// the Theorem 2 proof level by level with only one or two levels in memory.
// Two series:
//  (a) windowed certificate verification: peak symbols retained vs total
//      certificate symbols as the witness chain deepens (ratio -> 0);
//  (b) frontier-streaming single-conjunct containment: decisions match the
//      general checker while holding only one chase frontier.
#include <cstdio>

#include "base/rng.h"
#include "bench/bench_util.h"
#include "core/containment.h"
#include "core/pspace.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "gen/generators.h"

namespace cqchase {
namespace {

void WindowSeries() {
  std::printf("--- (a) windowed certificate verification ---\n");
  std::printf("%8s %12s %14s %14s %8s\n", "hops", "peak window",
              "total symbols", "ratio", "valid");
  for (size_t hops : {4, 8, 16, 32, 64}) {
    Catalog catalog;
    (void)catalog.AddRelation("R", {"a", "b"});
    SymbolTable symbols;
    DependencySet deps = *ParseDependencies(catalog, "R[2] <= R[1]");
    ConjunctiveQuery q = *ParseQuery(catalog, symbols, "ans(x) :- R(x, y)");
    std::string text = "ans(x) :- ";
    std::string prev = "x";
    for (size_t i = 1; i <= hops; ++i) {
      if (i > 1) text += ", ";
      std::string cur = "a" + std::to_string(i);
      text += "R(" + prev + ", " + cur + ")";
      prev = cur;
    }
    ConjunctiveQuery q_prime = *ParseQuery(catalog, symbols, text);
    ContainmentOptions options;
    options.limits.max_level = static_cast<uint32_t>(hops) + 2;
    Result<std::optional<ContainmentCertificate>> cert =
        BuildCertificate(q, q_prime, deps, symbols, options);
    if (!cert.ok() || !cert->has_value()) {
      std::printf("%8zu build failed\n", hops);
      continue;
    }
    Result<StreamingVerifyReport> report = StreamingVerifyCertificate(
        **cert, q, q_prime, deps, symbols, /*window=*/3);
    if (!report.ok()) {
      std::printf("%8zu %s\n", hops, report.status().ToString().c_str());
      continue;
    }
    std::printf("%8zu %12zu %14zu %14.3f %8s\n", hops,
                report->peak_window_symbols, report->total_symbols,
                static_cast<double>(report->peak_window_symbols) /
                    static_cast<double>(report->total_symbols),
                report->valid ? "yes" : "NO");
  }
}

void FrontierSeries() {
  std::printf("\n--- (b) frontier-streaming single-conjunct containment ---\n");
  std::printf("%8s %10s %12s %14s %14s\n", "cases", "agree", "contained",
              "peak frontier", "streamed");
  size_t cases = 0, agree = 0, contained = 0, peak = 0, streamed = 0;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    Rng rng(seed);
    RandomCatalogParams cp;
    cp.num_relations = 3;
    cp.min_arity = 2;
    cp.max_arity = 3;
    Catalog catalog = RandomCatalog(rng, cp);
    RandomIndParams ip;
    ip.count = 2;
    ip.width = 1;
    DependencySet deps = RandomIndOnlyDeps(rng, catalog, ip);
    SymbolTable symbols;
    RandomQueryParams qp;
    qp.num_conjuncts = 2;
    qp.name_prefix = "fa";
    ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);
    qp.num_conjuncts = 1;
    qp.name_prefix = "fb";
    ConjunctiveQuery q_prime = RandomQuery(rng, catalog, symbols, qp);
    if (q_prime.size() != 1) continue;

    Result<StreamingContainmentReport> stream =
        StreamingSingleConjunctContainment(q, q_prime, deps, symbols);
    Result<ContainmentReport> general =
        CheckContainment(q, q_prime, deps, symbols);
    if (!stream.ok() || !general.ok()) continue;
    ++cases;
    if (stream->contained == general->contained) ++agree;
    if (stream->contained) ++contained;
    if (stream->peak_frontier > peak) peak = stream->peak_frontier;
    streamed += stream->conjuncts_streamed;
  }
  std::printf("%8zu %10zu %12zu %14zu %14zu\n", cases, agree, contained, peak,
              streamed);
}

}  // namespace
}  // namespace cqchase

int main() {
  cqchase::bench::WallTimer bench_total_timer;
  cqchase::bench::PrintHeader(
      "E14 / Corollary 2.3: level-by-level checking in bounded space",
      "windowed verification retains a constant-size window while the "
      "certificate grows (ratio shrinks); streaming decisions agree with "
      "the general checker everywhere");
  cqchase::WindowSeries();
  cqchase::FrontierSeries();
  cqchase::bench::PrintJsonRecord("pspace_streaming", bench_total_timer.ElapsedMs());
  return 0;
}
