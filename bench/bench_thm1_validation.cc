// E2 — Theorem 1 validation: Σ ⊨ Q ⊆∞ Q' iff Q' → chaseΣ(Q).
// Positive instances are planted (Q' is a renamed chase fragment, so the
// homomorphism exists by construction); negatives are random queries whose
// verdict is cross-checked against finite-database sampling (a finite
// counterexample refutes ⊆∞). Prints confirmation counts per seed batch.
#include <cstdio>

#include "base/rng.h"
#include "bench/bench_util.h"
#include "core/containment.h"
#include "finite/finite_containment.h"
#include "gen/generators.h"
#include "gen/scenarios.h"

namespace cqchase {
namespace {

void Run() {
  size_t planted_total = 0, planted_confirmed = 0;
  size_t negatives_total = 0, negatives_with_finite_cex = 0,
         negatives_without = 0, positives_checked_by_sampling = 0,
         sampling_contradictions = 0;

  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    // Planted positives on the infinite-chase Figure 1 scenario.
    {
      Scenario s = Fig1Scenario();
      Result<ConjunctiveQuery> q_prime =
          PlantedSuperQuery(rng, s.queries[0], s.deps, *s.symbols, 3, 3);
      if (q_prime.ok()) {
        ++planted_total;
        Result<ContainmentReport> r = CheckContainment(
            s.queries[0], *q_prime, s.deps, *s.symbols);
        if (r.ok() && r->contained) ++planted_confirmed;
      }
    }
    // Random pairs on a width-1 two-relation schema; verdicts cross-checked
    // by finite sampling.
    {
      Catalog catalog;
      (void)catalog.AddRelation("R", {"a", "b"});
      (void)catalog.AddRelation("S", {"a", "b"});
      RandomIndParams ip;
      ip.count = 2;
      ip.width = 1;
      DependencySet deps = RandomIndOnlyDeps(rng, catalog, ip);
      SymbolTable symbols;
      RandomQueryParams qp;
      qp.num_conjuncts = 2;
      qp.name_prefix = "a";
      ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);
      qp.name_prefix = "b";
      ConjunctiveQuery q_prime = RandomQuery(rng, catalog, symbols, qp);
      Result<ContainmentReport> r =
          CheckContainment(q, q_prime, deps, symbols);
      if (!r.ok()) continue;
      RandomSearchParams sp;
      sp.samples = 50;
      sp.domain_size = 4;
      sp.tuples_per_relation = 3;
      sp.seed = seed;
      Result<std::optional<Instance>> cex =
          RandomFiniteCounterexample(q, q_prime, deps, symbols, sp);
      if (!cex.ok()) continue;
      if (r->contained) {
        ++positives_checked_by_sampling;
        if (cex->has_value()) ++sampling_contradictions;
      } else {
        ++negatives_total;
        if (cex->has_value()) {
          ++negatives_with_finite_cex;
        } else {
          ++negatives_without;  // consistent but not conclusive
        }
      }
    }
  }

  std::printf("planted positives        : %zu/%zu confirmed contained\n",
              planted_confirmed, planted_total);
  std::printf("decided positives sampled: %zu, finite contradictions: %zu "
              "(must be 0)\n",
              positives_checked_by_sampling, sampling_contradictions);
  std::printf("decided negatives        : %zu, refuted by a finite "
              "counterexample: %zu, unrefuted-at-this-scale: %zu\n",
              negatives_total, negatives_with_finite_cex, negatives_without);
}

}  // namespace
}  // namespace cqchase

int main() {
  cqchase::bench::WallTimer bench_total_timer;
  cqchase::bench::PrintHeader(
      "E2 / Theorem 1: chase-based containment vs independent oracles",
      "containment holds iff a homomorphism into the chase exists; a "
      "'contained' verdict can never be refuted by any finite Σ-database");
  cqchase::Run();
  cqchase::bench::PrintJsonRecord("thm1_validation", bench_total_timer.ElapsedMs());
  return 0;
}
