// E3 — Theorem 2 / Corollary 2.1 complexity shape: for a fixed maximum IND
// width W the containment test runs in time polynomial in |Q|, |Q'|, |Σ|;
// the Lemma 5 level bound |Q'|·|Σ|·(W+1)^W — and with it the worst-case
// chase prefix — blows up only in W.
//
// Prints a time-vs-|Q| series per W in {1,2,3}; within a W column, time
// should grow polynomially (compare the growth across rows), while the
// theoretical level bound column shows the (W+1)^W jump between tables.
#include <cstdio>

#include "base/rng.h"
#include "bench/bench_util.h"
#include "core/containment.h"
#include "gen/generators.h"

namespace cqchase {
namespace {

struct Row {
  size_t q_size = 0;
  size_t trials = 0;
  size_t decided = 0;
  size_t contained = 0;
  double total_ms = 0.0;
  uint64_t level_bound = 0;
  size_t max_chase_conjuncts = 0;
};

void RunWidth(size_t width) {
  std::printf("--- W = %zu ---\n", width);
  std::printf("%6s %8s %10s %12s %14s %12s\n", "|Q|", "decided", "contained",
              "avg ms", "lemma5 bound", "max prefix");
  for (size_t q_size : {2, 4, 6, 8, 10, 12}) {
    Row row;
    row.q_size = q_size;
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      Rng rng(seed * 100 + q_size);
      RandomCatalogParams cp;
      cp.num_relations = 3;
      cp.min_arity = width + 1;
      cp.max_arity = width + 2;
      Catalog catalog = RandomCatalog(rng, cp);
      RandomIndParams ip;
      ip.count = 3;
      ip.width = width;
      DependencySet deps = RandomIndOnlyDeps(rng, catalog, ip);
      SymbolTable symbols;
      RandomQueryParams qp;
      qp.num_conjuncts = q_size;
      qp.num_vars = q_size + 2;
      qp.name_prefix = "a";
      ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);
      qp.num_conjuncts = 3;
      qp.name_prefix = "b";
      ConjunctiveQuery q_prime = RandomQuery(rng, catalog, symbols, qp);

      ContainmentOptions options;
      options.limits.max_level = 24;
      options.limits.max_conjuncts = 40000;
      ++row.trials;
      bench::WallTimer timer;
      Result<ContainmentReport> r =
          CheckContainment(q, q_prime, deps, symbols, options);
      row.total_ms += timer.ElapsedMs();
      if (!r.ok()) continue;
      ++row.decided;
      if (r->contained) ++row.contained;
      row.level_bound = r->level_bound;
      if (r->chase_conjuncts > row.max_chase_conjuncts) {
        row.max_chase_conjuncts = r->chase_conjuncts;
      }
    }
    std::printf("%6zu %5zu/%-2zu %10zu %12.3f %14llu %12zu\n", row.q_size,
                row.decided, row.trials, row.contained,
                row.total_ms / static_cast<double>(row.trials),
                static_cast<unsigned long long>(row.level_bound),
                row.max_chase_conjuncts);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace cqchase

int main() {
  cqchase::bench::WallTimer bench_total_timer;
  cqchase::bench::PrintHeader(
      "E3 / Theorem 2, Corollary 2.1: containment cost vs |Q| at fixed W",
      "for each fixed IND width W the test is polynomial in query and "
      "dependency size; the Lemma 5 bound (and worst-case work) grows as "
      "(W+1)^W between tables");
  for (size_t w : {1, 2, 3}) cqchase::RunWidth(w);
  cqchase::bench::PrintJsonRecord("thm2_scaling", bench_total_timer.ElapsedMs());
  return 0;
}
