// E-SUBMIT — pooled async submission vs. legacy per-call thread fan-out on
// a stream of small mixed FD/IND (key-based Σ) batches.
//
// The legacy CheckMany spawned num_threads std::threads per call and joined
// them — acceptable for one big batch, pure churn for a service answering a
// stream of small ones. The async API executes every request on one
// persistent work-stealing pool (engine/executor.h), amortizing thread
// startup across the engine's lifetime. This bench replays the same
// batch stream both ways:
//
//   * legacy: per batch, spawn 8 threads, atomic task index, call
//     engine.Check — a faithful reimplementation of the pre-pool CheckMany
//     fan-out, paying its spawn/join per batch;
//   * pooled: per batch, Submit every task (Borrow; the bench frame blocks)
//     and Get every future, on an executor_threads = 8 engine.
//
// Exit code enforces the acceptance bar: verdicts must be identical
// task-for-task across modes, and pooled throughput must be >= 1.0x legacy
// at 8 workers on a >= 4-core host (honest reduced bars below that, same
// policy as bench_checkmany_scaling). Each mode runs twice on a fresh
// engine, alternating, and keeps its faster run, damping CI neighbor noise.
#include <cstdio>
#include <memory>
#include <vector>

#ifdef __linux__
#include <sched.h>
#endif

#include <atomic>
#include <thread>

#include "base/rng.h"
#include "base/string_util.h"
#include "bench/bench_util.h"
#include "engine/engine.h"
#include "gen/generators.h"

namespace cqchase {
namespace {

constexpr size_t kBatches = 48;
constexpr size_t kTasksPerBatch = 8;
constexpr size_t kWorkers = 8;

// Both modes run under the same tightened budgets: random tasks over a
// 4-IND key-based Σ can blow the chase up (the Lemma 5 bound is far beyond
// any practical prefix), and this bench measures scheduling, not chase
// depth. A budget-tripped task yields the same kResourceExhausted in both
// modes — verdict parity still holds task-for-task — while keeping every
// task bounded to milliseconds.
EngineConfig BenchConfig() {
  EngineConfig config;
  config.containment.limits.max_level = 8;
  config.containment.limits.max_conjuncts = 4000;
  config.containment.limits.max_steps = 100000;
  return config;
}

unsigned UsableCores() {
#ifdef __linux__
  cpu_set_t set;
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    int n = CPU_COUNT(&set);
    if (n > 0) return static_cast<unsigned>(n);
  }
#endif
  unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? hc : 1;
}

struct Workload {
  // unique_ptrs keep the catalog and symbol-table addresses stable across
  // moves of the Workload itself — the queries hold pointers into them.
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<SymbolTable> symbols;
  DependencySet deps;
  // Flattened batches: batch b is tasks [b*kTasksPerBatch, (b+1)*...).
  std::vector<ConjunctiveQuery> lhs;
  std::vector<ConjunctiveQuery> rhs;
};

Workload BuildWorkload() {
  Workload w;
  w.symbols = std::make_unique<SymbolTable>();
  Rng rng(23);
  RandomCatalogParams cp;
  cp.num_relations = 3;
  cp.min_arity = 2;
  cp.max_arity = 3;
  w.catalog = std::make_unique<Catalog>(RandomCatalog(rng, cp));
  // Key-based Σ: every task decidable by the Lemma 5 bounded chase, and
  // every batch distinct (no cross-batch cache shortcuts) — the bench
  // measures scheduling, not memoization.
  RandomKeyBasedParams kp;
  kp.key_size = 1;
  kp.num_inds = 4;
  w.deps = RandomKeyBasedDeps(rng, *w.catalog, kp);

  const size_t total = kBatches * kTasksPerBatch;
  w.lhs.reserve(total);
  w.rhs.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    RandomQueryParams qp;
    qp.num_conjuncts = 3;
    qp.num_vars = 5;
    qp.name_prefix = StrCat("L", i, "_");
    w.lhs.push_back(RandomQuery(rng, *w.catalog, *w.symbols, qp));
    // Odd tasks plant Q' inside a chase prefix of Q (contained by
    // construction); even tasks pair an independent random Q'.
    if (i % 2 == 1) {
      Result<ConjunctiveQuery> planted = PlantedSuperQuery(
          rng, w.lhs.back(), w.deps, *w.symbols, /*extra_conjuncts=*/1,
          /*chase_depth=*/2);
      if (planted.ok()) {
        w.rhs.push_back(*std::move(planted));
        continue;
      }
    }
    qp.num_conjuncts = 2;
    qp.num_vars = 4;
    qp.name_prefix = StrCat("R", i, "_");
    w.rhs.push_back(RandomQuery(rng, *w.catalog, *w.symbols, qp));
  }
  return w;
}

struct RunResult {
  double ms = 0;
  std::vector<bool> ok;
  std::vector<bool> contained;
  EngineStats stats;
};

void Record(const Result<EngineVerdict>& v, RunResult& r) {
  r.ok.push_back(v.ok());
  r.contained.push_back(v.ok() && v->report.contained);
}

// The pre-pool CheckMany fan-out, verbatim: per batch, spawn kWorkers
// threads over an atomic index and join them.
RunResult RunLegacy(const Workload& w) {
  ContainmentEngine engine(w.catalog.get(), w.symbols.get(), BenchConfig());
  RunResult r;
  bench::WallTimer timer;
  for (size_t b = 0; b < kBatches; ++b) {
    const size_t base = b * kTasksPerBatch;
    std::vector<std::optional<Result<EngineVerdict>>> scratch(kTasksPerBatch);
    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(kWorkers);
    for (size_t t = 0; t < kWorkers; ++t) {
      pool.emplace_back([&] {
        for (size_t i = next.fetch_add(1); i < kTasksPerBatch;
             i = next.fetch_add(1)) {
          scratch[i].emplace(
              engine.Check(w.lhs[base + i], w.rhs[base + i], w.deps));
        }
      });
    }
    for (std::thread& t : pool) t.join();
    for (auto& s : scratch) Record(*s, r);
  }
  r.ms = timer.ElapsedMs();
  r.stats = engine.stats();
  return r;
}

RunResult RunPooled(const Workload& w) {
  EngineConfig config = BenchConfig();
  config.executor_threads = kWorkers;
  ContainmentEngine engine(w.catalog.get(), w.symbols.get(), config);
  RunResult r;
  bench::WallTimer timer;
  for (size_t b = 0; b < kBatches; ++b) {
    const size_t base = b * kTasksPerBatch;
    std::vector<EngineFuture<EngineOutcome>> futures;
    futures.reserve(kTasksPerBatch);
    for (size_t i = 0; i < kTasksPerBatch; ++i) {
      futures.push_back(engine.Submit(ContainmentRequest::Borrow(
          w.lhs[base + i], w.rhs[base + i], w.deps)));
    }
    for (EngineFuture<EngineOutcome>& f : futures) {
      Result<EngineOutcome> outcome = f.Get();
      if (!outcome.ok()) {
        r.ok.push_back(false);
        r.contained.push_back(false);
      } else {
        r.ok.push_back(true);
        r.contained.push_back(outcome->verdict.report.contained);
      }
    }
  }
  r.ms = timer.ElapsedMs();
  r.stats = engine.stats();
  return r;
}

size_t CountMismatches(const RunResult& a, const RunResult& b) {
  size_t mismatches = 0;
  for (size_t i = 0; i < a.ok.size(); ++i) {
    if (a.ok[i] != b.ok[i] || a.contained[i] != b.contained[i]) ++mismatches;
  }
  return mismatches;
}

}  // namespace
}  // namespace cqchase

int main() {
  using namespace cqchase;
  bench::PrintHeader(
      "E-SUBMIT / pooled async submission vs legacy per-call thread fan-out",
      "a stream of small containment batches gains >= 1.0x throughput from "
      "the persistent work-stealing executor vs spawning 8 threads per "
      "batch, with identical verdicts");

  Workload w = BuildWorkload();

  // Alternate modes, fresh engine each run, keep each mode's faster run.
  RunResult legacy = RunLegacy(w);
  RunResult pooled = RunPooled(w);
  {
    RunResult legacy2 = RunLegacy(w);
    if (legacy2.ms < legacy.ms) legacy = std::move(legacy2);
    RunResult pooled2 = RunPooled(w);
    if (pooled2.ms < pooled.ms) pooled = std::move(pooled2);
  }

  const size_t mismatches = CountMismatches(legacy, pooled);
  size_t contained = 0;
  size_t errors = 0;
  for (size_t i = 0; i < pooled.ok.size(); ++i) {
    if (!pooled.ok[i]) ++errors;
    if (pooled.contained[i]) ++contained;
  }

  const double speedup = pooled.ms > 0 ? legacy.ms / pooled.ms : 0.0;
  const unsigned cores = UsableCores();
  // >= 1.0x is the acceptance bar where the hardware can express it; on
  // starved hosts degrade honestly (both modes collapse to time-slicing,
  // and the pool's win shrinks to spawn-cost-only).
  const double target = cores >= 4 ? 1.0 : cores >= 2 ? 0.9 : 0.7;

  std::printf(
      "%zu batches x %zu tasks, key-based FD/IND Sigma, %zu workers, %u "
      "usable core(s)\n",
      kBatches, kTasksPerBatch, kWorkers, cores);
  std::printf("  legacy (8 threads per batch): %9.3f ms\n", legacy.ms);
  std::printf("  pooled (persistent executor): %9.3f ms  (speedup %5.2fx, "
              "target >= %.2fx)\n",
              pooled.ms, speedup, target);
  std::printf("  verdicts : %zu contained, %zu mismatches, %zu errors\n",
              contained, mismatches, errors);
  std::printf("  executor : %llu tasks, %llu steals, %llu workers\n\n",
              static_cast<unsigned long long>(pooled.stats.executor_tasks),
              static_cast<unsigned long long>(pooled.stats.executor_steals),
              static_cast<unsigned long long>(pooled.stats.executor_workers));

  std::vector<std::pair<std::string, double>> counters = {
      {"batches", static_cast<double>(kBatches)},
      {"tasks_per_batch", static_cast<double>(kTasksPerBatch)},
      {"ms_legacy", legacy.ms},
      {"ms_pooled", pooled.ms},
      {"speedup_pooled_v_legacy", speedup},
      {"usable_cores", static_cast<double>(cores)},
      {"target", target},
      {"mismatches", static_cast<double>(mismatches)},
      {"errors", static_cast<double>(errors)}};
  bench::AppendEngineCounters(pooled.stats, counters);
  // Both modes measure under BenchConfig's cache knobs.
  bench::AppendEngineConfig(BenchConfig(), counters);
  bench::PrintJsonRecord("submit_throughput", legacy.ms + pooled.ms, counters);

  if (mismatches > 0) {
    std::fprintf(stderr, "FAIL: verdicts diverge between modes\n");
    return 1;
  }
  if (speedup < target) {
    std::fprintf(stderr,
                 "FAIL: pooled speedup %.2fx below the %.2fx target for %u "
                 "usable core(s)\n",
                 speedup, target, cores);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
