// E7 — the paper's introduction example. With
//   EMP(eno, sal, dept), DEP(dept, loc) and Σ = { EMP[dept] ⊆ DEP[dept] },
//   Q1 = {(e): ∃s,d,l EMP(e,s,d) ∧ DEP(d,l)} and Q2 = {(e): ∃s,d EMP(e,s,d)}
// are equivalent under Σ but only Q1 ⊆ Q2 holds without it. The optimizer
// consequently rewrites Q1 into the cheaper single-conjunct Q2.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/containment.h"
#include "core/minimize.h"
#include "gen/scenarios.h"
#include "opt/optimizer.h"

namespace cqchase {
namespace {

const char* Verdict(const Result<ContainmentReport>& r) {
  if (!r.ok()) return "error";
  return r->contained ? "yes" : "no";
}

void Run() {
  std::printf("%-14s %10s %10s %12s\n", "direction", "with IND", "without",
              "ms (with)");
  struct Direction {
    const char* name;
    size_t from, to;
  };
  for (const Direction& d :
       {Direction{"Q1 <= Q2", 0, 1}, Direction{"Q2 <= Q1", 1, 0}}) {
    Scenario with_ind = EmpDepScenario();
    Scenario without = EmpDepScenario();
    DependencySet empty;
    bench::WallTimer timer;
    Result<ContainmentReport> r_with =
        CheckContainment(with_ind.queries[d.from], with_ind.queries[d.to],
                         with_ind.deps, *with_ind.symbols);
    double ms = timer.ElapsedMs();
    Result<ContainmentReport> r_without =
        CheckContainment(without.queries[d.from], without.queries[d.to], empty,
                         *without.symbols);
    std::printf("%-14s %10s %10s %12.3f\n", d.name, Verdict(r_with),
                Verdict(r_without), ms);
  }

  // Equivalence + minimization: Q1 minimizes to Q2's shape under the IND.
  {
    Scenario s = EmpDepScenario();
    Result<bool> equiv = CheckEquivalence(s.queries[0], s.queries[1], s.deps,
                                          *s.symbols);
    std::printf("\nQ1 == Q2 under Sigma: %s\n",
                equiv.ok() && *equiv ? "yes" : "no");
    Result<bool> nonmin = IsNonMinimal(s.queries[0], s.deps, *s.symbols);
    std::printf("Q1 non-minimal under Sigma: %s\n",
                nonmin.ok() && *nonmin ? "yes" : "no");
    Result<OptimizeReport> opt = OptimizeQuery(s.queries[0], s.deps,
                                               *s.symbols);
    if (opt.ok()) {
      std::printf("optimizer: %s\n  ->  %s\n",
                  s.queries[0].ToString().c_str(),
                  opt->query.ToString().c_str());
      for (const std::string& line : opt->trace) {
        std::printf("  %s\n", line.c_str());
      }
    }
  }

  // Same checks on the key-based variant (Theorem 2 case (ii) machinery).
  {
    Scenario s = KeyBasedEmpDepScenario();
    std::string why;
    std::printf("\nkey-based variant: Sigma is key-based: %s\n",
                s.deps.IsKeyBased(*s.catalog, &why) ? "yes" : why.c_str());
    Result<bool> equiv = CheckEquivalence(s.queries[0], s.queries[1], s.deps,
                                          *s.symbols);
    std::printf("Q1 == Q2 under key-based Sigma: %s\n",
                equiv.ok() && *equiv ? "yes" : "no");
  }
}

}  // namespace
}  // namespace cqchase

int main() {
  cqchase::bench::WallTimer bench_total_timer;
  cqchase::bench::PrintHeader(
      "E7 / introduction example: EMP/DEP equivalence under an IND",
      "Q1 and Q2 are equivalent iff the IND EMP[dept] <= DEP[dept] holds; "
      "the optimizer uses this to drop the DEP join from Q1");
  cqchase::Run();
  cqchase::bench::PrintJsonRecord("intro_example", bench_total_timer.ElapsedMs());
  return 0;
}
