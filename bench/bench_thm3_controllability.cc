// E10 — Theorem 3 (finite controllability): for Σ a set of width-1 INDs or
// a key-based set, Σ ⊨ Q ⊆f Q' implies Σ ⊨ Q ⊆∞ Q' (and hence the two
// notions coincide, since ⊆∞ always implies ⊆f).
//
// Empirical validation on random scenarios: whenever the chase test decides
// NOT ⊆∞, a *finite* counterexample must exist — we look for one with the
// Theorem 3 Q* construction and with random sampling, and report how often
// each succeeds; whenever the chase test decides ⊆∞, sampling must never
// find a counterexample (zero contradictions).
#include <cstdio>

#include "base/rng.h"
#include "bench/bench_util.h"
#include "core/containment.h"
#include "finite/finite_containment.h"
#include "gen/generators.h"

namespace cqchase {
namespace {

struct Tally {
  size_t decided = 0;
  size_t contained = 0;
  size_t not_contained = 0;
  size_t refuted_by_qstar = 0;
  size_t refuted_by_sampling = 0;
  size_t unrefuted = 0;
  size_t contradictions = 0;  // must stay 0
};

// True if Q* (the closed-off finite chase of q) is itself a finite
// counterexample: it satisfies Sigma, contains q's summary row in Q(Q*),
// but not in Q'(Q*).
bool QStarRefutes(const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
                  const DependencySet& deps, SymbolTable& symbols,
                  uint32_t cutoff) {
  FiniteWitnessParams params;
  params.cutoff_level = cutoff;
  params.max_conjuncts = 20000;
  Result<FiniteWitness> witness =
      BuildFiniteWitness(q, deps, symbols, params);
  if (!witness.ok()) return false;
  if (!witness->instance.Satisfies(deps)) return false;
  // q's summary row maps into Q(Q*) by construction; check Q'(Q*) misses it.
  auto rows_q = witness->instance.Eval(q);
  auto rows_qp = witness->instance.Eval(q_prime);
  bool in_q = false, in_qp = false;
  for (const auto& row : rows_q) in_q |= (row == witness->summary);
  for (const auto& row : rows_qp) in_qp |= (row == witness->summary);
  return in_q && !in_qp;
}

void RunClass(const char* label, bool key_based) {
  Tally tally;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed * 17 + (key_based ? 1 : 0));
    RandomCatalogParams cp;
    cp.num_relations = 3;
    cp.min_arity = 2;
    cp.max_arity = 3;
    auto catalog = RandomCatalog(rng, cp);
    DependencySet deps;
    if (key_based) {
      RandomKeyBasedParams kp;
      kp.num_inds = 2;
      deps = RandomKeyBasedDeps(rng, catalog, kp);
      if (!deps.IsKeyBased(catalog)) continue;
    } else {
      RandomIndParams ip;
      ip.count = 3;
      ip.width = 1;
      deps = RandomIndOnlyDeps(rng, catalog, ip);
    }
    SymbolTable symbols;
    RandomQueryParams qp;
    qp.num_conjuncts = 3;
    qp.num_vars = 4;
    qp.name_prefix = "a";
    ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);
    qp.num_conjuncts = 2;
    qp.name_prefix = "b";
    ConjunctiveQuery q_prime = RandomQuery(rng, catalog, symbols, qp);

    ContainmentOptions options;
    options.limits.max_level = 20;
    Result<ContainmentReport> r =
        CheckContainment(q, q_prime, deps, symbols, options);
    if (!r.ok()) continue;
    ++tally.decided;

    RandomSearchParams sp;
    sp.samples = 60;
    sp.domain_size = 5;
    sp.tuples_per_relation = 4;
    sp.seed = seed;
    Result<std::optional<Instance>> cex =
        RandomFiniteCounterexample(q, q_prime, deps, symbols, sp);

    if (r->contained) {
      ++tally.contained;
      if (cex.ok() && cex->has_value()) ++tally.contradictions;
    } else {
      ++tally.not_contained;
      uint32_t cutoff = SuggestCutoff(q_prime, deps).value_or(4);
      if (cutoff > 8) cutoff = 8;  // keep Q* tractable
      if (QStarRefutes(q, q_prime, deps, symbols, cutoff)) {
        ++tally.refuted_by_qstar;
      } else if (cex.ok() && cex->has_value()) {
        ++tally.refuted_by_sampling;
      } else {
        ++tally.unrefuted;
      }
    }
  }
  std::printf("%-14s %8zu %10zu %14zu %10zu %10zu %10zu %14zu\n", label,
              tally.decided, tally.contained, tally.not_contained,
              tally.refuted_by_qstar, tally.refuted_by_sampling,
              tally.unrefuted, tally.contradictions);
}

}  // namespace
}  // namespace cqchase

int main() {
  cqchase::bench::WallTimer bench_total_timer;
  cqchase::bench::PrintHeader(
      "E10 / Theorem 3: finite controllability for width-1 INDs and "
      "key-based Sigma",
      "not-contained verdicts are witnessed by *finite* counterexamples "
      "(the Q* construction or sampling); contained verdicts are never "
      "contradicted by any finite Sigma-database");
  std::printf("%-14s %8s %10s %14s %10s %10s %10s %14s\n", "class", "decided",
              "contained", "not-contained", "Q* refut", "sampled", "open",
              "contradictions");
  cqchase::RunClass("width-1 INDs", /*key_based=*/false);
  cqchase::RunClass("key-based", /*key_based=*/true);
  cqchase::bench::PrintJsonRecord("thm3_controllability", bench_total_timer.ElapsedMs());
  return 0;
}
