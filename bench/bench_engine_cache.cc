// E-ENGINE — the ContainmentEngine's canonicalization + memoization layer on
// a repeated/isomorphic workload: production traffic re-asks the same
// containment questions endlessly (plan caches, dashboards, per-tenant
// copies of one schema's queries), differing only by variable names. The
// engine's isomorphism-invariant verdict cache answers every re-ask without
// re-chasing; this bench measures the speedup against the identical engine
// with caching disabled and checks the verdicts agree task by task.
//
// Exit code is non-zero if verdicts diverge or the speedup misses the 2x
// acceptance target (the measured margin is typically far larger), so the
// CI smoke run enforces the claim.
#include <cstdio>
#include <memory>
#include <vector>

#include "base/rng.h"
#include "base/string_util.h"
#include "bench/bench_util.h"
#include "engine/engine.h"
#include "gen/generators.h"

namespace cqchase {
namespace {

struct Workload {
  // unique_ptrs keep the catalog and symbol-table addresses stable across
  // moves of the Workload itself — the queries hold pointers into them
  // (same device as gen/scenarios.h's Scenario).
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<SymbolTable> symbols;
  DependencySet deps;
  // classes * copies queries; copy k of class c is isomorphic to copy 0 of
  // class c (same generator seed, different variable-name prefix).
  std::vector<ConjunctiveQuery> lhs;
  std::vector<ConjunctiveQuery> rhs;
};

Workload BuildWorkload(size_t classes, size_t copies) {
  Workload w;
  w.symbols = std::make_unique<SymbolTable>();
  {
    Rng rng(7);
    RandomCatalogParams cp;
    cp.num_relations = 4;
    cp.min_arity = 2;
    cp.max_arity = 3;
    w.catalog = std::make_unique<Catalog>(RandomCatalog(rng, cp));
    RandomIndParams ip;
    ip.count = 4;
    ip.width = 1;  // W = 1 keeps the Lemma 5 bound small: every task decides
    w.deps = RandomIndOnlyDeps(rng, *w.catalog, ip);
  }
  w.lhs.reserve(classes * copies);
  w.rhs.reserve(classes * copies);
  for (size_t c = 0; c < classes; ++c) {
    // Even classes pair with an independent random Q' (almost always not
    // contained); odd classes plant Q' inside a chase prefix of Q, so the
    // verdict is contained by construction — the workload exercises both
    // answers through the cache.
    const bool planted = (c % 2) == 1;
    for (size_t k = 0; k < copies; ++k) {
      // Re-seeding per copy reproduces the structure of copy 0; the prefix
      // makes the interned variables disjoint, i.e. a fresh isomorphic copy.
      Rng rng(1000 + c);
      RandomQueryParams qp;
      qp.num_conjuncts = 6;
      qp.num_vars = 7;
      qp.name_prefix = StrCat("L", c, "v", k, "_");
      w.lhs.push_back(RandomQuery(rng, *w.catalog, *w.symbols, qp));
      if (planted) {
        Result<ConjunctiveQuery> q_prime = PlantedSuperQuery(
            rng, w.lhs.back(), w.deps, *w.symbols, /*extra_conjuncts=*/2,
            /*chase_depth=*/2);
        if (q_prime.ok()) {
          w.rhs.push_back(*std::move(q_prime));
          continue;
        }
      }
      qp.num_conjuncts = 2;
      qp.num_vars = 4;
      qp.name_prefix = StrCat("R", c, "v", k, "_");
      w.rhs.push_back(RandomQuery(rng, *w.catalog, *w.symbols, qp));
    }
  }
  return w;
}

}  // namespace
}  // namespace cqchase

int main() {
  using namespace cqchase;
  bench::PrintHeader(
      "E-ENGINE / ContainmentEngine verdict memoization",
      "a repeated/isomorphic containment workload resolves >= 2x faster "
      "with the canonical verdict cache than without, with identical "
      "verdicts");

  const size_t kClasses = 6;
  const size_t kCopies = 30;
  Workload w = BuildWorkload(kClasses, kCopies);
  std::vector<ContainmentTask> tasks;
  tasks.reserve(w.lhs.size());
  for (size_t i = 0; i < w.lhs.size(); ++i) {
    tasks.push_back(ContainmentTask{&w.lhs[i], &w.rhs[i], &w.deps});
  }

  EngineConfig cached_config;
  ContainmentEngine cached(w.catalog.get(), w.symbols.get(), cached_config);
  bench::WallTimer cached_timer;
  std::vector<Result<EngineVerdict>> cached_results = cached.CheckMany(tasks);
  const double cached_ms = cached_timer.ElapsedMs();

  EngineConfig uncached_config;
  uncached_config.enable_cache = false;
  ContainmentEngine uncached(w.catalog.get(), w.symbols.get(), uncached_config);
  bench::WallTimer uncached_timer;
  std::vector<Result<EngineVerdict>> uncached_results =
      uncached.CheckMany(tasks);
  const double uncached_ms = uncached_timer.ElapsedMs();

  size_t contained = 0;
  size_t mismatches = 0;
  size_t errors = 0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (!cached_results[i].ok() || !uncached_results[i].ok()) {
      ++errors;
      continue;
    }
    if (cached_results[i]->report.contained !=
        uncached_results[i]->report.contained) {
      ++mismatches;
    }
    if (cached_results[i]->report.contained) ++contained;
  }
  const EngineStats stats = cached.stats();
  const double speedup = cached_ms > 0 ? uncached_ms / cached_ms : 0.0;

  std::printf("%zu tasks (%zu classes x %zu isomorphic copies)\n",
              tasks.size(), kClasses, kCopies);
  std::printf("  cache on : %8.3f ms  (%llu hits, %llu misses, %llu chases)\n",
              cached_ms, static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses),
              static_cast<unsigned long long>(stats.chases_built));
  std::printf("  cache off: %8.3f ms\n", uncached_ms);
  std::printf("  speedup  : %8.2fx   (target >= 2x)\n", speedup);
  std::printf("  verdicts : %zu contained, %zu mismatches, %zu errors\n\n",
              contained, mismatches, errors);

  std::vector<std::pair<std::string, double>> counters = {
      {"tasks", static_cast<double>(tasks.size())},
      {"cached_ms", cached_ms},
      {"uncached_ms", uncached_ms},
      {"speedup", speedup},
      {"cache_hits", static_cast<double>(stats.cache_hits)},
      {"mismatches", static_cast<double>(mismatches)},
      {"errors", static_cast<double>(errors)}};
  bench::AppendEngineConfig(cached_config, counters);
  bench::PrintJsonRecord("engine_cache", cached_ms + uncached_ms, counters);

  if (mismatches > 0 || errors > 0) {
    std::fprintf(stderr, "FAIL: verdict mismatch or error\n");
    return 1;
  }
  if (speedup < 2.0) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below the 2x target\n", speedup);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
