// E1 — Figure 1: the R-chase and O-chase of Q = {(c): ∃a,b R(a,b,c)} with
// respect to Σ = { R[1] ⊆ T[1], R[1,3] ⊆ S[1,2], S[1,3] ⊆ R[1,2] }.
// Regenerates the figure as level-by-level text plus Graphviz DOT, and
// prints per-level conjunct counts showing both chases are infinite.
#include <cstdio>

#include "bench/bench_util.h"
#include "chase/chase.h"
#include "chase/chase_graph.h"
#include "gen/scenarios.h"

namespace cqchase {
namespace {

void RunVariant(ChaseVariant variant, const char* name, uint32_t levels) {
  Scenario s = Fig1Scenario();
  ChaseLimits limits;
  limits.max_level = levels;
  Chase chase(s.catalog.get(), s.symbols.get(), &s.deps, variant, limits);
  Status init = chase.Init(s.queries[0]);
  if (!init.ok()) {
    std::printf("init failed: %s\n", init.ToString().c_str());
    return;
  }
  Result<ChaseOutcome> outcome = chase.ExpandToLevel(levels);
  if (!outcome.ok()) {
    std::printf("expand failed: %s\n", outcome.status().ToString().c_str());
    return;
  }
  std::printf("--- %s (outcome: %s) ---\n", name,
              *outcome == ChaseOutcome::kSaturated ? "saturated"
                                                   : "truncated/infinite");
  std::printf("%s", ChaseGraphToText(chase).c_str());
  std::printf("level sizes:");
  for (uint32_t l = 0; l <= chase.MaxAliveLevel(); ++l) {
    std::printf(" L%u=%zu", l, chase.CountAtLevel(l));
  }
  std::printf("\ntotal conjuncts: %zu, arcs: %zu (cross: ",
              chase.AliveFacts().size(), chase.arcs().size());
  size_t cross = 0;
  for (const ChaseArc& a : chase.arcs()) cross += a.cross ? 1 : 0;
  std::printf("%zu)\n\nDOT:\n%s\n", cross, ChaseGraphToDot(chase).c_str());
}

}  // namespace
}  // namespace cqchase

int main() {
  cqchase::bench::WallTimer bench_total_timer;
  using namespace cqchase;
  bench::PrintHeader(
      "E1 / Figure 1: R-chase and O-chase graphs",
      "both chases of the example are infinite; the R-chase replaces "
      "repeated T-conjunct creations by cross arcs, the O-chase re-creates "
      "them at every level");
  RunVariant(ChaseVariant::kRequired, "R-chase", 5);
  RunVariant(ChaseVariant::kOblivious, "O-chase", 5);
  cqchase::bench::PrintJsonRecord("fig1_chase_graphs", bench_total_timer.ElapsedMs());
  return 0;
}
