// Σ reliance analysis: cost of the static pass, and the decidable fragment
// it unlocks.
//
// Part 1 (report-only): the SigmaGraph is built inside AnalyzeSigma, which
// sits on the hot path of every cache-missing Check. On a wide Σ (~300
// distinct width-1 INDs — the regime bench_chase_bulk enforces for the
// chase core) the full analysis (edge construction, Tarjan condensation,
// critical path) must stay well under the cost of the chase it precedes;
// the record reports best-of-N wall time so the trajectory catches a
// regression from linear to quadratic edge construction.
//
// Part 2 (ENFORCED GATE): the paper's classes (FD-only, IND-only,
// key-based) left general FD+IND mixes undecided without
// allow_semidecision. The reliance analysis closes part of that gap: an
// acyclic IND reliance subgraph bounds the chase by its critical path, so
// kAcyclicInd tasks get a terminating decision procedure. The gate builds
// randomized acyclic FD+IND mixes that fall OUTSIDE every paper class,
// checks containment with allow_semidecision=false (the configuration the
// seed answered with kUnimplemented), and exits non-zero unless every task
// (a) classifies as kAcyclicInd, (b) dispatches to kIterativeDeepening or
// better, (c) returns a decided verdict — zero undecided — and (d) planted
// super-queries come back contained.
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/reliance.h"
#include "base/rng.h"
#include "base/string_util.h"
#include "bench/bench_util.h"
#include "engine/engine.h"
#include "gen/generators.h"

namespace cqchase {
namespace {

using bench::PrintJsonRecord;
using bench::WallTimer;

// PrintJsonRecord prints integral doubles via %lld only below 9.0e15; a
// 48-bit slice of the 64-bit FNV fingerprint always prints exactly, and is
// still far too wide to collide by accident within one trajectory.
double FingerprintCounter(uint64_t fp) {
  return static_cast<double>(fp & ((uint64_t{1} << 48) - 1));
}

// --- Part 1: analysis cost on the wide-Σ workload ----------------------------

void RunAnalysisCost() {
  Rng rng(20260808);
  RandomCatalogParams cp;
  cp.num_relations = 12;
  cp.min_arity = 2;
  cp.max_arity = 3;
  const Catalog catalog = RandomCatalog(rng, cp);
  RandomIndParams ip;
  ip.count = 300;
  ip.width = 1;
  const DependencySet deps = RandomIndOnlyDeps(rng, catalog, ip);

  constexpr int kReps = 25;
  double best_ms = -1.0;
  std::shared_ptr<const SigmaGraph> graph;
  for (int i = 0; i < kReps; ++i) {
    WallTimer timer;
    auto g = std::make_shared<const SigmaGraph>(deps, catalog);
    const std::optional<uint32_t> depth = g->IndCriticalPath();
    const double ms = timer.ElapsedMs();
    (void)depth;
    if (best_ms < 0.0 || ms < best_ms) {
      best_ms = ms;
      graph = std::move(g);
    }
  }

  std::vector<std::pair<std::string, double>> counters;
  counters.emplace_back("inds", static_cast<double>(graph->num_inds()));
  counters.emplace_back("fds", static_cast<double>(graph->num_fds()));
  counters.emplace_back("edges", static_cast<double>(graph->edges().size()));
  counters.emplace_back("components",
                        static_cast<double>(graph->components().size()));
  counters.emplace_back("frontier_layers",
                        static_cast<double>(graph->frontiers().size()));
  counters.emplace_back("acyclic",
                        graph->IndSubgraphAcyclic() ? 1.0 : 0.0);
  counters.emplace_back("fingerprint",
                        FingerprintCounter(graph->Fingerprint()));
  PrintJsonRecord("reliance_analysis_wide", best_ms, counters);
  std::printf(
      "wide Σ analysis: %zu INDs, %zu edges, %zu components, %zu frontier "
      "layers | best of %d: %.3f ms (report-only; sub-ms expected)\n",
      graph->num_inds(), graph->edges().size(), graph->components().size(),
      graph->frontiers().size(), kReps, best_ms);
}

// --- Part 2: the acyclic-fragment decidability gate --------------------------

struct AcyclicWorkload {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<SymbolTable> symbols;
  DependencySet deps;
  uint64_t seed = 0;
};

// Builds one acyclic FD+IND mix. Every IND points from a lower-indexed
// relation to a higher-indexed one (the relation order is a topological
// order, so no rejection sampling), and an FD on the last relation makes
// the mix general — not FD-only, not IND-only, and usually not key-based.
// Returns nullptr when the draw lands back inside a paper class (e.g. the
// INDs happen to avoid the FD's non-key columns); the caller skips to the
// next seed so every gated task really exercises kAcyclicInd.
std::unique_ptr<AcyclicWorkload> BuildAcyclicWorkload(uint64_t seed) {
  auto w = std::make_unique<AcyclicWorkload>();
  w->seed = seed;
  w->symbols = std::make_unique<SymbolTable>();
  Rng rng(seed);
  RandomCatalogParams cp;
  cp.num_relations = 5;
  cp.min_arity = 2;
  cp.max_arity = 3;
  w->catalog = std::make_unique<Catalog>(RandomCatalog(rng, cp));
  for (int i = 0; i < 5; ++i) {
    InclusionDependency ind;
    ind.lhs_relation =
        static_cast<RelationId>(rng.Index(w->catalog->num_relations() - 1));
    ind.rhs_relation = static_cast<RelationId>(
        rng.Uniform(ind.lhs_relation + 1, w->catalog->num_relations() - 1));
    ind.lhs_columns = {
        static_cast<uint32_t>(rng.Index(w->catalog->arity(ind.lhs_relation)))};
    ind.rhs_columns = {
        static_cast<uint32_t>(rng.Index(w->catalog->arity(ind.rhs_relation)))};
    if (!w->deps.AddInd(*w->catalog, ind).ok()) return nullptr;
  }
  FunctionalDependency fd;
  fd.relation = static_cast<RelationId>(w->catalog->num_relations() - 1);
  fd.lhs = {0};
  fd.rhs = 1;
  if (!w->deps.AddFd(*w->catalog, fd).ok()) return nullptr;
  const SigmaAnalysis a = AnalyzeSigma(w->deps, *w->catalog);
  if (a.sigma_class != SigmaClass::kAcyclicInd) return nullptr;
  return w;
}

bool RunDecidabilityGate() {
  constexpr size_t kWorkloads = 8;
  constexpr size_t kTasksPerWorkload = 4;  // planted + random per pair seed

  size_t tasks = 0;
  size_t undecided = 0;
  size_t contained = 0;
  size_t planted_checked = 0;
  size_t planted_missed = 0;
  size_t wrong_class = 0;
  size_t wrong_strategy = 0;
  double total_ms = 0.0;
  uint64_t fingerprint_xor = 0;

  uint64_t seed = 1;
  for (size_t built = 0; built < kWorkloads; ++seed) {
    std::unique_ptr<AcyclicWorkload> w = BuildAcyclicWorkload(seed);
    if (w == nullptr) continue;
    ++built;

    // The default engine config: allow_semidecision stays false, so any
    // task the dispatcher cannot prove terminating is a hard error here —
    // exactly the configuration the gate exists to protect.
    ContainmentEngine engine(w->catalog.get(), w->symbols.get());
    const SigmaAnalysis a = AnalyzeSigma(w->deps, *w->catalog);
    fingerprint_xor ^= a.graph->Fingerprint();

    Rng rng(w->seed * 1000003);
    for (size_t t = 0; t < kTasksPerWorkload; ++t) {
      RandomQueryParams qp;
      qp.num_conjuncts = 3;
      qp.num_vars = 5;
      qp.name_prefix = StrCat("w", w->seed, "t", t, "_");
      const ConjunctiveQuery q = RandomQuery(rng, *w->catalog, *w->symbols, qp);

      bool planted = (t % 2) == 1;
      ConjunctiveQuery q_prime = [&] {
        if (planted) {
          Result<ConjunctiveQuery> p =
              PlantedSuperQuery(rng, q, w->deps, *w->symbols,
                                /*extra_conjuncts=*/2, /*chase_depth=*/2);
          if (p.ok()) return *std::move(p);
          planted = false;  // fall back to a random (either-verdict) task
        }
        RandomQueryParams rp;
        rp.num_conjuncts = 2;
        rp.num_vars = 4;
        rp.name_prefix = StrCat("r", w->seed, "t", t, "_");
        return RandomQuery(rng, *w->catalog, *w->symbols, rp);
      }();

      ++tasks;
      WallTimer timer;
      Result<EngineVerdict> verdict = engine.Check(q, q_prime, w->deps);
      total_ms += timer.ElapsedMs();
      if (!verdict.ok()) {
        std::printf("GATE: undecided task (seed %" PRIu64 ", task %zu): %s\n",
                    w->seed, t, verdict.status().ToString().c_str());
        ++undecided;
        continue;
      }
      if (verdict->sigma_class != SigmaClass::kAcyclicInd) {
        std::printf("GATE: task classified %s, expected acyclic-ind\n",
                    std::string(ToString(verdict->sigma_class)).c_str());
        ++wrong_class;
      }
      if (verdict->strategy > DecisionStrategy::kIterativeDeepening) {
        std::printf("GATE: task dispatched to %s — not a decision procedure\n",
                    std::string(ToString(verdict->strategy)).c_str());
        ++wrong_strategy;
      }
      if (verdict->report.contained) ++contained;
      if (planted) {
        ++planted_checked;
        if (!verdict->report.contained) {
          std::printf("GATE: planted super-query came back not-contained "
                      "(seed %" PRIu64 ", task %zu)\n",
                      w->seed, t);
          ++planted_missed;
        }
      }
    }
  }

  std::vector<std::pair<std::string, double>> counters;
  counters.emplace_back("workloads", static_cast<double>(kWorkloads));
  counters.emplace_back("tasks", static_cast<double>(tasks));
  counters.emplace_back("undecided", static_cast<double>(undecided));
  counters.emplace_back("contained", static_cast<double>(contained));
  counters.emplace_back("planted_checked",
                        static_cast<double>(planted_checked));
  counters.emplace_back("planted_missed",
                        static_cast<double>(planted_missed));
  counters.emplace_back("fingerprint", FingerprintCounter(fingerprint_xor));
  PrintJsonRecord("reliance_acyclic_gate", total_ms, counters);

  std::printf(
      "acyclic gate: %zu tasks over %zu workloads | %zu contained (%zu "
      "planted, %zu missed) | %zu undecided | %.3f ms total\n",
      tasks, kWorkloads, contained, planted_checked, planted_missed,
      undecided, total_ms);

  bool ok = true;
  if (undecided != 0) {
    std::printf("GATE FAILED: %zu undecided with allow_semidecision=false\n",
                undecided);
    ok = false;
  }
  if (wrong_class != 0 || wrong_strategy != 0) {
    std::printf("GATE FAILED: %zu off-class, %zu off-strategy tasks\n",
                wrong_class, wrong_strategy);
    ok = false;
  }
  if (planted_missed != 0) {
    std::printf("GATE FAILED: %zu planted containments missed\n",
                planted_missed);
    ok = false;
  }
  if (planted_checked == 0) {
    std::printf("GATE FAILED: no planted super-query generated — the "
                "contained half of the gate never ran\n");
    ok = false;
  }
  if (ok) {
    std::printf("gate ok: every acyclic FD+IND task decided without "
                "semi-decision permission\n");
  }
  return ok;
}

}  // namespace
}  // namespace cqchase

int main() {
  cqchase::bench::PrintHeader(
      "bench_reliance",
      "the static reliance analysis is cheap relative to the chase it "
      "precedes, and its acyclic-IND fragment is decidable — no "
      "semi-decision escape hatch needed beyond the paper's classes");

  cqchase::RunAnalysisCost();
  std::printf("\n");
  if (!cqchase::RunDecidabilityGate()) {
    std::printf("\nbench_reliance: FAILED\n");
    return 1;
  }
  std::printf("\nbench_reliance: OK\n");
  return 0;
}
