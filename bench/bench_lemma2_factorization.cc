// E5 — Lemma 2: for key-based Σ = Σ[F] ∪ Σ[I], the R-chase factors:
// R-chase_Σ(Q) = R-chase_Σ[I](chase_Σ[F](Q)) — all FD applications precede
// all IND applications, and once the FD phase has run, no FD ever fires
// again. This bench builds both sides on random key-based scenarios,
// compares prefixes up to a level cutoff for isomorphism (the paper's
// "unique up to renaming of the variables"), and reports timings.
#include <cstdio>

#include "base/rng.h"
#include "bench/bench_util.h"
#include "chase/chase.h"
#include "core/homomorphism.h"
#include "gen/generators.h"
#include "gen/scenarios.h"

namespace cqchase {
namespace {

ConjunctiveQuery PrefixAsQuery(const Chase& chase, uint32_t max_level,
                               const Catalog* catalog,
                               const SymbolTable* symbols) {
  ConjunctiveQuery q(catalog, symbols);
  for (const Fact& f : chase.AliveFacts(max_level)) q.AddConjunct(f);
  q.SetSummary(chase.summary());
  return q;
}

// Runs one comparison; returns true when the two prefixes are isomorphic.
bool CompareOnce(Scenario& s, const ConjunctiveQuery& q, uint32_t level,
                 double* combined_ms, double* factored_ms) {
  ChaseLimits limits;
  limits.max_level = level;

  bench::WallTimer t1;
  Chase combined(s.catalog.get(), s.symbols.get(), &s.deps,
                 ChaseVariant::kRequired, limits);
  if (!combined.Init(q).ok()) return false;
  if (!combined.ExpandToLevel(level).ok()) return false;
  *combined_ms += t1.ElapsedMs();

  bench::WallTimer t2;
  DependencySet fds = s.deps.FdsOnly();
  DependencySet inds = s.deps.IndsOnly();
  Chase fd_phase(s.catalog.get(), s.symbols.get(), &fds,
                 ChaseVariant::kRequired, limits);
  if (!fd_phase.Init(q).ok()) return false;
  if (!fd_phase.Run().ok()) return false;
  Chase ind_phase(s.catalog.get(), s.symbols.get(), &inds,
                  ChaseVariant::kRequired, limits);
  if (!ind_phase.Init(fd_phase.AsQuery()).ok()) return false;
  if (!ind_phase.ExpandToLevel(level).ok()) return false;
  *factored_ms += t2.ElapsedMs();

  ConjunctiveQuery lhs =
      PrefixAsQuery(combined, level, s.catalog.get(), s.symbols.get());
  ConjunctiveQuery rhs =
      PrefixAsQuery(ind_phase, level, s.catalog.get(), s.symbols.get());
  return QueriesIsomorphic(lhs, rhs);
}

void Run() {
  std::printf("%18s %8s %10s %14s %14s\n", "scenario", "level", "isomorphic",
              "combined ms", "factored ms");
  // The paper's key-based EMP/DEP scenario.
  for (uint32_t level : {1, 2, 4}) {
    Scenario s = KeyBasedEmpDepScenario();
    ConjunctiveQuery q = s.queries[0];
    double c_ms = 0, f_ms = 0;
    bool iso = CompareOnce(s, q, level, &c_ms, &f_ms);
    std::printf("%18s %8u %10s %14.3f %14.3f\n", "emp/dep", level,
                iso ? "yes" : "NO", c_ms, f_ms);
  }
  // Random key-based scenarios.
  size_t iso_count = 0, total = 0;
  double c_ms = 0, f_ms = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    RandomCatalogParams cp;
    cp.num_relations = 3;
    cp.min_arity = 2;
    cp.max_arity = 4;
    auto catalog = std::make_unique<Catalog>(RandomCatalog(rng, cp));
    RandomKeyBasedParams kp;
    kp.num_inds = 3;
    DependencySet deps = RandomKeyBasedDeps(rng, *catalog, kp);
    if (!deps.IsKeyBased(*catalog)) continue;
    auto symbols = std::make_unique<SymbolTable>();
    RandomQueryParams qp;
    qp.num_conjuncts = 4;
    qp.num_vars = 5;
    ConjunctiveQuery q = RandomQuery(rng, *catalog, *symbols, qp);
    Scenario s;
    s.catalog = std::move(catalog);
    s.symbols = std::move(symbols);
    s.deps = std::move(deps);
    ++total;
    if (CompareOnce(s, q, /*level=*/4, &c_ms, &f_ms)) ++iso_count;
  }
  std::printf("%18s %8u %6zu/%-3zu %14.3f %14.3f\n", "random key-based", 4u,
              iso_count, total, c_ms, f_ms);
}

}  // namespace
}  // namespace cqchase

int main() {
  cqchase::bench::WallTimer bench_total_timer;
  cqchase::bench::PrintHeader(
      "E5 / Lemma 2: R-chase factorization for key-based dependencies",
      "R-chase_Sigma(Q) equals R-chase_INDs(chase_FDs(Q)) up to variable "
      "renaming, level by level");
  cqchase::Run();
  cqchase::bench::PrintJsonRecord("lemma2_factorization", bench_total_timer.ElapsedMs());
  return 0;
}
