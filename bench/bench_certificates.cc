// E13 — Theorem 2's NP certificate, measured. The theorem's content is that
// a containment witness has a *short, checkable* proof: the image of Q'
// plus enough of chase_Σ(Q) to justify it. This bench measures certificate
// size (in symbols) and independent-verification time as the planted witness
// depth grows, and confirms the verifier rejects corrupted certificates.
#include <cstdio>

#include "base/rng.h"
#include "bench/bench_util.h"
#include "core/certificate.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "gen/scenarios.h"

namespace cqchase {
namespace {

// A chain query of `hops` R-hops off the summary variable; under
// Σ = {R[2] ⊆ R[1]} its witness must descend `hops` levels.
ConjunctiveQuery ChainQuery(const Catalog& catalog, SymbolTable& symbols,
                            size_t hops) {
  std::string text = "ans(x) :- ";
  std::string prev = "x";
  for (size_t i = 1; i <= hops; ++i) {
    if (i > 1) text += ", ";
    std::string cur = "a" + std::to_string(i);
    text += "R(" + prev + ", " + cur + ")";
    prev = cur;
  }
  Result<ConjunctiveQuery> q = ParseQuery(catalog, symbols, text);
  return *q;
}

void Run() {
  std::printf("%8s %10s %14s %12s %12s %12s\n", "hops", "steps",
              "cert symbols", "build ms", "verify ms", "verdict");
  for (size_t hops : {1, 2, 4, 8, 16, 32}) {
    Catalog catalog;
    (void)catalog.AddRelation("R", {"a", "b"});
    SymbolTable symbols;
    DependencySet deps = *ParseDependencies(catalog, "R[2] <= R[1]");
    ConjunctiveQuery q = *ParseQuery(catalog, symbols, "ans(x) :- R(x, y)");
    ConjunctiveQuery q_prime = ChainQuery(catalog, symbols, hops);

    ContainmentOptions options;
    options.limits.max_level = static_cast<uint32_t>(hops) + 2;
    bench::WallTimer build_timer;
    Result<std::optional<ContainmentCertificate>> cert =
        BuildCertificate(q, q_prime, deps, symbols, options);
    double build_ms = build_timer.ElapsedMs();
    if (!cert.ok() || !cert->has_value()) {
      std::printf("%8zu build failed\n", hops);
      continue;
    }
    bench::WallTimer verify_timer;
    Status verdict = VerifyCertificate(**cert, q, q_prime, deps, symbols);
    double verify_ms = verify_timer.ElapsedMs();
    std::printf("%8zu %10zu %14zu %12.3f %12.3f %12s\n", hops,
                (*cert)->steps.size(), (*cert)->SizeInSymbols(), build_ms,
                verify_ms, verdict.ok() ? "valid" : "INVALID");
  }

  // Tamper sweep: corrupt each byte-level component; the verifier must
  // reject every mutation.
  std::printf("\ntamper sweep (EMP/DEP intro scenario):\n");
  Scenario s = EmpDepScenario();
  Result<std::optional<ContainmentCertificate>> cert =
      BuildCertificate(s.queries[1], s.queries[0], s.deps, *s.symbols);
  if (!cert.ok() || !cert->has_value()) {
    std::printf("  build failed\n");
    return;
  }
  size_t rejected = 0, total = 0;
  auto expect_reject = [&](ContainmentCertificate bad, const char* what) {
    ++total;
    Status v = VerifyCertificate(bad, s.queries[1], s.queries[0], s.deps,
                                 *s.symbols);
    if (!v.ok()) ++rejected;
    std::printf("  %-28s -> %s\n", what, v.ok() ? "ACCEPTED (bug!)"
                                                : "rejected");
  };
  {
    ContainmentCertificate bad = **cert;
    bad.steps[0].ind_index = 7;
    expect_reject(bad, "forged IND label");
  }
  {
    ContainmentCertificate bad = **cert;
    bad.steps[0].fact.terms[0] = bad.steps[0].fact.terms[1];
    expect_reject(bad, "broken copy column");
  }
  {
    ContainmentCertificate bad = **cert;
    bad.steps[0].fact.terms[1] = bad.roots[0].terms[0];
    expect_reject(bad, "stale NDV");
  }
  {
    ContainmentCertificate bad = **cert;
    bad.conjunct_images[0] = 999;
    expect_reject(bad, "dangling image pointer");
  }
  {
    ContainmentCertificate bad = **cert;
    bad.roots.push_back(bad.roots[0]);
    bad.roots.back().terms[0] = bad.roots[0].terms[1];
    expect_reject(bad, "forged root");
  }
  std::printf("  rejected %zu/%zu corruptions\n", rejected, total);
}

}  // namespace
}  // namespace cqchase

int main() {
  cqchase::bench::WallTimer bench_total_timer;
  cqchase::bench::PrintHeader(
      "E13 / Theorem 2 NP certificates: size, verification cost, tampering",
      "a containment witness has a proof linear in witness depth, checkable "
      "in polynomial time with no search; corrupted proofs are rejected");
  cqchase::Run();
  cqchase::bench::PrintJsonRecord("certificates", bench_total_timer.ElapsedMs());
  return 0;
}
