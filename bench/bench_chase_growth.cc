// E6 — O-chase vs R-chase growth: per-level conjunct counts. The O-chase
// applies every IND to every conjunct (including chase-created ones) and so
// can grow geometrically; the R-chase skips applications whose required
// conjunct already exists, recording a cross arc instead, and is usually far
// smaller — on acyclic IND sets it often saturates while the O-chase keeps
// expanding.
#include <cstdio>

#include "base/rng.h"
#include "bench/bench_util.h"
#include "chase/chase.h"
#include "gen/generators.h"
#include "gen/scenarios.h"

namespace cqchase {
namespace {

void PrintSeries(const char* label, Chase& chase, uint32_t levels) {
  std::printf("%-24s", label);
  for (uint32_t l = 0; l <= levels; ++l) {
    if (l <= chase.MaxAliveLevel()) {
      std::printf(" %6zu", chase.CountAtLevel(l));
    } else {
      std::printf(" %6s", "-");
    }
  }
  size_t cross = 0;
  for (const ChaseArc& a : chase.arcs()) cross += a.cross ? 1 : 0;
  std::printf("  | total=%zu cross=%zu %s\n", chase.AliveFacts().size(), cross,
              chase.outcome() == ChaseOutcome::kSaturated ? "(saturated)"
                                                          : "(truncated)");
}

void RunScenario(const char* name, Scenario s, uint32_t levels) {
  std::printf("--- %s ---\n", name);
  std::printf("%-24s", "level:");
  for (uint32_t l = 0; l <= levels; ++l) std::printf(" %6u", l);
  std::printf("\n");
  for (ChaseVariant variant :
       {ChaseVariant::kRequired, ChaseVariant::kOblivious}) {
    // Fresh scenario per variant so chase-created NDVs do not accumulate.
    Scenario fresh = std::move(s);
    ChaseLimits limits;
    limits.max_level = levels;
    limits.max_conjuncts = 100000;
    Chase chase(fresh.catalog.get(), fresh.symbols.get(), &fresh.deps, variant,
                limits);
    if (!chase.Init(fresh.queries[0]).ok()) return;
    Result<ChaseOutcome> out = chase.ExpandToLevel(levels);
    if (!out.ok()) {
      std::printf("%-24s resource limit hit: %s\n",
                  variant == ChaseVariant::kRequired ? "R-chase" : "O-chase",
                  out.status().ToString().c_str());
      s = std::move(fresh);
      continue;
    }
    PrintSeries(variant == ChaseVariant::kRequired ? "R-chase" : "O-chase",
                chase, levels);
    s = std::move(fresh);
  }
  std::printf("\n");
}

void RunRandom(uint64_t seed, size_t num_inds, size_t width, uint32_t levels) {
  Rng rng(seed);
  RandomCatalogParams cp;
  cp.num_relations = 3;
  cp.min_arity = width + 1;
  cp.max_arity = width + 2;
  Scenario s;
  s.catalog = std::make_unique<Catalog>(RandomCatalog(rng, cp));
  s.symbols = std::make_unique<SymbolTable>();
  RandomIndParams ip;
  ip.count = num_inds;
  ip.width = width;
  s.deps = RandomIndOnlyDeps(rng, *s.catalog, ip);
  RandomQueryParams qp;
  qp.num_conjuncts = 3;
  s.queries.push_back(RandomQuery(rng, *s.catalog, *s.symbols, qp));
  char name[96];
  std::snprintf(name, sizeof name, "random seed=%llu |inds|=%zu W=%zu",
                static_cast<unsigned long long>(seed), num_inds, width);
  RunScenario(name, std::move(s), levels);
}

}  // namespace
}  // namespace cqchase

int main() {
  cqchase::bench::WallTimer bench_total_timer;
  using namespace cqchase;
  bench::PrintHeader(
      "E6 / chase growth: conjuncts per level, O-chase vs R-chase",
      "the R-chase's 'required' discipline replaces duplicate creations by "
      "cross arcs; the O-chase re-creates and can grow geometrically");
  RunScenario("Figure 1", Fig1Scenario(), 6);
  RunRandom(7, 3, 1, 6);
  RunRandom(11, 4, 2, 6);
  RunRandom(13, 5, 2, 5);
  cqchase::bench::PrintJsonRecord("chase_growth", bench_total_timer.ElapsedMs());
  return 0;
}
