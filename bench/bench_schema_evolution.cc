// E-SCHEMA-EVOLUTION — Σ-lineage verdict survival: a one-dependency edit on
// a warm wide-Σ engine must invalidate O(touched), not O(everything), and
// every surviving verdict must equal what a fresh engine decides.
//
// Workload: kChains independent IND chains A_c[x] ⊆ B_c[x], B_c[x] ⊆ C_c[x]
// (~2·kChains INDs in one Σ), with two tasks per chain — one contained
// (provable only through that chain's two INDs) and one not-contained. The
// chains share nothing, so a single-IND edit has a touched closure of
// exactly one chain's tasks; everything else must survive via lineage.
//
// Phases (each phase's verdicts are checked against a fresh store-less
// oracle engine, so a wrong surviving verdict can never pass):
//   1. warm   — decide all tasks under the full Σ (populates LRU + store)
//   2. remove — drop one chain's B→C IND, EvolveSigma, re-ask everything:
//               chases_built may grow only by the touched closure (the one
//               task whose chase fired the removed IND), entries survive
//               exactly (lineage proves the removal never fired for them)
//   3. re-add — restore the IND, EvolveSigma, re-ask everything: contained
//               survivors are kept at monotone-bound confidence and must be
//               served as hits (monotone_hits > 0), not-contained entries
//               are genuinely touched by an addition and re-decide
//
// Exits non-zero when any phase's verdicts diverge from its oracle, when
// phase 2 rebuilds more chases than the touched closure, when no entries
// were retagged, or when phase 3 serves no monotone hits.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "base/string_util.h"
#include "bench/bench_util.h"
#include "cq/cq_parser.h"
#include "engine/engine.h"
#include "engine/lineage.h"

namespace cqchase {
namespace {

constexpr size_t kChains = 150;  // 2 INDs each → a ~300-IND Σ
// Touched closure of the phase-2 edit: the edited chain's contained task is
// the only verdict whose deciding chase fired the removed IND. Headroom
// covers strategy-internal probe chases, not a second invalidated class.
constexpr uint64_t kTouchedChaseBound = 8;

struct Workload {
  Catalog catalog;
  SymbolTable symbols;
  DependencySet full;     // both INDs of every chain
  DependencySet edited;   // full minus chain 0's B->C IND
  std::vector<ConjunctiveQuery> lhs;
  std::vector<ConjunctiveQuery> rhs;
  std::vector<bool> planted;  // expected verdict under the full Σ
};

Workload Build() {
  Workload w;
  std::vector<RelationId> a(kChains), b(kChains), c(kChains);
  for (size_t i = 0; i < kChains; ++i) {
    a[i] = *w.catalog.AddRelation(StrCat("A", i), {"x", "y"});
    b[i] = *w.catalog.AddRelation(StrCat("B", i), {"x", "y"});
    c[i] = *w.catalog.AddRelation(StrCat("C", i), {"x", "y"});
  }
  for (size_t i = 0; i < kChains; ++i) {
    InclusionDependency ab{a[i], {0}, b[i], {0}};
    InclusionDependency bc{b[i], {0}, c[i], {0}};
    (void)w.full.AddInd(w.catalog, ab);
    (void)w.full.AddInd(w.catalog, bc);
    (void)w.edited.AddInd(w.catalog, ab);
    if (i != 0) (void)w.edited.AddInd(w.catalog, bc);
  }
  for (size_t i = 0; i < kChains; ++i) {
    // Contained: chasing A_i(x,y) fires A->B then B->C, so C_i(x,*) exists
    // iff both chain INDs are present. Two conjuncts keep the task off the
    // single-conjunct streaming route even in default configs.
    w.lhs.push_back(*ParseQuery(w.catalog, w.symbols,
                                StrCat("ans(x) :- A", i, "(x, y)")));
    w.rhs.push_back(*ParseQuery(w.catalog, w.symbols,
                                StrCat("ans(x) :- C", i, "(x, z)")));
    w.planted.push_back(true);
    // Not contained: no IND leaves C_i, so the chase of C_i(x,y) never
    // derives an A_i fact.
    w.lhs.push_back(*ParseQuery(w.catalog, w.symbols,
                                StrCat("ans(x) :- C", i, "(x, y)")));
    w.rhs.push_back(*ParseQuery(w.catalog, w.symbols,
                                StrCat("ans(x) :- A", i, "(x, z)")));
    w.planted.push_back(false);
  }
  return w;
}

std::vector<ContainmentTask> TasksFor(const Workload& w,
                                      const DependencySet& deps) {
  std::vector<ContainmentTask> tasks;
  tasks.reserve(w.lhs.size());
  for (size_t i = 0; i < w.lhs.size(); ++i) {
    tasks.push_back(ContainmentTask{&w.lhs[i], &w.rhs[i], &deps});
  }
  return tasks;
}

// Re-decides every task on a fresh store-less engine and counts divergence
// from `got` — the oracle that makes "survived" mean "still correct".
size_t OracleMismatches(Workload& w, const DependencySet& deps,
                        const std::vector<Result<EngineVerdict>>& got,
                        size_t* errors) {
  ContainmentEngine oracle(&w.catalog, &w.symbols, EngineConfig{});
  std::vector<ContainmentTask> tasks = TasksFor(w, deps);
  std::vector<Result<EngineVerdict>> truth = oracle.CheckMany(tasks);
  size_t mismatches = 0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (!truth[i].ok() || !got[i].ok()) {
      ++*errors;
      continue;
    }
    if (truth[i]->report.contained != got[i]->report.contained) ++mismatches;
  }
  return mismatches;
}

}  // namespace
}  // namespace cqchase

int main(int argc, char** argv) {
  using namespace cqchase;
  const std::string store_dir =
      argc > 1 ? argv[1] : "schema-evolution-store";

  bench::PrintHeader(
      "E-SCHEMA-EVOLUTION / Σ-lineage verdict survival",
      "a 1-IND edit on a warm ~300-IND Σ invalidates O(touched) verdicts, "
      "survivors (exact and monotone-bound) match a fresh-engine oracle");

  Workload w = Build();
  std::printf("Σ: %zu INDs across %zu chains, %zu tasks\n\n", w.full.size(),
              kChains, w.lhs.size());

  EngineConfig config;
  config.store_path = store_dir;
  // Chase-free strategies leave lineage unknown (sound but drop-only); the
  // bench measures the chase's used-dependency capture, so route everything
  // through the chase.
  config.route_streaming_single_conjunct = false;
  ContainmentEngine engine(&w.catalog, &w.symbols, config);
  if (engine.store() == nullptr) {
    std::fprintf(stderr, "FAIL: store did not open: %s\n",
                 engine.store_status().ToString().c_str());
    return 1;
  }

  size_t errors = 0;
  bench::WallTimer total_timer;

  // Phase 1: warm the engine (LRU + store) under the full Σ.
  std::vector<ContainmentTask> warm_tasks = TasksFor(w, w.full);
  std::vector<Result<EngineVerdict>> warm = engine.CheckMany(warm_tasks);
  const uint64_t chases_warm = engine.stats().chases_built;
  const size_t warm_bad = OracleMismatches(w, w.full, warm, &errors);
  std::printf("phase 1 (warm):   %llu chases, %zu mismatches\n",
              static_cast<unsigned long long>(chases_warm), warm_bad);

  // Phase 2: remove chain 0's B->C IND. Only chain 0's contained task fired
  // it; everything else must survive exactly and re-answer without a chase.
  const DeltaReceipt removal = engine.EvolveSigma(w.full, w.edited);
  std::vector<ContainmentTask> rm_tasks = TasksFor(w, w.edited);
  std::vector<Result<EngineVerdict>> after_rm = engine.CheckMany(rm_tasks);
  const uint64_t chases_rm = engine.stats().chases_built - chases_warm;
  const size_t rm_bad = OracleMismatches(w, w.edited, after_rm, &errors);
  std::printf(
      "phase 2 (remove): receipt examined=%llu exact=%llu monotone=%llu "
      "dropped=%llu; %llu chases rebuilt, %zu mismatches\n",
      static_cast<unsigned long long>(removal.examined),
      static_cast<unsigned long long>(removal.kept_exact),
      static_cast<unsigned long long>(removal.kept_monotone),
      static_cast<unsigned long long>(removal.dropped),
      static_cast<unsigned long long>(chases_rm), rm_bad);

  // Phase 3: add the IND back. Contained survivors are kept monotone (the
  // chase only grows) and must be served as hits; not-contained entries are
  // genuinely touched by an addition and re-decide.
  const uint64_t monotone_before = engine.stats().monotone_hits;
  const DeltaReceipt addback = engine.EvolveSigma(w.edited, w.full);
  std::vector<ContainmentTask> add_tasks = TasksFor(w, w.full);
  std::vector<Result<EngineVerdict>> after_add = engine.CheckMany(add_tasks);
  const uint64_t monotone_hits =
      engine.stats().monotone_hits - monotone_before;
  const size_t add_bad = OracleMismatches(w, w.full, after_add, &errors);
  std::printf(
      "phase 3 (re-add): receipt exact=%llu monotone=%llu dropped=%llu; "
      "%llu monotone hits, %zu mismatches\n",
      static_cast<unsigned long long>(addback.kept_exact),
      static_cast<unsigned long long>(addback.kept_monotone),
      static_cast<unsigned long long>(addback.dropped),
      static_cast<unsigned long long>(monotone_hits), add_bad);

  const double total_ms = total_timer.ElapsedMs();
  const EngineStats stats = engine.stats();
  std::printf("\n");

  std::vector<std::pair<std::string, double>> counters = {
      {"tasks", static_cast<double>(w.lhs.size())},
      {"sigma_inds", static_cast<double>(w.full.size())},
      {"chases_warm", static_cast<double>(chases_warm)},
      {"chases_after_removal", static_cast<double>(chases_rm)},
      {"removal_kept_exact", static_cast<double>(removal.kept_exact)},
      {"removal_dropped", static_cast<double>(removal.dropped)},
      {"addback_kept_monotone", static_cast<double>(addback.kept_monotone)},
      {"addback_dropped", static_cast<double>(addback.dropped)},
      {"monotone_hits_served", static_cast<double>(monotone_hits)},
      {"mismatches", static_cast<double>(warm_bad + rm_bad + add_bad)},
      {"errors", static_cast<double>(errors)}};
  bench::AppendEngineCounters(stats, counters);
  bench::AppendEngineConfig(config, counters);
  bench::PrintJsonRecord("schema_evolution", total_ms, counters);

  if (warm_bad + rm_bad + add_bad > 0 || errors > 0) {
    std::fprintf(stderr,
                 "FAIL: post-edit verdicts diverge from a fresh engine\n");
    return 1;
  }
  if (chases_rm > kTouchedChaseBound) {
    std::fprintf(stderr,
                 "FAIL: 1-IND removal rebuilt %llu chases (touched closure "
                 "allows %llu): survival is not O(touched)\n",
                 static_cast<unsigned long long>(chases_rm),
                 static_cast<unsigned long long>(kTouchedChaseBound));
    return 1;
  }
  if (chases_rm == 0) {
    std::fprintf(stderr,
                 "FAIL: the invalidated verdict was never re-decided\n");
    return 1;
  }
  if (removal.retagged() == 0 || stats.entries_retagged == 0) {
    std::fprintf(stderr, "FAIL: no entries survived the removal via retag\n");
    return 1;
  }
  if (addback.kept_monotone == 0 || monotone_hits == 0) {
    std::fprintf(stderr,
                 "FAIL: no monotone-bound survivors were kept/served after "
                 "the addition\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
