// Parallel intra-chase sweeps vs. the serial bulk core on a wide-Σ
// workload.
//
// The parallel core (ChaseCoreMode::kParallel) keeps the bulk core's
// columnar planning but fires a frozen level frontier's witness-class
// batches concurrently on the engine's work-stealing pool, one barrier per
// reliance depth. Its advantage is single-request latency: a wide IND-only
// Σ yields many mutually independent rhs-relation classes per level, and
// the only serial residue is the id-assignment plan (chase/bulk.h
// documents why ids must stay sequential).
//
// ENFORCED GATE: on the wide-Σ case the parallel core must (a) produce a
// byte-identical chase prefix (ToString), identical step count, and the
// same terminal status as BOTH the scalar oracle and the bulk core, and
// (b) on hosts with >= 4 hardware threads, run >= 1.5x faster than the
// bulk core (best-of-N wall time). On narrower hosts the speedup is
// reported but not enforced — a 1-core box cannot demonstrate parallelism,
// and pretending otherwise would make CI green mean nothing. Parity is
// enforced everywhere, always.
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "chase/chase.h"
#include "engine/executor.h"
#include "gen/generators.h"

namespace cqchase {
namespace {

using bench::PrintJsonRecord;
using bench::WallTimer;

struct CaseSpec {
  const char* name;
  size_t num_relations;
  size_t num_inds;
  size_t query_conjuncts;
  uint32_t max_level;
  size_t max_conjuncts;
  bool enforce;  // false => informational only (tiny Σ)
};

// One self-owning universe; regenerated fresh (same seed) for every run so
// all cores and every timing repetition see byte-identical inputs.
struct Universe {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<SymbolTable> symbols;
  std::unique_ptr<DependencySet> deps;
  std::vector<ConjunctiveQuery> query;  // exactly one; no default ctor
};

Universe BuildUniverse(const CaseSpec& spec, uint64_t seed) {
  Universe u;
  u.catalog = std::make_unique<Catalog>();
  u.symbols = std::make_unique<SymbolTable>();
  u.deps = std::make_unique<DependencySet>();
  Rng rng(seed);
  RandomCatalogParams cp;
  cp.num_relations = spec.num_relations;
  cp.min_arity = 2;
  cp.max_arity = 3;
  *u.catalog = RandomCatalog(rng, cp);
  RandomIndParams ip;
  ip.count = spec.num_inds;
  ip.width = 1;
  *u.deps = RandomIndOnlyDeps(rng, *u.catalog, ip);
  RandomQueryParams qp;
  qp.num_conjuncts = spec.query_conjuncts;
  qp.num_vars = spec.query_conjuncts + 2;
  qp.num_dist_vars = 2;
  u.query.push_back(RandomQuery(rng, *u.catalog, *u.symbols, qp));
  return u;
}

// One pool for the whole benchmark, sized like the engine would size it.
ChaseTaskRunner* PoolRunner() {
  static const size_t kWorkers =
      std::max<size_t>(std::thread::hardware_concurrency(), 1);
  static Executor* executor = new Executor(kWorkers);
  static ExecutorTaskRunner* runner = new ExecutorTaskRunner(executor);
  return runner;
}

struct RunResult {
  double wall_ms = 0.0;
  StatusCode status = StatusCode::kOk;
  size_t conjuncts = 0;
  size_t steps = 0;
  std::string rendering;  // chase ToString, the parity fingerprint
  ChaseStats stats;
};

RunResult RunOnce(const CaseSpec& spec, uint64_t seed, ChaseCoreMode mode) {
  Universe u = BuildUniverse(spec, seed);
  ChaseLimits limits;
  limits.core = mode;
  limits.max_level = spec.max_level + 1;
  limits.max_conjuncts = spec.max_conjuncts;
  if (mode == ChaseCoreMode::kParallel) limits.runner = PoolRunner();
  Chase chase(u.catalog.get(), u.symbols.get(), u.deps.get(),
              ChaseVariant::kRequired, limits);
  Status init = chase.Init(u.query[0]);
  if (!init.ok()) {
    std::fprintf(stderr, "FATAL: Init failed: %s\n", init.ToString().c_str());
    std::exit(1);
  }
  RunResult r;
  WallTimer timer;
  Result<ChaseOutcome> outcome = chase.ExpandToLevel(spec.max_level);
  r.wall_ms = timer.ElapsedMs();
  r.status = outcome.status().code();
  // kResourceExhausted keeps a valid partial prefix — that prefix is the
  // workload; any other failure is a bench bug.
  if (!outcome.ok() && r.status != StatusCode::kResourceExhausted) {
    std::fprintf(stderr, "FATAL: chase failed: %s\n",
                 outcome.status().ToString().c_str());
    std::exit(1);
  }
  r.conjuncts = chase.conjuncts().size();
  r.steps = chase.steps();
  r.rendering = chase.ToString();
  r.stats = chase.chase_stats();
  return r;
}

RunResult BestOf(const CaseSpec& spec, uint64_t seed, ChaseCoreMode mode,
                 int reps) {
  RunResult best = RunOnce(spec, seed, mode);
  for (int i = 1; i < reps; ++i) {
    RunResult r = RunOnce(spec, seed, mode);
    if (r.wall_ms < best.wall_ms) best = std::move(r);
  }
  return best;
}

void EmitRecord(const CaseSpec& spec, const char* core, const RunResult& r,
                double speedup, size_t hw_threads) {
  std::vector<std::pair<std::string, double>> counters;
  counters.emplace_back("enforced",
                        (spec.enforce && hw_threads >= 4) ? 1.0 : 0.0);
  counters.emplace_back("hw_threads", static_cast<double>(hw_threads));
  counters.emplace_back("inds", static_cast<double>(spec.num_inds));
  counters.emplace_back("conjuncts", static_cast<double>(r.conjuncts));
  counters.emplace_back("steps", static_cast<double>(r.steps));
  counters.emplace_back("segments_built",
                        static_cast<double>(r.stats.segments_built));
  counters.emplace_back("bulk_ind_applications",
                        static_cast<double>(r.stats.bulk_ind_applications));
  counters.emplace_back("parallel_sweeps",
                        static_cast<double>(r.stats.parallel_sweeps));
  counters.emplace_back("parallel_batches",
                        static_cast<double>(r.stats.parallel_batches));
  counters.emplace_back(
      "parallel_serialized_levels",
      static_cast<double>(r.stats.parallel_serialized_levels));
  counters.emplace_back("parallel_small_levels",
                        static_cast<double>(r.stats.parallel_small_levels));
  counters.emplace_back("parallel_depth_layers",
                        static_cast<double>(r.stats.parallel_depth_layers));
  counters.emplace_back("parallel_max_depth_width",
                        static_cast<double>(r.stats.parallel_max_depth_width));
  counters.emplace_back("plan_ms", r.stats.plan_ms);
  counters.emplace_back("join_ms", r.stats.join_ms);
  counters.emplace_back("retain_ms", r.stats.retain_ms);
  counters.emplace_back("fd_ms", r.stats.fd_ms);
  counters.emplace_back("speedup_vs_bulk", speedup);
  PrintJsonRecord(std::string("chase_parallel_") + spec.name + "_" + core,
                  r.wall_ms, counters);
}

// Returns true iff the case passes parity + (when enforced) the 1.5x bound.
bool RunCase(const CaseSpec& spec, uint64_t seed, int reps) {
  const size_t hw_threads =
      std::max<size_t>(std::thread::hardware_concurrency(), 1);
  std::printf(
      "--- case %s: %zu relations, %zu INDs (requested), depth %u, "
      "%zu hw threads\n",
      spec.name, spec.num_relations, spec.num_inds, spec.max_level,
      hw_threads);
  RunResult scalar = BestOf(spec, seed, ChaseCoreMode::kScalar, reps);
  RunResult bulk = BestOf(spec, seed, ChaseCoreMode::kBulk, reps);
  RunResult parallel = BestOf(spec, seed, ChaseCoreMode::kParallel, reps);
  const double speedup =
      parallel.wall_ms > 0.0 ? bulk.wall_ms / parallel.wall_ms : 0.0;

  bool parity = true;
  for (const RunResult* other : {&scalar, &bulk}) {
    if (other->status != parallel.status) {
      std::printf("PARITY MISMATCH: terminal status differs (%d vs %d)\n",
                  static_cast<int>(other->status),
                  static_cast<int>(parallel.status));
      parity = false;
    }
    if (other->conjuncts != parallel.conjuncts ||
        other->steps != parallel.steps) {
      std::printf("PARITY MISMATCH: conjuncts %zu vs %zu, steps %zu vs %zu\n",
                  other->conjuncts, parallel.conjuncts, other->steps,
                  parallel.steps);
      parity = false;
    }
    if (other->rendering != parallel.rendering) {
      std::printf("PARITY MISMATCH: chase renderings differ\n");
      parity = false;
    }
  }

  EmitRecord(spec, "bulk", bulk, speedup, hw_threads);
  EmitRecord(spec, "parallel", parallel, speedup, hw_threads);
  std::printf(
      "%-10s scalar %9.3f ms | bulk %9.3f ms | parallel %9.3f ms | "
      "speedup vs bulk %5.2fx | %zu conjuncts, %zu steps | "
      "%" PRIu64 " sweeps, %" PRIu64 " batches, %" PRIu64
      " layers (max width %" PRIu64 ") | serialized %" PRIu64
      ", small %" PRIu64 " | plan %.1f ms\n",
      spec.name, scalar.wall_ms, bulk.wall_ms, parallel.wall_ms, speedup,
      parallel.conjuncts, parallel.steps, parallel.stats.parallel_sweeps,
      parallel.stats.parallel_batches, parallel.stats.parallel_depth_layers,
      parallel.stats.parallel_max_depth_width,
      parallel.stats.parallel_serialized_levels,
      parallel.stats.parallel_small_levels, parallel.stats.plan_ms);

  if (!parity) return false;
  if (!spec.enforce) {
    std::printf("degraded gate (tiny Σ): informational only\n");
    return true;
  }
  if (hw_threads < 4) {
    std::printf(
        "degraded gate: %zu hw threads < 4 — parity enforced, speedup "
        "%.2fx report-only\n",
        hw_threads, speedup);
    return true;
  }
  if (speedup < 1.5) {
    std::printf("GATE FAILED: parallel speedup %.2fx < 1.50x required\n",
                speedup);
    return false;
  }
  std::printf("gate ok: parity exact, speedup %.2fx >= 1.50x\n", speedup);
  return true;
}

}  // namespace
}  // namespace cqchase

int main() {
  using cqchase::CaseSpec;
  cqchase::bench::PrintHeader(
      "bench_chase_parallel",
      "concurrent witness-class sweeps cut single-request latency on wide "
      "IND-only Sigma; parity with the scalar oracle is enforced "
      "unconditionally");

  // Same wide-Σ configuration bench_chase_bulk enforces: ~12 relations of
  // arity 2-3 supporting ~300 distinct width-1 INDs.
  const CaseSpec wide = {"wide",  12,   300, 8, 3,
                         60000,   true};
  // Tiny Σ: frontiers below parallel_min_pairs route serial by design.
  const CaseSpec tiny = {"tiny",  3,    4,   5, 3,
                         60000,   false};

  bool ok = true;
  ok &= cqchase::RunCase(wide, /*seed=*/20260808, /*reps=*/3);
  ok &= cqchase::RunCase(tiny, /*seed=*/20260808, /*reps=*/3);
  if (!ok) {
    std::printf("\nbench_chase_parallel: FAILED\n");
    return 1;
  }
  std::printf("\nbench_chase_parallel: OK\n");
  return 0;
}
