// Shared helpers for the experiment binaries. Each bench regenerates one
// artifact of the paper (figure, theorem validation, or complexity-shape
// claim) and prints the series it measures; EXPERIMENTS.md records the
// paper-claim vs. measured comparison.
#ifndef CQCHASE_BENCH_BENCH_UTIL_H_
#define CQCHASE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "base/string_util.h"
#include "engine/engine.h"
#include "gen/generators.h"

namespace cqchase::bench {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("=== %s ===\n", experiment.c_str());
  std::printf("paper claim: %s\n\n", claim.c_str());
}

// Version of the bench JSON record layout. Bumped whenever the record shape
// or the meaning of a shared counter changes, so cross-PR trajectory
// comparisons know which records are commensurable. History:
//   1 — implicit (records before the field existed carry no "schema" key)
//   2 — added the schema field itself + engine cache-capacity knobs via
//       AppendEngineConfig + store_hits/store_writes in AppendEngineCounters
//   3 — verdict tier stack: remote_hits/remote_writes in
//       AppendEngineCounters, per-tier hit/publish counters via
//       AppendTierCounters, tiers_configured in AppendEngineConfig
//   4 — set-at-a-time chase core: chase_steps/chase_index_rebuilds/
//       segments_built/bulk_ind_applications in AppendEngineCounters,
//       chase_core_bulk in AppendEngineConfig
//   5 — Σ reliance analysis: inds_pruned in AppendEngineCounters (bulk-core
//       static pruning), and bench_reliance reports the SigmaGraph
//       fingerprint per workload
//   6 — networked verdict authority: remote tiers additionally report
//       tier<i>_remote_fetch_rtts / _batched_fetches / _reconnects /
//       _transport_errors via AppendTierCounters (wire behavior per tier)
//   7 — parallel chase core: parallel_batches/parallel_serialized_levels in
//       AppendEngineCounters; chase_core_bulk in AppendEngineConfig replaced
//       by chase_core (numeric ChaseCoreMode: 0 scalar, 1 bulk, 2 parallel);
//       bench_chase_parallel reports per-depth layer widths
//   8 — Σ-lineage schema evolution: entries_retagged/entries_dropped/
//       monotone_hits in AppendEngineCounters; bench_schema_evolution
//       reports delta receipts per edit
inline constexpr int kBenchRecordSchema = 8;

// One-line machine-readable record, emitted by every bench so the perf
// trajectory can be scraped (`grep '^{"bench"'` over the run log). Integral
// counters print exactly (no %g exponent rounding, which would hide small
// regressions in large counts); fractional ones keep 6 significant digits.
//
//   {"bench":"engine_cache","schema":2,"wall_ms":12.345,"counters":{...}}
inline void PrintJsonRecord(
    const std::string& name, double wall_ms,
    const std::vector<std::pair<std::string, double>>& counters = {}) {
  std::printf("{\"bench\":\"%s\",\"schema\":%d,\"wall_ms\":%.3f", name.c_str(),
              kBenchRecordSchema, wall_ms);
  if (!counters.empty()) {
    std::printf(",\"counters\":{");
    for (size_t i = 0; i < counters.size(); ++i) {
      std::printf("%s\"%s\":", i == 0 ? "" : ",", counters[i].first.c_str());
      const double v = counters[i].second;
      if (std::nearbyint(v) == v && std::fabs(v) < 9.0e15) {
        std::printf("%lld", static_cast<long long>(v));
      } else {
        std::printf("%.6g", v);
      }
    }
    std::printf("}");
  }
  std::printf("}\n");
}

// Appends the engine's scheduler-health counters to a JSON record's counter
// list, so bench trajectories capture executor behavior (queue pressure,
// steal balance, deadline/cancel traffic) alongside each bench's own
// series. Gauges (queue_depth) read whatever the moment shows; benches
// should snapshot stats() after their waits complete.
inline void AppendEngineCounters(
    const EngineStats& stats,
    std::vector<std::pair<std::string, double>>& counters) {
  counters.emplace_back("submits", static_cast<double>(stats.submits));
  counters.emplace_back("executor_tasks",
                        static_cast<double>(stats.executor_tasks));
  counters.emplace_back("executor_steals",
                        static_cast<double>(stats.executor_steals));
  counters.emplace_back("executor_queue_depth",
                        static_cast<double>(stats.executor_queue_depth));
  counters.emplace_back("executor_workers",
                        static_cast<double>(stats.executor_workers));
  counters.emplace_back("deadline_expirations",
                        static_cast<double>(stats.deadline_expirations));
  counters.emplace_back("cancellations",
                        static_cast<double>(stats.cancellations));
  counters.emplace_back("store_hits", static_cast<double>(stats.store_hits));
  counters.emplace_back("store_writes",
                        static_cast<double>(stats.store_writes));
  counters.emplace_back("remote_hits",
                        static_cast<double>(stats.remote_hits));
  counters.emplace_back("remote_writes",
                        static_cast<double>(stats.remote_writes));
  counters.emplace_back("chase_steps",
                        static_cast<double>(stats.chase_steps));
  counters.emplace_back("chase_index_rebuilds",
                        static_cast<double>(stats.chase_index_rebuilds));
  counters.emplace_back("segments_built",
                        static_cast<double>(stats.segments_built));
  counters.emplace_back("bulk_ind_applications",
                        static_cast<double>(stats.bulk_ind_applications));
  counters.emplace_back("inds_pruned",
                        static_cast<double>(stats.inds_pruned));
  counters.emplace_back("parallel_batches",
                        static_cast<double>(stats.parallel_batches));
  counters.emplace_back("parallel_serialized_levels",
                        static_cast<double>(stats.parallel_serialized_levels));
  counters.emplace_back("entries_retagged",
                        static_cast<double>(stats.entries_retagged));
  counters.emplace_back("entries_dropped",
                        static_cast<double>(stats.entries_dropped));
  counters.emplace_back("monotone_hits",
                        static_cast<double>(stats.monotone_hits));
}

// Appends one hit/publish counter pair per active verdict tier (probe
// order), keyed "tier<i>_<kind>_hits" / "_publishes" — e.g. "tier0_lru_hits",
// "tier2_remote_publishes" — so trajectories show *which* layer of the
// hierarchy absorbed a workload, not just that something did. Remote tiers
// additionally report their wire behavior: fetch round trips, batched
// fetches, reconnects and transport errors (schema 6) — the counters that
// distinguish "one RTT per key" from "one batched RTT per burst" and a
// stable link from reconnect churn.
inline void AppendTierCounters(
    const std::vector<VerdictTierStats>& tiers,
    std::vector<std::pair<std::string, double>>& counters) {
  for (size_t i = 0; i < tiers.size(); ++i) {
    // "store:/path" / "remote:peer" → the kind token before the colon.
    const std::string kind = tiers[i].name.substr(0, tiers[i].name.find(':'));
    const std::string prefix = StrCat("tier", i, "_", kind);
    counters.emplace_back(StrCat(prefix, "_hits"),
                          static_cast<double>(tiers[i].hits));
    counters.emplace_back(StrCat(prefix, "_publishes"),
                          static_cast<double>(tiers[i].publishes));
    if (kind == "remote") {
      counters.emplace_back(StrCat(prefix, "_fetch_rtts"),
                            static_cast<double>(tiers[i].fetches));
      counters.emplace_back(StrCat(prefix, "_batched_fetches"),
                            static_cast<double>(tiers[i].batched_fetches));
      counters.emplace_back(StrCat(prefix, "_reconnects"),
                            static_cast<double>(tiers[i].reconnects));
      counters.emplace_back(StrCat(prefix, "_transport_errors"),
                            static_cast<double>(tiers[i].transport_errors));
    }
  }
}

// Appends the engine's cache-capacity knobs (and whether the persistent
// tier is on) to a record's counters. Capacity knobs change cache behavior
// wholesale, so a trajectory comparison across PRs is only interpretable
// when each record names the configuration it measured.
inline void AppendEngineConfig(
    const EngineConfig& config,
    std::vector<std::pair<std::string, double>>& counters) {
  const bool caches_on = config.enable_cache;
  // With an explicit tier stack the legacy capacity knob is inert — the
  // LRU capacity actually in effect is the first Lru spec's; report that,
  // or the record would label itself with a configuration it never ran.
  size_t verdict_capacity = config.verdict_cache_capacity;
  if (!config.tiers.empty()) {
    verdict_capacity = 0;
    for (const TierSpec& spec : config.tiers) {
      if (spec.kind == TierSpec::Kind::kLru) {
        verdict_capacity = spec.capacity;
        break;
      }
    }
  }
  counters.emplace_back(
      "verdict_cache_capacity",
      static_cast<double>(caches_on ? verdict_capacity : 0));
  counters.emplace_back(
      "sigma_cache_capacity",
      static_cast<double>(caches_on ? config.sigma_cache_capacity : 0));
  counters.emplace_back(
      "chase_cache_capacity",
      static_cast<double>(caches_on ? config.chase_cache_capacity : 0));
  bool has_store_tier = !config.store_path.empty();
  for (const TierSpec& spec : config.tiers) {
    if (spec.kind == TierSpec::Kind::kLocalStore) has_store_tier = true;
  }
  counters.emplace_back("store_enabled", has_store_tier ? 1.0 : 0.0);
  counters.emplace_back("tiers_configured",
                        static_cast<double>(config.tiers.size()));
  // Numeric ChaseCoreMode (0 scalar, 1 bulk, 2 parallel); replaces the
  // schema<=6 boolean chase_core_bulk.
  counters.emplace_back(
      "chase_core",
      static_cast<double>(static_cast<int>(config.containment.limits.core)));
}

// A deterministic keyed IND-only containment workload of `classes` verdict
// classes × `copies` isomorphic copies each (odd classes planted contained),
// shared by the cache-tier benches (bench_store_warmstart, bench_tier_stack)
// so their enforced gates measure the *same* workload shape and a generator
// change cannot silently diverge them. Seeds are parameters: each bench
// keeps its historical key space, and re-invocations of one binary
// regenerate byte-identical queries — which is what makes "the warm/remote
// run re-asks the same canonical keys" true.
struct ContainmentWorkload {
  // unique_ptrs keep the catalog and symbol-table addresses stable across
  // moves of the workload itself.
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<SymbolTable> symbols;
  DependencySet deps;
  std::vector<ConjunctiveQuery> lhs;
  std::vector<ConjunctiveQuery> rhs;
};

inline ContainmentWorkload BuildContainmentWorkload(size_t classes,
                                                    size_t copies,
                                                    uint32_t catalog_seed,
                                                    uint32_t class_seed_base) {
  ContainmentWorkload w;
  w.symbols = std::make_unique<SymbolTable>();
  {
    Rng rng(catalog_seed);
    RandomCatalogParams cp;
    cp.num_relations = 4;
    cp.min_arity = 2;
    cp.max_arity = 3;
    w.catalog = std::make_unique<Catalog>(RandomCatalog(rng, cp));
    RandomIndParams ip;
    ip.count = 4;
    ip.width = 1;  // W = 1: every task decides within the Lemma 5 bound
    w.deps = RandomIndOnlyDeps(rng, *w.catalog, ip);
  }
  w.lhs.reserve(classes * copies);
  w.rhs.reserve(classes * copies);
  for (size_t c = 0; c < classes; ++c) {
    const bool planted = (c % 2) == 1;  // exercise both verdicts per tier
    for (size_t k = 0; k < copies; ++k) {
      Rng rng(class_seed_base + static_cast<uint32_t>(c));
      RandomQueryParams qp;
      qp.num_conjuncts = 6;
      qp.num_vars = 7;
      qp.name_prefix = StrCat("L", c, "v", k, "_");
      w.lhs.push_back(RandomQuery(rng, *w.catalog, *w.symbols, qp));
      if (planted) {
        Result<ConjunctiveQuery> q_prime = PlantedSuperQuery(
            rng, w.lhs.back(), w.deps, *w.symbols, /*extra_conjuncts=*/2,
            /*chase_depth=*/2);
        if (q_prime.ok()) {
          w.rhs.push_back(*std::move(q_prime));
          continue;
        }
      }
      qp.num_conjuncts = 2;
      qp.num_vars = 4;
      qp.name_prefix = StrCat("R", c, "v", k, "_");
      w.rhs.push_back(RandomQuery(rng, *w.catalog, *w.symbols, qp));
    }
  }
  return w;
}

}  // namespace cqchase::bench

#endif  // CQCHASE_BENCH_BENCH_UTIL_H_
