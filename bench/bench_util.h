// Shared helpers for the experiment binaries. Each bench regenerates one
// artifact of the paper (figure, theorem validation, or complexity-shape
// claim) and prints the series it measures; EXPERIMENTS.md records the
// paper-claim vs. measured comparison.
#ifndef CQCHASE_BENCH_BENCH_UTIL_H_
#define CQCHASE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>

namespace cqchase::bench {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("=== %s ===\n", experiment.c_str());
  std::printf("paper claim: %s\n\n", claim.c_str());
}

}  // namespace cqchase::bench

#endif  // CQCHASE_BENCH_BENCH_UTIL_H_
