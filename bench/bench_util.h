// Shared helpers for the experiment binaries. Each bench regenerates one
// artifact of the paper (figure, theorem validation, or complexity-shape
// claim) and prints the series it measures; EXPERIMENTS.md records the
// paper-claim vs. measured comparison.
#ifndef CQCHASE_BENCH_BENCH_UTIL_H_
#define CQCHASE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"

namespace cqchase::bench {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("=== %s ===\n", experiment.c_str());
  std::printf("paper claim: %s\n\n", claim.c_str());
}

// Version of the bench JSON record layout. Bumped whenever the record shape
// or the meaning of a shared counter changes, so cross-PR trajectory
// comparisons know which records are commensurable. History:
//   1 — implicit (records before the field existed carry no "schema" key)
//   2 — added the schema field itself + engine cache-capacity knobs via
//       AppendEngineConfig + store_hits/store_writes in AppendEngineCounters
inline constexpr int kBenchRecordSchema = 2;

// One-line machine-readable record, emitted by every bench so the perf
// trajectory can be scraped (`grep '^{"bench"'` over the run log). Integral
// counters print exactly (no %g exponent rounding, which would hide small
// regressions in large counts); fractional ones keep 6 significant digits.
//
//   {"bench":"engine_cache","schema":2,"wall_ms":12.345,"counters":{...}}
inline void PrintJsonRecord(
    const std::string& name, double wall_ms,
    const std::vector<std::pair<std::string, double>>& counters = {}) {
  std::printf("{\"bench\":\"%s\",\"schema\":%d,\"wall_ms\":%.3f", name.c_str(),
              kBenchRecordSchema, wall_ms);
  if (!counters.empty()) {
    std::printf(",\"counters\":{");
    for (size_t i = 0; i < counters.size(); ++i) {
      std::printf("%s\"%s\":", i == 0 ? "" : ",", counters[i].first.c_str());
      const double v = counters[i].second;
      if (std::nearbyint(v) == v && std::fabs(v) < 9.0e15) {
        std::printf("%lld", static_cast<long long>(v));
      } else {
        std::printf("%.6g", v);
      }
    }
    std::printf("}");
  }
  std::printf("}\n");
}

// Appends the engine's scheduler-health counters to a JSON record's counter
// list, so bench trajectories capture executor behavior (queue pressure,
// steal balance, deadline/cancel traffic) alongside each bench's own
// series. Gauges (queue_depth) read whatever the moment shows; benches
// should snapshot stats() after their waits complete.
inline void AppendEngineCounters(
    const EngineStats& stats,
    std::vector<std::pair<std::string, double>>& counters) {
  counters.emplace_back("submits", static_cast<double>(stats.submits));
  counters.emplace_back("executor_tasks",
                        static_cast<double>(stats.executor_tasks));
  counters.emplace_back("executor_steals",
                        static_cast<double>(stats.executor_steals));
  counters.emplace_back("executor_queue_depth",
                        static_cast<double>(stats.executor_queue_depth));
  counters.emplace_back("executor_workers",
                        static_cast<double>(stats.executor_workers));
  counters.emplace_back("deadline_expirations",
                        static_cast<double>(stats.deadline_expirations));
  counters.emplace_back("cancellations",
                        static_cast<double>(stats.cancellations));
  counters.emplace_back("store_hits", static_cast<double>(stats.store_hits));
  counters.emplace_back("store_writes",
                        static_cast<double>(stats.store_writes));
}

// Appends the engine's cache-capacity knobs (and whether the persistent
// tier is on) to a record's counters. Capacity knobs change cache behavior
// wholesale, so a trajectory comparison across PRs is only interpretable
// when each record names the configuration it measured.
inline void AppendEngineConfig(
    const EngineConfig& config,
    std::vector<std::pair<std::string, double>>& counters) {
  const bool caches_on = config.enable_cache;
  counters.emplace_back(
      "verdict_cache_capacity",
      static_cast<double>(caches_on ? config.verdict_cache_capacity : 0));
  counters.emplace_back(
      "sigma_cache_capacity",
      static_cast<double>(caches_on ? config.sigma_cache_capacity : 0));
  counters.emplace_back(
      "chase_cache_capacity",
      static_cast<double>(caches_on ? config.chase_cache_capacity : 0));
  counters.emplace_back("store_enabled",
                        config.store_path.empty() ? 0.0 : 1.0);
}

}  // namespace cqchase::bench

#endif  // CQCHASE_BENCH_BENCH_UTIL_H_
