// E-REMOTE-TCP — the verdict authority over real sockets: the tier-stack
// contract of bench_tier_stack re-proven with the production TCP transport
// (net/tcp_transport.h) instead of the in-process loopback, plus the v2
// batched-fetch discipline. Engine A decides a deterministic workload cold
// and publishes every verdict over TCP; engine B — cold LRU, its own TCP
// connection — answers the whole workload over the wire.
//
// Enforced gates (exit non-zero on violation, wired into ci.sh):
//   * verdict parity: A and B agree with a tier-less oracle task by task;
//   * chases_built == 0 for engine B — every answer arrived over TCP;
//   * remote_hits > 0 for engine B;
//   * strictly fewer remote round trips than tasks: the 64-task burst must
//     ride kTierOpFetchMany (batched_fetches >= 1), not 64 per-key fetches.
//
// By default the bench starts its own VerdictAuthorityServer on an
// ephemeral 127.0.0.1 port — self-contained, no daemon required. With
//   --connect HOST:PORT[,HOST:PORT...]
// it targets running verdict_authorityd processes instead (a comma list
// shards the key space across them via net::ShardedTransport), which is how
// the CI gate exercises the standalone daemon end to end.
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/string_util.h"
#include "bench/bench_util.h"
#include "engine/engine.h"
#include "engine/remote_tier.h"
#include "net/authority_server.h"
#include "net/sharded_transport.h"
#include "net/socket.h"
#include "net/tcp_transport.h"

namespace cqchase {
namespace {

// Builds the client transport for `endpoints` (one TcpTransport, or a
// ShardedTransport over several). Each call makes fresh connections — engine
// A and engine B must not share a socket, or "engine B went over the wire"
// would be untestable.
std::shared_ptr<VerdictTransport> MakeTransport(
    const std::vector<std::pair<std::string, uint16_t>>& endpoints) {
  if (endpoints.size() == 1) {
    return std::make_shared<net::TcpTransport>(endpoints[0].first,
                                               endpoints[0].second);
  }
  std::vector<std::shared_ptr<VerdictTransport>> shards;
  shards.reserve(endpoints.size());
  for (const auto& [host, port] : endpoints) {
    shards.push_back(std::make_shared<net::TcpTransport>(host, port));
  }
  return std::make_shared<net::ShardedTransport>(std::move(shards));
}

EngineConfig TcpConfig(
    const std::vector<std::pair<std::string, uint16_t>>& endpoints) {
  EngineConfig config;
  config.tiers = {TierSpec::Lru(1 << 16),
                  TierSpec::Remote(MakeTransport(endpoints))};
  return config;
}

// The remote tier's stats row (kind token "remote" before the colon).
const VerdictTierStats* FindRemoteTier(
    const std::vector<VerdictTierStats>& tiers) {
  for (const VerdictTierStats& t : tiers) {
    if (t.name.rfind("remote", 0) == 0) return &t;
  }
  return nullptr;
}

}  // namespace
}  // namespace cqchase

int main(int argc, char** argv) {
  using namespace cqchase;

  std::vector<std::pair<std::string, uint16_t>> endpoints;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      std::string list = argv[++i];
      size_t pos = 0;
      while (pos <= list.size()) {
        const size_t comma = list.find(',', pos);
        const std::string one = list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        std::string host;
        uint16_t port = 0;
        Status split = net::SplitHostPort(one, &host, &port);
        if (!split.ok()) {
          std::fprintf(stderr, "bad --connect endpoint '%s': %s\n",
                       one.c_str(), std::string(split.message()).c_str());
          return 2;
        }
        endpoints.emplace_back(host, port);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--connect HOST:PORT[,HOST:PORT...]]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::PrintHeader(
      "E-REMOTE-TCP / verdict sharing over the TCP authority",
      "a second engine with cold local caches answers a repeated canonical "
      "workload entirely over real TCP: zero chases built, verdicts "
      "identical to a tier-less engine, and the burst rides batched fetch "
      "(strictly fewer round trips than tasks)");

  // In-process fallback: the bench carries its own authority server, so the
  // gate runs anywhere `ctest` does.
  std::shared_ptr<VerdictAuthority> local_authority;
  std::unique_ptr<net::VerdictAuthorityServer> local_server;
  if (endpoints.empty()) {
    local_authority = std::make_shared<VerdictAuthority>();
    local_server =
        std::make_unique<net::VerdictAuthorityServer>(local_authority);
    Status started = local_server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "FAIL: listen: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    endpoints.emplace_back("127.0.0.1", local_server->port());
    std::printf("in-process authority on 127.0.0.1:%u\n",
                unsigned{local_server->port()});
  } else {
    std::printf("connecting to %zu external authorit%s\n", endpoints.size(),
                endpoints.size() == 1 ? "y" : "ies");
  }

  const size_t kClasses = 16;
  const size_t kCopies = 4;  // 64 tasks, 16 distinct canonical keys
  bench::ContainmentWorkload w =
      bench::BuildContainmentWorkload(kClasses, kCopies, /*catalog_seed=*/23,
                                      /*class_seed_base=*/9100);
  std::vector<ContainmentTask> tasks;
  tasks.reserve(w.lhs.size());
  for (size_t i = 0; i < w.lhs.size(); ++i) {
    tasks.push_back(ContainmentTask{&w.lhs[i], &w.rhs[i], &w.deps});
  }

  // Oracle: no tiers beyond its own LRU — ground truth for this process.
  ContainmentEngine oracle(w.catalog.get(), w.symbols.get(), EngineConfig{});
  std::vector<Result<EngineVerdict>> oracle_results = oracle.CheckMany(tasks);

  // Engine A: decides cold, publishes over TCP. Scope exit drains the
  // write-behind flush through the socket — a real process shutdown.
  EngineStats a_stats;
  double a_ms = 0;
  std::vector<Result<EngineVerdict>> a_results;
  {
    ContainmentEngine a(w.catalog.get(), w.symbols.get(), TcpConfig(endpoints));
    bench::WallTimer timer;
    a_results = a.CheckMany(tasks);
    a_ms = timer.ElapsedMs();
    a_stats = a.stats();
  }

  // Engine B: cold caches, its own TCP connection(s) — the other machine.
  EngineConfig b_config = TcpConfig(endpoints);
  ContainmentEngine b(w.catalog.get(), w.symbols.get(), b_config);
  bench::WallTimer timer;
  std::vector<Result<EngineVerdict>> b_results = b.CheckMany(tasks);
  const double b_ms = timer.ElapsedMs();
  const EngineStats b_stats = b.stats();
  const std::vector<VerdictTierStats> b_tiers = b.tier_stats();
  const VerdictTierStats* remote = FindRemoteTier(b_tiers);

  size_t contained = 0;
  size_t mismatches = 0;
  size_t errors = 0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (!oracle_results[i].ok() || !a_results[i].ok() || !b_results[i].ok()) {
      ++errors;
      continue;
    }
    if (oracle_results[i]->report.contained != a_results[i]->report.contained ||
        oracle_results[i]->report.contained != b_results[i]->report.contained) {
      ++mismatches;
    }
    if (b_results[i]->report.contained) ++contained;
  }

  std::printf("%zu tasks (%zu classes x %zu copies)\n", tasks.size(), kClasses,
              kCopies);
  std::printf("  engine A (cold, publisher): %8.3f ms, %llu chases\n", a_ms,
              static_cast<unsigned long long>(a_stats.chases_built));
  std::printf("  engine B (TCP-served)     : %8.3f ms, %llu chases\n", b_ms,
              static_cast<unsigned long long>(b_stats.chases_built));
  if (remote != nullptr) {
    std::printf(
        "  engine B wire: %llu hits over %llu round trips (%llu batched, "
        "%llu keys), %llu reconnects, %llu transport errors\n",
        static_cast<unsigned long long>(remote->hits),
        static_cast<unsigned long long>(remote->fetches),
        static_cast<unsigned long long>(remote->batched_fetches),
        static_cast<unsigned long long>(remote->batched_keys),
        static_cast<unsigned long long>(remote->reconnects),
        static_cast<unsigned long long>(remote->transport_errors));
  }
  std::printf("  verdicts: %zu contained, %zu mismatches, %zu errors\n\n",
              contained, mismatches, errors);

  std::vector<std::pair<std::string, double>> counters = {
      {"tasks", static_cast<double>(tasks.size())},
      {"endpoints", static_cast<double>(endpoints.size())},
      {"a_chases_built", static_cast<double>(a_stats.chases_built)},
      {"chases_built", static_cast<double>(b_stats.chases_built)},
      {"cache_hits", static_cast<double>(b_stats.cache_hits)},
      {"mismatches", static_cast<double>(mismatches)},
      {"errors", static_cast<double>(errors)}};
  bench::AppendEngineCounters(b_stats, counters);
  bench::AppendTierCounters(b_tiers, counters);
  bench::AppendEngineConfig(b_config, counters);
  bench::PrintJsonRecord("remote_tcp", b_ms, counters);

  if (local_server != nullptr) local_server->Stop();

  if (mismatches > 0 || errors > 0) {
    std::fprintf(stderr,
                 "FAIL: TCP-served verdicts diverge from the oracle "
                 "(%zu mismatches, %zu errors)\n",
                 mismatches, errors);
    return 1;
  }
  if (b_stats.chases_built != 0) {
    std::fprintf(stderr,
                 "FAIL: engine B built %llu chases (want 0: every verdict "
                 "should arrive over TCP)\n",
                 static_cast<unsigned long long>(b_stats.chases_built));
    return 1;
  }
  if (b_stats.remote_hits == 0) {
    std::fprintf(stderr, "FAIL: engine B served no remote hits\n");
    return 1;
  }
  if (remote == nullptr) {
    std::fprintf(stderr, "FAIL: no remote tier in engine B's stack\n");
    return 1;
  }
  if (remote->fetches >= tasks.size()) {
    std::fprintf(stderr,
                 "FAIL: %llu remote round trips for %zu tasks (want strictly "
                 "fewer: the burst should ride kTierOpFetchMany)\n",
                 static_cast<unsigned long long>(remote->fetches),
                 tasks.size());
    return 1;
  }
  if (remote->batched_fetches == 0) {
    std::fprintf(stderr, "FAIL: no batched fetches (kTierOpFetchMany never "
                         "used)\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
