// Set-at-a-time chase core vs. the scalar oracle on a wide-Σ workload.
//
// The columnar core's advantage grows with |Σ|: witness probes for the
// hundreds of INDs sharing a target projection collapse into one shared
// group index, applicability checks become bitmask words instead of
// per-(conjunct, IND) set lookups, and a whole level segment is minted per
// (level, IND) batch. A schema with ~300 distinct width-1 INDs is where the
// paper's decision procedure actually lives (Σ is the input, not a
// constant), so that is the enforced configuration; a tiny-Σ run rides
// along report-only to show the crossover.
//
// ENFORCED GATE: on the wide-Σ case the bulk core must (a) produce a
// byte-identical chase prefix (ToString), identical step count, and the
// same terminal status as the scalar core, and (b) run >= 2x faster
// (best-of-N wall time). Any violation exits non-zero so ci.sh fails the
// perf stage.
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "chase/chase.h"
#include "gen/generators.h"

namespace cqchase {
namespace {

using bench::PrintJsonRecord;
using bench::WallTimer;

struct CaseSpec {
  const char* name;
  size_t num_relations;
  size_t num_inds;
  size_t query_conjuncts;
  uint32_t max_level;
  size_t max_conjuncts;
  bool enforce;  // false => degraded gate (tiny Σ): informational only
};

// One self-owning universe; regenerated fresh (same seed) for every run so
// the two cores and every timing repetition see byte-identical inputs.
struct Universe {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<SymbolTable> symbols;
  std::unique_ptr<DependencySet> deps;
  std::vector<ConjunctiveQuery> query;  // exactly one; no default ctor
};

Universe BuildUniverse(const CaseSpec& spec, uint64_t seed) {
  Universe u;
  u.catalog = std::make_unique<Catalog>();
  u.symbols = std::make_unique<SymbolTable>();
  u.deps = std::make_unique<DependencySet>();
  Rng rng(seed);
  RandomCatalogParams cp;
  cp.num_relations = spec.num_relations;
  cp.min_arity = 2;
  cp.max_arity = 3;
  *u.catalog = RandomCatalog(rng, cp);
  RandomIndParams ip;
  ip.count = spec.num_inds;
  ip.width = 1;
  *u.deps = RandomIndOnlyDeps(rng, *u.catalog, ip);
  RandomQueryParams qp;
  qp.num_conjuncts = spec.query_conjuncts;
  qp.num_vars = spec.query_conjuncts + 2;
  qp.num_dist_vars = 2;
  u.query.push_back(RandomQuery(rng, *u.catalog, *u.symbols, qp));
  return u;
}

struct RunResult {
  double wall_ms = 0.0;
  StatusCode status = StatusCode::kOk;
  size_t conjuncts = 0;
  size_t steps = 0;
  std::string rendering;  // chase ToString, the parity fingerprint
  ChaseStats stats;
};

RunResult RunOnce(const CaseSpec& spec, uint64_t seed, ChaseCoreMode mode) {
  Universe u = BuildUniverse(spec, seed);
  ChaseLimits limits;
  limits.core = mode;
  limits.max_level = spec.max_level + 1;
  limits.max_conjuncts = spec.max_conjuncts;
  Chase chase(u.catalog.get(), u.symbols.get(), u.deps.get(),
              ChaseVariant::kRequired, limits);
  Status init = chase.Init(u.query[0]);
  if (!init.ok()) {
    std::fprintf(stderr, "FATAL: Init failed: %s\n", init.ToString().c_str());
    std::exit(1);
  }
  RunResult r;
  WallTimer timer;
  Result<ChaseOutcome> outcome = chase.ExpandToLevel(spec.max_level);
  r.wall_ms = timer.ElapsedMs();
  r.status = outcome.status().code();
  // kResourceExhausted keeps a valid partial prefix — that prefix is the
  // workload; any other failure is a bench bug.
  if (!outcome.ok() && r.status != StatusCode::kResourceExhausted) {
    std::fprintf(stderr, "FATAL: chase failed: %s\n",
                 outcome.status().ToString().c_str());
    std::exit(1);
  }
  r.conjuncts = chase.conjuncts().size();
  r.steps = chase.steps();
  r.rendering = chase.ToString();
  r.stats = chase.chase_stats();
  return r;
}

RunResult BestOf(const CaseSpec& spec, uint64_t seed, ChaseCoreMode mode,
                 int reps) {
  RunResult best = RunOnce(spec, seed, mode);
  for (int i = 1; i < reps; ++i) {
    RunResult r = RunOnce(spec, seed, mode);
    if (r.wall_ms < best.wall_ms) best = std::move(r);
  }
  return best;
}

void EmitRecord(const CaseSpec& spec, const char* core, const RunResult& r,
                double speedup) {
  std::vector<std::pair<std::string, double>> counters;
  counters.emplace_back("enforced", spec.enforce ? 1.0 : 0.0);
  counters.emplace_back("inds", static_cast<double>(spec.num_inds));
  counters.emplace_back("conjuncts", static_cast<double>(r.conjuncts));
  counters.emplace_back("steps", static_cast<double>(r.steps));
  counters.emplace_back("index_rebuilds",
                        static_cast<double>(r.stats.index_rebuilds));
  counters.emplace_back("fd_merges", static_cast<double>(r.stats.fd_merges));
  counters.emplace_back("segments_built",
                        static_cast<double>(r.stats.segments_built));
  counters.emplace_back("bulk_batches",
                        static_cast<double>(r.stats.bulk_batches));
  counters.emplace_back("bulk_ind_applications",
                        static_cast<double>(r.stats.bulk_ind_applications));
  counters.emplace_back("max_batch_rows",
                        static_cast<double>(r.stats.max_batch_rows));
  counters.emplace_back("join_ms", r.stats.join_ms);
  counters.emplace_back("retain_ms", r.stats.retain_ms);
  counters.emplace_back("fd_ms", r.stats.fd_ms);
  counters.emplace_back("speedup", speedup);
  PrintJsonRecord(std::string("chase_bulk_") + spec.name + "_" + core,
                  r.wall_ms, counters);
}

// Returns true iff the case passes parity + (when enforced) the 2x bound.
bool RunCase(const CaseSpec& spec, uint64_t seed, int reps) {
  std::printf("--- case %s: %zu relations, %zu INDs (requested), depth %u\n",
              spec.name, spec.num_relations, spec.num_inds, spec.max_level);
  RunResult scalar = BestOf(spec, seed, ChaseCoreMode::kScalar, reps);
  RunResult bulk = BestOf(spec, seed, ChaseCoreMode::kBulk, reps);
  const double speedup =
      bulk.wall_ms > 0.0 ? scalar.wall_ms / bulk.wall_ms : 0.0;

  bool parity = true;
  if (scalar.status != bulk.status) {
    std::printf("PARITY MISMATCH: terminal status differs (%d vs %d)\n",
                static_cast<int>(scalar.status), static_cast<int>(bulk.status));
    parity = false;
  }
  if (scalar.conjuncts != bulk.conjuncts || scalar.steps != bulk.steps) {
    std::printf(
        "PARITY MISMATCH: conjuncts %zu vs %zu, steps %zu vs %zu\n",
        scalar.conjuncts, bulk.conjuncts, scalar.steps, bulk.steps);
    parity = false;
  }
  if (scalar.rendering != bulk.rendering) {
    std::printf("PARITY MISMATCH: chase renderings differ\n");
    parity = false;
  }

  EmitRecord(spec, "scalar", scalar, speedup);
  EmitRecord(spec, "bulk", bulk, speedup);
  std::printf(
      "%-10s scalar %9.3f ms | bulk %9.3f ms | speedup %5.2fx | "
      "%zu conjuncts, %zu steps, %" PRIu64 " segments | "
      "join %.1f retain %.1f fd %.1f ms\n",
      spec.name, scalar.wall_ms, bulk.wall_ms, speedup, bulk.conjuncts,
      bulk.steps, bulk.stats.segments_built, bulk.stats.join_ms,
      bulk.stats.retain_ms, bulk.stats.fd_ms);

  if (!parity) return false;
  if (!spec.enforce) {
    std::printf("degraded gate (tiny Σ): informational only\n");
    return true;
  }
  if (speedup < 2.0) {
    std::printf("GATE FAILED: bulk speedup %.2fx < 2.00x required\n", speedup);
    return false;
  }
  std::printf("gate ok: parity exact, speedup %.2fx >= 2.00x\n", speedup);
  return true;
}

}  // namespace
}  // namespace cqchase

int main() {
  using cqchase::CaseSpec;
  cqchase::bench::PrintHeader(
      "bench_chase_bulk",
      "set-at-a-time IND application is the profitable regime when |Sigma| "
      "is large — the complexity driver of the containment problem");

  // Wide Σ: ~12 relations of arity 2-3 support ~300 distinct width-1 INDs
  // (the generator dedups, so the realized count prints per record).
  const CaseSpec wide = {"wide",  12,   300, 8, 3,
                         60000,   true};
  // Tiny Σ: batch sizes of a handful of rows; bulk bookkeeping may not pay
  // for itself, which is exactly why the scalar oracle stays available.
  const CaseSpec tiny = {"tiny",  3,    4,   5, 3,
                         60000,   false};

  bool ok = true;
  ok &= cqchase::RunCase(wide, /*seed=*/20260808, /*reps=*/3);
  ok &= cqchase::RunCase(tiny, /*seed=*/20260808, /*reps=*/3);
  if (!ok) {
    std::printf("\nbench_chase_bulk: FAILED\n");
    return 1;
  }
  std::printf("\nbench_chase_bulk: OK\n");
  return 0;
}
