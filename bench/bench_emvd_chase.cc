// E15 — Section 5's future-work direction: chases with embedded multivalued
// dependencies. Three series:
//  (a) full (non-embedded) MVDs terminate: cross-product closure sizes
//      (k b-values x k c-values) and saturation;
//  (b) a single embedded MVD saturates under the required discipline, but
//      interacting embedded MVDs keep minting fresh symbols forever;
//  (c) Fagin's lossless-join containment, validated through the EMVD chase
//      and contrasted with the no-dependency verdict.
#include <cstdio>

#include "bench/bench_util.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "emvd/emvd_chase.h"

namespace cqchase {
namespace {

void FullMvdClosure() {
  std::printf("--- (a) full MVD: chase closes into the cross product ---\n");
  std::printf("%8s %12s %12s %12s\n", "k rows", "closure", "expected",
              "outcome");
  for (size_t k : {2, 3, 4, 5, 6}) {
    Catalog catalog;
    (void)catalog.AddRelation("R", {"a", "b", "c"});
    SymbolTable symbols;
    std::vector<EmbeddedMvd> emvds = {*ParseEmvd(catalog, "R: a ->> b | c")};
    DependencySet no_fds;
    std::string text = "ans(x) :- ";
    for (size_t i = 1; i <= k; ++i) {
      if (i > 1) text += ", ";
      text += "R(x, b" + std::to_string(i) + ", c" + std::to_string(i) + ")";
    }
    ConjunctiveQuery q = *ParseQuery(catalog, symbols, text);
    ChaseLimits limits;
    limits.max_conjuncts = 10000;
    EmvdChase chase(&catalog, &symbols, &no_fds, &emvds, limits);
    if (!chase.Init(q).ok()) continue;
    Result<ChaseOutcome> outcome = chase.Run();
    if (!outcome.ok()) {
      std::printf("%8zu %s\n", k, outcome.status().ToString().c_str());
      continue;
    }
    std::printf("%8zu %12zu %12zu %12s\n", k, chase.AliveFacts().size(),
                k * k,
                *outcome == ChaseOutcome::kSaturated ? "saturated"
                                                     : "truncated");
  }
}

void EmbeddedGrowth() {
  std::printf(
      "\n--- (b) one embedded MVD saturates; interacting ones diverge ---\n");
  // A single EMVD always closes under the required discipline (fresh
  // symbols land only in uncovered columns, so the (X,Y,Z) combinations
  // stay within the original active domain). Two EMVDs whose *fresh*
  // columns feed each other's Y-sides keep minting new Y-values and the
  // chase never saturates — the paper's Section 5 caveat, localized.
  Catalog catalog;
  (void)catalog.AddRelation("W", {"p", "q", "r", "s"});
  SymbolTable symbols;
  DependencySet no_fds;
  ConjunctiveQuery q = *ParseQuery(
      catalog, symbols, "ans(x) :- W(x, q1, r1, s1), W(x, q2, r2, s2)");

  std::printf("%-22s %8s %12s %12s\n", "Sigma", "level", "conjuncts",
              "outcome");
  {
    std::vector<EmbeddedMvd> one = {*ParseEmvd(catalog, "W: p ->> q | r")};
    EmvdChase chase(&catalog, &symbols, &no_fds, &one, ChaseLimits{});
    if (!chase.Init(q).ok()) return;
    Result<ChaseOutcome> outcome = chase.Run();
    if (outcome.ok()) {
      std::printf("%-22s %8u %12zu %12s\n", "p->>q|r", chase.MaxAliveLevel(),
                  chase.AliveFacts().size(),
                  *outcome == ChaseOutcome::kSaturated ? "saturated"
                                                       : "continues");
    }
  }
  {
    SymbolTable symbols2;
    ConjunctiveQuery q2 = *ParseQuery(
        catalog, symbols2, "ans(x) :- W(x, q1, r1, s1), W(x, q2, r2, s2)");
    std::vector<EmbeddedMvd> two = {*ParseEmvd(catalog, "W: p ->> s | q"),
                                    *ParseEmvd(catalog, "W: p ->> r | q")};
    ChaseLimits limits;
    limits.max_level = 4;
    limits.max_conjuncts = 3000;
    EmvdChase chase(&catalog, &symbols2, &no_fds, &two, limits);
    if (!chase.Init(q2).ok()) return;
    for (uint32_t level = 1; level <= 4; ++level) {
      Result<ChaseOutcome> outcome = chase.ExpandToLevel(level);
      if (!outcome.ok()) {
        std::printf("%-22s %8u %12s %12s\n", "p->>s|q, p->>r|q", level, "-",
                    "limit hit");
        return;
      }
      std::printf("%-22s %8u %12zu %12s\n", "p->>s|q, p->>r|q", level,
                  chase.AliveFacts().size(),
                  *outcome == ChaseOutcome::kSaturated ? "saturated"
                                                       : "continues");
      if (*outcome == ChaseOutcome::kSaturated) break;
    }
  }
}

void LosslessJoin() {
  std::printf("\n--- (c) lossless-join containment under R: a ->> b | c ---\n");
  Catalog catalog;
  (void)catalog.AddRelation("R", {"a", "b", "c"});
  SymbolTable symbols;
  std::vector<EmbeddedMvd> emvds = {*ParseEmvd(catalog, "R: a ->> b | c")};
  DependencySet no_fds;
  ConjunctiveQuery q_join = *ParseQuery(
      catalog, symbols, "ans(x, y, z) :- R(x, y, c1), R(x, b1, z)");
  ConjunctiveQuery q_id =
      *ParseQuery(catalog, symbols, "ans(x, y, z) :- R(x, y, z)");
  bench::WallTimer timer;
  Result<ContainmentReport> with_mvd =
      CheckContainmentEmvd(q_join, q_id, no_fds, emvds, symbols);
  double ms = timer.ElapsedMs();
  Result<ContainmentReport> without =
      CheckContainmentEmvd(q_join, q_id, no_fds, {}, symbols);
  std::printf("join <= id with MVD   : %s (%.3f ms)\n",
              with_mvd.ok() ? (with_mvd->contained ? "yes" : "no") : "error",
              ms);
  std::printf("join <= id without    : %s   (the MVD is what makes the "
              "decomposition lossless)\n",
              without.ok() ? (without->contained ? "yes" : "no") : "error");
}

}  // namespace
}  // namespace cqchase

int main() {
  cqchase::bench::WallTimer bench_total_timer;
  cqchase::bench::PrintHeader(
      "E15 / Section 5 extension: chases with embedded MVDs",
      "full MVDs close finitely into cross products; embedded MVDs "
      "introduce fresh symbols and can run forever; the chase still "
      "certifies lossless-join containment");
  cqchase::FullMvdClosure();
  cqchase::EmbeddedGrowth();
  cqchase::LosslessJoin();
  cqchase::bench::PrintJsonRecord("emvd_chase", bench_total_timer.ElapsedMs());
  return 0;
}
