// E9 — Section 4's separating example. With Σ = { R:2→1, R[2] ⊆ R[1] },
//   Q1 = {(x): ∃y R(x,y)}   and   Q2 = {(x): ∃y,y' R(x,y) ∧ R(y',x)}
// are equivalent on every *finite* Σ-database but NOT on infinite ones:
// Σ ⊨ Q1 ⊆f Q2 yet Σ ⊭ Q1 ⊆∞ Q2. (Q2 ⊆ Q1 holds unconditionally.)
//
// The bench verifies three claims independently:
//  1. chase test: no homomorphism Q2 -> chase_Σ(Q1) within a deep prefix
//     (the chase witnesses the infinite counterexample);
//  2. exhaustive finite search: every Σ-database over small domains has
//     Q1(D) ⊆ Q2(D) — no finite counterexample exists at these scales;
//  3. random finite sampling at larger scales agrees.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/containment.h"
#include "finite/finite_containment.h"
#include "gen/scenarios.h"

namespace cqchase {
namespace {

void Run() {
  // Claim 1: infinite containment fails (and the reverse holds). Σ mixes an
  // FD with an IND and is not key-based — outside the paper's decidable
  // classes — so the checker runs as a sound semi-decision: a "yes" is
  // exact; Q1 <= Q2 must come back either "no" (if the search saturated) or
  // undecided-after-N-levels, never "yes".
  {
    Scenario s = Section4Scenario();
    ContainmentOptions options;
    options.allow_semidecision = true;
    options.limits.max_level = 40;
    options.limits.max_conjuncts = 100000;
    Result<ContainmentReport> fwd = CheckContainment(
        s.queries[0], s.queries[1], s.deps, *s.symbols, options);
    Result<ContainmentReport> rev = CheckContainment(
        s.queries[1], s.queries[0], s.deps, *s.symbols, options);
    if (fwd.ok()) {
      std::printf("Sigma |= Q1 <=inf Q2 : %s   (expected: no)\n",
                  fwd->contained ? "yes (BUG)" : "no (chase saturated)");
    } else {
      std::printf("Sigma |= Q1 <=inf Q2 : no witness within 40 chase levels "
                  "(the chase is infinite;\n                       the "
                  "paper's Section 4 argument shows none exists at any "
                  "depth)\n");
    }
    std::printf("Sigma |= Q2 <=inf Q1 : %s   (expected: yes)\n",
                rev.ok() ? (rev->contained ? "yes" : "no") : "undecided");
  }

  // Claim 2: exhaustive finite search over small domains.
  std::printf("\n%12s %18s %22s\n", "domain size", "tuple universe",
              "finite counterexample");
  for (size_t domain : {1, 2, 3}) {
    Scenario s = Section4Scenario();
    ExhaustiveSearchParams params;
    params.domain_size = domain;
    params.max_candidate_tuples = 16;
    bench::WallTimer timer;
    Result<std::optional<Instance>> cex = ExhaustiveFiniteCounterexample(
        s.queries[0], s.queries[1], s.deps, *s.symbols, params);
    if (!cex.ok()) {
      std::printf("%12zu %18s %22s\n", domain, "-",
                  cex.status().ToString().c_str());
      continue;
    }
    std::printf("%12zu %18zu %15s %.1f ms\n", domain, domain * domain,
                cex->has_value() ? "FOUND (bug!)" : "none", timer.ElapsedMs());
  }

  // Claim 3: random sampling at larger scales.
  {
    Scenario s = Section4Scenario();
    RandomSearchParams params;
    params.samples = 500;
    params.domain_size = 8;
    params.tuples_per_relation = 10;
    bench::WallTimer timer;
    Result<std::optional<Instance>> cex = RandomFiniteCounterexample(
        s.queries[0], s.queries[1], s.deps, *s.symbols, params);
    std::printf("\nrandom sampling (500 Sigma-repaired instances, domain 8): "
                "%s (%.1f ms)\n",
                cex.ok() ? (cex->has_value() ? "counterexample FOUND (bug!)"
                                             : "no counterexample")
                         : cex.status().ToString().c_str(),
                timer.ElapsedMs());
  }

  std::printf("\nconclusion: containment under this Sigma is NOT finitely "
              "controllable\n(consistent with Theorem 3's hypotheses: Sigma "
              "has an FD and a width-1 IND\ntogether, which is neither "
              "IND-only-width-1 nor key-based).\n");
}

}  // namespace
}  // namespace cqchase

int main() {
  cqchase::bench::WallTimer bench_total_timer;
  cqchase::bench::PrintHeader(
      "E9 / Section 4: finite containment differs from infinite containment",
      "Q1 <=f Q2 holds (no finite Sigma-database separates them) while "
      "Q1 <=inf Q2 fails (the chase of Q1 is an infinite counterexample)");
  cqchase::Run();
  cqchase::bench::PrintJsonRecord("finite_vs_infinite", bench_total_timer.ElapsedMs());
  return 0;
}
