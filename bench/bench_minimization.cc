// E12 — minimization, the optimization problem the paper motivates ("the
// problems of query containment, equivalence, and non-minimality remain in
// NP"). Generates queries with planted redundancy — extra conjuncts that are
// renamed copies of existing ones, plus IND-implied conjuncts — minimizes
// them under Σ, and reports reduction ratio, containment checks spent, and
// wall time as redundancy grows.
#include <cstdio>

#include "base/rng.h"
#include "bench/bench_util.h"
#include "core/minimize.h"
#include "gen/generators.h"
#include "gen/scenarios.h"
#include "opt/optimizer.h"

namespace cqchase {
namespace {

// Appends `extra` renamed copies of random existing conjuncts: each copy
// keeps DVs/constants but renames NDVs to fresh ones, so it is subsumed by
// its original (classic Chandra–Merlin redundancy).
ConjunctiveQuery PlantRedundancy(Rng& rng, const ConjunctiveQuery& q,
                                 SymbolTable& symbols, size_t extra) {
  ConjunctiveQuery out = q;
  for (size_t i = 0; i < extra; ++i) {
    const Fact& base = q.conjuncts()[rng.Index(q.conjuncts().size())];
    Fact copy = base;
    std::unordered_map<Term, Term> rename;
    for (Term& t : copy.terms) {
      if (!t.is_nondist_var()) continue;
      auto [it, inserted] = rename.try_emplace(t, Term());
      if (inserted) {
        it->second = symbols.MakeFreshNondistVar("red");
      }
      t = it->second;
    }
    out.AddConjunct(copy);
  }
  return out;
}

void Run() {
  std::printf("%8s %8s %10s %12s %10s %12s\n", "|Q|", "planted", "minimized",
              "removed", "checks", "avg ms");
  for (size_t extra : {0, 1, 2, 4, 6, 8}) {
    size_t trials = 0, removed_total = 0, checks_total = 0, final_size = 0;
    double total_ms = 0;
    size_t planted_size = 0;
    for (uint64_t seed = 1; seed <= 15; ++seed) {
      Rng rng(seed * 7 + extra);
      Scenario s = EmpDepScenario();
      ConjunctiveQuery bloated =
          PlantRedundancy(rng, s.queries[0], *s.symbols, extra);
      planted_size = bloated.size();
      bench::WallTimer timer;
      Result<MinimizeReport> r = MinimizeQuery(bloated, s.deps, *s.symbols);
      total_ms += timer.ElapsedMs();
      if (!r.ok()) continue;
      ++trials;
      removed_total += r->removed_conjuncts;
      checks_total += r->containment_checks;
      final_size = r->query.size();
    }
    if (trials == 0) continue;
    std::printf("%8zu %8zu %10zu %9.1f avg %10zu %12.3f\n",
                planted_size - extra, planted_size, final_size,
                static_cast<double>(removed_total) / trials,
                checks_total / trials, total_ms / trials);
  }

  // The full optimizer pipeline on the intro example (with redundancy).
  std::printf("\noptimizer pipeline on bloated EMP/DEP Q1:\n");
  Rng rng(42);
  Scenario s = EmpDepScenario();
  ConjunctiveQuery bloated =
      PlantRedundancy(rng, s.queries[0], *s.symbols, 4);
  std::printf("  input : %s\n", bloated.ToString().c_str());
  Result<OptimizeReport> opt = OptimizeQuery(bloated, s.deps, *s.symbols);
  if (opt.ok()) {
    std::printf("  output: %s\n", opt->query.ToString().c_str());
    for (const std::string& line : opt->trace) {
      std::printf("  %s\n", line.c_str());
    }
  } else {
    std::printf("  error: %s\n", opt.status().ToString().c_str());
  }
}

}  // namespace
}  // namespace cqchase

int main() {
  cqchase::bench::WallTimer bench_total_timer;
  cqchase::bench::PrintHeader(
      "E12 / minimization: removing redundant conjuncts under Sigma",
      "minimization reduces planted-redundant queries back to their core; "
      "under the intro IND the DEP join is removed as well; cost grows with "
      "the number of containment checks (NP oracle calls)");
  cqchase::Run();
  cqchase::bench::PrintJsonRecord("minimization", bench_total_timer.ElapsedMs());
  return 0;
}
