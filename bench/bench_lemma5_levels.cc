// E4 — Lemma 5 ablation: whenever Σ ⊨ Q ⊆∞ Q', some witness homomorphism
// lands within chase level |Q'|·|Σ|·(W+1)^W. The bound is what makes
// Theorem 2's NP certificate short; this bench measures how loose it is in
// practice: the deepest level an actual witness image touches vs the bound.
//
// Positive instances are planted at controlled chase depths (the generator
// copies conjuncts from level <= depth, so deep witnesses genuinely exist).
#include <algorithm>
#include <cstdio>

#include "base/rng.h"
#include "bench/bench_util.h"
#include "core/containment.h"
#include "gen/generators.h"
#include "gen/scenarios.h"

namespace cqchase {
namespace {

void Run() {
  std::printf("%10s %12s %14s %14s %10s\n", "plant lvl", "witnesses",
              "max wit lvl", "lemma5 bound", "ratio");
  for (uint32_t plant_depth : {0, 1, 2, 3, 4, 5}) {
    size_t witnesses = 0;
    uint32_t max_witness_level = 0;
    uint64_t bound = 0;
    for (uint64_t seed = 1; seed <= 25; ++seed) {
      // The Figure 1 scenario has an infinite chase, so every plant depth is
      // reachable.
      Scenario s = Fig1Scenario();
      Rng rng(seed);
      Result<ConjunctiveQuery> q_prime =
          PlantedSuperQuery(rng, s.queries[0], s.deps, *s.symbols,
                            /*extra_conjuncts=*/2, plant_depth);
      if (!q_prime.ok()) continue;
      ContainmentOptions options;
      options.limits.max_level = 32;
      Result<ContainmentReport> r =
          CheckContainment(s.queries[0], *q_prime, s.deps, *s.symbols,
                           options);
      if (!r.ok() || !r->contained) continue;
      ++witnesses;
      max_witness_level = std::max(max_witness_level, r->witness_max_level);
      bound = r->level_bound;
    }
    double ratio = bound == 0 ? 0.0
                              : static_cast<double>(max_witness_level) /
                                    static_cast<double>(bound);
    std::printf("%10u %9zu/25 %14u %14llu %10.4f\n", plant_depth, witnesses,
                max_witness_level, static_cast<unsigned long long>(bound),
                ratio);
  }
}

}  // namespace
}  // namespace cqchase

int main() {
  cqchase::bench::WallTimer bench_total_timer;
  cqchase::bench::PrintHeader(
      "E4 / Lemma 5: measured witness level vs theoretical bound",
      "a witness homomorphism always exists within level "
      "|Q'|*|Sigma|*(W+1)^W; in practice the deepest needed level is far "
      "below the bound (ratio << 1) and tracks the planted depth");
  cqchase::Run();
  cqchase::bench::PrintJsonRecord("lemma5_levels", bench_total_timer.ElapsedMs());
  return 0;
}
