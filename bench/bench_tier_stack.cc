// E-TIER-STACK — the composable verdict-tier hierarchy end to end: two
// engines in one process share a verdict authority over the loopback
// RemoteTier (engine/remote_tier.h). Engine A decides a deterministic
// workload cold and publishes every verdict (write-behind, drained at
// teardown); engine B — cold LRU, no local store — must then answer the
// whole repeated workload *entirely* over the remote tier.
//
// Enforced gates (exit non-zero on violation, wired into ci.sh):
//   * verdict parity: A and B agree with a tier-less oracle task by task;
//   * chases_built == 0 for engine B — every answer arrived over the wire;
//   * remote_hits > 0 for engine B (the zero-chase run was not an accident
//     of some other cache).
//
// This is the distributed-tier contract of the ROADMAP ("the log, shipped")
// proven in-process; a TCP transport swaps in under the same gate.
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "base/string_util.h"
#include "bench/bench_util.h"
#include "engine/engine.h"
#include "engine/remote_tier.h"
#include "gen/generators.h"

namespace cqchase {
namespace {

EngineConfig LoopbackConfig(
    const std::shared_ptr<VerdictAuthority>& authority) {
  EngineConfig config;
  config.tiers = {
      TierSpec::Lru(1 << 16),
      TierSpec::Remote(std::make_shared<InProcessTransport>(authority))};
  return config;
}

}  // namespace
}  // namespace cqchase

int main() {
  using namespace cqchase;

  bench::PrintHeader(
      "E-TIER-STACK / verdict sharing over the loopback RemoteTier",
      "a second engine with cold local caches answers a repeated canonical "
      "workload entirely over the remote verdict tier: zero chases built, "
      "verdicts identical to a tier-less engine");

  const size_t kClasses = 10;
  const size_t kCopies = 3;
  // Deterministic (fixed seeds); copies within a class are isomorphic, so
  // the canonical keys engine B computes equal the ones engine A published.
  bench::ContainmentWorkload w =
      bench::BuildContainmentWorkload(kClasses, kCopies, /*catalog_seed=*/17,
                                      /*class_seed_base=*/7000);
  std::vector<ContainmentTask> tasks;
  tasks.reserve(w.lhs.size());
  for (size_t i = 0; i < w.lhs.size(); ++i) {
    tasks.push_back(ContainmentTask{&w.lhs[i], &w.rhs[i], &w.deps});
  }

  // Oracle: no tiers beyond its own LRU — ground truth for this process.
  ContainmentEngine oracle(w.catalog.get(), w.symbols.get(), EngineConfig{});
  std::vector<Result<EngineVerdict>> oracle_results = oracle.CheckMany(tasks);

  auto authority = std::make_shared<VerdictAuthority>();

  // Engine A: decides cold, publishes over the loopback. Scope exit drains
  // the write-behind flush — the same shutdown path a real process takes.
  EngineStats a_stats;
  double a_ms = 0;
  std::vector<Result<EngineVerdict>> a_results;
  {
    ContainmentEngine a(w.catalog.get(), w.symbols.get(),
                        LoopbackConfig(authority));
    bench::WallTimer timer;
    a_results = a.CheckMany(tasks);
    a_ms = timer.ElapsedMs();
    a_stats = a.stats();
  }

  // Engine B: cold LRU, same authority — the "other node".
  EngineConfig b_config = LoopbackConfig(authority);
  ContainmentEngine b(w.catalog.get(), w.symbols.get(), b_config);
  bench::WallTimer timer;
  std::vector<Result<EngineVerdict>> b_results = b.CheckMany(tasks);
  const double b_ms = timer.ElapsedMs();
  const EngineStats b_stats = b.stats();
  const std::vector<VerdictTierStats> b_tiers = b.tier_stats();
  const VerdictAuthority::Stats authority_stats = authority->stats();

  size_t contained = 0;
  size_t mismatches = 0;
  size_t errors = 0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (!oracle_results[i].ok() || !a_results[i].ok() || !b_results[i].ok()) {
      ++errors;
      continue;
    }
    if (oracle_results[i]->report.contained != a_results[i]->report.contained ||
        oracle_results[i]->report.contained != b_results[i]->report.contained) {
      ++mismatches;
    }
    if (b_results[i]->report.contained) ++contained;
  }

  std::printf("%zu tasks (%zu classes x %zu copies), authority: %zu verdicts\n",
              tasks.size(), kClasses, kCopies, authority->size());
  std::printf("  engine A (cold, publisher): %8.3f ms, %llu chases\n", a_ms,
              static_cast<unsigned long long>(a_stats.chases_built));
  std::printf("  engine B (remote-served)  : %8.3f ms, %llu chases\n", b_ms,
              static_cast<unsigned long long>(b_stats.chases_built));
  std::printf(
      "  engine B tiers: remote hits %llu, lru hits %llu; authority "
      "fetches %llu (%llu hits), accepted %llu\n",
      static_cast<unsigned long long>(b_stats.remote_hits),
      static_cast<unsigned long long>(b_stats.cache_hits),
      static_cast<unsigned long long>(authority_stats.fetches),
      static_cast<unsigned long long>(authority_stats.fetch_hits),
      static_cast<unsigned long long>(authority_stats.publishes_accepted));
  std::printf("  verdicts: %zu contained, %zu mismatches, %zu errors\n\n",
              contained, mismatches, errors);

  std::vector<std::pair<std::string, double>> counters = {
      {"tasks", static_cast<double>(tasks.size())},
      {"authority_entries", static_cast<double>(authority->size())},
      {"authority_fetches", static_cast<double>(authority_stats.fetches)},
      {"a_chases_built", static_cast<double>(a_stats.chases_built)},
      {"chases_built", static_cast<double>(b_stats.chases_built)},
      {"cache_hits", static_cast<double>(b_stats.cache_hits)},
      {"mismatches", static_cast<double>(mismatches)},
      {"errors", static_cast<double>(errors)}};
  bench::AppendEngineCounters(b_stats, counters);
  bench::AppendTierCounters(b_tiers, counters);
  bench::AppendEngineConfig(b_config, counters);
  bench::PrintJsonRecord("tier_stack", b_ms, counters);

  if (mismatches > 0 || errors > 0) {
    std::fprintf(stderr,
                 "FAIL: tier-served verdicts diverge from the oracle\n");
    return 1;
  }
  if (b_stats.chases_built != 0) {
    std::fprintf(stderr,
                 "FAIL: engine B built %llu chases (want 0: every verdict "
                 "should arrive over the remote tier)\n",
                 static_cast<unsigned long long>(b_stats.chases_built));
    return 1;
  }
  if (b_stats.remote_hits == 0) {
    std::fprintf(stderr, "FAIL: engine B served no remote hits\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
