// E11 — Lemma 6: in the R-chase of a key-based Σ, a symbol occurring in a
// conjunct at level i occurs in no conjunct at level > i+1; symbols live at
// most two adjacent levels. (This locality is what makes the Theorem 2
// certificate for key-based sets checkable and powers Theorem 3's k_Σ = 1.)
//
// Measures the maximum symbol level-span over key-based R-chases — expected
// <= 1 everywhere — and contrasts it with IND-only chases of width-1, where
// the span is bounded by k_Σ (sum of rhs-relation arities) but can exceed 1.
#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "base/rng.h"
#include "bench/bench_util.h"
#include "chase/chase.h"
#include "gen/generators.h"
#include "gen/scenarios.h"

namespace cqchase {
namespace {

// Maximum over symbols of (max level − min level) among alive conjuncts
// containing that symbol.
uint32_t MaxSymbolSpan(const Chase& chase) {
  struct Range {
    uint32_t lo = 0xffffffffu, hi = 0;
  };
  std::unordered_map<Term, Range> ranges;
  for (const ChaseConjunct* c : chase.AliveConjuncts()) {
    for (Term t : c->fact.terms) {
      if (!t.is_variable()) continue;
      Range& r = ranges[t];
      r.lo = std::min(r.lo, c->level);
      r.hi = std::max(r.hi, c->level);
    }
  }
  uint32_t span = 0;
  for (const auto& [t, r] : ranges) span = std::max(span, r.hi - r.lo);
  return span;
}

void Run() {
  std::printf("%-20s %8s %10s %10s %12s\n", "class", "chases", "max span",
              "k_Sigma", "violations");

  // Key-based: Lemma 6 promises span <= 1.
  {
    size_t chases = 0, violations = 0;
    uint32_t max_span = 0;
    for (uint64_t seed = 1; seed <= 60; ++seed) {
      Rng rng(seed);
      RandomCatalogParams cp;
      cp.num_relations = 3;
      cp.min_arity = 2;
      cp.max_arity = 4;
      Catalog catalog = RandomCatalog(rng, cp);
      RandomKeyBasedParams kp;
      kp.num_inds = 3;
      DependencySet deps = RandomKeyBasedDeps(rng, catalog, kp);
      if (!deps.IsKeyBased(catalog)) continue;
      SymbolTable symbols;
      RandomQueryParams qp;
      qp.num_conjuncts = 3;
      ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);
      ChaseLimits limits;
      limits.max_level = 8;
      limits.max_conjuncts = 20000;
      Chase chase(&catalog, &symbols, &deps, ChaseVariant::kRequired, limits);
      if (!chase.Init(q).ok()) continue;
      if (!chase.ExpandToLevel(8).ok()) continue;
      ++chases;
      // Level-0 conjuncts carry Q's symbols, which may repeat across Q
      // arbitrarily; Lemma 6 speaks of chase levels, so spans from level 0
      // count too — the random queries here use each variable sparsely, and
      // the lemma's bound is what we check.
      uint32_t span = MaxSymbolSpan(chase);
      max_span = std::max(max_span, span);
      if (span > 1) ++violations;
    }
    std::printf("%-20s %8zu %10u %10s %12zu\n", "key-based R-chase", chases,
                max_span, "1", violations);
  }

  // Width-1 IND-only: span bounded by k_Σ but typically > 1 is possible.
  {
    size_t chases = 0;
    uint32_t max_span = 0, max_ksigma = 0;
    size_t beyond_ksigma = 0;
    for (uint64_t seed = 1; seed <= 60; ++seed) {
      Rng rng(seed + 1000);
      RandomCatalogParams cp;
      cp.num_relations = 3;
      cp.min_arity = 2;
      cp.max_arity = 3;
      Catalog catalog = RandomCatalog(rng, cp);
      RandomIndParams ip;
      ip.count = 3;
      ip.width = 1;
      DependencySet deps = RandomIndOnlyDeps(rng, catalog, ip);
      SymbolTable symbols;
      RandomQueryParams qp;
      qp.num_conjuncts = 3;
      ConjunctiveQuery q = RandomQuery(rng, catalog, symbols, qp);
      ChaseLimits limits;
      limits.max_level = 10;
      limits.max_conjuncts = 20000;
      Chase chase(&catalog, &symbols, &deps, ChaseVariant::kRequired, limits);
      if (!chase.Init(q).ok()) continue;
      if (!chase.ExpandToLevel(10).ok()) continue;
      ++chases;
      uint32_t span = MaxSymbolSpan(chase);
      max_span = std::max(max_span, span);
      // k_Σ for width-1 sets: sum of arities of IND rhs relations.
      uint32_t ksigma = 0;
      for (const InclusionDependency& ind : deps.inds()) {
        ksigma += static_cast<uint32_t>(catalog.arity(ind.rhs_relation));
      }
      max_ksigma = std::max(max_ksigma, ksigma);
      if (span > ksigma) ++beyond_ksigma;
    }
    std::printf("%-20s %8zu %10u %7u(max) %12zu\n", "width-1 IND R-chase",
                chases, max_span, max_ksigma, beyond_ksigma);
  }
}

}  // namespace
}  // namespace cqchase

int main() {
  cqchase::bench::WallTimer bench_total_timer;
  cqchase::bench::PrintHeader(
      "E11 / Lemma 6: symbol level-span in key-based R-chases",
      "no symbol of a key-based R-chase spans more than one level "
      "(span <= 1, zero violations); width-1 IND chases obey the k_Sigma "
      "propagation bound instead");
  cqchase::Run();
  cqchase::bench::PrintJsonRecord("lemma6_span", bench_total_timer.ElapsedMs());
  return 0;
}
