// E-SCALING — CheckMany thread-scaling on a mixed FD/IND workload: the same
// batch of containment tasks over a key-based Σ (FDs: key → non-key columns,
// INDs: foreign-key style, the paper's Theorem 2 case (ii)) is evaluated
// with 1, 4 and 8 workers. Since PR 2 the chase hot path holds no lock at
// all — each chase mints NDVs from its own sharded arena block, the engine
// caches are brief LRU lookups, and shared chase prefixes serialize only
// same-exact-key askers — so worker fan-out should scale with the cores the
// host actually grants.
//
// Exit code enforces the claim like bench_engine_cache: non-zero if the
// three runs' verdicts diverge, or if the 8-worker throughput misses the
// target for the host's usable core count — >= 2x on >= 4 cores (the
// acceptance bar), a reduced bar on 2-3 cores, and on a single-core host
// (where no wall-clock speedup is physically possible) the gate degrades to
// "8x oversubscription costs <= 1/0.75 of sequential", which still fails if
// workers contend on a hot-path lock. Each worker count is measured
// best-of-2 on a fresh engine to damp scheduler-timing spikes on starved
// CI hosts (see the comment at the run sites).
#include <cstdio>
#include <memory>
#include <vector>

#ifdef __linux__
#include <sched.h>
#endif

#include <thread>

#include "base/rng.h"
#include "base/string_util.h"
#include "bench/bench_util.h"
#include "engine/engine.h"
#include "gen/generators.h"

namespace cqchase {
namespace {

unsigned UsableCores() {
#ifdef __linux__
  cpu_set_t set;
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    int n = CPU_COUNT(&set);
    if (n > 0) return static_cast<unsigned>(n);
  }
#endif
  unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? hc : 1;
}

struct Workload {
  // unique_ptrs keep the catalog and symbol-table addresses stable across
  // moves of the Workload itself — the queries hold pointers into them.
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<SymbolTable> symbols;
  DependencySet deps;
  std::vector<ConjunctiveQuery> lhs;
  std::vector<ConjunctiveQuery> rhs;
};

Workload BuildWorkload(size_t num_tasks) {
  Workload w;
  w.symbols = std::make_unique<SymbolTable>();
  Rng rng(19);
  RandomCatalogParams cp;
  cp.num_relations = 3;
  cp.min_arity = 2;
  cp.max_arity = 3;
  w.catalog = std::make_unique<Catalog>(RandomCatalog(rng, cp));
  // Mixed FD/IND Σ: per-relation key FDs plus INDs into keys (key-based,
  // so every task is decidable by the Lemma 5 bounded chase). Kept small
  // enough that the Lemma 5 bound |Q'|·|Σ|·(W+1)^W fits inside the default
  // max_level — every task must *decide*, not trip a budget.
  RandomKeyBasedParams kp;
  kp.key_size = 1;
  kp.num_inds = 4;
  w.deps = RandomKeyBasedDeps(rng, *w.catalog, kp);

  w.lhs.reserve(num_tasks);
  w.rhs.reserve(num_tasks);
  for (size_t i = 0; i < num_tasks; ++i) {
    RandomQueryParams qp;
    qp.num_conjuncts = 4;
    qp.num_vars = 6;
    qp.name_prefix = StrCat("L", i, "_");
    w.lhs.push_back(RandomQuery(rng, *w.catalog, *w.symbols, qp));
    // Odd tasks plant Q' inside a chase prefix of Q (contained by
    // construction); even tasks pair an independent random Q' (almost
    // always not contained) — both verdicts flow through every run.
    if (i % 2 == 1) {
      Result<ConjunctiveQuery> planted = PlantedSuperQuery(
          rng, w.lhs.back(), w.deps, *w.symbols, /*extra_conjuncts=*/2,
          /*chase_depth=*/2);
      if (planted.ok()) {
        w.rhs.push_back(*std::move(planted));
        continue;
      }
    }
    qp.num_conjuncts = 2;
    qp.num_vars = 4;
    qp.name_prefix = StrCat("R", i, "_");
    w.rhs.push_back(RandomQuery(rng, *w.catalog, *w.symbols, qp));
  }
  return w;
}

struct RunResult {
  double ms = 0;
  std::vector<Result<EngineVerdict>> verdicts;
  EngineStats stats;
};

RunResult RunWith(const Workload& w, const std::vector<ContainmentTask>& tasks,
                  size_t workers) {
  EngineConfig config;
  config.num_threads = workers;
  ContainmentEngine engine(w.catalog.get(), w.symbols.get(), config);
  RunResult r;
  bench::WallTimer timer;
  r.verdicts = engine.CheckMany(tasks);
  r.ms = timer.ElapsedMs();
  r.stats = engine.stats();
  return r;
}

}  // namespace
}  // namespace cqchase

int main() {
  using namespace cqchase;
  bench::PrintHeader(
      "E-SCALING / CheckMany worker fan-out on the lock-free chase path",
      "a mixed FD/IND containment batch gains >= 2x throughput at 8 workers "
      "vs 1 on a multi-core host, with identical verdicts (sharded NDV "
      "arena: no lock on the chase hot path)");

  const size_t kTasks = 64;
  Workload w = BuildWorkload(kTasks);
  std::vector<ContainmentTask> tasks;
  tasks.reserve(w.lhs.size());
  for (size_t i = 0; i < w.lhs.size(); ++i) {
    tasks.push_back(ContainmentTask{&w.lhs[i], &w.rhs[i], &w.deps});
  }

  // Best-of-2 per worker count (fresh engine each run, alternating order):
  // since CheckMany rides the persistent executor, a single oversubscribed
  // run on a starved host can catch a scheduler-timing spike that the old
  // spawn-and-join fan-out averaged away; the second sample damps exactly
  // that noise without touching the gate itself.
  RunResult run1 = RunWith(w, tasks, 1);
  RunResult run4 = RunWith(w, tasks, 4);
  RunResult run8 = RunWith(w, tasks, 8);
  {
    RunResult again1 = RunWith(w, tasks, 1);
    if (again1.ms < run1.ms) run1 = std::move(again1);
    RunResult again4 = RunWith(w, tasks, 4);
    if (again4.ms < run4.ms) run4 = std::move(again4);
    RunResult again8 = RunWith(w, tasks, 8);
    if (again8.ms < run8.ms) run8 = std::move(again8);
  }

  size_t contained = 0;
  size_t errors = 0;
  size_t mismatches = 0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    const bool ok1 = run1.verdicts[i].ok();
    if (ok1 != run4.verdicts[i].ok() || ok1 != run8.verdicts[i].ok()) {
      ++mismatches;
      continue;
    }
    if (!ok1) {
      ++errors;
      continue;
    }
    const bool c1 = run1.verdicts[i]->report.contained;
    if (c1 != run4.verdicts[i]->report.contained ||
        c1 != run8.verdicts[i]->report.contained) {
      ++mismatches;
    }
    if (c1) ++contained;
  }

  const double speedup4 = run4.ms > 0 ? run1.ms / run4.ms : 0.0;
  const double speedup8 = run8.ms > 0 ? run1.ms / run8.ms : 0.0;
  const unsigned cores = UsableCores();
  // The acceptance bar needs hardware to scale onto; degrade honestly when
  // the host grants fewer cores rather than measure a fiction. On one core
  // the gate only polices pathological contention (a hot-path lock shows up
  // as oversubscription collapse), so it sits well below 1x with headroom
  // for scheduler noise.
  const double target = cores >= 4 ? 2.0 : cores >= 2 ? 1.3 : 0.6;

  std::printf("%zu tasks, mixed FD/IND (key-based) Sigma, %u usable core(s)\n",
              tasks.size(), cores);
  std::printf("  1 worker : %9.3f ms  (%llu chases built)\n", run1.ms,
              static_cast<unsigned long long>(run1.stats.chases_built));
  std::printf("  4 workers: %9.3f ms  (speedup %5.2fx)\n", run4.ms, speedup4);
  std::printf("  8 workers: %9.3f ms  (speedup %5.2fx, target >= %.2fx)\n",
              run8.ms, speedup8, target);
  std::printf("  verdicts : %zu contained, %zu mismatches, %zu errors\n",
              contained, mismatches, errors);
  std::printf("  arena    : %llu NDVs minted, %llu block handoffs\n\n",
              static_cast<unsigned long long>(w.symbols->num_nondist_vars()),
              static_cast<unsigned long long>(
                  w.symbols->ndv_blocks_handed_out()));

  std::vector<std::pair<std::string, double>> counters = {
      {"tasks", static_cast<double>(tasks.size())},
      {"ms_1", run1.ms},
      {"ms_4", run4.ms},
      {"ms_8", run8.ms},
      {"speedup_4v1", speedup4},
      {"speedup_8v1", speedup8},
      {"usable_cores", static_cast<double>(cores)},
      {"target", target},
      {"ndvs_minted", static_cast<double>(w.symbols->num_nondist_vars())},
      {"ndv_block_handoffs",
       static_cast<double>(w.symbols->ndv_blocks_handed_out())},
      {"mismatches", static_cast<double>(mismatches)},
      {"errors", static_cast<double>(errors)}};
  // The 8-worker run's scheduler health: CheckMany batches now ride the
  // persistent executor, so its steal/queue counters are part of the
  // scaling story this bench records.
  bench::AppendEngineCounters(run8.stats, counters);
  // The cache knobs are the EngineConfig defaults in all three runs (the
  // worker counts this bench varies are already in ms_1/ms_4/ms_8 and the
  // speedup series).
  bench::AppendEngineConfig(EngineConfig{}, counters);
  bench::PrintJsonRecord("checkmany_scaling", run1.ms + run4.ms + run8.ms,
                         counters);

  if (mismatches > 0) {
    std::fprintf(stderr, "FAIL: verdicts diverge across worker counts\n");
    return 1;
  }
  if (speedup8 < target) {
    std::fprintf(stderr,
                 "FAIL: 8-worker speedup %.2fx below the %.2fx target for %u "
                 "usable core(s)\n",
                 speedup8, target, cores);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
