#include "cq/query.h"

#include <unordered_set>

#include "base/string_util.h"

namespace cqchase {

std::vector<Term> ConjunctiveQuery::Variables() const {
  std::vector<Term> out;
  std::unordered_set<Term> seen;
  auto visit = [&](Term t) {
    if (t.is_variable() && seen.insert(t).second) out.push_back(t);
  };
  for (Term t : summary_) visit(t);
  for (const Fact& f : conjuncts_) {
    for (Term t : f.terms) visit(t);
  }
  return out;
}

std::vector<Term> ConjunctiveQuery::AllTerms() const {
  std::vector<Term> out;
  std::unordered_set<Term> seen;
  auto visit = [&](Term t) {
    if (seen.insert(t).second) out.push_back(t);
  };
  for (Term t : summary_) visit(t);
  for (const Fact& f : conjuncts_) {
    for (Term t : f.terms) visit(t);
  }
  return out;
}

Status ConjunctiveQuery::Validate() const {
  for (const Fact& f : conjuncts_) {
    if (f.relation >= catalog_->num_relations()) {
      return Status::InvalidArgument("conjunct references unknown relation");
    }
    if (f.terms.size() != catalog_->arity(f.relation)) {
      return Status::InvalidArgument(
          StrCat("conjunct ", f.ToString(*catalog_, *symbols_),
                 " does not match the arity of relation '",
                 catalog_->relation(f.relation).name(), "' (",
                 catalog_->arity(f.relation), ")"));
    }
    for (Term t : f.terms) {
      if (!t.is_valid()) {
        return Status::InvalidArgument("conjunct contains an invalid term");
      }
    }
  }
  std::unordered_set<Term> body_terms;
  for (const Fact& f : conjuncts_) {
    body_terms.insert(f.terms.begin(), f.terms.end());
  }
  for (Term t : summary_) {
    if (!t.is_valid()) {
      return Status::InvalidArgument("summary row contains an invalid term");
    }
    if (t.is_nondist_var()) {
      return Status::InvalidArgument(
          StrCat("summary row entry '", symbols_->Name(t),
                 "' is a nondistinguished variable"));
    }
    if (t.is_dist_var() && !empty_query_ && body_terms.count(t) == 0) {
      return Status::InvalidArgument(
          StrCat("summary row variable '", symbols_->Name(t),
                 "' does not occur in any conjunct (unsafe query)"));
    }
  }
  for (size_t i = 0; i < conjuncts_.size(); ++i) {
    for (size_t j = i + 1; j < conjuncts_.size(); ++j) {
      if (conjuncts_[i] == conjuncts_[j]) {
        return Status::InvalidArgument(
            StrCat("duplicate conjunct ",
                   conjuncts_[i].ToString(*catalog_, *symbols_)));
      }
    }
  }
  return Status::OK();
}

std::string ConjunctiveQuery::ToString() const {
  std::string head =
      StrCat("ans",
             StrCat("(",
                    StrJoinMapped(summary_, ", ",
                                  [&](Term t) { return symbols_->DisplayName(t); }),
                    ")"));
  if (empty_query_) return StrCat(head, " :- false");
  if (conjuncts_.empty()) return head;
  return StrCat(head, " :- ",
                StrJoinMapped(conjuncts_, ", ", [&](const Fact& f) {
                  return f.ToString(*catalog_, *symbols_);
                }));
}

}  // namespace cqchase
