// Fact: one atom over a relation — a conjunct of a query, a row of a database
// instance, or a conjunct of a chase. All three roles share this type, which
// is what lets Theorem 1's "view the chase as a database" be a no-op here.
#ifndef CQCHASE_CQ_FACT_H_
#define CQCHASE_CQ_FACT_H_

#include <string>
#include <vector>

#include "base/hash.h"
#include "schema/catalog.h"
#include "symbols/symbol_table.h"
#include "symbols/term.h"

namespace cqchase {

struct Fact {
  RelationId relation = 0;
  std::vector<Term> terms;

  friend bool operator==(const Fact& a, const Fact& b) {
    return a.relation == b.relation && a.terms == b.terms;
  }
  friend bool operator!=(const Fact& a, const Fact& b) { return !(a == b); }

  // Deterministic total order: by relation, then pointwise term order.
  friend bool operator<(const Fact& a, const Fact& b) {
    if (a.relation != b.relation) return a.relation < b.relation;
    return a.terms < b.terms;
  }

  size_t hash() const {
    return HashCombine(static_cast<size_t>(relation) + 0x51ed270b,
                       HashRange(terms.begin(), terms.end()));
  }

  // Renders e.g. "EMP(e, s, d)".
  std::string ToString(const Catalog& catalog,
                       const SymbolTable& symbols) const;
};

// Renders a tuple of terms, e.g. "(e, 'acme')".
std::string TermsToString(const std::vector<Term>& terms,
                          const SymbolTable& symbols);

}  // namespace cqchase

template <>
struct std::hash<cqchase::Fact> {
  size_t operator()(const cqchase::Fact& f) const { return f.hash(); }
};

#endif  // CQCHASE_CQ_FACT_H_
