// ConjunctiveQuery: the paper's formal query object (Section 2):
// an input scheme (Catalog), conjuncts, a set of distinguished variables, a
// set of nondistinguished variables, constants, and a summary row whose
// entries are DVs or constants.
//
// Queries reference — but do not own — a Catalog and a SymbolTable; all
// queries taking part in one containment problem must share both.
#ifndef CQCHASE_CQ_QUERY_H_
#define CQCHASE_CQ_QUERY_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "cq/fact.h"
#include "schema/catalog.h"
#include "symbols/symbol_table.h"
#include "symbols/term.h"

namespace cqchase {

class ConjunctiveQuery {
 public:
  ConjunctiveQuery(const Catalog* catalog, const SymbolTable* symbols)
      : catalog_(catalog), symbols_(symbols) {}

  const Catalog& catalog() const { return *catalog_; }
  const SymbolTable& symbols() const { return *symbols_; }

  const std::vector<Fact>& conjuncts() const { return conjuncts_; }
  const std::vector<Term>& summary() const { return summary_; }

  void AddConjunct(Fact fact) { conjuncts_.push_back(std::move(fact)); }
  void SetSummary(std::vector<Term> summary) { summary_ = std::move(summary); }

  // All distinct variables occurring in the conjuncts or summary row, in
  // first-occurrence order (summary first).
  std::vector<Term> Variables() const;

  // All distinct terms (variables and constants), first-occurrence order.
  std::vector<Term> AllTerms() const;

  // Structural checks:
  //  * conjunct arity matches its relation scheme;
  //  * summary entries are DVs or constants (never NDVs);
  //  * every summary DV occurs in some conjunct (safety);
  //  * conjuncts are distinct (the paper's C_Q is a set).
  Status Validate() const;

  // Number of conjuncts — |Q| in the paper's complexity bounds.
  size_t size() const { return conjuncts_.size(); }

  // Renders as "ans(x) :- EMP(x, s, d), DEP(d, l)". A query with an empty
  // summary row renders the head as "ans()"; an empty (contradictory) query
  // — the FD chase's constant-clash result — renders as "ans(...) :- false".
  std::string ToString() const;

  // True iff the query was marked contradictory (chase constant clash):
  // a query whose result is empty on every database.
  bool is_empty_query() const { return empty_query_; }
  void MarkEmptyQuery() {
    empty_query_ = true;
    conjuncts_.clear();
  }

  friend bool operator==(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
    return a.conjuncts_ == b.conjuncts_ && a.summary_ == b.summary_ &&
           a.empty_query_ == b.empty_query_;
  }

 private:
  const Catalog* catalog_;
  const SymbolTable* symbols_;
  std::vector<Fact> conjuncts_;
  std::vector<Term> summary_;
  bool empty_query_ = false;
};

}  // namespace cqchase

#endif  // CQCHASE_CQ_QUERY_H_
