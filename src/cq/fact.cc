#include "cq/fact.h"

#include "base/string_util.h"

namespace cqchase {

std::string Fact::ToString(const Catalog& catalog,
                           const SymbolTable& symbols) const {
  return StrCat(catalog.relation(relation).name(), "(",
                StrJoinMapped(terms, ", ",
                              [&](Term t) { return symbols.DisplayName(t); }),
                ")");
}

std::string TermsToString(const std::vector<Term>& terms,
                          const SymbolTable& symbols) {
  return StrCat(
      "(",
      StrJoinMapped(terms, ", ", [&](Term t) { return symbols.Name(t); }),
      ")");
}

}  // namespace cqchase
