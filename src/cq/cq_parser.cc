#include "cq/cq_parser.h"

#include <cctype>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/string_util.h"

namespace cqchase {

namespace {

// A parsed atom before symbol resolution: predicate name + argument tokens.
struct RawAtom {
  std::string predicate;
  std::vector<std::string> args;  // raw tokens, constants still quoted
};

class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  bool Consume(std::string_view token) {
    SkipSpace();
    if (text_.substr(pos_).substr(0, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  // Scans one atom "Name(arg, arg, ...)". Arguments may be identifiers,
  // numeric literals, or single-quoted strings.
  Result<RawAtom> ScanAtom() {
    SkipSpace();
    RawAtom atom;
    while (pos_ < text_.size() && (IsIdentChar(text_[pos_]))) {
      atom.predicate.push_back(text_[pos_++]);
    }
    if (atom.predicate.empty()) {
      return Status::InvalidArgument(
          StrCat("expected predicate name at offset ", pos_));
    }
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '(') {
      return Status::InvalidArgument(
          StrCat("expected '(' after predicate '", atom.predicate, "'"));
    }
    ++pos_;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ')') {  // empty argument list
      ++pos_;
      return atom;
    }
    while (true) {
      CQCHASE_ASSIGN_OR_RETURN(std::string arg, ScanArg());
      atom.args.push_back(std::move(arg));
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ')') {
        ++pos_;
        return atom;
      }
      return Status::InvalidArgument(
          StrCat("expected ',' or ')' in argument list of '", atom.predicate,
                 "'"));
    }
  }

 private:
  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  }

  Result<std::string> ScanArg() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of input in atom");
    }
    std::string out;
    if (text_[pos_] == '\'') {  // quoted constant; keep the quotes as marker
      out.push_back(text_[pos_++]);
      while (pos_ < text_.size() && text_[pos_] != '\'') {
        out.push_back(text_[pos_++]);
      }
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("unterminated quoted constant");
      }
      out.push_back(text_[pos_++]);
      return out;
    }
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) {
      out.push_back(text_[pos_++]);
    }
    if (out.empty()) {
      return Status::InvalidArgument(
          StrCat("expected argument at offset ", pos_));
    }
    return out;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

bool IsNumeric(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool IsQuoted(std::string_view s) {
  return s.size() >= 2 && s.front() == '\'' && s.back() == '\'';
}

}  // namespace

Result<ConjunctiveQuery> ParseQuery(const Catalog& catalog,
                                    SymbolTable& symbols,
                                    std::string_view text) {
  Scanner scanner(text);
  CQCHASE_ASSIGN_OR_RETURN(RawAtom head, scanner.ScanAtom());
  if (!scanner.Consume(":-")) {
    if (!scanner.AtEnd()) {
      return Status::InvalidArgument("expected ':-' after query head");
    }
  }
  std::vector<RawAtom> body;
  if (!scanner.AtEnd()) {
    while (true) {
      CQCHASE_ASSIGN_OR_RETURN(RawAtom atom, scanner.ScanAtom());
      body.push_back(std::move(atom));
      if (scanner.Consume(",")) continue;
      break;
    }
    if (!scanner.AtEnd()) {
      return Status::InvalidArgument("trailing input after query body");
    }
  }

  // Head variables become DVs everywhere in this query.
  std::unordered_set<std::string> head_vars;
  for (const std::string& arg : head.args) {
    if (!IsNumeric(arg) && !IsQuoted(arg)) head_vars.insert(arg);
  }

  auto resolve = [&](const std::string& arg) -> Term {
    if (IsQuoted(arg)) {
      return symbols.InternConstant(
          std::string_view(arg).substr(1, arg.size() - 2));
    }
    if (IsNumeric(arg)) return symbols.InternConstant(arg);
    if (head_vars.count(arg) > 0) return symbols.InternDistVar(arg);
    return symbols.InternNondistVar(arg);
  };

  ConjunctiveQuery query(&catalog, &symbols);
  std::vector<Term> summary;
  summary.reserve(head.args.size());
  for (const std::string& arg : head.args) summary.push_back(resolve(arg));
  query.SetSummary(std::move(summary));

  for (const RawAtom& atom : body) {
    std::optional<RelationId> rel = catalog.FindRelation(atom.predicate);
    if (!rel.has_value()) {
      return Status::InvalidArgument(
          StrCat("unknown relation '", atom.predicate, "'"));
    }
    Fact fact;
    fact.relation = *rel;
    fact.terms.reserve(atom.args.size());
    for (const std::string& arg : atom.args) {
      fact.terms.push_back(resolve(arg));
    }
    query.AddConjunct(std::move(fact));
  }
  CQCHASE_RETURN_IF_ERROR(query.Validate());
  return query;
}

}  // namespace cqchase
