// Datalog-style text syntax for conjunctive queries:
//
//   ans(x) :- EMP(x, s, d), DEP(d, l)
//   ans(x, 'acme') :- R(x, y, 42)
//
// Variables are identifiers; variables occurring in the head become
// distinguished variables, all others nondistinguished. Constants are
// numeric literals (42) or single-quoted strings ('acme'). The head
// predicate name is arbitrary and ignored. A Boolean query uses "ans()".
#ifndef CQCHASE_CQ_CQ_PARSER_H_
#define CQCHASE_CQ_CQ_PARSER_H_

#include <string_view>

#include "cq/query.h"

namespace cqchase {

// Parses `text` against `catalog`, interning symbols into `symbols`.
// Variables re-used across multiple ParseQuery calls on the same SymbolTable
// refer to the same Term, which is the intended way to build Q and Q' for a
// containment test.
Result<ConjunctiveQuery> ParseQuery(const Catalog& catalog,
                                    SymbolTable& symbols,
                                    std::string_view text);

}  // namespace cqchase

#endif  // CQCHASE_CQ_CQ_PARSER_H_
