#include "base/status.h"

namespace cqchase {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace cqchase
