// Deterministic random number generation for workload generators, property
// tests and benchmarks. All randomized cqchase components take an explicit
// Rng so that every run is reproducible from a seed.
#ifndef CQCHASE_BASE_RNG_H_
#define CQCHASE_BASE_RNG_H_

#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

namespace cqchase {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Uniform index in [0, n). Requires n > 0.
  size_t Index(size_t n) {
    assert(n > 0);
    return static_cast<size_t>(Uniform(0, static_cast<int64_t>(n) - 1));
  }

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p < 0 ? 0 : (p > 1 ? 1 : p))(engine_);
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  // Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Index(v.size())];
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cqchase

#endif  // CQCHASE_BASE_RNG_H_
