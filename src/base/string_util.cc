#include "base/string_util.h"

#include <cctype>

namespace cqchase {

std::vector<std::string> StrSplit(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      return out;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace cqchase
