// Hash combinators for cqchase value types.
#ifndef CQCHASE_BASE_HASH_H_
#define CQCHASE_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace cqchase {

// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

// Hashes a range of hashable elements into one value.
template <typename It>
size_t HashRange(It begin, It end, size_t seed = 0xcbf29ce484222325ULL) {
  for (It it = begin; it != end; ++it) {
    seed = HashCombine(seed, std::hash<typename std::iterator_traits<It>::value_type>{}(*it));
  }
  return seed;
}

}  // namespace cqchase

#endif  // CQCHASE_BASE_HASH_H_
