// Small string helpers used throughout cqchase: concatenation, joining,
// splitting and trimming. No locale dependence, ASCII only.
#ifndef CQCHASE_BASE_STRING_UTIL_H_
#define CQCHASE_BASE_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace cqchase {

namespace internal_strings {
inline void AppendPieces(std::ostringstream&) {}
template <typename T, typename... Rest>
void AppendPieces(std::ostringstream& os, const T& head, const Rest&... rest) {
  os << head;
  AppendPieces(os, rest...);
}
}  // namespace internal_strings

// Concatenates the streamable arguments into one string.
// StrCat("level ", 3, "/", 10) == "level 3/10".
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  internal_strings::AppendPieces(os, args...);
  return os.str();
}

// Joins the elements of `parts` with `sep`, streaming each element.
template <typename Container>
std::string StrJoin(const Container& parts, std::string_view sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) os << sep;
    first = false;
    os << p;
  }
  return os.str();
}

// Joins after applying `fn` to each element.
template <typename Container, typename Fn>
std::string StrJoinMapped(const Container& parts, std::string_view sep,
                          Fn&& fn) {
  std::ostringstream os;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) os << sep;
    first = false;
    os << fn(p);
  }
  return os.str();
}

// Splits `input` on the single character `sep`. Empty pieces are kept.
std::vector<std::string> StrSplit(std::string_view input, char sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// True iff `s` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

}  // namespace cqchase

#endif  // CQCHASE_BASE_STRING_UTIL_H_
