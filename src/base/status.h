// Status and Result<T>: exception-free error handling for the cqchase
// library, in the style of RocksDB's Status / Abseil's StatusOr.
//
// Library code never throws. Every fallible operation returns a Status or a
// Result<T>; callers are expected to check `ok()` before use.
#ifndef CQCHASE_BASE_STATUS_H_
#define CQCHASE_BASE_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace cqchase {

// Canonical error space. Kept deliberately small: the library has few
// distinct failure modes.
enum class StatusCode {
  kOk = 0,
  // Malformed input: bad parse, arity mismatch, unknown relation/attribute.
  kInvalidArgument = 1,
  // A lookup failed (relation, attribute, dependency, ...).
  kNotFound = 2,
  // A configured resource budget (chase level / conjunct cap, model size,
  // proof depth) was exhausted before the algorithm could decide. The result
  // is "unknown", never a wrong answer.
  kResourceExhausted = 3,
  // Precondition violated: e.g., running the key-based containment procedure
  // on a dependency set that is not key-based.
  kFailedPrecondition = 4,
  // Internal invariant violation; indicates a bug in cqchase itself.
  kInternal = 5,
  // The requested combination is not implemented (e.g., general FD+IND
  // containment, which the paper leaves open).
  kUnimplemented = 6,
  // A per-request deadline passed before the procedure could decide. Like
  // kResourceExhausted the result is "unknown", never a wrong answer.
  kDeadlineExceeded = 7,
  // The caller cancelled the request (EngineFuture::Cancel); the procedure
  // stopped cooperatively at a consistent point.
  kCancelled = 8,
};

// Human-readable name of a StatusCode ("OK", "INVALID_ARGUMENT", ...).
std::string_view StatusCodeToString(StatusCode code);

// A cheap value type carrying a code and, for errors, a message.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

// Result<T> holds either a T or an error Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit, so functions can `return value;` / `return
  // status;` — the same convenience absl::StatusOr provides.
  Result(T value) : value_(std::move(value)) {}        // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  // Rvalue deref moves the payload out, so `T t = *MakeResult();` works for
  // move-only T (a Chase owns an NdvShard and is no longer copyable).
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ is engaged.
};

}  // namespace cqchase

// Propagates an error status out of the enclosing function.
#define CQCHASE_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::cqchase::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

// Evaluates a Result<T> expression and either binds its value or returns the
// error. Usage: CQCHASE_ASSIGN_OR_RETURN(auto v, MakeV());
#define CQCHASE_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  CQCHASE_ASSIGN_OR_RETURN_IMPL_(                                   \
      CQCHASE_STATUS_CONCAT_(_result_tmp_, __LINE__), lhs, rexpr)
#define CQCHASE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()
#define CQCHASE_STATUS_CONCAT_(a, b) CQCHASE_STATUS_CONCAT_IMPL_(a, b)
#define CQCHASE_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // CQCHASE_BASE_STATUS_H_
