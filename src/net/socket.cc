#include "net/socket.h"

#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>

#include "base/string_util.h"

namespace cqchase {
namespace net {

namespace {

Status ErrnoStatus(const char* what, int err) {
  return Status::Internal(StrCat(what, ": ", strerror(err)));
}

// Milliseconds until `deadline`, clamped to [0, tick]. poll() takes an int;
// short ticks also keep EINTR recovery cheap.
int PollTimeoutMs(SocketDeadline deadline) {
  const auto now = std::chrono::steady_clock::now();
  if (deadline <= now) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
          .count();
  return static_cast<int>(std::min<long long>(ms, 100));
}

// Waits for `events` on `fd` until `deadline`. Returns OK when the fd is
// ready (including error-ready: the caller's next syscall reports the real
// errno), kDeadlineExceeded otherwise.
Status PollFor(int fd, short events, SocketDeadline deadline) {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = poll(&pfd, 1, PollTimeoutMs(deadline));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll", errno);
    }
    if (rc > 0) return Status::OK();
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded("socket operation timed out");
    }
  }
}

}  // namespace

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(O_NONBLOCK)", errno);
  }
  return Status::OK();
}

SocketDeadline DeadlineAfter(std::chrono::milliseconds timeout) {
  return std::chrono::steady_clock::now() +
         std::max(timeout, std::chrono::milliseconds(0));
}

Status SplitHostPort(const std::string& address, std::string* host,
                     uint16_t* port) {
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon + 1 == address.size()) {
    return Status::InvalidArgument(
        StrCat("address \"", address, "\" is not host:port"));
  }
  const std::string port_str = address.substr(colon + 1);
  char* end = nullptr;
  const unsigned long value = strtoul(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || value > 65535) {
    return Status::InvalidArgument(
        StrCat("address \"", address, "\" has a bad port"));
  }
  *host = address.substr(0, colon);
  *port = static_cast<uint16_t>(value);
  return Status::OK();
}

Result<UniqueFd> DialTcp(const std::string& host, uint16_t port,
                         std::chrono::milliseconds timeout) {
  const SocketDeadline deadline = DeadlineAfter(timeout);
  struct addrinfo hints;
  memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* addrs = nullptr;
  const std::string port_str = StrCat(int{port});
  const int rc =
      getaddrinfo(host.empty() ? "127.0.0.1" : host.c_str(), port_str.c_str(),
                  &hints, &addrs);
  if (rc != 0) {
    return Status::Internal(
        StrCat("getaddrinfo(", host, "): ", gai_strerror(rc)));
  }
  Status last = Status::Internal(StrCat("no addresses for ", host));
  for (struct addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    UniqueFd fd(socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.ok()) {
      last = ErrnoStatus("socket", errno);
      continue;
    }
    Status nb = SetNonBlocking(fd.get());
    if (!nb.ok()) {
      last = nb;
      continue;
    }
    if (connect(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0) {
      if (errno != EINPROGRESS) {
        last = ErrnoStatus("connect", errno);
        continue;
      }
      // Non-blocking connect in flight: writable (or error-ready) when the
      // handshake resolves. This is what makes the connect timeout *ours*
      // instead of the kernel's minutes-long default.
      Status ready = PollFor(fd.get(), POLLOUT, deadline);
      if (!ready.ok()) {
        last = ready.code() == StatusCode::kDeadlineExceeded
                   ? Status::DeadlineExceeded(
                         StrCat("connect to ", host, ":", int{port},
                                " timed out"))
                   : ready;
        continue;
      }
      int err = 0;
      socklen_t len = sizeof(err);
      if (getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
        last = ErrnoStatus("getsockopt(SO_ERROR)", errno);
        continue;
      }
      if (err != 0) {
        last = ErrnoStatus("connect", err);
        continue;
      }
    }
    const int one = 1;
    // Best effort: a transport that cannot disable Nagle still works, just
    // with worse per-frame latency.
    (void)setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    freeaddrinfo(addrs);
    return fd;
  }
  freeaddrinfo(addrs);
  return last;
}

Result<std::pair<UniqueFd, uint16_t>> ListenTcp(const std::string& host,
                                                uint16_t port) {
  struct addrinfo hints;
  memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* addrs = nullptr;
  const std::string port_str = StrCat(int{port});
  const int rc = getaddrinfo(host.empty() ? nullptr : host.c_str(),
                             port_str.c_str(), &hints, &addrs);
  if (rc != 0) {
    return Status::Internal(
        StrCat("getaddrinfo(", host, "): ", gai_strerror(rc)));
  }
  Status last = Status::Internal(StrCat("no addresses for ", host));
  for (struct addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    UniqueFd fd(socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.ok()) {
      last = ErrnoStatus("socket", errno);
      continue;
    }
    const int one = 1;
    // Restart without waiting out TIME_WAIT (the CI daemon restarts on the
    // same ephemeral port within seconds).
    (void)setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (bind(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0) {
      last = ErrnoStatus("bind", errno);
      continue;
    }
    if (listen(fd.get(), 128) != 0) {
      last = ErrnoStatus("listen", errno);
      continue;
    }
    Status nb = SetNonBlocking(fd.get());
    if (!nb.ok()) {
      last = nb;
      continue;
    }
    struct sockaddr_storage bound;
    socklen_t len = sizeof(bound);
    if (getsockname(fd.get(), reinterpret_cast<struct sockaddr*>(&bound),
                    &len) != 0) {
      last = ErrnoStatus("getsockname", errno);
      continue;
    }
    uint16_t bound_port = 0;
    if (bound.ss_family == AF_INET) {
      bound_port =
          ntohs(reinterpret_cast<struct sockaddr_in*>(&bound)->sin_port);
    } else if (bound.ss_family == AF_INET6) {
      bound_port =
          ntohs(reinterpret_cast<struct sockaddr_in6*>(&bound)->sin6_port);
    }
    freeaddrinfo(addrs);
    return std::make_pair(std::move(fd), bound_port);
  }
  freeaddrinfo(addrs);
  return last;
}

bool WaitReadable(int fd, std::chrono::milliseconds tick) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  const int rc = poll(&pfd, 1, static_cast<int>(tick.count()));
  return rc > 0;  // error-ready counts: the next read reports the real errno
}

Status SendAll(int fd, const std::string& bytes, SocketDeadline deadline) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE here, not as
    // a process-killing SIGPIPE.
    const ssize_t n = send(fd, bytes.data() + sent, bytes.size() - sent,
                           MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      CQCHASE_RETURN_IF_ERROR(PollFor(fd, POLLOUT, deadline));
      continue;
    }
    return ErrnoStatus("send", errno);
  }
  return Status::OK();
}

Status RecvExact(int fd, size_t n, std::string* out, SocketDeadline deadline) {
  size_t got = 0;
  char buf[4096];
  while (got < n) {
    const size_t want = std::min(n - got, sizeof(buf));
    const ssize_t r = recv(fd, buf, want, 0);
    if (r > 0) {
      out->append(buf, static_cast<size_t>(r));
      got += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      // Clean EOF between messages is a reconnectable hangup; EOF mid-read
      // is a torn message from a dying or confused peer.
      return got == 0 ? Status::NotFound("peer closed the connection")
                      : Status::InvalidArgument(
                            "peer closed mid-message (torn read)");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      CQCHASE_RETURN_IF_ERROR(PollFor(fd, POLLIN, deadline));
      continue;
    }
    return ErrnoStatus("recv", errno);
  }
  return Status::OK();
}

Status ReadFrame(int fd, size_t max_frame_bytes, std::string* out_framed,
                 SocketDeadline deadline) {
  out_framed->clear();
  // u32 payload length first; judged against the bound *before* any payload
  // allocation — the length prefix is peer data.
  CQCHASE_RETURN_IF_ERROR(RecvExact(fd, 4, out_framed, deadline));
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(
                       static_cast<unsigned char>((*out_framed)[i]))
                   << (8 * i);
  }
  const size_t total = 4 + 8 + static_cast<size_t>(payload_len);
  if (total > max_frame_bytes) {
    return Status::InvalidArgument(
        StrCat("frame of ", payload_len, " payload bytes exceeds the ",
               max_frame_bytes, "-byte bound"));
  }
  // u64 checksum + payload; verification is UnframeTierMessage's job — this
  // layer only reassembles the complete framed bytes.
  return RecvExact(fd, total - 4, out_framed, deadline);
}

}  // namespace net
}  // namespace cqchase
