#include "net/tcp_transport.h"

#include <algorithm>

#include "base/string_util.h"

namespace cqchase {
namespace net {

TcpTransport::TcpTransport(std::string host, uint16_t port,
                           TcpTransportOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      peer_(StrCat("tcp:", host_, ":", int{port_})),
      jitter_(options.jitter_seed),
      backoff_(options.backoff_initial) {}

Status TcpTransport::EnsureConnectedLocked() {
  if (fd_.ok()) return Status::OK();
  const auto now = std::chrono::steady_clock::now();
  if (now < next_attempt_) {
    // Inside the backoff window: fail fast with zero wire traffic. The
    // window is NOT extended — only a real failed dial doubles the wait —
    // so a burst of lookups against a dead peer degrades to cheap local
    // misses without pushing recovery further away.
    ++stats_.errors;
    return Status::FailedPrecondition(
        StrCat(peer_, " backing off after connection failure"));
  }

  Result<UniqueFd> dialed = DialTcp(host_, port_, options_.connect_timeout);
  if (!dialed.ok()) {
    DisconnectAndBackoffLocked();
    return dialed.status();
  }
  fd_ = *std::move(dialed);

  // Transport-level hello: prove the peer speaks the protocol and is the
  // *same* authority before any cached answer can flow.
  const SocketDeadline deadline = DeadlineAfter(options_.connect_timeout);
  std::string framed_response;
  Status hello = SendAll(fd_.get(), BuildTierHello(), deadline);
  if (hello.ok()) {
    hello = ReadFrame(fd_.get(), options_.max_frame_bytes, &framed_response,
                      deadline);
  }
  uint32_t version = 0;
  uint64_t fingerprint = 0;
  if (hello.ok()) {
    hello = ParseTierHelloResponse(framed_response, peer_, &version,
                                   &fingerprint);
  }
  if (hello.ok() && identity_pinned_ &&
      (version != pinned_version_ || fingerprint != pinned_fingerprint_)) {
    // The address now answers as somebody else (service churn, upgraded
    // peer with a new key scheme). Serving it would mix verdict spaces;
    // the tier degrades to misses instead.
    hello = Status::FailedPrecondition(
        StrCat(peer_, " identity changed across reconnect: v", version,
               "/fingerprint ", fingerprint, " vs pinned v", pinned_version_,
               "/", pinned_fingerprint_));
  }
  if (!hello.ok()) {
    DisconnectAndBackoffLocked();
    return hello;
  }
  if (!identity_pinned_) {
    identity_pinned_ = true;
    pinned_version_ = version;
    pinned_fingerprint_ = fingerprint;
  }
  ++stats_.connects;
  if (stats_.connects > 1) ++stats_.reconnects;
  backoff_ = options_.backoff_initial;
  return Status::OK();
}

void TcpTransport::DisconnectAndBackoffLocked() {
  fd_.Reset();
  // Deterministic jitter in [1.0, 1.5): a restarted authority sees its
  // clients return spread out, not as one synchronized herd.
  const double factor = 1.0 + 0.5 * jitter_.UniformDouble();
  const auto wait = std::chrono::milliseconds(
      static_cast<int64_t>(static_cast<double>(backoff_.count()) * factor));
  next_attempt_ = std::chrono::steady_clock::now() + wait;
  backoff_ = std::min(backoff_ * 2, options_.backoff_max);
}

Status TcpTransport::RoundTrip(const std::string& request,
                               std::string* response) {
  std::lock_guard<std::mutex> lock(mu_);
  CQCHASE_RETURN_IF_ERROR(EnsureConnectedLocked());
  const SocketDeadline deadline = DeadlineAfter(options_.rtt_timeout);
  Status status = SendAll(fd_.get(), request, deadline);
  if (status.ok()) {
    status = ReadFrame(fd_.get(), options_.max_frame_bytes, response,
                       deadline);
  }
  if (!status.ok()) {
    // Any mid-round-trip failure poisons the stream (a late response to
    // *this* request must never be read as the answer to the next one):
    // drop the connection, redial after backoff.
    ++stats_.errors;
    DisconnectAndBackoffLocked();
    return status;
  }
  ++stats_.round_trips;
  return Status::OK();
}

VerdictTransportStats TcpTransport::TransportStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

uint32_t TcpTransport::pinned_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pinned_version_;
}

uint64_t TcpTransport::pinned_fingerprint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pinned_fingerprint_;
}

}  // namespace net
}  // namespace cqchase
