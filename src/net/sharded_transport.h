// ShardedTransport: horizontal scale for the verdict authority — one
// VerdictTransport facade over N backend transports, routing every key to
// shard FNV-1a64(key) % N on the client side. RemoteTier (and TierStack,
// and the engine) are unchanged: they see one transport whose backing map
// happens to be the union of N authorities.
//
// Protocol awareness: routing needs the key, so this transport decodes each
// request (the same bounds-checked parsing the authority itself does):
//
//   hello       — forwarded to every shard. At least one must answer, and
//                 every shard that answers must agree on (version,
//                 fingerprint) — shards serving different key schemes or
//                 protocol levels would silently split the verdict space.
//                 Shards that are down at hello time are skipped (their
//                 keys degrade to misses until they return).
//   fetch       — routed to the owning shard; its response (or error)
//                 passes through verbatim. A dead shard's error degrades
//                 that shard's keys to misses in RemoteTier, per shard.
//   fetch-many  — partitioned by shard; per-shard sub-batches fan out, and
//                 sub-responses are strictly validated (echo verification,
//                 full entry decode) before merging back into request
//                 order. A dead or confused shard contributes misses for
//                 exactly its keys — never errors for the whole batch, and
//                 never an unverified byte.
//   publish     — partitioned by shard; accepted counts sum over the
//                 shards that took the batch. Only when *every* involved
//                 shard fails does the publish round trip fail (RemoteTier
//                 then requeues the batch for a later flush).
//
// Reconnect state is per shard by construction: each backend TcpTransport
// keeps its own socket, backoff and pinned identity.
#ifndef CQCHASE_NET_SHARDED_TRANSPORT_H_
#define CQCHASE_NET_SHARDED_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "engine/remote_tier.h"

namespace cqchase {
namespace net {

struct ShardStats {
  std::string peer;          // the backend transport's label
  uint64_t round_trips = 0;  // sub-requests sent to this shard
  uint64_t errors = 0;       // sub-requests that failed (degraded to misses)
  uint64_t keys_routed = 0;  // keys whose home this shard is (fetch+publish)
};

class ShardedTransport final : public VerdictTransport {
 public:
  // `shards` must be non-empty; order defines the hash ring (changing the
  // order or count re-homes keys, which is safe — a re-homed key is merely
  // cold on its new shard — but wasteful; keep it stable).
  explicit ShardedTransport(
      std::vector<std::shared_ptr<VerdictTransport>> shards);

  // The owning shard of a canonical key (exposed so tests and ops can
  // predict placement).
  size_t ShardOf(std::string_view key) const;
  size_t shard_count() const { return shards_.size(); }

  Status RoundTrip(const std::string& request, std::string* response) override;
  std::string_view Peer() const override { return peer_; }
  // Aggregate over all shards (their own counters summed).
  VerdictTransportStats TransportStats() const override;

  std::vector<ShardStats> shard_stats() const;

 private:
  Status HandleHello(const std::string& request, std::string* response);
  Status HandleFetch(const std::string& request, std::string_view key,
                     std::string* response);
  Status HandleFetchMany(const std::vector<std::string>& keys,
                         std::string* response);
  Status HandlePublish(
      const std::vector<std::pair<std::string, StoredVerdict>>& entries,
      std::string* response);

  // One sub-round-trip with per-shard accounting.
  Status ShardRoundTrip(size_t shard, const std::string& request,
                        std::string* response);

  const std::vector<std::shared_ptr<VerdictTransport>> shards_;
  const std::string peer_;

  mutable std::mutex mu_;  // guards stats_
  std::vector<ShardStats> stats_;
};

}  // namespace net
}  // namespace cqchase

#endif  // CQCHASE_NET_SHARDED_TRANSPORT_H_
