#include "net/sharded_transport.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "base/string_util.h"

namespace cqchase {
namespace net {

namespace {

std::string JoinPeers(
    const std::vector<std::shared_ptr<VerdictTransport>>& shards) {
  std::string out = "sharded(";
  for (size_t i = 0; i < shards.size(); ++i) {
    if (i > 0) out += "|";
    out += std::string(shards[i]->Peer());
  }
  out += ")";
  return out;
}

}  // namespace

ShardedTransport::ShardedTransport(
    std::vector<std::shared_ptr<VerdictTransport>> shards)
    : shards_(std::move(shards)), peer_(JoinPeers(shards_)) {
  stats_.resize(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    stats_[i].peer = std::string(shards_[i]->Peer());
  }
}

size_t ShardedTransport::ShardOf(std::string_view key) const {
  // FNV-1a over the canonical key: the same stable, location-independent
  // bytes the protocol checksums. Every client with the same shard list
  // computes the same home — no coordination service required.
  return static_cast<size_t>(wire::Fnv1a64(key) % shards_.size());
}

Status ShardedTransport::ShardRoundTrip(size_t shard,
                                        const std::string& request,
                                        std::string* response) {
  Status status = shards_[shard]->RoundTrip(request, response);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_[shard].round_trips;
  if (!status.ok()) ++stats_[shard].errors;
  return status;
}

Status ShardedTransport::RoundTrip(const std::string& request,
                                   std::string* response) {
  if (shards_.empty()) {
    return Status::FailedPrecondition("sharded transport has no shards");
  }
  std::string payload;
  CQCHASE_RETURN_IF_ERROR(UnframeTierMessage(request, &payload));
  wire::ByteReader reader(payload);
  uint8_t op = 0;
  if (!reader.ReadU8(&op)) {
    return Status::InvalidArgument("empty protocol message");
  }
  switch (op) {
    case kTierOpHello:
      return HandleHello(request, response);
    case kTierOpFetch: {
      std::string key;
      if (!reader.ReadString(&key) || reader.remaining() != 0) {
        return Status::InvalidArgument("malformed fetch");
      }
      return HandleFetch(request, key, response);
    }
    case kTierOpFetchMany: {
      uint32_t count = 0;
      if (!reader.ReadU32(&count)) {
        return Status::InvalidArgument("malformed fetch-many");
      }
      std::vector<std::string> keys;
      keys.reserve(std::min<size_t>(count, reader.remaining() / 4));
      for (uint32_t i = 0; i < count; ++i) {
        std::string key;
        if (!reader.ReadString(&key)) {
          return Status::InvalidArgument("malformed fetch-many key");
        }
        keys.push_back(std::move(key));
      }
      if (reader.remaining() != 0) {
        return Status::InvalidArgument("trailing bytes after fetch-many");
      }
      return HandleFetchMany(keys, response);
    }
    case kTierOpPublish: {
      uint32_t count = 0;
      if (!reader.ReadU32(&count)) {
        return Status::InvalidArgument("malformed publish");
      }
      std::vector<std::pair<std::string, StoredVerdict>> entries;
      entries.reserve(std::min<size_t>(count, reader.remaining() / 37));
      for (uint32_t i = 0; i < count; ++i) {
        std::string key;
        StoredVerdict verdict;
        CQCHASE_RETURN_IF_ERROR(DecodeVerdictEntry(reader, &key, &verdict));
        entries.emplace_back(std::move(key), verdict);
      }
      if (reader.remaining() != 0) {
        return Status::InvalidArgument("trailing bytes after publish batch");
      }
      return HandlePublish(entries, response);
    }
    default:
      return Status::InvalidArgument(
          StrCat("unknown protocol opcode ", int{op}));
  }
}

Status ShardedTransport::HandleHello(const std::string& request,
                                     std::string* response) {
  // Every reachable shard must present the same identity; a mixed fleet
  // would partition the verdict space by key scheme, which TierStack's
  // fingerprint policy exists to forbid. Shards that are down are skipped —
  // their keys serve as misses until they return.
  bool have_identity = false;
  uint32_t version = 0;
  uint64_t fingerprint = 0;
  Status last_error =
      Status::FailedPrecondition("no shard answered the hello");
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::string shard_response;
    Status status = ShardRoundTrip(i, request, &shard_response);
    if (!status.ok()) {
      last_error = status;
      continue;
    }
    uint32_t shard_version = 0;
    uint64_t shard_fingerprint = 0;
    status = ParseTierHelloResponse(shard_response, shards_[i]->Peer(),
                                    &shard_version, &shard_fingerprint);
    if (!status.ok()) return status;
    if (!have_identity) {
      have_identity = true;
      version = shard_version;
      fingerprint = shard_fingerprint;
    } else if (shard_version != version || shard_fingerprint != fingerprint) {
      return Status::FailedPrecondition(StrCat(
          "shard ", std::string(shards_[i]->Peer()), " identity v",
          shard_version, "/fingerprint ", shard_fingerprint,
          " disagrees with the fleet's v", version, "/", fingerprint));
    }
  }
  if (!have_identity) return last_error;
  std::string reply;
  wire::PutU8(reply, kTierOpHello);
  wire::PutU32(reply, version);
  wire::PutU64(reply, fingerprint);
  *response = FrameTierMessage(reply);
  return Status::OK();
}

Status ShardedTransport::HandleFetch(const std::string& request,
                                     std::string_view key,
                                     std::string* response) {
  const size_t shard = ShardOf(key);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_[shard].keys_routed;
  }
  // Pass-through: RemoteTier already echo-verifies single-fetch responses,
  // and a shard error degrades to a miss there — exactly per-shard
  // miss-degradation.
  return ShardRoundTrip(shard, request, response);
}

Status ShardedTransport::HandleFetchMany(const std::vector<std::string>& keys,
                                         std::string* response) {
  // Partition by owning shard, remembering each key's original position so
  // the merged response keeps request order (the contract RemoteTier's
  // echo verification checks).
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    by_shard[ShardOf(keys[i])].push_back(i);
  }

  // One decoded answer slot per requested key; nullopt = miss.
  std::vector<std::optional<StoredVerdict>> answers(keys.size());
  for (size_t shard = 0; shard < by_shard.size(); ++shard) {
    const std::vector<size_t>& members = by_shard[shard];
    if (members.empty()) continue;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_[shard].keys_routed += members.size();
    }
    std::string sub_payload;
    wire::PutU8(sub_payload, kTierOpFetchMany);
    wire::PutU32(sub_payload, static_cast<uint32_t>(members.size()));
    for (size_t i : members) wire::PutString(sub_payload, keys[i]);
    std::string sub_response;
    if (!ShardRoundTrip(shard, FrameTierMessage(sub_payload), &sub_response)
             .ok()) {
      continue;  // dead shard: its keys stay misses, the batch survives
    }
    // Strict validation before any answer merges: op, count, and per-key
    // binding (entry key or echoed key must match what we asked at that
    // position). A confused shard degrades to misses for its keys only.
    std::string sub_reply;
    if (!UnframeTierMessage(sub_response, &sub_reply).ok()) continue;
    wire::ByteReader r(sub_reply);
    uint8_t op = 0;
    uint32_t count = 0;
    if (!r.ReadU8(&op) || op != kTierOpFetchMany || !r.ReadU32(&count) ||
        count != members.size()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_[shard].errors;
      continue;
    }
    std::vector<std::optional<StoredVerdict>> shard_answers(members.size());
    bool malformed = false;
    for (size_t j = 0; j < members.size(); ++j) {
      const std::string& want = keys[members[j]];
      uint8_t found = 0;
      if (!r.ReadU8(&found) || found > 1) {
        malformed = true;
        break;
      }
      if (found == 1) {
        std::string shard_key;
        StoredVerdict verdict;
        if (!DecodeVerdictEntry(r, &shard_key, &verdict).ok() ||
            shard_key != want) {
          malformed = true;
          break;
        }
        shard_answers[j] = verdict;
      } else {
        std::string echo;
        if (!r.ReadString(&echo) || echo != want) {
          malformed = true;
          break;
        }
      }
    }
    if (malformed || r.remaining() != 0) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_[shard].errors;
      continue;
    }
    for (size_t j = 0; j < members.size(); ++j) {
      answers[members[j]] = std::move(shard_answers[j]);
    }
  }

  std::string reply;
  wire::PutU8(reply, kTierOpFetchMany);
  wire::PutU32(reply, static_cast<uint32_t>(keys.size()));
  for (size_t i = 0; i < keys.size(); ++i) {
    if (answers[i].has_value()) {
      wire::PutU8(reply, 1);
      EncodeVerdictEntry(keys[i], *answers[i], reply);
    } else {
      wire::PutU8(reply, 0);
      wire::PutString(reply, keys[i]);
    }
  }
  *response = FrameTierMessage(reply);
  return Status::OK();
}

Status ShardedTransport::HandlePublish(
    const std::vector<std::pair<std::string, StoredVerdict>>& entries,
    std::string* response) {
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    by_shard[ShardOf(entries[i].first)].push_back(i);
  }
  uint64_t accepted = 0;
  size_t involved = 0;
  size_t failed = 0;
  Status last_error = Status::OK();
  for (size_t shard = 0; shard < by_shard.size(); ++shard) {
    const std::vector<size_t>& members = by_shard[shard];
    if (members.empty()) continue;
    ++involved;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_[shard].keys_routed += members.size();
    }
    std::string sub_payload;
    wire::PutU8(sub_payload, kTierOpPublish);
    wire::PutU32(sub_payload, static_cast<uint32_t>(members.size()));
    for (size_t i : members) {
      EncodeVerdictEntry(entries[i].first, entries[i].second, sub_payload);
    }
    std::string sub_response;
    Status status =
        ShardRoundTrip(shard, FrameTierMessage(sub_payload), &sub_response);
    if (status.ok()) {
      std::string sub_reply;
      status = UnframeTierMessage(sub_response, &sub_reply);
      if (status.ok()) {
        wire::ByteReader r(sub_reply);
        uint8_t op = 0;
        uint64_t shard_accepted = 0;
        if (!r.ReadU8(&op) || op != kTierOpPublish ||
            !r.ReadU64(&shard_accepted) || r.remaining() != 0) {
          status = Status::InvalidArgument("malformed publish response");
        } else {
          accepted += shard_accepted;
        }
      }
    }
    if (!status.ok()) {
      ++failed;
      last_error = status;
    }
  }
  if (involved > 0 && failed == involved) {
    // Every involved shard refused: report the failure so RemoteTier
    // requeues the batch. Partial success is a success — the reachable
    // shards took their entries, and a dead shard's share republishes from
    // some engine's next flush eventually (a cache, not a ledger).
    return last_error;
  }
  std::string reply;
  wire::PutU8(reply, kTierOpPublish);
  wire::PutU64(reply, accepted);
  *response = FrameTierMessage(reply);
  return Status::OK();
}

VerdictTransportStats ShardedTransport::TransportStats() const {
  VerdictTransportStats out;
  for (const auto& shard : shards_) {
    const VerdictTransportStats s = shard->TransportStats();
    out.round_trips += s.round_trips;
    out.errors += s.errors;
    out.connects += s.connects;
    out.reconnects += s.reconnects;
  }
  return out;
}

std::vector<ShardStats> ShardedTransport::shard_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace net
}  // namespace cqchase
