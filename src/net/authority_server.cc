#include "net/authority_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>

#include <utility>

#include "base/string_util.h"

namespace cqchase {
namespace net {

namespace {

// "ip:port" of the connected peer, best effort ("?" when the kernel will
// not say — the connection still serves).
std::string PeerName(int fd) {
  struct sockaddr_storage addr;
  socklen_t len = sizeof(addr);
  if (getpeername(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
    return "?";
  }
  char buf[INET6_ADDRSTRLEN] = {0};
  uint16_t port = 0;
  if (addr.ss_family == AF_INET) {
    auto* in4 = reinterpret_cast<struct sockaddr_in*>(&addr);
    inet_ntop(AF_INET, &in4->sin_addr, buf, sizeof(buf));
    port = ntohs(in4->sin_port);
  } else if (addr.ss_family == AF_INET6) {
    auto* in6 = reinterpret_cast<struct sockaddr_in6*>(&addr);
    inet_ntop(AF_INET6, &in6->sin6_addr, buf, sizeof(buf));
    port = ntohs(in6->sin6_port);
  } else {
    return "?";
  }
  return StrCat(buf, ":", int{port});
}

// True when `framed` decodes as a protocol message whose opcode is hello —
// the only first message a client is allowed.
bool IsHelloFrame(const std::string& framed) {
  std::string payload;
  if (!UnframeTierMessage(framed, &payload).ok()) return false;
  return !payload.empty() &&
         static_cast<uint8_t>(payload[0]) == kTierOpHello;
}

}  // namespace

VerdictAuthorityServer::VerdictAuthorityServer(
    std::shared_ptr<VerdictAuthority> authority, AuthorityServerOptions options)
    : authority_(std::move(authority)), options_(std::move(options)) {}

VerdictAuthorityServer::~VerdictAuthorityServer() { Stop(); }

Status VerdictAuthorityServer::Start() {
  if (started_) {
    return Status::FailedPrecondition("server already started");
  }
  CQCHASE_ASSIGN_OR_RETURN(auto bound, ListenTcp(options_.host, options_.port));
  listener_ = std::move(bound.first);
  port_ = bound.second;
  started_ = true;
  stop_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void VerdictAuthorityServer::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  // Wake handlers parked between requests: SHUT_RD turns their next read
  // into a clean EOF while letting an in-flight response finish sending —
  // the graceful half of the drain.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) {
      if (conn->fd.ok()) shutdown(conn->fd.get(), SHUT_RD);
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Reset();
  // Join handlers WITHOUT holding conns_mu_: a handler takes that lock on
  // its way out (counter updates, fd release), so joining under it would
  // deadlock against any connection still mid-request. The accept thread is
  // already joined, so nothing mutates conns_ while we drain the snapshot.
  std::vector<Connection*> handlers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    handlers.reserve(conns_.size());
    for (auto& conn : conns_) handlers.push_back(conn.get());
  }
  for (Connection* conn : handlers) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  started_ = false;
}

std::string VerdictAuthorityServer::address() const {
  return StrCat(options_.host, ":", int{port_});
}

void VerdictAuthorityServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    if (!WaitReadable(listener_.get(), options_.poll_tick)) continue;
    if (stop_.load(std::memory_order_acquire)) break;
    for (;;) {
      const int raw = accept(listener_.get(), nullptr, nullptr);
      if (raw < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN: drained this readiness; anything else: next poll
      }
      auto conn = std::make_unique<Connection>();
      conn->fd = UniqueFd(raw);
      // Accepted fds do not inherit the listener's O_NONBLOCK on Linux, and
      // SendAll/RecvExact only enforce their deadlines through the
      // EAGAIN→poll path — a blocking fd would make io_timeout a no-op and
      // let a stalled peer pin this handler forever.
      if (!SetNonBlocking(raw).ok()) continue;  // fd closes with `conn`
      const int one = 1;
      // Best effort, mirroring DialTcp: one response frame per write should
      // not wait for Nagle.
      (void)setsockopt(raw, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      conn->stats.peer = PeerName(raw);
      conn->stats.open = true;
      Connection* raw_conn = conn.get();
      std::lock_guard<std::mutex> lock(conns_mu_);
      ReapFinishedLocked();
      ++totals_.connections_accepted;
      conn->thread = std::thread([this, raw_conn] {
        ServeConnection(raw_conn);
      });
      conns_.push_back(std::move(conn));
    }
  }
}

void VerdictAuthorityServer::ServeConnection(Connection* conn) {
  const int fd = conn->fd.get();
  bool handshaken = false;
  while (!stop_.load(std::memory_order_acquire)) {
    // Park in short ticks so Stop() is honored promptly; the io_timeout
    // clock only starts once a frame's bytes begin arriving.
    if (!WaitReadable(fd, options_.poll_tick)) continue;
    std::string framed;
    Status read = ReadFrame(fd, options_.max_frame_bytes, &framed,
                            DeadlineAfter(options_.io_timeout));
    if (!read.ok()) {
      // Clean hangup between requests is a normal goodbye; everything else
      // (torn frame, oversized frame, timeout mid-frame) is a confused or
      // dead peer.
      if (read.code() != StatusCode::kNotFound) {
        std::lock_guard<std::mutex> lock(conns_mu_);
        ++totals_.protocol_errors;
      }
      break;
    }
    if (!handshaken) {
      if (!IsHelloFrame(framed)) {
        // First message was not a hello: refuse before any verdict flows.
        std::lock_guard<std::mutex> lock(conns_mu_);
        ++totals_.handshake_failures;
        break;
      }
      handshaken = true;
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->stats.handshaken = true;
    }
    std::string response;
    Status handled = authority_->Handle(framed, &response);
    if (!handled.ok()) {
      // Undecodable request mid-session: disconnect rather than guess what
      // the peer meant. (A well-formed fetch of an unknown key is a
      // successful "not found", not this path.)
      std::lock_guard<std::mutex> lock(conns_mu_);
      ++totals_.protocol_errors;
      break;
    }
    Status sent = SendAll(fd, response, DeadlineAfter(options_.io_timeout));
    if (!sent.ok()) break;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      ++conn->stats.requests;
      conn->stats.bytes_in += framed.size();
      conn->stats.bytes_out += response.size();
    }
    std::lock_guard<std::mutex> lock(conns_mu_);
    ++totals_.requests_served;
    totals_.bytes_in += framed.size();
    totals_.bytes_out += response.size();
  }
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->stats.open = false;
  }
  {
    // Under conns_mu_: Stop()'s shutdown sweep reads this fd under the same
    // lock, and a close racing that sweep could hand the descriptor number
    // to an unrelated file.
    std::lock_guard<std::mutex> lock(conns_mu_);
    conn->fd.Reset();
  }
  conn->done.store(true, std::memory_order_release);
}

void VerdictAuthorityServer::ReapFinishedLocked() {
  auto it = conns_.begin();
  while (it != conns_.end()) {
    Connection* conn = it->get();
    if (!conn->done.load(std::memory_order_acquire)) {
      ++it;
      continue;
    }
    // `done` is the handler's last store, so the thread needs no further
    // locks — joining under conns_mu_ cannot deadlock here.
    if (conn->thread.joinable()) conn->thread.join();
    closed_rows_.push_back(conn->stats);
    it = conns_.erase(it);
  }
  while (closed_rows_.size() > options_.max_closed_connection_rows) {
    closed_rows_.pop_front();
  }
}

AuthorityServerStats VerdictAuthorityServer::stats() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  AuthorityServerStats out = totals_;
  for (const auto& conn : conns_) {
    std::lock_guard<std::mutex> conn_lock(conn->mu);
    if (conn->stats.open) ++out.connections_open;
  }
  return out;
}

std::vector<AuthorityConnectionStats> VerdictAuthorityServer::connections()
    const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  std::vector<AuthorityConnectionStats> out;
  out.reserve(closed_rows_.size() + conns_.size());
  out.insert(out.end(), closed_rows_.begin(), closed_rows_.end());
  for (const auto& conn : conns_) {
    std::lock_guard<std::mutex> conn_lock(conn->mu);
    out.push_back(conn->stats);
  }
  return out;
}

Result<StoreBackedAuthority> MakeStoreBackedAuthority(
    const std::string& store_path, VerdictAuthority::Options options) {
  CQCHASE_ASSIGN_OR_RETURN(std::unique_ptr<VerdictStore> store,
                           VerdictStore::Open(store_path));
  // The sink holds a raw pointer; StoreBackedAuthority's member order (and
  // its contract that servers stop first) keeps the store alive longer than
  // any Handle call that could fire it.
  VerdictStore* store_ptr = store.get();
  options.publish_sink = [store_ptr](const std::string& key,
                                     const StoredVerdict& verdict) {
    store_ptr->PutIfAbsent(key, verdict);
  };
  StoreBackedAuthority out;
  out.store = std::move(store);
  out.authority = std::make_shared<VerdictAuthority>(std::move(options));
  for (const auto& [key, verdict] : out.store->Entries()) {
    out.authority->Put(key, verdict);
  }
  return out;
}

}  // namespace net
}  // namespace cqchase
