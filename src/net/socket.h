// Thin POSIX socket helpers shared by the TCP transport (client side) and
// the authority server. Everything here is deadline-driven and EINTR-proof;
// nothing here knows the tier protocol beyond its framing shape (u32 length
// + u64 checksum + payload), which ReadFrame needs to reassemble a complete
// message from a byte stream without trusting the peer's length prefix.
//
// Error vocabulary (the consumers' degrade-to-miss logic depends on it):
//   kDeadlineExceeded — the deadline passed mid-operation.
//   kNotFound         — clean EOF before any byte of the current read (the
//                       peer hung up between messages; reconnectable).
//   kInvalidArgument  — a torn read (EOF mid-message) or a frame whose
//                       length prefix exceeds the caller's bound: a confused
//                       peer, not a transient fault.
//   kUnavailable-shaped failures map to kInternal with errno text.
#ifndef CQCHASE_NET_SOCKET_H_
#define CQCHASE_NET_SOCKET_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

#include "base/status.h"

namespace cqchase {
namespace net {

// RAII fd. Movable, not copyable; closes on destruction (EINTR-proof).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool ok() const { return fd_ >= 0; }
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

using SocketDeadline = std::chrono::steady_clock::time_point;

// Deadline from a relative timeout (never in the past).
SocketDeadline DeadlineAfter(std::chrono::milliseconds timeout);

// Splits "host:port"; refuses a missing/empty/non-numeric port. Host may be
// empty ("0.0.0.0" semantics are the caller's choice).
Status SplitHostPort(const std::string& address, std::string* host,
                     uint16_t* port);

// Connects a TCP socket to host:port within `timeout` (non-blocking connect
// + poll, so a black-holed peer costs the timeout, not the kernel's
// minutes-long default). The returned fd is non-blocking with TCP_NODELAY
// set — one protocol frame per write should not wait for Nagle.
Result<UniqueFd> DialTcp(const std::string& host, uint16_t port,
                         std::chrono::milliseconds timeout);

// Binds + listens on host:port (port 0 = ephemeral) with SO_REUSEADDR.
// Returns the listening fd (non-blocking) and the actually-bound port.
Result<std::pair<UniqueFd, uint16_t>> ListenTcp(const std::string& host,
                                                uint16_t port);

// Sets O_NONBLOCK on `fd`. Every deadline helper below assumes a
// non-blocking fd — on a blocking one the EAGAIN→poll path never runs and
// the deadlines are unenforced. Accepted fds do NOT inherit the listener's
// O_NONBLOCK on Linux, so accept loops must call this per connection.
Status SetNonBlocking(int fd);

// Polls `fd` for readability for up to `tick`. Returns true when readable;
// false on timeout (errors surface as readable and are caught by the
// subsequent read). Accept loops poll in short ticks so a stop flag is
// honored within one tick.
bool WaitReadable(int fd, std::chrono::milliseconds tick);

// Writes all of `bytes` before `deadline` (poll + send loop on the
// non-blocking fd). EPIPE/reset surface as kInternal.
Status SendAll(int fd, const std::string& bytes, SocketDeadline deadline);

// Reads exactly `n` bytes into `*out` (appended) before `deadline`.
// Clean EOF before the first byte → kNotFound; EOF mid-read → torn →
// kInvalidArgument.
Status RecvExact(int fd, size_t n, std::string* out, SocketDeadline deadline);

// Reads one complete protocol frame (u32 length + u64 checksum + payload)
// into `*out_framed` — the full framed bytes, checksum NOT verified here
// (UnframeTierMessage owns that). A length prefix beyond `max_frame_bytes`
// is rejected before any payload allocation.
Status ReadFrame(int fd, size_t max_frame_bytes, std::string* out_framed,
                 SocketDeadline deadline);

}  // namespace net
}  // namespace cqchase

#endif  // CQCHASE_NET_SOCKET_H_
