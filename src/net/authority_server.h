// VerdictAuthorityServer: the listener half of the networked verdict
// authority — accepts TCP clients and serves each one's framed tier-protocol
// requests against a shared VerdictAuthority (engine/remote_tier.h).
//
// Model: thread-per-connection. The protocol is strictly request/response
// and a verdict fleet's client count is engines, not browsers, so a blocking
// handler thread per client is the simple shape that is also fast enough;
// the authority map itself is the shared state and already thread-safe.
//
// Handshake enforcement: the first frame on every connection MUST be a
// hello. A client that leads with anything else (port scanner, confused
// peer, wrong protocol) is counted in handshake_failures and disconnected
// before any verdict flows. Every inbound frame is bounds-checked against
// kTierMaxFrameBytes before allocation, and any undecodable request drops
// the connection (counted in protocol_errors) — a confused peer is cut off,
// never answered with garbage.
//
// Shutdown: Stop() closes the listener, signals every handler, and joins
// them. A handler mid-request finishes serving that request first (graceful
// drain); handlers waiting for a next frame notice within one poll tick.
#ifndef CQCHASE_NET_AUTHORITY_SERVER_H_
#define CQCHASE_NET_AUTHORITY_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/status.h"
#include "engine/remote_tier.h"
#include "engine/store.h"
#include "net/socket.h"

namespace cqchase {
namespace net {

struct AuthorityServerOptions {
  // Listen address. Port 0 = ephemeral (read the real one from port()).
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  // Budget for one frame's worth of socket I/O once bytes start flowing
  // (a stalled half-sent frame is a dead client, not a patient one).
  std::chrono::milliseconds io_timeout{5000};
  // Poll tick for "waiting for the next request" and the accept loop: the
  // latency bound on noticing Stop().
  std::chrono::milliseconds poll_tick{100};
  // Inbound frame bound, matching the protocol-wide limit.
  size_t max_frame_bytes = kTierMaxFrameBytes;
  // How many closed-connection rows connections() keeps (oldest dropped
  // first). Aggregate counters in stats() are unaffected; this only bounds
  // the per-connection detail so a daemon with churn does not grow without
  // bound.
  size_t max_closed_connection_rows = 64;
};

// Aggregate server counters (per-connection detail via connections()).
struct AuthorityServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_open = 0;   // gauge
  uint64_t handshake_failures = 0; // first frame was not a valid hello
  uint64_t protocol_errors = 0;    // undecodable request mid-session
  uint64_t requests_served = 0;    // frames answered successfully
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
};

struct AuthorityConnectionStats {
  std::string peer;        // "ip:port" of the client
  uint64_t requests = 0;   // frames answered on this connection
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  bool handshaken = false; // the first frame was a valid hello
  bool open = false;       // still serving (gauge)
};

class VerdictAuthorityServer {
 public:
  // The authority outlives the server (Stop() joins every handler before
  // the destructor returns, so handlers never outlive either).
  explicit VerdictAuthorityServer(std::shared_ptr<VerdictAuthority> authority,
                                  AuthorityServerOptions options = {});
  ~VerdictAuthorityServer();

  VerdictAuthorityServer(const VerdictAuthorityServer&) = delete;
  VerdictAuthorityServer& operator=(const VerdictAuthorityServer&) = delete;

  // Binds, listens, starts the accept loop. Fails without side effects (no
  // thread) when the bind fails.
  Status Start();

  // Graceful drain: stops accepting, lets in-flight requests finish, joins
  // every handler. Idempotent.
  void Stop();

  // The bound port (the real one when options asked for 0). 0 before Start.
  uint16_t port() const { return port_; }
  std::string address() const;  // "host:port" of the bound listener

  AuthorityServerStats stats() const;
  // Recently closed connections (up to max_closed_connection_rows, oldest
  // dropped first) followed by the currently open ones, accept order within
  // each group. A daemon exposes counts, tests read the rows.
  std::vector<AuthorityConnectionStats> connections() const;

 private:
  struct Connection {
    UniqueFd fd;
    std::thread thread;
    std::atomic<bool> done{false};
    mutable std::mutex mu;  // guards stats below
    AuthorityConnectionStats stats;
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  // Joins finished handler threads and retires their Connection records
  // into closed_rows_ (accept-loop housekeeping, so a daemon with
  // connection churn accumulates neither joinable threads nor records).
  void ReapFinishedLocked();

  const std::shared_ptr<VerdictAuthority> authority_;
  const AuthorityServerOptions options_;

  UniqueFd listener_;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread accept_thread_;

  mutable std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;  // open / not yet reaped
  // Rows of reaped connections, bounded by max_closed_connection_rows.
  std::deque<AuthorityConnectionStats> closed_rows_;
  AuthorityServerStats totals_;  // closed-connection rollup + server counters
};

// A VerdictStore-backed authority: the serving map is seeded from the store
// at open, and every accepted publish is written through to it (the store's
// own write-behind log makes it durable on Flush/close). The daemon's
// persistence recipe in one call.
struct StoreBackedAuthority {
  // Declaration order is the safety contract: authority (and its
  // publish_sink pointing at the store) is destroyed before the store.
  // Callers must Stop() any server serving this authority first.
  std::unique_ptr<VerdictStore> store;
  std::shared_ptr<VerdictAuthority> authority;
};

Result<StoreBackedAuthority> MakeStoreBackedAuthority(
    const std::string& store_path,
    VerdictAuthority::Options options = VerdictAuthority::Options());

}  // namespace net
}  // namespace cqchase

#endif  // CQCHASE_NET_AUTHORITY_SERVER_H_
