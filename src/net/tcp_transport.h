// TcpTransport: the production VerdictTransport — the tier protocol over a
// real TCP connection to a VerdictAuthorityServer (net/authority_server.h)
// or any peer speaking the same frames.
//
// Connection discipline:
//
//   * Lazy connect: the socket is dialed on the first RoundTrip (and after
//     any loss), inside the caller's call — RemoteTier::Connect's hello is
//     simply the first round trip.
//   * Transport-level hello: every (re)connect runs its own hello exchange
//     before serving traffic, and pins the peer's (version, fingerprint)
//     identity at the first successful connect. A reconnect that reaches a
//     *different* authority (address reused by another service, fingerprint
//     drift after a peer upgrade) fails the round trip instead of silently
//     serving a map with a different key scheme — the one failure a cache
//     may never have. The tier above sees an error and degrades to a miss.
//   * Reconnect with capped exponential backoff + deterministic jitter:
//     after a failure the next dial waits backoff (doubling up to the cap,
//     jittered so a fleet of clients does not thundering-herd a restarted
//     authority). Round trips attempted during the wait fail fast without
//     touching the wire; RemoteTier turns each into a negative-cached miss.
//   * Deadlines: connect_timeout bounds the dial + hello; rtt_timeout
//     bounds each round trip (send + full response frame).
//
// One round trip at a time (an internal mutex serializes callers): the
// protocol is strictly request/response per connection, and the batched
// kTierOpFetchMany opcode is the intended cure for per-key latency, not
// connection-level pipelining.
#ifndef CQCHASE_NET_TCP_TRANSPORT_H_
#define CQCHASE_NET_TCP_TRANSPORT_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "base/rng.h"
#include "base/status.h"
#include "engine/remote_tier.h"
#include "net/socket.h"

namespace cqchase {
namespace net {

struct TcpTransportOptions {
  // Bounds one dial + transport-level hello (distinct from rtt_timeout: a
  // black-holed SYN and a slow response are different faults with different
  // sensible budgets).
  std::chrono::milliseconds connect_timeout{1000};
  // Bounds each RoundTrip: send + complete response frame.
  std::chrono::milliseconds rtt_timeout{2000};
  // Reconnect backoff: first wait, doubling per consecutive failure up to
  // the cap, reset by a successful connect. Jitter multiplies each wait by
  // [1.0, 1.5) drawn from a deterministic Rng(jitter_seed).
  std::chrono::milliseconds backoff_initial{100};
  std::chrono::milliseconds backoff_max{5000};
  uint64_t jitter_seed = 1;
  // Inbound frame bound, matching the protocol-wide limit.
  size_t max_frame_bytes = kTierMaxFrameBytes;
};

class TcpTransport final : public VerdictTransport {
 public:
  TcpTransport(std::string host, uint16_t port,
               TcpTransportOptions options = {});

  Status RoundTrip(const std::string& request, std::string* response) override;
  std::string_view Peer() const override { return peer_; }
  VerdictTransportStats TransportStats() const override;

  // The identity pinned at the first successful connect (0/0 before it).
  // Exposed for tests and diagnostics; RemoteTier learns the same values
  // from its own hello through this transport.
  uint32_t pinned_version() const;
  uint64_t pinned_fingerprint() const;

 private:
  // Dials + runs the transport-level hello if the link is down. Fails fast
  // (no wire traffic) while inside the backoff window. Caller holds mu_.
  Status EnsureConnectedLocked();
  // Drops the connection and schedules the next dial attempt. Caller holds
  // mu_.
  void DisconnectAndBackoffLocked();

  const std::string host_;
  const uint16_t port_;
  const TcpTransportOptions options_;
  const std::string peer_;

  mutable std::mutex mu_;
  UniqueFd fd_;
  Rng jitter_;
  std::chrono::milliseconds backoff_;
  std::chrono::steady_clock::time_point next_attempt_{};  // epoch = dial now
  bool identity_pinned_ = false;
  uint32_t pinned_version_ = 0;
  uint64_t pinned_fingerprint_ = 0;
  VerdictTransportStats stats_;
};

}  // namespace net
}  // namespace cqchase

#endif  // CQCHASE_NET_TCP_TRANSPORT_H_
