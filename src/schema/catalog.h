// Relation schemes and catalogs (Section 2 of the paper).
//
// A RelationSchema is an ordered sequence of named attributes; a Catalog is a
// database scheme — the set of relation schemes a query's input scheme and a
// database instance must conform to. Relations and attributes are addressed
// by dense indices for speed; names are kept for parsing and printing.
#ifndef CQCHASE_SCHEMA_CATALOG_H_
#define CQCHASE_SCHEMA_CATALOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.h"

namespace cqchase {

// Dense id of a relation within a Catalog.
using RelationId = uint32_t;

class RelationSchema {
 public:
  RelationSchema(std::string name, std::vector<std::string> attributes);

  const std::string& name() const { return name_; }
  size_t arity() const { return attributes_.size(); }
  const std::vector<std::string>& attributes() const { return attributes_; }
  const std::string& attribute(size_t i) const { return attributes_[i]; }

  // Index of the attribute with the given name, or nullopt.
  std::optional<uint32_t> AttributeIndex(std::string_view attr) const;

 private:
  std::string name_;
  std::vector<std::string> attributes_;
  std::unordered_map<std::string, uint32_t> attribute_index_;
};

class Catalog {
 public:
  Catalog() = default;

  // Adds a relation scheme. Fails with kInvalidArgument on duplicate relation
  // names, duplicate attribute names within one relation, or zero arity.
  Result<RelationId> AddRelation(std::string name,
                                 std::vector<std::string> attributes);

  size_t num_relations() const { return relations_.size(); }
  const RelationSchema& relation(RelationId id) const {
    return relations_[id];
  }

  std::optional<RelationId> FindRelation(std::string_view name) const;

  // Convenience: arity of relation `id`.
  size_t arity(RelationId id) const { return relations_[id].arity(); }

  // Renders the scheme, e.g. "EMP(emp, sal, dept); DEP(dept, loc)".
  std::string ToString() const;

 private:
  std::vector<RelationSchema> relations_;
  std::unordered_map<std::string, RelationId> relation_index_;
};

}  // namespace cqchase

#endif  // CQCHASE_SCHEMA_CATALOG_H_
