#include "schema/catalog.h"

#include "base/string_util.h"

namespace cqchase {

RelationSchema::RelationSchema(std::string name,
                               std::vector<std::string> attributes)
    : name_(std::move(name)), attributes_(std::move(attributes)) {
  for (uint32_t i = 0; i < attributes_.size(); ++i) {
    attribute_index_.emplace(attributes_[i], i);
  }
}

std::optional<uint32_t> RelationSchema::AttributeIndex(
    std::string_view attr) const {
  auto it = attribute_index_.find(std::string(attr));
  if (it == attribute_index_.end()) return std::nullopt;
  return it->second;
}

Result<RelationId> Catalog::AddRelation(std::string name,
                                        std::vector<std::string> attributes) {
  if (attributes.empty()) {
    return Status::InvalidArgument(
        StrCat("relation '", name, "' must have at least one attribute"));
  }
  if (relation_index_.count(name) > 0) {
    return Status::InvalidArgument(StrCat("duplicate relation '", name, "'"));
  }
  for (size_t i = 0; i < attributes.size(); ++i) {
    for (size_t j = i + 1; j < attributes.size(); ++j) {
      if (attributes[i] == attributes[j]) {
        return Status::InvalidArgument(StrCat("relation '", name,
                                              "' has duplicate attribute '",
                                              attributes[i], "'"));
      }
    }
  }
  RelationId id = static_cast<RelationId>(relations_.size());
  relation_index_.emplace(name, id);
  relations_.emplace_back(std::move(name), std::move(attributes));
  return id;
}

std::optional<RelationId> Catalog::FindRelation(std::string_view name) const {
  auto it = relation_index_.find(std::string(name));
  if (it == relation_index_.end()) return std::nullopt;
  return it->second;
}

std::string Catalog::ToString() const {
  return StrJoinMapped(relations_, "; ", [](const RelationSchema& r) {
    return StrCat(r.name(), "(", StrJoin(r.attributes(), ", "), ")");
  });
}

}  // namespace cqchase
