// A simple textbook cost model for conjunctive-query evaluation, used by the
// optimizer (src/opt/optimizer.h) to order conjuncts and to quantify the
// benefit of minimization — the paper's motivating application ("an
// optimization algorithm ... may still pay for itself even if it yields only
// a small improvement in the query").
//
// The model is deliberately classical: per-relation cardinalities and
// per-column distinct counts, independence across predicates, and a
// left-deep nested-loop join whose cost is the sum of intermediate result
// sizes. Absolute numbers are not the point; the *ordering* of plans is.
#ifndef CQCHASE_OPT_COST_H_
#define CQCHASE_OPT_COST_H_

#include <cstdint>
#include <vector>

#include "cq/query.h"
#include "data/instance.h"
#include "schema/catalog.h"

namespace cqchase {

// Statistics for one relation: row count and per-column distinct-value
// counts (the classic System-R V(R, A)).
struct RelationStats {
  uint64_t cardinality = 0;
  std::vector<uint64_t> distinct;  // one entry per column
};

class TableStats {
 public:
  explicit TableStats(const Catalog* catalog);

  // Collects exact statistics from a materialized instance.
  static TableStats FromInstance(const Instance& instance);

  // Uniform synthetic statistics: every relation has `cardinality` rows and
  // `distinct` distinct values per column. Handy for tests and benches that
  // have no materialized data.
  static TableStats Uniform(const Catalog& catalog, uint64_t cardinality,
                            uint64_t distinct);

  const Catalog& catalog() const { return *catalog_; }
  const RelationStats& relation(RelationId id) const { return stats_[id]; }
  RelationStats& mutable_relation(RelationId id) { return stats_[id]; }

 private:
  const Catalog* catalog_;
  std::vector<RelationStats> stats_;
};

// Estimated output cardinality of one conjunct given which of its variables
// are already bound by earlier conjuncts in a left-deep plan: the relation's
// cardinality divided by the distinct count of every bound-variable column
// and every constant column (independence assumption), floored at 1 unless
// the relation is empty.
double EstimateConjunctCardinality(const TableStats& stats, const Fact& fact,
                                   const std::vector<bool>& bound_positions);

// Cost of evaluating `query`'s conjuncts in their current order as a
// left-deep nested-loop join: the sum of estimated intermediate result
// sizes. An empty-marked query costs 0.
double EstimatePlanCost(const TableStats& stats, const ConjunctiveQuery& query);

// Greedy plan ordering: repeatedly picks the unplaced conjunct with the
// smallest estimated cardinality given the variables bound so far (ties by
// conjunct order, so the result is deterministic). Returns the permutation
// of conjunct indices; does not modify the query.
std::vector<size_t> GreedyJoinOrder(const TableStats& stats,
                                    const ConjunctiveQuery& query);

}  // namespace cqchase

#endif  // CQCHASE_OPT_COST_H_
