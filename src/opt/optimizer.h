// Dependency-aware conjunctive-query optimizer — the application that
// motivates the paper's containment machinery. Three rewrite passes, each
// individually toggleable (the benches ablate them):
//
//  1. FD unification ("tableau simplification"): replace Q by its finite
//     FD-only chase chase_Σ[F](Q). This merges variables the FDs force
//     equal and can discover contradictions (empty query); the result is
//     Σ-equivalent to Q.
//  2. Σ-minimization: greedily drop conjuncts c with Σ ⊨ Q−c ⊆ Q
//     (core/minimize.h). Under the intro's IND this removes the DEP join
//     from Q1, turning it into Q2.
//  3. Join reordering: permute conjuncts into the greedy minimum-estimated-
//     cardinality order for a left-deep plan (opt/cost.h). Purely physical —
//     the query is unchanged as a mapping.
//
// Passes 1 and 2 shrink the query (fewer joins); pass 3 shrinks intermediate
// results. OptimizeReport records what each pass did, so callers can show
// their work (see examples/emp_dep_optimizer.cc).
#ifndef CQCHASE_OPT_OPTIMIZER_H_
#define CQCHASE_OPT_OPTIMIZER_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/containment.h"
#include "cq/query.h"
#include "deps/dependency_set.h"
#include "opt/cost.h"

namespace cqchase {

struct OptimizerOptions {
  bool fd_unification = true;
  bool minimize = true;
  bool reorder_joins = true;
  // Statistics for the reordering pass; when unset, uniform stats are used
  // (every relation 1000 rows, 10 distinct values per column).
  std::optional<TableStats> stats;
  // Passed through to the containment checks of the minimization pass.
  ContainmentOptions containment;
};

struct OptimizeReport {
  explicit OptimizeReport(ConjunctiveQuery q) : query(std::move(q)) {}

  ConjunctiveQuery query;  // the optimized query (Σ-equivalent to the input)

  // Pass 1: how many distinct variables FD unification eliminated, and
  // whether it proved the query empty.
  size_t variables_unified = 0;
  bool proved_empty = false;

  // Pass 2: conjuncts dropped and containment checks spent.
  size_t conjuncts_removed = 0;
  size_t containment_checks = 0;

  // Pass 3: estimated plan cost before/after reordering (same stats).
  double cost_before_reorder = 0.0;
  double cost_after_reorder = 0.0;

  // Human-readable pass-by-pass trace.
  std::vector<std::string> trace;
};

// Optimizes `q` under Σ. The result is infinitely equivalent to `q` on every
// database satisfying `deps` (passes 1-2 are containment-certified; pass 3
// is order-only). `symbols` is mutated by internal chases.
//
// Requires `deps` to be in one of the decidable classes of containment.h
// (empty / FD-only / IND-only / key-based) unless
// options.containment.allow_semidecision is set.
Result<OptimizeReport> OptimizeQuery(const ConjunctiveQuery& q,
                                     const DependencySet& deps,
                                     SymbolTable& symbols,
                                     const OptimizerOptions& options = {});

}  // namespace cqchase

#endif  // CQCHASE_OPT_OPTIMIZER_H_
