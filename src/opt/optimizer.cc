#include "opt/optimizer.h"

#include <set>
#include <utility>

#include "base/string_util.h"
#include "chase/chase.h"
#include "core/minimize.h"

namespace cqchase {

namespace {

size_t DistinctVariableCount(const ConjunctiveQuery& q) {
  return q.Variables().size();
}

ConjunctiveQuery Reordered(const ConjunctiveQuery& q,
                           const std::vector<size_t>& order) {
  ConjunctiveQuery out(&q.catalog(), &q.symbols());
  for (size_t i : order) out.AddConjunct(q.conjuncts()[i]);
  out.SetSummary(q.summary());
  return out;
}

}  // namespace

Result<OptimizeReport> OptimizeQuery(const ConjunctiveQuery& q,
                                     const DependencySet& deps,
                                     SymbolTable& symbols,
                                     const OptimizerOptions& options) {
  OptimizeReport report(q);

  // Pass 1: FD unification — replace Q by its finite FD-only chase.
  if (options.fd_unification && !deps.fds().empty()) {
    DependencySet fds = deps.FdsOnly();
    Chase chase(&q.catalog(), &symbols, &fds, ChaseVariant::kRequired,
                options.containment.limits);
    Status init = chase.Init(report.query);
    if (!init.ok()) return init;
    Result<ChaseOutcome> outcome = chase.Run();
    if (!outcome.ok()) return outcome.status();
    if (*outcome == ChaseOutcome::kEmptyQuery) {
      ConjunctiveQuery empty(&q.catalog(), &symbols);
      empty.SetSummary(report.query.summary());
      empty.MarkEmptyQuery();
      report.proved_empty = true;
      report.query = std::move(empty);
      report.trace.push_back(
          "fd-unification: constant clash; query is empty under the FDs");
      return report;
    }
    size_t before = DistinctVariableCount(report.query);
    report.query = chase.AsQuery();
    size_t after = DistinctVariableCount(report.query);
    report.variables_unified = before - after;
    report.trace.push_back(StrCat("fd-unification: ", report.variables_unified,
                                  " variable(s) merged, ", before, " -> ",
                                  after));
  }

  // Pass 2: Σ-minimization via containment.
  if (options.minimize && report.query.size() > 1) {
    Result<MinimizeReport> min = MinimizeQuery(report.query, deps, symbols,
                                               options.containment);
    if (!min.ok()) return min.status();
    report.conjuncts_removed = min->removed_conjuncts;
    report.containment_checks = min->containment_checks;
    size_t before = report.query.size();
    report.query = std::move(min->query);
    report.trace.push_back(StrCat("minimize: ", report.conjuncts_removed,
                                  " conjunct(s) removed, ", before, " -> ",
                                  report.query.size(), " (",
                                  report.containment_checks,
                                  " containment check(s))"));
  }

  // Pass 3: greedy join reordering (physical only).
  if (options.reorder_joins && report.query.size() > 1) {
    TableStats stats = options.stats.has_value()
                           ? *options.stats
                           : TableStats::Uniform(q.catalog(), 1000, 10);
    report.cost_before_reorder = EstimatePlanCost(stats, report.query);
    std::vector<size_t> order = GreedyJoinOrder(stats, report.query);
    ConjunctiveQuery reordered = Reordered(report.query, order);
    report.cost_after_reorder = EstimatePlanCost(stats, reordered);
    // Keep the cheaper of the two (greedy is a heuristic; never regress).
    if (report.cost_after_reorder <= report.cost_before_reorder) {
      report.query = std::move(reordered);
    } else {
      report.cost_after_reorder = report.cost_before_reorder;
    }
    report.trace.push_back(StrCat("reorder: estimated cost ",
                                  report.cost_before_reorder, " -> ",
                                  report.cost_after_reorder));
  }

  return report;
}

}  // namespace cqchase
