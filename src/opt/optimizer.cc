#include "opt/optimizer.h"

#include <utility>

#include "base/string_util.h"
#include "engine/engine.h"

namespace cqchase {

namespace {

ConjunctiveQuery Reordered(const ConjunctiveQuery& q,
                           const std::vector<size_t>& order) {
  ConjunctiveQuery out(&q.catalog(), &q.symbols());
  for (size_t i : order) out.AddConjunct(q.conjuncts()[i]);
  out.SetSummary(q.summary());
  return out;
}

}  // namespace

Result<OptimizeReport> OptimizeQuery(const ConjunctiveQuery& q,
                                     const DependencySet& deps,
                                     SymbolTable& symbols,
                                     const OptimizerOptions& options) {
  OptimizeReport report(q);

  // One engine for the whole optimization: pass 2's near-identical
  // containment checks share its verdict and chase-prefix caches.
  EngineConfig config;
  config.containment = options.containment;
  ContainmentEngine engine(&q.catalog(), &symbols, config);

  // Pass 1: FD unification — replace Q by its finite FD-only chase.
  if (options.fd_unification && !deps.fds().empty()) {
    CQCHASE_ASSIGN_OR_RETURN(ContainmentEngine::FdUnifyResult unified,
                             engine.FdUnify(report.query, deps));
    if (unified.proved_empty) {
      report.proved_empty = true;
      report.query = std::move(unified.query);
      report.trace.push_back(
          "fd-unification: constant clash; query is empty under the FDs");
      return report;
    }
    size_t before = report.query.Variables().size();
    report.query = std::move(unified.query);
    report.variables_unified = unified.variables_unified;
    report.trace.push_back(StrCat("fd-unification: ", report.variables_unified,
                                  " variable(s) merged, ", before, " -> ",
                                  report.query.Variables().size()));
  }

  // Pass 2: Σ-minimization via the engine's cached containment checks.
  if (options.minimize && report.query.size() > 1) {
    Result<MinimizeReport> min = engine.Minimize(report.query, deps);
    if (!min.ok()) return min.status();
    report.conjuncts_removed = min->removed_conjuncts;
    report.containment_checks = min->containment_checks;
    size_t before = report.query.size();
    report.query = std::move(min->query);
    report.trace.push_back(StrCat("minimize: ", report.conjuncts_removed,
                                  " conjunct(s) removed, ", before, " -> ",
                                  report.query.size(), " (",
                                  report.containment_checks,
                                  " containment check(s))"));
  }

  // Pass 3: greedy join reordering (physical only).
  if (options.reorder_joins && report.query.size() > 1) {
    TableStats stats = options.stats.has_value()
                           ? *options.stats
                           : TableStats::Uniform(q.catalog(), 1000, 10);
    report.cost_before_reorder = EstimatePlanCost(stats, report.query);
    std::vector<size_t> order = GreedyJoinOrder(stats, report.query);
    ConjunctiveQuery reordered = Reordered(report.query, order);
    report.cost_after_reorder = EstimatePlanCost(stats, reordered);
    // Keep the cheaper of the two (greedy is a heuristic; never regress).
    if (report.cost_after_reorder <= report.cost_before_reorder) {
      report.query = std::move(reordered);
    } else {
      report.cost_after_reorder = report.cost_before_reorder;
    }
    report.trace.push_back(StrCat("reorder: estimated cost ",
                                  report.cost_before_reorder, " -> ",
                                  report.cost_after_reorder));
  }

  return report;
}

}  // namespace cqchase
