#include "opt/cost.h"

#include <algorithm>
#include <limits>
#include <set>
#include <unordered_set>

namespace cqchase {

TableStats::TableStats(const Catalog* catalog) : catalog_(catalog) {
  stats_.resize(catalog->num_relations());
  for (RelationId r = 0; r < catalog->num_relations(); ++r) {
    stats_[r].distinct.assign(catalog->arity(r), 0);
  }
}

TableStats TableStats::FromInstance(const Instance& instance) {
  TableStats stats(&instance.catalog());
  const Catalog& catalog = instance.catalog();
  for (RelationId r = 0; r < catalog.num_relations(); ++r) {
    const auto& tuples = instance.tuples(r);
    RelationStats& rs = stats.stats_[r];
    rs.cardinality = tuples.size();
    for (uint32_t col = 0; col < catalog.arity(r); ++col) {
      std::unordered_set<Term> values;
      for (const std::vector<Term>& t : tuples) values.insert(t[col]);
      rs.distinct[col] = values.size();
    }
  }
  return stats;
}

TableStats TableStats::Uniform(const Catalog& catalog, uint64_t cardinality,
                               uint64_t distinct) {
  TableStats stats(&catalog);
  for (RelationId r = 0; r < catalog.num_relations(); ++r) {
    stats.stats_[r].cardinality = cardinality;
    stats.stats_[r].distinct.assign(catalog.arity(r), distinct);
  }
  return stats;
}

double EstimateConjunctCardinality(const TableStats& stats, const Fact& fact,
                                   const std::vector<bool>& bound_positions) {
  const RelationStats& rs = stats.relation(fact.relation);
  if (rs.cardinality == 0) return 0.0;
  double estimate = static_cast<double>(rs.cardinality);
  // Repeated variables within one conjunct act as one selection per extra
  // occurrence; track first occurrences.
  std::set<Term> seen;
  for (size_t i = 0; i < fact.terms.size(); ++i) {
    Term t = fact.terms[i];
    bool selective = false;
    if (t.is_constant()) {
      selective = true;
    } else if (i < bound_positions.size() && bound_positions[i]) {
      selective = true;
    } else if (!seen.insert(t).second) {
      selective = true;  // repeated variable: equality selection
    }
    if (selective) {
      uint64_t d = rs.distinct[i] == 0 ? 1 : rs.distinct[i];
      estimate /= static_cast<double>(d);
    }
  }
  return std::max(estimate, 1.0);
}

namespace {

// Positions of `fact` holding a variable already in `bound_vars`.
std::vector<bool> BoundPositions(const Fact& fact,
                                 const std::set<Term>& bound_vars) {
  std::vector<bool> bound(fact.terms.size(), false);
  for (size_t i = 0; i < fact.terms.size(); ++i) {
    if (fact.terms[i].is_variable() && bound_vars.count(fact.terms[i]) > 0) {
      bound[i] = true;
    }
  }
  return bound;
}

}  // namespace

double EstimatePlanCost(const TableStats& stats,
                        const ConjunctiveQuery& query) {
  if (query.is_empty_query()) return 0.0;
  double cost = 0.0;
  double intermediate = 1.0;
  std::set<Term> bound_vars;
  for (const Fact& fact : query.conjuncts()) {
    double card =
        EstimateConjunctCardinality(stats, fact, BoundPositions(fact, bound_vars));
    intermediate *= card;
    cost += intermediate;
    if (cost > std::numeric_limits<double>::max() / 2) {
      return std::numeric_limits<double>::max();
    }
    for (Term t : fact.terms) {
      if (t.is_variable()) bound_vars.insert(t);
    }
  }
  return cost;
}

std::vector<size_t> GreedyJoinOrder(const TableStats& stats,
                                    const ConjunctiveQuery& query) {
  const std::vector<Fact>& conjuncts = query.conjuncts();
  std::vector<size_t> order;
  order.reserve(conjuncts.size());
  std::vector<bool> placed(conjuncts.size(), false);
  std::set<Term> bound_vars;
  for (size_t step = 0; step < conjuncts.size(); ++step) {
    size_t best = conjuncts.size();
    double best_card = std::numeric_limits<double>::max();
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (placed[i]) continue;
      double card = EstimateConjunctCardinality(
          stats, conjuncts[i], BoundPositions(conjuncts[i], bound_vars));
      if (card < best_card) {
        best_card = card;
        best = i;
      }
    }
    placed[best] = true;
    order.push_back(best);
    for (Term t : conjuncts[best].terms) {
      if (t.is_variable()) bound_vars.insert(t);
    }
  }
  return order;
}

}  // namespace cqchase
