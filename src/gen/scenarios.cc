#include "gen/scenarios.h"

#include <cassert>

#include "cq/cq_parser.h"
#include "deps/deps_parser.h"

namespace cqchase {

namespace {

// Builders below assemble scenarios from the text syntaxes; the inputs are
// trusted literals, so failures are programming errors.
template <typename T>
T Unwrap(Result<T> result) {
  assert(result.ok() && result.status().message().c_str());
  return std::move(result).value();
}

void AddQuery(Scenario& s, std::string_view text) {
  s.queries.push_back(Unwrap(ParseQuery(*s.catalog, *s.symbols, text)));
}

}  // namespace

Scenario EmpDepScenario() {
  Scenario s;
  s.catalog = std::make_unique<Catalog>();
  s.symbols = std::make_unique<SymbolTable>();
  Unwrap(s.catalog->AddRelation("EMP", {"eno", "sal", "dept"}));
  Unwrap(s.catalog->AddRelation("DEP", {"dept", "loc"}));
  s.deps = Unwrap(ParseDependencies(*s.catalog, "EMP[dept] <= DEP[dept]"));
  AddQuery(s, "ans(e) :- EMP(e, sq, d), DEP(d, l)");
  AddQuery(s, "ans(e) :- EMP(e, sq, d)");
  return s;
}

Scenario Fig1Scenario() {
  Scenario s;
  s.catalog = std::make_unique<Catalog>();
  s.symbols = std::make_unique<SymbolTable>();
  Unwrap(s.catalog->AddRelation("R", {"r1", "r2", "r3"}));
  Unwrap(s.catalog->AddRelation("S", {"s1", "s2", "s3"}));
  Unwrap(s.catalog->AddRelation("T", {"t1", "t2"}));
  s.deps = Unwrap(ParseDependencies(
      *s.catalog, "R[1] <= T[1]; R[1,3] <= S[1,2]; S[1,3] <= R[1,2]"));
  AddQuery(s, "ans(c) :- R(a, b, c)");
  return s;
}

Scenario Section4Scenario() {
  Scenario s;
  s.catalog = std::make_unique<Catalog>();
  s.symbols = std::make_unique<SymbolTable>();
  Unwrap(s.catalog->AddRelation("R", {"a1", "a2"}));
  s.deps = Unwrap(ParseDependencies(*s.catalog, "R: 2 -> 1; R[2] <= R[1]"));
  AddQuery(s, "ans(x) :- R(x, y)");
  AddQuery(s, "ans(x) :- R(x, y), R(yp, x)");
  return s;
}

Scenario KeyBasedEmpDepScenario() {
  Scenario s;
  s.catalog = std::make_unique<Catalog>();
  s.symbols = std::make_unique<SymbolTable>();
  Unwrap(s.catalog->AddRelation("EMP", {"eno", "sal", "dept"}));
  Unwrap(s.catalog->AddRelation("DEP", {"dept", "loc"}));
  s.deps = Unwrap(ParseDependencies(*s.catalog,
                                    "EMP: eno -> sal\n"
                                    "EMP: eno -> dept\n"
                                    "DEP: dept -> loc\n"
                                    "EMP[dept] <= DEP[dept]"));
  AddQuery(s, "ans(e) :- EMP(e, sq, d), DEP(d, l)");
  AddQuery(s, "ans(e) :- EMP(e, sq, d)");
  return s;
}

}  // namespace cqchase
