#include "gen/generators.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "base/string_util.h"
#include "chase/chase.h"

namespace cqchase {

Catalog RandomCatalog(Rng& rng, const RandomCatalogParams& params) {
  Catalog catalog;
  for (size_t r = 0; r < params.num_relations; ++r) {
    size_t arity = static_cast<size_t>(
        rng.Uniform(static_cast<int64_t>(params.min_arity),
                    static_cast<int64_t>(params.max_arity)));
    std::vector<std::string> attrs;
    for (size_t a = 0; a < arity; ++a) attrs.push_back(StrCat("a", a));
    Result<RelationId> added =
        catalog.AddRelation(StrCat("R", r), std::move(attrs));
    assert(added.ok());
    (void)added;
  }
  return catalog;
}

ConjunctiveQuery RandomQuery(Rng& rng, const Catalog& catalog,
                             SymbolTable& symbols,
                             const RandomQueryParams& params) {
  std::vector<Term> dvs;
  for (size_t i = 0; i < params.num_dist_vars; ++i) {
    dvs.push_back(
        symbols.InternDistVar(StrCat(params.name_prefix, "_x", i)));
  }
  std::vector<Term> pool = dvs;
  for (size_t i = 0; i < params.num_vars; ++i) {
    pool.push_back(
        symbols.InternNondistVar(StrCat(params.name_prefix, "_v", i)));
  }
  std::vector<Term> constants;
  for (size_t i = 0; i < params.constant_pool; ++i) {
    constants.push_back(symbols.InternConstant(StrCat("k", i)));
  }

  ConjunctiveQuery query(&catalog, &symbols);
  std::vector<Fact> facts;
  std::unordered_set<Fact> seen;
  while (facts.size() < params.num_conjuncts) {
    Fact f;
    f.relation = static_cast<RelationId>(rng.Index(catalog.num_relations()));
    f.terms.resize(catalog.arity(f.relation));
    for (Term& t : f.terms) {
      if (!constants.empty() && rng.Bernoulli(params.constant_prob)) {
        t = rng.Pick(constants);
      } else {
        t = rng.Pick(pool);
      }
    }
    if (seen.insert(f).second) facts.push_back(std::move(f));
  }
  // Safety: force every DV to occur somewhere in the body. A patch must
  // never displace another DV's only occurrence (patch only non-DV slots)
  // and never duplicate an existing conjunct.
  auto occurs = [&facts](Term dv) {
    for (const Fact& f : facts) {
      if (std::find(f.terms.begin(), f.terms.end(), dv) != f.terms.end()) {
        return true;
      }
    }
    return false;
  };
  auto duplicates = [&facts](const Fact& candidate) {
    return std::find(facts.begin(), facts.end(), candidate) != facts.end();
  };
  for (Term dv : dvs) {
    if (occurs(dv)) continue;
    bool placed = false;
    // Try each slot once, starting at a random fact/position so placement
    // stays random but termination is certain.
    const size_t f0 = rng.Index(facts.size());
    for (size_t fi = 0; fi < facts.size() && !placed; ++fi) {
      Fact& f = facts[(f0 + fi) % facts.size()];
      const size_t p0 = rng.Index(f.terms.size());
      for (size_t pi = 0; pi < f.terms.size() && !placed; ++pi) {
        const size_t pos = (p0 + pi) % f.terms.size();
        if (f.terms[pos].is_dist_var()) continue;
        Fact patched = f;
        patched.terms[pos] = dv;
        if (duplicates(patched)) continue;
        f = std::move(patched);
        placed = true;
      }
    }
    if (!placed) {
      // Every slot holds a DV or would duplicate: add one extra conjunct
      // carrying this DV (the query grows by one conjunct, which callers of
      // a *random* generator tolerate; safety is non-negotiable).
      for (int attempt = 0; attempt < 64 && !placed; ++attempt) {
        Fact f;
        f.relation =
            static_cast<RelationId>(rng.Index(catalog.num_relations()));
        f.terms.resize(catalog.arity(f.relation));
        for (Term& t : f.terms) t = rng.Pick(pool);
        f.terms[rng.Index(f.terms.size())] = dv;
        if (duplicates(f)) continue;
        facts.push_back(std::move(f));
        placed = true;
      }
    }
    assert(placed);
  }
  for (Fact& f : facts) query.AddConjunct(std::move(f));
  query.SetSummary(dvs);
  return query;
}

DependencySet RandomIndOnlyDeps(Rng& rng, const Catalog& catalog,
                                const RandomIndParams& params) {
  DependencySet deps;
  // Relations wide enough to host a `width`-column side.
  std::vector<RelationId> eligible;
  for (RelationId r = 0; r < catalog.num_relations(); ++r) {
    if (catalog.arity(r) >= params.width) eligible.push_back(r);
  }
  if (eligible.empty()) return deps;
  size_t attempts = 0;
  size_t added = 0;
  while (added < params.count && attempts++ < params.count * 20) {
    InclusionDependency ind;
    ind.lhs_relation = rng.Pick(eligible);
    ind.rhs_relation = rng.Pick(eligible);
    auto pick_cols = [&](RelationId rel) {
      std::vector<uint32_t> all(catalog.arity(rel));
      for (uint32_t i = 0; i < all.size(); ++i) all[i] = i;
      std::shuffle(all.begin(), all.end(), rng.engine());
      all.resize(params.width);
      return all;
    };
    ind.lhs_columns = pick_cols(ind.lhs_relation);
    ind.rhs_columns = pick_cols(ind.rhs_relation);
    // Skip trivial self-INDs R[X] ⊆ R[X].
    if (ind.lhs_relation == ind.rhs_relation &&
        ind.lhs_columns == ind.rhs_columns) {
      continue;
    }
    size_t before = deps.inds().size();
    Status s = deps.AddInd(catalog, std::move(ind));
    assert(s.ok());
    (void)s;
    if (deps.inds().size() > before) ++added;
  }
  return deps;
}

DependencySet RandomKeyBasedDeps(Rng& rng, const Catalog& catalog,
                                 const RandomKeyBasedParams& params) {
  DependencySet deps;
  std::vector<uint32_t> key(params.key_size);
  for (uint32_t i = 0; i < params.key_size; ++i) key[i] = i;

  std::vector<RelationId> eligible;
  for (RelationId r = 0; r < catalog.num_relations(); ++r) {
    if (catalog.arity(r) > params.key_size) eligible.push_back(r);
  }
  for (RelationId r : eligible) {
    for (uint32_t c = static_cast<uint32_t>(params.key_size);
         c < catalog.arity(r); ++c) {
      FunctionalDependency fd;
      fd.relation = r;
      fd.lhs = key;
      fd.rhs = c;
      Status s = deps.AddFd(catalog, std::move(fd));
      assert(s.ok());
      (void)s;
    }
  }
  if (eligible.empty()) return deps;
  size_t attempts = 0;
  size_t added = 0;
  while (added < params.num_inds && attempts++ < params.num_inds * 20) {
    RelationId lhs = rng.Pick(eligible);
    RelationId rhs = rng.Pick(eligible);
    // Width: at most the lhs non-key width and the rhs key size.
    size_t max_width = std::min<size_t>(catalog.arity(lhs) - params.key_size,
                                        params.key_size);
    if (max_width == 0) continue;
    size_t width = static_cast<size_t>(
        rng.Uniform(1, static_cast<int64_t>(max_width)));
    InclusionDependency ind;
    ind.lhs_relation = lhs;
    ind.rhs_relation = rhs;
    // lhs columns: distinct non-key columns of lhs.
    std::vector<uint32_t> nonkey;
    for (uint32_t c = static_cast<uint32_t>(params.key_size);
         c < catalog.arity(lhs); ++c) {
      nonkey.push_back(c);
    }
    std::shuffle(nonkey.begin(), nonkey.end(), rng.engine());
    nonkey.resize(width);
    ind.lhs_columns = std::move(nonkey);
    // rhs columns: a prefix-permutation of rhs's key.
    std::vector<uint32_t> rhs_key = key;
    std::shuffle(rhs_key.begin(), rhs_key.end(), rng.engine());
    rhs_key.resize(width);
    ind.rhs_columns = std::move(rhs_key);
    size_t before = deps.inds().size();
    Status s = deps.AddInd(catalog, std::move(ind));
    assert(s.ok());
    (void)s;
    if (deps.inds().size() > before) ++added;
  }
  return deps;
}

Instance RandomInstance(Rng& rng, const Catalog& catalog, SymbolTable& symbols,
                        const RandomInstanceParams& params) {
  std::vector<Term> domain;
  for (size_t i = 0; i < params.domain_size; ++i) {
    domain.push_back(
        symbols.InternConstant(StrCat(params.constant_prefix, i)));
  }
  Instance instance(&catalog);
  for (RelationId r = 0; r < catalog.num_relations(); ++r) {
    for (size_t k = 0; k < params.tuples_per_relation; ++k) {
      std::vector<Term> row(catalog.arity(r));
      for (Term& t : row) t = rng.Pick(domain);
      Status s = instance.AddTuple(r, std::move(row));
      assert(s.ok());
      (void)s;
    }
  }
  return instance;
}

Result<ConjunctiveQuery> PlantedSuperQuery(Rng& rng,
                                           const ConjunctiveQuery& q,
                                           const DependencySet& deps,
                                           SymbolTable& symbols,
                                           size_t extra_conjuncts,
                                           uint32_t chase_depth) {
  ChaseLimits limits;
  limits.max_level = chase_depth;
  Chase chase(&q.catalog(), &symbols, &deps, ChaseVariant::kRequired, limits);
  CQCHASE_RETURN_IF_ERROR(chase.Init(q));
  CQCHASE_ASSIGN_OR_RETURN(ChaseOutcome outcome,
                           chase.ExpandToLevel(chase_depth));
  if (outcome == ChaseOutcome::kEmptyQuery) {
    return Status::FailedPrecondition(
        "cannot plant a super-query on a Σ-unsatisfiable query");
  }

  // Start from the facts that keep the summary DVs covered (one fact of Q
  // per summary DV), then add random chase facts.
  std::vector<Fact> chase_facts = chase.AliveFacts();
  std::vector<Fact> chosen;
  std::unordered_set<Fact> chosen_set;
  auto choose = [&](const Fact& f) {
    if (chosen_set.insert(f).second) chosen.push_back(f);
  };
  for (Term t : chase.summary()) {
    if (!t.is_variable()) continue;
    for (const Fact& f : chase_facts) {
      if (std::find(f.terms.begin(), f.terms.end(), t) != f.terms.end()) {
        choose(f);
        break;
      }
    }
  }
  for (size_t i = 0; i < extra_conjuncts && !chase_facts.empty(); ++i) {
    choose(chase_facts[rng.Index(chase_facts.size())]);
  }

  // Rename: constants and summary DVs stay; everything else becomes a fresh
  // NDV. The inverse renaming is a homomorphism Q' -> chase(Q).
  std::unordered_set<Term> keep(chase.summary().begin(),
                                chase.summary().end());
  std::unordered_map<Term, Term> rename;
  auto image = [&](Term t) -> Term {
    if (t.is_constant() || keep.count(t) > 0) return t;
    auto it = rename.find(t);
    if (it != rename.end()) return it->second;
    Term fresh = symbols.MakeFreshNondistVar("p");
    rename.emplace(t, fresh);
    return fresh;
  };

  ConjunctiveQuery q_prime(&q.catalog(), &symbols);
  std::unordered_set<Fact> emitted;
  for (const Fact& f : chosen) {
    Fact g;
    g.relation = f.relation;
    g.terms.reserve(f.terms.size());
    for (Term t : f.terms) g.terms.push_back(image(t));
    if (emitted.insert(g).second) q_prime.AddConjunct(std::move(g));
  }
  q_prime.SetSummary(chase.summary());
  CQCHASE_RETURN_IF_ERROR(q_prime.Validate());
  return q_prime;
}

}  // namespace cqchase
