// Canonical scenarios from the paper, packaged as self-owning bundles
// (catalog + symbol table + dependencies + queries) so examples, tests and
// benchmarks reproduce exactly the objects the paper discusses.
#ifndef CQCHASE_GEN_SCENARIOS_H_
#define CQCHASE_GEN_SCENARIOS_H_

#include <memory>
#include <vector>

#include "cq/query.h"
#include "deps/dependency_set.h"
#include "schema/catalog.h"
#include "symbols/symbol_table.h"

namespace cqchase {

// A self-contained problem instance. The unique_ptrs keep the catalog and
// symbol-table addresses stable, so the queries' internal pointers survive
// moves of the Scenario itself.
struct Scenario {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<SymbolTable> symbols;
  DependencySet deps;
  std::vector<ConjunctiveQuery> queries;
};

// Introduction example: EMP(eno, sal, dept), DEP(dept, loc);
//   Σ = { EMP[dept] ⊆ DEP[dept] };
//   queries[0] = Q1 = {(e): ∃s,d,l EMP(e,s,d) ∧ DEP(d,l)};
//   queries[1] = Q2 = {(e): ∃s,d   EMP(e,s,d)}.
// Q1 ≡ Q2 under Σ; Q1 ⊆ Q2 but not conversely without Σ.
Scenario EmpDepScenario();

// Figure 1 example: R(3), S(3), T(2);
//   Σ = { R[1] ⊆ T[1],  R[1,3] ⊆ S[1,2],  S[1,3] ⊆ R[1,2] };
//   queries[0] = Q = {(c): ∃a,b R(a,b,c)}.
// Both the O-chase and the R-chase of Q are infinite.
Scenario Fig1Scenario();

// Section 4 example: R(2);
//   Σ = { R: 2 → 1,  R[2] ⊆ R[1] };
//   queries[0] = Q1 = {(x): ∃y R(x,y)};
//   queries[1] = Q2 = {(x): ∃y,y' R(x,y) ∧ R(y',x)}.
// Q1 ≡f Q2 (equivalent on every finite Σ-database) yet Q1 ⊄∞ Q2.
Scenario Section4Scenario();

// A key-based variant of the EMP/DEP schema for Theorem 2 case (ii):
//   Σ = { EMP: eno → sal, EMP: eno → dept, DEP: dept → loc,
//         EMP[dept] ⊆ DEP[dept] };
//   queries as in EmpDepScenario().
Scenario KeyBasedEmpDepScenario();

}  // namespace cqchase

#endif  // CQCHASE_GEN_SCENARIOS_H_
