// Randomized workload generators for benchmarks and property tests. The
// paper (1982) has no workloads; these exercise the same code paths at
// controlled sizes. Everything is seeded-deterministic through Rng.
#ifndef CQCHASE_GEN_GENERATORS_H_
#define CQCHASE_GEN_GENERATORS_H_

#include <string>

#include "base/rng.h"
#include "base/status.h"
#include "cq/query.h"
#include "data/instance.h"
#include "deps/dependency_set.h"
#include "schema/catalog.h"
#include "symbols/symbol_table.h"

namespace cqchase {

struct RandomCatalogParams {
  size_t num_relations = 3;
  size_t min_arity = 2;
  size_t max_arity = 4;
};

// Relations "R0", "R1", ... with attributes "a0", "a1", ...
Catalog RandomCatalog(Rng& rng, const RandomCatalogParams& params = {});

struct RandomQueryParams {
  size_t num_conjuncts = 4;
  size_t num_vars = 6;       // size of the NDV pool
  size_t num_dist_vars = 1;  // summary arity
  double constant_prob = 0.0;
  size_t constant_pool = 3;
  // Prefix for generated variable names; vary per query to keep two queries'
  // variables disjoint within one SymbolTable.
  std::string name_prefix = "q";
};

// A safe random query: every summary DV occurs in the body.
ConjunctiveQuery RandomQuery(Rng& rng, const Catalog& catalog,
                             SymbolTable& symbols,
                             const RandomQueryParams& params = {});

struct RandomIndParams {
  size_t count = 3;
  size_t width = 1;
};

// Random IND-only Σ with exactly `width`-wide INDs (relations with smaller
// arity are skipped as endpoints).
DependencySet RandomIndOnlyDeps(Rng& rng, const Catalog& catalog,
                                const RandomIndParams& params = {});

struct RandomKeyBasedParams {
  size_t key_size = 1;   // columns 0..key_size-1 are each relation's key
  size_t num_inds = 3;
};

// A key-based Σ over `catalog`: per relation, FDs key → every non-key
// column; INDs from non-key columns of one relation into (a prefix of) the
// key of another. Relations whose arity is <= key_size get no dependencies.
DependencySet RandomKeyBasedDeps(Rng& rng, const Catalog& catalog,
                                 const RandomKeyBasedParams& params = {});

struct RandomInstanceParams {
  size_t domain_size = 8;
  size_t tuples_per_relation = 10;
  std::string constant_prefix = "v";
};

Instance RandomInstance(Rng& rng, const Catalog& catalog, SymbolTable& symbols,
                        const RandomInstanceParams& params = {});

// A query Q' with Σ ⊨ Q ⊆∞ Q' *by construction*: its conjuncts are renamed
// copies of facts from a chase prefix of Q (fresh NDVs for everything except
// Q's constants and summary DVs), so the renaming itself is a homomorphism
// Q' → chaseΣ(Q). Used to generate positive instances for validation
// benchmarks. `chase_depth` controls how deep the planted facts may sit.
Result<ConjunctiveQuery> PlantedSuperQuery(Rng& rng,
                                           const ConjunctiveQuery& q,
                                           const DependencySet& deps,
                                           SymbolTable& symbols,
                                           size_t extra_conjuncts,
                                           uint32_t chase_depth);

}  // namespace cqchase

#endif  // CQCHASE_GEN_GENERATORS_H_
