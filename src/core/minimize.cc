#include "core/minimize.h"

#include "engine/engine.h"

namespace cqchase {

// Both entry points delegate to ContainmentEngine::Minimize/IsNonMinimal,
// which issue the per-conjunct containment checks through the engine's
// memoization layer — when the greedy loop produces isomorphic candidates
// (symmetric queries, or IsNonMinimal followed by MinimizeQuery), the
// verdict cache answers without re-chasing. The chased side changes on
// every probe, so the chase-prefix cache does not apply here.

namespace {

EngineConfig MakeConfig(const ContainmentOptions& options) {
  EngineConfig config;
  config.containment = options;
  return config;
}

}  // namespace

Result<bool> IsNonMinimal(const ConjunctiveQuery& q, const DependencySet& deps,
                          SymbolTable& symbols,
                          const ContainmentOptions& options) {
  ContainmentEngine engine(&q.catalog(), &symbols, MakeConfig(options));
  return engine.IsNonMinimal(q, deps);
}

Result<MinimizeReport> MinimizeQuery(const ConjunctiveQuery& q,
                                     const DependencySet& deps,
                                     SymbolTable& symbols,
                                     const ContainmentOptions& options) {
  ContainmentEngine engine(&q.catalog(), &symbols, MakeConfig(options));
  return engine.Minimize(q, deps);
}

}  // namespace cqchase
