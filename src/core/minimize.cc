#include "core/minimize.h"

namespace cqchase {

namespace {

// Q with conjunct `skip` removed.
ConjunctiveQuery WithoutConjunct(const ConjunctiveQuery& q, size_t skip) {
  ConjunctiveQuery out(&q.catalog(), &q.symbols());
  for (size_t i = 0; i < q.conjuncts().size(); ++i) {
    if (i != skip) out.AddConjunct(q.conjuncts()[i]);
  }
  out.SetSummary(q.summary());
  return out;
}

// A summary DV must keep occurring in the body; removing the only conjunct
// containing it would make the query unsafe.
bool RemovalKeepsSafety(const ConjunctiveQuery& q, size_t skip) {
  for (Term t : q.summary()) {
    if (!t.is_dist_var()) continue;
    bool still_occurs = false;
    for (size_t i = 0; i < q.conjuncts().size() && !still_occurs; ++i) {
      if (i == skip) continue;
      for (Term u : q.conjuncts()[i].terms) {
        if (u == t) {
          still_occurs = true;
          break;
        }
      }
    }
    if (!still_occurs) return false;
  }
  return true;
}

}  // namespace

Result<bool> IsNonMinimal(const ConjunctiveQuery& q, const DependencySet& deps,
                          SymbolTable& symbols,
                          const ContainmentOptions& options) {
  if (q.is_empty_query() || q.conjuncts().empty()) return false;
  for (size_t i = 0; i < q.conjuncts().size(); ++i) {
    if (!RemovalKeepsSafety(q, i)) continue;
    ConjunctiveQuery candidate = WithoutConjunct(q, i);
    CQCHASE_ASSIGN_OR_RETURN(
        ContainmentReport r,
        CheckContainment(candidate, q, deps, symbols, options));
    if (r.contained) return true;
  }
  return false;
}

Result<MinimizeReport> MinimizeQuery(const ConjunctiveQuery& q,
                                     const DependencySet& deps,
                                     SymbolTable& symbols,
                                     const ContainmentOptions& options) {
  MinimizeReport report{q, 0, 0};
  bool changed = true;
  while (changed && !report.query.conjuncts().empty()) {
    changed = false;
    for (size_t i = 0; i < report.query.conjuncts().size(); ++i) {
      if (!RemovalKeepsSafety(report.query, i)) continue;
      ConjunctiveQuery candidate = WithoutConjunct(report.query, i);
      ++report.containment_checks;
      CQCHASE_ASSIGN_OR_RETURN(
          ContainmentReport r,
          CheckContainment(candidate, report.query, deps, symbols, options));
      if (r.contained) {
        report.query = std::move(candidate);
        ++report.removed_conjuncts;
        changed = true;
        break;
      }
    }
  }
  return report;
}

}  // namespace cqchase
