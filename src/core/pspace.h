// Corollary 2.3's space story, made executable. The paper observes that the
// Theorem 2 "proof" can be constructed and checked *level by level*, with
// only the information from one or two levels retained at any given time —
// which is what puts general-width containment in PSPACE even though the
// number of chase levels can be exponential in the IND width W.
//
// Two deterministic realizations:
//
//  * StreamingVerifyCertificate — re-checks a ContainmentCertificate in one
//    pass over its derivation steps, retaining only the symbols of the last
//    `window` levels. Lemma 6 (key-based Σ: symbols span ≤ 2 adjacent
//    levels) and the k_Σ propagation bound (width-1 IND sets) guarantee that
//    a chase-generated certificate never references anything older, so the
//    windowed pass reaches the same verdict as the full verifier while its
//    peak symbol memory stays proportional to the widest window rather than
//    to the whole certificate. The pass *rejects* any certificate that
//    reaches outside its window, so it never accepts more than
//    VerifyCertificate does on these classes.
//
//  * StreamingSingleConjunctContainment — decides Σ ⊨ Q ⊆∞ Q' outright for
//    IND-only Σ when Q' has a single conjunct (the special case Vardi's
//    remark in Section 5 singles out), by streaming the O-chase frontier
//    level by level and testing each conjunct in isolation: a one-conjunct
//    Q' maps into the chase iff some single chase conjunct matches it
//    consistently with the summary row, so no cross-level state is needed
//    and memory is bounded by one frontier.
#ifndef CQCHASE_CORE_PSPACE_H_
#define CQCHASE_CORE_PSPACE_H_

#include <cstdint>

#include "chase/chase.h"
#include "core/certificate.h"
#include "cq/query.h"
#include "deps/dependency_set.h"

namespace cqchase {

struct StreamingVerifyReport {
  bool valid = false;
  std::string rejection;   // first failure, empty when valid
  // Space accounting: peak number of symbols retained at once vs the total
  // number of distinct symbols in the certificate (the full verifier's
  // working set).
  size_t peak_window_symbols = 0;
  size_t total_symbols = 0;
  uint32_t levels = 0;
};

// Windowed one-pass re-verification of `certificate` (see header comment).
// `window` is the number of trailing levels whose symbols are retained;
// Lemma 6 justifies window >= 2 for key-based Σ, and the k_Σ bound justifies
// window >= k_Σ + 1 for width-1 IND sets. The derivation steps must be
// grouped by non-decreasing level (chase creation order, which
// BuildCertificate preserves).
Result<StreamingVerifyReport> StreamingVerifyCertificate(
    const ContainmentCertificate& certificate, const ConjunctiveQuery& q,
    const ConjunctiveQuery& q_prime, const DependencySet& deps,
    SymbolTable& symbols, uint32_t window = 2);

struct StreamingContainmentOptions {
  // Defaults follow the library-wide chase budget (chase/chase.h): same
  // level cap, and the frontier (conjuncts retained at once) capped at half
  // the whole-chase conjunct budget.
  uint32_t max_level = ChaseLimits{}.max_level;
  size_t max_frontier = ChaseLimits{}.max_conjuncts / 2;
};

struct StreamingContainmentReport {
  bool contained = false;
  uint32_t decided_at_level = 0;  // level of the matching conjunct
  size_t peak_frontier = 0;       // conjuncts held at the widest level
  size_t conjuncts_streamed = 0;  // total conjuncts ever generated
};

// Frontier-streaming decision of Σ ⊨ Q ⊆∞ Q' for IND-only Σ and a Q' with
// exactly one conjunct. Complete: a negative answer is certified by the
// Lemma 5 level bound. kFailedPrecondition for other shapes;
// kResourceExhausted when a frontier or level limit is hit first.
Result<StreamingContainmentReport> StreamingSingleConjunctContainment(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const DependencySet& deps, SymbolTable& symbols,
    const StreamingContainmentOptions& options = {});

}  // namespace cqchase

#endif  // CQCHASE_CORE_PSPACE_H_
