// Theorem 2's NP certificate, made concrete: a *checkable proof object* for
// Σ ⊨ Q ⊆∞ Q'.
//
// The paper's nondeterministic algorithm "guesses the image of Q' under the
// homomorphism, guesses enough of chase_Σ(Q) to prove that the image is
// indeed part of chase_Σ(Q), and verifies that there is a homomorphism from
// Q' to the guessed image". A ContainmentCertificate is exactly that guess:
//
//   * roots    — the conjuncts of chase_Σ[F](Q), the finite FD-only chase of
//                Q (for IND-only Σ this is Q itself). The verifier recomputes
//                this deterministically (polynomial time) and compares.
//   * steps    — an IND-derivation: each step creates one conjunct from an
//                earlier one by an IND of Σ, with globally fresh NDVs in the
//                non-copied columns (the paper's "each NDV label is
//                consistent with the labelling of the path").
//   * mapping  — the homomorphism Q' → (roots ∪ created conjuncts), given
//                explicitly so checking it is a pointwise comparison.
//
// Soundness does not depend on the chase discipline: any IND-derivation from
// chase_Σ[F](Q) extends along Lemma 1's induction, so a verified certificate
// implies containment for *arbitrary* Σ of FDs and INDs. Completeness for
// the paper's decidable classes (IND-only, key-based) follows from Lemma 5:
// whenever containment holds, a certificate with at most
// |Q'|·|Σ|·(W+1)^W + |Q'| derivation steps exists — the R-chase prefix the
// checker explores (Lemma 2 guarantees the R-chase for key-based Σ performs
// no FD step after the initial phase, so its conjuncts have pure
// IND-derivations).
#ifndef CQCHASE_CORE_CERTIFICATE_H_
#define CQCHASE_CORE_CERTIFICATE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "chase/chase.h"
#include "core/containment.h"
#include "core/homomorphism.h"
#include "cq/query.h"
#include "deps/dependency_set.h"

namespace cqchase {

// One IND application in the derivation part of a certificate.
struct DerivationStep {
  uint32_t ind_index = 0;  // into deps.inds()
  size_t parent = 0;       // index into the certificate's fact list
  Fact fact;               // the created conjunct

  friend bool operator==(const DerivationStep& a, const DerivationStep& b) {
    return a.ind_index == b.ind_index && a.parent == b.parent &&
           a.fact == b.fact;
  }
};

struct ContainmentCertificate {
  // True when chase_Σ[F](Q) hit a constant clash: Q is unsatisfiable under
  // Σ and contained in everything; roots/steps/mapping are empty.
  bool q_is_empty = false;

  // Facts are numbered: roots occupy [0, roots.size()), the fact of steps[i]
  // has index roots.size() + i.
  std::vector<Fact> roots;
  std::vector<Term> summary;  // summary row of chase_Σ[F](Q)
  std::vector<DerivationStep> steps;

  // The homomorphism: image of every variable of Q' (constants map to
  // themselves), plus, per conjunct of Q', the certificate fact index it
  // lands on.
  std::unordered_map<Term, Term> mapping;
  std::vector<size_t> conjunct_images;

  // Total number of facts (roots + steps).
  size_t NumFacts() const { return roots.size() + steps.size(); }
  const Fact& FactAt(size_t index) const {
    return index < roots.size() ? roots[index]
                                : steps[index - roots.size()].fact;
  }

  // Certificate size — the quantity Theorem 2 bounds polynomially.
  size_t SizeInSymbols() const;

  std::string ToString(const Catalog& catalog,
                       const SymbolTable& symbols) const;
};

// True iff Σ is a shape certificates can be constructed for: empty, FD-only,
// IND-only, or key-based. Lemma 2 guarantees exactly these classes yield
// derivations free of post-IND FD rewrites (the certificate format's
// requirement); general FD+IND mixes are rejected with kUnimplemented by
// both certificate builders.
bool CertifiableSigma(const DependencySet& deps, const Catalog& catalog);

// Extracts a certificate from a chase of Q that already yielded a witness
// homomorphism Q' → chase (the decision's own chase — this is what lets the
// engine return a proof without re-chasing). `hom.conjunct_images` must
// index into `chase.AliveConjuncts()` (the order FindHomomorphism produced
// it in). Roots are the chase's alive level-0 conjuncts, i.e. chase_Σ[F](Q);
// the derivation keeps only the witness image's ancestor cone.
ContainmentCertificate ExtractCertificateFromChase(const Chase& chase,
                                                   const Homomorphism& hom);

// Decides Σ ⊨ Q ⊆∞ Q' and, when it holds, produces a certificate. Returns
// nullopt when containment does not hold. Accepts the same Σ shapes as
// CheckContainment (same options semantics).
Result<std::optional<ContainmentCertificate>> BuildCertificate(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const DependencySet& deps, SymbolTable& symbols,
    const ContainmentOptions& options = {});

// Independently verifies a certificate against (Q, Q', Σ). Performs the
// deterministic part of Theorem 2's procedure:
//   1. recomputes chase_Σ[F](Q) and compares with roots/summary (or, for
//      q_is_empty, confirms the FD chase clashes);
//   2. checks every derivation step: the labelled IND exists in Σ, the
//      parent index precedes the step, c'[Y] = parent[X], and every other
//      column holds a fresh NDV seen nowhere earlier in the certificate;
//   3. checks the mapping is a homomorphism: constants fixed, each conjunct
//      of Q' mapped pointwise onto its image fact, and the summary row of
//      Q' mapped pointwise onto the certificate summary.
// Runs in time polynomial in |certificate| + |Q| + |Q'| + |Σ| — no search.
Status VerifyCertificate(const ContainmentCertificate& certificate,
                         const ConjunctiveQuery& q,
                         const ConjunctiveQuery& q_prime,
                         const DependencySet& deps, SymbolTable& symbols);

}  // namespace cqchase

#endif  // CQCHASE_CORE_CERTIFICATE_H_
