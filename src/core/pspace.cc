#include "core/pspace.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/string_util.h"
#include "chase/chase.h"
#include "core/containment.h"

namespace cqchase {

namespace {

// Applies a certificate mapping to one term (constants fixed).
Term ApplyMapping(const std::unordered_map<Term, Term>& mapping, Term t) {
  if (t.is_constant()) return t;
  auto it = mapping.find(t);
  return it == mapping.end() ? Term::Invalid() : it->second;
}

}  // namespace

Result<StreamingVerifyReport> StreamingVerifyCertificate(
    const ContainmentCertificate& certificate, const ConjunctiveQuery& q,
    const ConjunctiveQuery& q_prime, const DependencySet& deps,
    SymbolTable& symbols, uint32_t window) {
  StreamingVerifyReport report;
  auto reject = [&](std::string why) {
    report.valid = false;
    report.rejection = std::move(why);
    return report;
  };
  if (window < 2) {
    return Status::InvalidArgument(
        "window must be >= 2: a step always references its parent one level "
        "up");
  }
  if (certificate.q_is_empty) {
    // Delegate the (small) FD-chase recomputation to the full verifier.
    Status status = VerifyCertificate(certificate, q, q_prime, deps, symbols);
    report.valid = status.ok();
    if (!status.ok()) report.rejection = status.ToString();
    return report;
  }

  // --- Non-derivation checks (all small: |Q|, |Q'|, |Σ|). ------------------
  // Roots must be chase_Σ[F](Q): recompute via the full verifier on a
  // truncated certificate with no steps and no mapping obligations is not
  // directly possible, so recompute the FD chase here.
  {
    DependencySet fds = deps.FdsOnly();
    Chase fd_chase(&q.catalog(), &symbols, &fds, ChaseVariant::kRequired, {});
    CQCHASE_RETURN_IF_ERROR(fd_chase.Init(q));
    CQCHASE_ASSIGN_OR_RETURN(ChaseOutcome outcome, fd_chase.Run());
    if (outcome == ChaseOutcome::kEmptyQuery) {
      return reject("FD chase of Q clashes but certificate does not say so");
    }
    std::vector<Fact> expected = fd_chase.AliveFacts();
    std::vector<Fact> got = certificate.roots;
    std::sort(expected.begin(), expected.end());
    std::sort(got.begin(), got.end());
    if (expected != got) return reject("roots differ from chase_FD(Q)");
    if (fd_chase.summary() != certificate.summary) {
      return reject("summary differs from chase_FD(Q)");
    }
  }

  // Precompute, per certificate fact index that some conjunct of Q' maps
  // onto, the expected image fact h(conjunct). Checked when the stream
  // passes that index.
  if (certificate.conjunct_images.size() != q_prime.conjuncts().size()) {
    return reject("conjunct image list has wrong length");
  }
  std::unordered_map<size_t, std::vector<Fact>> expected_images;
  for (size_t i = 0; i < q_prime.conjuncts().size(); ++i) {
    const Fact& src = q_prime.conjuncts()[i];
    Fact image;
    image.relation = src.relation;
    image.terms.reserve(src.terms.size());
    for (Term t : src.terms) {
      Term mapped = ApplyMapping(certificate.mapping, t);
      if (!mapped.is_valid()) {
        return reject(StrCat("conjunct ", i, ": unmapped variable"));
      }
      image.terms.push_back(mapped);
    }
    expected_images[certificate.conjunct_images[i]].push_back(
        std::move(image));
  }
  // Summary row of Q' must map pointwise onto the certificate summary.
  if (q_prime.summary().size() != certificate.summary.size()) {
    return reject("summary arity mismatch");
  }
  for (size_t i = 0; i < certificate.summary.size(); ++i) {
    Term mapped = ApplyMapping(certificate.mapping, q_prime.summary()[i]);
    if (!mapped.is_valid() || mapped != certificate.summary[i]) {
      return reject(StrCat("summary position ", i, " not preserved"));
    }
  }

  // --- The streaming pass over the derivation. -----------------------------
  // Window state: for each of the last `window` levels, the facts (by
  // certificate index) and the symbols they introduced.
  struct LevelWindow {
    uint32_t level = 0;
    std::unordered_map<size_t, Fact> facts;
    std::unordered_set<Term> terms;
  };
  std::deque<LevelWindow> windows;
  auto window_symbols = [&]() {
    size_t n = 0;
    for (const LevelWindow& w : windows) n += w.terms.size();
    return n;
  };
  auto check_image = [&](size_t index, const Fact& fact) -> bool {
    auto it = expected_images.find(index);
    if (it == expected_images.end()) return true;
    for (const Fact& expected : it->second) {
      if (expected != fact) return false;
    }
    expected_images.erase(it);
    return true;
  };

  windows.push_back(LevelWindow{0, {}, {}});
  for (size_t i = 0; i < certificate.roots.size(); ++i) {
    windows.back().facts.emplace(i, certificate.roots[i]);
    windows.back().terms.insert(certificate.roots[i].terms.begin(),
                                certificate.roots[i].terms.end());
    if (!check_image(i, certificate.roots[i])) {
      return reject(StrCat("root ", i, ": image mismatch"));
    }
  }
  windows.back().terms.insert(certificate.summary.begin(),
                              certificate.summary.end());
  report.peak_window_symbols = window_symbols();
  report.total_symbols = windows.back().terms.size();

  std::unordered_set<Term> all_terms = windows.front().terms;  // stats only
  for (size_t i = 0; i < certificate.steps.size(); ++i) {
    const DerivationStep& step = certificate.steps[i];
    const size_t self_index = certificate.roots.size() + i;
    if (step.ind_index >= deps.inds().size()) {
      return reject(StrCat("step ", i, ": IND index out of range"));
    }
    const InclusionDependency& ind = deps.inds()[step.ind_index];

    // Locate the parent inside the window.
    const Fact* parent = nullptr;
    uint32_t parent_level = 0;
    for (const LevelWindow& w : windows) {
      auto it = w.facts.find(step.parent);
      if (it != w.facts.end()) {
        parent = &it->second;
        parent_level = w.level;
        break;
      }
    }
    if (parent == nullptr) {
      return reject(StrCat("step ", i,
                           ": parent is outside the ", window,
                           "-level window (symbol span violates the class "
                           "bound, or steps are out of level order)"));
    }
    const uint32_t level = parent_level + 1;
    if (level < windows.back().level) {
      return reject(StrCat("step ", i, ": levels not non-decreasing"));
    }
    if (level > windows.back().level) {
      windows.push_back(LevelWindow{level, {}, {}});
      while (windows.size() > window) windows.pop_front();
      report.levels = level;
    }

    if (parent->relation != ind.lhs_relation ||
        step.fact.relation != ind.rhs_relation ||
        step.fact.terms.size() != q.catalog().arity(ind.rhs_relation)) {
      return reject(StrCat("step ", i, ": shape does not match its IND"));
    }
    std::vector<bool> copied(step.fact.terms.size(), false);
    for (size_t k = 0; k < ind.width(); ++k) {
      if (step.fact.terms[ind.rhs_columns[k]] !=
          parent->terms[ind.lhs_columns[k]]) {
        return reject(StrCat("step ", i, ": c'[Y] != c[X]"));
      }
      copied[ind.rhs_columns[k]] = true;
    }
    for (size_t col = 0; col < step.fact.terms.size(); ++col) {
      Term t = step.fact.terms[col];
      if (copied[col]) continue;
      if (!t.is_nondist_var()) {
        return reject(StrCat("step ", i, ": column ", col, " not an NDV"));
      }
      for (const LevelWindow& w : windows) {
        if (w.terms.count(t) > 0) {
          return reject(StrCat("step ", i, ": NDV in column ", col,
                               " is not fresh within the window"));
        }
      }
    }
    windows.back().facts.emplace(self_index, step.fact);
    for (Term t : step.fact.terms) {
      windows.back().terms.insert(t);
      all_terms.insert(t);
    }
    if (!check_image(self_index, step.fact)) {
      return reject(StrCat("step ", i, ": image mismatch"));
    }
    report.peak_window_symbols =
        std::max(report.peak_window_symbols, window_symbols());
  }
  report.total_symbols = all_terms.size();
  if (!expected_images.empty()) {
    return reject("some conjunct images point at facts not in the "
                  "certificate");
  }
  report.valid = true;
  return report;
}

Result<StreamingContainmentReport> StreamingSingleConjunctContainment(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const DependencySet& deps, SymbolTable& symbols,
    const StreamingContainmentOptions& options) {
  CQCHASE_RETURN_IF_ERROR(q.Validate());
  CQCHASE_RETURN_IF_ERROR(q_prime.Validate());
  if (!deps.ContainsOnlyInds()) {
    return Status::FailedPrecondition(
        "streaming containment requires an IND-only Sigma");
  }
  if (q_prime.conjuncts().size() != 1) {
    return Status::FailedPrecondition(
        "streaming containment requires a single-conjunct Q'");
  }
  if (q.summary().size() != q_prime.summary().size()) {
    return Status::InvalidArgument("output arity mismatch");
  }

  StreamingContainmentReport report;
  const Fact& pattern = q_prime.conjuncts()[0];

  // A single-conjunct Q' maps into the chase iff one chase conjunct matches
  // the pattern with a consistent variable assignment that also sends Q''s
  // summary row onto Q's (the chase of an IND-only Σ never rewrites the
  // summary).
  auto matches = [&](const Fact& fact) {
    if (fact.relation != pattern.relation) return false;
    std::unordered_map<Term, Term> assignment;
    for (size_t col = 0; col < pattern.terms.size(); ++col) {
      Term s = pattern.terms[col];
      Term d = fact.terms[col];
      if (s.is_constant()) {
        if (s != d) return false;
        continue;
      }
      auto [it, inserted] = assignment.emplace(s, d);
      if (!inserted && it->second != d) return false;
    }
    for (size_t i = 0; i < q_prime.summary().size(); ++i) {
      Term s = q_prime.summary()[i];
      Term expected = q.summary()[i];
      if (s.is_constant()) {
        if (s != expected) return false;
        continue;
      }
      auto it = assignment.find(s);
      // Safety guarantees summary DVs occur in the conjunct.
      if (it == assignment.end() || it->second != expected) return false;
    }
    return true;
  };

  const uint64_t bound =
      Theorem2LevelBound(1, deps.size(), deps.MaxIndWidth());

  std::vector<Fact> frontier = q.conjuncts();
  report.peak_frontier = frontier.size();
  for (uint32_t level = 0;; ++level) {
    report.conjuncts_streamed += frontier.size();
    for (const Fact& fact : frontier) {
      if (matches(fact)) {
        report.contained = true;
        report.decided_at_level = level;
        return report;
      }
    }
    if (level >= bound) {
      report.contained = false;  // Lemma 5: no deeper witness can exist
      return report;
    }
    if (level >= options.max_level) {
      return Status::ResourceExhausted(
          StrCat("undecided at level cap ", options.max_level));
    }
    // O-chase expansion: every IND applies once to every frontier conjunct.
    std::vector<Fact> next;
    for (const Fact& fact : frontier) {
      for (const InclusionDependency& ind : deps.inds()) {
        if (ind.lhs_relation != fact.relation) continue;
        Fact child;
        child.relation = ind.rhs_relation;
        child.terms.resize(q.catalog().arity(ind.rhs_relation));
        for (size_t k = 0; k < ind.width(); ++k) {
          child.terms[ind.rhs_columns[k]] = fact.terms[ind.lhs_columns[k]];
        }
        for (Term& t : child.terms) {
          if (!t.is_valid()) t = symbols.MakeFreshNondistVar("st");
        }
        next.push_back(std::move(child));
        if (next.size() > options.max_frontier) {
          return Status::ResourceExhausted(
              StrCat("frontier exceeded ", options.max_frontier,
                     " conjuncts at level ", level + 1));
        }
      }
    }
    if (next.empty()) {
      report.contained = false;  // chase saturated
      return report;
    }
    report.peak_frontier = std::max(report.peak_frontier, next.size());
    frontier = std::move(next);
  }
}

}  // namespace cqchase
