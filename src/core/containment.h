// Containment of conjunctive queries under FDs and INDs — the paper's main
// algorithm (Theorems 1 and 2).
//
// Decision procedure: Σ ⊨ Q ⊆∞ Q' iff there is a query homomorphism
// Q' → chaseΣ(Q) (Theorem 1). The chase may be infinite, but when Σ is
// IND-only or key-based, Lemma 5 bounds the level a witness homomorphism
// needs: |Q'| · |Σ| · (W+1)^W (W = max IND width). The checker therefore
// expands the chase prefix level by level (iterative deepening), searching
// for a homomorphism after each expansion, and stops at:
//   * a homomorphism            → contained;
//   * chase saturation          → not contained;
//   * the Lemma 5 level bound   → not contained (certified);
//   * a resource limit          → kResourceExhausted (undecided, never wrong).
//
// Supported Σ shapes (everything else is kUnimplemented — the paper leaves
// the general FD+IND case open, and Mitchell showed its inference problem
// undecidable):
//   * Σ empty        — pure Chandra–Merlin homomorphism test;
//   * FDs only       — finite classical chase, then homomorphism;
//   * INDs only      — Theorem 2 case (i);
//   * key-based      — Theorem 2 case (ii);
//   * anything, when options.allow_semidecision is set — sound but possibly
//     non-terminating-within-limits semi-decision.
#ifndef CQCHASE_CORE_CONTAINMENT_H_
#define CQCHASE_CORE_CONTAINMENT_H_

#include <cstdint>
#include <optional>

#include "chase/chase.h"
#include "core/homomorphism.h"
#include "cq/query.h"
#include "deps/dependency_set.h"

namespace cqchase {

struct ContainmentOptions {
  ChaseLimits limits;
  // Chase discipline used for the decision. Theorem 1 holds for both; the
  // R-chase is usually far smaller. Benchmarks compare the two.
  ChaseVariant variant = ChaseVariant::kRequired;
  // Permit running on dependency sets outside the paper's decidable cases
  // (general FD+IND mixes): sound, but "not contained" can then only be
  // reported on chase saturation, and limits may yield kResourceExhausted.
  bool allow_semidecision = false;
  // Expand this many levels between homomorphism searches.
  uint32_t level_stride = 1;
};

struct ContainmentReport {
  bool contained = false;
  // When contained: the homomorphism found, and the deepest chase level its
  // image touches (the empirical counterpart of the Lemma 5 bound).
  std::optional<Homomorphism> witness;
  uint32_t witness_max_level = 0;
  // The Lemma 5 theoretical level bound |Q'|·|Σ|·(W+1)^W, saturated at
  // uint64 max. 0 when Σ has no INDs.
  uint64_t level_bound = 0;
  // Size of the chase prefix explored and its outcome when the decision was
  // made.
  size_t chase_conjuncts = 0;
  uint32_t chase_levels = 0;
  ChaseOutcome chase_outcome = ChaseOutcome::kTruncated;
};

// The Lemma 5 bound |Q'|·|Σ|·(W+1)^W, saturating at uint64 max.
uint64_t Theorem2LevelBound(size_t q_prime_size, size_t sigma_size,
                            size_t max_width);

// Tests Σ ⊨ Q ⊆∞ Q'. Both queries must share `symbols` and a catalog.
// `symbols` is mutated (the chase creates NDVs).
Result<ContainmentReport> CheckContainment(const ConjunctiveQuery& q,
                                           const ConjunctiveQuery& q_prime,
                                           const DependencySet& deps,
                                           SymbolTable& symbols,
                                           const ContainmentOptions& options = {});

// Tests Σ ⊨ Q ≡∞ Q' (containment both ways).
Result<bool> CheckEquivalence(const ConjunctiveQuery& q,
                              const ConjunctiveQuery& q_prime,
                              const DependencySet& deps, SymbolTable& symbols,
                              const ContainmentOptions& options = {});

}  // namespace cqchase

#endif  // CQCHASE_CORE_CONTAINMENT_H_
