#include "core/certificate.h"

#include <algorithm>
#include <set>
#include <unordered_set>
#include <utility>

#include "base/string_util.h"
#include "chase/chase.h"
#include "core/homomorphism.h"

namespace cqchase {

size_t ContainmentCertificate::SizeInSymbols() const {
  size_t n = summary.size() + mapping.size();
  for (const Fact& f : roots) n += f.terms.size();
  for (const DerivationStep& s : steps) n += s.fact.terms.size();
  return n;
}

std::string ContainmentCertificate::ToString(const Catalog& catalog,
                                             const SymbolTable& symbols) const {
  std::string out;
  if (q_is_empty) return "certificate: Q is empty under Sigma\n";
  out += "roots (chase_FD(Q)):\n";
  for (size_t i = 0; i < roots.size(); ++i) {
    out += StrCat("  [", i, "] ", roots[i].ToString(catalog, symbols), "\n");
  }
  out += "derivation:\n";
  for (size_t i = 0; i < steps.size(); ++i) {
    out += StrCat("  [", roots.size() + i, "] ",
                  steps[i].fact.ToString(catalog, symbols), "  <- [",
                  steps[i].parent, "] via IND #", steps[i].ind_index, "\n");
  }
  out += StrCat("summary: ", TermsToString(summary, symbols), "\n");
  return out;
}

namespace {

// BuildCertificate and VerifyCertificate both need the deterministic FD-only
// chase of Q. Outcome plus the resulting facts and summary.
struct FdChaseResult {
  bool empty_query = false;
  std::vector<Fact> facts;
  std::vector<Term> summary;
};

Result<FdChaseResult> RunFdChase(const ConjunctiveQuery& q,
                                 const DependencySet& deps,
                                 SymbolTable& symbols,
                                 const ChaseLimits& limits) {
  FdChaseResult out;
  DependencySet fds = deps.FdsOnly();
  Chase chase(&q.catalog(), &symbols, &fds, ChaseVariant::kRequired, limits);
  CQCHASE_RETURN_IF_ERROR(chase.Init(q));
  CQCHASE_ASSIGN_OR_RETURN(ChaseOutcome outcome, chase.Run());
  if (outcome == ChaseOutcome::kEmptyQuery) {
    out.empty_query = true;
    return out;
  }
  out.facts = chase.AliveFacts();
  out.summary = chase.summary();
  return out;
}

bool SameFactMultiset(std::vector<Fact> a, std::vector<Fact> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

}  // namespace

bool CertifiableSigma(const DependencySet& deps, const Catalog& catalog) {
  // Certificates require derivations free of post-IND FD rewrites, which
  // Lemma 2 guarantees exactly for the paper's decidable classes.
  return deps.ContainsOnlyInds() || deps.ContainsOnlyFds() || deps.empty() ||
         deps.IsKeyBased(catalog);
}

ContainmentCertificate ExtractCertificateFromChase(const Chase& chase,
                                                   const Homomorphism& hom) {
  // Extract the image conjuncts and their ordinary-arc ancestors. The walk
  // is O(cone): ids are dense creation indices, so each parent hop is one
  // Chase::ConjunctById array lookup — no id map over the whole prefix,
  // which matters because the engine calls this while holding a shared
  // chase entry's lock against a prefix other askers may have driven far
  // deeper than this witness needs. Parent pointers are merge-redirected by
  // the chase, so they resolve to the live ancestor; the columnar
  // SegmentStore (bulk core) supplies the dependency label per hop below.
  std::vector<const ChaseConjunct*> alive = chase.AliveConjuncts();
  std::set<uint64_t> needed;
  for (size_t fact_index : hom.conjunct_images) {
    const ChaseConjunct* c = alive[fact_index];
    while (true) {
      if (!needed.insert(c->id).second) break;
      if (!c->parent.has_value()) break;
      const ChaseConjunct* parent = chase.ConjunctById(*c->parent);
      if (parent == nullptr || !parent->alive) break;  // defensively stop
      c = parent;
    }
  }

  ContainmentCertificate cert;
  // Roots: every alive level-0 conjunct — this *is* chase_Σ[F](Q) (for
  // IND-only Σ, Q itself).
  std::unordered_map<uint64_t, size_t> index_of_id;
  for (const ChaseConjunct* c : alive) {
    if (c->level != 0) continue;
    index_of_id[c->id] = cert.roots.size();
    cert.roots.push_back(c->fact);
  }
  cert.summary = chase.summary();
  // Steps: needed non-root conjuncts in creation order (parents precede
  // children by construction).
  for (const ChaseConjunct* c : alive) {
    if (c->level == 0 || needed.count(c->id) == 0) continue;
    DerivationStep step;
    // Dependency label: the segment edge that minted this conjunct (bulk
    // core), falling back to the per-conjunct record (scalar core). The two
    // agree whenever both exist — segments are the columnar mint history.
    std::optional<SegmentEdge> edge = chase.segments().EdgeOf(c->id);
    step.ind_index =
        edge.has_value() ? edge->ind_index : c->parent_ind.value_or(0);
    step.parent = index_of_id.at(*c->parent);
    step.fact = c->fact;
    index_of_id[c->id] = cert.roots.size() + cert.steps.size();
    cert.steps.push_back(std::move(step));
  }
  cert.mapping = hom.mapping;
  cert.conjunct_images.reserve(hom.conjunct_images.size());
  for (size_t fact_index : hom.conjunct_images) {
    cert.conjunct_images.push_back(index_of_id.at(alive[fact_index]->id));
  }
  return cert;
}

Result<std::optional<ContainmentCertificate>> BuildCertificate(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const DependencySet& deps, SymbolTable& symbols,
    const ContainmentOptions& options) {
  CQCHASE_RETURN_IF_ERROR(q.Validate());
  CQCHASE_RETURN_IF_ERROR(q_prime.Validate());
  if (q.summary().size() != q_prime.summary().size()) {
    return Status::InvalidArgument(
        "queries must have the same output arity for containment");
  }
  if (!CertifiableSigma(deps, q.catalog())) {
    return Status::Unimplemented(
        "certificates are only constructed for IND-only, FD-only or "
        "key-based dependency sets");
  }

  // Run the same iterative-deepening decision procedure as CheckContainment,
  // but keep the chase so the witness's derivation can be extracted.
  Chase chase(&q.catalog(), &symbols, &deps, options.variant, options.limits);
  CQCHASE_RETURN_IF_ERROR(chase.Init(q));
  const uint64_t bound = Theorem2LevelBound(q_prime.conjuncts().size(),
                                            deps.size(), deps.MaxIndWidth());

  uint32_t level = 0;
  std::optional<Homomorphism> hom;
  while (true) {
    CQCHASE_ASSIGN_OR_RETURN(ChaseOutcome outcome, chase.ExpandToLevel(level));
    if (outcome == ChaseOutcome::kEmptyQuery) {
      ContainmentCertificate cert;
      cert.q_is_empty = true;
      return std::optional<ContainmentCertificate>(std::move(cert));
    }
    if (!q_prime.is_empty_query()) {
      std::vector<const ChaseConjunct*> alive = chase.AliveConjuncts();
      std::vector<Fact> facts;
      facts.reserve(alive.size());
      for (const ChaseConjunct* c : alive) facts.push_back(c->fact);
      hom = FindHomomorphism(q_prime, facts, chase.summary());
      if (hom.has_value()) break;
    }
    if (outcome == ChaseOutcome::kSaturated || level >= bound) {
      return std::optional<ContainmentCertificate>();  // not contained
    }
    if (level >= options.limits.max_level) {
      return Status::ResourceExhausted(
          StrCat("certificate construction undecided at chase level ", level));
    }
    ++level;
  }

  return std::optional<ContainmentCertificate>(
      ExtractCertificateFromChase(chase, *hom));
}

Status VerifyCertificate(const ContainmentCertificate& certificate,
                         const ConjunctiveQuery& q,
                         const ConjunctiveQuery& q_prime,
                         const DependencySet& deps, SymbolTable& symbols) {
  CQCHASE_RETURN_IF_ERROR(q.Validate());
  CQCHASE_RETURN_IF_ERROR(q_prime.Validate());
  if (q.summary().size() != q_prime.summary().size()) {
    return Status::InvalidArgument("output arity mismatch");
  }

  // 1. Recompute chase_Σ[F](Q) and compare.
  ChaseLimits limits;
  CQCHASE_ASSIGN_OR_RETURN(FdChaseResult fd_chase,
                           RunFdChase(q, deps, symbols, limits));
  if (certificate.q_is_empty) {
    if (!fd_chase.empty_query) {
      return Status::InvalidArgument(
          "certificate claims Q is empty under Sigma, but the FD chase of Q "
          "does not clash");
    }
    return Status::OK();
  }
  if (fd_chase.empty_query) {
    return Status::InvalidArgument(
        "the FD chase of Q clashes but the certificate does not say so");
  }
  if (!SameFactMultiset(certificate.roots, fd_chase.facts)) {
    return Status::InvalidArgument(
        "certificate roots differ from chase_FD(Q)");
  }
  if (certificate.summary != fd_chase.summary) {
    return Status::InvalidArgument(
        "certificate summary differs from the summary of chase_FD(Q)");
  }

  // 2. Check the derivation: parents precede, INDs are in Σ, copied columns
  //    match, all other columns hold globally fresh, pairwise distinct NDVs.
  std::unordered_set<Term> seen;
  for (const Fact& f : certificate.roots) {
    seen.insert(f.terms.begin(), f.terms.end());
  }
  seen.insert(certificate.summary.begin(), certificate.summary.end());
  for (size_t i = 0; i < certificate.steps.size(); ++i) {
    const DerivationStep& step = certificate.steps[i];
    const size_t self_index = certificate.roots.size() + i;
    if (step.parent >= self_index) {
      return Status::InvalidArgument(
          StrCat("step ", i, ": parent does not precede the step"));
    }
    if (step.ind_index >= deps.inds().size()) {
      return Status::InvalidArgument(
          StrCat("step ", i, ": IND index out of range"));
    }
    const InclusionDependency& ind = deps.inds()[step.ind_index];
    const Fact& parent = certificate.FactAt(step.parent);
    if (parent.relation != ind.lhs_relation ||
        step.fact.relation != ind.rhs_relation) {
      return Status::InvalidArgument(
          StrCat("step ", i, ": relations do not match the labelled IND"));
    }
    if (step.fact.terms.size() != q.catalog().arity(ind.rhs_relation)) {
      return Status::InvalidArgument(StrCat("step ", i, ": arity mismatch"));
    }
    std::vector<bool> copied(step.fact.terms.size(), false);
    for (size_t k = 0; k < ind.width(); ++k) {
      if (step.fact.terms[ind.rhs_columns[k]] !=
          parent.terms[ind.lhs_columns[k]]) {
        return Status::InvalidArgument(
            StrCat("step ", i, ": c'[Y] != c[X] for the labelled IND"));
      }
      copied[ind.rhs_columns[k]] = true;
    }
    for (size_t col = 0; col < step.fact.terms.size(); ++col) {
      if (copied[col]) continue;
      Term t = step.fact.terms[col];
      if (!t.is_nondist_var()) {
        return Status::InvalidArgument(StrCat(
            "step ", i, ": non-copied column ", col, " is not an NDV"));
      }
      if (!seen.insert(t).second) {
        return Status::InvalidArgument(StrCat(
            "step ", i, ": NDV in column ", col, " is not globally fresh"));
      }
    }
    // Copied symbols become visible for later freshness checks too.
    for (Term t : step.fact.terms) seen.insert(t);
  }

  // 3. Check the homomorphism.
  if (q_prime.is_empty_query()) {
    return Status::InvalidArgument(
        "Q' is the empty query: containment cannot be certified by a "
        "homomorphism (it requires Q to be empty under Sigma)");
  }
  if (certificate.conjunct_images.size() != q_prime.conjuncts().size()) {
    return Status::InvalidArgument("conjunct image list has wrong length");
  }
  auto apply = [&](Term t) -> Term {
    if (t.is_constant()) return t;
    auto it = certificate.mapping.find(t);
    return it == certificate.mapping.end() ? Term::Invalid() : it->second;
  };
  for (size_t i = 0; i < q_prime.conjuncts().size(); ++i) {
    const Fact& src = q_prime.conjuncts()[i];
    const size_t image_index = certificate.conjunct_images[i];
    if (image_index >= certificate.NumFacts()) {
      return Status::InvalidArgument(
          StrCat("conjunct ", i, ": image index out of range"));
    }
    const Fact& dst = certificate.FactAt(image_index);
    if (src.relation != dst.relation ||
        src.terms.size() != dst.terms.size()) {
      return Status::InvalidArgument(
          StrCat("conjunct ", i, ": image relation/arity mismatch"));
    }
    for (size_t col = 0; col < src.terms.size(); ++col) {
      Term mapped = apply(src.terms[col]);
      if (!mapped.is_valid() || mapped != dst.terms[col]) {
        return Status::InvalidArgument(StrCat(
            "conjunct ", i, ": mapping is not a homomorphism at column ",
            col));
      }
    }
  }
  if (q_prime.summary().size() != certificate.summary.size()) {
    return Status::InvalidArgument("summary arity mismatch");
  }
  for (size_t i = 0; i < certificate.summary.size(); ++i) {
    Term mapped = apply(q_prime.summary()[i]);
    if (!mapped.is_valid() || mapped != certificate.summary[i]) {
      return Status::InvalidArgument(
          StrCat("summary position ", i, ": not preserved by the mapping"));
    }
  }
  return Status::OK();
}

}  // namespace cqchase
