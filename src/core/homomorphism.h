// Query homomorphisms (Section 2/3 of the paper): symbol mappings that fix
// constants, send each conjunct of the source query onto a target fact, and
// send the source summary row pointwise onto the target summary row.
//
// Deciding existence is NP-complete (Chandra & Merlin); the solver here is a
// backtracking search with relation indexing and dynamic most-constrained
// conjunct selection, which is fast on the structured queries the paper's
// constructions produce.
#ifndef CQCHASE_CORE_HOMOMORPHISM_H_
#define CQCHASE_CORE_HOMOMORPHISM_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "cq/fact.h"
#include "cq/query.h"
#include "symbols/term.h"

namespace cqchase {

struct Homomorphism {
  // Image of every source variable (constants map to themselves and are not
  // recorded).
  std::unordered_map<Term, Term> mapping;
  // For source conjunct i, the index into the target fact vector it was
  // mapped onto. Lets callers recover e.g. chase levels of the image.
  std::vector<size_t> conjunct_images;

  // Applies the mapping to a term (identity for constants/unmapped).
  Term Apply(Term t) const {
    if (t.is_constant()) return t;
    auto it = mapping.find(t);
    return it == mapping.end() ? t : it->second;
  }
};

struct HomomorphismOptions {
  // Require the mapping to be injective on source terms (used for
  // isomorphism checks).
  bool injective = false;
  // Upper bound on backtracking nodes; 0 means unlimited. When exceeded the
  // search returns nullopt-with-exhausted via FindHomomorphismBounded.
  size_t max_nodes = 0;
};

// Finds a homomorphism from `source` into (`target_facts`, `target_summary`).
// `target_summary` must have the same arity as source.summary(). Returns
// nullopt if none exists.
std::optional<Homomorphism> FindHomomorphism(
    const ConjunctiveQuery& source, const std::vector<Fact>& target_facts,
    const std::vector<Term>& target_summary,
    const HomomorphismOptions& options = {});

// Query-to-query convenience: target = q2's conjuncts and summary row.
std::optional<Homomorphism> FindQueryHomomorphism(
    const ConjunctiveQuery& source, const ConjunctiveQuery& target,
    const HomomorphismOptions& options = {});

// True iff the two queries are isomorphic: equal conjunct counts, equal
// summary arity, and injective homomorphisms both ways. This is equality
// "up to a renaming of the variables" — the sense in which chase results
// are unique (Maier–Mendelzon–Sagiv) and Lemma 2's factorization equality
// holds.
bool QueriesIsomorphic(const ConjunctiveQuery& a, const ConjunctiveQuery& b);

}  // namespace cqchase

#endif  // CQCHASE_CORE_HOMOMORPHISM_H_
