#include "core/homomorphism.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace cqchase {

namespace {

class Solver {
 public:
  Solver(const ConjunctiveQuery& source, const std::vector<Fact>& target_facts,
         const std::vector<Term>& target_summary,
         const HomomorphismOptions& options)
      : source_(source),
        target_facts_(target_facts),
        target_summary_(target_summary),
        options_(options) {
    by_relation_.resize(NumRelations());
    for (size_t i = 0; i < target_facts_.size(); ++i) {
      by_relation_[target_facts_[i].relation].push_back(i);
      // Positional posting lists: (relation, column, term) -> facts. These
      // turn candidate enumeration for a pattern with any constant or
      // already-bound variable from a relation scan into a lookup — the
      // difference between minutes and milliseconds on 10^5-conjunct chase
      // prefixes.
      const Fact& f = target_facts_[i];
      for (uint32_t col = 0; col < f.terms.size(); ++col) {
        positions_[PosKey{f.relation, col, f.terms[col]}].push_back(i);
      }
    }
  }

  std::optional<Homomorphism> Run() {
    if (options_.injective) {
      // Source constants map to themselves; a variable mapping onto such a
      // constant would break injectivity on the source's term set.
      for (const Fact& f : source_.conjuncts()) {
        for (Term t : f.terms) {
          if (t.is_constant()) used_images_.insert(t);
        }
      }
      for (Term t : source_.summary()) {
        if (t.is_constant()) used_images_.insert(t);
      }
    }
    // Pin the summary row: source summary maps pointwise onto the target
    // summary. Constants must match themselves.
    const auto& src_summary = source_.summary();
    if (src_summary.size() != target_summary_.size()) return std::nullopt;
    for (size_t i = 0; i < src_summary.size(); ++i) {
      if (!Bind(src_summary[i], target_summary_[i])) return std::nullopt;
    }
    images_.assign(source_.conjuncts().size(), SIZE_MAX);
    assigned_.assign(source_.conjuncts().size(), false);
    if (!Search(0)) return std::nullopt;
    Homomorphism h;
    h.mapping = binding_;
    h.conjunct_images = images_;
    return h;
  }

 private:
  size_t NumRelations() const {
    size_t n = source_.catalog().num_relations();
    return n;
  }

  // Attempts to record t -> image; false on conflict (or non-injectivity in
  // injective mode). Constants only map to themselves.
  bool Bind(Term t, Term image) {
    if (t.is_constant()) return t == image;
    auto it = binding_.find(t);
    if (it != binding_.end()) return it->second == image;
    if (options_.injective) {
      if (used_images_.count(image) > 0) return false;
      used_images_.insert(image);
    }
    binding_.emplace(t, image);
    trail_.push_back(t);
    return true;
  }

  void UndoTo(size_t mark) {
    while (trail_.size() > mark) {
      Term t = trail_.back();
      trail_.pop_back();
      if (options_.injective) used_images_.erase(binding_[t]);
      binding_.erase(t);
    }
  }

  // Can the source conjunct map onto the target fact under current binding?
  bool Compatible(const Fact& pattern, const Fact& fact) const {
    if (pattern.relation != fact.relation ||
        pattern.terms.size() != fact.terms.size()) {
      return false;
    }
    // Check constants and bound variables; also repeated variables within
    // the pattern must match equal target positions.
    std::unordered_map<Term, Term> local;
    for (size_t i = 0; i < pattern.terms.size(); ++i) {
      Term p = pattern.terms[i];
      Term f = fact.terms[i];
      if (p.is_constant()) {
        if (p != f) return false;
        continue;
      }
      auto bound = binding_.find(p);
      if (bound != binding_.end()) {
        if (bound->second != f) return false;
        continue;
      }
      auto [it, inserted] = local.emplace(p, f);
      if (!inserted && it->second != f) return false;
    }
    return true;
  }

  // The tightest available pre-filtered candidate list for a pattern: the
  // smallest posting list over its constant / bound-variable positions, or
  // the whole relation when every position is a free variable. Entries
  // still need a Compatible() check.
  const std::vector<size_t>& Candidates(const Fact& pattern) const {
    const std::vector<size_t>* best = &by_relation_[pattern.relation];
    for (uint32_t col = 0; col < pattern.terms.size(); ++col) {
      Term p = pattern.terms[col];
      Term pinned = Term::Invalid();
      if (p.is_constant()) {
        pinned = p;
      } else {
        auto it = binding_.find(p);
        if (it != binding_.end()) pinned = it->second;
      }
      if (!pinned.is_valid()) continue;
      auto lists = positions_.find(PosKey{pattern.relation, col, pinned});
      if (lists == positions_.end()) return kEmptyList;
      if (lists->second.size() < best->size()) best = &lists->second;
    }
    return *best;
  }

  // Number of candidate target facts for the source conjunct, capped at
  // `cap` for speed.
  size_t CountCandidates(size_t conjunct_index, size_t cap) const {
    const Fact& pattern = source_.conjuncts()[conjunct_index];
    size_t count = 0;
    for (size_t fi : Candidates(pattern)) {
      if (Compatible(pattern, target_facts_[fi])) {
        if (++count >= cap) return count;
      }
    }
    return count;
  }

  bool Search(size_t depth) {
    if (options_.max_nodes != 0 && ++nodes_ > options_.max_nodes) {
      exhausted_ = true;
      return false;
    }
    if (depth == source_.conjuncts().size()) return true;
    // Most-constrained-first: pick the unassigned conjunct with the fewest
    // compatible target facts. The count is capped: the heuristic needs
    // "which is smallest", not exact sizes, and uncapped counting costs a
    // relation scan per conjunct per node on large chase prefixes.
    constexpr size_t kCountCap = 32;
    size_t best = SIZE_MAX;
    size_t best_count = SIZE_MAX;
    for (size_t i = 0; i < source_.conjuncts().size(); ++i) {
      if (assigned_[i]) continue;
      size_t c = CountCandidates(i, std::min(best_count, kCountCap));
      if (c < best_count) {
        best_count = c;
        best = i;
        if (c == 0) return false;  // dead end
      }
    }
    assert(best != SIZE_MAX);
    const Fact& pattern = source_.conjuncts()[best];
    assigned_[best] = true;
    for (size_t fi : Candidates(pattern)) {
      const Fact& fact = target_facts_[fi];
      if (!Compatible(pattern, fact)) continue;
      size_t mark = trail_.size();
      bool ok = true;
      for (size_t i = 0; i < pattern.terms.size() && ok; ++i) {
        ok = Bind(pattern.terms[i], fact.terms[i]);
      }
      if (ok) {
        images_[best] = fi;
        if (Search(depth + 1)) return true;
      }
      UndoTo(mark);
    }
    assigned_[best] = false;
    return false;
  }

  struct PosKey {
    RelationId relation;
    uint32_t column;
    Term term;

    friend bool operator==(const PosKey& a, const PosKey& b) {
      return a.relation == b.relation && a.column == b.column &&
             a.term == b.term;
    }
  };
  struct PosKeyHash {
    size_t operator()(const PosKey& k) const {
      return HashCombine(
          HashCombine(static_cast<size_t>(k.relation) + 0x9e3779b9,
                      static_cast<size_t>(k.column)),
          k.term.hash());
    }
  };

  const ConjunctiveQuery& source_;
  const std::vector<Fact>& target_facts_;
  const std::vector<Term>& target_summary_;
  const HomomorphismOptions& options_;

  static const std::vector<size_t> kEmptyList;

  std::vector<std::vector<size_t>> by_relation_;
  std::unordered_map<PosKey, std::vector<size_t>, PosKeyHash> positions_;
  std::unordered_map<Term, Term> binding_;
  std::unordered_set<Term> used_images_;
  std::vector<Term> trail_;
  std::vector<size_t> images_;
  std::vector<bool> assigned_;
  size_t nodes_ = 0;
  bool exhausted_ = false;
};

const std::vector<size_t> Solver::kEmptyList;

}  // namespace

std::optional<Homomorphism> FindHomomorphism(
    const ConjunctiveQuery& source, const std::vector<Fact>& target_facts,
    const std::vector<Term>& target_summary,
    const HomomorphismOptions& options) {
  if (source.is_empty_query()) return std::nullopt;
  return Solver(source, target_facts, target_summary, options).Run();
}

std::optional<Homomorphism> FindQueryHomomorphism(
    const ConjunctiveQuery& source, const ConjunctiveQuery& target,
    const HomomorphismOptions& options) {
  return FindHomomorphism(source, target.conjuncts(), target.summary(),
                          options);
}

bool QueriesIsomorphic(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
  if (a.is_empty_query() != b.is_empty_query()) return false;
  if (a.is_empty_query()) return a.summary() == b.summary();
  if (a.conjuncts().size() != b.conjuncts().size()) return false;
  if (a.summary().size() != b.summary().size()) return false;
  HomomorphismOptions inj;
  inj.injective = true;
  return FindQueryHomomorphism(a, b, inj).has_value() &&
         FindQueryHomomorphism(b, a, inj).has_value();
}

}  // namespace cqchase
