// Conjunctive-query minimization under dependencies — the optimization
// application motivating the paper (a query is *non-minimal* if some proper
// subquery is equivalent to it under Σ; e.g. the intro's Q1/Q2 pair, where
// the IND EMP[dept] ⊆ DEP[dept] makes the DEP conjunct redundant).
//
// Removing a conjunct only weakens a query (Q ⊆ Q−c always), so Q−c is
// equivalent to Q under Σ iff Σ ⊨ Q−c ⊆ Q. MinimizeQuery greedily removes
// removable conjuncts until none remains; the result is a Σ-core of Q.
#ifndef CQCHASE_CORE_MINIMIZE_H_
#define CQCHASE_CORE_MINIMIZE_H_

#include "core/containment.h"
#include "cq/query.h"
#include "deps/dependency_set.h"

namespace cqchase {

struct MinimizeReport {
  ConjunctiveQuery query;        // the minimized query
  size_t removed_conjuncts = 0;  // how many conjuncts were dropped
  size_t containment_checks = 0;
};

// True iff Q is non-minimal under Σ: some single conjunct can be removed
// while preserving Σ-equivalence.
Result<bool> IsNonMinimal(const ConjunctiveQuery& q, const DependencySet& deps,
                          SymbolTable& symbols,
                          const ContainmentOptions& options = {});

// Greedily removes redundant conjuncts (first-removable-first, restarting
// after each removal) until the query is minimal under Σ.
Result<MinimizeReport> MinimizeQuery(const ConjunctiveQuery& q,
                                     const DependencySet& deps,
                                     SymbolTable& symbols,
                                     const ContainmentOptions& options = {});

}  // namespace cqchase

#endif  // CQCHASE_CORE_MINIMIZE_H_
