#include "core/containment.h"

#include <algorithm>
#include <limits>

#include "base/string_util.h"

namespace cqchase {

uint64_t Theorem2LevelBound(size_t q_prime_size, size_t sigma_size,
                            size_t max_width) {
  if (sigma_size == 0) return 0;
  const uint64_t kMax = std::numeric_limits<uint64_t>::max();
  // (W+1)^W with saturation.
  uint64_t pow = 1;
  for (size_t i = 0; i < max_width; ++i) {
    if (pow > kMax / (max_width + 1)) return kMax;
    pow *= (max_width + 1);
  }
  uint64_t out = static_cast<uint64_t>(q_prime_size);
  if (out != 0 && sigma_size > kMax / out) return kMax;
  out *= sigma_size;
  if (out != 0 && pow > kMax / out) return kMax;
  return out * pow;
}

namespace {

// Shapes of Σ the decision procedure is complete for.
enum class SigmaShape { kEmpty, kFdsOnly, kIndsOnly, kKeyBased, kGeneral };

SigmaShape ClassifySigma(const DependencySet& deps, const Catalog& catalog) {
  if (deps.empty()) return SigmaShape::kEmpty;
  if (deps.ContainsOnlyFds()) return SigmaShape::kFdsOnly;
  if (deps.ContainsOnlyInds()) return SigmaShape::kIndsOnly;
  if (deps.IsKeyBased(catalog)) return SigmaShape::kKeyBased;
  return SigmaShape::kGeneral;
}

// Levels of the chase facts actually used by a homomorphism's image.
uint32_t WitnessMaxLevel(const Homomorphism& hom,
                         const std::vector<const ChaseConjunct*>& alive) {
  uint32_t max_level = 0;
  for (size_t fi : hom.conjunct_images) {
    if (fi < alive.size()) max_level = std::max(max_level, alive[fi]->level);
  }
  return max_level;
}

}  // namespace

Result<ContainmentReport> CheckContainment(const ConjunctiveQuery& q,
                                           const ConjunctiveQuery& q_prime,
                                           const DependencySet& deps,
                                           SymbolTable& symbols,
                                           const ContainmentOptions& options) {
  CQCHASE_RETURN_IF_ERROR(q.Validate());
  CQCHASE_RETURN_IF_ERROR(q_prime.Validate());
  if (q.summary().size() != q_prime.summary().size()) {
    return Status::InvalidArgument(
        "queries must have the same output arity for containment");
  }

  ContainmentReport report;
  report.level_bound = Theorem2LevelBound(q_prime.conjuncts().size(),
                                          deps.size(), deps.MaxIndWidth());

  // Q' contradictory: Q ⊆ Q' iff Q is also empty on all Σ-databases, i.e.
  // iff chasing Q yields the empty query. Q contradictory: trivially
  // contained. Both fall out of the main loop below except the Q'-empty
  // case, which we special-case (no homomorphism into anything exists from
  // an empty-marked query's conjuncts; containment semantics differ).
  const SigmaShape shape = ClassifySigma(deps, q.catalog());
  if (shape == SigmaShape::kGeneral && !options.allow_semidecision) {
    return Status::Unimplemented(
        "containment for general FD+IND sets is open (paper Section 5); set "
        "options.allow_semidecision for a sound semi-decision");
  }

  Chase chase(&q.catalog(), &symbols, &deps, options.variant, options.limits);
  CQCHASE_RETURN_IF_ERROR(chase.Init(q));

  // The decision level cap: Lemma 5's bound for the complete cases, the
  // configured limit otherwise.
  const uint64_t bound = report.level_bound;
  const bool bound_is_complete =
      shape != SigmaShape::kGeneral;  // Lemma 5 applies

  uint32_t level = 0;
  while (true) {
    CQCHASE_ASSIGN_OR_RETURN(ChaseOutcome outcome,
                             chase.ExpandToLevel(level));
    report.chase_outcome = outcome;
    report.chase_conjuncts = chase.AliveConjuncts().size();
    report.chase_levels = chase.MaxAliveLevel();

    if (outcome == ChaseOutcome::kEmptyQuery) {
      // Q is unsatisfiable under Σ: Q(D) = ∅ for every Σ-database, so Q is
      // contained in any Q' of matching arity.
      report.contained = true;
      return report;
    }

    if (!q_prime.is_empty_query()) {
      std::vector<const ChaseConjunct*> alive = chase.AliveConjuncts();
      std::vector<Fact> facts;
      facts.reserve(alive.size());
      for (const ChaseConjunct* c : alive) facts.push_back(c->fact);
      std::optional<Homomorphism> hom =
          FindHomomorphism(q_prime, facts, chase.summary());
      if (hom.has_value()) {
        report.contained = true;
        report.witness_max_level = WitnessMaxLevel(*hom, alive);
        report.witness = std::move(hom);
        return report;
      }
    }

    if (outcome == ChaseOutcome::kSaturated) {
      report.contained = false;
      return report;
    }
    if (bound_is_complete && level >= bound) {
      // Lemma 5: any homomorphism could have been remapped into the prefix
      // of level <= bound; none exists there, so none exists at all.
      report.contained = false;
      return report;
    }
    if (level >= options.limits.max_level) {
      return Status::ResourceExhausted(StrCat(
          "containment undecided at chase level ", level, " (bound ",
          bound, ", max_level ", options.limits.max_level, ")"));
    }
    uint32_t next = level + options.level_stride;
    level = std::min<uint64_t>(
        std::min<uint64_t>(next, options.limits.max_level),
        bound_is_complete ? std::max<uint64_t>(bound, 1) : next);
  }
}

Result<bool> CheckEquivalence(const ConjunctiveQuery& q,
                              const ConjunctiveQuery& q_prime,
                              const DependencySet& deps, SymbolTable& symbols,
                              const ContainmentOptions& options) {
  CQCHASE_ASSIGN_OR_RETURN(ContainmentReport forward,
                           CheckContainment(q, q_prime, deps, symbols, options));
  if (!forward.contained) return false;
  CQCHASE_ASSIGN_OR_RETURN(ContainmentReport backward,
                           CheckContainment(q_prime, q, deps, symbols, options));
  return backward.contained;
}

}  // namespace cqchase
