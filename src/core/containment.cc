#include "core/containment.h"

#include <limits>
#include <utility>

#include "engine/engine.h"

namespace cqchase {

uint64_t Theorem2LevelBound(size_t q_prime_size, size_t sigma_size,
                            size_t max_width) {
  if (sigma_size == 0) return 0;
  const uint64_t kMax = std::numeric_limits<uint64_t>::max();
  // (W+1)^W with saturation.
  uint64_t pow = 1;
  for (size_t i = 0; i < max_width; ++i) {
    if (pow > kMax / (max_width + 1)) return kMax;
    pow *= (max_width + 1);
  }
  uint64_t out = static_cast<uint64_t>(q_prime_size);
  if (out != 0 && sigma_size > kMax / out) return kMax;
  out *= sigma_size;
  if (out != 0 && pow > kMax / out) return kMax;
  return out * pow;
}

// The decision procedure itself lives in engine/engine.cc
// (ContainmentEngine::DecideByChase and friends); these free functions are
// the stateless compatibility surface. They run a throwaway engine with
// caching off and streaming routing off, which reproduces the historical
// behavior — including the witness homomorphism in the report — with one
// deliberate improvement: a run whose chase budget trips mid-expansion now
// searches the partial prefix for a witness before erroring, so some calls
// that used to return kResourceExhausted return a sound contained=true
// instead. Callers that issue many related checks should hold a
// ContainmentEngine instead and let its memoization work.

Result<ContainmentReport> CheckContainment(const ConjunctiveQuery& q,
                                           const ConjunctiveQuery& q_prime,
                                           const DependencySet& deps,
                                           SymbolTable& symbols,
                                           const ContainmentOptions& options) {
  EngineConfig config;
  config.containment = options;
  config.enable_cache = false;
  config.route_streaming_single_conjunct = false;
  ContainmentEngine engine(&q.catalog(), &symbols, config);
  CQCHASE_ASSIGN_OR_RETURN(EngineVerdict verdict,
                           engine.Check(q, q_prime, deps));
  return std::move(verdict.report);
}

Result<bool> CheckEquivalence(const ConjunctiveQuery& q,
                              const ConjunctiveQuery& q_prime,
                              const DependencySet& deps, SymbolTable& symbols,
                              const ContainmentOptions& options) {
  CQCHASE_ASSIGN_OR_RETURN(ContainmentReport forward,
                           CheckContainment(q, q_prime, deps, symbols, options));
  if (!forward.contained) return false;
  CQCHASE_ASSIGN_OR_RETURN(ContainmentReport backward,
                           CheckContainment(q_prime, q, deps, symbols, options));
  return backward.contained;
}

}  // namespace cqchase
