// Text syntax for dependencies.
//
//   FD :  "R: A B -> C"          attributes by name, or 1-based positions
//   IND:  "R[X1,...,Xk] <= S[Y1,...,Yk]"   ("<=" or the UTF-8 "⊆")
//
// Positional references use 1-based column numbers, matching the paper's
// notation (e.g. "R[1,3] <= S[1,2]", "R: 2 -> 1").
#ifndef CQCHASE_DEPS_DEPS_PARSER_H_
#define CQCHASE_DEPS_DEPS_PARSER_H_

#include <string_view>

#include "deps/dependency_set.h"

namespace cqchase {

// Parses a single FD or IND.
Result<FunctionalDependency> ParseFd(const Catalog& catalog,
                                     std::string_view text);
Result<InclusionDependency> ParseInd(const Catalog& catalog,
                                     std::string_view text);

// Parses a ';'- or newline-separated list of dependencies, auto-detecting FD
// vs IND per entry. Blank entries and '#'-comment lines are skipped.
Result<DependencySet> ParseDependencies(const Catalog& catalog,
                                        std::string_view text);

}  // namespace cqchase

#endif  // CQCHASE_DEPS_DEPS_PARSER_H_
