// DependencySet: the set Σ of FDs and INDs a containment problem is posed
// against, plus the structural classifications the paper's algorithms key on:
//
//  * IND-only           — Σ contains no FDs (Theorem 2 case (i));
//  * width-1            — every IND has width 1 (Theorem 3 case (i));
//  * key-based          — Section 2's definition:
//      (a) for each relation R with FDs, all FDs R: Z -> A share one
//          left-hand side Z, and every attribute of R outside Z is the rhs
//          of some FD for R (so Z is a key and the FDs cover R);
//      (b) each IND R[X] ⊆ S[Y] has Y contained in the FD left-hand side
//          (key) of S, and X disjoint from the FD left-hand side of R.
//
// The classification functions are pure queries; they do not mutate Σ.
#ifndef CQCHASE_DEPS_DEPENDENCY_SET_H_
#define CQCHASE_DEPS_DEPENDENCY_SET_H_

#include <optional>
#include <string>
#include <vector>

#include "deps/dependency.h"
#include "schema/catalog.h"

namespace cqchase {

class DependencySet {
 public:
  DependencySet() = default;

  // Validates against `catalog` before inserting; duplicates are ignored.
  Status AddFd(const Catalog& catalog, FunctionalDependency fd);
  Status AddInd(const Catalog& catalog, InclusionDependency ind);

  const std::vector<FunctionalDependency>& fds() const { return fds_; }
  const std::vector<InclusionDependency>& inds() const { return inds_; }

  size_t size() const { return fds_.size() + inds_.size(); }
  bool empty() const { return fds_.empty() && inds_.empty(); }

  bool ContainsOnlyInds() const { return fds_.empty(); }
  bool ContainsOnlyFds() const { return inds_.empty(); }

  // Maximum IND width W; 0 when there are no INDs.
  size_t MaxIndWidth() const;

  // True iff every IND has width exactly 1 (vacuously true without INDs).
  bool AllIndsWidthOne() const;

  // True iff Σ is key-based per the paper's definition. When false and
  // `why` is non-null, a one-line explanation is stored there.
  bool IsKeyBased(const Catalog& catalog, std::string* why = nullptr) const;

  // For a key-based Σ: the common FD left-hand side (the key) of `relation`,
  // or nullopt if the relation has no FDs in Σ.
  std::optional<std::vector<uint32_t>> KeyOf(RelationId relation) const;

  // Restrictions Σ[F] (FDs only) and Σ[I] (INDs only), used by the Lemma 2
  // factorization R-chase_Σ(Q) = R-chase_Σ[I](chase_Σ[F](Q)).
  DependencySet FdsOnly() const;
  DependencySet IndsOnly() const;

  // The IND graph has a vertex per relation and an arc lhs -> rhs per IND.
  // When it is acyclic, every chase (O or R) of every query terminates: a
  // conjunct at level L sits at the end of an L-arc path, so L is bounded by
  // the longest path. Returns that longest path length, or nullopt when the
  // graph has a cycle (the chase may then be infinite — Figure 1's Σ).
  std::optional<uint32_t> MaxIndPathLength(const Catalog& catalog) const;
  bool IndGraphAcyclic(const Catalog& catalog) const {
    return MaxIndPathLength(catalog).has_value();
  }

  std::string ToString(const Catalog& catalog) const;

 private:
  std::vector<FunctionalDependency> fds_;
  std::vector<InclusionDependency> inds_;
};

}  // namespace cqchase

#endif  // CQCHASE_DEPS_DEPENDENCY_SET_H_
