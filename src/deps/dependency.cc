#include "deps/dependency.h"

#include <algorithm>

#include "base/string_util.h"

namespace cqchase {

void FunctionalDependency::Normalize() {
  std::sort(lhs.begin(), lhs.end());
  lhs.erase(std::unique(lhs.begin(), lhs.end()), lhs.end());
}

std::string FunctionalDependency::ToString(const Catalog& catalog) const {
  const RelationSchema& r = catalog.relation(relation);
  return StrCat(r.name(), ": ",
                StrJoinMapped(lhs, " ",
                              [&](uint32_t c) { return r.attribute(c); }),
                " -> ", r.attribute(rhs));
}

std::string InclusionDependency::ToString(const Catalog& catalog) const {
  const RelationSchema& r = catalog.relation(lhs_relation);
  const RelationSchema& s = catalog.relation(rhs_relation);
  return StrCat(
      r.name(), "[",
      StrJoinMapped(lhs_columns, ",",
                    [&](uint32_t c) { return r.attribute(c); }),
      "] <= ", s.name(), "[",
      StrJoinMapped(rhs_columns, ",",
                    [&](uint32_t c) { return s.attribute(c); }),
      "]");
}

Status ValidateFd(const FunctionalDependency& fd, const Catalog& catalog) {
  if (fd.relation >= catalog.num_relations()) {
    return Status::InvalidArgument("FD references unknown relation");
  }
  const size_t arity = catalog.arity(fd.relation);
  if (fd.lhs.empty()) {
    return Status::InvalidArgument("FD left-hand side must be non-empty");
  }
  for (uint32_t c : fd.lhs) {
    if (c >= arity) {
      return Status::InvalidArgument(
          StrCat("FD lhs column ", c, " out of range for relation '",
                 catalog.relation(fd.relation).name(), "'"));
    }
  }
  for (size_t i = 1; i < fd.lhs.size(); ++i) {
    if (fd.lhs[i - 1] >= fd.lhs[i]) {
      return Status::InvalidArgument(
          "FD left-hand side must be sorted and duplicate-free "
          "(call Normalize())");
    }
  }
  if (fd.rhs >= arity) {
    return Status::InvalidArgument(
        StrCat("FD rhs column ", fd.rhs, " out of range for relation '",
               catalog.relation(fd.relation).name(), "'"));
  }
  return Status::OK();
}

Status ValidateInd(const InclusionDependency& ind, const Catalog& catalog) {
  if (ind.lhs_relation >= catalog.num_relations() ||
      ind.rhs_relation >= catalog.num_relations()) {
    return Status::InvalidArgument("IND references unknown relation");
  }
  if (ind.lhs_columns.empty()) {
    return Status::InvalidArgument("IND sides must be non-empty");
  }
  if (ind.lhs_columns.size() != ind.rhs_columns.size()) {
    return Status::InvalidArgument("IND sides must have equal width");
  }
  auto check_side = [&](RelationId rel, const std::vector<uint32_t>& cols) {
    const size_t arity = catalog.arity(rel);
    for (uint32_t c : cols) {
      if (c >= arity) {
        return Status::InvalidArgument(
            StrCat("IND column ", c, " out of range for relation '",
                   catalog.relation(rel).name(), "'"));
      }
    }
    for (size_t i = 0; i < cols.size(); ++i) {
      for (size_t j = i + 1; j < cols.size(); ++j) {
        if (cols[i] == cols[j]) {
          return Status::InvalidArgument(
              "IND side must not repeat a column");
        }
      }
    }
    return Status::OK();
  };
  CQCHASE_RETURN_IF_ERROR(check_side(ind.lhs_relation, ind.lhs_columns));
  CQCHASE_RETURN_IF_ERROR(check_side(ind.rhs_relation, ind.rhs_columns));
  return Status::OK();
}

}  // namespace cqchase
