// Functional and inclusion dependencies (Section 2 of the paper).
//
//   FD:  R: Z -> A       (Z a set of attributes of R, A one attribute of R)
//   IND: R[X] ⊆ S[Y]     (X, Y equal-length ordered attribute lists; the
//                         common length is the *width* of the IND)
//
// Attributes are stored as column indices against a Catalog. FD left-hand
// sides are kept sorted; IND sides preserve order (the paper's INDs are
// ordered lists — R[1,3] ⊆ S[1,2] maps column 1 to 1 and 3 to 2).
#ifndef CQCHASE_DEPS_DEPENDENCY_H_
#define CQCHASE_DEPS_DEPENDENCY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "schema/catalog.h"

namespace cqchase {

struct FunctionalDependency {
  RelationId relation = 0;
  std::vector<uint32_t> lhs;  // sorted, de-duplicated column indices (Z)
  uint32_t rhs = 0;           // column index (A)

  // Canonicalizes lhs (sort + unique). Call after manual construction.
  void Normalize();

  // Renders against the catalog, e.g. "EMP: emp -> sal".
  std::string ToString(const Catalog& catalog) const;

  friend bool operator==(const FunctionalDependency& a,
                         const FunctionalDependency& b) {
    return a.relation == b.relation && a.lhs == b.lhs && a.rhs == b.rhs;
  }
};

struct InclusionDependency {
  RelationId lhs_relation = 0;
  std::vector<uint32_t> lhs_columns;  // X, ordered
  RelationId rhs_relation = 0;
  std::vector<uint32_t> rhs_columns;  // Y, ordered, same length as X

  size_t width() const { return lhs_columns.size(); }

  // Renders against the catalog, e.g. "EMP[dept] <= DEP[dept]".
  std::string ToString(const Catalog& catalog) const;

  friend bool operator==(const InclusionDependency& a,
                         const InclusionDependency& b) {
    return a.lhs_relation == b.lhs_relation && a.lhs_columns == b.lhs_columns &&
           a.rhs_relation == b.rhs_relation && a.rhs_columns == b.rhs_columns;
  }
};

// Validation against a catalog: column indices in range, no duplicate columns
// within one IND side, equal side lengths, non-empty sides.
Status ValidateFd(const FunctionalDependency& fd, const Catalog& catalog);
Status ValidateInd(const InclusionDependency& ind, const Catalog& catalog);

}  // namespace cqchase

#endif  // CQCHASE_DEPS_DEPENDENCY_H_
