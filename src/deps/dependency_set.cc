#include "deps/dependency_set.h"

#include <algorithm>

#include "base/string_util.h"

namespace cqchase {

Status DependencySet::AddFd(const Catalog& catalog, FunctionalDependency fd) {
  fd.Normalize();
  CQCHASE_RETURN_IF_ERROR(ValidateFd(fd, catalog));
  if (std::find(fds_.begin(), fds_.end(), fd) == fds_.end()) {
    fds_.push_back(std::move(fd));
  }
  return Status::OK();
}

Status DependencySet::AddInd(const Catalog& catalog, InclusionDependency ind) {
  CQCHASE_RETURN_IF_ERROR(ValidateInd(ind, catalog));
  if (std::find(inds_.begin(), inds_.end(), ind) == inds_.end()) {
    inds_.push_back(std::move(ind));
  }
  return Status::OK();
}

size_t DependencySet::MaxIndWidth() const {
  size_t w = 0;
  for (const auto& ind : inds_) w = std::max(w, ind.width());
  return w;
}

bool DependencySet::AllIndsWidthOne() const {
  for (const auto& ind : inds_) {
    if (ind.width() != 1) return false;
  }
  return true;
}

std::optional<std::vector<uint32_t>> DependencySet::KeyOf(
    RelationId relation) const {
  for (const auto& fd : fds_) {
    if (fd.relation == relation) return fd.lhs;
  }
  return std::nullopt;
}

bool DependencySet::IsKeyBased(const Catalog& catalog, std::string* why) const {
  auto fail = [&](std::string msg) {
    if (why != nullptr) *why = std::move(msg);
    return false;
  };

  // Condition (a): per relation, one common lhs Z; every attribute outside Z
  // is the rhs of some FD.
  for (RelationId r = 0; r < catalog.num_relations(); ++r) {
    std::optional<std::vector<uint32_t>> key;
    std::vector<bool> covered(catalog.arity(r), false);
    bool has_fd = false;
    for (const auto& fd : fds_) {
      if (fd.relation != r) continue;
      has_fd = true;
      if (!key.has_value()) {
        key = fd.lhs;
      } else if (*key != fd.lhs) {
        return fail(StrCat("relation '", catalog.relation(r).name(),
                           "' has FDs with different left-hand sides"));
      }
      covered[fd.rhs] = true;
    }
    if (!has_fd) continue;
    for (uint32_t c : *key) covered[c] = true;
    for (uint32_t c = 0; c < covered.size(); ++c) {
      if (!covered[c]) {
        return fail(StrCat("attribute '", catalog.relation(r).attribute(c),
                           "' of relation '", catalog.relation(r).name(),
                           "' is neither in the key nor the rhs of an FD"));
      }
    }
  }

  // Condition (b): IND rhs ⊆ key(S); IND lhs disjoint from key(R). The
  // paper's phrasing "the left-hand side of an FD for the relation S"
  // presupposes S has FDs; we read (b) as requiring that.
  for (const auto& ind : inds_) {
    std::optional<std::vector<uint32_t>> rhs_key = KeyOf(ind.rhs_relation);
    if (!rhs_key.has_value()) {
      return fail(StrCat("IND ", ind.ToString(catalog),
                         ": right-hand relation has no FDs (no key)"));
    }
    for (uint32_t c : ind.rhs_columns) {
      if (std::find(rhs_key->begin(), rhs_key->end(), c) == rhs_key->end()) {
        return fail(StrCat("IND ", ind.ToString(catalog),
                           ": rhs column not contained in the key of '",
                           catalog.relation(ind.rhs_relation).name(), "'"));
      }
    }
    std::optional<std::vector<uint32_t>> lhs_key = KeyOf(ind.lhs_relation);
    if (lhs_key.has_value()) {
      for (uint32_t c : ind.lhs_columns) {
        if (std::find(lhs_key->begin(), lhs_key->end(), c) !=
            lhs_key->end()) {
          return fail(StrCat("IND ", ind.ToString(catalog),
                             ": lhs column intersects the key of '",
                             catalog.relation(ind.lhs_relation).name(), "'"));
        }
      }
    }
  }
  return true;
}

DependencySet DependencySet::FdsOnly() const {
  DependencySet out;
  out.fds_ = fds_;
  return out;
}

DependencySet DependencySet::IndsOnly() const {
  DependencySet out;
  out.inds_ = inds_;
  return out;
}

std::optional<uint32_t> DependencySet::MaxIndPathLength(
    const Catalog& catalog) const {
  const size_t n = catalog.num_relations();
  std::vector<std::vector<size_t>> adj(n);
  for (const InclusionDependency& ind : inds_) {
    adj[ind.lhs_relation].push_back(ind.rhs_relation);
  }
  // Longest path via DFS with cycle detection (colors: 0 new, 1 on stack,
  // 2 done). depth[v] = longest path starting at v.
  std::vector<int> color(n, 0);
  std::vector<uint32_t> depth(n, 0);
  bool cyclic = false;
  // Iterative DFS to stay safe on deep graphs.
  struct Frame {
    size_t v;
    size_t next_child;
  };
  for (size_t root = 0; root < n && !cyclic; ++root) {
    if (color[root] != 0) continue;
    std::vector<Frame> stack{{root, 0}};
    color[root] = 1;
    while (!stack.empty() && !cyclic) {
      Frame& f = stack.back();
      if (f.next_child < adj[f.v].size()) {
        size_t w = adj[f.v][f.next_child++];
        if (color[w] == 1) {
          cyclic = true;
        } else if (color[w] == 0) {
          color[w] = 1;
          stack.push_back({w, 0});
        }
      } else {
        color[f.v] = 2;
        uint32_t best = 0;
        for (size_t w : adj[f.v]) {
          best = std::max(best, depth[w] + 1);
        }
        depth[f.v] = best;
        stack.pop_back();
      }
    }
  }
  if (cyclic) return std::nullopt;
  uint32_t longest = 0;
  for (size_t v = 0; v < n; ++v) longest = std::max(longest, depth[v]);
  return longest;
}

std::string DependencySet::ToString(const Catalog& catalog) const {
  std::vector<std::string> parts;
  parts.reserve(size());
  for (const auto& fd : fds_) parts.push_back(fd.ToString(catalog));
  for (const auto& ind : inds_) parts.push_back(ind.ToString(catalog));
  return StrJoin(parts, "; ");
}

}  // namespace cqchase
