#include "deps/deps_parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "base/string_util.h"

namespace cqchase {

namespace {

// Resolves an attribute token against a relation: a positive integer is a
// 1-based column position; anything else is an attribute name.
Result<uint32_t> ResolveColumn(const Catalog& catalog, RelationId rel,
                               std::string_view token) {
  std::string_view t = StripWhitespace(token);
  if (t.empty()) {
    return Status::InvalidArgument("empty attribute reference");
  }
  bool all_digits = true;
  for (char c : t) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      all_digits = false;
      break;
    }
  }
  const RelationSchema& schema = catalog.relation(rel);
  if (all_digits) {
    size_t pos = std::stoul(std::string(t));
    if (pos == 0 || pos > schema.arity()) {
      return Status::InvalidArgument(
          StrCat("column position ", pos, " out of range for relation '",
                 schema.name(), "'"));
    }
    return static_cast<uint32_t>(pos - 1);
  }
  std::optional<uint32_t> idx = schema.AttributeIndex(t);
  if (!idx.has_value()) {
    return Status::InvalidArgument(StrCat("unknown attribute '", t,
                                          "' of relation '", schema.name(),
                                          "'"));
  }
  return *idx;
}

Result<RelationId> ResolveRelation(const Catalog& catalog,
                                   std::string_view token) {
  std::string_view t = StripWhitespace(token);
  std::optional<RelationId> rel = catalog.FindRelation(t);
  if (!rel.has_value()) {
    return Status::InvalidArgument(StrCat("unknown relation '", t, "'"));
  }
  return *rel;
}

// Splits a whitespace-separated attribute list.
std::vector<std::string> SplitAttrList(std::string_view text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

// Parses one side of an IND: "R[A,B]" -> (relation, columns).
Result<std::pair<RelationId, std::vector<uint32_t>>> ParseIndSide(
    const Catalog& catalog, std::string_view text) {
  std::string_view t = StripWhitespace(text);
  size_t open = t.find('[');
  if (open == std::string_view::npos || t.back() != ']') {
    return Status::InvalidArgument(
        StrCat("expected 'R[cols]' in IND side, got '", t, "'"));
  }
  CQCHASE_ASSIGN_OR_RETURN(RelationId rel,
                           ResolveRelation(catalog, t.substr(0, open)));
  std::string_view cols_text = t.substr(open + 1, t.size() - open - 2);
  std::vector<uint32_t> cols;
  for (const std::string& tok : SplitAttrList(cols_text)) {
    CQCHASE_ASSIGN_OR_RETURN(uint32_t col, ResolveColumn(catalog, rel, tok));
    cols.push_back(col);
  }
  return std::make_pair(rel, std::move(cols));
}

}  // namespace

Result<FunctionalDependency> ParseFd(const Catalog& catalog,
                                     std::string_view text) {
  std::string_view t = StripWhitespace(text);
  size_t colon = t.find(':');
  if (colon == std::string_view::npos) {
    return Status::InvalidArgument(
        StrCat("expected 'R: lhs -> rhs' in FD, got '", t, "'"));
  }
  CQCHASE_ASSIGN_OR_RETURN(RelationId rel,
                           ResolveRelation(catalog, t.substr(0, colon)));
  std::string_view rest = t.substr(colon + 1);
  size_t arrow = rest.find("->");
  if (arrow == std::string_view::npos) {
    return Status::InvalidArgument(StrCat("missing '->' in FD '", t, "'"));
  }
  FunctionalDependency fd;
  fd.relation = rel;
  for (const std::string& tok : SplitAttrList(rest.substr(0, arrow))) {
    CQCHASE_ASSIGN_OR_RETURN(uint32_t col, ResolveColumn(catalog, rel, tok));
    fd.lhs.push_back(col);
  }
  std::vector<std::string> rhs_tokens = SplitAttrList(rest.substr(arrow + 2));
  if (rhs_tokens.size() != 1) {
    return Status::InvalidArgument(
        StrCat("FD right-hand side must be a single attribute in '", t, "'"));
  }
  CQCHASE_ASSIGN_OR_RETURN(fd.rhs, ResolveColumn(catalog, rel, rhs_tokens[0]));
  fd.Normalize();
  CQCHASE_RETURN_IF_ERROR(ValidateFd(fd, catalog));
  return fd;
}

Result<InclusionDependency> ParseInd(const Catalog& catalog,
                                     std::string_view text) {
  std::string t(StripWhitespace(text));
  // Accept "<=" or the UTF-8 subset-or-equal sign.
  size_t sep = t.find("<=");
  size_t sep_len = 2;
  if (sep == std::string::npos) {
    sep = t.find("\xe2\x8a\x86");  // ⊆
    sep_len = 3;
  }
  if (sep == std::string::npos) {
    return Status::InvalidArgument(
        StrCat("expected 'R[X] <= S[Y]' in IND, got '", t, "'"));
  }
  CQCHASE_ASSIGN_OR_RETURN(auto lhs,
                           ParseIndSide(catalog, t.substr(0, sep)));
  CQCHASE_ASSIGN_OR_RETURN(auto rhs,
                           ParseIndSide(catalog, t.substr(sep + sep_len)));
  InclusionDependency ind;
  ind.lhs_relation = lhs.first;
  ind.lhs_columns = std::move(lhs.second);
  ind.rhs_relation = rhs.first;
  ind.rhs_columns = std::move(rhs.second);
  CQCHASE_RETURN_IF_ERROR(ValidateInd(ind, catalog));
  return ind;
}

Result<DependencySet> ParseDependencies(const Catalog& catalog,
                                        std::string_view text) {
  DependencySet deps;
  std::string normalized(text);
  for (char& c : normalized) {
    if (c == '\n') c = ';';
  }
  for (const std::string& raw : StrSplit(normalized, ';')) {
    std::string_view entry = StripWhitespace(raw);
    if (entry.empty() || entry.front() == '#') continue;
    // Heuristic: an IND contains '[' before any ':'.
    size_t bracket = entry.find('[');
    size_t colon = entry.find(':');
    if (bracket != std::string_view::npos &&
        (colon == std::string_view::npos || bracket < colon)) {
      CQCHASE_ASSIGN_OR_RETURN(InclusionDependency ind,
                               ParseInd(catalog, entry));
      CQCHASE_RETURN_IF_ERROR(deps.AddInd(catalog, std::move(ind)));
    } else {
      CQCHASE_ASSIGN_OR_RETURN(FunctionalDependency fd,
                               ParseFd(catalog, entry));
      CQCHASE_RETURN_IF_ERROR(deps.AddFd(catalog, std::move(fd)));
    }
  }
  return deps;
}

}  // namespace cqchase
