// A string-keyed least-recently-used cache with O(1) lookup, insert and
// eviction: a doubly-linked recency list (front = most recent) plus a hash
// map from key to list node. Replaces the engine's former FIFO deques, whose
// eviction ignored reuse and whose erase-by-key was an O(n) scan.
//
// Not thread-safe; the ContainmentEngine serializes access under its own
// mutex. Capacity 0 disables storage entirely (Put is a no-op), which is how
// a cache knob is turned off without sprinkling conditionals at call sites.
#ifndef CQCHASE_ENGINE_LRU_CACHE_H_
#define CQCHASE_ENGINE_LRU_CACHE_H_

#include <cstddef>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

namespace cqchase {

template <typename Value>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  // Returns the value for `key` and marks it most-recently-used; nullptr on
  // miss. The pointer is invalidated by the next mutating call.
  Value* Get(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    recency_.splice(recency_.begin(), recency_, it->second);
    return &it->second->second;
  }

  // Inserts or overwrites `key`, marks it most-recently-used, and evicts
  // from the least-recently-used end until the capacity bound holds.
  void Put(const std::string& key, Value value) {
    if (capacity_ == 0) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      recency_.splice(recency_.begin(), recency_, it->second);
      return;
    }
    recency_.emplace_front(key, std::move(value));
    index_.emplace(key, recency_.begin());
    while (index_.size() > capacity_) {
      index_.erase(recency_.back().first);
      recency_.pop_back();
    }
  }

  void Clear() {
    recency_.clear();
    index_.clear();
  }

  // Membership probe that leaves recency untouched (Get would promote).
  bool Contains(const std::string& key) const {
    return index_.find(key) != index_.end();
  }

  // Empties the cache and returns every entry in recency order (front =
  // most recent). For bulk rewrites — a schema-delta migration retags the
  // drained entries and re-inserts the survivors back-to-front, which
  // reconstructs the original recency order exactly.
  std::list<std::pair<std::string, Value>> Drain() {
    std::list<std::pair<std::string, Value>> out;
    out.swap(recency_);
    index_.clear();
    return out;
  }

  size_t size() const { return index_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  std::list<std::pair<std::string, Value>> recency_;  // front = MRU
  std::unordered_map<std::string,
                     typename std::list<std::pair<std::string, Value>>::iterator>
      index_;
};

}  // namespace cqchase

#endif  // CQCHASE_ENGINE_LRU_CACHE_H_
