#include "engine/lineage.h"

#include <algorithm>
#include <utility>

#include "base/string_util.h"
#include "engine/canonical.h"

namespace cqchase {

LineageDelta MakeLineageDelta(const DependencySet& old_deps,
                              const DependencySet& new_deps) {
  LineageDelta ld;
  ld.delta = ComputeSigmaDelta(old_deps, new_deps);
  ld.old_sigma_key = CanonicalSigmaKey(old_deps);
  ld.new_sigma_key = CanonicalSigmaKey(new_deps);
  ld.old_sigma_fp = SigmaFingerprint(old_deps);
  ld.new_sigma_fp = SigmaFingerprint(new_deps);
  return ld;
}

std::string_view TaskKeySigmaSection(std::string_view task_key) {
  const size_t first = task_key.find('|');
  if (first == std::string_view::npos) return {};
  const size_t second = task_key.find('|', first + 1);
  if (second == std::string_view::npos) return {};
  return task_key.substr(first + 1, second - first - 1);
}

std::string RekeyTask(std::string_view task_key,
                      std::string_view new_sigma_section) {
  const size_t first = task_key.find('|');
  const size_t second = task_key.find('|', first + 1);
  std::string out;
  out.reserve(task_key.size() - (second - first - 1) +
              new_sigma_section.size());
  out.append(task_key.substr(0, first + 1));
  out.append(new_sigma_section);
  out.append(task_key.substr(second));
  return out;
}

RetagDecision RetagVerdictForDelta(const LineageDelta& ld,
                                   StoredVerdict& verdict) {
  if (ld.delta.empty()) return RetagDecision::kUntouched;
  const bool additions = !ld.delta.added.empty();
  // "A removed dependency was (or may have been) used": with lineage, probe
  // the recorded used-set; without it, any removal must be assumed used.
  bool removed_used = !ld.delta.removed.empty();
  if (removed_used && verdict.lineage_known) {
    removed_used = std::any_of(
        verdict.used_fps.begin(), verdict.used_fps.end(),
        [&](uint64_t fp) { return ld.delta.Removed(fp); });
  }

  RetagDecision decision;
  if (verdict.contained) {
    // Contained is antitone-threatened by removals (the chase shrinks) and
    // monotone-safe under additions (the chase only grows).
    if (removed_used) {
      decision = RetagDecision::kDrop;
    } else if (additions) {
      decision = RetagDecision::kKeepMonotone;
    } else {
      decision = RetagDecision::kKeepExact;  // untouched used-set, no growth
    }
  } else {
    // Not-contained is threatened by additions (new deps can complete a
    // homomorphism) and monotone-safe under removals: chase_{Σ'}(Q) ⊆
    // chase_Σ(Q) for Σ' ⊆ Σ, so "no homomorphism into the larger chase"
    // carries down. Exact only when the removals provably never fired.
    if (additions) {
      decision = RetagDecision::kDrop;
    } else if (verdict.lineage_known && !removed_used) {
      decision = RetagDecision::kKeepExact;
    } else {
      decision = RetagDecision::kKeepMonotone;
    }
  }

  if (decision == RetagDecision::kKeepExact) {
    // Lineage carries over unchanged: the used-set's fingerprints are
    // structural and every used dependency survived, so the set still
    // describes the (identical) chase under the new Σ. Confidence is left
    // alone — an exact keep is always lineage-backed (a nonempty delta
    // reaches this branch only through the lineage probes above), and
    // lineage-unknown monotone survivors can never re-earn kExact.
    verdict.sigma_fp = ld.new_sigma_fp;
    return decision;
  }
  if (decision == RetagDecision::kKeepMonotone) {
    verdict.sigma_fp = ld.new_sigma_fp;
    verdict.confidence =
        static_cast<uint8_t>(VerdictConfidence::kMonotoneBound);
    // The used-set described the pre-edit derivation; under the new Σ it is
    // no longer a sound over-approximation of anything. Dropping it makes
    // the next delta treat this entry as touched-by-any-removal, which is
    // exactly the conservative behavior monotone survivors need.
    verdict.lineage_known = false;
    verdict.used_fps.clear();
    verdict.used_fps.shrink_to_fit();
  }
  return decision;
}

RetagDecision ApplyVerdictDelta(const LineageDelta& ld,
                                const std::string& key,
                                StoredVerdict& verdict, std::string* rekeyed) {
  if (ld.empty()) return RetagDecision::kUntouched;
  if (TaskKeySigmaSection(key) != ld.old_sigma_key) {
    return RetagDecision::kUntouched;  // an entry of some other Σ
  }
  const RetagDecision decision = RetagVerdictForDelta(ld, verdict);
  if ((decision == RetagDecision::kKeepExact ||
       decision == RetagDecision::kKeepMonotone) &&
      rekeyed != nullptr) {
    *rekeyed = RekeyTask(key, ld.new_sigma_key);
  }
  return decision;
}

namespace {

void EncodeFps(const std::vector<uint64_t>& fps, std::string& out) {
  wire::PutU32(out, static_cast<uint32_t>(fps.size()));
  for (uint64_t fp : fps) wire::PutU64(out, fp);
}

Status DecodeFps(wire::ByteReader& reader, std::vector<uint64_t>* fps) {
  uint32_t count = 0;
  if (!reader.ReadU32(&count)) {
    return Status::InvalidArgument("truncated delta fingerprint count");
  }
  if (count > reader.remaining() / 8) {
    return Status::InvalidArgument(
        StrCat("delta fingerprint count ", count, " exceeds its bytes"));
  }
  fps->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!reader.ReadU64(&(*fps)[i])) {
      return Status::InvalidArgument("truncated delta fingerprints");
    }
  }
  return Status::OK();
}

}  // namespace

void EncodeLineageDelta(const LineageDelta& ld, std::string& out) {
  wire::PutString(out, ld.old_sigma_key);
  wire::PutString(out, ld.new_sigma_key);
  wire::PutU64(out, ld.old_sigma_fp);
  wire::PutU64(out, ld.new_sigma_fp);
  EncodeFps(ld.delta.added, out);
  EncodeFps(ld.delta.removed, out);
  EncodeFps(ld.delta.unchanged, out);
}

Status DecodeLineageDelta(wire::ByteReader& reader, LineageDelta* ld) {
  LineageDelta out;
  if (!reader.ReadString(&out.old_sigma_key) ||
      !reader.ReadString(&out.new_sigma_key) ||
      !reader.ReadU64(&out.old_sigma_fp) || !reader.ReadU64(&out.new_sigma_fp)) {
    return Status::InvalidArgument("truncated lineage delta");
  }
  CQCHASE_RETURN_IF_ERROR(DecodeFps(reader, &out.delta.added));
  CQCHASE_RETURN_IF_ERROR(DecodeFps(reader, &out.delta.removed));
  CQCHASE_RETURN_IF_ERROR(DecodeFps(reader, &out.delta.unchanged));
  // Removed() binary-searches; hostile bytes may arrive unsorted. Sorting
  // here (rather than trusting) keeps the membership probes correct no
  // matter who framed the message.
  std::sort(out.delta.added.begin(), out.delta.added.end());
  std::sort(out.delta.removed.begin(), out.delta.removed.end());
  std::sort(out.delta.unchanged.begin(), out.delta.unchanged.end());
  *ld = std::move(out);
  return Status::OK();
}

}  // namespace cqchase
