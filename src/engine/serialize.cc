#include "engine/serialize.h"

#include <utility>

#include "base/string_util.h"
#include "chase/chase.h"
#include "engine/canonical.h"
#include "engine/sigma_class.h"

namespace cqchase {

namespace wire {

bool ByteReader::ReadU8(uint8_t* v) {
  if (!ok_ || remaining() < 1) {
    ok_ = false;
    return false;
  }
  *v = static_cast<uint8_t>(bytes_[pos_++]);
  return true;
}

bool ByteReader::ReadU32(uint32_t* v) {
  if (!ok_ || remaining() < 4) {
    ok_ = false;
    return false;
  }
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return true;
}

bool ByteReader::ReadU64(uint64_t* v) {
  if (!ok_ || remaining() < 8) {
    ok_ = false;
    return false;
  }
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return true;
}

bool ByteReader::ReadString(std::string* v) {
  uint32_t len = 0;
  if (!ReadU32(&len)) return false;
  if (remaining() < len) {
    ok_ = false;
    return false;
  }
  v->assign(bytes_.data() + pos_, len);
  pos_ += len;
  return true;
}

bool ByteReader::ReadBytes(size_t n, std::string_view* v) {
  if (!ok_ || remaining() < n) {
    ok_ = false;
    return false;
  }
  *v = bytes_.substr(pos_, n);
  pos_ += n;
  return true;
}

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void PutFramed(std::string& out, std::string_view payload) {
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU64(out, Fnv1a64(payload));
  out.append(payload.data(), payload.size());
}

Status ReadFramed(ByteReader& reader, std::string* payload) {
  uint32_t size = 0;
  uint64_t checksum = 0;
  if (!reader.ReadU32(&size) || !reader.ReadU64(&checksum)) {
    return Status::InvalidArgument("truncated frame header");
  }
  std::string_view body;
  if (!reader.ReadBytes(size, &body)) {
    return Status::InvalidArgument("frame body shorter than its length prefix");
  }
  if (Fnv1a64(body) != checksum) {
    return Status::InvalidArgument("frame checksum mismatch");
  }
  payload->assign(body.data(), body.size());
  return Status::OK();
}

}  // namespace wire

uint64_t StoreSchemaFingerprintFor(uint32_t version) {
  // One descriptor per readable version, each naming every field of that
  // version's entry encoding in order. The v1 string is frozen verbatim —
  // it must keep hashing to what v1 builds wrote into their file headers,
  // or their files would quarantine instead of migrating. Any layout change
  // adds a v(N+1) string (and bumps kStoreFormatVersion); any canonical-key
  // drift changes the scheme version mixed in below, invalidating every
  // version at once (old keys could collide with new keys of *different*
  // tasks — no migration can save that).
  static constexpr char kLayoutV1[] =
      "v1:key:s|contained:u8|chase_outcome:u8|sigma_class:u8|strategy:u8|"
      "witness_max_level:u32|chase_levels:u32|level_bound:u64|"
      "chase_conjuncts:u64|certified:u8|certificate_depth:u32";
  static constexpr char kLayoutV2[] =
      "v2:key:s|contained:u8|chase_outcome:u8|sigma_class:u8|strategy:u8|"
      "witness_max_level:u32|chase_levels:u32|level_bound:u64|"
      "chase_conjuncts:u64|certified:u8|certificate_depth:u32|"
      "confidence:u8|lineage_known:u8|sigma_fp:u64|used_fps:u32+u64[]";
  const char* layout = nullptr;
  switch (version) {
    case 1:
      layout = kLayoutV1;
      break;
    case 2:
      layout = kLayoutV2;
      break;
    default:
      return 0;  // unreadable version: never matches a real header
  }
  uint64_t h = wire::Fnv1a64(layout);
  h = h * 0x100000001b3ULL + version;
  h = h * 0x100000001b3ULL + kCanonicalKeySchemeVersion;
  return h;
}

uint64_t StoreSchemaFingerprint() {
  return StoreSchemaFingerprintFor(kStoreFormatVersion);
}

void EncodeVerdictEntry(const std::string& key, const StoredVerdict& verdict,
                        std::string& out) {
  wire::PutString(out, key);
  wire::PutU8(out, verdict.contained ? 1 : 0);
  wire::PutU8(out, verdict.chase_outcome);
  wire::PutU8(out, verdict.sigma_class);
  wire::PutU8(out, verdict.strategy);
  wire::PutU32(out, verdict.witness_max_level);
  wire::PutU32(out, verdict.chase_levels);
  wire::PutU64(out, verdict.level_bound);
  wire::PutU64(out, verdict.chase_conjuncts);
  wire::PutU8(out, verdict.certified ? 1 : 0);
  wire::PutU32(out, verdict.certificate_depth);
  wire::PutU8(out, verdict.confidence);
  wire::PutU8(out, verdict.lineage_known ? 1 : 0);
  wire::PutU64(out, verdict.sigma_fp);
  wire::PutU32(out, static_cast<uint32_t>(verdict.used_fps.size()));
  for (uint64_t fp : verdict.used_fps) wire::PutU64(out, fp);
}

Status DecodeVerdictEntry(wire::ByteReader& reader, std::string* key,
                          StoredVerdict* verdict, uint32_t version) {
  if (version < 1 || version > kStoreFormatVersion) {
    return Status::InvalidArgument(
        StrCat("unreadable verdict entry version ", version));
  }
  StoredVerdict v;
  uint8_t contained = 0;
  uint8_t certified = 0;
  if (!reader.ReadString(key) || !reader.ReadU8(&contained) ||
      !reader.ReadU8(&v.chase_outcome) || !reader.ReadU8(&v.sigma_class) ||
      !reader.ReadU8(&v.strategy) || !reader.ReadU32(&v.witness_max_level) ||
      !reader.ReadU32(&v.chase_levels) || !reader.ReadU64(&v.level_bound) ||
      !reader.ReadU64(&v.chase_conjuncts) || !reader.ReadU8(&certified) ||
      !reader.ReadU32(&v.certificate_depth)) {
    return Status::InvalidArgument("truncated verdict entry");
  }
  uint8_t lineage_known = 0;
  if (version >= 2) {
    uint32_t used_count = 0;
    if (!reader.ReadU8(&v.confidence) || !reader.ReadU8(&lineage_known) ||
        !reader.ReadU64(&v.sigma_fp) || !reader.ReadU32(&used_count)) {
      return Status::InvalidArgument("truncated verdict entry lineage");
    }
    // Count sanity before any allocation: a hostile count cannot name more
    // fingerprints than bytes remain to hold them.
    if (used_count > reader.remaining() / 8) {
      return Status::InvalidArgument(StrCat(
          "verdict entry used-set count ", used_count, " exceeds its bytes"));
    }
    v.used_fps.resize(used_count);
    for (uint32_t i = 0; i < used_count; ++i) {
      if (!reader.ReadU64(&v.used_fps[i])) {
        return Status::InvalidArgument("truncated verdict entry used set");
      }
    }
    if (v.confidence >
        static_cast<uint8_t>(VerdictConfidence::kMonotoneBound)) {
      return Status::InvalidArgument(
          StrCat("verdict entry has unknown confidence ", int{v.confidence}));
    }
  }
  // v1 entries keep the defaults: kExact confidence (the verdict *was* exact
  // for its Σ) with lineage_known = false — any later delta treats them as
  // touched, never mis-keeps them.
  if (contained > 1 || certified > 1 || lineage_known > 1) {
    return Status::InvalidArgument("verdict entry has a non-boolean flag");
  }
  // Range-validate before any cast back to the enums: a byte from disk is
  // not a ChaseOutcome / SigmaClass / DecisionStrategy until proven one.
  if (v.chase_outcome > static_cast<uint8_t>(ChaseOutcome::kEmptyQuery)) {
    return Status::InvalidArgument(StrCat(
        "verdict entry has unknown chase outcome ", int{v.chase_outcome}));
  }
  if (v.sigma_class > static_cast<uint8_t>(kMaxSigmaClass)) {
    return Status::InvalidArgument(
        StrCat("verdict entry has unknown sigma class ", int{v.sigma_class}));
  }
  if (v.strategy >= static_cast<uint8_t>(kNumStrategies)) {
    return Status::InvalidArgument(
        StrCat("verdict entry has unknown strategy ", int{v.strategy}));
  }
  v.contained = contained == 1;
  v.certified = certified == 1;
  v.lineage_known = lineage_known == 1;
  *verdict = std::move(v);
  return Status::OK();
}

}  // namespace cqchase
