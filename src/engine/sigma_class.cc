#include "engine/sigma_class.h"

#include <algorithm>
#include <vector>

namespace cqchase {

namespace {

// The k_Σ constant of the Theorem 3 proof (see finite/finite_containment.h,
// whose KSigma delegates here). Checked against the raw predicates rather
// than the SigmaClass: key-basedness can hold for FD-only and empty sets
// too (vacuous IND clause), which the class split files elsewhere.
std::optional<uint32_t> ComputeKSigma(const DependencySet& deps,
                                      const Catalog& catalog) {
  if (deps.IsKeyBased(catalog)) return 1;  // Lemma 6
  if (deps.ContainsOnlyInds() && deps.AllIndsWidthOne()) {
    // Bounded by the sum of the arities of the relations occurring as IND
    // right-hand sides.
    std::vector<bool> seen(catalog.num_relations(), false);
    uint32_t sum = 0;
    for (const InclusionDependency& ind : deps.inds()) {
      if (!seen[ind.rhs_relation]) {
        seen[ind.rhs_relation] = true;
        sum += static_cast<uint32_t>(catalog.arity(ind.rhs_relation));
      }
    }
    return std::max<uint32_t>(sum, 1);
  }
  return std::nullopt;
}

}  // namespace

SigmaAnalysis AnalyzeSigma(const DependencySet& deps, const Catalog& catalog) {
  SigmaAnalysis a;
  a.max_ind_width = deps.MaxIndWidth();
  a.graph = std::make_shared<const SigmaGraph>(deps, catalog);
  a.acyclic_ind_depth = a.graph->IndCriticalPath();
  if (deps.empty()) {
    a.sigma_class = SigmaClass::kEmpty;
  } else if (deps.ContainsOnlyFds()) {
    a.sigma_class = SigmaClass::kFdOnly;
  } else if (deps.ContainsOnlyInds()) {
    a.sigma_class = deps.AllIndsWidthOne() ? SigmaClass::kIndOnlyW1
                                           : SigmaClass::kIndOnly;
  } else if (deps.IsKeyBased(catalog)) {
    a.sigma_class = SigmaClass::kKeyBased;
  } else if (a.acyclic_ind_depth.has_value()) {
    // FD+IND mix outside the paper's cases, but the IND reliance graph is
    // acyclic: every chase terminates within the critical-path depth, so
    // the bounded chase is a decision procedure (analysis/reliance.h).
    a.sigma_class = SigmaClass::kAcyclicInd;
  } else {
    a.sigma_class = SigmaClass::kGeneral;
  }
  a.decidable = a.sigma_class != SigmaClass::kGeneral;
  // Theorem 3 coverage: trivially Σ-free and FD-only sets (finite chase),
  // width-1 IND sets and key-based sets. The acyclic-IND fragment is also
  // finitely controllable: its chase saturates at a finite instance, which
  // is itself the finite Σ-database counterexample when containment fails.
  a.finitely_controllable = a.sigma_class == SigmaClass::kEmpty ||
                            a.sigma_class == SigmaClass::kFdOnly ||
                            a.sigma_class == SigmaClass::kIndOnlyW1 ||
                            a.sigma_class == SigmaClass::kKeyBased ||
                            a.sigma_class == SigmaClass::kAcyclicInd;
  a.k_sigma = ComputeKSigma(deps, catalog);
  return a;
}

std::optional<DecisionStrategy> ChooseStrategy(const SigmaAnalysis& analysis,
                                               const ConjunctiveQuery& q_prime,
                                               bool allow_semidecision,
                                               bool allow_streaming) {
  switch (analysis.sigma_class) {
    case SigmaClass::kEmpty:
      return DecisionStrategy::kHomomorphism;
    case SigmaClass::kFdOnly:
      return DecisionStrategy::kFdChase;
    case SigmaClass::kIndOnlyW1:
    case SigmaClass::kIndOnly:
      if (allow_streaming && q_prime.conjuncts().size() == 1 &&
          !q_prime.is_empty_query()) {
        return DecisionStrategy::kStreamingFrontier;
      }
      return DecisionStrategy::kIterativeDeepening;
    case SigmaClass::kKeyBased:
      return DecisionStrategy::kIterativeDeepening;
    case SigmaClass::kAcyclicInd:
      // Same deepening loop as the paper's decidable classes; engine.cc
      // swaps the Lemma 5 bound for the reliance critical path, which is
      // the complete one for this fragment.
      return DecisionStrategy::kIterativeDeepening;
    case SigmaClass::kGeneral:
      if (allow_semidecision) return DecisionStrategy::kSemiDecision;
      return std::nullopt;
  }
  return std::nullopt;
}

std::string_view ToString(SigmaClass c) {
  switch (c) {
    case SigmaClass::kEmpty: return "empty";
    case SigmaClass::kFdOnly: return "fd-only";
    case SigmaClass::kIndOnlyW1: return "ind-only-width-1";
    case SigmaClass::kIndOnly: return "ind-only";
    case SigmaClass::kKeyBased: return "key-based";
    case SigmaClass::kGeneral: return "general";
    case SigmaClass::kAcyclicInd: return "acyclic-ind";
  }
  return "unknown";
}

std::string_view ToString(DecisionStrategy s) {
  switch (s) {
    case DecisionStrategy::kHomomorphism: return "homomorphism";
    case DecisionStrategy::kFdChase: return "fd-chase";
    case DecisionStrategy::kStreamingFrontier: return "streaming-frontier";
    case DecisionStrategy::kIterativeDeepening: return "iterative-deepening";
    case DecisionStrategy::kSemiDecision: return "semi-decision";
  }
  return "unknown";
}

}  // namespace cqchase
