// Isomorphism-invariant canonical keys for containment tasks, the device the
// ContainmentEngine's memoization layer is built on.
//
// Soundness contract: two tasks with equal keys are isomorphic — there are
// kind-preserving variable bijections (constants fixed, relations identical)
// carrying one task's (Q, Q', Σ) onto the other's — so they have the same
// containment verdict, and a cache keyed on these strings never conflates
// tasks with different answers. The converse is deliberately not guaranteed:
// the canonicalizer uses signature-sort + rename refinement rather than full
// graph canonization, so a pair of isomorphic queries whose conjuncts tie on
// every refinement signature may receive distinct keys. A missed hit costs
// one recomputation; a false hit would cost correctness, which is why the
// cheap direction is the one given up.
//
// Variables are scoped per query: a containment decision relates Q' to the
// chase of Q only through constants (which map to themselves) and the summary
// rows (matched positionally), never through shared variable names, so each
// query is canonicalized independently.
#ifndef CQCHASE_ENGINE_CANONICAL_H_
#define CQCHASE_ENGINE_CANONICAL_H_

#include <string>

#include "chase/chase.h"
#include "cq/query.h"
#include "deps/dependency_set.h"

namespace cqchase {

// Version of the canonical-key output format. The persistent verdict store
// keys durable entries by these strings, so any change to what the functions
// below emit — ordering, rendering, separators — must bump this constant:
// it feeds the store's schema fingerprint (engine/serialize.h), which
// invalidates stores written under the old scheme instead of letting old and
// new keys collide.
inline constexpr uint32_t kCanonicalKeySchemeVersion = 1;

// Canonical form of one query: conjuncts in a signature-canonical order,
// variables renamed d0,d1,… / n0,n1,… by first occurrence in that order,
// constants rendered by name. Stable under variable renaming and under
// conjunct reordering (up to signature ties, see above).
std::string CanonicalQueryKey(const ConjunctiveQuery& q);

// Canonical form of Σ: FDs and INDs rendered over column indices and sorted,
// so insertion order does not matter.
std::string CanonicalSigmaKey(const DependencySet& deps);

// Full memoization key for "Σ ⊨ Q ⊆ Q' under `variant`".
std::string CanonicalTaskKey(const ConjunctiveQuery& q,
                             const ConjunctiveQuery& q_prime,
                             const DependencySet& deps, ChaseVariant variant);

}  // namespace cqchase

#endif  // CQCHASE_ENGINE_CANONICAL_H_
