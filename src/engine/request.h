// The engine's asynchronous request/future surface.
//
//   ContainmentRequest  — one containment question as an owned value: the
//                         queries and Σ travel inside the request (shared
//                         ownership), so a submitted request can never
//                         dangle after the caller's scope exits — the trap
//                         the raw-pointer ContainmentTask batch API had.
//   RequestOptions      — per-request policy: deadline, priority,
//                         want_certificate, semi-decision override.
//   EngineOutcome       — what a request resolves to: the verdict (the old
//                         EngineVerdict, which it subsumes) plus, when
//                         requested and containment holds, a Theorem 2
//                         certificate extracted from the *same* chase the
//                         decision ran.
//   EngineFuture<T>     — the caller's handle: Wait/WaitFor/Get plus
//                         cooperative Cancel() wired to the ChaseControl
//                         the executing chase polls.
//
// Submission itself is ContainmentEngine::Submit (engine/engine.h); this
// header is value types only and carries no engine dependency.
#ifndef CQCHASE_ENGINE_REQUEST_H_
#define CQCHASE_ENGINE_REQUEST_H_

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "base/status.h"
#include "chase/control.h"
#include "core/certificate.h"
#include "core/containment.h"
#include "cq/query.h"
#include "deps/dependency_set.h"
#include "engine/sigma_class.h"

namespace cqchase {

// Per-request policy knobs. Everything not set here falls back to the
// engine's EngineConfig defaults.
struct RequestOptions {
  // Absolute deadline. A request that cannot decide before it resolves to
  // kDeadlineExceeded — "unknown", never a wrong answer — checked on entry,
  // between chase deepening levels, and every few chase steps.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  // Relative convenience form; resolved against steady_clock::now() at
  // Submit time. Ignored when `deadline` is set.
  std::optional<std::chrono::milliseconds> timeout;

  // Requests with priority > 0 jump the executor queue (front-of-deque).
  int priority = 0;

  // Decide containment AND extract a Theorem 2 proof object from the same
  // chase (EngineOutcome::certificate). Requires a certifiable Σ (empty,
  // FD-only, IND-only or key-based — Lemma 2's cases); otherwise the
  // request resolves to kUnimplemented, exactly as BuildCertificate always
  // has. Verdict-cache hits are bypassed for such requests: a cached
  // verdict carries no derivation to extract from.
  bool want_certificate = false;

  // Overrides EngineConfig::containment.allow_semidecision for this request
  // alone (run a sound semi-decision on general FD+IND Σ — typically paired
  // with a deadline, since the semi-decision may not terminate within any
  // useful budget).
  std::optional<bool> allow_semidecision;
};

// One containment question Σ ⊨ Q ⊆∞ Q' as a self-contained value. The
// request holds shared ownership of its queries and Σ; the referenced
// Catalog and SymbolTable must still outlive the engine, as always.
struct ContainmentRequest {
  std::shared_ptr<const ConjunctiveQuery> q;
  std::shared_ptr<const ConjunctiveQuery> q_prime;
  std::shared_ptr<const DependencySet> deps;
  RequestOptions options;

  // Copies (or moves) the inputs into the request: the safe default — the
  // caller's originals may die the moment this returns.
  static ContainmentRequest Own(ConjunctiveQuery q, ConjunctiveQuery q_prime,
                                DependencySet deps,
                                RequestOptions options = {}) {
    ContainmentRequest r;
    r.q = std::make_shared<const ConjunctiveQuery>(std::move(q));
    r.q_prime = std::make_shared<const ConjunctiveQuery>(std::move(q_prime));
    r.deps = std::make_shared<const DependencySet>(std::move(deps));
    r.options = std::move(options);
    return r;
  }

  // Shares already-shared inputs; zero copies, still lifetime-safe.
  static ContainmentRequest Share(
      std::shared_ptr<const ConjunctiveQuery> q,
      std::shared_ptr<const ConjunctiveQuery> q_prime,
      std::shared_ptr<const DependencySet> deps, RequestOptions options = {}) {
    ContainmentRequest r;
    r.q = std::move(q);
    r.q_prime = std::move(q_prime);
    r.deps = std::move(deps);
    r.options = std::move(options);
    return r;
  }

  // Non-owning aliases (no-op deleter): the caller guarantees the inputs
  // outlive the returned future's completion. This is the legacy
  // ContainmentTask contract; only the blocking shims (CheckMany, Certify),
  // which hold the caller on the stack until completion, should use it.
  static ContainmentRequest Borrow(const ConjunctiveQuery& q,
                                   const ConjunctiveQuery& q_prime,
                                   const DependencySet& deps,
                                   RequestOptions options = {}) {
    ContainmentRequest r;
    r.q = std::shared_ptr<const ConjunctiveQuery>(
        std::shared_ptr<const ConjunctiveQuery>(), &q);
    r.q_prime = std::shared_ptr<const ConjunctiveQuery>(
        std::shared_ptr<const ConjunctiveQuery>(), &q_prime);
    r.deps = std::shared_ptr<const DependencySet>(
        std::shared_ptr<const DependencySet>(), &deps);
    r.options = std::move(options);
    return r;
  }
};

// A containment answer plus how the engine got it.
struct EngineVerdict {
  ContainmentReport report;
  SigmaClass sigma_class = SigmaClass::kEmpty;
  DecisionStrategy strategy = DecisionStrategy::kHomomorphism;
  bool cache_hit = false;
  // Which non-LRU tier of the verdict stack answered, if any: the in-memory
  // tier missed, the named tier hit, and no chase was built. cache_hit is
  // also true then — the question was answered from cache, just a deeper
  // one (the persistent store / a remote verdict authority).
  bool store_hit = false;
  bool remote_hit = false;
};

// What a submitted request resolves to. Subsumes EngineVerdict; the
// certificate is engaged exactly when options.want_certificate was set and
// the verdict is "contained" (it then verifies against (Q, Q', Σ) via
// VerifyCertificate, and was extracted from the decision's own chase — no
// re-chase).
struct EngineOutcome {
  EngineVerdict verdict;
  std::optional<ContainmentCertificate> certificate;
};

namespace internal {

// Shared between an EngineFuture and the executor task computing its value.
// The control half is written by the future (Cancel) and polled by the
// task's chase; the result half is written once by the task and read by the
// future under mu.
template <typename T>
struct FutureState {
  ChaseControl control;

  std::mutex mu;
  std::condition_variable cv;
  std::optional<Result<T>> result;
  bool consumed = false;

  void Set(Result<T> r) {
    {
      std::lock_guard<std::mutex> lock(mu);
      result.emplace(std::move(r));
    }
    cv.notify_all();
  }
};

}  // namespace internal

// Handle to an in-flight engine request. Copyable (all copies view the one
// request); Get() consumes the result and may be called once across all
// copies. Destroying every future does NOT cancel the request — it runs to
// completion on the executor (call Cancel() for that); the engine keeps the
// shared state alive until then, so dropping futures is always safe.
// Engine destruction is the exception: it cancels every outstanding
// request (futures still held resolve kCancelled) so teardown never waits
// on abandoned work.
template <typename T>
class EngineFuture {
 public:
  EngineFuture() = default;
  explicit EngineFuture(std::shared_ptr<internal::FutureState<T>> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }

  bool done() const {
    if (!valid()) return false;
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->result.has_value() || state_->consumed;
  }

  void Wait() const {
    if (!valid()) return;
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] {
      return state_->result.has_value() || state_->consumed;
    });
  }

  // True when the result arrived within `timeout`.
  bool WaitFor(std::chrono::milliseconds timeout) const {
    if (!valid()) return false;
    std::unique_lock<std::mutex> lock(state_->mu);
    return state_->cv.wait_for(lock, timeout, [&] {
      return state_->result.has_value() || state_->consumed;
    });
  }

  // Blocks until the result is ready and moves it out.
  Result<T> Get() {
    if (!valid()) {
      return Status::FailedPrecondition("Get() on a default-constructed "
                                        "EngineFuture");
    }
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] {
      return state_->result.has_value() || state_->consumed;
    });
    if (state_->consumed) {
      return Status::FailedPrecondition("EngineFuture result already "
                                        "consumed");
    }
    Result<T> out = std::move(*state_->result);
    state_->result.reset();
    state_->consumed = true;
    return out;
  }

  // Requests cooperative cancellation. The executing chase stops at its
  // next control poll and the future resolves to kCancelled (releasing, in
  // particular, its reference on any shared chase prefix). A request whose
  // result already landed is unaffected. Idempotent.
  void Cancel() {
    if (!valid()) return;
    state_->control.cancel.store(true, std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<internal::FutureState<T>> state_;
};

}  // namespace cqchase

#endif  // CQCHASE_ENGINE_REQUEST_H_
