#include "engine/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <thread>
#include <utility>

#include "analysis/delta.h"
#include "base/string_util.h"
#include "core/homomorphism.h"
#include "core/pspace.h"
#include "engine/lineage.h"

namespace cqchase {

namespace {
// Relaxed ordering everywhere: the counters are monotone telemetry with no
// ordering obligations to other memory.
inline void Bump(std::atomic<uint64_t>& counter) {
  counter.fetch_add(1, std::memory_order_relaxed);
}

inline void BumpBy(std::atomic<uint64_t>& counter, uint64_t n) {
  if (n != 0) counter.fetch_add(n, std::memory_order_relaxed);
}

// Width of the shared executor: the explicit knob wins; otherwise a
// num_threads > 1 legacy config keeps sizing the pool its CheckMany batches
// now run on; otherwise whatever the hardware offers.
size_t ExecutorWidth(const EngineConfig& config) {
  if (config.executor_threads > 0) return config.executor_threads;
  if (config.num_threads > 1) return config.num_threads;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? hc : 1;
}
}  // namespace

namespace {

// Levels of the chase facts actually used by a homomorphism's image.
uint32_t WitnessMaxLevel(const Homomorphism& hom,
                         const std::vector<const ChaseConjunct*>& alive) {
  uint32_t max_level = 0;
  for (size_t fi : hom.conjunct_images) {
    if (fi < alive.size()) max_level = std::max(max_level, alive[fi]->level);
  }
  return max_level;
}

// Exact (term-identity) key of a query, for the chase-prefix cache: a chase
// holds the query's actual terms, so only a byte-identical re-ask may resume
// it. Contrast CanonicalQueryKey, which is renaming-invariant.
std::string ExactQueryKey(const ConjunctiveQuery& q) {
  std::string out = q.is_empty_query() ? "E(" : "(";
  auto append_term = [&out](Term t) {
    switch (t.kind()) {
      case TermKind::kConstant: out += 'c'; break;
      case TermKind::kDistVar: out += 'd'; break;
      case TermKind::kNondistVar: out += 'n'; break;
    }
    out += StrCat(t.id(), ",");
  };
  for (Term t : q.summary()) append_term(t);
  out += ")";
  for (const Fact& f : q.conjuncts()) {
    out += StrCat("R", f.relation, "(");
    for (Term t : f.terms) append_term(t);
    out += ")";
  }
  return out;
}

// Q with conjunct `skip` removed.
ConjunctiveQuery WithoutConjunct(const ConjunctiveQuery& q, size_t skip) {
  ConjunctiveQuery out(&q.catalog(), &q.symbols());
  for (size_t i = 0; i < q.conjuncts().size(); ++i) {
    if (i != skip) out.AddConjunct(q.conjuncts()[i]);
  }
  out.SetSummary(q.summary());
  return out;
}

// The persisted form of a decided verdict: the cacheable report fields (the
// witness cannot survive the process), provenance, and — telemetry only —
// whether this computation also extracted a certificate.
StoredVerdict ToStoredVerdict(const EngineOutcome& outcome) {
  const ContainmentReport& report = outcome.verdict.report;
  StoredVerdict stored;
  stored.contained = report.contained;
  stored.chase_outcome = static_cast<uint8_t>(report.chase_outcome);
  stored.sigma_class = static_cast<uint8_t>(outcome.verdict.sigma_class);
  stored.strategy = static_cast<uint8_t>(outcome.verdict.strategy);
  stored.witness_max_level = report.witness_max_level;
  stored.chase_levels = report.chase_levels;
  stored.level_bound = report.level_bound;
  stored.chase_conjuncts = report.chase_conjuncts;
  stored.certified = outcome.certificate.has_value();
  stored.certificate_depth =
      outcome.certificate.has_value() ? report.witness_max_level : 0;
  return stored;
}

// Inverse of ToStoredVerdict. Enum bytes from untrusted sources were
// range-validated at decode time (serialize.cc), so the casts are safe
// here. The caller sets the cache_hit/store_hit/remote_hit provenance flags
// — this conversion serves every tier of the stack, including the LRU.
EngineVerdict FromStoredVerdict(const StoredVerdict& stored) {
  EngineVerdict verdict;
  verdict.report.contained = stored.contained;
  verdict.report.witness_max_level = stored.witness_max_level;
  verdict.report.level_bound = stored.level_bound;
  verdict.report.chase_conjuncts = stored.chase_conjuncts;
  verdict.report.chase_levels = stored.chase_levels;
  verdict.report.chase_outcome =
      static_cast<ChaseOutcome>(stored.chase_outcome);
  verdict.sigma_class = static_cast<SigmaClass>(stored.sigma_class);
  verdict.strategy = static_cast<DecisionStrategy>(stored.strategy);
  return verdict;
}

// The tier specs the engine actually assembles: the explicit stack, with
// the legacy knobs expanded — an empty `tiers` means the classic in-memory
// LRU, and a non-empty `store_path` appends one local-store tier (the
// back-compat shim for the pre-stack config surface).
std::vector<TierSpec> EffectiveTierSpecs(const EngineConfig& config) {
  std::vector<TierSpec> specs = config.tiers;
  if (specs.empty()) specs.push_back(TierSpec::Lru(config.verdict_cache_capacity));
  if (!config.store_path.empty()) {
    specs.push_back(TierSpec::LocalStore(config.store_path));
  }
  return specs;
}

// A summary DV must keep occurring in the body; removing the only conjunct
// containing it would make the query unsafe.
bool RemovalKeepsSafety(const ConjunctiveQuery& q, size_t skip) {
  for (Term t : q.summary()) {
    if (!t.is_dist_var()) continue;
    bool still_occurs = false;
    for (size_t i = 0; i < q.conjuncts().size() && !still_occurs; ++i) {
      if (i == skip) continue;
      for (Term u : q.conjuncts()[i].terms) {
        if (u == t) {
          still_occurs = true;
          break;
        }
      }
    }
    if (!still_occurs) return false;
  }
  return true;
}

}  // namespace

ContainmentEngine::ContainmentEngine(const Catalog* catalog,
                                     SymbolTable* symbols, EngineConfig config)
    : catalog_(catalog),
      symbols_(symbols),
      config_(std::move(config)),
      sigma_cache_(config_.sigma_cache_capacity),
      chase_cache_(config_.chase_cache_capacity),
      executor_(ExecutorWidth(config_)) {
  // Bind the parallel-chase runner now that executor_ exists (it is
  // declared after chase_runner_ on purpose — see engine.h).
  chase_runner_.set_executor(&executor_);
  const bool wants_tiers =
      !config_.store_path.empty() || !config_.tiers.empty();
  if (!config_.enable_cache) {
    if (wants_tiers) {
      // The tier stack rides the memoization layer; with enable_cache off
      // no canonical keys are ever computed, so an assembled stack would
      // sit dead (never probed, never written) while silently looking
      // healthy. Refuse loudly instead.
      store_status_ = Status::FailedPrecondition(
          "tiers/store_path require enable_cache: the verdict tiers serve "
          "the canonical-key lookups that enable_cache = false turns off");
    }
    return;
  }
  Result<std::unique_ptr<TierStack>> assembled =
      TierStack::Assemble(EffectiveTierSpecs(config_));
  if (!assembled.ok()) {
    // A kRefuse spec tripped: the caller asked for loud failure, and gets
    // it — but a broken cache hierarchy must not take the engine down, so
    // serve with no verdict tiers at all (Σ/chase caches still work) and
    // let store_status() carry the reason.
    store_status_ = assembled.status();
    return;
  }
  tiers_ = *std::move(assembled);
  // Back-compat surface: a local-store tier that was quarantined (open
  // failure, fingerprint drift) reports its reason through store_status(),
  // exactly as the pre-stack engine did.
  for (const TierStack::TierDescriptor& desc : tiers_->descriptors()) {
    if (desc.kind == TierSpec::Kind::kLocalStore && !desc.active) {
      store_status_ = desc.status;
      break;
    }
  }
}

ContainmentEngine::~ContainmentEngine() {
  // Cancel everything still in flight before the executor member's
  // destructor drains the queue: an abandoned no-deadline request (e.g. a
  // divergent semi-decision whose future was dropped) would otherwise run
  // forever and hang teardown. Cancelled tasks stop at their next control
  // poll and resolve kCancelled.
  std::lock_guard<std::mutex> lock(inflight_mu_);
  for (std::weak_ptr<internal::FutureState<EngineOutcome>>& weak : inflight_) {
    if (std::shared_ptr<internal::FutureState<EngineOutcome>> state =
            weak.lock()) {
      state->control.cancel.store(true, std::memory_order_relaxed);
    }
  }
}

SigmaAnalysis ContainmentEngine::Analyze(const DependencySet& deps) {
  // Stateless engines (the compatibility wrappers) skip the keyed cache:
  // the classification predicates are cheaper than building the key.
  if (!config_.enable_cache) return AnalyzeSigma(deps, *catalog_);
  const std::string key = CanonicalSigmaKey(deps);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const SigmaAnalysis* hit = sigma_cache_.Get(key)) return *hit;
  }
  SigmaAnalysis analysis = AnalyzeSigma(deps, *catalog_);
  std::lock_guard<std::mutex> lock(mu_);
  sigma_cache_.Put(key, analysis);
  return analysis;
}

std::optional<DecisionStrategy> ContainmentEngine::RouteOf(
    const ConjunctiveQuery& q_prime, const DependencySet& deps) {
  return ChooseStrategy(Analyze(deps), q_prime,
                        config_.containment.allow_semidecision,
                        config_.route_streaming_single_conjunct);
}

// --- Async API --------------------------------------------------------------

EngineFuture<EngineOutcome> ContainmentEngine::Submit(
    ContainmentRequest request) {
  auto state = std::make_shared<internal::FutureState<EngineOutcome>>();
  // Resolve the relative form once, at submission — queue time counts
  // against the deadline, exactly like a network request's.
  if (request.options.deadline.has_value()) {
    state->control.deadline = request.options.deadline;
  } else if (request.options.timeout.has_value()) {
    state->control.deadline =
        std::chrono::steady_clock::now() + *request.options.timeout;
  }
  const bool high_priority = request.options.priority > 0;
  auto shared_request =
      std::make_shared<const ContainmentRequest>(std::move(request));
  {
    // Register for cancel-on-destruction; prune resolved (expired) entries
    // opportunistically so the registry tracks live requests, not history.
    std::lock_guard<std::mutex> lock(inflight_mu_);
    if (inflight_.size() >= 64) {
      inflight_.erase(
          std::remove_if(
              inflight_.begin(), inflight_.end(),
              [](const std::weak_ptr<internal::FutureState<EngineOutcome>>&
                     weak) { return weak.expired(); }),
          inflight_.end());
    }
    inflight_.push_back(state);
  }
  Bump(stats_.submits);
  Executor::TaskOptions task_options;
  task_options.high_priority = high_priority;
  // Shed-at-dequeue: a request whose whole budget elapsed in the queue is
  // completed kDeadlineExceeded by the executor itself instead of occupying
  // a worker slot to discover the same thing at Execute's first control
  // poll (under overload, expired backlog must not starve live requests).
  task_options.deadline = state->control.deadline;
  task_options.on_expired = [this, state] {
    Bump(stats_.deadline_expirations);
    state->Set(Status::DeadlineExceeded(
        "request deadline exceeded while queued (shed at dequeue)"));
  };
  executor_.Submit(
      [this, state, shared_request] {
        if (shared_request->q == nullptr ||
            shared_request->q_prime == nullptr ||
            shared_request->deps == nullptr) {
          state->Set(Status::InvalidArgument(
              "ContainmentRequest has a null query or dependency set"));
          return;
        }
        Bump(stats_.checks);
        Result<EngineOutcome> result =
            Execute(*shared_request->q, *shared_request->q_prime,
                    *shared_request->deps, shared_request->options,
                    &state->control, /*cache_chase_prefix=*/true);
        if (!result.ok()) {
          if (result.status().code() == StatusCode::kDeadlineExceeded) {
            Bump(stats_.deadline_expirations);
          } else if (result.status().code() == StatusCode::kCancelled) {
            Bump(stats_.cancellations);
          }
        }
        state->Set(std::move(result));
      },
      std::move(task_options));
  return EngineFuture<EngineOutcome>(std::move(state));
}

std::vector<EngineFuture<EngineOutcome>> ContainmentEngine::SubmitAll(
    std::vector<ContainmentRequest> requests) {
  // Warm the tier stack for the whole burst before fanning out: one batched
  // round trip per network tier instead of one RTT per worker-side Lookup.
  // Certificate requests skip tier reads entirely, so their keys stay out.
  if (requests.size() > 1) {
    std::vector<std::string> keys;
    keys.reserve(requests.size());
    for (const ContainmentRequest& r : requests) {
      if (r.q == nullptr || r.q_prime == nullptr || r.deps == nullptr) continue;
      if (r.options.want_certificate) continue;
      keys.push_back(TierKeyForPrefetch(*r.q, *r.q_prime, *r.deps));
      if (keys.back().empty()) keys.pop_back();
    }
    PrefetchTierKeys(keys);
  }
  std::vector<EngineFuture<EngineOutcome>> futures;
  futures.reserve(requests.size());
  for (ContainmentRequest& r : requests) futures.push_back(Submit(std::move(r)));
  return futures;
}

// --- Synchronous API --------------------------------------------------------

Result<EngineVerdict> ContainmentEngine::Check(const ConjunctiveQuery& q,
                                               const ConjunctiveQuery& q_prime,
                                               const DependencySet& deps) {
  return CheckCounted(q, q_prime, deps, /*cache_chase_prefix=*/true);
}

Result<EngineVerdict> ContainmentEngine::CheckCounted(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const DependencySet& deps, bool cache_chase_prefix) {
  // The checks bump lives here, not in Check: Minimize/IsNonMinimal probes
  // route through this too, and every cache hit/miss they record must
  // belong to a counted check (hit rates over stats() stay <= 100%).
  Bump(stats_.checks);
  RequestOptions defaults;
  CQCHASE_ASSIGN_OR_RETURN(
      EngineOutcome outcome,
      Execute(q, q_prime, deps, defaults, /*control=*/nullptr,
              cache_chase_prefix));
  return std::move(outcome.verdict);
}

Result<EngineOutcome> ContainmentEngine::Execute(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const DependencySet& deps, const RequestOptions& options,
    ChaseControl* control, bool cache_chase_prefix) {
  CQCHASE_RETURN_IF_ERROR(q.Validate());
  CQCHASE_RETURN_IF_ERROR(q_prime.Validate());
  if (q.summary().size() != q_prime.summary().size()) {
    return Status::InvalidArgument(
        "queries must have the same output arity for containment");
  }
  // A query from a foreign SymbolTable cannot be chased into this engine's
  // arena: fresh NDVs would reuse term ids the query already assigns to its
  // own variables, silently corrupting the decision. (The legacy free
  // functions always construct the engine on the caller's table, so only a
  // direct contract violation reaches this.)
  if (&q.symbols() != symbols_ || &q_prime.symbols() != symbols_) {
    return Status::InvalidArgument(
        "queries must be built against the engine's symbol table");
  }
  // A request that spent its whole budget in the queue resolves without
  // touching a cache or chase.
  if (control != nullptr) CQCHASE_RETURN_IF_ERROR(control->Check());
  if (options.want_certificate && !CertifiableSigma(deps, q.catalog())) {
    return Status::Unimplemented(
        "certificates are only constructed for IND-only, FD-only or "
        "key-based dependency sets");
  }

  // Queries built against a foreign catalog would alias relation ids in the
  // cache keys; serve them uncached — and classify Σ against *their*
  // catalog, whose relation ids the dependencies refer to.
  const bool foreign_catalog = &q.catalog() != catalog_;
  const SigmaAnalysis analysis =
      foreign_catalog ? AnalyzeSigma(deps, q.catalog()) : Analyze(deps);
  const bool cacheable = config_.enable_cache && tiers_ != nullptr &&
                         !foreign_catalog && &q_prime.catalog() == catalog_;

  ExecContext ctx;
  ctx.options = &options;
  ctx.control = control;
  ctx.cache_chase_prefix = cache_chase_prefix;
  EngineOutcome outcome;
  if (options.want_certificate) ctx.cert_out = &outcome.certificate;
  // Cacheable decisions harvest their chase's used-dependency set so the
  // published entry carries lineage a future schema delta can consult.
  LineageCapture lineage;
  if (cacheable) ctx.lineage = &lineage;

  if (!cacheable) {
    CQCHASE_ASSIGN_OR_RETURN(outcome.verdict,
                             DecideUncached(q, q_prime, deps, analysis, ctx));
    return outcome;
  }

  const std::string key =
      CanonicalTaskKey(q, q_prime, deps, config_.containment.variant);
  // A certificate request skips the verdict-tier *reads*: a cached verdict
  // dropped its chase derivation, so there is nothing to extract a proof
  // from. It still publishes its verdict below for later certificate-free
  // askers.
  if (!options.want_certificate) {
    // Probe the tier stack cheapest-first; a hit at any tier below the LRU
    // bypasses the chase entirely, and the stack promotes it into every
    // cheaper tier so the next re-ask stops earlier.
    if (std::optional<TierStack::LookupResult> hit = tiers_->Lookup(key)) {
      outcome.verdict = FromStoredVerdict(hit->verdict);
      outcome.verdict.cache_hit = true;
      // A monotone-bound survivor of a schema delta: its contained bit is
      // guaranteed under the current Σ (engine/lineage.h), so it answers a
      // plain check like any hit; the counter lets ops and differential
      // suites see how much of the traffic rides the weaker guarantee.
      if (hit->verdict.confidence ==
          static_cast<uint8_t>(VerdictConfidence::kMonotoneBound)) {
        Bump(stats_.monotone_hits);
      }
      switch (hit->kind) {
        case TierSpec::Kind::kLru:
          Bump(stats_.cache_hits);
          break;
        case TierSpec::Kind::kLocalStore:
          // The in-memory tier did miss before this tier answered; count
          // that miss so hit rates read the same as the pre-stack engine.
          Bump(stats_.cache_misses);
          outcome.verdict.store_hit = true;
          break;
        case TierSpec::Kind::kRemote:
          Bump(stats_.cache_misses);
          outcome.verdict.remote_hit = true;
          break;
      }
      // A promotion into a durable tier buffered bytes; make them move.
      if (hit->buffered_writes) ScheduleTierFlush();
      return outcome;
    }
    Bump(stats_.cache_misses);
  }

  CQCHASE_ASSIGN_OR_RETURN(outcome.verdict,
                           DecideUncached(q, q_prime, deps, analysis, ctx));

  // Fan the fresh verdict out to every write-through tier. The in-memory
  // tier serves it immediately; durable/remote tiers buffer (each Publish
  // is insert-if-absent, so certificate re-decides of an already-stored
  // key append nothing) and the executor flush makes the bytes move —
  // write-behind, never on this decision path. The witness homomorphism
  // references this computation's chase facts and the asker's terms, so
  // only the verdict and its statistics travel (ToStoredVerdict drops it).
  StoredVerdict stored = ToStoredVerdict(outcome);
  // Fresh decisions are exact by construction (confidence default); tag the
  // entry with its Σ's fingerprint, and with the chase's used-dependency
  // lineage when one ran — a chase-free strategy publishes lineage-unknown
  // and can only ever survive a delta monotonically.
  stored.sigma_fp = SigmaFingerprint(deps);
  if (lineage.known) {
    stored.lineage_known = true;
    stored.used_fps = std::move(lineage.used_fps);
  }
  TierStack::PublishReceipt receipt = tiers_->Publish(key, stored);
  if (receipt.buffered_writes) ScheduleTierFlush();
  return outcome;
}

std::string ContainmentEngine::TierKeyForPrefetch(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const DependencySet& deps) const {
  // Mirrors Execute's cacheable conditions: foreign-catalog (or
  // foreign-symbol) tasks are served uncached there, so prefetching their
  // keys would probe the tiers for entries Execute will never read.
  if (tiers_ == nullptr || !config_.enable_cache) return {};
  if (&q.catalog() != catalog_ || &q_prime.catalog() != catalog_) return {};
  if (&q.symbols() != symbols_ || &q_prime.symbols() != symbols_) return {};
  return CanonicalTaskKey(q, q_prime, deps, config_.containment.variant);
}

void ContainmentEngine::PrefetchTierKeys(const std::vector<std::string>& keys) {
  if (keys.empty() || tiers_ == nullptr || !config_.enable_cache) return;
  TierStack::PrefetchReceipt receipt = tiers_->Prefetch(keys);
  if (receipt.buffered_writes) ScheduleTierFlush();
}

void ContainmentEngine::ScheduleTierFlush() {
  // One flush task in the queue at a time. The task clears the flag
  // *before* flushing, so a publish that races past the clear schedules a
  // new task while one submitted earlier still covers everything before it.
  if (tier_flush_scheduled_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  executor_.Submit([this] {
    tier_flush_scheduled_.store(false, std::memory_order_release);
    // Failures requeue inside each tier and count in its flush_failures;
    // the engine keeps serving from memory either way.
    tiers_->Flush();
  });
}

Result<EngineVerdict> ContainmentEngine::DecideUncached(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const DependencySet& deps, const SigmaAnalysis& analysis,
    const ExecContext& ctx) {
  const bool allow_semidecision = ctx.options->allow_semidecision.value_or(
      config_.containment.allow_semidecision);
  std::optional<DecisionStrategy> strategy =
      ChooseStrategy(analysis, q_prime, allow_semidecision,
                     config_.route_streaming_single_conjunct);
  if (!strategy.has_value()) {
    return Status::Unimplemented(
        "containment for general FD+IND sets is open (paper Section 5); set "
        "options.allow_semidecision for a sound semi-decision");
  }
  // The streaming frontier never rewrites Q's conjuncts, so an empty-marked
  // Q (contained in everything) must take the chase route, whose loop
  // handles kEmptyQuery.
  if (*strategy == DecisionStrategy::kStreamingFrontier && q.is_empty_query()) {
    strategy = DecisionStrategy::kIterativeDeepening;
  }
  // A certificate is extracted from a live chase derivation, so the
  // chase-free routes (bare homomorphism, streaming frontier) hand over to
  // the deepening loop — the same decision, now with a proof to show. This
  // mirrors what the standalone BuildCertificate always did.
  if (ctx.cert_out != nullptr &&
      (*strategy == DecisionStrategy::kHomomorphism ||
       *strategy == DecisionStrategy::kStreamingFrontier)) {
    strategy = DecisionStrategy::kIterativeDeepening;
  }

  EngineVerdict verdict;
  verdict.sigma_class = analysis.sigma_class;
  verdict.strategy = *strategy;

  switch (*strategy) {
    case DecisionStrategy::kHomomorphism: {
      if (q.is_empty_query()) {
        // Empty Q is contained in any Q' of matching arity; run the shared
        // loop, whose empty-query arm reports it.
        CQCHASE_ASSIGN_OR_RETURN(
            verdict.report, DecideByChase(q, q_prime, deps, analysis, ctx));
        break;
      }
      // Granularity caveat: the single homomorphism search below is not
      // interruptible — a control trip is noticed here or not until it
      // returns. (Chase-routed strategies poll between steps and levels.)
      if (ctx.control != nullptr) {
        CQCHASE_RETURN_IF_ERROR(ctx.control->Check());
      }
      ContainmentReport report;
      report.chase_conjuncts = q.conjuncts().size();
      report.chase_levels = 0;
      report.chase_outcome = ChaseOutcome::kSaturated;
      if (!q_prime.is_empty_query()) {
        std::optional<Homomorphism> hom =
            FindHomomorphism(q_prime, q.conjuncts(), q.summary());
        if (hom.has_value()) {
          report.contained = true;
          report.witness = std::move(hom);
        }
      }
      verdict.report = std::move(report);
      break;
    }
    case DecisionStrategy::kStreamingFrontier: {
      // Same caveat as the homomorphism arm: the streaming run itself does
      // not poll; deadline/cancel trips land before it starts or after it
      // finishes (its own frontier budget bounds the run).
      if (ctx.control != nullptr) {
        CQCHASE_RETURN_IF_ERROR(ctx.control->Check());
      }
      StreamingContainmentOptions sopt;
      sopt.max_level = config_.containment.limits.max_level;
      // Deliberately wider than StreamingContainmentOptions' default
      // (max_conjuncts / 2): a direct pspace.h caller has no recourse when
      // the frontier blows, but the engine falls back to the deduplicating
      // chase below, so it can afford to let streaming use the full budget.
      sopt.max_frontier = config_.containment.limits.max_conjuncts;
      Result<StreamingContainmentReport> streamed =
          StreamingSingleConjunctContainment(q, q_prime, deps, *symbols_,
                                             sopt);
      if (!streamed.ok()) {
        if (streamed.status().code() != StatusCode::kResourceExhausted) {
          return streamed.status();
        }
        // The O-chase frontier grows without dedup and can exhaust its
        // budget on dense cyclic Σ that the deduplicating R-chase decides
        // easily — fall back rather than surface an avoidable error.
        verdict.strategy = DecisionStrategy::kIterativeDeepening;
        CQCHASE_ASSIGN_OR_RETURN(
            verdict.report, DecideByChase(q, q_prime, deps, analysis, ctx));
        break;
      }
      const StreamingContainmentReport& sr = *streamed;
      ContainmentReport report;
      report.contained = sr.contained;
      report.level_bound = Theorem2LevelBound(q_prime.conjuncts().size(),
                                              deps.size(),
                                              deps.MaxIndWidth());
      report.chase_conjuncts = sr.conjuncts_streamed;
      report.chase_levels = sr.decided_at_level;
      report.chase_outcome = ChaseOutcome::kTruncated;
      verdict.report = std::move(report);
      break;
    }
    case DecisionStrategy::kFdChase:
    case DecisionStrategy::kIterativeDeepening:
    case DecisionStrategy::kSemiDecision: {
      CQCHASE_ASSIGN_OR_RETURN(verdict.report,
                               DecideByChase(q, q_prime, deps, analysis, ctx));
      break;
    }
  }

  Bump(stats_.by_strategy[static_cast<size_t>(verdict.strategy)]);
  return verdict;
}

Result<ContainmentReport> ContainmentEngine::DecideByChase(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const DependencySet& deps, const SigmaAnalysis& analysis,
    const ExecContext& ctx) {
  ContainmentOptions options = config_.containment;
  // A kParallel chase with no runner configured gets the engine's own
  // executor-backed one: witness-class sweeps fork into executor_ via a
  // helping-join TaskGroup, so running the chase from an engine worker
  // cannot deadlock the pool.
  if (options.limits.core == ChaseCoreMode::kParallel &&
      options.limits.runner == nullptr) {
    options.limits.runner = &chase_runner_;
  }

  // Symbol-table identity is enforced at the Execute entry point; only
  // catalog identity still needs checking for the exact-key cache.
  const bool cacheable = ctx.cache_chase_prefix && config_.enable_cache &&
                         config_.chase_cache_capacity > 0 &&
                         &q.catalog() == catalog_;
  std::shared_ptr<SharedChase> shared;
  std::optional<Chase> local_chase;
  Chase* chase_ptr = nullptr;
  // Held for the whole decision loop when the chase is shared: a Chase is
  // not internally thread-safe, so concurrent askers of the same exact key
  // queue here and each extends the single shared prefix in turn. Askers of
  // different keys proceed in parallel; eviction of this entry while we run
  // only drops the map's reference, not ours.
  std::unique_lock<std::mutex> shared_lock;
  uint32_t start_level = 0;
  // Turn-start snapshot for the ChaseStats harvest below. Stays
  // zero-initialized when this call builds the chase (Init's FD work is this
  // turn's work); a resumed shared prefix snapshots its monotone counters so
  // only the delta this asker drives is attributed here.
  ChaseStats chase_stats_before;
  if (cacheable) {
    const std::string chase_key =
        StrCat("V", static_cast<int>(options.variant), "|",
               CanonicalSigmaKey(deps), "|", ExactQueryKey(q));
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (std::shared_ptr<SharedChase>* hit = chase_cache_.Get(chase_key)) {
        shared = *hit;
      } else {
        shared = std::make_shared<SharedChase>();
        chase_cache_.Put(chase_key, shared);
      }
    }
    shared_lock = std::unique_lock<std::mutex>(shared->mu);
    if (!shared->built) {
      // First asker through the entry lock builds the chase. The entry owns
      // a stable copy of Σ so the Chase's internal pointer outlives the
      // caller's DependencySet.
      shared->deps = std::make_unique<DependencySet>(deps);
      shared->chase = std::make_unique<Chase>(&q.catalog(), symbols_,
                                              shared->deps.get(),
                                              options.variant, options.limits);
      shared->init_status = shared->chase->Init(q);
      shared->built = true;
      if (shared->init_status.ok()) Bump(stats_.chases_built);
    } else if (shared->init_status.ok()) {
      Bump(stats_.chase_prefix_reuses);
      chase_stats_before = shared->chase->chase_stats();
      // Resume where the shared prefix already is: the first homomorphism
      // search sees the whole prefix anyway, so the per-level searches
      // below this depth would be identical repeats.
      start_level =
          std::min(shared->chase->MaxAliveLevel(), options.limits.max_level);
    }
    // Init failures are deterministic for a fixed (Q, Σ): replay the same
    // status to every asker instead of rebuilding just to re-fail.
    if (!shared->init_status.ok()) return shared->init_status;
    chase_ptr = shared->chase.get();
  } else {
    // Uncached: the chase lives and dies in this call, directly on the
    // caller's Σ — no copies, matching the pre-engine cost profile.
    local_chase.emplace(&q.catalog(), symbols_, &deps, options.variant,
                        options.limits);
    Status init = local_chase->Init(q);
    if (!init.ok()) return init;
    chase_ptr = &*local_chase;
    Bump(stats_.chases_built);
  }

  Chase& chase = *chase_ptr;
  // This asker's cancellation/deadline applies for exactly this asker's
  // turn on the chase: attach now, detach before unlocking, so a shared
  // prefix never carries a dead asker's control into the next turn. A
  // tripped control unwinds like a resource limit — the prefix stays
  // consistent and resumable for other askers.
  chase.set_control(ctx.control);
  // The Theorem 1/2 decision loop (moved here from core/containment.cc):
  // expand the chase prefix level by level, searching for a homomorphism
  // after each expansion, stopping at a witness, saturation, the Lemma 5
  // bound, or a resource limit. A cache-resumed chase may already be deeper
  // than `level`; ExpandToLevel is then a no-op and the loop simply finds
  // the answer in the wider prefix (the verdict is unaffected — a witness
  // into a deeper prefix is still a witness, and the negative cases require
  // the same saturation/bound evidence).
  Result<ContainmentReport> result = [&]() -> Result<ContainmentReport> {
    ContainmentReport report;
    report.level_bound = Theorem2LevelBound(q_prime.conjuncts().size(),
                                            deps.size(), deps.MaxIndWidth());
    uint64_t bound = report.level_bound;
    const bool bound_is_complete = analysis.decidable;  // Lemma 5 applies
    if (analysis.sigma_class == SigmaClass::kAcyclicInd &&
        analysis.acyclic_ind_depth.has_value()) {
      // Lemma 5's completeness argument covers the paper's classes only;
      // for the acyclic-IND fragment the complete bound is the reliance
      // critical path (analysis/reliance.h): no conjunct can sit deeper
      // than the longest IND reliance chain, so a chase expanded to that
      // level holds every fact the chase will ever have. Usually far
      // tighter than Lemma 5's |Q'|·|Σ|·(W+1)^W as well.
      bound = *analysis.acyclic_ind_depth;
      report.level_bound = bound;
    }

    // Searches the current alive prefix for a witness; on success fills the
    // report's witness fields and returns true. Shared by the per-level
    // searches and the budget-exhaustion last chance below.
    auto search_witness = [&]() {
      if (q_prime.is_empty_query()) return false;
      std::vector<const ChaseConjunct*> alive = chase.AliveConjuncts();
      std::vector<Fact> facts;
      facts.reserve(alive.size());
      for (const ChaseConjunct* c : alive) facts.push_back(c->fact);
      std::optional<Homomorphism> hom =
          FindHomomorphism(q_prime, facts, chase.summary());
      if (!hom.has_value()) return false;
      report.chase_conjuncts = alive.size();
      report.chase_levels = chase.MaxAliveLevel();
      report.contained = true;
      report.witness_max_level = WitnessMaxLevel(*hom, alive);
      report.witness = std::move(hom);
      return true;
    };

    uint32_t level = start_level;
    while (true) {
      // Level-boundary poll: the chase polls between steps, but a
      // homomorphism search over a large prefix can also run long — check
      // once per deepening iteration so neither side starves the control.
      if (ctx.control != nullptr) {
        CQCHASE_RETURN_IF_ERROR(ctx.control->Check());
      }
      Result<ChaseOutcome> expanded = chase.ExpandToLevel(level);
      if (!expanded.ok()) {
        // Budget tripped mid-expansion. A witness into the partial prefix is
        // still a witness (every chase fact is derived), so search once
        // before surfacing the error — this also keeps verdicts identical
        // between a fresh chase (which searches level by level on the way
        // up) and a cache-resumed one that starts deep and may re-trip a
        // sticky limit before its first search. (Not for a cancelled
        // request: its caller asked us to stop, not to answer.)
        if (expanded.status().code() == StatusCode::kResourceExhausted &&
            search_witness()) {
          return report;
        }
        return expanded.status();
      }
      ChaseOutcome outcome = *expanded;
      report.chase_outcome = outcome;
      report.chase_conjuncts = chase.AliveConjuncts().size();
      report.chase_levels = chase.MaxAliveLevel();

      if (outcome == ChaseOutcome::kEmptyQuery) {
        // Q is unsatisfiable under Σ: Q(D) = ∅ for every Σ-database, so Q
        // is contained in any Q' of matching arity.
        report.contained = true;
        return report;
      }

      if (search_witness()) return report;

      if (outcome == ChaseOutcome::kSaturated) {
        report.contained = false;
        return report;
      }
      if (bound_is_complete && level >= bound) {
        // Lemma 5: any homomorphism could have been remapped into the
        // prefix of level <= bound; none exists there, so none at all.
        report.contained = false;
        return report;
      }
      if (level >= options.limits.max_level) {
        return Status::ResourceExhausted(StrCat(
            "containment undecided at chase level ", level, " (bound ",
            bound, ", max_level ", options.limits.max_level, ")"));
      }
      uint32_t next = level + options.level_stride;
      level = std::min<uint64_t>(
          std::min<uint64_t>(next, options.limits.max_level),
          bound_is_complete ? std::max<uint64_t>(bound, 1) : next);
    }
  }();

  // Certificate extraction happens here — while the chase (shared or local)
  // is still alive and, for a shared prefix, still locked by us. This is
  // the "no re-chase" unification: the decision's own derivation becomes
  // the Theorem 2 proof object.
  if (ctx.cert_out != nullptr && result.ok() && result->contained) {
    if (chase.is_empty_query()) {
      ContainmentCertificate cert;
      cert.q_is_empty = true;
      *ctx.cert_out = std::move(cert);
    } else if (result->witness.has_value()) {
      *ctx.cert_out = ExtractCertificateFromChase(chase, *result->witness);
    }
    if (ctx.cert_out->has_value()) Bump(stats_.certificates_built);
  }

  // Harvest this turn's chase work into the engine counters — under the
  // shared entry's lock (the chase is still ours), as monotone deltas
  // against the turn-start snapshot.
  const ChaseStats& cs = chase.chase_stats();
  BumpBy(stats_.chase_steps, cs.steps - chase_stats_before.steps);
  BumpBy(stats_.chase_index_rebuilds,
         cs.index_rebuilds - chase_stats_before.index_rebuilds);
  BumpBy(stats_.segments_built,
         cs.segments_built - chase_stats_before.segments_built);
  BumpBy(stats_.bulk_ind_applications,
         cs.bulk_ind_applications - chase_stats_before.bulk_ind_applications);
  BumpBy(stats_.inds_pruned,
         cs.inds_pruned - chase_stats_before.inds_pruned);
  BumpBy(stats_.parallel_batches,
         cs.parallel_batches - chase_stats_before.parallel_batches);
  BumpBy(stats_.parallel_serialized_levels,
         cs.parallel_serialized_levels -
             chase_stats_before.parallel_serialized_levels);

  // Lineage harvest: the chase's used-dependency bitmaps, as structural
  // fingerprints. Taken while the chase is still ours (shared entries are
  // still locked). A shared prefix's bits are cumulative across every asker
  // that extended it — an over-approximation of what *this* decision used,
  // which only ever makes a future delta drop more than strictly needed:
  // conservative, never wrong.
  if (ctx.lineage != nullptr && result.ok()) {
    ctx.lineage->known = true;
    ctx.lineage->used_fps =
        UsedDependencyFingerprints(deps, chase.used_inds(), chase.used_fds());
  }

  chase.set_control(nullptr);
  // No release step: the shared entry stayed in the cache the whole time
  // (touched to most-recently-used at lookup); shared_lock and our
  // shared_ptr reference drop on return.
  return result;
}

Result<std::optional<ContainmentCertificate>> ContainmentEngine::Certify(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const DependencySet& deps) {
  RequestOptions options;
  options.want_certificate = true;
  // Inline, like Check: a blocking shim gains nothing from the executor
  // hop, and a purely synchronous caller should not spin up the pool.
  CQCHASE_ASSIGN_OR_RETURN(
      EngineOutcome outcome,
      Execute(q, q_prime, deps, options, /*control=*/nullptr,
              /*cache_chase_prefix=*/true));
  if (!outcome.verdict.report.contained) {
    return std::optional<ContainmentCertificate>();
  }
  if (!outcome.certificate.has_value()) {
    return Status::Internal(
        "contained verdict resolved without the requested certificate");
  }
  return std::optional<ContainmentCertificate>(
      std::move(*outcome.certificate));
}

Result<bool> ContainmentEngine::CheckEquivalence(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const DependencySet& deps) {
  CQCHASE_ASSIGN_OR_RETURN(EngineVerdict forward, Check(q, q_prime, deps));
  if (!forward.report.contained) return false;
  CQCHASE_ASSIGN_OR_RETURN(EngineVerdict backward, Check(q_prime, q, deps));
  return backward.report.contained;
}

std::vector<Result<EngineVerdict>> ContainmentEngine::CheckMany(
    const std::vector<ContainmentTask>& tasks) {
  std::vector<Result<EngineVerdict>> out;
  out.reserve(tasks.size());
  auto null_error = [](size_t i) {
    return Status::InvalidArgument(
        StrCat("CheckMany task ", i, " has a null pointer"));
  };

  // Warm the tier stack for the whole batch first (both paths — the
  // sequential shim pays per-key RTTs to a network tier just as surely as
  // the fan-out does). Misses enter the remote tier's negative cache here,
  // so the per-task Lookups below cost zero further round trips either way.
  if (tasks.size() > 1) {
    std::vector<std::string> keys;
    keys.reserve(tasks.size());
    for (const ContainmentTask& t : tasks) {
      if (t.q == nullptr || t.q_prime == nullptr || t.deps == nullptr) continue;
      keys.push_back(TierKeyForPrefetch(*t.q, *t.q_prime, *t.deps));
      if (keys.back().empty()) keys.pop_back();
    }
    PrefetchTierKeys(keys);
  }

  if (config_.num_threads <= 1 || tasks.size() <= 1) {
    // Sequential fast path: exact historical behavior, no executor hop.
    for (size_t i = 0; i < tasks.size(); ++i) {
      const ContainmentTask& t = tasks[i];
      if (t.q == nullptr || t.q_prime == nullptr || t.deps == nullptr) {
        out.push_back(null_error(i));
        continue;
      }
      out.push_back(Check(*t.q, *t.q_prime, *t.deps));
    }
    return out;
  }

  // Batch shim over the async API: Borrow is safe because this frame blocks
  // until every future resolves. The executor (width >= num_threads when
  // sized by it) replaces the per-call thread spawn/join of old.
  std::vector<EngineFuture<EngineOutcome>> futures(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    const ContainmentTask& t = tasks[i];
    if (t.q == nullptr || t.q_prime == nullptr || t.deps == nullptr) continue;
    futures[i] = Submit(ContainmentRequest::Borrow(*t.q, *t.q_prime, *t.deps));
  }
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (!futures[i].valid()) {
      out.push_back(null_error(i));
      continue;
    }
    Result<EngineOutcome> r = futures[i].Get();
    if (!r.ok()) {
      out.push_back(r.status());
    } else {
      EngineOutcome outcome = *std::move(r);
      out.push_back(std::move(outcome.verdict));
    }
  }
  return out;
}

Result<bool> ContainmentEngine::IsNonMinimal(const ConjunctiveQuery& q,
                                             const DependencySet& deps) {
  if (q.is_empty_query() || q.conjuncts().empty()) return false;
  for (size_t i = 0; i < q.conjuncts().size(); ++i) {
    if (!RemovalKeepsSafety(q, i)) continue;
    ConjunctiveQuery candidate = WithoutConjunct(q, i);
    // Candidate-side probe: the chased side is this one-shot candidate whose
    // exact key never repeats, so skip chase-prefix caching (the verdict
    // cache still absorbs isomorphic candidates).
    CQCHASE_ASSIGN_OR_RETURN(
        EngineVerdict v,
        CheckCounted(candidate, q, deps, /*cache_chase_prefix=*/false));
    if (v.report.contained) return true;
  }
  return false;
}

Result<MinimizeReport> ContainmentEngine::Minimize(const ConjunctiveQuery& q,
                                                   const DependencySet& deps) {
  MinimizeReport report{q, 0, 0};
  bool changed = true;
  while (changed && !report.query.conjuncts().empty()) {
    changed = false;
    for (size_t i = 0; i < report.query.conjuncts().size(); ++i) {
      if (!RemovalKeepsSafety(report.query, i)) continue;
      ConjunctiveQuery candidate = WithoutConjunct(report.query, i);
      ++report.containment_checks;
      // One-shot candidate probe; see IsNonMinimal.
      CQCHASE_ASSIGN_OR_RETURN(EngineVerdict v,
                               CheckCounted(candidate, report.query, deps,
                                            /*cache_chase_prefix=*/false));
      if (v.report.contained) {
        report.query = std::move(candidate);
        ++report.removed_conjuncts;
        changed = true;
        break;
      }
    }
  }
  return report;
}

Result<ContainmentEngine::FdUnifyResult> ContainmentEngine::FdUnify(
    const ConjunctiveQuery& q, const DependencySet& deps) {
  if (&q.symbols() != symbols_) {
    return Status::InvalidArgument(
        "queries must be built against the engine's symbol table");
  }
  FdUnifyResult result{q, 0, false};
  if (deps.fds().empty()) return result;
  DependencySet fds = deps.FdsOnly();
  Chase chase(&q.catalog(), symbols_, &fds, ChaseVariant::kRequired,
              config_.containment.limits);
  CQCHASE_RETURN_IF_ERROR(chase.Init(q));
  CQCHASE_ASSIGN_OR_RETURN(ChaseOutcome outcome, chase.Run());
  BumpBy(stats_.chase_steps, chase.chase_stats().steps);
  if (outcome == ChaseOutcome::kEmptyQuery) {
    ConjunctiveQuery empty(&q.catalog(), &q.symbols());
    empty.SetSummary(q.summary());
    empty.MarkEmptyQuery();
    result.query = std::move(empty);
    result.proved_empty = true;
    return result;
  }
  const size_t before = q.Variables().size();
  result.query = chase.AsQuery();
  result.variables_unified = before - result.query.Variables().size();
  return result;
}

Result<std::optional<Instance>> ContainmentEngine::ExhaustiveCounterexample(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const DependencySet& deps, const ExhaustiveSearchParams& params) {
  return ExhaustiveFiniteCounterexample(q, q_prime, deps, *symbols_, params);
}

Result<std::optional<Instance>> ContainmentEngine::RandomCounterexample(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const DependencySet& deps, const RandomSearchParams& params) {
  return RandomFiniteCounterexample(q, q_prime, deps, *symbols_, params);
}

Result<std::optional<Instance>> ContainmentEngine::FiniteCounterexample(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const DependencySet& deps, const FiniteWitnessParams& params) {
  return FiniteCounterexampleFromWitness(q, q_prime, deps, *symbols_, params);
}

EngineStats ContainmentEngine::stats() const {
  EngineStats out;
  out.checks = stats_.checks.load(std::memory_order_relaxed);
  out.cache_hits = stats_.cache_hits.load(std::memory_order_relaxed);
  out.cache_misses = stats_.cache_misses.load(std::memory_order_relaxed);
  out.chase_prefix_reuses =
      stats_.chase_prefix_reuses.load(std::memory_order_relaxed);
  out.chases_built = stats_.chases_built.load(std::memory_order_relaxed);
  // Store/remote rollups are sums over the stack's per-tier counters —
  // the tiers are the source of truth for what they served and accepted.
  if (tiers_ != nullptr) {
    const std::vector<VerdictTierStats> tier_rows = tiers_->Stats();
    size_t row = 0;
    for (const TierStack::TierDescriptor& desc : tiers_->descriptors()) {
      if (!desc.active) continue;
      const VerdictTierStats& tier = tier_rows[row++];
      if (desc.kind == TierSpec::Kind::kLocalStore) {
        out.store_hits += tier.hits;
        out.store_writes += tier.publishes;
      } else if (desc.kind == TierSpec::Kind::kRemote) {
        out.remote_hits += tier.hits;
        out.remote_writes += tier.publishes;
      }
    }
  }
  out.entries_retagged =
      stats_.entries_retagged.load(std::memory_order_relaxed);
  out.entries_dropped = stats_.entries_dropped.load(std::memory_order_relaxed);
  out.monotone_hits = stats_.monotone_hits.load(std::memory_order_relaxed);
  out.submits = stats_.submits.load(std::memory_order_relaxed);
  out.deadline_expirations =
      stats_.deadline_expirations.load(std::memory_order_relaxed);
  out.cancellations = stats_.cancellations.load(std::memory_order_relaxed);
  out.certificates_built =
      stats_.certificates_built.load(std::memory_order_relaxed);
  out.chase_steps = stats_.chase_steps.load(std::memory_order_relaxed);
  out.chase_index_rebuilds =
      stats_.chase_index_rebuilds.load(std::memory_order_relaxed);
  out.segments_built = stats_.segments_built.load(std::memory_order_relaxed);
  out.bulk_ind_applications =
      stats_.bulk_ind_applications.load(std::memory_order_relaxed);
  out.inds_pruned = stats_.inds_pruned.load(std::memory_order_relaxed);
  out.parallel_batches =
      stats_.parallel_batches.load(std::memory_order_relaxed);
  out.parallel_serialized_levels =
      stats_.parallel_serialized_levels.load(std::memory_order_relaxed);
  const Executor::StatsSnapshot exec = executor_.stats();
  out.executor_tasks = exec.executed;
  out.executor_steals = exec.steals;
  out.executor_queue_depth = exec.queue_depth;
  out.executor_workers = exec.workers;
  for (size_t i = 0; i < kNumStrategies; ++i) {
    out.by_strategy[i] = stats_.by_strategy[i].load(std::memory_order_relaxed);
  }
  return out;
}

ContainmentEngine::CacheSizes ContainmentEngine::cache_sizes() const {
  CacheSizes sizes;
  sizes.verdict_entries = tiers_ != nullptr ? tiers_->lru_entries() : 0;
  std::lock_guard<std::mutex> lock(mu_);
  sizes.sigma_entries = sigma_cache_.size();
  sizes.chase_entries = chase_cache_.size();
  return sizes;
}

std::vector<VerdictTierStats> ContainmentEngine::tier_stats() const {
  if (tiers_ == nullptr) return {};
  return tiers_->Stats();
}

std::vector<TierStack::TierDescriptor> ContainmentEngine::tier_descriptors()
    const {
  if (tiers_ == nullptr) return {};
  return tiers_->descriptors();
}

const VerdictStore* ContainmentEngine::store() const {
  return tiers_ != nullptr ? tiers_->local_store() : nullptr;
}

void ContainmentEngine::ClearCaches() {
  if (tiers_ != nullptr) tiers_->Clear();
  std::lock_guard<std::mutex> lock(mu_);
  chase_cache_.Clear();
  sigma_cache_.Clear();
}

DeltaReceipt ContainmentEngine::EvolveSigma(const DependencySet& old_deps,
                                            const DependencySet& new_deps) {
  DeltaReceipt receipt;
  const LineageDelta ld = MakeLineageDelta(old_deps, new_deps);
  if (ld.empty()) return receipt;
  {
    // The Σ-analysis and chase-prefix caches embed the old Σ (a shared
    // chase holds a live copy of it). Their old-Σ entries are unreachable
    // under new-Σ keys anyway; clearing reclaims the pinned chases rather
    // than letting them age out of the LRU.
    std::lock_guard<std::mutex> lock(mu_);
    chase_cache_.Clear();
    sigma_cache_.Clear();
  }
  if (tiers_ != nullptr) receipt = tiers_->ApplyDelta(ld);
  BumpBy(stats_.entries_retagged, receipt.retagged());
  BumpBy(stats_.entries_dropped, receipt.dropped);
  return receipt;
}

}  // namespace cqchase
