#include "engine/canonical.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "base/string_util.h"

namespace cqchase {

namespace {

// Renders a constant unambiguously: the length prefix delimits the name, so
// names containing quotes/commas/parentheses cannot splice into the
// surrounding key syntax and collide two different constant sequences.
std::string EncodeConstant(const SymbolTable& symbols, Term t) {
  const std::string& name = symbols.Name(t);
  return StrCat("c", name.size(), "#", name);
}

// Assigns canonical names on first use: d0,d1,… for DVs, n0,n1,… for NDVs.
// Constants keep their interned names (their identity is shared across the
// whole task and must survive canonicalization).
class Namer {
 public:
  explicit Namer(const SymbolTable& symbols) : symbols_(symbols) {}

  std::string NameOf(Term t) {
    if (t.is_constant()) return EncodeConstant(symbols_, t);
    auto it = names_.find(t);
    if (it != names_.end()) return it->second;
    std::string name = t.is_dist_var() ? StrCat("d", next_d_++)
                                       : StrCat("n", next_n_++);
    names_.emplace(t, name);
    return name;
  }

 private:
  const SymbolTable& symbols_;
  std::unordered_map<Term, std::string> names_;
  size_t next_d_ = 0;
  size_t next_n_ = 0;
};

std::string EncodeFact(const Fact& f, Namer& namer) {
  std::string out = StrCat("R", f.relation, "(");
  for (size_t i = 0; i < f.terms.size(); ++i) {
    if (i != 0) out += ",";
    out += namer.NameOf(f.terms[i]);
  }
  out += ")";
  return out;
}

std::string EncodeSummary(const std::vector<Term>& summary, Namer& namer) {
  std::string out = "(";
  for (size_t i = 0; i < summary.size(); ++i) {
    if (i != 0) out += ",";
    out += namer.NameOf(summary[i]);
  }
  out += ")";
  return out;
}

// Naming-free signature of one conjunct, built only from isomorphism
// invariants: the relation, constants by name, and for each variable its
// kind, its first occurrence within this conjunct (the local equality
// pattern), its total occurrence count across the query, and the summary
// positions it fills.
std::string InitialSignature(const Fact& f,
                             const std::vector<Term>& summary,
                             const std::unordered_map<Term, size_t>& counts,
                             const SymbolTable& symbols) {
  std::string out = StrCat("R", f.relation, "(");
  for (size_t i = 0; i < f.terms.size(); ++i) {
    if (i != 0) out += ",";
    Term t = f.terms[i];
    if (t.is_constant()) {
      out += EncodeConstant(symbols, t);
      continue;
    }
    size_t first = i;
    for (size_t j = 0; j < i; ++j) {
      if (f.terms[j] == t) {
        first = j;
        break;
      }
    }
    out += StrCat(t.is_dist_var() ? "d" : "n", "@", first, "#",
                  counts.at(t), "s");
    for (size_t j = 0; j < summary.size(); ++j) {
      if (summary[j] == t) out += StrCat(j, ".");
    }
  }
  out += ")";
  return out;
}

}  // namespace

std::string CanonicalQueryKey(const ConjunctiveQuery& q) {
  const SymbolTable& symbols = q.symbols();
  if (q.is_empty_query()) {
    Namer namer(symbols);
    return StrCat("Q{!EMPTY", EncodeSummary(q.summary(), namer), "}");
  }

  const std::vector<Fact>& conjuncts = q.conjuncts();
  std::unordered_map<Term, size_t> counts;
  for (const Fact& f : conjuncts) {
    for (Term t : f.terms) {
      if (t.is_variable()) ++counts[t];
    }
  }

  std::vector<size_t> order(conjuncts.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::string> sigs(conjuncts.size());
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    sigs[i] = InitialSignature(conjuncts[i], q.summary(), counts, symbols);
  }

  // Refinement rounds: order by signature, rename by first occurrence in
  // that order, re-sign with the full canonical rendering. Two rounds past
  // the initial invariant signatures are enough to reach a fixpoint on
  // everything short of highly symmetric queries (whose ties only cost cache
  // misses — see header).
  for (int round = 0; round < 3; ++round) {
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return sigs[a] < sigs[b];
    });
    Namer namer(symbols);
    for (Term t : q.summary()) namer.NameOf(t);
    std::vector<std::string> next(conjuncts.size());
    for (size_t i : order) next[i] = EncodeFact(conjuncts[i], namer);
    if (next == sigs) break;
    sigs = std::move(next);
  }

  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return sigs[a] < sigs[b];
  });
  Namer namer(symbols);
  std::string out = StrCat("Q{", EncodeSummary(q.summary(), namer), ":");
  for (size_t i : order) {
    out += EncodeFact(conjuncts[i], namer);
    out += ";";
  }
  out += "}";
  return out;
}

std::string CanonicalSigmaKey(const DependencySet& deps) {
  std::vector<std::string> parts;
  parts.reserve(deps.size());
  for (const FunctionalDependency& fd : deps.fds()) {
    std::string p = StrCat("F", fd.relation, ":");
    for (uint32_t c : fd.lhs) p += StrCat(c, ",");
    p += StrCat(">", fd.rhs);
    parts.push_back(std::move(p));
  }
  for (const InclusionDependency& ind : deps.inds()) {
    std::string p = StrCat("I", ind.lhs_relation, "[");
    for (uint32_t c : ind.lhs_columns) p += StrCat(c, ",");
    p += StrCat("]<=", ind.rhs_relation, "[");
    for (uint32_t c : ind.rhs_columns) p += StrCat(c, ",");
    p += "]";
    parts.push_back(std::move(p));
  }
  std::sort(parts.begin(), parts.end());
  std::string out = "S{";
  for (const std::string& p : parts) {
    out += p;
    out += ";";
  }
  out += "}";
  return out;
}

std::string CanonicalTaskKey(const ConjunctiveQuery& q,
                             const ConjunctiveQuery& q_prime,
                             const DependencySet& deps, ChaseVariant variant) {
  return StrCat("V", static_cast<int>(variant), "|", CanonicalSigmaKey(deps),
                "|", CanonicalQueryKey(q), "|=>|", CanonicalQueryKey(q_prime));
}

}  // namespace cqchase
