// A persistent work-stealing thread pool: the execution substrate of the
// engine's async Submit API.
//
// Before this existed, every CheckMany call spawned num_threads fresh
// std::threads and joined them — fine for one big batch, pure churn for a
// service answering a stream of small ones. The Executor keeps its workers
// alive across calls:
//
//   * one deque per worker. Submissions are dealt round-robin to the worker
//     deques; a worker pops its own deque from the front (FIFO for fairness
//     of same-queue submissions) and, when empty, *steals* from the back of
//     another worker's deque. Stealing keeps all cores busy under skew —
//     e.g. when one queue happens to receive the long-running chases.
//   * lazy start: constructing an Executor is free; worker threads spawn on
//     the first Submit. An engine that only ever serves synchronous
//     single-shot calls never pays for a pool.
//   * high-priority submissions jump to the front of their deque (LIFO), so
//     a latency-sensitive request overtakes queued work without a separate
//     priority queue.
//   * deadline shedding at dequeue: a task submitted with a deadline and an
//     on_expired handler that is popped after its deadline passed runs the
//     handler instead of the body — expired work is completed (the handler
//     resolves its future kDeadlineExceeded) without ever occupying a
//     worker slot for the body's sake.
//   * destruction drains: remaining queued tasks run to completion before
//     the workers join, so a future handed out for a queued task always
//     completes (tasks observe cancellation/deadlines through their own
//     ChaseControl, which is how a drain stays prompt).
//
// Tasks must not block waiting for other tasks of the same Executor (the
// classic pool deadlock); the engine's blocking shims (CheckMany, Certify)
// are documented as caller-side APIs for exactly this reason. The one
// sanctioned exception is TaskGroup::Join, whose helping join runs the
// group's unstarted tasks on the joining thread instead of sleeping — a
// worker can fork a group into its own pool and join it deadlock-free even
// on a single-worker pool.
//
// Locking: each deque has its own mutex (submit and steal touch one deque
// at a time); a global mutex+condvar only handles sleep/wakeup of idle
// workers. Tasks are coarse (whole containment decisions), so deque
// operations are far off any hot path.
#ifndef CQCHASE_ENGINE_EXECUTOR_H_
#define CQCHASE_ENGINE_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "chase/parallel.h"

namespace cqchase {

class Executor {
 public:
  // `num_workers` is clamped to >= 1. Threads are not created here.
  explicit Executor(size_t num_workers);

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Blocks until every already-submitted task has run, then joins.
  ~Executor();

  // Enqueues `task`. First call starts the worker threads. With
  // `high_priority` the task is pushed to the *front* of its deque and runs
  // before that deque's queued normal-priority work.
  void Submit(std::function<void()> task, bool high_priority = false);

  // Scheduling policy for one task beyond the priority bit.
  struct TaskOptions {
    bool high_priority = false;
    // When set *with* on_expired: a task still queued past this instant is
    // shed at dequeue — the worker runs the (cheap) on_expired handler
    // instead of the task body, so an already-dead request never occupies a
    // worker slot just to notice its deadline at the first control poll.
    // Under overload this is the difference between workers chewing through
    // a backlog of corpses and workers reaching the requests that can still
    // make their deadlines.
    std::optional<std::chrono::steady_clock::time_point> deadline;
    // Completion path for a shed task (resolve the future, count the
    // expiration). Without it the task always runs — the executor never
    // silently drops work someone holds a future for.
    std::function<void()> on_expired;
  };

  // Enqueues `task` with scheduling options (see TaskOptions).
  void Submit(std::function<void()> task, TaskOptions options);

  // A scoped fork/join over this executor: Spawn hands tasks to the pool,
  // Join blocks until every spawned task completed. The join *helps*: while
  // tasks of this group are still unstarted, the joining thread pops and
  // runs them itself rather than sleeping, so a group spawned from inside a
  // worker task cannot deadlock the pool (the parallel chase core forks
  // witness-class sweeps from whatever thread runs the chase — see
  // chase/parallel.h). Each spawned body runs exactly once — on a worker or
  // inline in Join — including when its pool slot was shed past a deadline
  // (the shed runs on_expired; Join then runs the body inline).
  //
  // Thread-safety: Spawn and Join may be called from any single thread (the
  // owner); the destructor joins. Not reusable after Join returns with no
  // Spawns outstanding — create a fresh group per fork/join region.
  class TaskGroup {
   public:
    explicit TaskGroup(Executor* executor);
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;
    ~TaskGroup();  // Join()

    // Enqueues one task of the group (high-priority by default: a fork/join
    // region is latency-bound on its slowest member).
    void Spawn(std::function<void()> fn, TaskOptions options = SpawnDefaults());

    // Runs remaining unstarted group tasks inline, then blocks until the
    // in-flight ones finish. Safe to call from a pool worker.
    void Join();

   private:
    static TaskOptions SpawnDefaults() {
      TaskOptions options;
      options.high_priority = true;
      return options;
    }
    struct State {
      std::mutex mu;
      std::condition_variable cv;
      std::deque<std::function<void()>> unstarted;
      size_t active = 0;  // popped, still running
    };
    Executor* executor_;
    std::shared_ptr<State> state_;
  };

  size_t num_workers() const { return queues_.size(); }

  // Monotone counters plus two gauges (queue_depth, started). `steals` is
  // the scheduler-health signal: zero under an even load, spiking when some
  // deques run long tasks while others sit idle.
  struct StatsSnapshot {
    uint64_t submitted = 0;
    uint64_t executed = 0;
    uint64_t steals = 0;
    uint64_t shed = 0;         // dequeued past their deadline; on_expired ran
    uint64_t queue_depth = 0;  // queued, not yet started (gauge)
    uint64_t workers = 0;
    bool started = false;
  };
  StatsSnapshot stats() const;

 private:
  // One queued task: the body plus the shed-at-dequeue policy.
  struct Task {
    std::function<void()> run;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    std::function<void()> on_expired;
  };

  // Cache-line-ish isolation is not worth the complexity here (tasks are
  // milliseconds, not nanoseconds); a plain mutex per deque suffices.
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void EnsureStarted();
  void WorkerLoop(size_t self);
  // Own deque front first, then other deques' backs (round-robin from
  // self+1). Decrements pending_ on success.
  bool TryPop(size_t self, Task& out);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;

  // Guards threads_/started_/stopping_ and carries idle workers' sleep.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> threads_;
  bool started_ = false;
  bool stopping_ = false;

  std::atomic<size_t> next_queue_{0};  // round-robin submission cursor
  std::atomic<size_t> pending_{0};     // queued, not yet popped
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> shed_{0};
};

// ChaseTaskRunner over an Executor: the engine-side implementation the
// parallel chase core's barrier contract (chase/parallel.h) is handed.
// RunAll forks the batch as a TaskGroup and helping-joins it, so calling it
// from an engine worker (the normal case — chases run inside Submit tasks)
// is deadlock-free. A null executor degrades to inline execution. The
// runner itself is stateless per call and safe to share across concurrent
// chases.
class ExecutorTaskRunner : public ChaseTaskRunner {
 public:
  explicit ExecutorTaskRunner(Executor* executor) : executor_(executor) {}

  // For members that must be constructed before the executor they use:
  // rebind once the executor exists (not thread-safe; wire-up time only).
  void set_executor(Executor* executor) { executor_ = executor; }

  void RunAll(std::vector<std::function<void()>> tasks) override;

 private:
  Executor* executor_;
};

}  // namespace cqchase

#endif  // CQCHASE_ENGINE_EXECUTOR_H_
