#include "engine/store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "base/string_util.h"

namespace cqchase {

namespace {

constexpr char kSnapshotFile[] = "snapshot.cqvs";
constexpr char kLogFile[] = "log.cqvl";

// mkdir -p: creates every missing component of `dir`.
Status MakeDirs(const std::string& dir) {
  std::string prefix;
  prefix.reserve(dir.size());
  for (size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') {
      prefix.push_back(dir[i]);
      continue;
    }
    if (i < dir.size()) prefix.push_back('/');
    if (prefix.empty() || prefix == "/") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal(StrCat("mkdir ", prefix, " failed: ",
                                     std::strerror(errno)));
    }
  }
  return Status::OK();
}

// Reads the whole file; kNotFound when it does not exist.
Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return Status::NotFound(path);
    return Status::Internal(StrCat("open ", path, " failed: ",
                                   std::strerror(errno)));
  }
  std::string out;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal(StrCat("read ", path, " failed"));
  }
  return out;
}

// Parent directory of `path` ("." when there is no slash).
std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

// fsyncs the directory holding `path`, making a just-created or
// just-renamed entry itself crash-durable (the file's fsync alone does not
// persist the directory entry pointing at it).
void SyncDir(const std::string& path) {
  const int fd = ::open(DirName(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal(StrCat("open ", tmp, " failed: ",
                                   std::strerror(errno)));
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  // fsync, not just fflush: Compact() deletes the log right after this
  // rename lands, so the snapshot must be on the platter (not the page
  // cache) before the only other copy of the data goes away.
  const bool sync_error =
      std::fflush(f) != 0 || ::fsync(::fileno(f)) != 0;
  std::fclose(f);
  if (written != bytes.size() || sync_error) {
    std::remove(tmp.c_str());
    return Status::Internal(StrCat("write ", tmp, " failed"));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal(StrCat("rename ", tmp, " -> ", path, " failed: ",
                                   std::strerror(errno)));
  }
  SyncDir(path);
  return Status::OK();
}

Status AppendToFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::Internal(StrCat("open ", path, " failed: ",
                                   std::strerror(errno)));
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  // fsync is affordable here because flushes are batched and run off the
  // decision path (on the executor); it is what makes "durable after the
  // next Flush" hold against OS crashes, not just process crashes.
  const bool sync_error =
      std::fflush(f) != 0 || ::fsync(::fileno(f)) != 0;
  std::fclose(f);
  if (written != bytes.size() || sync_error) {
    return Status::Internal(StrCat("append to ", path, " failed"));
  }
  return Status::OK();
}

// The log's leading frame: file identity, checked before any entry is
// believed.
std::string EncodeLogHeader() {
  std::string payload;
  wire::PutU32(payload, kLogMagic);
  wire::PutU32(payload, kStoreFormatVersion);
  wire::PutU64(payload, StoreSchemaFingerprint());
  std::string out;
  wire::PutFramed(out, payload);
  return out;
}

}  // namespace

VerdictStore::VerdictStore(std::string dir, VerdictStoreOptions options)
    : dir_(std::move(dir)), options_(options) {}

Result<std::unique_ptr<VerdictStore>> VerdictStore::Open(
    const std::string& dir, VerdictStoreOptions options) {
  CQCHASE_RETURN_IF_ERROR(MakeDirs(dir));
  // Single-owner exclusion: a second opener — same process or another —
  // must not interleave log appends or compact files out from under the
  // first. flock, not a lock *file*: the kernel releases it when the
  // process dies, so a crash never wedges the store.
  const std::string lock_path = StrCat(dir, "/LOCK");
  const int lock_fd =
      ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (lock_fd < 0) {
    return Status::Internal(StrCat("open ", lock_path, " failed: ",
                                   std::strerror(errno)));
  }
  if (::flock(lock_fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(lock_fd);
    return Status::FailedPrecondition(
        StrCat("verdict store ", dir, " is locked by another VerdictStore; "
               "a store directory has exactly one owner at a time"));
  }
  std::unique_ptr<VerdictStore> store(new VerdictStore(dir, options));
  store->lock_fd_ = lock_fd;
  CQCHASE_RETURN_IF_ERROR(store->LoadSnapshot());
  CQCHASE_RETURN_IF_ERROR(store->ReplayLog());
  if (store->legacy_format_seen_) {
    // Rewrite both files at the current format version right away, before
    // any new entry is appended: a current-format frame behind an old log
    // header would be shed as a torn tail by the next Open. On failure
    // (full disk) the restored entries still serve from memory and the old
    // files stay intact; frames appended after the failure are the only
    // ones a future Open may shed, and it re-attempts this migration.
    store->Compact();
  }
  store->opened_ = true;
  return store;
}

VerdictStore::~VerdictStore() {
  if (opened_) {
    Flush();
    if (options_.compact_on_close) Compact();
  }
  if (lock_fd_ >= 0) ::close(lock_fd_);  // close releases the flock
}

std::string VerdictStore::SnapshotPath() const {
  return StrCat(dir_, "/", kSnapshotFile);
}

std::string VerdictStore::LogPath() const { return StrCat(dir_, "/", kLogFile); }

void VerdictStore::Quarantine(const std::string& path) {
  const std::string target = path + ".quarantine";
  std::remove(target.c_str());  // at most one quarantine generation is kept
  if (std::rename(path.c_str(), target.c_str()) == 0) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.quarantined_files;
  }
}

Status VerdictStore::LoadSnapshot() {
  const std::string path = SnapshotPath();
  Result<std::string> bytes = ReadFile(path);
  if (!bytes.ok()) {
    if (bytes.status().code() == StatusCode::kNotFound) return Status::OK();
    return bytes.status();
  }
  wire::ByteReader reader(*bytes);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t fingerprint = 0;
  uint64_t count = 0;
  uint64_t payload_size = 0;
  uint64_t payload_checksum = 0;
  const bool header_ok =
      reader.ReadU32(&magic) && reader.ReadU32(&version) &&
      reader.ReadU64(&fingerprint) && reader.ReadU64(&count) &&
      reader.ReadU64(&payload_size) && reader.ReadU64(&payload_checksum);
  // Every failure below means the same thing: these bytes cannot be trusted
  // as verdicts. Quarantine the file and start empty — a rebuilt cache is
  // merely cold, a believed corrupt one is wrong.
  // Any still-supported older version is readable — a fleet rolls the
  // format forward without losing its warm stores — but the fingerprint
  // must be the one *that* version's layout hashes to, else the bytes were
  // written by something we never were.
  if (!header_ok || magic != kSnapshotMagic ||
      fingerprint != StoreSchemaFingerprintFor(version) ||
      StoreSchemaFingerprintFor(version) == 0 ||
      payload_size != reader.remaining()) {
    Quarantine(path);
    return Status::OK();
  }
  std::string_view payload;
  if (!reader.ReadBytes(payload_size, &payload) ||
      wire::Fnv1a64(payload) != payload_checksum) {
    Quarantine(path);
    return Status::OK();
  }
  // The count is header data the payload checksum does not cover, so it is
  // as hostile as any other byte: an entry is at least 37 bytes (fixed
  // fields + an empty key), and a count the payload cannot possibly hold
  // means a corrupt header — quarantine before reserve() turns it into an
  // allocation blow-up.
  constexpr uint64_t kMinEntryBytes = 37;
  if (count > payload_size / kMinEntryBytes) {
    Quarantine(path);
    return Status::OK();
  }
  std::unordered_map<std::string, StoredVerdict> loaded;
  loaded.reserve(count);
  wire::ByteReader entries(payload);
  for (uint64_t i = 0; i < count; ++i) {
    std::string key;
    StoredVerdict verdict;
    if (!DecodeVerdictEntry(entries, &key, &verdict, version).ok()) {
      Quarantine(path);
      return Status::OK();
    }
    loaded.emplace(std::move(key), verdict);
  }
  if (entries.remaining() != 0) {  // count and payload must agree exactly
    Quarantine(path);
    return Status::OK();
  }
  if (version != kStoreFormatVersion) legacy_format_seen_ = true;
  std::lock_guard<std::mutex> lock(mu_);
  counters_.snapshot_entries_loaded += loaded.size();
  map_ = std::move(loaded);
  return Status::OK();
}

Status VerdictStore::ReplayLog() {
  const std::string path = LogPath();
  Result<std::string> bytes = ReadFile(path);
  if (!bytes.ok()) {
    if (bytes.status().code() == StatusCode::kNotFound) return Status::OK();
    return bytes.status();
  }
  wire::ByteReader reader(*bytes);
  std::string header;
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t fingerprint = 0;
  bool header_ok = wire::ReadFramed(reader, &header).ok();
  if (header_ok) {
    wire::ByteReader hr(header);
    header_ok = hr.ReadU32(&magic) && hr.ReadU32(&version) &&
                hr.ReadU64(&fingerprint) && magic == kLogMagic &&
                StoreSchemaFingerprintFor(version) != 0 &&
                fingerprint == StoreSchemaFingerprintFor(version);
  }
  if (!header_ok) {
    // A log whose identity frame is wrong is untrusted wholesale — unlike a
    // torn tail, there is no prefix known to be ours.
    Quarantine(path);
    return Status::OK();
  }
  uint64_t replayed = 0;
  size_t good_end = reader.position();
  while (reader.remaining() > 0) {
    std::string payload;
    std::string key;
    StoredVerdict verdict;
    if (!wire::ReadFramed(reader, &payload).ok()) break;
    wire::ByteReader entry(payload);
    // Trailing bytes after the entry are as untrusted as a short one (the
    // snapshot path rejects the same condition): treat the frame as the
    // start of the torn tail.
    if (!DecodeVerdictEntry(entry, &key, &verdict, version).ok() ||
        entry.remaining() != 0) {
      break;
    }
    std::lock_guard<std::mutex> lock(mu_);
    map_[std::move(key)] = verdict;  // log is newer than snapshot: overwrite
    ++replayed;
    good_end = reader.position();
  }
  const size_t torn = bytes->size() - good_end;
  if (torn > 0) {
    // Crash-torn tail: keep the salvaged prefix, drop the bytes after it so
    // future appends land on a clean frame boundary.
    if (::truncate(path.c_str(), static_cast<off_t>(good_end)) != 0) {
      return Status::Internal(StrCat("truncate ", path, " failed: ",
                                     std::strerror(errno)));
    }
  }
  if (version != kStoreFormatVersion) legacy_format_seen_ = true;
  std::lock_guard<std::mutex> lock(mu_);
  counters_.log_entries_replayed += replayed;
  counters_.torn_tail_bytes_dropped += torn;
  log_has_header_ = true;
  return Status::OK();
}

std::optional<StoredVerdict> VerdictStore::Lookup(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

void VerdictStore::Put(const std::string& key, const StoredVerdict& verdict) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_entries > 0 &&
      map_.size() >= options_.max_entries &&
      map_.find(key) == map_.end()) {
    // At the bound a new key is refused outright (overwrites still land):
    // the entry is simply recomputed by whoever asks next, which is the
    // correct degradation for a cache — bounded memory, never a wrong
    // answer. An LRU-style eviction would also need log rewriting to stay
    // durable-consistent; refusal keeps the on-disk format untouched.
    ++counters_.records_capped;
    return;
  }
  map_[key] = verdict;
  pending_.emplace_back(key, verdict);
  ++counters_.appends;
  // Backpressure valve: if flushes keep failing (full disk), requeued
  // batches plus fresh Puts would otherwise grow pending_ without bound.
  // Beyond the cap the *oldest* pending entries lose their durability
  // claim (they stay served from map_; records_dropped says how many) —
  // bounded memory beats an OOM for a cache tier.
  constexpr size_t kMaxPending = 1 << 16;
  if (pending_.size() > kMaxPending) {
    const size_t excess = pending_.size() - kMaxPending;
    pending_.erase(pending_.begin(), pending_.begin() + excess);
    counters_.records_dropped += excess;
  }
}

bool VerdictStore::PutIfAbsent(const std::string& key,
                               const StoredVerdict& verdict) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_entries > 0 &&
      map_.size() >= options_.max_entries &&
      map_.find(key) == map_.end()) {
    ++counters_.records_capped;
    return false;
  }
  if (!map_.emplace(key, verdict).second) return false;
  pending_.emplace_back(key, verdict);
  ++counters_.appends;
  return true;
}

Status VerdictStore::Flush() {
  std::lock_guard<std::mutex> io_lock(io_mu_);
  std::vector<std::pair<std::string, StoredVerdict>> batch;
  bool need_header = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.empty()) return Status::OK();
    batch.swap(pending_);
    need_header = !log_has_header_;
  }
  std::string out;
  if (need_header) out = EncodeLogHeader();
  std::string entry;
  for (const auto& [key, verdict] : batch) {
    entry.clear();
    EncodeVerdictEntry(key, verdict, entry);
    wire::PutFramed(out, entry);
  }
  Status appended = AppendToFile(LogPath(), out);
  // A header write means the log file was just created; its directory
  // entry must reach the platter too, or an OS crash could drop the whole
  // file that fsync just made durable.
  if (appended.ok() && need_header) SyncDir(LogPath());
  std::lock_guard<std::mutex> lock(mu_);
  if (!appended.ok()) {
    // Entries stay served from memory; requeue them so a later flush (or
    // close) retries durability instead of silently dropping them.
    pending_.insert(pending_.begin(),
                    std::make_move_iterator(batch.begin()),
                    std::make_move_iterator(batch.end()));
    ++counters_.write_errors;
    return appended;
  }
  log_has_header_ = true;
  ++counters_.flushes;
  counters_.records_flushed += batch.size();
  return Status::OK();
}

Status VerdictStore::Compact() {
  std::lock_guard<std::mutex> io_lock(io_mu_);
  std::vector<std::pair<std::string, StoredVerdict>> entries;
  std::vector<std::pair<std::string, StoredVerdict>> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(map_.size());
    for (const auto& [key, verdict] : map_) entries.emplace_back(key, verdict);
    // Everything pending is in map_, hence in the snapshot being written —
    // but its durability now rides on that write succeeding, so it is only
    // dropped below once the rename lands (on failure it is requeued for
    // the log, like a failed Flush).
    drained.swap(pending_);
  }
  std::string payload;
  for (const auto& [key, verdict] : entries) {
    EncodeVerdictEntry(key, verdict, payload);
  }
  std::string file;
  wire::PutU32(file, kSnapshotMagic);
  wire::PutU32(file, kStoreFormatVersion);
  wire::PutU64(file, StoreSchemaFingerprint());
  wire::PutU64(file, entries.size());
  wire::PutU64(file, payload.size());
  wire::PutU64(file, wire::Fnv1a64(payload));
  file += payload;
  Status written = WriteFileAtomic(SnapshotPath(), file);
  std::lock_guard<std::mutex> lock(mu_);
  if (!written.ok()) {
    pending_.insert(pending_.begin(),
                    std::make_move_iterator(drained.begin()),
                    std::make_move_iterator(drained.end()));
    ++counters_.write_errors;
    return written;
  }
  if (std::remove(LogPath().c_str()) != 0 && errno != ENOENT &&
      ::truncate(LogPath().c_str(), 0) != 0) {
    // Could neither delete nor empty the old log: keep its header alive so
    // the next Flush appends valid frames to it, instead of embedding a
    // second header mid-file — that header's magic would decode as a bogus
    // entry and get everything after it truncated as a torn tail on the
    // next Open. The log's surviving entries merely duplicate the snapshot
    // and replay harmlessly.
    ++counters_.write_errors;
  } else {
    log_has_header_ = false;
  }
  ++counters_.compactions;
  return Status::OK();
}

DeltaReceipt VerdictStore::ApplyDelta(const LineageDelta& ld) {
  DeltaReceipt receipt;
  if (ld.empty()) return receipt;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Two passes so the outcome is independent of map iteration order: pass
    // 1 carries every untouched entry (among them any entry computed
    // directly under the new Σ), pass 2 emplaces migrated survivors — so a
    // direct new-Σ incumbent always wins the rekeyed slot (it is at least
    // as precise as a survivor). A single pass would let whichever the hash
    // order visited first win.
    std::unordered_map<std::string, StoredVerdict> next;
    next.reserve(map_.size());
    std::vector<std::pair<std::string, StoredVerdict>> survivors;
    for (auto& [key, verdict] : map_) {
      std::string rekeyed;
      const RetagDecision decision =
          ApplyVerdictDelta(ld, key, verdict, &rekeyed);
      receipt.Count(decision);
      switch (decision) {
        case RetagDecision::kUntouched:
          next.emplace(key, std::move(verdict));
          break;
        case RetagDecision::kKeepExact:
        case RetagDecision::kKeepMonotone:
          survivors.emplace_back(std::move(rekeyed), std::move(verdict));
          break;
        case RetagDecision::kDrop:
          break;
      }
    }
    for (auto& [key, verdict] : survivors) {
      next.emplace(std::move(key), std::move(verdict));
    }
    map_ = std::move(next);
    // pending_ mirrors map_ entries awaiting their log append; retag it the
    // same way (uncounted — these are the same logical entries) so that if
    // the compaction below fails, the next Flush still appends
    // correctly-keyed frames instead of resurrecting old-Σ keys. Survivors
    // land *before* untouched entries: log replay lets the later frame win,
    // so a direct new-Σ incumbent must be appended after the survivor that
    // rekeyed onto its slot.
    std::vector<std::pair<std::string, StoredVerdict>> keep;
    std::vector<std::pair<std::string, StoredVerdict>> untouched;
    keep.reserve(pending_.size());
    for (auto& [key, verdict] : pending_) {
      std::string rekeyed;
      switch (ApplyVerdictDelta(ld, key, verdict, &rekeyed)) {
        case RetagDecision::kUntouched:
          untouched.emplace_back(std::move(key), std::move(verdict));
          break;
        case RetagDecision::kKeepExact:
        case RetagDecision::kKeepMonotone:
          keep.emplace_back(std::move(rekeyed), std::move(verdict));
          break;
        case RetagDecision::kDrop:
          break;
      }
    }
    for (auto& entry : untouched) keep.emplace_back(std::move(entry));
    pending_ = std::move(keep);
  }
  // One atomic rename flips the durable state to the new Σ. A crash before
  // it lands leaves the old Σ's files — stale but never wrong: old-Σ keys
  // are simply unreachable from new-Σ queries, and a re-applied delta
  // migrates them again. A failed compact is counted in write_errors and
  // retried by the next Flush/Compact; memory is already migrated.
  Compact();
  return receipt;
}

size_t VerdictStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::vector<std::pair<std::string, StoredVerdict>> VerdictStore::Entries()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, StoredVerdict>> out;
  out.reserve(map_.size());
  for (const auto& [key, verdict] : map_) out.emplace_back(key, verdict);
  return out;
}

bool VerdictStore::has_pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !pending_.empty();
}

VerdictStoreStats VerdictStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  VerdictStoreStats out = counters_;
  out.entries = map_.size();
  out.max_entries = options_.max_entries;
  return out;
}

}  // namespace cqchase
