// Σ-classification: the structural analysis every decision procedure in the
// library keys on, extracted into one reusable place (previously an anonymous
// helper in core/containment.cc and scattered re-checks in
// finite/finite_containment.cc).
//
// The classes mirror the paper's case split:
//   * kEmpty      — pure Chandra–Merlin; a single homomorphism test decides.
//   * kFdOnly     — the chase is finite (no IND ever fires); chase + test.
//   * kIndOnlyW1  — IND-only, every IND of width 1 (Theorem 2 case (i),
//                   finitely controllable by Theorem 3 case (i)).
//   * kIndOnly    — IND-only, some IND wider than 1 (Theorem 2 case (i)).
//   * kKeyBased   — Section 2's key-based sets (Theorem 2 case (ii),
//                   finitely controllable by Theorem 3 case (ii)).
//   * kAcyclicInd — FD+IND mix, not key-based, but the IND reliance graph
//                   (analysis/reliance.h) is acyclic: every chase level is
//                   bounded by the reliance critical path, so the bounded
//                   chase decides. A fragment beyond the paper's case split;
//                   without it these Σ fall to kGeneral's semi-decision.
//   * kGeneral    — arbitrary FD+IND mix with a cyclic IND reliance graph;
//                   containment is open (Section 5) and only a sound
//                   semi-decision is available.
//
// AnalyzeSigma computes the class once; callers (the ContainmentEngine, the
// finite-containment tools, benches) reuse the analysis instead of
// re-deriving it per call.
#ifndef CQCHASE_ENGINE_SIGMA_CLASS_H_
#define CQCHASE_ENGINE_SIGMA_CLASS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "analysis/reliance.h"
#include "cq/query.h"
#include "deps/dependency_set.h"
#include "schema/catalog.h"

namespace cqchase {

enum class SigmaClass {
  kEmpty = 0,
  kFdOnly = 1,
  kIndOnlyW1 = 2,
  kIndOnly = 3,
  kKeyBased = 4,
  kGeneral = 5,
  kAcyclicInd = 6,
};

// Highest valid SigmaClass value. Persisted bytes are range-validated
// against this sentinel (engine/serialize.cc), so adding a class is a
// two-line change here instead of a silent widening of what a decoder
// accepts from disk. Keep in sync with the last enumerator above.
inline constexpr SigmaClass kMaxSigmaClass = SigmaClass::kAcyclicInd;

// How the engine answers one containment question. kNumStrategies is a
// counter sentinel for per-strategy stats arrays.
enum class DecisionStrategy {
  // Σ empty: one homomorphism search against Q itself, no chase.
  kHomomorphism = 0,
  // FD-only Σ: finite classical chase, then one homomorphism search.
  kFdChase = 1,
  // IND-only Σ with a single-conjunct Q': the PSPACE frontier-streaming
  // procedure of core/pspace.h (Corollary 2.3 / Vardi's remark).
  kStreamingFrontier = 2,
  // IND-only or key-based Σ: iterative-deepening chase bounded by Lemma 5.
  kIterativeDeepening = 3,
  // General FD+IND mix with allow_semidecision: sound, possibly undecided.
  kSemiDecision = 4,
};
inline constexpr int kNumStrategies = 5;

struct SigmaAnalysis {
  SigmaClass sigma_class = SigmaClass::kEmpty;
  size_t max_ind_width = 0;
  // Theorem 2: the level-bounded chase procedure is a decision procedure.
  bool decidable = false;
  // Theorem 3: ⊆f coincides with ⊆∞ (finite controllability).
  bool finitely_controllable = false;
  // The symbol-propagation constant k_Σ of the Theorem 3 proof: 1 for
  // key-based Σ, the summed rhs-relation arities for width-1 IND sets,
  // nullopt where the theorem does not apply.
  std::optional<uint32_t> k_sigma;
  // The Σ reliance graph (analysis/reliance.h): dependency-level positive
  // reliances + FD interference, SCC-condensed with frontier layers. Always
  // populated by AnalyzeSigma; shared because SigmaAnalysis is cached by
  // value in the engine's sigma LRU and the graph is immutable.
  std::shared_ptr<const SigmaGraph> graph;
  // When the IND reliance subgraph is acyclic: the critical-path chase-depth
  // bound (no conjunct can sit deeper than the longest IND reliance chain).
  // Engaged for every acyclic Σ, not just kAcyclicInd — kIndOnly/kKeyBased
  // keep their Lemma 5 bound for dispatch, this one is informational there.
  std::optional<uint32_t> acyclic_ind_depth;
};

// Classifies Σ once. Pure; does not mutate its arguments.
SigmaAnalysis AnalyzeSigma(const DependencySet& deps, const Catalog& catalog);

// Picks the cheapest sound strategy for deciding Σ ⊨ Q ⊆∞ Q' given the
// analysis. `allow_streaming` gates the single-conjunct PSPACE route (the
// streaming path reports no witness homomorphism, so callers that need one
// disable it). Returns nullopt when Σ is general and semi-decision is not
// permitted — the caller should surface kUnimplemented, exactly as
// CheckContainment always has.
std::optional<DecisionStrategy> ChooseStrategy(const SigmaAnalysis& analysis,
                                               const ConjunctiveQuery& q_prime,
                                               bool allow_semidecision,
                                               bool allow_streaming);

std::string_view ToString(SigmaClass c);
std::string_view ToString(DecisionStrategy s);

}  // namespace cqchase

#endif  // CQCHASE_ENGINE_SIGMA_CLASS_H_
